(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, printing our measured numbers next to the published ones.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- table1  -- run one experiment
     experiments: fig2a fig2b table1 table2 table3 fig8 ablation micro
     energy sensitivity schedule zoo runtime

   With `--json PATH`, table1 additionally writes its per-(model, dtype)
   rows as machine-readable JSON ({umm_ms, lcmm_ms, speedup} each), so
   the perf trajectory can be tracked across PRs:

     dune exec bench/main.exe -- table1 --json BENCH_table1.json

   Absolute numbers differ from the paper (the substrate here is an
   analytical model + event simulator, not a VU9P board); EXPERIMENTS.md
   discusses shape-level agreement. *)

module F = Lcmm.Framework
module Metric = Lcmm.Metric
module Dnnk = Lcmm.Dnnk

let line = String.make 78 '-'

let header title =
  Printf.printf "\n%s\n== %s\n%s\n%!" line title line

(* ------------------------------------------------------------------ *)
(* Paper reference numbers (Table 1 of the paper).                     *)

type paper_row = {
  p_umm_ms : float;
  p_umm_tops : float;
  p_lcmm_ms : float;
  p_lcmm_tops : float;
  p_speedup : float;
}

let paper_table1 model dtype =
  match model, dtype with
  | "resnet152", Tensor.Dtype.I8 ->
    Some { p_umm_ms = 18.806; p_umm_tops = 1.227; p_lcmm_ms = 13.258; p_lcmm_tops = 1.747; p_speedup = 1.42 }
  | "resnet152", Tensor.Dtype.I16 ->
    Some { p_umm_ms = 22.253; p_umm_tops = 1.126; p_lcmm_ms = 15.243; p_lcmm_tops = 1.644; p_speedup = 1.46 }
  | "resnet152", Tensor.Dtype.F32 ->
    Some { p_umm_ms = 125.720; p_umm_tops = 0.184; p_lcmm_ms = 86.754; p_lcmm_tops = 0.266; p_speedup = 1.45 }
  | "googlenet", Tensor.Dtype.I8 ->
    Some { p_umm_ms = 5.589; p_umm_tops = 0.936; p_lcmm_ms = 4.650; p_lcmm_tops = 1.148; p_speedup = 1.23 }
  | "googlenet", Tensor.Dtype.I16 ->
    Some { p_umm_ms = 6.366; p_umm_tops = 0.668; p_lcmm_ms = 4.929; p_lcmm_tops = 0.863; p_speedup = 1.29 }
  | "googlenet", Tensor.Dtype.F32 ->
    Some { p_umm_ms = 24.454; p_umm_tops = 0.213; p_lcmm_ms = 19.439; p_lcmm_tops = 0.269; p_speedup = 1.25 }
  | "inception_v4", Tensor.Dtype.I8 ->
    Some { p_umm_ms = 7.110; p_umm_tops = 1.293; p_lcmm_ms = 6.030; p_lcmm_tops = 1.528; p_speedup = 1.17 }
  | "inception_v4", Tensor.Dtype.I16 ->
    Some { p_umm_ms = 9.595; p_umm_tops = 0.968; p_lcmm_ms = 6.972; p_lcmm_tops = 1.319; p_speedup = 1.36 }
  | "inception_v4", Tensor.Dtype.F32 ->
    Some { p_umm_ms = 37.515; p_umm_tops = 0.213; p_lcmm_ms = 28.255; p_lcmm_tops = 0.325; p_speedup = 1.33 }
  | _, (Tensor.Dtype.I8 | Tensor.Dtype.I16 | Tensor.Dtype.F32) -> None

(* Paper Table 2: (UMM bram/uram %, LCMM bram/uram %, POL %). *)
let paper_table2 model dtype =
  match model, dtype with
  | "resnet152", Tensor.Dtype.I8 -> Some ((8, 15), (34, 87), 94)
  | "resnet152", Tensor.Dtype.I16 -> Some ((8, 21), (30, 82), 94)
  | "resnet152", Tensor.Dtype.F32 -> Some ((12, 25), (27, 82), 84)
  | "googlenet", Tensor.Dtype.I8 -> Some ((8, 10), (26, 84), 83)
  | "googlenet", Tensor.Dtype.I16 -> Some ((8, 17), (22, 86), 82)
  | "googlenet", Tensor.Dtype.F32 -> Some ((10, 25), (28, 80), 61)
  | "inception_v4", Tensor.Dtype.I8 -> Some ((8, 13), (26, 88), 78)
  | "inception_v4", Tensor.Dtype.I16 -> Some ((8, 18), (21, 88), 79)
  | "inception_v4", Tensor.Dtype.F32 -> Some ((10, 24), (22, 80), 66)
  | _, (Tensor.Dtype.I8 | Tensor.Dtype.I16 | Tensor.Dtype.F32) -> None

let suite = [ "resnet152"; "googlenet"; "inception_v4" ]

(* Set by `--json PATH`: table1 mirrors its rows there. *)
let json_path : string option ref = ref None

(* Comparisons are expensive; compute each (model, dtype) once. *)
let comparison_cache : (string * Tensor.Dtype.t, F.comparison) Hashtbl.t =
  Hashtbl.create 16

let comparison model dtype =
  match Hashtbl.find_opt comparison_cache (model, dtype) with
  | Some c -> c
  | None ->
    let g = Models.Zoo.build model in
    let c = F.compare_designs ~model dtype g in
    Hashtbl.replace comparison_cache (model, dtype) c;
    c

(* Fused-plan latency for the table1 fusion column.  The post-pass runs
   on the already-computed base plan (flipped to fusion-enabled), so the
   column costs one segmentation sweep per row, not a replan. *)
let fusion_ms (c : F.comparison) =
  let base =
    { c.F.lcmm_plan with
      F.options = { c.F.lcmm_plan.F.options with F.fusion = true } }
  in
  let fz = Lcmm_fusion.Fusion.apply base in
  Some ((Lcmm_fusion.Fusion.effective_plan fz).F.predicted_latency *. 1e3)

(* ------------------------------------------------------------------ *)

let fig2a () =
  header "Fig. 2(a): roofline of the VU9P, Inception-v4, 8-bit";
  let g = Models.Zoo.build "inception_v4" in
  let cfg = Accel.Config.make ~style:Accel.Config.Umm Tensor.Dtype.I8 in
  let points = Accel.Roofline.points cfg g in
  Printf.printf "ridge point: %.1f ops/byte; peak %.2f Tops; interface %.1f GB/s\n"
    (Accel.Roofline.ridge_point cfg)
    (Accel.Config.peak_ops cfg /. 1e12)
    (Accel.Config.interface_bandwidth cfg /. 1e9);
  (* The series the paper scatters: (intensity, attainable) per layer. *)
  Printf.printf "%-26s %10s %10s %6s\n" "layer" "ops/byte" "att.Tops" "bound";
  List.iteri
    (fun i p ->
      if i mod 12 = 0 then
        Printf.printf "%-26s %10.1f %10.3f %6s\n" p.Accel.Roofline.layer_name
          p.Accel.Roofline.intensity p.Accel.Roofline.attainable_tops
          (if p.Accel.Roofline.tiled_memory_bound then "MEM" else "cmp"))
    points;
  Printf.printf "  (every 12th of %d layers shown)\n" (List.length points);
  let mb, total, frac = Accel.Roofline.summary points in
  Printf.printf "memory-bound layers: %d / %d (%.0f%%)   [paper: 82 / 141 (58%%)]\n"
    mb total (100. *. frac)

let table1 () =
  header "Table 1: UMM vs LCMM (latency, throughput, utilization, speedup)";
  Printf.printf "%-13s %-4s | %9s %6s | %9s %6s | %5s %5s %5s | %6s %7s\n"
    "model" "prec" "UMM ms" "Tops" "LCMM ms" "Tops" "DSP%" "CLB%" "SRAM%"
    "ours x" "paper x";
  let speedups = ref [] in
  List.iter
    (fun model ->
      List.iter
        (fun dtype ->
          let c = comparison model dtype in
          let paper = paper_table1 model dtype in
          Printf.printf
            "%-13s %-4s | %9.3f %6.3f | %9.3f %6.3f | %5.0f %5.0f %5.0f | %6.2f %7s\n%!"
            model
            (Tensor.Dtype.to_string dtype)
            (c.F.umm.F.latency_seconds *. 1e3)
            c.F.umm.F.tops
            (c.F.lcmm.F.latency_seconds *. 1e3)
            c.F.lcmm.F.tops
            (100. *. c.F.lcmm.F.dsp_util)
            (100. *. c.F.lcmm.F.clb_util)
            (100. *. c.F.lcmm.F.sram_util)
            c.F.speedup
            (match paper with
            | Some p -> Printf.sprintf "%.2f" p.p_speedup
            | None -> "-");
          speedups := c.F.speedup :: !speedups)
        Tensor.Dtype.all)
    suite;
  let avg =
    List.fold_left ( +. ) 0. !speedups /. float_of_int (List.length !speedups)
  in
  Printf.printf "average speedup: x%.2f   [paper: x1.36]\n" avg;
  let rows =
    List.concat_map
      (fun model -> List.map (fun dtype -> comparison model dtype) Tensor.Dtype.all)
      suite
  in
  Lcmm.Report.write_text_file ~path:"table1.csv"
    (Lcmm.Report.csv_of_comparisons ~fusion_ms rows);
  Printf.printf "(series written to table1.csv)\n";
  match !json_path with
  | None -> ()
  | Some path ->
    let module Json = Dnn_serial.Json in
    let row_json (c : F.comparison) =
      Json.Obj
        [ ("model", Json.String c.F.model);
          ("dtype", Json.String (Tensor.Dtype.to_string c.F.dtype));
          ("umm_ms", Json.Float (c.F.umm.F.latency_seconds *. 1e3));
          ("lcmm_ms", Json.Float (c.F.lcmm.F.latency_seconds *. 1e3));
          ( "fusion_ms",
            match fusion_ms c with
            | Some ms -> Json.Float ms
            | None -> Json.Null );
          ("speedup", Json.Float c.F.speedup) ]
    in
    let doc =
      Json.Obj
        [ ("experiment", Json.String "table1");
          ("average_speedup", Json.Float avg);
          ("rows", Json.List (List.map row_json rows)) ]
    in
    Lcmm.Report.write_text_file ~path (Json.to_string ~indent:2 doc ^ "\n");
    Printf.printf "(json written to %s)\n" path

let table2 () =
  header "Table 2: on-chip memory utilization (BRAM/URAM %, POL)";
  Printf.printf "%-13s %-4s | %15s | %15s | %16s %9s\n" "model" "prec"
    "UMM bram/uram" "LCMM bram/uram" "POL ours" "paper";
  List.iter
    (fun model ->
      List.iter
        (fun dtype ->
          let c = comparison model dtype in
          let helped, bound = F.helped_layers c.F.lcmm_plan in
          let pol = 100. *. c.F.lcmm_plan.F.pol in
          let paper = paper_table2 model dtype in
          Printf.printf
            "%-13s %-4s | %5.0f%% / %5.0f%% | %5.0f%% / %5.0f%% | %5.0f%% (%3d/%3d) %9s\n%!"
            model
            (Tensor.Dtype.to_string dtype)
            (100. *. c.F.umm.F.bram_util)
            (100. *. c.F.umm.F.uram_util)
            (100. *. c.F.lcmm.F.bram_util)
            (100. *. c.F.lcmm.F.uram_util)
            pol helped bound
            (match paper with
            | Some (_, _, pol) -> Printf.sprintf "%d%%" pol
            | None -> "-"))
        Tensor.Dtype.all)
    suite

let table3 () =
  header "Table 3: comparison with state-of-the-art design styles (16-bit)";
  (* Published numbers for [3] Cloud-DNN (ResNet-50) and [17] TGPA
     (ResNet-152) on the same VU9P. *)
  Printf.printf "%-34s %10s %10s %10s\n" "design" "Tops" "ms/image" "SRAM MB";
  let report name tops ms sram =
    Printf.printf "%-34s %10.3f %10.2f %10.1f\n" name tops ms sram
  in
  report "Cloud-DNN [3] RN-50 (paper)" 1.235 8.12 (7.20 +. 27.68);
  report "TGPA [17] RN-152 (paper)" 1.463 17.34 (6.45 +. 19.56);
  report "LCMM RN-152 (paper)" 1.644 15.24 (2.84 +. 27.68);
  Printf.printf "%s\n" (String.make 66 '.');
  List.iter
    (fun (model, style_name, policy) ->
      let g = Models.Zoo.build model in
      let dtype = Tensor.Dtype.I16 in
      let c = comparison model dtype in
      (* Evaluate the rival style's allocation policy on our substrate. *)
      let m = c.F.lcmm_plan.F.metric in
      let o =
        Lcmm.Policies.run m ~dtype
          ~capacity_bytes:(Accel.Config.sram_budget_bytes c.F.lcmm_plan.F.config)
          [] policy
      in
      let tops =
        2. *. float_of_int (Dnn_graph.Graph.total_macs g)
        /. o.Lcmm.Policies.latency /. 1e12
      in
      report
        (Printf.sprintf "%s %s (ours%s)" style_name model
           (if o.Lcmm.Policies.feasible then "" else ", infeasible"))
        tops
        (o.Lcmm.Policies.latency *. 1e3)
        (float_of_int o.Lcmm.Policies.used_bytes /. 1e6))
    [ ("resnet50", "all-features", Lcmm.Policies.All_features);
      ("resnet152", "stream-tile", Lcmm.Policies.Stream_tile) ];
  List.iter
    (fun model ->
      let c = comparison model Tensor.Dtype.I16 in
      report
        (Printf.sprintf "LCMM %s (ours)" model)
        c.F.lcmm.F.tops
        (c.F.lcmm.F.latency_seconds *. 1e3)
        (c.F.lcmm.F.sram_util
        *. float_of_int (Fpga.Device.sram_bytes Fpga.Device.vu9p)
        /. 1e6))
    [ "resnet50"; "resnet152" ]

let fig8 () =
  header "Fig. 8: per-inception-block throughput, GoogLeNet 16-bit";
  let g = Models.Zoo.build "googlenet" in
  let dtype = Tensor.Dtype.I16 in
  let dse = Accel.Dse.run ~style:Accel.Config.Lcmm dtype g in
  let cfg = dse.Accel.Dse.config in
  let plan_with options = F.plan ~options cfg g in
  let base = F.default_options in
  let variants =
    [ ("feat-reuse", { base with F.weight_prefetch = false });
      ("wt-prefetch", { base with F.feature_reuse = false });
      ("full-LCMM", base) ]
  in
  let simulate plan =
    Sim.Engine.simulate ?prefetch:plan.F.prefetch plan.F.metric
      ~on_chip:plan.F.allocation.Dnnk.on_chip
  in
  let reference_plan = plan_with base in
  let umm_run = Sim.Engine.simulate_umm reference_plan.F.metric in
  let umm_rows = Sim.Report.per_block g umm_run in
  let variant_runs =
    List.map (fun (name, options) -> (name, simulate (plan_with options))) variants
  in
  let variant_rows =
    List.map (fun (name, run) -> (name, Sim.Report.per_block g run)) variant_runs
  in
  Printf.printf "%-16s %10s" "block" "UMM";
  List.iter (fun (name, _) -> Printf.printf " %12s" name) variant_rows;
  Printf.printf "   (Tops)\n";
  List.iteri
    (fun i umm_row ->
      Printf.printf "%-16s %10.3f" umm_row.Sim.Report.block umm_row.Sim.Report.tops;
      List.iter
        (fun (_, rows) ->
          let row = List.nth rows i in
          Printf.printf " %12.3f" row.Sim.Report.tops)
        variant_rows;
      print_newline ())
    umm_rows;
  Printf.printf "%-16s %10.3f" "TOTAL ms" (umm_run.Sim.Engine.total *. 1e3);
  List.iter
    (fun (_, run) -> Printf.printf " %12.3f" (run.Sim.Engine.total *. 1e3))
    variant_runs;
  print_newline ();
  (* Extensions: simulation-guided refinement of the weight allocation,
     and the steady state where weights persist across inferences. *)
  let refined =
    Sim.Refine.run ?prefetch:reference_plan.F.prefetch reference_plan.F.metric
      ~on_chip:reference_plan.F.allocation.Dnnk.on_chip
  in
  Printf.printf
    "full LCMM + sim-guided refinement: %.3f ms (unpinned %d weights)\n"
    (refined.Sim.Refine.refined_total *. 1e3)
    (List.length refined.Sim.Refine.unpinned);
  let steady =
    Sim.Engine.simulate ~weights_resident:true reference_plan.F.metric
      ~on_chip:reference_plan.F.allocation.Dnnk.on_chip
  in
  Printf.printf "full LCMM, steady state (weights resident): %.3f ms\n"
    (steady.Sim.Engine.total *. 1e3);
  let batch =
    Sim.Engine.simulate_batch ?prefetch:reference_plan.F.prefetch ~images:64
      reference_plan.F.metric
      ~on_chip:reference_plan.F.allocation.Dnnk.on_chip
  in
  Printf.printf "batch of 64 images: %.1f img/s (first %.3f ms, steady %.3f ms)\n"
    batch.Sim.Engine.images_per_second
    (batch.Sim.Engine.first_image *. 1e3)
    (batch.Sim.Engine.steady_image *. 1e3)

let fig2b () =
  header "Fig. 2(b): design space of per-block allocation, Inception-v4 8-bit";
  let g = Models.Zoo.build "inception_v4" in
  let dtype = Tensor.Dtype.I8 in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
  let metric = Metric.build g (Accel.Latency.profile_graph cfg g) in
  let blocks =
    List.map
      (fun b -> (b, Lcmm.Design_space.block_items metric ~block:b))
      Models.Inception_v4.block_names
  in
  let t0 = Unix.gettimeofday () in
  let points =
    Lcmm.Design_space.sweep metric ~dtype
      ~total_macs:(Dnn_graph.Graph.total_macs g) ~blocks
  in
  Printf.printf "swept %d design points in %.1f s\n" (List.length points)
    (Unix.gettimeofday () -. t0);
  Lcmm.Report.write_text_file ~path:"fig2b.csv"
    (Lcmm.Report.csv_of_design_points points);
  Printf.printf "(all %d points written to fig2b.csv)\n" (List.length points);
  let frontier = Lcmm.Design_space.pareto points in
  Printf.printf "pareto frontier: %d points\n" (List.length frontier);
  Printf.printf "%10s %10s %8s\n" "SRAM MB" "lat ms" "Tops";
  List.iteri
    (fun i p ->
      if i mod 4 = 0 then
        Printf.printf "%10.2f %10.3f %8.3f\n"
          (float_of_int p.Lcmm.Design_space.sram_bytes /. 1e6)
          (p.Lcmm.Design_space.latency *. 1e3)
          p.Lcmm.Design_space.tops)
    frontier;
  (* The paper's observation: near-capacity points far from the best. *)
  let device = float_of_int (Fpga.Device.sram_bytes Fpga.Device.vu9p) in
  let near_limit =
    List.filter
      (fun p ->
        let b = float_of_int p.Lcmm.Design_space.sram_bytes in
        b > 0.6 *. device && b <= device)
      points
  in
  let best_overall =
    List.fold_left (fun acc p -> max acc p.Lcmm.Design_space.tops) 0. points
  in
  (match near_limit with
  | [] -> Printf.printf "no points near the device limit\n"
  | _ :: _ ->
    let lo =
      List.fold_left (fun acc p -> min acc p.Lcmm.Design_space.tops) infinity near_limit
    in
    let hi =
      List.fold_left (fun acc p -> max acc p.Lcmm.Design_space.tops) 0. near_limit
    in
    Printf.printf
      "near the device limit (60-100%% of %.0f MB): %d points, %.3f..%.3f Tops (best anywhere %.3f)\n"
      (device /. 1e6) (List.length near_limit) lo hi best_overall);
  (* More memory does not imply more performance: count inverted pairs. *)
  let arr = Array.of_list points in
  let n = Array.length arr in
  let inversions = ref 0 and pairs = ref 0 in
  let stride = 37 in
  for i = 0 to n - stride - 1 do
    let a = arr.(i) and b = arr.(i + stride) in
    if a.Lcmm.Design_space.sram_bytes < b.Lcmm.Design_space.sram_bytes then begin
      incr pairs;
      if a.Lcmm.Design_space.tops > b.Lcmm.Design_space.tops then incr inversions
    end
  done;
  if !pairs > 0 then
    Printf.printf "memory/performance inversions in sampled pairs: %d / %d (%.0f%%)\n"
      !inversions !pairs
      (100. *. float_of_int !inversions /. float_of_int !pairs)

let ablation () =
  header "Ablation: allocator variants, sharing, splitting, coloring";
  let dtype = Tensor.Dtype.I16 in
  Printf.printf "%-13s | %9s %9s %9s %9s (predicted ms)\n" "model" "umm"
    "greedy" "dnnk" "dnnk-ex";
  List.iter
    (fun model ->
      let g = Models.Zoo.build model in
      let dse = Accel.Dse.run ~style:Accel.Config.Lcmm dtype g in
      let cfg = dse.Accel.Dse.config in
      let metric = Metric.build g (Accel.Latency.profile_graph cfg g) in
      let items = Metric.eligible_items metric ~memory_bound_only:true in
      let vbufs =
        List.mapi
          (fun i item ->
            Lcmm.Vbuffer.singleton ~vbuf_id:i item
              ~size_bytes:(Metric.item_size_bytes dtype metric item))
          items
      in
      let capacity_bytes = Accel.Config.sram_budget_bytes cfg in
      let run p =
        (Lcmm.Policies.run metric ~dtype ~capacity_bytes vbufs p).Lcmm.Policies.latency
        *. 1e3
      in
      Printf.printf "%-13s | %9.3f %9.3f %9.3f %9.3f\n%!" model
        (run Lcmm.Policies.Umm_policy)
        (run Lcmm.Policies.Greedy)
        (run (Lcmm.Policies.Dnnk_policy Dnnk.Table_approx))
        (run (Lcmm.Policies.Dnnk_policy Dnnk.Exact_iterative)))
    suite;
  (* Under what capacity do the allocator and sharing choices separate?
     Repeat the comparison with the SRAM budget throttled. *)
  (* Element-wise fusion: when both designs fuse residual adds into the
     producing layer's drain (no DDR round-trip for the body branch), the
     ResNet gap narrows toward the paper's band. *)
  Printf.printf "\neltwise fusion (ResNet-152, UMM -> LCMM, predicted ms):\n";
  let rn = Models.Zoo.build "resnet152" in
  List.iter
    (fun fused ->
      let best style =
        List.filter_map
          (fun tile ->
            let cfg = Accel.Config.make ~tile ~fused_eltwise:fused ~style dtype in
            let res = Accel.Config.compute_resources cfg in
            if Fpga.Resource.fits res ~within:Fpga.Device.vu9p.Fpga.Device.total
            then
              Some
                (cfg, Accel.Latency.umm_total (Accel.Latency.profile_graph cfg rn))
            else None)
          (Accel.Dse.candidate_tiles ())
        |> List.fold_left
             (fun acc (c, l) ->
               match acc with Some (_, bl) when bl <= l -> acc | _ -> Some (c, l))
             None
      in
      match best Accel.Config.Umm, best Accel.Config.Lcmm with
      | Some (_, umm_lat), Some (lcfg, _) ->
        let plan = F.plan lcfg rn in
        Printf.printf "  fusion %-3s: %9.3f -> %9.3f (x%.2f)\n%!"
          (if fused then "on" else "off")
          (umm_lat *. 1e3)
          (plan.F.predicted_latency *. 1e3)
          (umm_lat /. plan.F.predicted_latency)
      | _, _ -> ())
    [ false; true ];
  (* Exact branch-and-bound reference at a capacity where it closes. *)
  Printf.printf "\nexact reference (GoogLeNet i16, 4 MB budget):\n";
  let gx = Models.Zoo.build "googlenet" in
  let cfgx = (Accel.Dse.run ~style:Accel.Config.Lcmm dtype gx).Accel.Dse.config in
  let mx = Metric.build gx (Accel.Latency.profile_graph cfgx gx) in
  let vbx =
    Metric.eligible_items mx ~memory_bound_only:true
    |> List.mapi (fun i item ->
           Lcmm.Vbuffer.singleton ~vbuf_id:i item
             ~size_bytes:(Metric.item_size_bytes dtype mx item))
  in
  let capx = 4 * 1024 * 1024 in
  let bb = Lcmm.Exact.solve ~node_budget:300_000 mx ~capacity_bytes:capx vbx in
  let dn = Lcmm.Dnnk.allocate mx ~capacity_bytes:capx vbx in
  Printf.printf "  branch-and-bound %9.3f ms (%s, %d nodes)\n"
    (bb.Lcmm.Exact.latency *. 1e3)
    (if bb.Lcmm.Exact.proven_optimal then "optimal" else "budget-truncated")
    bb.Lcmm.Exact.nodes_explored;
  Printf.printf "  dnnk             %9.3f ms (gap %.2f%%)\n"
    (dn.Lcmm.Dnnk.predicted_latency *. 1e3)
    (100. *. (dn.Lcmm.Dnnk.predicted_latency /. bb.Lcmm.Exact.latency -. 1.));
  Printf.printf "\ncapacity sweep (GoogLeNet i16, DNNK vs greedy, predicted ms):\n";
  let g = Models.Zoo.build "googlenet" in
  let dse = Accel.Dse.run ~style:Accel.Config.Lcmm dtype g in
  let cfg = dse.Accel.Dse.config in
  let metric = Metric.build g (Accel.Latency.profile_graph cfg g) in
  let items = Metric.eligible_items metric ~memory_bound_only:true in
  let vbufs =
    List.mapi
      (fun i item ->
        Lcmm.Vbuffer.singleton ~vbuf_id:i item
          ~size_bytes:(Metric.item_size_bytes dtype metric item))
      items
  in
  let full_capacity = Accel.Config.sram_budget_bytes cfg in
  Printf.printf "  %-9s %9s %9s %9s %9s\n" "capacity" "umm" "greedy" "dnnk"
    "dnnk-ex";
  List.iter
    (fun percent ->
      let capacity_bytes = full_capacity * percent / 100 in
      let run p =
        (Lcmm.Policies.run metric ~dtype ~capacity_bytes vbufs p).Lcmm.Policies.latency
        *. 1e3
      in
      Printf.printf "  %7d%% %9.3f %9.3f %9.3f %9.3f\n%!" percent
        (run Lcmm.Policies.Umm_policy)
        (run Lcmm.Policies.Greedy)
        (run (Lcmm.Policies.Dnnk_policy Dnnk.Table_approx))
        (run (Lcmm.Policies.Dnnk_policy Dnnk.Exact_iterative)))
    [ 100; 25; 10; 5; 2 ];
  Printf.printf "\npass toggles (GoogLeNet i16, predicted ms):\n";
  let g = Models.Zoo.build "googlenet" in
  let cfg = (Accel.Dse.run ~style:Accel.Config.Lcmm dtype g).Accel.Dse.config in
  let base = F.default_options in
  List.iter
    (fun (name, options) ->
      let p = F.plan ~options cfg g in
      Printf.printf "  %-28s %9.3f\n%!" name (p.F.predicted_latency *. 1e3))
    [ ("full LCMM", base);
      ("no buffer sharing", { base with F.buffer_sharing = false });
      ("no splitting", { base with F.buffer_splitting = false });
      ("first-fit coloring", { base with F.coloring = Lcmm.Coloring.First_fit });
      ("all layers eligible", { base with F.memory_bound_only = false });
      ("feature reuse only", { base with F.weight_prefetch = false });
      ("weight prefetch only", { base with F.feature_reuse = false }) ];
  (* Sharing and splitting only separate once SRAM is scarce: repeat the
     toggles with the tensor budget capped at 1.5 MB. *)
  Printf.printf "\npass toggles under a 1.5 MB tensor budget (predicted ms):\n";
  let tight = { base with F.capacity_override = Some (1_536 * 1024) } in
  List.iter
    (fun (name, options) ->
      let p = F.plan ~options cfg g in
      Printf.printf "  %-28s %9.3f\n%!" name (p.F.predicted_latency *. 1e3))
    [ ("full LCMM", tight);
      ("no buffer sharing", { tight with F.buffer_sharing = false });
      ("no splitting", { tight with F.buffer_splitting = false });
      ("first-fit coloring", { tight with F.coloring = Lcmm.Coloring.First_fit });
      ("exact-iterative DNNK", { tight with F.compensation = Dnnk.Exact_iterative }) ];
  (* Partial weight pinning: finer slices place partial tensors when whole
     ones no longer fit (extension beyond the paper). *)
  Printf.printf
    "\nweight slicing under a 0.75 MB tensor budget (ResNet-152 i16, predicted ms):\n";
  let rn = Models.Zoo.build "resnet152" in
  let rn_cfg = (Accel.Dse.run ~style:Accel.Config.Lcmm dtype rn).Accel.Dse.config in
  List.iter
    (fun k ->
      let p =
        F.plan
          ~options:
            { base with
              F.capacity_override = Some (768 * 1024);
              weight_slices = k }
          rn_cfg rn
      in
      Printf.printf "  %d slice(s): %9.3f\n%!" k (p.F.predicted_latency *. 1e3))
    [ 1; 2; 4; 8 ]

let energy () =
  header "Energy: per-inference DDR traffic and energy (extension)";
  Printf.printf "%-14s %-4s | %9s %9s | %9s %9s | %7s\n" "model" "prec"
    "UMM GB" "LCMM GB" "UMM mJ" "LCMM mJ" "saving";
  List.iter
    (fun model ->
      List.iter
        (fun dtype ->
          let c = comparison model dtype in
          let m = c.F.lcmm_plan.F.metric in
          let on_chip = c.F.lcmm_plan.F.allocation.Dnnk.on_chip in
          let t_umm = Lcmm.Traffic.umm m in
          let t_lcmm = Lcmm.Traffic.of_allocation m ~on_chip in
          let e_umm =
            Lcmm.Traffic.energy_of_allocation m ~dtype
              ~on_chip:Lcmm.Metric.Item_set.empty
          in
          let e_lcmm = Lcmm.Traffic.energy_of_allocation m ~dtype ~on_chip in
          let ju = Lcmm.Traffic.total_joules e_umm in
          let jl = Lcmm.Traffic.total_joules e_lcmm in
          Printf.printf "%-14s %-4s | %9.3f %9.3f | %9.3f %9.3f | %6.0f%%\n%!"
            model
            (Tensor.Dtype.to_string dtype)
            (float_of_int (Lcmm.Traffic.total_bytes t_umm) /. 1e9)
            (float_of_int (Lcmm.Traffic.total_bytes t_lcmm) /. 1e9)
            (ju *. 1e3) (jl *. 1e3)
            (100. *. (1. -. (jl /. ju))))
        Tensor.Dtype.all)
    suite

let sensitivity () =
  header "Sensitivity: calibration knobs vs headline speedup (GoogLeNet i16)";
  let g = Models.Zoo.build "googlenet" in
  let dtype = Tensor.Dtype.I16 in
  (* Hold the tile shapes at the DSE winners of the default calibration
     so the sweep isolates the memory system. *)
  let umm_tile =
    (Accel.Dse.run ~style:Accel.Config.Umm dtype g).Accel.Dse.config.Accel.Config.tile
  in
  let lcmm_tile =
    (Accel.Dse.run ~style:Accel.Config.Lcmm dtype g).Accel.Dse.config.Accel.Config.tile
  in
  Format.printf "%a@."
    (fun ppf () ->
      Lcmm.Sensitivity.pp_points ppf "ddr-eff"
        (Lcmm.Sensitivity.ddr_efficiency_sweep ~umm_tile ~lcmm_tile dtype g))
    ();
  Format.printf "%a@."
    (fun ppf () ->
      Lcmm.Sensitivity.pp_points ppf "burst-ovh"
        (Lcmm.Sensitivity.burst_overhead_sweep ~umm_tile ~lcmm_tile dtype g))
    ()

let schedule_experiment () =
  header "Schedule: memory-aware reordering vs builder order (extension)";
  let dtype = Tensor.Dtype.I16 in
  Printf.printf "%-14s | %8s %8s %8s | %9s %9s %9s\n" "model" "bfs-pk"
    "build-pk" "mem-pk" "bfs-area" "bld-area" "mem-area";
  List.iter
    (fun name ->
      let g = Models.Zoo.build name in
      let peak order =
        float_of_int (Dnn_graph.Schedule.peak_live_bytes dtype g order) /. 1e6
      in
      let area order =
        float_of_int (Dnn_graph.Schedule.live_area dtype g order) /. 1e6
      in
      let bfs = Dnn_graph.Schedule.breadth_first g in
      let bld = Dnn_graph.Schedule.default g in
      let mem = Dnn_graph.Schedule.memory_aware dtype g in
      Printf.printf "%-14s | %8.2f %8.2f %8.2f | %9.1f %9.1f %9.1f\n%!" name
        (peak bfs) (peak bld) (peak mem) (area bfs) (area bld) (area mem))
    (suite @ [ "densenet121"; "mobilenet_v2"; "squeezenet" ]);
  Printf.printf
    "(peak MB | liveness area MB-slots; lower is better.  The peak is set\n";
  Printf.printf
    " by the linear stem in all six models; the area shows the reordering.)\n" 

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per experiment's computational core. *)

let micro () =
  header "Bechamel micro-benchmarks of the framework kernels";
  let open Bechamel in
  let g = Models.Zoo.build "googlenet" in
  let dtype = Tensor.Dtype.I16 in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
  let profiles = Accel.Latency.profile_graph cfg g in
  let metric = Metric.build g profiles in
  let items = Array.of_list (Metric.eligible_items metric ~memory_bound_only:true) in
  let sizes = Array.map (Metric.item_size_bytes dtype metric) items in
  let intervals =
    Array.map (Lcmm.Liveness.item_interval g ~prefetch_source:(fun _ -> None)) items
  in
  let interference = Lcmm.Interference.build ~items ~intervals () in
  let vbufs = Lcmm.Coloring.color interference ~sizes in
  let capacity_bytes = Accel.Config.sram_budget_bytes cfg in
  let plan = F.plan cfg g in
  let on_chip = plan.F.allocation.Dnnk.on_chip in
  let tests =
    [ Test.make ~name:"fig2a:roofline-points"
        (Staged.stage (fun () -> ignore (Accel.Roofline.points cfg g)));
      Test.make ~name:"table1:latency-profile"
        (Staged.stage (fun () -> ignore (Accel.Latency.profile_graph cfg g)));
      Test.make ~name:"table1:dnnk-allocate"
        (Staged.stage (fun () -> ignore (Dnnk.allocate metric ~capacity_bytes vbufs)));
      Test.make ~name:"table2:coloring"
        (Staged.stage (fun () -> ignore (Lcmm.Coloring.color interference ~sizes)));
      Test.make ~name:"fig8:simulate"
        (Staged.stage (fun () ->
             ignore
               (Sim.Engine.simulate ?prefetch:plan.F.prefetch metric ~on_chip)));
      Test.make ~name:"fig2b:subset-eval"
        (Staged.stage (fun () -> ignore (Metric.total_latency metric ~on_chip)));
      Test.make ~name:"table3:policy-greedy"
        (Staged.stage (fun () ->
             ignore
               (Lcmm.Policies.run metric ~dtype ~capacity_bytes vbufs
                  Lcmm.Policies.Greedy))) ]
  in
  let cfg_b = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg_b
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"lcmm" tests)
  in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ t ] ->
        Printf.printf "%-34s %12.1f us/run (r2=%s)\n" name (t /. 1e3)
          (match Analyze.OLS.r_square ols with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-")
      | Some _ | None -> Printf.printf "%-34s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let zoo () =
  header "Zoo sweep: UMM vs LCMM across all thirteen models (16-bit)";
  Printf.printf "%s\n" Lcmm.Report.comparison_header;
  List.iter
    (fun e ->
      let model = e.Models.Zoo.model_name in
      let c = comparison model Tensor.Dtype.I16 in
      Printf.printf "%s\n%!" (Lcmm.Report.comparison_row c))
    Models.Zoo.all

(* ------------------------------------------------------------------ *)

(* Multi-tenant board runtime: greedy vs EDF vs the optimized schedule
   search.  The fair-share mixes stick to tenants with comparable
   prefetch-slack scales (homogeneous replicas, googlenet+vgg16) —
   there EDF's urgency-ordering of the bus pays off in makespan; mixing
   a short-node model like alexnet against much longer tenants makes
   EDF trade makespan for per-tenant latency instead (see DESIGN.md).
   The priority-arbitrated mixes pit a high-priority tenant against
   bandwidth-hungry background tenants; there the optimizer's hp-first
   objective should cut the high-priority slowdown without giving up
   makespan.  Each mix entry is (label, arbitration,
   [(model, replicas, priority)]). *)
let runtime_mixes =
  let fair = Lcmm_runtime.Arbiter.Fair_share in
  let prio = Lcmm_runtime.Arbiter.Priority in
  [ ("alexnet x2", fair, [ ("alexnet", 2, 0) ]);
    ("googlenet x2", fair, [ ("googlenet", 2, 0) ]);
    ("vgg16 x2", fair, [ ("vgg16", 2, 0) ]);
    ("resnet50 x2", fair, [ ("resnet50", 2, 0) ]);
    ("googlenet + vgg16", fair, [ ("googlenet", 1, 0); ("vgg16", 1, 0) ]);
    ("resnet50! + vgg16 x2", prio, [ ("resnet50", 1, 0); ("vgg16", 2, 1) ]);
    ( "googlenet!x2 + alexnet x2", prio,
      [ ("googlenet", 2, 0); ("alexnet", 2, 1) ] );
    ( "mobilenet! + resnet152 + vgg16", prio,
      [ ("mobilenet_v2", 1, 0); ("resnet152", 1, 1); ("vgg16", 1, 1) ] );
    ( "squeezenet!x2 + inception x2", prio,
      [ ("squeezenet", 2, 0); ("inception_v4", 2, 1) ] );
    ( "alexnet! + vgg16 + resnet50", prio,
      [ ("alexnet", 1, 0); ("vgg16", 1, 1); ("resnet50", 1, 1) ] ) ]

let runtime_specs mix =
  List.concat_map
    (fun (model, count, priority) ->
      let graph = Models.Zoo.build model in
      List.init count (fun k ->
          { Lcmm_runtime.Runtime.name = Printf.sprintf "%s#%d" model k;
            model; graph; priority; arrival = 0. }))
    mix

let runtime_report ?(channels = 1) scheduler arbitration mix =
  Lcmm_runtime.Runtime.run
    { Lcmm_runtime.Runtime.default_options with scheduler; arbitration;
      channels }
    (runtime_specs mix)

(* Worst slowdown among the highest-priority (lowest value) tenants —
   the metric the optimizer minimizes first under priority
   arbitration. *)
let runtime_hp_slowdown (r : Lcmm_runtime.Report.t) =
  let ts = r.Lcmm_runtime.Report.tenants in
  let hp =
    List.fold_left
      (fun acc (t : Lcmm_runtime.Report.tenant_report) ->
        min acc t.Lcmm_runtime.Report.priority)
      max_int ts
  in
  List.fold_left
    (fun acc (t : Lcmm_runtime.Report.tenant_report) ->
      if t.Lcmm_runtime.Report.priority = hp then
        Float.max acc t.Lcmm_runtime.Report.slowdown
      else acc)
    1. ts

type runtime_row = {
  rt_label : string;
  rt_arbitration : Lcmm_runtime.Arbiter.t;
  rt_greedy : Lcmm_runtime.Report.t;
  rt_edf : Lcmm_runtime.Report.t;
  rt_opt : Lcmm_runtime.Report.t;
}

let runtime_experiment () =
  header
    "Multi-tenant runtime: greedy vs EDF vs optimized transfer \
     scheduling (equal SRAM partition, 16-bit, VU9P)";
  Printf.printf "%-30s %5s %9s %9s %9s %7s %7s %7s %6s\n" "mix" "arb"
    "greedy ms" "edf ms" "opt ms" "gain %" "hp edf" "hp opt" "rnds";
  let rows =
    List.map
      (fun (label, arbitration, mix) ->
        let greedy =
          runtime_report Lcmm_runtime.Scheduler.Greedy arbitration mix
        in
        let edf = runtime_report Lcmm_runtime.Scheduler.Edf arbitration mix in
        let opt =
          runtime_report Lcmm_runtime.Scheduler.Optimized arbitration mix
        in
        let gain =
          100.
          *. (edf.Lcmm_runtime.Report.makespan_ms
             -. opt.Lcmm_runtime.Report.makespan_ms)
          /. edf.Lcmm_runtime.Report.makespan_ms
        in
        let rounds, converged =
          match opt.Lcmm_runtime.Report.schedule with
          | Some s ->
            ( s.Lcmm_runtime.Report.sched_rounds,
              s.Lcmm_runtime.Report.sched_converged )
          | None -> (0, false)
        in
        Printf.printf "%-30s %5s %9.3f %9.3f %9.3f %7.2f %7.2f %7.2f %5d%s\n%!"
          label
          (match arbitration with
           | Lcmm_runtime.Arbiter.Fair_share -> "fair"
           | Lcmm_runtime.Arbiter.Priority -> "prio")
          greedy.Lcmm_runtime.Report.makespan_ms
          edf.Lcmm_runtime.Report.makespan_ms
          opt.Lcmm_runtime.Report.makespan_ms gain (runtime_hp_slowdown edf)
          (runtime_hp_slowdown opt) rounds
          (if converged then "*" else "");
        { rt_label = label; rt_arbitration = arbitration; rt_greedy = greedy;
          rt_edf = edf; rt_opt = opt })
      runtime_mixes
  in
  (* Per-channel utilization of a 4-channel optimized run on the
     heterogeneous fair-share mix: static striping exposes imbalance,
     which is exactly what the column is there to show. *)
  let chan_mix =
    List.find_map
      (fun (label, _, mix) ->
        if label = "googlenet + vgg16" then Some mix else None)
      runtime_mixes
    |> Option.get
  in
  let chan =
    runtime_report ~channels:4 Lcmm_runtime.Scheduler.Optimized
      Lcmm_runtime.Arbiter.Fair_share chan_mix
  in
  let chan_busy =
    Array.to_list
      (Array.map
         (Lcmm_runtime.Report.channel_busy_fraction
            ~channels:chan.Lcmm_runtime.Report.channels
            ~makespan_ms:chan.Lcmm_runtime.Report.makespan_ms)
         chan.Lcmm_runtime.Report.channel_timelines)
  in
  Printf.printf
    "\ngooglenet + vgg16 @ 4 channels (optimized): %.3f ms | per-channel \
     busy %s\n%!"
    chan.Lcmm_runtime.Report.makespan_ms
    (String.concat " / "
       (List.map (fun b -> Printf.sprintf "%.0f%%" (100. *. b)) chan_busy));
  let eps = 1e-9 in
  let all_not_worse =
    List.for_all
      (fun r ->
        r.rt_opt.Lcmm_runtime.Report.makespan_ms
        <= Float.min r.rt_greedy.Lcmm_runtime.Report.makespan_ms
             r.rt_edf.Lcmm_runtime.Report.makespan_ms
           +. eps)
      rows
  in
  let priority_rows =
    List.filter
      (fun r -> r.rt_arbitration = Lcmm_runtime.Arbiter.Priority)
      rows
  in
  let hp_reduced =
    List.length
      (List.filter
         (fun r ->
           runtime_hp_slowdown r.rt_opt
           < runtime_hp_slowdown r.rt_edf -. 1e-6)
         priority_rows)
  in
  Printf.printf
    "optimized never worse than greedy/edf: %b | hp slowdown reduced on \
     %d of %d priority mixes\n%!"
    all_not_worse hp_reduced (List.length priority_rows);
  match !json_path with
  | None -> ()
  | Some path ->
    let module Json = Dnn_serial.Json in
    let tenant_json (t : Lcmm_runtime.Report.tenant_report) =
      Json.Obj
        [ ("name", Json.String t.Lcmm_runtime.Report.name);
          ("priority", Json.Int t.Lcmm_runtime.Report.priority);
          ("latency_ms", Json.Float t.Lcmm_runtime.Report.latency_ms);
          ("slowdown", Json.Float t.Lcmm_runtime.Report.slowdown) ]
    in
    let row_json r =
      let g = r.rt_greedy and e = r.rt_edf and o = r.rt_opt in
      let gain =
        100.
        *. (e.Lcmm_runtime.Report.makespan_ms
           -. o.Lcmm_runtime.Report.makespan_ms)
        /. e.Lcmm_runtime.Report.makespan_ms
      in
      let sched =
        match o.Lcmm_runtime.Report.schedule with
        | None -> []
        | Some s ->
          [ ("sched_rounds", Json.Int s.Lcmm_runtime.Report.sched_rounds);
            ( "sched_converged",
              Json.Bool s.Lcmm_runtime.Report.sched_converged );
            ("sched_chosen", Json.String s.Lcmm_runtime.Report.sched_chosen)
          ]
      in
      Json.Obj
        ([ ("mix", Json.String r.rt_label);
           ( "arbitration",
             Json.String
               (match r.rt_arbitration with
                | Lcmm_runtime.Arbiter.Fair_share -> "fair-share"
                | Lcmm_runtime.Arbiter.Priority -> "priority") );
           ("greedy_makespan_ms", Json.Float g.Lcmm_runtime.Report.makespan_ms);
           ("edf_makespan_ms", Json.Float e.Lcmm_runtime.Report.makespan_ms);
           ( "optimized_makespan_ms",
             Json.Float o.Lcmm_runtime.Report.makespan_ms );
           ("optimized_gain_pct", Json.Float gain);
           ( "optimized_not_worse",
             Json.Bool
               (o.Lcmm_runtime.Report.makespan_ms
                <= Float.min g.Lcmm_runtime.Report.makespan_ms
                     e.Lcmm_runtime.Report.makespan_ms
                   +. eps) );
           ("greedy_hp_slowdown", Json.Float (runtime_hp_slowdown g));
           ("edf_hp_slowdown", Json.Float (runtime_hp_slowdown e));
           ("optimized_hp_slowdown", Json.Float (runtime_hp_slowdown o));
           ( "greedy_bus_busy",
             Json.Float g.Lcmm_runtime.Report.bus_busy_fraction );
           ("edf_bus_busy", Json.Float e.Lcmm_runtime.Report.bus_busy_fraction);
           ( "optimized_bus_busy",
             Json.Float o.Lcmm_runtime.Report.bus_busy_fraction ) ]
        @ sched
        @ [ ( "optimized_tenants",
              Json.List
                (List.map tenant_json o.Lcmm_runtime.Report.tenants) ) ])
    in
    let doc =
      Json.Obj
        [ ("experiment", Json.String "runtime");
          ("rows", Json.List (List.map row_json rows));
          ( "channels4",
            Json.Obj
              [ ("mix", Json.String "googlenet + vgg16");
                ( "optimized_makespan_ms",
                  Json.Float chan.Lcmm_runtime.Report.makespan_ms );
                ( "channel_busy_fractions",
                  Json.List (List.map (fun b -> Json.Float b) chan_busy) ) ]
          );
          ("all_not_worse", Json.Bool all_not_worse);
          ("priority_mix_count", Json.Int (List.length priority_rows));
          ("hp_reduced_count", Json.Int hp_reduced) ]
    in
    Lcmm.Report.write_text_file ~path (Json.to_string ~indent:2 doc ^ "\n");
    Printf.printf "wrote %s\n" path

(* Fault injection: how gracefully the board degrades as the fault
   intensity rises.  One seeded spec per intensity scales the stall and
   failure probabilities, deepens the bandwidth droop and grows the SRAM
   bank loss together; intensity 0 is the bit-exact fault-free engine
   and the curve's baseline. *)
let fault_intensities = [ 0.; 0.01; 0.02; 0.05; 0.1; 0.2 ]

let fault_spec_at intensity =
  if intensity <= 0. then None
  else
    let text =
      Printf.sprintf
        "seed=42,stall:%.3f:0.2,fail:%.3f,droop@2:4:%.2f,bankloss@3:%dk"
        intensity (intensity /. 2.)
        (Float.max 0.4 (1. -. intensity))
        (max 1 (int_of_float (intensity *. 32768.)))
    in
    match Fault.Spec.of_string text with
    | Ok s -> Some s
    | Error msg -> failwith ("fault_spec_at: " ^ msg)

let faults_experiment () =
  header
    "Fault injection: latency degradation vs fault intensity (alexnet x2 + \
     squeezenet, fair/EDF, 16-bit, VU9P, seed 42)";
  let mix = [ ("alexnet", 2, 0); ("squeezenet", 1, 0) ] in
  Printf.printf "%-10s %12s %8s %8s %8s %11s %9s %8s\n" "intensity"
    "makespan ms" "x base" "retries" "stalls" "evicted MB" "degrades"
    "aborted";
  let baseline = ref 0. in
  let rows =
    List.map
      (fun intensity ->
        let faults = fault_spec_at intensity in
        let report =
          Lcmm_runtime.Runtime.run
            { Lcmm_runtime.Runtime.default_options with faults }
            (runtime_specs mix)
        in
        let makespan = report.Lcmm_runtime.Report.makespan_ms in
        if intensity = 0. then baseline := makespan;
        let sum f =
          List.fold_left
            (fun acc (t : Lcmm_runtime.Report.tenant_report) ->
              acc + f t.Lcmm_runtime.Report.faults)
            0 report.Lcmm_runtime.Report.tenants
        in
        let retries = sum (fun f -> f.Lcmm_runtime.Engine.retries) in
        let stalls = sum (fun f -> f.Lcmm_runtime.Engine.stalls) in
        let degrades = sum (fun f -> f.Lcmm_runtime.Engine.degraded) in
        let evicted = sum (fun f -> f.Lcmm_runtime.Engine.evicted_bytes) in
        let aborted =
          List.length
            (List.filter
               (fun (t : Lcmm_runtime.Report.tenant_report) ->
                 match t.Lcmm_runtime.Report.status with
                 | Lcmm_runtime.Report.Aborted _ -> true
                 | _ -> false)
               report.Lcmm_runtime.Report.tenants)
        in
        let degradation =
          if !baseline > 0. then makespan /. !baseline else 1.
        in
        Printf.printf "%-10.2f %12.3f %8.2f %8d %8d %11.2f %9d %8d\n%!"
          intensity makespan degradation retries stalls
          (float_of_int evicted /. 1e6)
          degrades aborted;
        (intensity, faults, makespan, degradation, retries, stalls, evicted,
         degrades, aborted))
      fault_intensities
  in
  match !json_path with
  | None -> ()
  | Some path ->
    let module Json = Dnn_serial.Json in
    let row_json
        (intensity, faults, makespan, degradation, retries, stalls, evicted,
         degrades, aborted) =
      Json.Obj
        [ ("intensity", Json.Float intensity);
          ( "fault_spec",
            match faults with
            | None -> Json.Null
            | Some s -> Json.String (Fault.Spec.to_string s) );
          ("makespan_ms", Json.Float makespan);
          ("degradation", Json.Float degradation);
          ("retries", Json.Int retries);
          ("stalls", Json.Int stalls);
          ("evicted_bytes", Json.Int evicted);
          ("degrades", Json.Int degrades);
          ("aborted", Json.Int aborted) ]
    in
    let doc =
      Json.Obj
        [ ("experiment", Json.String "faults");
          ("rows", Json.List (List.map row_json rows)) ]
    in
    Lcmm.Report.write_text_file ~path (Json.to_string ~indent:2 doc ^ "\n");
    Printf.printf "wrote %s\n" path

(* Planner throughput tracking: per-pass wall time and whole plans/sec
   on seeded Gen graphs well past zoo scale.  The baseline constants are
   the identical pipeline (same seeds, same quarter-budget capacity)
   measured at the pre-optimization commit, so icd_speedup tracks the
   packed-bitset interference / indexed-DNNK work across PRs instead of
   silently regressing. *)
let perf_sizes = [ 64; 256; 1024; 4096; 16384 ]

(* interference + coloring + dnnk microseconds, pre-optimization.  The
   16384 entry is extrapolated, not measured: the pre-optimization
   pipeline was never run at that scale, so the constant extends the
   measured 1024->4096 growth (a factor of 11.92 per 4x nodes, i.e.
   ~n^1.79) one more step from the 4096 measurement. *)
let perf_baseline_icd_us = function
  | 64 -> 158.
  | 256 -> 1389.
  | 1024 -> 311_519.
  | 4096 -> 3_712_192.
  | 16384 -> 44_250_000.
  | _ -> nan

let perf_experiment () =
  header
    "Planner throughput: per-pass wall time on seeded random graphs \
     (mixed-family Gen, 16-bit, quarter SRAM budget)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e6)
  in
  let dtype = Tensor.Dtype.I16 in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
  let capacity_bytes = Accel.Config.sram_budget_bytes cfg / 4 in
  let never_share_class = function
    | Metric.Weight_of _ | Metric.Weight_slice _ -> 1
    | Metric.Feature_value _ -> 0
  in
  (* One full pipeline run, mirroring Framework.plan pass for pass so the
     per-pass numbers are attributable to the library passes themselves. *)
  let run_once g =
    let profiles = Accel.Latency.profile_graph cfg g in
    let metric = Metric.build g profiles in
    let items =
      Array.of_list (Metric.eligible_items metric ~memory_bound_only:true)
    in
    let sizes = Array.map (Metric.item_size_bytes dtype metric) items in
    let weight_targets =
      Array.to_list items
      |> List.filter_map (function
           | Metric.Weight_of n | Metric.Weight_slice { node = n; _ } -> Some n
           | Metric.Feature_value _ -> None)
      |> List.sort_uniq compare
    in
    let pdg, prefetch_us =
      time (fun () ->
          if weight_targets = [] then None
          else
            Some
              (Lcmm.Prefetch.build metric ~targets:weight_targets
                 ~node_latency:(fun id ->
                   Accel.Latency.umm_node_latency profiles.(id))))
    in
    let prefetch_source n =
      match pdg with None -> None | Some p -> Lcmm.Prefetch.source_of p n
    in
    let intervals, liveness_us =
      time (fun () ->
          Array.map (Lcmm.Liveness.item_interval g ~prefetch_source) items)
    in
    let interference, interference_us =
      time (fun () ->
          Lcmm.Interference.build ~never_share_class ~items ~intervals ())
    in
    let vbufs, coloring_us =
      time (fun () -> Lcmm.Coloring.color interference ~sizes)
    in
    let workspace = Dnnk.workspace () in
    let initial, dnnk_us =
      time (fun () -> Dnnk.allocate ~workspace metric ~capacity_bytes vbufs)
    in
    let _, splitting_us =
      time (fun () ->
          Lcmm.Splitting.run ~workspace metric interference ~sizes
            ~capacity_bytes initial)
    in
    ( Array.length items,
      List.length vbufs,
      [ ("prefetch_us", prefetch_us); ("liveness_us", liveness_us);
        ("interference_us", interference_us); ("coloring_us", coloring_us);
        ("dnnk_us", dnnk_us); ("splitting_us", splitting_us) ],
      interference_us +. coloring_us +. dnnk_us )
  in
  Printf.printf "%7s %7s %6s %6s | %12s %12s %9s | %10s\n" "nodes" "items"
    "vbufs" "reps" "icd us" "baseline us" "speedup" "plans/s";
  let rows =
    List.map
      (fun nodes ->
        let st = Random.State.make [| 2026; nodes |] in
        let g = Check.Gen.sized_graph ~family:Check.Gen.Mixed st ~nodes in
        let reps =
          if nodes >= 16384 then 1
          else if nodes >= 4096 then 2
          else if nodes >= 1024 then 3
          else 10
        in
        (* Best-of-reps: wall-clock noise only ever inflates a run, so the
           minimum is the honest estimate of the pass cost. *)
        let best = ref None in
        let total_us = ref 0. in
        for _ = 1 to reps do
          let (items, vbufs, passes, icd), elapsed = time (fun () -> run_once g) in
          total_us := !total_us +. elapsed;
          match !best with
          | Some (_, _, _, best_icd) when best_icd <= icd -> ()
          | _ -> best := Some (items, vbufs, passes, icd)
        done;
        let items, vbufs, passes, icd = Option.get !best in
        let baseline = perf_baseline_icd_us nodes in
        let speedup = baseline /. icd in
        let plans_per_sec = float_of_int reps *. 1e6 /. !total_us in
        Printf.printf "%7d %7d %6d %6d | %12.0f %12.0f %8.1fx | %10.2f\n%!"
          nodes items vbufs reps icd baseline speedup plans_per_sec;
        (nodes, Dnn_graph.Graph.node_count g, items, vbufs, passes, icd,
         baseline, speedup, plans_per_sec))
      perf_sizes
  in
  let speedup_1k =
    List.fold_left
      (fun acc (nodes, _, _, _, _, _, _, speedup, _) ->
        if nodes = 1024 then speedup else acc)
      nan rows
  in
  Printf.printf
    "interference+coloring+dnnk at 1k nodes: %.1fx over pre-optimization\n"
    speedup_1k;
  match !json_path with
  | None -> ()
  | Some path ->
    let module Json = Dnn_serial.Json in
    let row_json
        (nodes, graph_nodes, items, vbufs, passes, icd, baseline, speedup,
         plans_per_sec) =
      Json.Obj
        [ ("nodes", Json.Int nodes);
          ("graph_nodes", Json.Int graph_nodes);
          ("items", Json.Int items);
          ("vbufs", Json.Int vbufs);
          ( "pass_us",
            Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) passes) );
          ("icd_us", Json.Float icd);
          ("baseline_icd_us", Json.Float baseline);
          ("icd_speedup", Json.Float speedup);
          ("plans_per_sec", Json.Float plans_per_sec) ]
    in
    let doc =
      Json.Obj
        [ ("experiment", Json.String "perf");
          ("seed", Json.Int 2026);
          ("icd_speedup_1k", Json.Float speedup_1k);
          ("rows", Json.List (List.map row_json rows)) ]
    in
    Lcmm.Report.write_text_file ~path (Json.to_string ~indent:2 doc ^ "\n");
    Printf.printf "wrote %s\n" path

let experiments =
  [ ("fig2a", fig2a); ("table1", table1); ("table2", table2);
    ("table3", table3); ("fig8", fig8); ("fig2b", fig2b);
    ("ablation", ablation); ("energy", energy); ("sensitivity", sensitivity);
    ("schedule", schedule_experiment); ("zoo", zoo); ("micro", micro);
    ("runtime", runtime_experiment); ("faults", faults_experiment);
    ("perf", perf_experiment) ]

let () =
  let rec split_args acc = function
    | [] -> List.rev acc
    | "--json" :: path :: rest ->
      json_path := Some path;
      split_args acc rest
    | "--json" :: [] ->
      prerr_endline "--json needs an output path";
      exit 1
    | name :: rest -> split_args (name :: acc) rest
  in
  let requested =
    match split_args [] (List.tl (Array.to_list Sys.argv)) with
    | _ :: _ as names -> names
    | [] -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %s (known: %s)\n" name
          (String.concat " " (List.map fst experiments));
        exit 1)
    requested
