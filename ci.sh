#!/bin/sh
# Tier-1 gate: build, full test suite, and a JSON bench smoke.
set -eu

cd "$(dirname "$0")"

# Byte-exact comparison with a readable failure: on mismatch, print a
# bounded unified diff (the goldens are large, a bare cmp offset is
# useless for diagnosing which model or pass diverged).
golden_diff() {
  if ! cmp -s "$1" "$2"; then
    echo "GOLDEN MISMATCH: $2 differs from $1" >&2
    diff -u "$1" "$2" | head -60 >&2
    return 1
  fi
}

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke: table1 --json =="
out=BENCH_table1.json
dune exec bench/main.exe -- table1 --json "$out" > /dev/null
# The emitted document must parse and carry the expected shape.
grep -q '"experiment": "table1"' "$out"
grep -q '"average_speedup"' "$out"
grep -q '"umm_ms"' "$out"
grep -q '"lcmm_ms"' "$out"
echo "wrote $out"

echo "== tier-2: differential fuzzing (lcmm check) =="
# Fixed seeds keep the sweep deterministic; failures are shrunk and
# saved under _build/check-cases for replay with `lcmm check --replay`.
mkdir -p _build/check-cases
dune exec bin/lcmm_cli.exe -- check --seed 7 --count 500 \
  --save-dir _build/check-cases

echo "== tier-2: multi-tenant runtime smoke =="
dune exec bin/lcmm_cli.exe -- runtime --tenants alexnet:2,vgg:1 --seed 7 \
  --json BENCH_runtime_smoke.json > /dev/null
grep -q '"makespan_ms"' BENCH_runtime_smoke.json
grep -q '"bandwidth_timeline"' BENCH_runtime_smoke.json

echo "== tier-2: multi-tenant benchmark --json =="
out=BENCH_runtime.json
dune exec bench/main.exe -- runtime --json "$out" > /dev/null
grep -q '"experiment": "runtime"' "$out"
grep -q '"edf_makespan_ms"' "$out"
grep -q '"greedy_makespan_ms"' "$out"
grep -q '"optimized_makespan_ms"' "$out"
# Portfolio guarantee, per mix and in aggregate: the optimized schedule
# never loses to greedy or EDF on makespan.
grep -q '"all_not_worse": true' "$out"
if grep -q '"optimized_not_worse": false' "$out"; then
  echo "optimized schedule lost to greedy/edf on a mix"; exit 1
fi
# On at least half of the priority-arbitrated mixes the optimizer must
# cut the high-priority tenant's slowdown below EDF's.
awk -F': ' '/"priority_mix_count"/ { p = $2 + 0 }
            /"hp_reduced_count"/ { h = $2 + 0 }
            END { exit (p > 0 && 2 * h >= p) ? 0 : 1 }' "$out"
echo "wrote $out"

echo "== tier-2: seeded fault-injection smoke =="
# A seeded bank-loss + stall/failure mix must complete, report its spec
# and the per-tenant fault counters in the JSON document.
dune exec bin/lcmm_cli.exe -- runtime --tenants alexnet:2,squeezenet:1 \
  --faults 'seed=42,stall:0.1:0.3,fail:0.05,droop@2:5:0.5,bankloss@3:4m' \
  --json BENCH_fault_smoke.json > /dev/null
grep -q '"fault_spec"' BENCH_fault_smoke.json
grep -q '"faults"' BENCH_fault_smoke.json
grep -q '"retries"' BENCH_fault_smoke.json
# The all-quiet spec must reproduce the fault-free report bit for bit.
dune exec bin/lcmm_cli.exe -- runtime --tenants alexnet:2,squeezenet:1 \
  --json BENCH_nofault_a.json > /dev/null
dune exec bin/lcmm_cli.exe -- runtime --tenants alexnet:2,squeezenet:1 \
  --faults 'seed=42' --json BENCH_nofault_b.json > /dev/null
cmp BENCH_nofault_a.json BENCH_nofault_b.json
rm -f BENCH_nofault_a.json BENCH_nofault_b.json

echo "== tier-2: degraded-plan oracle =="
dune exec bin/lcmm_cli.exe -- check --seed 11 --count 120 --oracle degraded \
  --save-dir _build/check-cases

echo "== tier-2: fault-intensity benchmark --json =="
out=BENCH_faults.json
dune exec bench/main.exe -- faults --json "$out" > /dev/null
grep -q '"experiment": "faults"' "$out"
grep -q '"degradation"' "$out"
grep -q '"evicted_bytes"' "$out"
echo "wrote $out"

echo "== tier-2: planner perf benchmark --json =="
out=BENCH_perf.json
dune exec bench/main.exe -- perf --json "$out" > /dev/null
grep -q '"experiment": "perf"' "$out"
grep -q '"icd_speedup_1k"' "$out"
grep -q '"plans_per_sec"' "$out"
# The interference+coloring+dnnk time at 1k nodes must hold the recorded
# >= 20x speedup over the pre-optimization pipeline (baseline constants
# are embedded in the benchmark; the bar was raised from 5x by the
# incremental/memoized DNNK work).
awk -F': ' '/"icd_speedup_1k"/ { exit ($2 + 0 >= 20.0) ? 0 : 1 }' "$out"
# The benchmark must carry the 16k-node scale row.
grep -q '"nodes": 16384' "$out"
echo "wrote $out"

echo "== tier-2: sharded tier vs single-process serve (byte-exact) =="
# One compile per zoo model; with timing off every response is a pure
# function of its request, so a 2-shard tier must answer byte-for-byte
# what one serve process answers.
reqs=_build/tier_requests.ndjson
dune exec bin/lcmm_cli.exe -- models 2>/dev/null | awk \
  '{ printf "{\"op\":\"compile\",\"model\":\"%s\",\"dtype\":\"i16\"}\n", $1 }' \
  > "$reqs"
dune exec bin/lcmm_cli.exe -- serve --no-timing < "$reqs" \
  > _build/tier_serve_ref.ndjson 2> /dev/null
dune exec bin/lcmm_cli.exe -- tier --shards 2 --no-timing < "$reqs" \
  > _build/tier_fresh.ndjson 2> /dev/null
cmp _build/tier_serve_ref.ndjson _build/tier_fresh.ndjson

echo "== tier-2: peer cache fill across a reshard =="
# Warm a 1-shard tier's disk cache, then serve the same workload from a
# 2-shard tier over the same cache root: digests now owned by the new
# shard miss locally and must be filled from the warm sibling's cache —
# no plan is ever compiled twice.
cache_root=_build/tier_cache
rm -rf "$cache_root"
dune exec bin/lcmm_cli.exe -- tier --shards 1 --cache-dir "$cache_root" \
  --no-timing < "$reqs" > /dev/null 2> /dev/null
{ cat "$reqs"; echo '{"op":"stats"}'; } \
  | dune exec bin/lcmm_cli.exe -- tier --shards 2 --cache-dir "$cache_root" \
      --no-timing > _build/tier_warm.ndjson 2> /dev/null
# The warm answers (served from disk and peer fills) must still be
# byte-identical to the single-process reference, whichever shard
# answered each digest.
head -n "$(wc -l < "$reqs")" _build/tier_warm.ndjson \
  | cmp - _build/tier_serve_ref.ndjson
# And the tier counters must show the fill actually happened.
tail -n 1 _build/tier_warm.ndjson | grep -q '"computes":0'
tail -n 1 _build/tier_warm.ndjson \
  | awk -F'"peer_fills":' '{ exit (($2 + 0) >= 1) ? 0 : 1 }'

echo "== tier-2: tier socket cleanup on SIGTERM =="
tier_sockdir=_build/tier_sockets
rm -rf "$tier_sockdir"
dune exec bin/lcmm_cli.exe -- tier --shards 2 --socket _build/tier_front.sock \
  --socket-dir "$tier_sockdir" 2> /dev/null &
tier_pid=$!
i=0
while [ ! -S _build/tier_front.sock ] && [ "$i" -lt 200 ]; do
  sleep 0.05; i=$((i + 1))
done
[ -S _build/tier_front.sock ]
kill -TERM "$tier_pid"
wait "$tier_pid" || true
# The front socket, every shard socket and every shard process are gone.
[ ! -e _build/tier_front.sock ]
if ls "$tier_sockdir"/*.sock > /dev/null 2>&1; then
  echo "leaked shard sockets"; exit 1
fi

echo "== tier-2: serve load benchmark --json + p99 SLO gate =="
out=BENCH_serve.json
dune exec bin/lcmm_cli.exe -- bench serve --shard-counts 1,2,4 \
  --rps 100 --duration 1 --sat-steps 3 --json "$out" 2> /dev/null > /dev/null
grep -q '"experiment": "serve"' "$out"
grep -q '"p999_ms"' "$out"
grep -q '"saturation_rps"' "$out"
grep -q '"slo_pass": true' "$out"
echo "wrote $out"

echo "== tier-2: plan/runtime bit-exactness vs committed goldens =="
# The optimized pipeline must keep producing byte-identical output: the
# whole-zoo plan summaries and a single-tenant runtime report are
# compared against goldens committed with the optimization work.
dune exec bin/lcmm_cli.exe -- plan > _build/plan_zoo.out
golden_diff test/golden/plan_zoo.golden _build/plan_zoo.out
dune exec bin/lcmm_cli.exe -- runtime --tenants googlenet:1 \
  --json _build/runtime_single.json > /dev/null
golden_diff test/golden/runtime_single.golden.json _build/runtime_single.json
# The optimizer work must leave the exact greedy and EDF paths byte
# identical: goldens snapshotted before the schedule search landed.
dune exec bin/lcmm_cli.exe -- runtime --tenants googlenet:1 \
  --scheduler greedy --json _build/runtime_single_greedy.json > /dev/null
golden_diff test/golden/runtime_single_greedy.golden.json \
  _build/runtime_single_greedy.json
dune exec bin/lcmm_cli.exe -- runtime --tenants alexnet:2,vgg16:1 --seed 7 \
  --json _build/runtime_multi_edf.json > /dev/null
golden_diff test/golden/runtime_multi_edf.golden.json \
  _build/runtime_multi_edf.json

echo "== tier-2: optimized schedule search converges across the zoo =="
# Two replicas of every zoo model: the plan/schedule co-iteration must
# reach its fixpoint (not the round limit) and report the search
# telemetry on each.
for m in $(dune exec bin/lcmm_cli.exe -- models 2> /dev/null \
             | awk '{ print $1 }'); do
  dune exec bin/lcmm_cli.exe -- runtime --tenants "$m:2" \
    --scheduler optimized --json _build/runtime_opt_zoo.json > /dev/null
  grep -q '"converged": true' _build/runtime_opt_zoo.json \
    || { echo "optimized schedule did not converge on $m x2"; exit 1; }
done

echo "== tier-2: parallel planning is byte-identical (whole zoo) =="
# Planner parallelism must be a pure speedup: the same zoo plans and
# multi-tenant runtime report on 4 worker domains, byte for byte.
dune exec bin/lcmm_cli.exe -- plan --domains 4 > _build/plan_zoo_par.out
golden_diff test/golden/plan_zoo.golden _build/plan_zoo_par.out
dune exec bin/lcmm_cli.exe -- runtime --tenants googlenet:1 --domains 4 \
  --json _build/runtime_single_par.json > /dev/null
golden_diff test/golden/runtime_single.golden.json _build/runtime_single_par.json

echo "== tier-2: fusion — off is inert, on sweeps the zoo, DDR must win =="
# Fusion off: the plan output (and the runtime report above) already
# matched the committed goldens byte for byte — the flagless pipeline
# must be indistinguishable from a build without lib/fusion.  Fusion
# on: the whole zoo plans cleanly and prints its decisions.
dune exec bin/lcmm_cli.exe -- plan --fusion > _build/plan_zoo_fusion.out
grep -q '^fusion: ' _build/plan_zoo_fusion.out
# The fusion-on output minus its fusion lines and the SRAM grant (the
# fused plan charges the FIFO + slabs, so that one number may grow) is
# exactly the golden: the post-pass appends and re-accounts, it never
# perturbs a planning decision.
grep -v -e '^fusion: ' -e '^  segment \[' _build/plan_zoo_fusion.out \
  | sed 's/; tensor SRAM [0-9]* bytes$//' > _build/plan_zoo_fusion_stripped.out
sed 's/; tensor SRAM [0-9]* bytes$//' test/golden/plan_zoo.golden \
  > _build/plan_zoo_nosram.golden
golden_diff _build/plan_zoo_nosram.golden _build/plan_zoo_fusion_stripped.out
# The ablation bench: at least one zoo model must strictly beat base
# LCMM on total DDR bytes under fusion.
out=BENCH_fusion.json
dune exec bin/lcmm_cli.exe -- bench fusion --json "$out" 2> /dev/null \
  > /dev/null
grep -q '"experiment": "fusion"' "$out"
grep -q '"lcmm_fusion"' "$out"
grep -q '"stream_tile"' "$out"
awk -F': ' '/"fusion_ddr_wins"/ { exit ($2 + 0 >= 1) ? 0 : 1 }' "$out"
echo "wrote $out"

echo "== tier-2: chaos off is byte-identical =="
# The whole resilience layer (retries, hedging, call timeouts, checksum
# validation) plus a quiet chaos spec (seed only, no transport clauses)
# must be invisible: the tier answers byte-for-byte what the plain serve
# reference answered.
dune exec bin/lcmm_cli.exe -- tier --shards 2 --no-timing \
  --chaos 'seed=7' --retries 2 --hedge-ms 200 --call-timeout-ms 2000 \
  < "$reqs" > _build/tier_quiet.ndjson 2> /dev/null
cmp _build/tier_serve_ref.ndjson _build/tier_quiet.ndjson

echo "== tier-2: malformed chaos spec is a structured CLI error =="
# A bad clause must be rejected at argument-parse time (cmdliner exit
# 124) with an error naming the offending clause — not at serve time.
status=0
dune exec bin/lcmm_cli.exe -- tier --chaos 'seed=1,bogus:0.5' \
  < /dev/null > /dev/null 2> _build/chaos_badspec.err || status=$?
[ "$status" -eq 124 ]
grep -q 'clause' _build/chaos_badspec.err

echo "== tier-2: SIGTERM drains gracefully =="
# SIGTERM on a live tier must finish in-flight work, flush the router
# LRU to the shard caches, report the drain, exit 0, and leave no shard
# socket or process behind.
drain_sockdir=_build/tier_drain_socks
drain_fifo=_build/tier_drain_fifo
# Stale outputs from a previous run would satisfy the response-wait
# instantly and race the TERM against tier startup.
rm -rf "$drain_sockdir"
rm -f "$drain_fifo" _build/tier_drain.out _build/tier_drain.err
mkfifo "$drain_fifo"
# The binary directly, not via `dune exec`: the TERM must reach the
# tier itself, not a wrapper that may die 143 before forwarding it.
_build/default/bin/lcmm_cli.exe tier --shards 2 --no-timing \
  --socket-dir "$drain_sockdir" < "$drain_fifo" \
  > _build/tier_drain.out 2> _build/tier_drain.err &
drain_pid=$!
exec 9> "$drain_fifo"
printf '{"op":"compile","model":"alexnet","dtype":"i8"}\n' >&9
i=0
while [ ! -s _build/tier_drain.out ] && [ "$i" -lt 200 ]; do
  sleep 0.05; i=$((i + 1))
done
[ -s _build/tier_drain.out ]
kill -TERM "$drain_pid"
wait "$drain_pid"
exec 9>&-
rm -f "$drain_fifo"
grep -q 'drained' _build/tier_drain.err
grep -q '"ok":true' _build/tier_drain.out
if ls "$drain_sockdir"/*.sock > /dev/null 2>&1; then
  echo "leaked shard sockets after drain"; exit 1
fi
# Only a real lcmm process counts as a leak (pgrep -f also matches any
# unrelated command line that merely mentions the socket dir).
for p in $(pgrep -f "$drain_sockdir" || true); do
  [ "$p" = "$$" ] && continue
  if [ -e "/proc/$p/exe" ] \
     && readlink "/proc/$p/exe" | grep -q lcmm_cli; then
    echo "leaked shard process $p after drain"; exit 1
  fi
done

echo "== tier-2: chaos soak — availability, integrity, reproducibility =="
# The zoo mix through a deliberately faulty 2-shard tier over the
# intensity ladder: availability at the middle rung must hold the
# floor, every success must be byte-identical to the fault-free
# reference (zero divergent), and the same spec + seed must reproduce
# the injected/tier counters exactly across two runs.
out=BENCH_chaos.json
dune exec bin/lcmm_cli.exe -- bench chaos --json "$out" \
  2> /dev/null > /dev/null
grep -q '"experiment": "chaos"' "$out"
grep -q '"divergent_total": 0' "$out"
grep -q '"availability_pass": true' "$out"
grep -q '"integrity_pass": true' "$out"
grep -q '"chaos_pass": true' "$out"
dune exec bin/lcmm_cli.exe -- bench chaos --json _build/BENCH_chaos_rerun.json \
  2> /dev/null > /dev/null
fp_a=$(grep -o '"counter_fingerprint": "[0-9a-f]*"' "$out")
fp_b=$(grep -o '"counter_fingerprint": "[0-9a-f]*"' _build/BENCH_chaos_rerun.json)
[ -n "$fp_a" ] && [ "$fp_a" = "$fp_b" ]
echo "wrote $out"

echo "CI OK"
