#!/bin/sh
# Tier-1 gate: build, full test suite, and a JSON bench smoke.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke: table1 --json =="
out=BENCH_table1.json
dune exec bench/main.exe -- table1 --json "$out" > /dev/null
# The emitted document must parse and carry the expected shape.
grep -q '"experiment": "table1"' "$out"
grep -q '"average_speedup"' "$out"
grep -q '"umm_ms"' "$out"
grep -q '"lcmm_ms"' "$out"
echo "wrote $out"

echo "CI OK"
