(* Verifying the whole toolchain on one model: build a network, check
   that the accelerator's tiled dataflow computes exactly what the
   reference interpreter computes, round-trip the graph through the JSON
   codec, and compare DDR traffic and energy between UMM and LCMM.

   Run with:  dune exec examples/verify_model.exe *)

module B = Dnn_graph.Builder
module Op = Dnn_graph.Op

(* A small but structurally rich network: branches, strides, grouped
   convolution, pooling and a concat. *)
let model () =
  let b = B.create () in
  let x = B.input b ~name:"image" ~channels:3 ~height:32 ~width:32 () in
  let stem = B.conv b ~name:"stem" ~kernel:(3, 3) ~stride:(2, 2) ~out_channels:16 x in
  let a = B.conv b ~name:"branch_a" ~kernel:(3, 3) ~out_channels:16 stem in
  let d =
    B.conv b ~name:"branch_b" ~kernel:(3, 3) ~groups:16 ~out_channels:16 stem
  in
  let cat = B.concat b ~name:"merge" [ a; d ] in
  let p = B.pool b ~name:"pool" ~kernel:(2, 2) ~stride:(2, 2) cat in
  let _head = B.conv b ~name:"head" ~kernel:(1, 1) ~out_channels:10 p in
  B.finish b

let () =
  let g = model () in
  Printf.printf "model: %d nodes, %.1f MMACs\n"
    (Dnn_graph.Graph.node_count g)
    (float_of_int (Dnn_graph.Graph.total_macs g) /. 1e6);

  (* 1. Numerical check: the tiled dataflow the performance model assumes
     computes the same function as direct execution. *)
  let input = Interp.synthetic_input g ~seed:42 in
  let direct = Interp.run g ~input in
  let tile = Accel.Tiling.make ~tm:8 ~tn:4 ~th:5 ~tw:3 in
  let tiled = Interp.run_tiled ~tile g ~input in
  let worst = ref 0. in
  Array.iteri
    (fun i v -> worst := max !worst (Interp.max_abs_diff v tiled.(i)))
    direct;
  Printf.printf "tiled vs direct execution: max |diff| = %.2e\n" !worst;

  (* 2. Round-trip through the serialization codec. *)
  let json = Dnn_serial.Codec.to_string g in
  (match Dnn_serial.Codec.of_string json with
  | Error msg -> failwith msg
  | Ok g' ->
    let again = Interp.run g' ~input in
    let drift = ref 0. in
    Array.iteri
      (fun i v -> drift := max !drift (Interp.max_abs_diff v again.(i)))
      direct;
    Printf.printf "serialize/reload: %d bytes of JSON, max |diff| = %.2e\n"
      (String.length json) !drift);

  (* 3. Allocation effect on traffic and energy. *)
  let dtype = Tensor.Dtype.I8 in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
  let plan = Lcmm.Framework.plan cfg g in
  let m = plan.Lcmm.Framework.metric in
  let on_chip = plan.Lcmm.Framework.allocation.Lcmm.Dnnk.on_chip in
  let t0 = Lcmm.Traffic.umm m in
  let t1 = Lcmm.Traffic.of_allocation m ~on_chip in
  Printf.printf "DDR traffic: UMM %.2f MB -> LCMM %.2f MB per inference\n"
    (float_of_int (Lcmm.Traffic.total_bytes t0) /. 1e6)
    (float_of_int (Lcmm.Traffic.total_bytes t1) /. 1e6);
  let e0 =
    Lcmm.Traffic.energy_of_allocation m ~dtype ~on_chip:Lcmm.Metric.Item_set.empty
  in
  let e1 = Lcmm.Traffic.energy_of_allocation m ~dtype ~on_chip in
  Printf.printf "energy: UMM %.3f mJ -> LCMM %.3f mJ per inference\n"
    (Lcmm.Traffic.total_joules e0 *. 1e3)
    (Lcmm.Traffic.total_joules e1 *. 1e3)
