examples/quickstart.mli:
