examples/inception_block.ml: Accel Array Dnn_graph Format Lcmm List Tensor
