examples/verify_model.ml: Accel Array Dnn_graph Dnn_serial Interp Lcmm Printf String Tensor
