examples/custom_network.ml: Dnn_graph Fpga Lcmm List Printf Sim Tensor
