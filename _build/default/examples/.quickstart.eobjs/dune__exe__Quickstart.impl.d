examples/quickstart.ml: Fpga Lcmm List Models Printf Sim Tensor
