examples/design_space.ml: Accel Dnn_graph Fpga Hashtbl Lcmm List Models Printf Tensor
