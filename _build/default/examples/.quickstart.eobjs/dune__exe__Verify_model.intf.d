examples/verify_model.mli:
