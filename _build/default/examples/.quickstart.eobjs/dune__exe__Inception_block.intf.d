examples/inception_block.mli:
