(* Walk-through of the paper's running example (Fig. 3, 5 and 6): a
   six-convolution snippet in the style of Inception-v4's inception_c1
   block.  Shows the memory footprint under uniform management, the
   feature interference graph and its coloring, the weight prefetching
   dependence graph, and the DNNK allocation.

   Run with:  dune exec examples/inception_block.exe *)

module B = Dnn_graph.Builder

(* Fig. 3(a): six convolutions C1..C6 connected by feature values.  C1,
   C2 and C4 read the block input; C3 consumes C2's output; C5 consumes
   C4's; C6 concatenates the branch outputs. *)
let snippet () =
  let b = B.create () in
  let x = B.input b ~name:"block_in" ~channels:1536 ~height:8 ~width:8 () in
  let c1 = B.conv b ~name:"C1" ~kernel:(1, 1) ~out_channels:256 x in
  let c2 = B.conv b ~name:"C2" ~kernel:(1, 1) ~out_channels:384 x in
  let c3 = B.conv b ~name:"C3" ~kernel:(3, 3) ~out_channels:512 c2 in
  let c4 = B.conv b ~name:"C4" ~kernel:(1, 1) ~out_channels:384 x in
  let c5 = B.conv b ~name:"C5" ~kernel:(3, 3) ~out_channels:512 c4 in
  let cat = B.concat b ~name:"branches" [ c1; c3; c5 ] in
  let c6 = B.conv b ~name:"C6" ~kernel:(1, 1) ~out_channels:1536 cat in
  ignore c6;
  B.finish b

let () =
  let g = snippet () in
  let dtype = Tensor.Dtype.I16 in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
  let profiles = Accel.Latency.profile_graph cfg g in
  let metric = Lcmm.Metric.build g profiles in

  Format.printf "== the computation graph ==@.%a@." Dnn_graph.Graph.pp_summary g;

  (* Uniform memory management: every tensor streams from DDR. *)
  Format.printf "== uniform memory management ==@.";
  Array.iter
    (fun p ->
      let id = p.Accel.Latency.node_id in
      let nd = Dnn_graph.Graph.node g id in
      Format.printf "  %-9s lat=%8.1f us (compute %8.1f us)%s@."
        nd.Dnn_graph.Graph.node_name
        (Accel.Latency.umm_node_latency p *. 1e6)
        (p.Accel.Latency.latc *. 1e6)
        (if Accel.Latency.is_memory_bound p then "  <- memory bound" else ""))
    profiles;

  (* Fig. 5: liveness intervals and the interference relation. *)
  let items = Array.of_list (Lcmm.Metric.eligible_items metric ~memory_bound_only:true) in
  let intervals =
    Array.map (Lcmm.Liveness.item_interval g ~prefetch_source:(fun _ -> None)) items
  in
  Format.printf "== lifespans of eligible tensors ==@.";
  Array.iteri
    (fun i item ->
      Format.printf "  %a live %a  (%d B)@." Lcmm.Metric.pp_item item
        Lcmm.Liveness.pp intervals.(i)
        (Lcmm.Metric.item_size_bytes dtype metric item))
    items;

  let is_weight = function
    | Lcmm.Metric.Weight_of _ | Lcmm.Metric.Weight_slice _ -> true
    | Lcmm.Metric.Feature_value _ -> false
  in
  let never_share a b = is_weight a <> is_weight b in
  let interference = Lcmm.Interference.build ~never_share ~items ~intervals () in
  let sizes = Array.map (Lcmm.Metric.item_size_bytes dtype metric) items in
  let vbufs = Lcmm.Coloring.color interference ~sizes in
  Format.printf "== virtual buffers after coloring ==@.";
  List.iter (fun vb -> Format.printf "  %a@." Lcmm.Vbuffer.pp vb) vbufs;

  (* Fig. 6: prefetch edges for the weight tensors. *)
  let targets =
    Array.to_list items
    |> List.filter_map (function
         | Lcmm.Metric.Weight_of n | Lcmm.Metric.Weight_slice { node = n; _ } ->
           Some n
         | Lcmm.Metric.Feature_value _ -> None)
  in
  if targets <> [] then begin
    let pdg =
      Lcmm.Prefetch.build metric ~targets ~node_latency:(fun id ->
          Accel.Latency.umm_node_latency profiles.(id))
    in
    Format.printf "== prefetching dependence graph ==@.%a" Lcmm.Prefetch.pp pdg
  end;

  (* DNNK under an artificially small SRAM so spilling is visible. *)
  let capacity_bytes = 512 * 1024 in
  let result = Lcmm.Dnnk.allocate metric ~capacity_bytes vbufs in
  Format.printf "== DNNK with %d KiB of SRAM ==@." (capacity_bytes / 1024);
  List.iter
    (fun vb -> Format.printf "  on-chip : %a@." Lcmm.Vbuffer.pp vb)
    result.Lcmm.Dnnk.chosen;
  List.iter
    (fun vb -> Format.printf "  spilled : %a@." Lcmm.Vbuffer.pp vb)
    result.Lcmm.Dnnk.spilled;
  Format.printf "latency: UMM %.1f us -> LCMM %.1f us@."
    (Accel.Latency.umm_total profiles *. 1e6)
    (result.Lcmm.Dnnk.predicted_latency *. 1e6)
