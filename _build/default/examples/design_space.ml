(* The paper's Fig. 2(b) design-space study: for each of Inception-v4's
   14 inception blocks, choose whether its tensors live on or off chip —
   16384 design points.  Prints the frontier and a histogram showing that
   more on-chip memory does not imply more performance.

   Run with:  dune exec examples/design_space.exe *)

let () =
  let g = Models.Zoo.build "inception_v4" in
  let dtype = Tensor.Dtype.I8 in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
  let metric = Lcmm.Metric.build g (Accel.Latency.profile_graph cfg g) in
  let blocks =
    List.map
      (fun b -> (b, Lcmm.Design_space.block_items metric ~block:b))
      Models.Inception_v4.block_names
  in
  Printf.printf "sweeping 2^%d = %d design points...\n%!" (List.length blocks)
    (1 lsl List.length blocks);
  let points =
    Lcmm.Design_space.sweep metric ~dtype ~total_macs:(Dnn_graph.Graph.total_macs g)
      ~blocks
  in
  let frontier = Lcmm.Design_space.pareto points in
  Printf.printf "\nPareto frontier (%d of %d points):\n" (List.length frontier)
    (List.length points);
  List.iter
    (fun p ->
      Printf.printf "  %6.2f MB  %7.3f ms  %5.3f Tops  (mask %04x)\n"
        (float_of_int p.Lcmm.Design_space.sram_bytes /. 1e6)
        (p.Lcmm.Design_space.latency *. 1e3)
        p.Lcmm.Design_space.tops p.Lcmm.Design_space.mask)
    frontier;

  (* The paper's observation: near the device limit, many points are far
     from the best.  Bucket points by memory use and show the spread. *)
  let device_mb = float_of_int (Fpga.Device.sram_bytes Fpga.Device.vu9p) /. 1e6 in
  Printf.printf "\nperformance spread by on-chip memory bucket (device = %.0f MB):\n"
    device_mb;
  let bucket_mb = 8. in
  let buckets = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let b = int_of_float (float_of_int p.Lcmm.Design_space.sram_bytes /. 1e6 /. bucket_mb) in
      let lo, hi = try Hashtbl.find buckets b with Not_found -> (infinity, 0.) in
      Hashtbl.replace buckets b
        (min lo p.Lcmm.Design_space.tops, max hi p.Lcmm.Design_space.tops))
    points;
  Hashtbl.fold (fun b r acc -> (b, r) :: acc) buckets []
  |> List.sort compare
  |> List.iter (fun (b, (lo, hi)) ->
         Printf.printf "  %3.0f-%3.0f MB: %.3f .. %.3f Tops\n"
           (float_of_int b *. bucket_mb)
           ((float_of_int b +. 1.) *. bucket_mb)
           lo hi)
