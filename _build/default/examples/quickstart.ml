(* Quickstart: load a model from the zoo, run the LCMM framework against
   the UMM baseline on a VU9P, and print the headline numbers.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let model = "googlenet" in
  let dtype = Tensor.Dtype.I16 in
  let graph = Models.Zoo.build model in

  (* One call does everything: design-space exploration for both styles,
     then the four LCMM passes on the chosen design. *)
  let cmp = Lcmm.Framework.compare_designs ~model dtype graph in

  let show (r : Lcmm.Framework.design_report) =
    Printf.printf "  %-5s %8.3f ms  %5.3f Tops  (%.0f MHz, SRAM %.0f%%)\n"
      r.Lcmm.Framework.style_name
      (r.Lcmm.Framework.latency_seconds *. 1e3)
      r.Lcmm.Framework.tops r.Lcmm.Framework.freq_mhz
      (100. *. r.Lcmm.Framework.sram_util)
  in
  Printf.printf "%s @ %s on %s:\n" model
    (Tensor.Dtype.to_string dtype)
    Fpga.Device.vu9p.Fpga.Device.device_name;
  show cmp.Lcmm.Framework.umm;
  show cmp.Lcmm.Framework.lcmm;
  Printf.printf "  speedup x%.2f\n\n" cmp.Lcmm.Framework.speedup;

  (* The plan records what was pinned where. *)
  let plan = cmp.Lcmm.Framework.lcmm_plan in
  let alloc = plan.Lcmm.Framework.allocation in
  Printf.printf "on-chip buffers: %d of %d virtual buffers, %d URAM blocks\n"
    (List.length alloc.Lcmm.Dnnk.chosen)
    (List.length plan.Lcmm.Framework.vbufs)
    alloc.Lcmm.Dnnk.used_blocks;
  let helped, bound = Lcmm.Framework.helped_layers plan in
  Printf.printf "memory-bound layers helped: %d / %d\n" helped bound;

  (* Cross-check the analytical plan with the event simulator. *)
  let metric = plan.Lcmm.Framework.metric in
  let sim =
    Sim.Engine.simulate ?prefetch:plan.Lcmm.Framework.prefetch metric
      ~on_chip:alloc.Lcmm.Dnnk.on_chip
  in
  Printf.printf "simulated LCMM: %.3f ms (prefetch wait %.3f ms)\n"
    (sim.Sim.Engine.total *. 1e3)
    (sim.Sim.Engine.prefetch_wait *. 1e3)
