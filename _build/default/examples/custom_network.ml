(* Bringing your own network: build a small U-Net-style segmentation
   model with the graph builder (skip connections give feature values
   long, overlapping lifespans — the hard case for buffer sharing), run
   LCMM on an embedded-class device, and simulate the result.

   Run with:  dune exec examples/custom_network.exe *)

module B = Dnn_graph.Builder
module Op = Dnn_graph.Op

let unet () =
  let b = B.create () in
  let x = B.input b ~name:"image" ~channels:3 ~height:128 ~width:128 () in
  let block name ch x =
    let c1 = B.conv b ~name:(name ^ "/conv1") ~kernel:(3, 3) ~out_channels:ch x in
    B.conv b ~name:(name ^ "/conv2") ~kernel:(3, 3) ~out_channels:ch c1
  in
  (* Encoder: features kept for the skip connections. *)
  let e1 = block "enc1" 32 x in
  let d1 = B.pool b ~name:"down1" ~kernel:(2, 2) ~stride:(2, 2) e1 in
  let e2 = block "enc2" 64 d1 in
  let d2 = B.pool b ~name:"down2" ~kernel:(2, 2) ~stride:(2, 2) e2 in
  let e3 = block "enc3" 128 d2 in
  let d3 = B.pool b ~name:"down3" ~kernel:(2, 2) ~stride:(2, 2) e3 in
  let bottom = block "bottom" 256 d3 in
  (* Decoder: nearest-neighbour upsampling followed by convolutions,
     with the encoder features concatenated back in at each scale. *)
  let up3 = B.upsample b ~name:"up3" ~factor:2 bottom in
  let u3 = block "dec3" 128 (B.concat b ~name:"skip3" [ up3; e3 ]) in
  let up2 = B.upsample b ~name:"up2" ~factor:2 u3 in
  let u2 = block "dec2" 64 (B.concat b ~name:"skip2" [ up2; e2 ]) in
  let up1 = B.upsample b ~name:"up1" ~factor:2 u2 in
  let u1 = block "dec1" 32 (B.concat b ~name:"skip1" [ up1; e1 ]) in
  let _mask = B.conv b ~name:"head" ~kernel:(1, 1) ~out_channels:2 u1 in
  B.finish b

let () =
  let g = unet () in
  let dtype = Tensor.Dtype.I8 in
  Printf.printf "u-net: %d nodes, %.2f GMACs, %.1f MB features (i8)\n"
    (Dnn_graph.Graph.node_count g)
    (float_of_int (Dnn_graph.Graph.total_macs g) /. 1e9)
    (float_of_int (Dnn_graph.Analysis.total_feature_bytes dtype g) /. 1e6);

  (* An embedded part: ZU9EG has no URAM and a single DDR bank, so the
     capacity pressure is real. *)
  let device = Fpga.Device.zu9eg in
  let cmp = Lcmm.Framework.compare_designs ~device ~model:"unet" dtype g in
  Printf.printf "on %s: UMM %.3f ms -> LCMM %.3f ms (x%.2f)\n"
    device.Fpga.Device.device_name
    (cmp.Lcmm.Framework.umm.Lcmm.Framework.latency_seconds *. 1e3)
    (cmp.Lcmm.Framework.lcmm.Lcmm.Framework.latency_seconds *. 1e3)
    cmp.Lcmm.Framework.speedup;

  let plan = cmp.Lcmm.Framework.lcmm_plan in
  Printf.printf "pinned %d of %d virtual buffers (%.2f MB of tensor SRAM)\n"
    (List.length plan.Lcmm.Framework.allocation.Lcmm.Dnnk.chosen)
    (List.length plan.Lcmm.Framework.vbufs)
    (float_of_int plan.Lcmm.Framework.tensor_sram_bytes /. 1e6);

  let sim =
    Sim.Engine.simulate ?prefetch:plan.Lcmm.Framework.prefetch
      plan.Lcmm.Framework.metric
      ~on_chip:plan.Lcmm.Framework.allocation.Lcmm.Dnnk.on_chip
  in
  Printf.printf "simulated: %.3f ms; time bound by compute %.0f%%, input %.0f%%, weights %.0f%%, output %.0f%%\n"
    (sim.Sim.Engine.total *. 1e3)
    (100. *. Sim.Engine.bound_fraction sim Sim.Engine.Compute)
    (100. *. Sim.Engine.bound_fraction sim Sim.Engine.Input_stream)
    (100. *. Sim.Engine.bound_fraction sim Sim.Engine.Weight_stream)
    (100. *. Sim.Engine.bound_fraction sim Sim.Engine.Output_stream)
