lib/serial/json.mli: Format
