lib/serial/codec.ml: Dnn_graph Fun Json List Printf Result
