lib/serial/codec.mli: Dnn_graph Json
