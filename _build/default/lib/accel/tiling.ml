type t = { tm : int; tn : int; th : int; tw : int }

let make ~tm ~tn ~th ~tw =
  if tm <= 0 || tn <= 0 || th <= 0 || tw <= 0 then
    invalid_arg "Tiling.make: non-positive tile dimension";
  { tm; tn; th; tw }

let max_kernel = 7

(* Double-buffered input, weight and output tiles.  The input tile covers
   the receptive field of a [th x tw] output tile at stride 1 and the
   provisioned worst-case kernel. *)
let buffer_bytes dtype t =
  let b = Tensor.Dtype.bytes dtype in
  let in_tile = t.tn * (t.th + max_kernel - 1) * (t.tw + max_kernel - 1) * b in
  let wt_tile = t.tm * t.tn * max_kernel * max_kernel * b in
  let out_tile = t.tm * t.th * t.tw * b in
  2 * (in_tile + wt_tile + out_tile)

let bram_blocks dtype t =
  (buffer_bytes dtype t + Fpga.Resource.bram36_bytes - 1) / Fpga.Resource.bram36_bytes

type trips = { if_trips : int; wt_trips : int; halo : float }

let ceil_div a b = (a + b - 1) / b

let trips t ~out_channels ~out_h ~out_w ~kernel:(kh, kw) =
  let nm = ceil_div out_channels t.tm in
  let nth = ceil_div out_h t.th in
  let ntw = ceil_div out_w t.tw in
  let nsp = nth * ntw in
  let halo =
    if nsp = 1 then 1.0
    else
      let eff_h = min t.th out_h and eff_w = min t.tw out_w in
      let covered = float_of_int ((eff_h + kh - 1) * (eff_w + kw - 1)) in
      covered /. float_of_int (eff_h * eff_w)
  in
  { if_trips = nm; wt_trips = nsp; halo }

type transactions = { if_txn : int; wt_txn : int; of_txn : int }

let transactions t ~out_channels ~in_channels ~out_h ~out_w =
  let nm = ceil_div out_channels t.tm in
  let nc = ceil_div in_channels t.tn in
  let nsp = ceil_div out_h t.th * ceil_div out_w t.tw in
  let loads = nm * nsp * nc in
  { if_txn = loads; wt_txn = loads; of_txn = nm * nsp }

let pp ppf t = Format.fprintf ppf "tm=%d tn=%d th=%d tw=%d" t.tm t.tn t.th t.tw
