type result = {
  config : Config.t;
  umm_latency : float;
  resources : Fpga.Resource.t;
}

let candidate_tiles () =
  List.concat_map
    (fun tm ->
      List.concat_map
        (fun tn ->
          List.map (fun sp -> Tiling.make ~tm ~tn ~th:sp ~tw:sp) [ 7; 14; 28; 56 ])
        [ 16; 32; 64 ])
    [ 16; 32; 64 ]

let run ?(device = Fpga.Device.vu9p) ?tiles ~style dtype g =
  let tiles = match tiles with Some t -> t | None -> candidate_tiles () in
  (* Large parts close timing with the full 83 % DSP budget; smaller parts
     (or LUT-hungry precisions) need a smaller array, so the sweep also
     descends the DSP-budget ladder. *)
  let tiles =
    List.concat_map
      (fun fraction -> List.map (fun t -> (fraction, t)) tiles)
      [ 0.83; 0.6; 0.4; 0.25; 0.12 ]
  in
  let evaluate (dsp_fraction, tile) =
    let cfg = Config.make ~device ~dsp_fraction ~tile ~style dtype in
    let resources = Config.compute_resources cfg in
    if not (Fpga.Resource.fits resources ~within:device.Fpga.Device.total) then None
    else
      let umm_latency = Latency.umm_total (Latency.profile_graph cfg g) in
      Some { config = cfg; umm_latency; resources }
  in
  let better a b =
    if a.umm_latency < b.umm_latency then a
    else if b.umm_latency < a.umm_latency then b
    else if
      Tiling.buffer_bytes dtype a.config.Config.tile
      <= Tiling.buffer_bytes dtype b.config.Config.tile
    then a
    else b
  in
  match List.filter_map evaluate tiles with
  | [] -> invalid_arg "Dse.run: no tile configuration fits the device"
  | first :: rest -> List.fold_left better first rest
