(** Systolic processing-element array model, in the style of the DAC'17
    systolic-array generator the paper builds on ([18]).

    The array unrolls three loop dimensions: output channels ([tm_unroll]),
    input channels ([tn_unroll]) and spatial positions ([tsp_unroll]); it
    sustains [tm*tn*tsp] MACs per cycle when layer dimensions divide the
    unroll factors, and pads (loses efficiency) when they do not. *)

type t = private {
  tm_unroll : int;   (** Output-channel unroll. *)
  tn_unroll : int;   (** Input-channel unroll. *)
  tsp_unroll : int;  (** Spatial (output pixel) unroll. *)
}

val make : tm_unroll:int -> tn_unroll:int -> tsp_unroll:int -> t
(** Raises [Invalid_argument] on non-positive factors. *)

val macs_per_cycle : t -> int

val dsp_usage : Tensor.Dtype.t -> t -> int
(** DSP slices consumed: [ceil (macs_per_cycle * Dtype.dsp_cost_per_mac)]. *)

val lut_usage : Tensor.Dtype.t -> t -> int
(** CLB LUT estimate: interconnect and accumulator logic per PE plus a
    fixed control plane. *)

val conv_cycles : t -> m:int -> c:int -> hw:int -> k2:int -> int
(** Cycles to run a convolution with [m] output channels, [c] input
    channels (per group already divided out), [hw] output pixels and
    [k2 = kh*kw] kernel positions: padded-loop product over the array. *)

val efficiency : t -> m:int -> c:int -> hw:int -> float
(** Sustained/peak MAC ratio for the given layer dimensions, in (0, 1]. *)

val default_for : Fpga.Device.t -> Tensor.Dtype.t -> dsp_fraction:float -> t
(** Largest array of the model family fitting the given fraction of the
    device's DSP budget.  The family fixes [tm=32], picks [tn] from
    (32, 16, 8) and derives [tsp]; this mirrors the paper's reported 83 %
    (5632/6840) DSP utilization at fixed-point precisions on the VU9P.
    Raises [Invalid_argument] if even the smallest array does not fit. *)

val pp : Format.formatter -> t -> unit
