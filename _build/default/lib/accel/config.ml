type style = Umm | Lcmm

type t = {
  device : Fpga.Device.t;
  dtype : Tensor.Dtype.t;
  pe : Pe_array.t;
  tile : Tiling.t;
  freq_mhz : float;
  ddr_efficiency : float;
  burst_overhead : float;
  aux_ops_per_cycle : int;
  fused_eltwise : bool;
}

let default_freq dtype style =
  match dtype, style with
  | Tensor.Dtype.I8, Umm | Tensor.Dtype.I16, Umm -> 190.
  | Tensor.Dtype.I8, Lcmm | Tensor.Dtype.I16, Lcmm -> 180.
  | Tensor.Dtype.F32, Umm -> 170.
  | Tensor.Dtype.F32, Lcmm -> 160.

let make ?(device = Fpga.Device.vu9p) ?(ddr_efficiency = 0.70)
    ?(burst_overhead = 2e-7) ?(aux_ops_per_cycle = 256) ?(dsp_fraction = 0.83)
    ?tile ?freq_mhz ?(fused_eltwise = false) ~style dtype =
  let pe = Pe_array.default_for device dtype ~dsp_fraction in
  let tile =
    match tile with
    | Some t -> t
    | None -> Tiling.make ~tm:32 ~tn:64 ~th:28 ~tw:28
  in
  let freq_mhz =
    match freq_mhz with Some f -> f | None -> default_freq dtype style
  in
  { device; dtype; pe; tile; freq_mhz; ddr_efficiency; burst_overhead;
    aux_ops_per_cycle; fused_eltwise }

let interface_bandwidth c =
  Fpga.Device.interface_bandwidth c.device *. c.ddr_efficiency

let macs_per_second c =
  float_of_int (Pe_array.macs_per_cycle c.pe) *. c.freq_mhz *. 1e6

let peak_ops c = 2. *. macs_per_second c

let compute_resources c =
  Fpga.Resource.make
    ~dsp:(Pe_array.dsp_usage c.dtype c.pe)
    ~bram36:(Tiling.bram_blocks c.dtype c.tile)
    ~luts:(Pe_array.lut_usage c.dtype c.pe)
    ()

let sram_budget_bytes c =
  let total = Fpga.Device.sram_bytes c.device in
  let tiles = Tiling.buffer_bytes c.dtype c.tile in
  let budget = int_of_float (0.90 *. float_of_int total) - tiles in
  max 0 budget

let pp ppf c =
  Format.fprintf ppf "%s %a pe=%a tile=(%a) %.0fMHz"
    c.device.Fpga.Device.device_name Tensor.Dtype.pp c.dtype Pe_array.pp c.pe
    Tiling.pp c.tile c.freq_mhz
