type t = { tm_unroll : int; tn_unroll : int; tsp_unroll : int }

let make ~tm_unroll ~tn_unroll ~tsp_unroll =
  if tm_unroll <= 0 || tn_unroll <= 0 || tsp_unroll <= 0 then
    invalid_arg "Pe_array.make: non-positive unroll factor";
  { tm_unroll; tn_unroll; tsp_unroll }

let macs_per_cycle a = a.tm_unroll * a.tn_unroll * a.tsp_unroll

let dsp_usage dtype a =
  int_of_float
    (ceil (float_of_int (macs_per_cycle a) *. Tensor.Dtype.dsp_cost_per_mac dtype))

(* Per-PE interconnect/accumulator logic plus a fixed control plane; the
   constants approximate the logic share of published systolic designs on
   the VU9P (60 %ish of the device at ~5600 PEs). *)
let lut_usage dtype a =
  let per_pe =
    match dtype with
    | Tensor.Dtype.I8 -> 50   (* packed pairs share one accumulator path *)
    | Tensor.Dtype.I16 -> 110
    | Tensor.Dtype.F32 -> 550 (* logic-assisted fp32 multiply-add *)
  in
  80_000 + (macs_per_cycle a * per_pe)

let pad dim unroll = (dim + unroll - 1) / unroll * unroll

let conv_cycles a ~m ~c ~hw ~k2 =
  let padded = pad m a.tm_unroll * pad c a.tn_unroll * pad hw a.tsp_unroll in
  padded * k2 / macs_per_cycle a

let efficiency a ~m ~c ~hw =
  let ideal = m * c * hw in
  let padded = pad m a.tm_unroll * pad c a.tn_unroll * pad hw a.tsp_unroll in
  float_of_int ideal /. float_of_int padded

let default_for device dtype ~dsp_fraction =
  if dsp_fraction <= 0. || dsp_fraction > 1. then
    invalid_arg "Pe_array.default_for: dsp_fraction out of (0, 1]";
  let budget_dsp =
    int_of_float (dsp_fraction *. float_of_int device.Fpga.Device.total.Fpga.Resource.dsp)
  in
  let budget_macs =
    int_of_float (float_of_int budget_dsp /. Tensor.Dtype.dsp_cost_per_mac dtype)
  in
  let tm = 32 in
  (* Spatial unroll is capped at 32: the benchmark models' output maps
     (multiples/neighbourhoods of 7) pad acceptably against small factors,
     while a degenerate huge spatial unroll would waste most of the array
     on 7x7 layers.  Ties prefer the smaller spatial unroll. *)
  let candidates =
    List.filter_map
      (fun tn ->
        let tsp = min 32 (budget_macs / (tm * tn)) in
        if tsp >= 1 then Some { tm_unroll = tm; tn_unroll = tn; tsp_unroll = tsp }
        else None)
      [ 32; 16; 8; 4; 2; 1 ]
  in
  match candidates with
  | [] -> invalid_arg "Pe_array.default_for: DSP budget too small for any array"
  | first :: rest ->
    List.fold_left
      (fun best a ->
        if
          macs_per_cycle a > macs_per_cycle best
          || (macs_per_cycle a = macs_per_cycle best && a.tsp_unroll < best.tsp_unroll)
        then a
        else best)
      first rest

let pp ppf a =
  Format.fprintf ppf "%dx%dx%d(%d MAC/cyc)" a.tm_unroll a.tn_unroll a.tsp_unroll
    (macs_per_cycle a)
