module G = Dnn_graph.Graph
module Op = Dnn_graph.Op
module Values = Dnn_graph.Values
module Shape = Tensor.Shape

type profile = {
  node_id : int;
  latc : float;
  if_terms : (int * float) list;
  wt_term : float;
  wt_load_once : float;
  of_term : float;
  of_value : int option;
  if_stream_bytes : (int * int) list;
  wt_stream_bytes : int;
  wt_once_bytes : int;
  of_stream_bytes : int;
}

let cycles_to_seconds cfg cycles =
  float_of_int cycles /. (cfg.Config.freq_mhz *. 1e6)

(* Compute seconds for one node on this design. *)
let compute_seconds cfg g id =
  let nd = G.node g id in
  match nd.G.op with
  | Op.Input _ | Op.Concat -> 0.
  | Op.Conv { groups; kernel = kh, kw; out_channels; _ } ->
    let out = G.output_shape g id in
    let hw =
      match Shape.as_feature out with
      | Some f -> f.Shape.height * f.Shape.width
      | None -> 1
    in
    let in_channels =
      match G.input_shapes g id with
      | [ shape ] -> (
        match Shape.as_feature shape with Some f -> f.Shape.channels | None -> 0)
      | [] | _ :: _ :: _ -> 0
    in
    let per_group =
      Pe_array.conv_cycles cfg.Config.pe ~m:(out_channels / groups)
        ~c:(in_channels / groups) ~hw ~k2:(kh * kw)
    in
    cycles_to_seconds cfg (groups * per_group)
  | Op.Dense { out_features } ->
    let in_features =
      match G.input_shapes g id with
      | [ shape ] -> Shape.elements shape
      | [] | _ :: _ :: _ -> 0
    in
    let cycles =
      Pe_array.conv_cycles cfg.Config.pe ~m:out_features ~c:in_features ~hw:1 ~k2:1
    in
    cycles_to_seconds cfg cycles
  | Op.Pool _ | Op.Eltwise_add | Op.Upsample _ ->
    let ops = G.aux_ops g id in
    let cycles = (ops + cfg.Config.aux_ops_per_cycle - 1) / cfg.Config.aux_ops_per_cycle in
    cycles_to_seconds cfg cycles

(* DDR transaction counts per interface for the node's outer tile loops. *)
let node_transactions cfg g id =
  let nd = G.node g id in
  match nd.G.op with
  | Op.Conv _ -> (
    match
      Shape.as_feature (G.output_shape g id),
      (match G.input_shapes g id with [ s ] -> Shape.as_feature s | _ -> None)
    with
    | Some out, Some input ->
      Tiling.transactions cfg.Config.tile ~out_channels:out.Shape.channels
        ~in_channels:input.Shape.channels ~out_h:out.Shape.height
        ~out_w:out.Shape.width
    | (None | Some _), _ -> { Tiling.if_txn = 1; wt_txn = 1; of_txn = 1 })
  | Op.Dense { out_features } ->
    let nm = (out_features + cfg.Config.tile.Tiling.tm - 1) / cfg.Config.tile.Tiling.tm in
    { Tiling.if_txn = nm; wt_txn = nm; of_txn = 1 }
  | Op.Input _ | Op.Pool _ | Op.Eltwise_add | Op.Concat | Op.Upsample _ ->
    { Tiling.if_txn = 1; wt_txn = 0; of_txn = 1 }

let node_trips cfg g id =
  let nd = G.node g id in
  match nd.G.op with
  | Op.Conv { kernel; _ } -> (
    match Shape.as_feature (G.output_shape g id) with
    | Some f ->
      Tiling.trips cfg.Config.tile ~out_channels:f.Shape.channels
        ~out_h:f.Shape.height ~out_w:f.Shape.width ~kernel
    | None -> { Tiling.if_trips = 1; wt_trips = 1; halo = 1.0 })
  | Op.Dense { out_features } ->
    (* Output-channel groups of the dense layer; weights stream once. *)
    let nm = (out_features + cfg.Config.tile.Tiling.tm - 1) / cfg.Config.tile.Tiling.tm in
    { Tiling.if_trips = nm; wt_trips = 1; halo = 1.0 }
  | Op.Input _ | Op.Pool _ | Op.Eltwise_add | Op.Concat | Op.Upsample _ ->
    { Tiling.if_trips = 1; wt_trips = 1; halo = 1.0 }

(* With eltwise fusion, a value whose only consumer is the very next node
   and that node is an element-wise add is consumed from the producing
   layer's drain: its write-back and its re-read both disappear. *)
let fused_into_next cfg g v =
  cfg.Config.fused_eltwise
  && (match Values.consumers g v with
     | [ c ] when c = v + 1 -> (
       match (G.node g c).G.op with
       | Op.Eltwise_add -> true
       | Op.Input _ | Op.Conv _ | Op.Pool _ | Op.Concat | Op.Upsample _
       | Op.Dense _ -> false)
     | _ -> false)

let profile_node cfg g id =
  let nd = G.node g id in
  let bw = Config.interface_bandwidth cfg in
  let dtype = cfg.Config.dtype in
  let latc = compute_seconds cfg g id in
  match nd.G.op with
  | Op.Input _ | Op.Concat ->
    { node_id = id; latc; if_terms = []; wt_term = 0.; wt_load_once = 0.;
      of_term = 0.;
      of_value = (match nd.G.op with Op.Input _ -> Some id | _ -> None);
      if_stream_bytes = []; wt_stream_bytes = 0; wt_once_bytes = 0;
      of_stream_bytes = 0 }
  | Op.Conv _ | Op.Dense _ | Op.Pool _ | Op.Eltwise_add | Op.Upsample _ ->
    let trips = node_trips cfg g id in
    let txn = node_transactions cfg g id in
    let ovh = cfg.Config.burst_overhead in
    let sources =
      List.filter (fun v -> not (fused_into_next cfg g v)) (Values.source_values g id)
    in
    (* Tile-load overhead of the input interface, split across the node's
       source values (convs read one value; element-wise nodes read each
       of theirs in one streaming pass). *)
    let if_ovh_each =
      match sources with
      | [] -> 0.
      | _ :: _ -> float_of_int txn.Tiling.if_txn *. ovh /. float_of_int (List.length sources)
    in
    let if_entries =
      List.map
        (fun v ->
          let bytes = Shape.size_bytes dtype (G.output_shape g v) in
          let streamed_bytes =
            int_of_float
              (float_of_int (bytes * trips.Tiling.if_trips) *. trips.Tiling.halo)
          in
          let streamed =
            (float_of_int streamed_bytes /. bw) +. if_ovh_each
          in
          (v, streamed, streamed_bytes))
        sources
    in
    let if_terms = List.map (fun (v, s, _) -> (v, s)) if_entries in
    let if_stream_bytes = List.map (fun (v, _, b) -> (v, b)) if_entries in
    let wt_bytes =
      match G.weight_shape g id with
      | None -> 0
      | Some shape -> Shape.size_bytes dtype shape
    in
    let wt_load_once =
      if wt_bytes = 0 then 0. else (float_of_int wt_bytes /. bw) +. ovh
    in
    let wt_term =
      if wt_bytes = 0 then 0.
      else
        float_of_int (wt_bytes * trips.Tiling.wt_trips) /. bw
        +. (float_of_int txn.Tiling.wt_txn *. ovh)
    in
    let of_bytes =
      if fused_into_next cfg g id then 0
      else Shape.size_bytes dtype (G.output_shape g id)
    in
    { node_id = id; latc; if_terms; wt_term; wt_load_once;
      of_term =
        (if of_bytes = 0 then 0.
         else
           (float_of_int of_bytes /. bw) +. (float_of_int txn.Tiling.of_txn *. ovh));
      of_value = Some id;
      if_stream_bytes;
      wt_stream_bytes = wt_bytes * trips.Tiling.wt_trips;
      wt_once_bytes = wt_bytes;
      of_stream_bytes = of_bytes }

let profile_graph cfg g =
  Array.init (G.node_count g) (fun id -> profile_node cfg g id)

let node_latency p ~if_on_chip ~wt_on_chip ~of_on_chip =
  let if_time =
    List.fold_left
      (fun acc (v, t) -> if if_on_chip v then acc else acc +. t)
      0. p.if_terms
  in
  let wt_time = if wt_on_chip then 0. else p.wt_term in
  let of_time = if of_on_chip then 0. else p.of_term in
  max p.latc (max if_time (max wt_time of_time))

let umm_node_latency p =
  node_latency p ~if_on_chip:(fun _ -> false) ~wt_on_chip:false ~of_on_chip:false

let umm_total profiles =
  Array.fold_left (fun acc p -> acc +. umm_node_latency p) 0. profiles

let has_traffic p = p.if_terms <> [] || p.wt_term > 0. || p.of_term > 0.

let is_memory_bound p = has_traffic p && umm_node_latency p > p.latc

let memory_bound_count profiles =
  Array.fold_left
    (fun (mb, total) p ->
      if has_traffic p then ((if is_memory_bound p then mb + 1 else mb), total + 1)
      else (mb, total))
    (0, 0) profiles
