(** Roofline characterization (paper Fig. 2a, after Williams et al.).

    Each layer becomes a point (operation intensity, attainable
    performance); the attainable roof is the minimum of the compute roof
    (peak ops of the PE array) and the bandwidth roof of the off-chip
    interface.  The memory-bound classification here is the single-pass
    roofline one; the tiled model in {!Latency} refines it with reload
    factors and is what the allocation passes use. *)

type point = {
  node_id : int;
  layer_name : string;
  intensity : float;        (** ops per off-chip byte, single pass. *)
  attainable_tops : float;  (** Roofline-attainable performance, Tops. *)
  roofline_bound : bool;    (** Intensity below the ridge point. *)
  tiled_memory_bound : bool;(** {!Latency.is_memory_bound} (with reloads). *)
}

val ridge_point : Config.t -> float
(** Intensity (ops/byte) at which the bandwidth roof meets the compute
    roof. *)

val attainable_tops : Config.t -> float -> float
(** Attainable performance (Tops) at the given operation intensity. *)

val points : Config.t -> Dnn_graph.Graph.t -> point list
(** One point per layer that moves data (transparent and input nodes are
    skipped), in topological order. *)

val summary : point list -> int * int * float
(** [(memory_bound, total, fraction)] over the tiled classification — the
    paper's "82 of 141 layers (58 %)" style statistic. *)

val pp_point : Format.formatter -> point -> unit
