lib/accel/config.mli: Format Fpga Pe_array Tensor Tiling
