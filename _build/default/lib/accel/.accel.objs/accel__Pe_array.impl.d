lib/accel/pe_array.ml: Format Fpga List Tensor
