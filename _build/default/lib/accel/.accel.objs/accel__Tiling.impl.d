lib/accel/tiling.ml: Format Fpga Tensor
