lib/accel/config.ml: Format Fpga Pe_array Tensor Tiling
