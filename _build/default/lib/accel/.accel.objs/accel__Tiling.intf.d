lib/accel/tiling.mli: Format Tensor
