lib/accel/roofline.mli: Config Dnn_graph Format
