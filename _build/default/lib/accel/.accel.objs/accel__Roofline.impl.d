lib/accel/roofline.ml: Array Config Dnn_graph Format Latency List
