lib/accel/latency.mli: Config Dnn_graph
