lib/accel/latency.ml: Array Config Dnn_graph List Pe_array Tensor Tiling
