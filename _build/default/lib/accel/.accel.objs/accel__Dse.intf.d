lib/accel/dse.mli: Config Dnn_graph Fpga Tensor Tiling
