lib/accel/pe_array.mli: Format Fpga Tensor
