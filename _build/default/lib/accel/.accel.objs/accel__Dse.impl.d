lib/accel/dse.ml: Config Fpga Latency List Tiling
