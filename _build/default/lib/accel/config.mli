(** A complete accelerator design point.

    Bundles the device, numeric precision, PE array, tile configuration,
    clock frequency and DDR efficiency — everything the latency model and
    the simulator need.  Two design styles exist only in the frequency
    table: LCMM designs close timing slightly lower than UMM ones because
    of the extra buffer multiplexing (paper Table 1: 190 vs 180 MHz at
    fixed point). *)

type style = Umm | Lcmm

type t = {
  device : Fpga.Device.t;
  dtype : Tensor.Dtype.t;
  pe : Pe_array.t;
  tile : Tiling.t;
  freq_mhz : float;
  ddr_efficiency : float;
      (** Achieved / theoretical DDR bandwidth, in (0, 1]. *)
  burst_overhead : float;
      (** Fixed seconds per DDR transaction (AXI burst setup + DRAM row
          activation).  Uniform tiled streaming issues one transaction
          per tile buffer load/store, so small tiles pay it thousands of
          times per inference; on-chip tensor buffers avoid it. *)
  aux_ops_per_cycle : int;
      (** Throughput of the scalar/vector side units running pooling and
          element-wise layers. *)
  fused_eltwise : bool;
      (** Fuse element-wise additions into the producing layer's output
          drain: the freshly computed branch is consumed on the fly, so
          neither its write-back nor its re-read touches DDR (the other,
          older input still streams).  Off by default — the UMM baseline
          of the paper streams adds like any layer. *)
}

val default_freq : Tensor.Dtype.t -> style -> float
(** The frequency table (MHz) mirroring the paper's Table 1. *)

val make :
  ?device:Fpga.Device.t -> ?ddr_efficiency:float -> ?burst_overhead:float ->
  ?aux_ops_per_cycle:int -> ?dsp_fraction:float -> ?tile:Tiling.t ->
  ?freq_mhz:float -> ?fused_eltwise:bool -> style:style -> Tensor.Dtype.t -> t
(** Build a design point with the defaults used throughout the
    reproduction: VU9P, 83 % DSP budget, the default PE array for the
    precision, a 32x64x28x28 tile and the table frequency. *)

val interface_bandwidth : t -> float
(** Effective bytes/s of each of the three DDR interfaces. *)

val macs_per_second : t -> float
(** Peak sustained MAC rate of the PE array. *)

val peak_ops : t -> float
(** Peak arithmetic rate in ops/s (2 ops per MAC). *)

val compute_resources : t -> Fpga.Resource.t
(** DSP + LUT + tile-buffer BRAM of the design, before tensor buffers. *)

val sram_budget_bytes : t -> int
(** On-chip bytes available to LCMM tensor buffers: device SRAM minus the
    tile buffers, derated by a routability cap of 90 %. *)

val pp : Format.formatter -> t -> unit
