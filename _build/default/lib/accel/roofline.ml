module G = Dnn_graph.Graph
module Analysis = Dnn_graph.Analysis

type point = {
  node_id : int;
  layer_name : string;
  intensity : float;
  attainable_tops : float;
  roofline_bound : bool;
  tiled_memory_bound : bool;
}

let ridge_point cfg = Config.peak_ops cfg /. Config.interface_bandwidth cfg

let attainable_tops cfg intensity =
  let bw_bound = intensity *. Config.interface_bandwidth cfg in
  min (Config.peak_ops cfg) bw_bound /. 1e12

let points cfg g =
  let profiles = Latency.profile_graph cfg g in
  let dtype = cfg.Config.dtype in
  List.filter_map
    (fun nd ->
      let id = nd.G.id in
      let p = profiles.(id) in
      let moves_data = p.Latency.if_terms <> [] || p.Latency.of_term > 0. in
      if not moves_data then None
      else
        let intensity = Analysis.op_intensity dtype g id in
        Some
          { node_id = id;
            layer_name = nd.G.node_name;
            intensity;
            attainable_tops = attainable_tops cfg intensity;
            roofline_bound = intensity < ridge_point cfg;
            tiled_memory_bound = Latency.is_memory_bound p })
    (G.nodes g)

let summary pts =
  let mb = List.length (List.filter (fun p -> p.tiled_memory_bound) pts) in
  let total = List.length pts in
  let fraction = if total = 0 then 0. else float_of_int mb /. float_of_int total in
  (mb, total, fraction)

let pp_point ppf p =
  Format.fprintf ppf "%-28s oi=%8.2f attainable=%6.3f Tops %s" p.layer_name
    p.intensity p.attainable_tops
    (if p.tiled_memory_bound then "MEM" else "cmp")
