(** Per-layer latency model (the paper's Eq. 1).

    For each node the model produces its compute time and one transfer
    term per data source: each input feature value it reads (resolved
    through transparent concats), its weight tensor and its output value.
    Compute and transfers overlap through double buffering, so a node's
    latency is the maximum of its compute time and its per-interface
    streaming times — an on-chip tensor contributes zero streaming time.

    Transfer terms include the tile-reload factors of the design's
    {!Tiling} configuration: streamed inputs are re-read once per
    output-channel group (plus halo overread), streamed weights once per
    spatial tile.  A pinned tensor is read from SRAM and pays no reload
    at all; pinned weights are loaded exactly once per inference, off the
    critical path when prefetching succeeds. *)

type profile = {
  node_id : int;
  latc : float;                    (** Compute seconds. *)
  if_terms : (int * float) list;   (** (value id, streaming seconds). *)
  wt_term : float;                 (** Weight streaming seconds; 0 if none. *)
  wt_load_once : float;            (** Seconds to load the weights once. *)
  of_term : float;                 (** Output write-back seconds. *)
  of_value : int option;           (** Value id written, when one exists. *)
  if_stream_bytes : (int * int) list;
      (** (value id, DDR bytes streamed incl. tile reloads). *)
  wt_stream_bytes : int;           (** DDR bytes for streamed weights. *)
  wt_once_bytes : int;             (** Bytes of one whole weight load. *)
  of_stream_bytes : int;           (** DDR bytes written back. *)
}

val profile_node : Config.t -> Dnn_graph.Graph.t -> int -> profile

val profile_graph : Config.t -> Dnn_graph.Graph.t -> profile array
(** One profile per node, indexed by node id. *)

val node_latency :
  profile -> if_on_chip:(int -> bool) -> wt_on_chip:bool -> of_on_chip:bool ->
  float
(** Eq. 1 for one node under the given allocation: latency is
    [max(latc, sum of off-chip if terms, wt term, of term)], where pinned
    sources contribute zero. *)

val umm_node_latency : profile -> float
(** Node latency with everything streamed from DDR. *)

val umm_total : profile array -> float
(** Whole-network latency under uniform memory management (nodes run
    sequentially, as in the paper's architecture). *)

val is_memory_bound : profile -> bool
(** True when some streaming term exceeds the node's compute time under
    UMM — the paper's memory-bounded layer classification. *)

val memory_bound_count : profile array -> int * int
(** [(memory_bound, with_any_traffic)] — the second component counts
    nodes that move any data at all (excludes transparent/input nodes),
    the denominator of the paper's "58 % of layers" statistic. *)
