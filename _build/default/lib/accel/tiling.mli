(** Two-level loop tiling of the accelerator (the paper's Fig. 1 outer /
    middle loops).

    One hardware tile configuration is chosen per design (tile buffers are
    physical RAM): output-channel tile [tm], input-channel tile [tn] and a
    [th] x [tw] output spatial tile.  A layer whose dimensions exceed the
    tile is processed in multiple trips, re-streaming input features once
    per output-channel group and weights once per spatial tile — the
    uniform-memory-management traffic model of the designs the paper
    baselines against. *)

type t = private {
  tm : int;
  tn : int;
  th : int;
  tw : int;
}

val make : tm:int -> tn:int -> th:int -> tw:int -> t
(** Raises [Invalid_argument] on non-positive dimensions. *)

val max_kernel : int
(** Kernel extent the tile input buffers are provisioned for (7, the
    largest kernel in the benchmark suite). *)

val buffer_bytes : Tensor.Dtype.t -> t -> int
(** Total tile-buffer footprint: double-buffered input, weight and output
    tiles. *)

val bram_blocks : Tensor.Dtype.t -> t -> int
(** BRAM36 blocks implementing the tile buffers, counting one bank per
    parallel port at the block granularity of {!Fpga.Resource}. *)

type trips = {
  if_trips : int;    (** Times the layer's input is streamed from DDR. *)
  wt_trips : int;    (** Times the layer's weights are streamed. *)
  halo : float;      (** Input overread factor from tile halos, >= 1. *)
}

val trips :
  t -> out_channels:int -> out_h:int -> out_w:int -> kernel:int * int -> trips
(** Trip counts for a convolution-like layer of the given output geometry.
    A layer fitting entirely in one tile has [if_trips = wt_trips = 1] and
    [halo = 1.0]. *)

type transactions = {
  if_txn : int;  (** Input tile loads (DDR transactions). *)
  wt_txn : int;  (** Weight tile loads. *)
  of_txn : int;  (** Output tile stores. *)
}

val transactions :
  t -> out_channels:int -> in_channels:int -> out_h:int -> out_w:int ->
  transactions
(** DDR transaction counts of the outer tile loops: one input and one
    weight tile load per (output-channel group x spatial tile x
    input-channel group) iteration, one output store per completed output
    tile. *)

val pp : Format.formatter -> t -> unit
