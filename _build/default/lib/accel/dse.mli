(** Tile-configuration design-space exploration.

    The frameworks the paper integrates with ([12, 18, 22]) pick the PE
    array and tile buffer structure by DSE; LCMM runs after that.  This
    module reproduces the tile half of that search: sweep a grid of tile
    shapes, keep those whose compute resources fit the device, and pick
    the one minimizing whole-network UMM latency.  Ties break toward
    smaller tile buffers (leaving more SRAM to LCMM). *)

type result = {
  config : Config.t;
  umm_latency : float;      (** Seconds per inference under UMM. *)
  resources : Fpga.Resource.t;
}

val candidate_tiles : unit -> Tiling.t list
(** The sweep grid: tm/tn in powers of two 16..64, square spatial tiles
    7..56. *)

val run :
  ?device:Fpga.Device.t -> ?tiles:Tiling.t list -> style:Config.style ->
  Tensor.Dtype.t -> Dnn_graph.Graph.t -> result
(** Explore and return the best design point for the graph.  Raises
    [Invalid_argument] when no candidate fits the device. *)
