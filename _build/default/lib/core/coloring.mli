(** Size-minimizing buffer coloring.

    Register-allocation-style graph coloring over the interference graph,
    with the paper's twist (section 3.1): the objective is the total
    *byte* size of the buffers, not their count — a color's cost is the
    largest member assigned to it.  The default heuristic places items in
    decreasing size order into the compatible buffer whose size grows the
    least; [First_fit] (classic lowest-index color) is kept for the
    ablation bench. *)

type strategy =
  | Min_growth  (** Decreasing size, cheapest compatible buffer. *)
  | First_fit   (** Decreasing degree, lowest-index compatible buffer. *)

val color :
  ?strategy:strategy -> Interference.t -> sizes:int array -> Vbuffer.t list
(** Group the interference graph's items into virtual buffers; [sizes]
    gives each item's byte size (same indexing as the graph).  Buffers
    are returned with dense ids in creation order.  Raises
    [Invalid_argument] on a size-array length mismatch. *)

val total_bytes : Vbuffer.t list -> int
(** Sum of buffer sizes — the coloring objective. *)
