type edge = {
  source : int;
  target : int;
  load_seconds : float;
  stall_seconds : float;
}

type t = { table : (int, edge) Hashtbl.t }

let build metric ~targets ~node_latency =
  let profiles = metric.Metric.profiles in
  let table = Hashtbl.create 64 in
  let backtrace target load =
    (* Latest k' <= target with sum of latencies over [k', target) >= load. *)
    let rec walk k elapsed =
      if elapsed >= load then (k + 1, 0.)
      else if k < 0 then (0, load -. elapsed)
      else walk (k - 1) (elapsed +. node_latency k)
    in
    walk (target - 1) 0.
  in
  List.iter
    (fun target ->
      let p = profiles.(target) in
      if p.Accel.Latency.wt_load_once <= 0. then
        invalid_arg
          (Printf.sprintf "Prefetch.build: node %d has no weight tensor" target);
      let load = p.Accel.Latency.wt_load_once in
      let source, stall = backtrace target load in
      let source = min source target in
      Hashtbl.replace table target
        { source; target; load_seconds = load; stall_seconds = stall })
    targets;
  { table }

let edge_of t target = Hashtbl.find_opt t.table target

let source_of t target = Option.map (fun e -> e.source) (edge_of t target)

let stall_seconds t target =
  match edge_of t target with Some e -> e.stall_seconds | None -> 0.

let edges t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
  |> List.sort (fun a b -> compare a.target b.target)

let total_stall t = List.fold_left (fun acc e -> acc +. e.stall_seconds) 0. (edges t)

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "w%d: prefetch@%d load=%.3gms stall=%.3gms@." e.target
        e.source (e.load_seconds *. 1e3) (e.stall_seconds *. 1e3))
    (edges t)
