(** Interference graphs over allocation items (paper Fig. 5a).

    Two items interfere when their lifespans overlap — they can then
    never share a buffer.  The buffer-splitting pass additionally injects
    *false* interference edges between chosen non-overlapping pairs to
    force them into different virtual buffers. *)

type t

val build :
  ?never_share:(Metric.item -> Metric.item -> bool) ->
  items:Metric.item array -> intervals:Liveness.interval array -> unit -> t
(** Raises [Invalid_argument] when the arrays differ in length.
    [never_share] marks structurally incompatible pairs (e.g. a feature
    and a weight tensor, which live in separate buffer pools) as
    permanently conflicting regardless of lifespans. *)

val item_count : t -> int

val item : t -> int -> Metric.item
(** Item at the given index. *)

val interval : t -> int -> Liveness.interval

val add_false_edge : t -> int -> int -> unit
(** Force items at the two indices apart.  Idempotent; raises
    [Invalid_argument] on equal or out-of-range indices. *)

val false_edges : t -> (int * int) list
(** Injected edges, as ordered index pairs. *)

val conflict : t -> int -> int -> bool
(** Lifespan overlap or false edge. *)

val degree : t -> int -> int
(** Number of items in conflict with the item at the given index. *)
