type result = {
  chosen : Vbuffer.t list;
  on_chip : Metric.Item_set.t;
  latency : float;
  proven_optimal : bool;
  nodes_explored : int;
}

(* Depth-first branch and bound over the buffers in decreasing
   gain-density order.  State: index into the buffer array, the chosen
   set so far, remaining capacity.  Bound: current total gain + for every
   graph node still touchable by an open buffer, the node's remaining
   reduction potential (its latency under the current set minus its
   compute floor) — an upper bound because per-node reduction can never
   dig below the compute floor. *)
let solve ?(node_budget = 200_000) metric ~capacity_bytes vbufs =
  if capacity_bytes < 0 then invalid_arg "Exact.solve: negative capacity";
  let capacity = capacity_bytes / Dnnk.block_bytes in
  (* Order by static gain density: good incumbents early = strong pruning. *)
  let scored =
    List.map
      (fun vb ->
        let gain =
          Metric.marginal_gain_many metric ~on_chip:Metric.Item_set.empty
            vb.Vbuffer.members
        in
        let blocks = max 1 (Dnnk.blocks_of_bytes vb.Vbuffer.size_bytes) in
        (gain /. float_of_int blocks, vb))
      vbufs
    |> List.stable_sort (fun (a, _) (b, _) -> compare b a)
  in
  let arr = Array.of_list (List.map snd scored) in
  let n = Array.length arr in
  let blocks = Array.map (fun vb -> Dnnk.blocks_of_bytes vb.Vbuffer.size_bytes) arr in
  (* Graph nodes each suffix of buffers can still touch. *)
  let touched_from = Array.make (n + 1) [] in
  for i = n - 1 downto 0 do
    let here =
      List.concat_map (Metric.affected_nodes metric) arr.(i).Vbuffer.members
    in
    touched_from.(i) <- List.sort_uniq compare (here @ touched_from.(i + 1))
  done;
  let umm = Accel.Latency.umm_total metric.Metric.profiles in
  (* Seed the incumbent with DNNK's heuristic solution: the search then
     starts from a strong bound and can only improve on it, so even a
     budget-truncated run never loses to the heuristic. *)
  let seed = Dnnk.allocate metric ~capacity_bytes vbufs in
  let best_latency = ref (min umm seed.Dnnk.predicted_latency) in
  let best_set = ref seed.Dnnk.chosen in
  let explored = ref 0 in
  let budget_hit = ref false in
  let rec branch index chosen on_chip free gain =
    if !explored >= node_budget then budget_hit := true
    else begin
      incr explored;
      let latency_now = umm -. gain in
      if latency_now < !best_latency -. 1e-15 then begin
        best_latency := latency_now;
        best_set := chosen
      end;
      if index < n then begin
        (* Admissible optimism for the remaining suffix. *)
        let potential =
          List.fold_left
            (fun acc node ->
              acc
              +. Metric.node_latency metric ~on_chip node
              -. metric.Metric.profiles.(node).Accel.Latency.latc)
            0. touched_from.(index)
        in
        if latency_now -. potential < !best_latency -. 1e-15 then begin
          (* Take the buffer first (best-gain order), then skip it. *)
          if blocks.(index) <= free then begin
            let members = arr.(index).Vbuffer.members in
            let extra = Metric.marginal_gain_many metric ~on_chip members in
            let on_chip' =
              List.fold_left (fun acc it -> Metric.Item_set.add it acc) on_chip members
            in
            branch (index + 1) (arr.(index) :: chosen) on_chip'
              (free - blocks.(index)) (gain +. extra)
          end;
          branch (index + 1) chosen on_chip free gain
        end
      end
    end
  in
  branch 0 [] Metric.Item_set.empty capacity 0.;
  let chosen = !best_set in
  let on_chip =
    Metric.Item_set.of_list (List.concat_map (fun vb -> vb.Vbuffer.members) chosen)
  in
  { chosen;
    on_chip;
    latency = Metric.total_latency metric ~on_chip;
    proven_optimal = not !budget_hit;
    nodes_explored = !explored }
