type point = {
  mask : int;
  sram_bytes : int;
  latency : float;
  tops : float;
}

let block_items metric ~block =
  let g = metric.Metric.graph in
  let in_block id = (Dnn_graph.Graph.node g id).Dnn_graph.Graph.block = Some block in
  Metric.eligible_items metric ~memory_bound_only:true
  |> List.filter (fun item ->
         match item with
         | Metric.Feature_value v -> in_block v
         | Metric.Weight_of n | Metric.Weight_slice { node = n; _ } -> in_block n)

let sweep ?(progress = fun _ -> ()) metric ~dtype ~total_macs ~blocks =
  let n = List.length blocks in
  if n > 20 then invalid_arg "Design_space.sweep: too many blocks";
  let arr = Array.of_list blocks in
  let total = 1 lsl n in
  let points = ref [] in
  for mask = 0 to total - 1 do
    progress mask;
    let items = ref [] in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then items := snd arr.(i) @ !items
    done;
    let on_chip = Metric.Item_set.of_list !items in
    let latency = Metric.total_latency metric ~on_chip in
    let sram_bytes =
      List.fold_left
        (fun acc it ->
          acc
          + (Dnnk.blocks_of_bytes (Metric.item_size_bytes dtype metric it)
            * Dnnk.block_bytes))
        0 !items
    in
    points :=
      { mask;
        sram_bytes;
        latency;
        tops = 2. *. float_of_int total_macs /. latency /. 1e12 }
      :: !points
  done;
  List.rev !points

let pareto points =
  let sorted =
    List.sort
      (fun a b ->
        match compare a.sram_bytes b.sram_bytes with
        | 0 -> compare a.latency b.latency
        | c -> c)
      points
  in
  let rec keep best acc = function
    | [] -> List.rev acc
    | p :: rest ->
      if p.latency < best then keep p.latency (p :: acc) rest
      else keep best acc rest
  in
  keep infinity [] sorted
