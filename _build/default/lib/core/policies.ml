type policy =
  | Umm_policy
  | Greedy
  | Exact_small
  | All_features
  | Stream_tile
  | Dnnk_policy of Dnnk.compensation

type outcome = {
  policy_name : string;
  on_chip : Metric.Item_set.t;
  latency : float;
  used_bytes : int;
  feasible : bool;
}

let policy_name = function
  | Umm_policy -> "umm"
  | Greedy -> "greedy"
  | Exact_small -> "exact"
  | All_features -> "all-features"
  | Stream_tile -> "stream-tile"
  | Dnnk_policy Dnnk.Table_approx -> "dnnk"
  | Dnnk_policy Dnnk.Exact_iterative -> "dnnk-exact"

let vbuf_blocks vb = Dnnk.blocks_of_bytes vb.Vbuffer.size_bytes

let bytes_of_vbufs vbufs =
  List.fold_left (fun acc vb -> acc + (vbuf_blocks vb * Dnnk.block_bytes)) 0 vbufs

let outcome_of_vbufs name metric ~capacity_bytes chosen =
  let on_chip =
    Metric.Item_set.of_list (List.concat_map (fun vb -> vb.Vbuffer.members) chosen)
  in
  let used_bytes = bytes_of_vbufs chosen in
  { policy_name = name;
    on_chip;
    latency = Metric.total_latency metric ~on_chip;
    used_bytes;
    feasible = used_bytes <= capacity_bytes }

(* Lazy greedy: repeatedly take the buffer with the best marginal
   gain-per-block ratio that still fits. *)
let greedy metric ~capacity_bytes vbufs =
  let capacity = capacity_bytes / Dnnk.block_bytes in
  let rec loop chosen used remaining =
    let on_chip =
      Metric.Item_set.of_list (List.concat_map (fun vb -> vb.Vbuffer.members) chosen)
    in
    let scored =
      List.filter_map
        (fun vb ->
          let blocks = vbuf_blocks vb in
          if used + blocks > capacity then None
          else
            let gain = Metric.marginal_gain_many metric ~on_chip vb.Vbuffer.members in
            if gain <= 0. then None
            else Some (gain /. float_of_int blocks, vb, blocks))
        remaining
    in
    match scored with
    | [] -> chosen
    | first :: rest ->
      let _, best, blocks =
        List.fold_left
          (fun ((br, _, _) as b) ((r, _, _) as c) -> if r > br then c else b)
          first rest
      in
      loop (best :: chosen) (used + blocks)
        (List.filter (fun vb -> vb.Vbuffer.vbuf_id <> best.Vbuffer.vbuf_id) remaining)
  in
  loop [] 0 vbufs

let exact_small metric ~capacity_bytes vbufs =
  let n = List.length vbufs in
  if n > 20 then
    invalid_arg
      (Printf.sprintf "Policies: exact enumeration limited to 20 buffers, got %d" n);
  let arr = Array.of_list vbufs in
  let capacity = capacity_bytes / Dnnk.block_bytes in
  let best = ref ([], infinity) in
  for mask = 0 to (1 lsl n) - 1 do
    let chosen = ref [] and blocks = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        chosen := arr.(i) :: !chosen;
        blocks := !blocks + vbuf_blocks arr.(i)
      end
    done;
    if !blocks <= capacity then begin
      let on_chip =
        Metric.Item_set.of_list
          (List.concat_map (fun vb -> vb.Vbuffer.members) !chosen)
      in
      let lat = Metric.total_latency metric ~on_chip in
      if lat < snd !best then best := (!chosen, lat)
    end
  done;
  fst !best

let feature_items metric =
  Metric.eligible_items metric ~memory_bound_only:false
  |> List.filter (function
       | Metric.Feature_value _ -> true
       | Metric.Weight_of _ | Metric.Weight_slice _ -> false)

let run metric ~dtype ~capacity_bytes vbufs policy =
  let name = policy_name policy in
  match policy with
  | Umm_policy -> outcome_of_vbufs name metric ~capacity_bytes []
  | Greedy ->
    outcome_of_vbufs name metric ~capacity_bytes
      (greedy metric ~capacity_bytes vbufs)
  | Exact_small ->
    outcome_of_vbufs name metric ~capacity_bytes
      (exact_small metric ~capacity_bytes vbufs)
  | Dnnk_policy compensation ->
    let r = Dnnk.allocate ~compensation metric ~capacity_bytes vbufs in
    outcome_of_vbufs name metric ~capacity_bytes r.Dnnk.chosen
  | All_features ->
    (* Cloud-DNN style: pin every intermediate feature map, capacity be
       damned; feasibility reports whether the device could hold it. *)
    let items = feature_items metric in
    let on_chip = Metric.Item_set.of_list items in
    let used_bytes =
      List.fold_left
        (fun acc it ->
          acc
          + (Dnnk.blocks_of_bytes (Metric.item_size_bytes dtype metric it)
            * Dnnk.block_bytes))
        0 items
    in
    { policy_name = name;
      on_chip;
      latency = Metric.total_latency metric ~on_chip;
      used_bytes;
      feasible = used_bytes <= capacity_bytes }
  | Stream_tile ->
    (* TGPA style: inter-stage features stream tile-by-tile between
       pipelined accelerators and never touch DDR; weights stream.  The
       on-chip cost is a double buffer of the two largest inter-stage
       values. *)
    let items = feature_items metric in
    let on_chip = Metric.Item_set.of_list items in
    let sizes =
      List.map (fun it -> Metric.item_size_bytes dtype metric it) items
      |> List.sort (fun a b -> compare b a)
    in
    let used_bytes =
      match sizes with a :: b :: _ -> a + b | [ a ] -> a | [] -> 0
    in
    { policy_name = name;
      on_chip;
      latency = Metric.total_latency metric ~on_chip;
      used_bytes;
      feasible = used_bytes <= capacity_bytes }
