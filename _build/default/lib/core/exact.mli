(** Branch-and-bound exact allocation (an extension beyond the paper).

    {!Policies.Exact_small} enumerates subsets and stops being practical
    around 20 buffers.  This solver searches the same space with
    best-first branch and bound: the admissible bound adds, to the gain
    already locked in, each touched node's *remaining* reduction
    potential — its current Eq. 1 latency minus its compute floor — which
    never underestimates what the open buffers could still achieve.
    Problems in the low hundreds of buffers close exactly within seconds
    when capacity pressure prunes well; a node budget caps the search and
    reports whether the result is proven optimal.  The incumbent is
    seeded with DNNK's solution, so even a truncated search never
    returns anything worse than the heuristic. *)

type result = {
  chosen : Vbuffer.t list;
  on_chip : Metric.Item_set.t;
  latency : float;          (** Exact Eq. 1 total of the allocation. *)
  proven_optimal : bool;    (** False when the node budget ran out. *)
  nodes_explored : int;
}

val solve :
  ?node_budget:int -> Metric.t -> capacity_bytes:int -> Vbuffer.t list ->
  result
(** [node_budget] (default 200_000) bounds the search tree.  Raises
    [Invalid_argument] on negative capacity. *)
