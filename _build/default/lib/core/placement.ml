type bank = Uram | Bram

type region = {
  bank : bank;
  first_block : int;
  block_count : int;
}

type assignment = {
  vbuf : Vbuffer.t;
  region : region;
}

type map = {
  assignments : assignment list;
  uram_blocks_used : int;
  bram_blocks_used : int;
}

let overlaps a b =
  a.bank = b.bank
  && a.first_block < b.first_block + b.block_count
  && b.first_block < a.first_block + a.block_count

let place ~device ~tile_bytes vbufs =
  let total = device.Fpga.Device.total in
  let uram_cap = total.Fpga.Resource.uram in
  let bram_cap = total.Fpga.Resource.bram36 in
  (* Tile buffers occupy the low BRAM blocks. *)
  let tile_bram =
    (tile_bytes + Fpga.Resource.bram36_bytes - 1) / Fpga.Resource.bram36_bytes
  in
  if tile_bram > bram_cap then
    Error
      (Printf.sprintf "tile buffers need %d BRAM36 blocks, device has %d"
         tile_bram bram_cap)
  else begin
    let ordered =
      List.stable_sort
        (fun a b -> compare b.Vbuffer.size_bytes a.Vbuffer.size_bytes)
        vbufs
    in
    let uram_cursor = ref 0 in
    let bram_cursor = ref tile_bram in
    let rec assign acc = function
      | [] -> Ok (List.rev acc)
      | vb :: rest ->
        let uram_blocks =
          (vb.Vbuffer.size_bytes + Fpga.Resource.uram_bytes - 1)
          / Fpga.Resource.uram_bytes
        in
        if !uram_cursor + uram_blocks <= uram_cap then begin
          let region =
            { bank = Uram; first_block = !uram_cursor; block_count = uram_blocks }
          in
          uram_cursor := !uram_cursor + uram_blocks;
          assign ({ vbuf = vb; region } :: acc) rest
        end
        else begin
          let bram_blocks =
            (vb.Vbuffer.size_bytes + Fpga.Resource.bram36_bytes - 1)
            / Fpga.Resource.bram36_bytes
          in
          if !bram_cursor + bram_blocks <= bram_cap then begin
            let region =
              { bank = Bram; first_block = !bram_cursor; block_count = bram_blocks }
            in
            bram_cursor := !bram_cursor + bram_blocks;
            assign ({ vbuf = vb; region } :: acc) rest
          end
          else
            Error
              (Printf.sprintf
                 "buffer vbuf%d (%d B) does not fit: URAM %d/%d, BRAM %d/%d"
                 vb.Vbuffer.vbuf_id vb.Vbuffer.size_bytes !uram_cursor uram_cap
                 !bram_cursor bram_cap)
        end
    in
    match assign [] ordered with
    | Error _ as e -> e
    | Ok assignments ->
      Ok
        { assignments;
          uram_blocks_used = !uram_cursor;
          bram_blocks_used = !bram_cursor }
  end

let pp ppf map =
  Format.fprintf ppf "memory map: %d URAM blocks, %d BRAM36 blocks@."
    map.uram_blocks_used map.bram_blocks_used;
  List.iter
    (fun a ->
      Format.fprintf ppf "  %-5s %4d..%4d  %a@."
        (match a.region.bank with Uram -> "URAM" | Bram -> "BRAM")
        a.region.first_block
        (a.region.first_block + a.region.block_count - 1)
        Vbuffer.pp a.vbuf)
    map.assignments
