(** DDR traffic and energy accounting for an allocation (an extension
    beyond the paper, quantifying the efficiency claim behind its
    motivation: off-chip transfers dominate both time and energy).

    Traffic counts the bytes each interface moves per inference under a
    given allocation: pinned feature values move nothing, pinned weights
    load once (prefetch), streamed tensors pay their tile reloads.  The
    energy model charges per-byte DDR and SRAM costs and a per-MAC
    compute cost with published order-of-magnitude constants. *)

type t = {
  if_bytes : int;   (** Input-feature DDR reads. *)
  wt_bytes : int;   (** Weight DDR reads (streaming + one-time loads). *)
  of_bytes : int;   (** Output-feature DDR writes. *)
}

val total_bytes : t -> int

val of_allocation : Metric.t -> on_chip:Metric.Item_set.t -> t
(** Per-inference DDR traffic under the allocation. *)

val umm : Metric.t -> t
(** Traffic with everything streamed. *)

type energy = {
  ddr_joules : float;
  sram_joules : float;
  compute_joules : float;
}

val total_joules : energy -> float

type energy_model = {
  ddr_pj_per_byte : float;    (** ~160 pJ/byte for DDR4 access+IO. *)
  sram_pj_per_byte : float;   (** ~1 pJ/byte for on-chip SRAM. *)
  mac_pj : float;             (** Per-MAC datapath energy. *)
}

val default_energy_model : Tensor.Dtype.t -> energy_model
(** Order-of-magnitude constants per precision (larger MACs cost more). *)

val energy_of_allocation :
  ?model:energy_model -> Metric.t -> dtype:Tensor.Dtype.t ->
  on_chip:Metric.Item_set.t -> energy
(** Energy per inference: DDR traffic at the DDR rate, the same tensor
    volumes re-read from SRAM where pinned, and the MAC datapath. *)
