(** Allocation policies: the paper's algorithm and the alternatives it is
    measured against.

    Besides the UMM baseline and DNNK itself (both compensation
    variants), the module models the two design styles of the paper's
    Table 3 — Cloud-DNN [3] (keep every intermediate feature map on chip)
    and TGPA [17] (stream feature tiles between pipelined accelerator
    stages) — plus a lazy-greedy knapsack and exact subset enumeration
    used by the ablation bench and the correctness tests. *)

type policy =
  | Umm_policy    (** Everything streams from DDR. *)
  | Greedy        (** Lazy greedy by marginal gain per block. *)
  | Exact_small   (** Optimal subset by enumeration (<= 20 buffers). *)
  | All_features  (** Cloud-DNN style: all feature maps pinned. *)
  | Stream_tile   (** TGPA style: features never touch DDR, tile cost. *)
  | Dnnk_policy of Dnnk.compensation

type outcome = {
  policy_name : string;
  on_chip : Metric.Item_set.t;
  latency : float;       (** Exact Eq. 1 total for the allocation. *)
  used_bytes : int;      (** Block-rounded SRAM demand. *)
  feasible : bool;       (** Demand fits the given capacity. *)
}

val policy_name : policy -> string

val run :
  Metric.t -> dtype:Tensor.Dtype.t -> capacity_bytes:int -> Vbuffer.t list ->
  policy -> outcome
(** Evaluate one policy over the given virtual buffers.  [Exact_small]
    raises [Invalid_argument] beyond 20 buffers. *)
