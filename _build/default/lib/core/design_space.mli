(** The per-block allocation design space (paper Fig. 2b).

    Inception-v4 has 14 inception blocks; choosing, for each block,
    whether its tensors live on or off chip spans 2^14 = 16384 design
    points.  Each point is evaluated exactly: SRAM demand is the sum of
    the chosen blocks' buffer demands (no cross-block sharing — this is
    the naive space LCMM improves on), latency is the exact Eq. 1 total.
    The paper's observation reproduces here: more memory does not imply
    more performance, and many near-capacity points are far from the
    frontier. *)

type point = {
  mask : int;            (** Bit i set = block i's tensors on chip. *)
  sram_bytes : int;
  latency : float;
  tops : float;
}

val block_items :
  Metric.t -> block:string -> Metric.item list
(** Pinnable items whose producing node carries the given block tag. *)

val sweep :
  ?progress:(int -> unit) -> Metric.t -> dtype:Tensor.Dtype.t ->
  total_macs:int -> blocks:(string * Metric.item list) list -> point list
(** Evaluate every subset of the given blocks (2^n points — keep n small,
    the paper's case is 14).  Raises [Invalid_argument] beyond 20
    blocks. *)

val pareto : point list -> point list
(** Points not dominated in (sram_bytes, latency), sorted by size. *)
