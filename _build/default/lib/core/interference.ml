module Pair_set = Set.Make (struct
  type t = int * int

  let compare = Stdlib.compare
end)

type t = {
  items : Metric.item array;
  intervals : Liveness.interval array;
  never_share : Metric.item -> Metric.item -> bool;
  mutable false_edges : Pair_set.t;
}

let build ?(never_share = fun _ _ -> false) ~items ~intervals () =
  if Array.length items <> Array.length intervals then
    invalid_arg "Interference.build: mismatched array lengths";
  { items; intervals; never_share; false_edges = Pair_set.empty }

let item_count t = Array.length t.items

let check_index t i =
  if i < 0 || i >= item_count t then
    invalid_arg (Printf.sprintf "Interference: index %d out of range" i)

let item t i =
  check_index t i;
  t.items.(i)

let interval t i =
  check_index t i;
  t.intervals.(i)

let ordered i j = if i < j then (i, j) else (j, i)

let add_false_edge t i j =
  check_index t i;
  check_index t j;
  if i = j then invalid_arg "Interference.add_false_edge: self edge";
  t.false_edges <- Pair_set.add (ordered i j) t.false_edges

let false_edges t = Pair_set.elements t.false_edges

let conflict t i j =
  check_index t i;
  check_index t j;
  i <> j
  && (Liveness.overlaps t.intervals.(i) t.intervals.(j)
     || t.never_share t.items.(i) t.items.(j)
     || Pair_set.mem (ordered i j) t.false_edges)

let degree t i =
  check_index t i;
  let d = ref 0 in
  for j = 0 to item_count t - 1 do
    if j <> i && conflict t i j then incr d
  done;
  !d
