lib/core/dnnk.ml: Array Fpga Hashtbl List Metric Vbuffer
