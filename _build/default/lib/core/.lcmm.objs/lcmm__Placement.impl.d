lib/core/placement.ml: Format Fpga List Printf Vbuffer
