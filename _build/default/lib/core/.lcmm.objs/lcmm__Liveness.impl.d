lib/core/liveness.ml: Dnn_graph Format Metric
