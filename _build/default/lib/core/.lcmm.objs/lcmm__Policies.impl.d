lib/core/policies.ml: Array Dnnk List Metric Printf Vbuffer
