lib/core/interference.mli: Liveness Metric
