lib/core/sensitivity.ml: Accel Format Framework List
