lib/core/splitting.mli: Coloring Dnnk Interference Metric
