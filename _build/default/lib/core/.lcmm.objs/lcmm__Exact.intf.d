lib/core/exact.mli: Metric Vbuffer
