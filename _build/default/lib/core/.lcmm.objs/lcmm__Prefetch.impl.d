lib/core/prefetch.ml: Accel Array Format Hashtbl List Metric Option Printf
