lib/core/sensitivity.mli: Accel Dnn_graph Format Tensor
