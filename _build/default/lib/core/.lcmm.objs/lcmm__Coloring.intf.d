lib/core/coloring.mli: Interference Vbuffer
