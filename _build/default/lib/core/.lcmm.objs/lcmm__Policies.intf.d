lib/core/policies.mli: Dnnk Metric Tensor Vbuffer
