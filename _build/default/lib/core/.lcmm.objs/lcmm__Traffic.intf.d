lib/core/traffic.mli: Metric Tensor
