lib/core/framework.ml: Accel Array Coloring Dnn_graph Dnnk Fpga Interference List Liveness Metric Prefetch Splitting Tensor Vbuffer
