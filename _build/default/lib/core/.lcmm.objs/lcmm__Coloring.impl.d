lib/core/coloring.ml: Array Fun Interference List Metric Vbuffer
