lib/core/design_space.ml: Array Dnn_graph Dnnk List Metric
