lib/core/framework.mli: Accel Coloring Dnn_graph Dnnk Fpga Metric Prefetch Tensor Vbuffer
