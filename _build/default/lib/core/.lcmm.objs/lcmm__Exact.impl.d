lib/core/exact.ml: Accel Array Dnnk List Metric Vbuffer
