lib/core/vbuffer.ml: Format List Metric
