lib/core/design_space.mli: Metric Tensor
