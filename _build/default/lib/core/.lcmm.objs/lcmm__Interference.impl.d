lib/core/interference.ml: Array Liveness Metric Printf Set Stdlib
