lib/core/metric.mli: Accel Dnn_graph Format Hashtbl Set Tensor
