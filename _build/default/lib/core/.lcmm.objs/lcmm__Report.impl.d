lib/core/report.ml: Accel Buffer Design_space Dnnk Format Framework Fun List Metric Printf String Tensor
