lib/core/prefetch.mli: Format Metric
