lib/core/vbuffer.mli: Format Metric
