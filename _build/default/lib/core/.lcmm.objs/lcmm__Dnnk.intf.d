lib/core/dnnk.mli: Metric Vbuffer
