lib/core/traffic.ml: Accel Array Dnn_graph List Metric Tensor
