lib/core/liveness.mli: Dnn_graph Format Metric
