lib/core/metric.ml: Accel Array Dnn_graph Format Hashtbl List Set Stdlib Tensor
