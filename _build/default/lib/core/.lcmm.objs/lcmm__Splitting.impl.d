lib/core/splitting.ml: Coloring Dnnk Interference List Vbuffer
