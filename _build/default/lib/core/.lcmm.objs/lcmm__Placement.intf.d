lib/core/placement.mli: Format Fpga Vbuffer
