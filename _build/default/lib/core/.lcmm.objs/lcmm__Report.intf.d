lib/core/report.mli: Design_space Dnn_graph Framework
