(** Lifespan intervals over the topological schedule.

    Node ids double as topological positions.  A feature value is live
    from its producing node to its last consumer (both inclusive: the
    producer's output buffer and a consumer's input buffer coexist with
    the node's execution).  A prefetched weight buffer is live from the
    node its prefetch starts at to the node that consumes it. *)

type interval = {
  start_pos : int;
  end_pos : int;  (** >= [start_pos]. *)
}

val make : start_pos:int -> end_pos:int -> interval
(** Raises [Invalid_argument] if [end_pos < start_pos]. *)

val overlaps : interval -> interval -> bool
(** Closed-interval intersection test. *)

val feature_interval : Dnn_graph.Graph.t -> int -> interval
(** Lifespan of the value produced by the given node. *)

val item_interval :
  Dnn_graph.Graph.t -> prefetch_source:(int -> int option) -> Metric.item ->
  interval
(** Lifespan of an allocation item.  For weights, [prefetch_source]
    supplies the PDG start node (defaults to the consuming node itself
    when [None], i.e. no prefetch headroom). *)

val pp : Format.formatter -> interval -> unit
