(** Physical placement of the allocation.

    DNNK decides *which* buffers get SRAM; this pass decides *where*:
    each chosen virtual buffer receives a contiguous run of URAM blocks
    (large, byte-writable — first choice for tensor buffers), falling
    back to BRAM36 blocks once URAM is exhausted; the tile buffers claim
    BRAM first, mirroring the reporting convention of the resource model.
    The paper's Table 2 narrates allocations at exactly this granularity
    ("9 of them consuming 32 URAM blocks"). *)

type bank = Uram | Bram

type region = {
  bank : bank;
  first_block : int;  (** Index within the bank. *)
  block_count : int;
}

type assignment = {
  vbuf : Vbuffer.t;
  region : region;
}

type map = {
  assignments : assignment list;   (** In placement order. *)
  uram_blocks_used : int;
  bram_blocks_used : int;          (** Including the tile buffers. *)
}

val place :
  device:Fpga.Device.t -> tile_bytes:int -> Vbuffer.t list ->
  (map, string) result
(** Place the given (chosen) buffers.  Buffers are placed largest-first;
    the error explains which buffer did not fit. *)

val overlaps : region -> region -> bool
(** Same bank and intersecting block ranges. *)

val pp : Format.formatter -> map -> unit
(** Human-readable memory map. *)
