(** Weight-buffer prefetching and the prefetching dependence graph
    (paper section 3.2, Fig. 6).

    For each node whose weights will live on chip, loading the tensor
    takes [T = bytes / bw] seconds.  A backtrace over the schedule finds
    the latest earlier node [k'] such that the elapsed execution time
    from the start of [k'] to the start of the target is at least [T];
    starting the prefetch with [k'] then fully hides the load.  When even
    starting at node 0 is too late (early layers with huge weights), the
    residual is an unhidden stall the allocator must charge.

    The prefetch edge [(k', k)] also bounds the weight buffer's lifespan:
    the buffer is busy from [k'] to [k], which is what weight-buffer
    sharing colors over. *)

type edge = {
  source : int;         (** Node whose start triggers the prefetch. *)
  target : int;         (** Node consuming the weights. *)
  load_seconds : float; (** One-time load latency of the tensor. *)
  stall_seconds : float;(** Unhidden residual (0 when fully hidden). *)
}

type t

val build :
  Metric.t -> targets:int list -> node_latency:(int -> float) -> t
(** Build the PDG for the given weight-consuming nodes, using
    [node_latency] as the elapsed-time estimate per schedule slot
    (typically the UMM node latencies, the design state in which the
    pass runs).  Raises [Invalid_argument] if a target has no weights. *)

val source_of : t -> int -> int option
(** PDG source for a target node; [None] when the node is not a target. *)

val edge_of : t -> int -> edge option

val edges : t -> edge list
(** All prefetch edges, by target order. *)

val stall_seconds : t -> int -> float
(** Residual stall for a target (0 for unknown targets). *)

val total_stall : t -> float

val pp : Format.formatter -> t -> unit
