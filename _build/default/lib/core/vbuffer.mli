(** Virtual buffers (the paper's Fig. 5b / Fig. 7a).

    A virtual buffer is a set of items with pairwise-disjoint lifespans
    that will share one physical on-chip buffer if allocated; its size is
    the largest member's size.  DNNK decides which virtual buffers get
    physical SRAM. *)

type t = {
  vbuf_id : int;
  size_bytes : int;              (** max over members. *)
  members : Metric.item list;    (** In decreasing size order. *)
}

val make : vbuf_id:int -> sized_members:(Metric.item * int) list -> t
(** Builds the buffer from (item, size) pairs.  Raises [Invalid_argument]
    on an empty member list. *)

val singleton : vbuf_id:int -> Metric.item -> size_bytes:int -> t

val member_count : t -> int

val pp : Format.formatter -> t -> unit
