(** Sensitivity of the UMM/LCMM comparison to the memory-system
    calibration (an extension beyond the paper).

    The two calibration constants of this reproduction — achieved DDR
    efficiency and per-tile transaction overhead — were fixed globally
    before recording results.  These sweeps show how the headline
    speedup moves as each knob varies, so a reader can judge how much of
    the conclusion depends on the calibration. *)

type point = {
  knob_value : float;
  umm_latency : float;   (** Seconds, UMM design at this setting. *)
  lcmm_latency : float;  (** Seconds, LCMM plan at this setting. *)
  speedup : float;
}

val ddr_efficiency_sweep :
  ?values:float list -> ?umm_tile:Accel.Tiling.t -> ?lcmm_tile:Accel.Tiling.t ->
  Tensor.Dtype.t -> Dnn_graph.Graph.t -> point list
(** Sweep achieved/theoretical DDR bandwidth (default 0.4..1.0).  Lower
    efficiency means a more memory-bound baseline and a larger LCMM win.
    Tile shapes can be pinned per style (pass the DSE winners) so the
    sweep isolates the memory system from re-tiling effects; the default
    tile is used otherwise. *)

val burst_overhead_sweep :
  ?values:float list -> ?umm_tile:Accel.Tiling.t -> ?lcmm_tile:Accel.Tiling.t ->
  Tensor.Dtype.t -> Dnn_graph.Graph.t -> point list
(** Sweep per-transaction overhead in seconds (default 0..1 µs). *)

val pp_points : Format.formatter -> string -> point list -> unit
(** Aligned table with the given knob label. *)
