type t = {
  vbuf_id : int;
  size_bytes : int;
  members : Metric.item list;
}

let make ~vbuf_id ~sized_members =
  match sized_members with
  | [] -> invalid_arg "Vbuffer.make: empty member list"
  | _ :: _ ->
    let sorted =
      List.sort (fun (_, a) (_, b) -> compare b a) sized_members
    in
    let size_bytes = match sorted with (_, s) :: _ -> s | [] -> 0 in
    { vbuf_id; size_bytes; members = List.map fst sorted }

let singleton ~vbuf_id item ~size_bytes =
  { vbuf_id; size_bytes; members = [ item ] }

let member_count t = List.length t.members

let pp ppf t =
  Format.fprintf ppf "vbuf%d(%d B: %a)" t.vbuf_id t.size_bytes
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Metric.pp_item)
    t.members
