type interval = { start_pos : int; end_pos : int }

let make ~start_pos ~end_pos =
  if end_pos < start_pos then invalid_arg "Liveness.make: end before start";
  { start_pos; end_pos }

let overlaps a b = a.start_pos <= b.end_pos && b.start_pos <= a.end_pos

let feature_interval g v =
  make ~start_pos:v ~end_pos:(Dnn_graph.Values.last_use g v)

let weight_interval ~prefetch_source n =
  let start_pos = match prefetch_source n with Some s -> s | None -> n in
  make ~start_pos:(min start_pos n) ~end_pos:n

let item_interval g ~prefetch_source = function
  | Metric.Feature_value v -> feature_interval g v
  | Metric.Weight_of n -> weight_interval ~prefetch_source n
  | Metric.Weight_slice { node; _ } -> weight_interval ~prefetch_source node

let pp ppf i = Format.fprintf ppf "[%d,%d]" i.start_pos i.end_pos
