module Latency = Accel.Latency

type t = {
  if_bytes : int;
  wt_bytes : int;
  of_bytes : int;
}

let total_bytes t = t.if_bytes + t.wt_bytes + t.of_bytes

let of_allocation metric ~on_chip =
  let on item = Metric.Item_set.mem item on_chip in
  let acc = ref { if_bytes = 0; wt_bytes = 0; of_bytes = 0 } in
  Array.iter
    (fun p ->
      let id = p.Latency.node_id in
      let if_bytes =
        List.fold_left
          (fun sum (v, bytes) ->
            if on (Metric.Feature_value v) then sum else sum + bytes)
          0 p.Latency.if_stream_bytes
      in
      (* Weights: pinned tensors load once (prefetch); slices split the
         tensor between the two regimes. *)
      let k = metric.Metric.slices.(id) in
      let wt_bytes =
        if p.Latency.wt_stream_bytes = 0 then 0
        else if k = 1 then
          if on (Metric.Weight_of id) then p.Latency.wt_once_bytes
          else p.Latency.wt_stream_bytes
        else begin
          let pinned = ref 0 in
          for index = 0 to k - 1 do
            if on (Metric.Weight_slice { node = id; index; of_k = k }) then
              incr pinned
          done;
          (p.Latency.wt_once_bytes * !pinned / k)
          + (p.Latency.wt_stream_bytes * (k - !pinned) / k)
        end
      in
      let of_bytes =
        if on (Metric.Feature_value id) then 0 else p.Latency.of_stream_bytes
      in
      acc :=
        { if_bytes = !acc.if_bytes + if_bytes;
          wt_bytes = !acc.wt_bytes + wt_bytes;
          of_bytes = !acc.of_bytes + of_bytes })
    metric.Metric.profiles;
  !acc

let umm metric = of_allocation metric ~on_chip:Metric.Item_set.empty

type energy = {
  ddr_joules : float;
  sram_joules : float;
  compute_joules : float;
}

let total_joules e = e.ddr_joules +. e.sram_joules +. e.compute_joules

type energy_model = {
  ddr_pj_per_byte : float;
  sram_pj_per_byte : float;
  mac_pj : float;
}

(* Order-of-magnitude constants from the accelerator-efficiency
   literature (Horowitz ISSCC'14 scaled to bytes): DDR access dominates
   SRAM by two orders of magnitude, which is the entire energy story of
   on-chip reuse. *)
let default_energy_model dtype =
  { ddr_pj_per_byte = 160.;
    sram_pj_per_byte = 1.2;
    mac_pj =
      (match dtype with
      | Tensor.Dtype.I8 -> 0.3
      | Tensor.Dtype.I16 -> 1.0
      | Tensor.Dtype.F32 -> 4.6) }

let energy_of_allocation ?model metric ~dtype ~on_chip =
  let model =
    match model with Some m -> m | None -> default_energy_model dtype
  in
  let traffic = of_allocation metric ~on_chip in
  let baseline = umm metric in
  (* Everything the UMM design would have streamed still reaches the
     datapath; the pinned share is served from SRAM instead of DDR. *)
  let sram_bytes = total_bytes baseline - total_bytes traffic in
  let macs = Dnn_graph.Graph.total_macs metric.Metric.graph in
  { ddr_joules = float_of_int (total_bytes traffic) *. model.ddr_pj_per_byte *. 1e-12;
    sram_joules = float_of_int (max 0 sram_bytes) *. model.sram_pj_per_byte *. 1e-12;
    compute_joules = float_of_int macs *. model.mac_pj *. 1e-12 }
