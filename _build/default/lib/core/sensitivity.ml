type point = {
  knob_value : float;
  umm_latency : float;
  lcmm_latency : float;
  speedup : float;
}

(* One fixed tile shape keeps the sweep about the memory system rather
   than about re-tiling; DSE would partially mask each knob. *)
let sweep ~make_config g values =
  List.map
    (fun value ->
      let umm_cfg = make_config Accel.Config.Umm value in
      let umm_latency =
        Accel.Latency.umm_total (Accel.Latency.profile_graph umm_cfg g)
      in
      let lcmm_cfg = make_config Accel.Config.Lcmm value in
      let plan = Framework.plan lcmm_cfg g in
      let lcmm_latency = plan.Framework.predicted_latency in
      { knob_value = value;
        umm_latency;
        lcmm_latency;
        speedup = umm_latency /. lcmm_latency })
    values

let tile_for ~umm_tile ~lcmm_tile = function
  | Accel.Config.Umm -> umm_tile
  | Accel.Config.Lcmm -> lcmm_tile

let ddr_efficiency_sweep ?(values = [ 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ])
    ?umm_tile ?lcmm_tile dtype g =
  let make_config style value =
    Accel.Config.make ?tile:(tile_for ~umm_tile ~lcmm_tile style)
      ~ddr_efficiency:value ~style dtype
  in
  sweep ~make_config g values

let burst_overhead_sweep ?(values = [ 0.; 1e-7; 2e-7; 4e-7; 7e-7; 1e-6 ])
    ?umm_tile ?lcmm_tile dtype g =
  let make_config style value =
    Accel.Config.make ?tile:(tile_for ~umm_tile ~lcmm_tile style)
      ~burst_overhead:value ~style dtype
  in
  sweep ~make_config g values

let pp_points ppf label points =
  Format.fprintf ppf "%12s %10s %10s %8s@." label "UMM ms" "LCMM ms" "speedup";
  List.iter
    (fun p ->
      Format.fprintf ppf "%12.3g %10.3f %10.3f %8.2f@." p.knob_value
        (p.umm_latency *. 1e3) (p.lcmm_latency *. 1e3) p.speedup)
    points
