(** SqueezeNet 1.1 (Iandola et al., 2016).

    Fire modules (squeeze 1x1, then parallel expand 1x1 / expand 3x3
    concatenated) with very few parameters — the whole weight set fits on
    chip, so LCMM's weight handling degenerates gracefully to
    keep-everything, a useful boundary case. *)

val name : string

val build : unit -> Dnn_graph.Graph.t
(** SqueezeNet 1.1: 8 fire modules, 227x227 input. *)

val block_names : string list
(** The fire module tags in network order. *)
