module B = Dnn_graph.Builder
module Op = Dnn_graph.Op

let name = "alexnet"

let build () =
  let b = B.create () in
  let x = B.input b ~name:"data" ~channels:3 ~height:227 ~width:227 () in
  let x =
    B.conv b ~name:"conv1" ~kernel:(11, 11) ~stride:(4, 4) ~padding:Op.Valid
      ~out_channels:96 x
  in
  let x = B.pool b ~name:"pool1" ~kernel:(3, 3) ~stride:(2, 2) x in
  let x =
    B.conv b ~name:"conv2" ~kernel:(5, 5) ~padding:(Op.Explicit 2)
      ~out_channels:256 ~groups:2 x
  in
  let x = B.pool b ~name:"pool2" ~kernel:(3, 3) ~stride:(2, 2) x in
  let x =
    B.conv b ~name:"conv3" ~kernel:(3, 3) ~padding:(Op.Explicit 1)
      ~out_channels:384 x
  in
  let x =
    B.conv b ~name:"conv4" ~kernel:(3, 3) ~padding:(Op.Explicit 1)
      ~out_channels:384 ~groups:2 x
  in
  let x =
    B.conv b ~name:"conv5" ~kernel:(3, 3) ~padding:(Op.Explicit 1)
      ~out_channels:256 ~groups:2 x
  in
  let x = B.pool b ~name:"pool5" ~kernel:(3, 3) ~stride:(2, 2) x in
  let x = B.dense b ~name:"fc6" ~out_features:4096 x in
  let x = B.dense b ~name:"fc7" ~out_features:4096 x in
  let _logits = B.dense b ~name:"fc8" ~out_features:1000 x in
  B.finish b
