module B = Dnn_graph.Builder
module Op = Dnn_graph.Op

let name = "inception_v3"

let block_names =
  List.concat
    [ List.init 3 (fun i -> Printf.sprintf "mixed_a%d" (i + 1));
      List.init 4 (fun i -> Printf.sprintf "mixed_b%d" (i + 1));
      List.init 2 (fun i -> Printf.sprintf "mixed_c%d" (i + 1)) ]

let conv b ~name ?(kernel = (1, 1)) ?(stride = (1, 1)) ?(padding = Op.Same) ~out x =
  B.conv b ~name ~kernel ~stride ~padding ~out_channels:out x

let avg_pool_same b ~name x =
  B.pool b ~name ~kind:Op.Avg ~kernel:(3, 3) ~stride:(1, 1) ~padding:(Op.Explicit 1) x

(* 35x35 inception block (BN-A family): pool_proj varies per block. *)
let block_a b tag ~pool_proj x =
  B.with_block b tag (fun () ->
    let cname s = Printf.sprintf "%s/%s" tag s in
    let b1 = conv b ~name:(cname "1x1") ~out:64 x in
    let b2 = conv b ~name:(cname "5x5_r") ~out:48 x in
    let b2 = conv b ~name:(cname "5x5") ~kernel:(5, 5) ~out:64 b2 in
    let b3 = conv b ~name:(cname "d3x3_r") ~out:64 x in
    let b3 = conv b ~name:(cname "d3x3_1") ~kernel:(3, 3) ~out:96 b3 in
    let b3 = conv b ~name:(cname "d3x3_2") ~kernel:(3, 3) ~out:96 b3 in
    let b4 = avg_pool_same b ~name:(cname "pool") x in
    let b4 = conv b ~name:(cname "pool_1x1") ~out:pool_proj b4 in
    B.concat b ~name:(cname "output") [ b1; b2; b3; b4 ])

(* 17x17 inception block with factorized 7x7 convolutions. *)
let block_b b tag ~mid x =
  B.with_block b tag (fun () ->
    let cname s = Printf.sprintf "%s/%s" tag s in
    let b1 = conv b ~name:(cname "1x1") ~out:192 x in
    let b2 = conv b ~name:(cname "7_r") ~out:mid x in
    let b2 = conv b ~name:(cname "7_1x7") ~kernel:(1, 7) ~out:mid b2 in
    let b2 = conv b ~name:(cname "7_7x1") ~kernel:(7, 1) ~out:192 b2 in
    let b3 = conv b ~name:(cname "d7_r") ~out:mid x in
    let b3 = conv b ~name:(cname "d7_7x1a") ~kernel:(7, 1) ~out:mid b3 in
    let b3 = conv b ~name:(cname "d7_1x7a") ~kernel:(1, 7) ~out:mid b3 in
    let b3 = conv b ~name:(cname "d7_7x1b") ~kernel:(7, 1) ~out:mid b3 in
    let b3 = conv b ~name:(cname "d7_1x7b") ~kernel:(1, 7) ~out:192 b3 in
    let b4 = avg_pool_same b ~name:(cname "pool") x in
    let b4 = conv b ~name:(cname "pool_1x1") ~out:192 b4 in
    B.concat b ~name:(cname "output") [ b1; b2; b3; b4 ])

(* 8x8 inception block with expanded (split) filter banks. *)
let block_c b tag x =
  B.with_block b tag (fun () ->
    let cname s = Printf.sprintf "%s/%s" tag s in
    let b1 = conv b ~name:(cname "1x1") ~out:320 x in
    let b2 = conv b ~name:(cname "3_r") ~out:384 x in
    let b2a = conv b ~name:(cname "3_1x3") ~kernel:(1, 3) ~out:384 b2 in
    let b2b = conv b ~name:(cname "3_3x1") ~kernel:(3, 1) ~out:384 b2 in
    let b3 = conv b ~name:(cname "d3_r") ~out:448 x in
    let b3 = conv b ~name:(cname "d3_3x3") ~kernel:(3, 3) ~out:384 b3 in
    let b3a = conv b ~name:(cname "d3_1x3") ~kernel:(1, 3) ~out:384 b3 in
    let b3b = conv b ~name:(cname "d3_3x1") ~kernel:(3, 1) ~out:384 b3 in
    let b4 = avg_pool_same b ~name:(cname "pool") x in
    let b4 = conv b ~name:(cname "pool_1x1") ~out:192 b4 in
    B.concat b ~name:(cname "output") [ b1; b2a; b2b; b3a; b3b; b4 ])

let reduction_a b x =
  B.with_block b "reduction_a3" (fun () ->
    let b1 = conv b ~name:"red_a/3x3" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Valid ~out:384 x in
    let b2 = conv b ~name:"red_a/d_r" ~out:64 x in
    let b2 = conv b ~name:"red_a/d_3x3" ~kernel:(3, 3) ~out:96 b2 in
    let b2 = conv b ~name:"red_a/d_3x3s2" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Valid ~out:96 b2 in
    let b3 = B.pool b ~name:"red_a/pool" ~kernel:(3, 3) ~stride:(2, 2) x in
    B.concat b ~name:"red_a/output" [ b1; b2; b3 ])

let reduction_b b x =
  B.with_block b "reduction_b4" (fun () ->
    let b1 = conv b ~name:"red_b/3_r" ~out:192 x in
    let b1 = conv b ~name:"red_b/3x3" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Valid ~out:320 b1 in
    let b2 = conv b ~name:"red_b/7_r" ~out:192 x in
    let b2 = conv b ~name:"red_b/7_1x7" ~kernel:(1, 7) ~out:192 b2 in
    let b2 = conv b ~name:"red_b/7_7x1" ~kernel:(7, 1) ~out:192 b2 in
    let b2 = conv b ~name:"red_b/7_3x3" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Valid ~out:192 b2 in
    let b3 = B.pool b ~name:"red_b/pool" ~kernel:(3, 3) ~stride:(2, 2) x in
    B.concat b ~name:"red_b/output" [ b1; b2; b3 ])

let build () =
  let b = B.create () in
  let x = B.input b ~name:"data" ~channels:3 ~height:299 ~width:299 () in
  let x = conv b ~name:"stem/conv1" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Valid ~out:32 x in
  let x = conv b ~name:"stem/conv2" ~kernel:(3, 3) ~padding:Op.Valid ~out:32 x in
  let x = conv b ~name:"stem/conv3" ~kernel:(3, 3) ~out:64 x in
  let x = B.pool b ~name:"stem/pool1" ~kernel:(3, 3) ~stride:(2, 2) x in
  let x = conv b ~name:"stem/conv4" ~out:80 x in
  let x = conv b ~name:"stem/conv5" ~kernel:(3, 3) ~padding:Op.Valid ~out:192 x in
  let x = B.pool b ~name:"stem/pool2" ~kernel:(3, 3) ~stride:(2, 2) x in
  let x = block_a b "mixed_a1" ~pool_proj:32 x in
  let x = block_a b "mixed_a2" ~pool_proj:64 x in
  let x = block_a b "mixed_a3" ~pool_proj:64 x in
  let x = reduction_a b x in
  let x = block_b b "mixed_b1" ~mid:128 x in
  let x = block_b b "mixed_b2" ~mid:160 x in
  let x = block_b b "mixed_b3" ~mid:160 x in
  let x = block_b b "mixed_b4" ~mid:192 x in
  let x = reduction_b b x in
  let x = block_c b "mixed_c1" x in
  let x = block_c b "mixed_c2" x in
  let x = B.global_pool b ~name:"global_pool" x in
  let _logits = B.dense b ~name:"classifier" ~out_features:1000 x in
  B.finish b
