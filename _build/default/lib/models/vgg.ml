module B = Dnn_graph.Builder

let name = "vgg16"

let name_19 = "vgg19"

(* Configurations D and E of the VGG paper: (convs-per-stage, channels). *)
let stages = [ (2, 64); (2, 128); (3, 256); (3, 512); (3, 512) ]

let stages_19 = [ (2, 64); (2, 128); (4, 256); (4, 512); (4, 512) ]

let build_stages stages =
  let b = B.create () in
  let x = ref (B.input b ~name:"data" ~channels:3 ~height:224 ~width:224 ()) in
  List.iteri
    (fun si (convs, channels) ->
      for ci = 1 to convs do
        let layer_name = Printf.sprintf "conv%d_%d" (si + 1) ci in
        x := B.conv b ~name:layer_name ~kernel:(3, 3) ~out_channels:channels !x
      done;
      let pool_name = Printf.sprintf "pool%d" (si + 1) in
      x := B.pool b ~name:pool_name ~kernel:(2, 2) ~stride:(2, 2) !x)
    stages;
  let x = B.dense b ~name:"fc6" ~out_features:4096 !x in
  let x = B.dense b ~name:"fc7" ~out_features:4096 x in
  let _logits = B.dense b ~name:"fc8" ~out_features:1000 x in
  B.finish b

let build () = build_stages stages

let build_19 () = build_stages stages_19
