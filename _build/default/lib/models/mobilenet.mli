(** MobileNet-v2 (Sandler et al., 2018).

    Inverted-residual bottlenecks built from depthwise convolutions
    (grouped convolutions with one group per channel).  Depthwise layers
    have extreme bandwidth-to-compute ratios, making the model a stress
    test for the memory-bound classification: almost the entire network
    sits under the bandwidth roof. *)

val name : string

val build : unit -> Dnn_graph.Graph.t
(** Standard width-1.0 MobileNet-v2, 224x224 input: 17 inverted-residual
    blocks + stem and head convolutions. *)

val block_names : string list
(** The inverted-residual block tags in network order. *)
