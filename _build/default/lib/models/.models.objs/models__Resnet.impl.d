lib/models/resnet.ml: Dnn_graph List Printf
