lib/models/googlenet.ml: Dnn_graph List Printf
