lib/models/inception_v4.ml: Dnn_graph List Printf
