lib/models/mobilenet.ml: Dnn_graph List Printf Tensor
