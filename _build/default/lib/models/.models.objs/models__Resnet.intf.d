lib/models/resnet.mli: Dnn_graph
