lib/models/googlenet.mli: Dnn_graph
