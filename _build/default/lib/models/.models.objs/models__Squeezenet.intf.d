lib/models/squeezenet.mli: Dnn_graph
