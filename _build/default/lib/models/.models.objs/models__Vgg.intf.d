lib/models/vgg.mli: Dnn_graph
