lib/models/inception_v3.mli: Dnn_graph
