lib/models/mobilenet.mli: Dnn_graph
