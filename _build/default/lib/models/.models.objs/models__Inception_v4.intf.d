lib/models/inception_v4.mli: Dnn_graph
