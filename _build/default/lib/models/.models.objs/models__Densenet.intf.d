lib/models/densenet.mli: Dnn_graph
