lib/models/zoo.ml: Alexnet Densenet Dnn_graph Googlenet Inception_v3 Inception_v4 List Mobilenet Printf Resnet Squeezenet String Vgg
