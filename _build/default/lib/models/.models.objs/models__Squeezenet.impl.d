lib/models/squeezenet.ml: Dnn_graph List Printf
