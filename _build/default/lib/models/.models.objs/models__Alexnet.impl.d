lib/models/alexnet.ml: Dnn_graph
