lib/models/zoo.mli: Dnn_graph
