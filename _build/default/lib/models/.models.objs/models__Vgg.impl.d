lib/models/vgg.ml: Dnn_graph List Printf
