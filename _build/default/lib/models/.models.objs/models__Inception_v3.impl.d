lib/models/inception_v3.ml: Dnn_graph List Printf
