lib/models/densenet.ml: Dnn_graph List Printf Tensor
