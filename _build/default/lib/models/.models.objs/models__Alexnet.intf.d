lib/models/alexnet.mli: Dnn_graph
