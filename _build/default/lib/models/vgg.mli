(** VGG-16 (Simonyan & Zisserman, 2014): deep linear structure with large
    uniform 3x3 convolutions; the canonical compute-bound workload. *)

val name : string

val build : unit -> Dnn_graph.Graph.t
(** 13 convolutions + 3 dense layers, 224x224 input. *)

val name_19 : string

val build_19 : unit -> Dnn_graph.Graph.t
(** VGG-19 (configuration E): 16 convolutions + 3 dense layers. *)
