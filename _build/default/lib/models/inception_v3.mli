(** Inception-v3 (Szegedy et al., 2015).

    The middle member of the inception family: factorized 7x7
    convolutions in the 17x17 stage and expanded filter banks in the 8x8
    stage.  Complements GoogLeNet and Inception-v4 for breadth in the
    inception-style workloads the paper's motivation is built on. *)

val name : string

val build : unit -> Dnn_graph.Graph.t
(** Stem + 3x block-A (35x35) + reduction + 4x block-B (17x17) +
    reduction + 2x block-C (8x8) + classifier, 299x299 input. *)

val block_names : string list
