module B = Dnn_graph.Builder
module Op = Dnn_graph.Op

let name = "squeezenet"

(* (squeeze, expand1x1, expand3x3) per fire module, SqueezeNet 1.1. *)
let configs =
  [ (16, 64, 64); (16, 64, 64); (32, 128, 128); (32, 128, 128);
    (48, 192, 192); (48, 192, 192); (64, 256, 256); (64, 256, 256) ]

let block_names = List.mapi (fun i _ -> Printf.sprintf "fire%d" (i + 2)) configs

let fire b ~tag (squeeze, e1, e3) x =
  B.with_block b tag (fun () ->
    let cname s = Printf.sprintf "%s/%s" tag s in
    let s = B.conv b ~name:(cname "squeeze") ~kernel:(1, 1) ~out_channels:squeeze x in
    let a = B.conv b ~name:(cname "expand1x1") ~kernel:(1, 1) ~out_channels:e1 s in
    let c = B.conv b ~name:(cname "expand3x3") ~kernel:(3, 3) ~out_channels:e3 s in
    B.concat b ~name:(cname "concat") [ a; c ])

let build () =
  let b = B.create () in
  let x = B.input b ~name:"data" ~channels:3 ~height:227 ~width:227 () in
  let x =
    B.conv b ~name:"conv1" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Valid
      ~out_channels:64 x
  in
  let x = B.pool b ~name:"pool1" ~kernel:(3, 3) ~stride:(2, 2) x in
  let tagged = List.combine block_names configs in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let drop n l = List.filteri (fun i _ -> i >= n) l in
  let x =
    List.fold_left (fun acc (tag, cfg) -> fire b ~tag cfg acc) x (take 2 tagged)
  in
  let x = B.pool b ~name:"pool3" ~kernel:(3, 3) ~stride:(2, 2) x in
  let x =
    List.fold_left
      (fun acc (tag, cfg) -> fire b ~tag cfg acc)
      x (take 2 (drop 2 tagged))
  in
  let x = B.pool b ~name:"pool5" ~kernel:(3, 3) ~stride:(2, 2) x in
  let x =
    List.fold_left (fun acc (tag, cfg) -> fire b ~tag cfg acc) x (drop 4 tagged)
  in
  let x = B.conv b ~name:"conv10" ~kernel:(1, 1) ~out_channels:1000 x in
  (* SqueezeNet classifies by global-pooling conv10 directly: no dense head. *)
  let _logits = B.global_pool b ~name:"pool10" x in
  B.finish b
