module B = Dnn_graph.Builder
module Op = Dnn_graph.Op

let name = "googlenet"

let block_names =
  [ "inception_3a"; "inception_3b"; "inception_4a"; "inception_4b";
    "inception_4c"; "inception_4d"; "inception_4e"; "inception_5a";
    "inception_5b" ]

(* (#1x1, #3x3reduce, #3x3, #5x5reduce, #5x5, pool proj) per block, from
   Table 1 of the GoogLeNet paper. *)
let configs =
  [ (64, 96, 128, 16, 32, 32);
    (128, 128, 192, 32, 96, 64);
    (192, 96, 208, 16, 48, 64);
    (160, 112, 224, 24, 64, 64);
    (128, 128, 256, 24, 64, 64);
    (112, 144, 288, 32, 64, 64);
    (256, 160, 320, 32, 128, 128);
    (256, 160, 320, 32, 128, 128);
    (384, 192, 384, 48, 128, 128) ]

let inception b tag (n1, r3, n3, r5, n5, np) x =
  B.with_block b tag (fun () ->
    let cname suffix = Printf.sprintf "%s/%s" tag suffix in
    let b1 = B.conv b ~name:(cname "1x1") ~kernel:(1, 1) ~out_channels:n1 x in
    let b2r = B.conv b ~name:(cname "3x3_reduce") ~kernel:(1, 1) ~out_channels:r3 x in
    let b2 = B.conv b ~name:(cname "3x3") ~kernel:(3, 3) ~out_channels:n3 b2r in
    let b3r = B.conv b ~name:(cname "5x5_reduce") ~kernel:(1, 1) ~out_channels:r5 x in
    let b3 = B.conv b ~name:(cname "5x5") ~kernel:(5, 5) ~out_channels:n5 b3r in
    let b4p =
      B.pool b ~name:(cname "pool") ~kernel:(3, 3) ~stride:(1, 1)
        ~padding:(Op.Explicit 1) x
    in
    let b4 = B.conv b ~name:(cname "pool_proj") ~kernel:(1, 1) ~out_channels:np b4p in
    B.concat b ~name:(cname "output") [ b1; b2; b3; b4 ])

let build () =
  let b = B.create () in
  let x = B.input b ~name:"data" ~channels:3 ~height:224 ~width:224 () in
  let x =
    B.conv b ~name:"conv1/7x7_s2" ~kernel:(7, 7) ~stride:(2, 2)
      ~padding:(Op.Explicit 3) ~out_channels:64 x
  in
  let x = B.pool b ~name:"pool1/3x3_s2" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Same x in
  let x = B.conv b ~name:"conv2/3x3_reduce" ~kernel:(1, 1) ~out_channels:64 x in
  let x = B.conv b ~name:"conv2/3x3" ~kernel:(3, 3) ~out_channels:192 x in
  let x = B.pool b ~name:"pool2/3x3_s2" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Same x in
  let blocks = List.combine block_names configs in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let drop n l = List.filteri (fun i _ -> i >= n) l in
  let x =
    List.fold_left (fun acc (tag, cfg) -> inception b tag cfg acc) x (take 2 blocks)
  in
  let x = B.pool b ~name:"pool3/3x3_s2" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Same x in
  let x =
    List.fold_left
      (fun acc (tag, cfg) -> inception b tag cfg acc)
      x (take 5 (drop 2 blocks))
  in
  let x = B.pool b ~name:"pool4/3x3_s2" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Same x in
  let x =
    List.fold_left (fun acc (tag, cfg) -> inception b tag cfg acc) x (drop 7 blocks)
  in
  let x = B.global_pool b ~name:"pool5/7x7_s1" x in
  let _logits = B.dense b ~name:"loss3/classifier" ~out_features:1000 x in
  B.finish b
