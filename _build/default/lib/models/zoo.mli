(** Model registry.

    The paper's benchmark suite is ResNet-152 ("RN"), GoogLeNet ("GN") and
    Inception-v4 ("IN"); the zoo also carries ResNet-50 (Table 3 baseline
    comparison) and the linear AlexNet/VGG-16 used by tests. *)

type entry = {
  model_name : string;
  aliases : string list;   (** e.g. ["RN"] for ResNet-152. *)
  build : unit -> Dnn_graph.Graph.t;
}

val all : entry list

val find : string -> entry option
(** Case-insensitive lookup by name or alias. *)

val build : string -> Dnn_graph.Graph.t
(** [find] then build; raises [Invalid_argument] with the known names on
    an unknown model. *)

val benchmark_suite : entry list
(** The paper's three benchmarks, in Table 1 order: RN, GN, IN. *)
