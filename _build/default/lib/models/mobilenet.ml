module B = Dnn_graph.Builder
module Op = Dnn_graph.Op

let name = "mobilenet_v2"

(* (expansion factor, output channels, repeats, first stride) per stage,
   from Table 2 of the MobileNet-v2 paper. *)
let stages =
  [ (1, 16, 1, 1);
    (6, 24, 2, 2);
    (6, 32, 3, 2);
    (6, 64, 4, 2);
    (6, 96, 3, 1);
    (6, 160, 3, 2);
    (6, 320, 1, 1) ]

let block_names =
  List.concat
    (List.mapi
       (fun si (_, _, repeats, _) ->
         List.init repeats (fun bi -> Printf.sprintf "bottleneck%d_%d" (si + 1) (bi + 1)))
       stages)

(* One inverted residual: 1x1 expand, 3x3 depthwise (stride here), 1x1
   project, with a shortcut when shapes allow. *)
let inverted_residual b ~tag ~expansion ~out_channels ~stride x =
  B.with_block b tag (fun () ->
    let cname s = Printf.sprintf "%s/%s" tag s in
    let in_channels =
      match Tensor.Shape.as_feature (B.shape b x) with
      | Some f -> f.Tensor.Shape.channels
      | None -> invalid_arg "mobilenet: non-feature input"
    in
    let hidden = in_channels * expansion in
    let y =
      if expansion = 1 then x
      else B.conv b ~name:(cname "expand") ~kernel:(1, 1) ~out_channels:hidden x
    in
    let y =
      B.conv b ~name:(cname "depthwise") ~kernel:(3, 3) ~stride:(stride, stride)
        ~groups:hidden ~out_channels:hidden y
    in
    let y = B.conv b ~name:(cname "project") ~kernel:(1, 1) ~out_channels y in
    if stride = 1 && in_channels = out_channels then
      B.add b ~name:(cname "sum") [ x; y ]
    else y)

let build () =
  let b = B.create () in
  let x = B.input b ~name:"data" ~channels:3 ~height:224 ~width:224 () in
  let x =
    B.conv b ~name:"stem" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Same
      ~out_channels:32 x
  in
  let x = ref x in
  List.iteri
    (fun si (expansion, out_channels, repeats, first_stride) ->
      for bi = 1 to repeats do
        let tag = Printf.sprintf "bottleneck%d_%d" (si + 1) bi in
        let stride = if bi = 1 then first_stride else 1 in
        x := inverted_residual b ~tag ~expansion ~out_channels ~stride !x
      done)
    stages;
  let x = B.conv b ~name:"head" ~kernel:(1, 1) ~out_channels:1280 !x in
  let x = B.global_pool b ~name:"pool" x in
  let _logits = B.dense b ~name:"classifier" ~out_features:1000 x in
  B.finish b
