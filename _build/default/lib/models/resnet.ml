module B = Dnn_graph.Builder
module Op = Dnn_graph.Op

let name_152 = "resnet152"

let name_50 = "resnet50"

let name_34 = "resnet34"

let name_next_50 = "resnext50"

(* One bottleneck block: 1x1 reduce, 3x3 (carries the stride, optionally
   grouped as in ResNeXt), 1x1 expand, with an identity or projection
   shortcut. *)
let bottleneck ?(groups = 1) b ~tag ~mid_channels ~out_channels ~stride ~project x =
  B.with_block b tag (fun () ->
    let cname suffix = Printf.sprintf "%s/%s" tag suffix in
    let shortcut =
      if project then
        B.conv b ~name:(cname "proj") ~kernel:(1, 1) ~stride:(stride, stride)
          ~out_channels x
      else x
    in
    let y = B.conv b ~name:(cname "1x1a") ~kernel:(1, 1) ~out_channels:mid_channels x in
    let y =
      B.conv b ~name:(cname "3x3") ~kernel:(3, 3) ~stride:(stride, stride)
        ~groups ~out_channels:mid_channels y
    in
    let y = B.conv b ~name:(cname "1x1b") ~kernel:(1, 1) ~out_channels y in
    B.add b ~name:(cname "sum") [ shortcut; y ])

let stage ?groups b ~index ~blocks ~mid_channels ~out_channels ~first_stride x =
  let acc = ref x in
  for bi = 1 to blocks do
    let tag = Printf.sprintf "conv%d_b%d" index bi in
    let stride = if bi = 1 then first_stride else 1 in
    let project = bi = 1 in
    acc := bottleneck ?groups b ~tag ~mid_channels ~out_channels ~stride ~project !acc
  done;
  !acc

let build_plan ?groups plan =
  let b = B.create () in
  let x = B.input b ~name:"data" ~channels:3 ~height:224 ~width:224 () in
  let x =
    B.conv b ~name:"conv1" ~kernel:(7, 7) ~stride:(2, 2) ~padding:(Op.Explicit 3)
      ~out_channels:64 x
  in
  let x = B.pool b ~name:"pool1" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Same x in
  let x =
    List.fold_left
      (fun acc (index, blocks, mid, out, first_stride) ->
        stage ?groups b ~index ~blocks ~mid_channels:mid ~out_channels:out
          ~first_stride acc)
      x plan
  in
  let x = B.global_pool b ~name:"pool5" x in
  let _logits = B.dense b ~name:"fc1000" ~out_features:1000 x in
  B.finish b

let plan_of_counts (c2, c3, c4, c5) =
  [ (2, c2, 64, 256, 1);
    (3, c3, 128, 512, 2);
    (4, c4, 256, 1024, 2);
    (5, c5, 512, 2048, 2) ]

let build_152 () = build_plan (plan_of_counts (3, 8, 36, 3))

let build_50 () = build_plan (plan_of_counts (3, 4, 6, 3))

(* Basic residual block: two 3x3 convolutions, stride on the first. *)
let basic_block b ~tag ~channels ~stride ~project x =
  B.with_block b tag (fun () ->
    let cname suffix = Printf.sprintf "%s/%s" tag suffix in
    let shortcut =
      if project then
        B.conv b ~name:(cname "proj") ~kernel:(1, 1) ~stride:(stride, stride)
          ~out_channels:channels x
      else x
    in
    let y =
      B.conv b ~name:(cname "3x3a") ~kernel:(3, 3) ~stride:(stride, stride)
        ~out_channels:channels x
    in
    let y = B.conv b ~name:(cname "3x3b") ~kernel:(3, 3) ~out_channels:channels y in
    B.add b ~name:(cname "sum") [ shortcut; y ])

let build_34 () =
  let b = B.create () in
  let x = B.input b ~name:"data" ~channels:3 ~height:224 ~width:224 () in
  let x =
    B.conv b ~name:"conv1" ~kernel:(7, 7) ~stride:(2, 2) ~padding:(Op.Explicit 3)
      ~out_channels:64 x
  in
  let x = B.pool b ~name:"pool1" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Same x in
  let acc = ref x in
  List.iter
    (fun (index, blocks, channels, first_stride) ->
      for bi = 1 to blocks do
        let tag = Printf.sprintf "conv%d_b%d" index bi in
        let stride = if bi = 1 then first_stride else 1 in
        let project = bi = 1 && index > 2 in
        acc := basic_block b ~tag ~channels ~stride ~project !acc
      done)
    [ (2, 3, 64, 1); (3, 4, 128, 2); (4, 6, 256, 2); (5, 3, 512, 2) ];
  let x = B.global_pool b ~name:"pool5" !acc in
  let _logits = B.dense b ~name:"fc1000" ~out_features:1000 x in
  B.finish b

(* ResNeXt-50 32x4d: bottleneck width doubled relative to ResNet-50. *)
let build_next_50 () =
  build_plan ~groups:32
    [ (2, 3, 128, 256, 1); (3, 4, 256, 512, 2); (4, 6, 512, 1024, 2);
      (5, 3, 1024, 2048, 2) ]

let build ~depth =
  match depth with
  | 50 -> build_50 ()
  | 101 -> build_plan (plan_of_counts (3, 4, 23, 3))
  | 152 -> build_152 ()
  | d -> invalid_arg (Printf.sprintf "Resnet.build: unsupported depth %d" d)
