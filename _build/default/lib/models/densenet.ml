module B = Dnn_graph.Builder
module Op = Dnn_graph.Op

let name = "densenet121"

let growth = 32

let block_layers = [ 6; 12; 24; 16 ]

let block_names = List.mapi (fun i _ -> Printf.sprintf "dense%d" (i + 1)) block_layers

(* One dense layer: 1x1 bottleneck to 4*growth channels then 3x3 down to
   [growth]; batch norm and ReLU fold into the convolutions. *)
let dense_layer b ~cname x =
  let y = B.conv b ~name:(cname "1x1") ~kernel:(1, 1) ~out_channels:(4 * growth) x in
  B.conv b ~name:(cname "3x3") ~kernel:(3, 3) ~out_channels:growth y

(* A dense block: each layer reads the concatenation of the block input
   and every earlier layer's output; the block result concatenates all of
   them.  The per-layer concats are transparent (no data movement), but
   they stretch every contributing value's lifespan to the block end. *)
let dense_block b ~tag ~layers x =
  B.with_block b tag (fun () ->
    let contributions = ref [ x ] in
    for li = 1 to layers do
      let cname s = Printf.sprintf "%s/l%d_%s" tag li s in
      let input =
        match !contributions with
        | [ only ] -> only
        | several -> B.concat b ~name:(cname "cat") (List.rev several)
      in
      let fresh = dense_layer b ~cname input in
      contributions := fresh :: !contributions
    done;
    B.concat b ~name:(tag ^ "/output") (List.rev !contributions))

(* Transition: 1x1 halving the channels, then 2x2 average pooling. *)
let transition b ~tag x =
  let channels =
    match Tensor.Shape.as_feature (B.shape b x) with
    | Some f -> f.Tensor.Shape.channels
    | None -> invalid_arg "densenet: non-feature input"
  in
  let y = B.conv b ~name:(tag ^ "/conv") ~kernel:(1, 1) ~out_channels:(channels / 2) x in
  B.pool b ~name:(tag ^ "/pool") ~kind:Op.Avg ~kernel:(2, 2) ~stride:(2, 2) y

let build () =
  let b = B.create () in
  let x = B.input b ~name:"data" ~channels:3 ~height:224 ~width:224 () in
  let x =
    B.conv b ~name:"stem" ~kernel:(7, 7) ~stride:(2, 2) ~padding:(Op.Explicit 3)
      ~out_channels:(2 * growth) x
  in
  let x = B.pool b ~name:"stem_pool" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Same x in
  let n_blocks = List.length block_layers in
  let x = ref x in
  List.iteri
    (fun i layers ->
      let tag = Printf.sprintf "dense%d" (i + 1) in
      x := dense_block b ~tag ~layers !x;
      if i < n_blocks - 1 then
        x := transition b ~tag:(Printf.sprintf "transition%d" (i + 1)) !x)
    block_layers;
  let x = B.global_pool b ~name:"pool" !x in
  let _logits = B.dense b ~name:"classifier" ~out_features:1000 x in
  B.finish b
