(** AlexNet (Krizhevsky et al., 2012): the classic linear-structure CNN.
    Used in tests and examples as the simplest realistic workload — the
    paper notes that plain double buffering (UMM) suffices for such
    models, which LCMM should reproduce rather than regress. *)

val name : string

val build : unit -> Dnn_graph.Graph.t
(** 5 convolutions + 3 dense layers, 227x227 input. *)
