type entry = {
  model_name : string;
  aliases : string list;
  build : unit -> Dnn_graph.Graph.t;
}

let resnet152 = { model_name = Resnet.name_152; aliases = [ "rn" ]; build = Resnet.build_152 }

let googlenet = { model_name = Googlenet.name; aliases = [ "gn" ]; build = Googlenet.build }

let inception_v4 =
  { model_name = Inception_v4.name; aliases = [ "in"; "inceptionv4" ]; build = Inception_v4.build }

let all =
  [ resnet152;
    { model_name = Resnet.name_50; aliases = [ "rn50" ]; build = Resnet.build_50 };
    googlenet;
    inception_v4;
    { model_name = Alexnet.name; aliases = []; build = Alexnet.build };
    { model_name = Vgg.name; aliases = [ "vgg" ]; build = Vgg.build };
    { model_name = Mobilenet.name; aliases = [ "mobilenet"; "mn2" ]; build = Mobilenet.build };
    { model_name = Densenet.name; aliases = [ "densenet"; "dn121" ]; build = Densenet.build };
    { model_name = Squeezenet.name; aliases = [ "sn" ]; build = Squeezenet.build };
    { model_name = Resnet.name_next_50; aliases = [ "resnext" ]; build = Resnet.build_next_50 };
    { model_name = Vgg.name_19; aliases = []; build = Vgg.build_19 };
    { model_name = Resnet.name_34; aliases = [ "rn34" ]; build = Resnet.build_34 };
    { model_name = Inception_v3.name; aliases = [ "in3" ]; build = Inception_v3.build } ]

let find name =
  let needle = String.lowercase_ascii name in
  List.find_opt
    (fun e -> e.model_name = needle || List.mem needle e.aliases)
    all

let build name =
  match find name with
  | Some e -> e.build ()
  | None ->
    let known = String.concat ", " (List.map (fun e -> e.model_name) all) in
    invalid_arg (Printf.sprintf "Zoo.build: unknown model %S (known: %s)" name known)

let benchmark_suite = [ resnet152; googlenet; inception_v4 ]
