(** ResNet family (He et al., 2016), bottleneck variants.

    Each residual stage is tagged [convN_x] (blocks individually tagged
    [convN_bM]) for per-block reporting.  Batch normalization is folded
    into the convolutions, as all inference-time accelerator designs do. *)

val name_152 : string

val name_50 : string

val build_152 : unit -> Dnn_graph.Graph.t
(** ResNet-152: bottleneck stages [3; 8; 36; 3], 224x224 input. *)

val build_50 : unit -> Dnn_graph.Graph.t
(** ResNet-50: bottleneck stages [3; 4; 6; 3], 224x224 input — the model
    the Cloud-DNN comparison (paper Table 3) uses. *)

val build : depth:int -> Dnn_graph.Graph.t
(** Any standard bottleneck depth: 50, 101 or 152.  Raises
    [Invalid_argument] on other depths. *)

val name_34 : string

val build_34 : unit -> Dnn_graph.Graph.t
(** ResNet-34: *basic* residual blocks (two 3x3 convolutions) in stages
    [3; 4; 6; 3] — the non-bottleneck branch of the family. *)

val name_next_50 : string

val build_next_50 : unit -> Dnn_graph.Graph.t
(** ResNeXt-50 (32x4d): the ResNet-50 skeleton with doubled bottleneck
    width and 32-way grouped 3x3 convolutions — exercises the grouped-
    convolution paths of the cost model on a published architecture. *)
