(** DenseNet-121 (Huang et al., 2017).

    Every layer of a dense block concatenates all earlier layers'
    outputs, so feature values have very long, heavily overlapping
    lifespans — the worst case for liveness-based buffer sharing and the
    structure the paper's introduction names as motivation for moving
    past linear-model double buffering. *)

val name : string

val build : unit -> Dnn_graph.Graph.t
(** DenseNet-121: growth rate 32, dense blocks of [6; 12; 24; 16] layers
    with transition layers between them, 224x224 input. *)

val block_names : string list
(** The dense block tags in network order. *)
