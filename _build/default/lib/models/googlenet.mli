(** GoogLeNet / Inception-v1 (Szegedy et al., 2014).

    Nine inception blocks (3a..5b), each tagged with its block name so the
    per-block performance series of the paper's Fig. 8 can be aggregated.
    Auxiliary classifier heads are omitted: they are train-time only and
    play no role in inference latency. *)

val name : string

val build : unit -> Dnn_graph.Graph.t
(** Stem + inception 3a,3b,4a..4e,5a,5b + classifier, 224x224 input. *)

val block_names : string list
(** The nine inception block tags in network order. *)
