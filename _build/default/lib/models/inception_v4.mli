(** Inception-v4 (Szegedy et al., 2016).

    Stem + 4 Inception-A + Reduction-A + 7 Inception-B + Reduction-B +
    3 Inception-C + classifier, 299x299 input.  The fourteen inception
    blocks (A1..A4, B1..B7, C1..C3) are block-tagged; they are the choice
    variables of the paper's Fig. 2(b) design-space study (2^14 on/off
    subsets). *)

val name : string

val build : unit -> Dnn_graph.Graph.t

val block_names : string list
(** The 14 inception block tags in network order (reductions excluded,
    matching the paper's count). *)
