module B = Dnn_graph.Builder
module Op = Dnn_graph.Op

let name = "inception_v4"

let block_names =
  List.concat
    [ List.init 4 (fun i -> Printf.sprintf "inception_a%d" (i + 1));
      List.init 7 (fun i -> Printf.sprintf "inception_b%d" (i + 1));
      List.init 3 (fun i -> Printf.sprintf "inception_c%d" (i + 1)) ]

let conv b ~name ?(kernel = (1, 1)) ?(stride = (1, 1)) ?(padding = Op.Same) ~out x =
  B.conv b ~name ~kernel ~stride ~padding ~out_channels:out x

let avg_pool_same b ~name x =
  B.pool b ~name ~kind:Op.Avg ~kernel:(3, 3) ~stride:(1, 1) ~padding:(Op.Explicit 1) x

let max_pool_halve b ~name x =
  B.pool b ~name ~kind:Op.Max ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Valid x

(* Stem: 3x299x299 -> 384x35x35. *)
let stem b x =
  B.with_block b "stem" (fun () ->
    let x = conv b ~name:"stem/conv1" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Valid ~out:32 x in
    let x = conv b ~name:"stem/conv2" ~kernel:(3, 3) ~padding:Op.Valid ~out:32 x in
    let x = conv b ~name:"stem/conv3" ~kernel:(3, 3) ~out:64 x in
    let p1 = max_pool_halve b ~name:"stem/pool1" x in
    let c1 = conv b ~name:"stem/conv4" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Valid ~out:96 x in
    let x = B.concat b ~name:"stem/cat1" [ p1; c1 ] in
    let a = conv b ~name:"stem/a_1x1" ~out:64 x in
    let a = conv b ~name:"stem/a_3x3" ~kernel:(3, 3) ~padding:Op.Valid ~out:96 a in
    let c = conv b ~name:"stem/b_1x1" ~out:64 x in
    let c = conv b ~name:"stem/b_7x1" ~kernel:(7, 1) ~out:64 c in
    let c = conv b ~name:"stem/b_1x7" ~kernel:(1, 7) ~out:64 c in
    let c = conv b ~name:"stem/b_3x3" ~kernel:(3, 3) ~padding:Op.Valid ~out:96 c in
    let x = B.concat b ~name:"stem/cat2" [ a; c ] in
    let d = conv b ~name:"stem/c_3x3" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Valid ~out:192 x in
    let p2 = max_pool_halve b ~name:"stem/pool2" x in
    B.concat b ~name:"stem/cat3" [ d; p2 ])

(* Inception-A: 384x35x35 -> 384x35x35. *)
let inception_a b tag x =
  B.with_block b tag (fun () ->
    let cname s = Printf.sprintf "%s/%s" tag s in
    let b1 = avg_pool_same b ~name:(cname "pool") x in
    let b1 = conv b ~name:(cname "pool_1x1") ~out:96 b1 in
    let b2 = conv b ~name:(cname "1x1") ~out:96 x in
    let b3 = conv b ~name:(cname "3x3_r") ~out:64 x in
    let b3 = conv b ~name:(cname "3x3") ~kernel:(3, 3) ~out:96 b3 in
    let b4 = conv b ~name:(cname "d3x3_r") ~out:64 x in
    let b4 = conv b ~name:(cname "d3x3_1") ~kernel:(3, 3) ~out:96 b4 in
    let b4 = conv b ~name:(cname "d3x3_2") ~kernel:(3, 3) ~out:96 b4 in
    B.concat b ~name:(cname "output") [ b1; b2; b3; b4 ])

(* Reduction-A: 384x35x35 -> 1024x17x17. *)
let reduction_a b x =
  B.with_block b "reduction_a" (fun () ->
    let b1 = max_pool_halve b ~name:"red_a/pool" x in
    let b2 = conv b ~name:"red_a/3x3" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Valid ~out:384 x in
    let b3 = conv b ~name:"red_a/d_r" ~out:192 x in
    let b3 = conv b ~name:"red_a/d_3x3" ~kernel:(3, 3) ~out:224 b3 in
    let b3 = conv b ~name:"red_a/d_3x3s2" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Valid ~out:256 b3 in
    B.concat b ~name:"red_a/output" [ b1; b2; b3 ])

(* Inception-B: 1024x17x17 -> 1024x17x17. *)
let inception_b b tag x =
  B.with_block b tag (fun () ->
    let cname s = Printf.sprintf "%s/%s" tag s in
    let b1 = avg_pool_same b ~name:(cname "pool") x in
    let b1 = conv b ~name:(cname "pool_1x1") ~out:128 b1 in
    let b2 = conv b ~name:(cname "1x1") ~out:384 x in
    let b3 = conv b ~name:(cname "7_r") ~out:192 x in
    let b3 = conv b ~name:(cname "7_1x7") ~kernel:(1, 7) ~out:224 b3 in
    let b3 = conv b ~name:(cname "7_7x1") ~kernel:(7, 1) ~out:256 b3 in
    let b4 = conv b ~name:(cname "d7_r") ~out:192 x in
    let b4 = conv b ~name:(cname "d7_1x7a") ~kernel:(1, 7) ~out:192 b4 in
    let b4 = conv b ~name:(cname "d7_7x1a") ~kernel:(7, 1) ~out:224 b4 in
    let b4 = conv b ~name:(cname "d7_1x7b") ~kernel:(1, 7) ~out:224 b4 in
    let b4 = conv b ~name:(cname "d7_7x1b") ~kernel:(7, 1) ~out:256 b4 in
    B.concat b ~name:(cname "output") [ b1; b2; b3; b4 ])

(* Reduction-B: 1024x17x17 -> 1536x8x8. *)
let reduction_b b x =
  B.with_block b "reduction_b" (fun () ->
    let b1 = max_pool_halve b ~name:"red_b/pool" x in
    let b2 = conv b ~name:"red_b/3x3_r" ~out:192 x in
    let b2 = conv b ~name:"red_b/3x3" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Valid ~out:192 b2 in
    let b3 = conv b ~name:"red_b/7_r" ~out:256 x in
    let b3 = conv b ~name:"red_b/7_1x7" ~kernel:(1, 7) ~out:256 b3 in
    let b3 = conv b ~name:"red_b/7_7x1" ~kernel:(7, 1) ~out:320 b3 in
    let b3 = conv b ~name:"red_b/7_3x3" ~kernel:(3, 3) ~stride:(2, 2) ~padding:Op.Valid ~out:320 b3 in
    B.concat b ~name:"red_b/output" [ b1; b2; b3 ])

(* Inception-C: 1536x8x8 -> 1536x8x8. *)
let inception_c b tag x =
  B.with_block b tag (fun () ->
    let cname s = Printf.sprintf "%s/%s" tag s in
    let b1 = avg_pool_same b ~name:(cname "pool") x in
    let b1 = conv b ~name:(cname "pool_1x1") ~out:256 b1 in
    let b2 = conv b ~name:(cname "1x1") ~out:256 x in
    let b3 = conv b ~name:(cname "s_r") ~out:384 x in
    let b3a = conv b ~name:(cname "s_1x3") ~kernel:(1, 3) ~out:256 b3 in
    let b3b = conv b ~name:(cname "s_3x1") ~kernel:(3, 1) ~out:256 b3 in
    let b4 = conv b ~name:(cname "d_r") ~out:384 x in
    let b4 = conv b ~name:(cname "d_1x3") ~kernel:(1, 3) ~out:448 b4 in
    let b4 = conv b ~name:(cname "d_3x1") ~kernel:(3, 1) ~out:512 b4 in
    let b4a = conv b ~name:(cname "d_3x1b") ~kernel:(3, 1) ~out:256 b4 in
    let b4b = conv b ~name:(cname "d_1x3b") ~kernel:(1, 3) ~out:256 b4 in
    B.concat b ~name:(cname "output") [ b1; b2; b3a; b3b; b4a; b4b ])

let build () =
  let b = B.create () in
  let x = B.input b ~name:"data" ~channels:3 ~height:299 ~width:299 () in
  let x = stem b x in
  let x =
    List.fold_left
      (fun acc i -> inception_a b (Printf.sprintf "inception_a%d" i) acc)
      x [ 1; 2; 3; 4 ]
  in
  let x = reduction_a b x in
  let x =
    List.fold_left
      (fun acc i -> inception_b b (Printf.sprintf "inception_b%d" i) acc)
      x [ 1; 2; 3; 4; 5; 6; 7 ]
  in
  let x = reduction_b b x in
  let x =
    List.fold_left
      (fun acc i -> inception_c b (Printf.sprintf "inception_c%d" i) acc)
      x [ 1; 2; 3 ]
  in
  let x = B.global_pool b ~name:"global_pool" x in
  let _logits = B.dense b ~name:"classifier" ~out_features:1000 x in
  B.finish b
