(** Feature-value resolution.

    A *value* is the feature data produced by one node.  [Concat] nodes
    are storage-transparent: real accelerators implement concatenation by
    letting producers write adjacent ranges of one buffer, so a concat
    node neither computes nor moves data and its "output" is an alias of
    its input values.  This module resolves through transparent nodes so
    that traffic, liveness and allocation all work on real storage
    values. *)

val is_transparent : Op.t -> bool
(** True exactly for [Concat]. *)

val source_values : Graph.t -> int -> int list
(** Value ids (producing node ids, never transparent nodes) whose data the
    given node reads, resolved through transparent predecessors.  Order
    follows the operator's input order; duplicates are kept (a node
    reading one value twice streams it twice). *)

val consumers : Graph.t -> int -> int list
(** Node ids that read the given node's value, resolved through
    transparent successors (the transparent nodes themselves are not
    listed).  Sorted, without duplicates.  Empty for graph outputs. *)

val is_value : Graph.t -> int -> bool
(** True when the node produces real storage (i.e. is not transparent). *)

val last_use : Graph.t -> int -> int
(** Topological position (= id) of the last consumer of the node's value,
    or the node's own id when it has no consumer. *)
