type node = {
  id : int;
  node_name : string;
  op : Op.t;
  preds : int list;
  block : string option;
}

type t = {
  node_arr : node array;
  shapes : Tensor.Shape.t array;          (* output shape per node *)
  weights : Tensor.Shape.t option array;  (* weight shape per node *)
  succ_arr : int list array;       (* consumers per node, increasing ids *)
}

let node_count g = Array.length g.node_arr

let node g id =
  if id < 0 || id >= node_count g then
    invalid_arg (Printf.sprintf "Graph.node: id %d out of range" id);
  g.node_arr.(id)

let nodes g = Array.to_list g.node_arr

let succs g id =
  if id < 0 || id >= node_count g then
    invalid_arg (Printf.sprintf "Graph.succs: id %d out of range" id);
  g.succ_arr.(id)

let output_shape g id =
  if id < 0 || id >= node_count g then
    invalid_arg (Printf.sprintf "Graph.output_shape: id %d out of range" id);
  g.shapes.(id)

let weight_shape g id =
  if id < 0 || id >= node_count g then
    invalid_arg (Printf.sprintf "Graph.weight_shape: id %d out of range" id);
  g.weights.(id)

let input_shapes g id =
  let n = node g id in
  List.map (fun p -> output_shape g p) n.preds

let macs g id = Op.macs (node g id).op (input_shapes g id)

let aux_ops g id = Op.aux_ops (node g id).op (input_shapes g id)

let total_macs g =
  let sum = ref 0 in
  for id = 0 to node_count g - 1 do
    sum := !sum + macs g id
  done;
  !sum

let blocks g =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  Array.iter
    (fun n ->
      match n.block with
      | None -> ()
      | Some b ->
        if not (Hashtbl.mem seen b) then begin
          Hashtbl.add seen b ();
          order := b :: !order
        end)
    g.node_arr;
  List.rev !order

let nodes_of_block g b =
  Array.to_list g.node_arr
  |> List.filter_map (fun n -> if n.block = Some b then Some n.id else None)

let find_by_name g name =
  Array.to_seq g.node_arr |> Seq.find (fun n -> n.node_name = name)

let weight_bytes dtype g =
  Array.fold_left
    (fun acc w ->
      match w with None -> acc | Some shape -> acc + Tensor.Shape.size_bytes dtype shape)
    0 g.weights

(* Validation: ids dense/increasing, preds precede users, shapes infer,
   sources are exactly the Input nodes. *)
let create node_list =
  let node_arr = Array.of_list node_list in
  let n = Array.length node_arr in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec check_ids i =
    if i >= n then Ok ()
    else if node_arr.(i).id <> i then
      err "node at position %d has id %d (ids must be dense and increasing)" i
        node_arr.(i).id
    else check_ids (i + 1)
  in
  let rec check_preds i =
    if i >= n then Ok ()
    else
      let bad = List.filter (fun p -> p < 0 || p >= node_arr.(i).id) node_arr.(i).preds in
      match bad with
      | [] -> check_preds (i + 1)
      | p :: _ ->
        err "node %d (%s): predecessor %d does not precede it" i
          node_arr.(i).node_name p
  in
  let check_sources () =
    let rec loop i =
      if i >= n then Ok ()
      else
        let is_input = match node_arr.(i).op with Op.Input _ -> true | _ -> false in
        let no_preds = node_arr.(i).preds = [] in
        if is_input && not no_preds then
          err "node %d: Input node has predecessors" i
        else if (not is_input) && no_preds then
          err "node %d (%s): non-Input node has no predecessors" i
            node_arr.(i).node_name
        else loop (i + 1)
    in
    loop 0
  in
  match check_ids 0 with
  | Error _ as e -> e
  | Ok () ->
  match check_preds 0 with
  | Error _ as e -> e
  | Ok () ->
  match check_sources () with
  | Error _ as e -> e
  | Ok () ->
    let shapes = Array.make (max n 1) (Tensor.Shape.vector 1) in
    let weights = Array.make (max n 1) None in
    let rec infer i =
      if i >= n then Ok ()
      else
        let nd = node_arr.(i) in
        let inputs = List.map (fun p -> shapes.(p)) nd.preds in
        match Op.output_shape nd.op inputs with
        | Error msg -> err "node %d (%s): %s" i nd.node_name msg
        | Ok shape ->
          shapes.(i) <- shape;
          weights.(i) <- Op.weight_shape nd.op inputs;
          infer (i + 1)
    in
    (match infer 0 with
    | Error _ as e -> e
    | Ok () ->
      let succ_rev = Array.make (max n 1) [] in
      Array.iter
        (fun nd -> List.iter (fun p -> succ_rev.(p) <- nd.id :: succ_rev.(p)) nd.preds)
        node_arr;
      let succ_arr = Array.map (fun l -> List.sort_uniq compare l) succ_rev in
      Ok { node_arr; shapes; weights; succ_arr })

let create_exn node_list =
  match create node_list with
  | Ok g -> g
  | Error msg -> invalid_arg ("Graph.create_exn: " ^ msg)

let pp_summary ppf g =
  Array.iter
    (fun nd ->
      Format.fprintf ppf "%3d %-24s %-10s out=%a%s preds=[%s]@."
        nd.id nd.node_name (Op.name nd.op) Tensor.Shape.pp g.shapes.(nd.id)
        (match g.weights.(nd.id) with
        | None -> ""
        | Some w -> Format.asprintf " wt=%a" Tensor.Shape.pp w)
        (String.concat ";" (List.map string_of_int nd.preds)))
    g.node_arr
