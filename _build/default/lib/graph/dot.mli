(** Graphviz export of computation graphs, for documentation and
    debugging.  Nodes are labelled with operator mnemonic and output
    shape; block tags become subgraph clusters. *)

val to_dot : ?graph_name:string -> Graph.t -> string
(** Render the graph as a Graphviz [digraph] document. *)

val write_file : ?graph_name:string -> path:string -> Graph.t -> unit
(** Write {!to_dot} output to [path]. *)
