(** Imperative construction of computation graphs.

    The builder hands out node ids as values of type {!v}, checks shapes
    eagerly (a shape error raises immediately, pointing at the offending
    layer), and produces a validated {!Graph.t}.  A current *block* tag can
    be pushed around a group of layers so that per-block reports (the
    paper's Fig. 8) know which nodes belong to which inception block. *)

type t

type v = private int
(** A node id, usable as an operator input. *)

val create : unit -> t

val input : t -> ?name:string -> channels:int -> height:int -> width:int -> unit -> v
(** Add the graph input. *)

val conv :
  t -> ?name:string -> ?stride:int * int -> ?padding:Op.padding ->
  ?groups:int -> out_channels:int -> kernel:int * int -> v -> v
(** Add a convolution reading from the given value. *)

val pool :
  t -> ?name:string -> ?kind:Op.pool_kind -> ?stride:int * int ->
  ?padding:Op.padding -> kernel:int * int -> v -> v

val global_pool : t -> ?name:string -> ?kind:Op.pool_kind -> v -> v

val add : t -> ?name:string -> v list -> v
(** Element-wise addition of two or more same-shaped values. *)

val concat : t -> ?name:string -> v list -> v
(** Channel concatenation. *)

val upsample : t -> ?name:string -> factor:int -> v -> v
(** Nearest-neighbour spatial upsampling. *)

val dense : t -> ?name:string -> out_features:int -> v -> v

val with_block : t -> string -> (unit -> 'a) -> 'a
(** [with_block b tag f] tags every node added during [f ()] with [tag].
    Nesting replaces the tag for the inner extent. *)

val shape : t -> v -> Tensor.Shape.t
(** Current output shape of a value (already inferred). *)

val finish : t -> Graph.t
(** Validate and freeze.  Raises [Invalid_argument] if the accumulated
    nodes do not form a valid graph (cannot normally happen, since every
    add checked shapes). *)

val id : v -> int
(** Expose the underlying node id (for tests and diagnostics). *)
