(** Per-layer computation/communication accounting.

    These are the raw quantities behind the paper's roofline study
    (section 2.2): operation counts and the off-chip bytes each data
    source (input features, weights, output features) would move if the
    layer streamed everything from DDR exactly once. *)

type volumes = {
  if_bytes : int;  (** All input feature maps of the node. *)
  wt_bytes : int;  (** Weight tensor (0 when the node has none). *)
  of_bytes : int;  (** Output feature map. *)
}

val volumes : Tensor.Dtype.t -> Graph.t -> int -> volumes
(** Single-pass data volumes for one node. *)

val total_bytes : volumes -> int

val ops : Graph.t -> int -> int
(** Total arithmetic operations of a node: [2 * macs + aux_ops]. *)

val total_ops : Graph.t -> int
(** Sum of {!ops} over the graph. *)

val op_intensity : Tensor.Dtype.t -> Graph.t -> int -> float
(** Operations per off-chip byte; [infinity] for nodes that move no
    data (never happens for valid graphs, but total volume 0 is mapped
    to [infinity] rather than a division error). *)

val value_bytes : Tensor.Dtype.t -> Graph.t -> int -> int
(** Size of the feature value produced by the node. *)

val weight_bytes : Tensor.Dtype.t -> Graph.t -> int -> int
(** Size of the node's weight tensor; 0 when it has none. *)

val largest_value_bytes : Tensor.Dtype.t -> Graph.t -> int
(** Footprint of the biggest feature value — a lower bound on any on-chip
    feature buffer. *)

val total_feature_bytes : Tensor.Dtype.t -> Graph.t -> int
(** Sum of all feature value footprints. *)
