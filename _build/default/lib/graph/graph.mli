(** Immutable DNN computation graphs.

    A graph is a DAG of operator nodes; node ids are dense (0..n-1) and the
    id order is a valid topological order (the {!Builder} guarantees this
    by construction and {!create} validates it).  Each node produces one
    feature value; [Conv]/[Dense] nodes additionally own a weight tensor. *)

type node = {
  id : int;
  node_name : string;
  op : Op.t;
  preds : int list;      (** Predecessor node ids, in operator-input order. *)
  block : string option; (** Grouping tag, e.g. ["inception_3a"]. *)
}

type t

val create : node list -> (t, string) result
(** Build and validate a graph: ids dense and increasing, predecessors
    precede their users, shape inference succeeds on every node, and
    exactly the nodes with no predecessors are [Input] nodes. *)

val create_exn : node list -> t
(** Like {!create} but raises [Invalid_argument] with the error text. *)

val node_count : t -> int

val node : t -> int -> node
(** Raises [Invalid_argument] on an out-of-range id. *)

val nodes : t -> node list
(** All nodes in id (= topological) order. *)

val succs : t -> int -> int list
(** Consumer node ids of a node's feature value, in increasing order. *)

val output_shape : t -> int -> Tensor.Shape.t
(** Shape of the feature value produced by the node. *)

val weight_shape : t -> int -> Tensor.Shape.t option
(** Shape of the node's weight tensor, when it has one. *)

val input_shapes : t -> int -> Tensor.Shape.t list
(** Output shapes of the node's predecessors, in [preds] order. *)

val macs : t -> int -> int
(** Multiply-accumulate count of the node. *)

val aux_ops : t -> int -> int
(** Non-MAC arithmetic operations of the node. *)

val total_macs : t -> int

val blocks : t -> string list
(** Distinct block tags in first-appearance order. *)

val nodes_of_block : t -> string -> int list
(** Node ids tagged with the given block, in id order. *)

val find_by_name : t -> string -> node option

val weight_bytes : Tensor.Dtype.t -> t -> int
(** Total parameter footprint at the given precision. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line-per-node dump, for debugging and examples. *)
