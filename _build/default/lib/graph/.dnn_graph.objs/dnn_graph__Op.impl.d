lib/graph/op.ml: Format List Printf Tensor
