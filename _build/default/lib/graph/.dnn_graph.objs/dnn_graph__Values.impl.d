lib/graph/values.ml: Graph List Op
