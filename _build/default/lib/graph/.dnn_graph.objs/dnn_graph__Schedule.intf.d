lib/graph/schedule.mli: Graph Tensor
