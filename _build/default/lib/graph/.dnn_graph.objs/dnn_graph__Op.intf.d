lib/graph/op.mli: Format Tensor
