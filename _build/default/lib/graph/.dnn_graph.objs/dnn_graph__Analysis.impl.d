lib/graph/analysis.ml: Graph List Tensor
