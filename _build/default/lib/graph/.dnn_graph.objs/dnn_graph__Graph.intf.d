lib/graph/graph.mli: Format Op Tensor
