lib/graph/builder.mli: Graph Op Tensor
