lib/graph/dot.ml: Buffer Fun Graph List Op Printf String Tensor
