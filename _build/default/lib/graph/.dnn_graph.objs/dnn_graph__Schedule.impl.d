lib/graph/schedule.ml: Analysis Array Fun Graph List Values
