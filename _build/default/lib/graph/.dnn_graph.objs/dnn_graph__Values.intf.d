lib/graph/values.mli: Graph Op
