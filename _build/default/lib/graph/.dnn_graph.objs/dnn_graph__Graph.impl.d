lib/graph/graph.ml: Array Format Hashtbl List Op Printf Seq String Tensor
