lib/graph/analysis.mli: Graph Tensor
