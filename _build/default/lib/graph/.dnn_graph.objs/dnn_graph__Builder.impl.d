lib/graph/builder.ml: Graph List Op Printf Tensor
