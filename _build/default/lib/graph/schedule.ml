let is_valid g order =
  let n = Graph.node_count g in
  Array.length order = n
  && begin
       let position = Array.make n (-1) in
       let ok = ref true in
       Array.iteri
         (fun slot id ->
           if id < 0 || id >= n || position.(id) >= 0 then ok := false
           else position.(id) <- slot)
         order;
       !ok
       && List.for_all
            (fun nd ->
              List.for_all (fun p -> position.(p) < position.(nd.Graph.id)) nd.Graph.preds)
            (Graph.nodes g)
     end

let default g = Array.init (Graph.node_count g) Fun.id

(* Greedy list scheduling: repeatedly pick the ready node with the best
   immediate effect on the live set — bytes of input values it kills
   (last remaining use) minus bytes of the value it creates.  Ties break
   toward the original order for stability. *)
let memory_aware dtype g =
  let n = Graph.node_count g in
  let value_bytes = Array.init n (fun id -> Analysis.value_bytes dtype g id) in
  (* Consumers of each value (through transparent nodes the consumers are
     already resolved); transparent nodes still consume their preds for
     dependency purposes, so use raw preds for scheduling and resolved
     sources for byte effects. *)
  let remaining_uses = Array.make n 0 in
  for id = 0 to n - 1 do
    List.iter (fun v -> remaining_uses.(v) <- remaining_uses.(v) + 1)
      (Values.source_values g id)
  done;
  let unscheduled_preds =
    Array.init n (fun id -> List.length (Graph.node g id).Graph.preds)
  in
  let ready = ref [] in
  for id = n - 1 downto 0 do
    if unscheduled_preds.(id) = 0 then ready := id :: !ready
  done;
  let order = Array.make n 0 in
  let score id =
    let killed =
      List.fold_left
        (fun acc v -> if remaining_uses.(v) = 1 then acc + value_bytes.(v) else acc)
        0
        (List.sort_uniq compare (Values.source_values g id))
    in
    let created = if Values.is_value g id then value_bytes.(id) else 0 in
    killed - created
  in
  for slot = 0 to n - 1 do
    let best =
      List.fold_left
        (fun best id ->
          match best with
          | None -> Some (id, score id)
          | Some (bid, bscore) ->
            let s = score id in
            if s > bscore || (s = bscore && id < bid) then Some (id, s) else best)
        None !ready
    in
    match best with
    | None -> invalid_arg "Schedule.memory_aware: graph has a cycle"
    | Some (id, _) ->
      order.(slot) <- id;
      ready := List.filter (fun r -> r <> id) !ready;
      List.iter
        (fun v -> remaining_uses.(v) <- remaining_uses.(v) - 1)
        (Values.source_values g id);
      List.iter
        (fun s ->
          unscheduled_preds.(s) <- unscheduled_preds.(s) - 1;
          if unscheduled_preds.(s) = 0 then ready := s :: !ready)
        (Graph.succs g id)
  done;
  order

let breadth_first g =
  let n = Graph.node_count g in
  let depth = Array.make n 0 in
  for id = 0 to n - 1 do
    List.iter
      (fun p -> depth.(id) <- max depth.(id) (depth.(p) + 1))
      (Graph.node g id).Graph.preds
  done;
  let order = Array.init n Fun.id in
  (* Stable sort by depth keeps same-level nodes in id order, which keeps
     the order a valid topological one. *)
  Array.stable_sort (fun a b -> compare depth.(a) depth.(b)) order;
  order

let peak_live_bytes dtype g order =
  if not (is_valid g order) then
    invalid_arg "Schedule.peak_live_bytes: invalid schedule";
  let n = Graph.node_count g in
  let position = Array.make n 0 in
  Array.iteri (fun slot id -> position.(id) <- slot) order;
  (* A value's live interval in schedule slots. *)
  let peak = ref 0 in
  let delta = Array.make (n + 1) 0 in
  for id = 0 to n - 1 do
    if Values.is_value g id then begin
      let uses = Values.consumers g id in
      let last =
        List.fold_left (fun acc u -> max acc position.(u)) position.(id) uses
      in
      let bytes = Analysis.value_bytes dtype g id in
      delta.(position.(id)) <- delta.(position.(id)) + bytes;
      delta.(last + 1) <- delta.(last + 1) - bytes
    end
  done;
  let live = ref 0 in
  for slot = 0 to n - 1 do
    live := !live + delta.(slot);
    peak := max !peak !live
  done;
  !peak

let live_area dtype g order =
  if not (is_valid g order) then invalid_arg "Schedule.live_area: invalid schedule";
  let n = Graph.node_count g in
  let position = Array.make n 0 in
  Array.iteri (fun slot id -> position.(id) <- slot) order;
  let area = ref 0 in
  for id = 0 to n - 1 do
    if Values.is_value g id then begin
      let last =
        List.fold_left
          (fun acc u -> max acc position.(u))
          position.(id) (Values.consumers g id)
      in
      area := !area + (Analysis.value_bytes dtype g id * (last - position.(id) + 1))
    end
  done;
  !area

let apply g order =
  if not (is_valid g order) then invalid_arg "Schedule.apply: invalid schedule";
  let n = Graph.node_count g in
  let position = Array.make n 0 in
  Array.iteri (fun slot id -> position.(id) <- slot) order;
  let nodes =
    Array.to_list
      (Array.mapi
         (fun slot old_id ->
           let nd = Graph.node g old_id in
           { Graph.id = slot;
             node_name = nd.Graph.node_name;
             op = nd.Graph.op;
             preds = List.map (fun p -> position.(p)) nd.Graph.preds;
             block = nd.Graph.block })
         order)
  in
  Graph.create_exn nodes
