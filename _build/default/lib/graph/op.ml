type padding = Valid | Same | Explicit of int

type conv = {
  out_channels : int;
  kernel : int * int;
  stride : int * int;
  padding : padding;
  groups : int;
}

type pool_kind = Max | Avg

type pool = {
  pool_kind : pool_kind;
  pool_kernel : int * int;
  pool_stride : int * int;
  pool_padding : padding;
  global : bool;
}

type t =
  | Input of { channels : int; height : int; width : int }
  | Conv of conv
  | Pool of pool
  | Eltwise_add
  | Concat
  | Upsample of { factor : int }
  | Dense of { out_features : int }

let conv_defaults ?(stride = (1, 1)) ?(padding = Same) ?(groups = 1)
    ~out_channels ~kernel () =
  Conv { out_channels; kernel; stride; padding; groups }

(* Spatial output extent along one axis for kernel [k], stride [s] and the
   given padding mode. *)
let spatial_out padding ~extent ~k ~s =
  let pad =
    match padding with
    | Valid -> 0
    | Explicit p -> p
    | Same ->
      let out = (extent + s - 1) / s in
      let needed = ((out - 1) * s) + k - extent in
      max 0 needed / 2
  in
  match padding with
  | Same -> (extent + s - 1) / s
  | Valid | Explicit _ -> ((extent + (2 * pad) - k) / s) + 1

let single_feature inputs =
  match inputs with
  | [ shape ] -> (
    match Tensor.Shape.as_feature shape with
    | Some f -> Ok f
    | None -> Error "expected a feature-map input")
  | [] -> Error "expected one input, got none"
  | _ :: _ :: _ -> Error "expected exactly one input"

(* The shape smart-constructors reject non-positive dimensions; degenerate
   operator parameters (0 output channels, 0 dense features) surface here
   as [Error] rather than an exception. *)
let output_shape_exn op inputs =
  match op with
  | Input { channels; height; width } ->
    if inputs <> [] then Error "Input takes no predecessors"
    else Ok (Tensor.Shape.feature ~channels ~height ~width)
  | Conv { out_channels; kernel = kh, kw; stride = sh, sw; padding; groups } -> (
    match single_feature inputs with
    | Error _ as e -> e
    | Ok { channels; height; width } ->
      if channels mod groups <> 0 then
        Error
          (Printf.sprintf "conv: %d input channels not divisible by %d groups"
             channels groups)
      else if out_channels mod groups <> 0 then
        Error
          (Printf.sprintf "conv: %d output channels not divisible by %d groups"
             out_channels groups)
      else
        let oh = spatial_out padding ~extent:height ~k:kh ~s:sh in
        let ow = spatial_out padding ~extent:width ~k:kw ~s:sw in
        if oh <= 0 || ow <= 0 then Error "conv: kernel larger than padded input"
        else Ok (Tensor.Shape.feature ~channels:out_channels ~height:oh ~width:ow))
  | Pool { pool_kernel = kh, kw; pool_stride = sh, sw; pool_padding; global; _ }
    -> (
    match single_feature inputs with
    | Error _ as e -> e
    | Ok { channels; height; width } ->
      if global then Ok (Tensor.Shape.feature ~channels ~height:1 ~width:1)
      else
        let oh = spatial_out pool_padding ~extent:height ~k:kh ~s:sh in
        let ow = spatial_out pool_padding ~extent:width ~k:kw ~s:sw in
        if oh <= 0 || ow <= 0 then Error "pool: kernel larger than padded input"
        else Ok (Tensor.Shape.feature ~channels ~height:oh ~width:ow))
  | Eltwise_add -> (
    match inputs with
    | [] | [ _ ] -> Error "eltwise add needs at least two inputs"
    | first :: rest ->
      if List.for_all (Tensor.Shape.equal first) rest then
        match Tensor.Shape.as_feature first with
        | Some _ -> Ok first
        | None -> Error "eltwise add: inputs must be feature maps"
      else Error "eltwise add: input shapes differ")
  | Concat -> (
    match inputs with
    | [] -> Error "concat needs at least one input"
    | first :: _ -> (
      match Tensor.Shape.as_feature first with
      | None -> Error "concat: inputs must be feature maps"
      | Some { height; width; _ } ->
        let channel_of shape =
          match Tensor.Shape.as_feature shape with
          | Some f when f.height = height && f.width = width -> Some f.channels
          | Some _ | None -> None
        in
        let rec sum acc = function
          | [] -> Ok acc
          | shape :: rest -> (
            match channel_of shape with
            | Some c -> sum (acc + c) rest
            | None -> Error "concat: spatial dimensions differ")
        in
        match sum 0 inputs with
        | Error _ as e -> e
        | Ok channels -> Ok (Tensor.Shape.feature ~channels ~height ~width)))
  | Upsample { factor } -> (
    if factor <= 0 then Error "upsample: non-positive factor"
    else
      match single_feature inputs with
      | Error _ as e -> e
      | Ok { channels; height; width } ->
        Ok
          (Tensor.Shape.feature ~channels ~height:(height * factor)
             ~width:(width * factor)))
  | Dense { out_features } -> (
    match inputs with
    | [ (Tensor.Shape.Feature _ | Tensor.Shape.Vector _) ] -> Ok (Tensor.Shape.vector out_features)
    | [ Tensor.Shape.Filter _ ] -> Error "dense: filter input is invalid"
    | [] -> Error "dense: expected one input"
    | _ :: _ :: _ -> Error "dense: expected exactly one input")

let output_shape op inputs =
  try output_shape_exn op inputs with Invalid_argument msg -> Error msg

let in_features shape =
  match shape with
  | Tensor.Shape.Feature f -> f.channels * f.height * f.width
  | Tensor.Shape.Vector n -> n
  | Tensor.Shape.Filter _ -> 0

let weight_shape op inputs =
  match op with
  | Conv { out_channels; kernel = kh, kw; groups; _ } -> (
    match single_feature inputs with
    | Error _ -> None
    | Ok { channels; _ } ->
      if channels mod groups <> 0 then None
      else
        Some
          (Tensor.Shape.filter ~out_channels ~in_channels:(channels / groups)
             ~kernel_h:kh ~kernel_w:kw))
  | Dense { out_features } -> (
    match inputs with
    | [ shape ] ->
      let n = in_features shape in
      if n = 0 then None
      else
        Some
          (Tensor.Shape.filter ~out_channels:out_features ~in_channels:n ~kernel_h:1
             ~kernel_w:1)
    | [] | _ :: _ :: _ -> None)
  | Input _ | Pool _ | Eltwise_add | Concat | Upsample _ -> None

let macs op inputs =
  match op with
  | Conv ({ groups; kernel = kh, kw; _ } as c) -> (
    match output_shape op inputs, single_feature inputs with
    | Ok out, Ok { channels; _ } -> (
      match Tensor.Shape.as_feature out with
      | Some o -> o.height * o.width * c.out_channels * (channels / groups) * kh * kw
      | None -> 0)
    | (Error _ | Ok _), _ -> 0)
  | Dense { out_features } -> (
    match inputs with
    | [ shape ] -> out_features * in_features shape
    | [] | _ :: _ :: _ -> 0)
  | Input _ | Pool _ | Eltwise_add | Concat | Upsample _ -> 0

let aux_ops op inputs =
  match op with
  | Pool { pool_kernel = kh, kw; global; _ } -> (
    match output_shape op inputs, inputs with
    | Ok out, [ input ] ->
      let per_out = if global then Tensor.Shape.elements input / max 1 (Tensor.Shape.elements out) else kh * kw in
      Tensor.Shape.elements out * per_out
    | (Error _ | Ok _), _ -> 0)
  | Eltwise_add -> (
    match output_shape op inputs with
    | Ok out -> Tensor.Shape.elements out * (List.length inputs - 1)
    | Error _ -> 0)
  | Upsample _ -> (
    match output_shape op inputs with
    | Ok out -> Tensor.Shape.elements out
    | Error _ -> 0)
  | Input _ | Conv _ | Concat | Dense _ -> 0

let is_conv_like = function
  | Conv _ | Dense _ -> true
  | Input _ | Pool _ | Eltwise_add | Concat | Upsample _ -> false

let name = function
  | Input _ -> "input"
  | Conv { kernel = kh, kw; stride = sh, _; _ } ->
    if sh = 1 then Printf.sprintf "conv%dx%d" kh kw
    else Printf.sprintf "conv%dx%d/%d" kh kw sh
  | Pool { pool_kind = Max; global = false; _ } -> "maxpool"
  | Pool { pool_kind = Avg; global = false; _ } -> "avgpool"
  | Pool { pool_kind = Max; global = true; _ } -> "gmaxpool"
  | Pool { pool_kind = Avg; global = true; _ } -> "gavgpool"
  | Eltwise_add -> "add"
  | Concat -> "concat"
  | Upsample { factor } -> Printf.sprintf "upsample%d" factor
  | Dense _ -> "dense"

let pp ppf op = Format.pp_print_string ppf (name op)
