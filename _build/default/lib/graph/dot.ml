let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

let to_dot ?(graph_name = "dnn") g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=TB;\n" graph_name);
  let emit_node nd =
    let shape = Graph.output_shape g nd.Graph.id in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\\n%s %s\"];\n" nd.Graph.id
         (escape nd.Graph.node_name) (Op.name nd.Graph.op) (Tensor.Shape.to_string shape))
  in
  let in_block b nd = nd.Graph.block = Some b in
  let all = Graph.nodes g in
  let blocks = Graph.blocks g in
  List.iteri
    (fun i b ->
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_%d {\n    label=\"%s\";\n" i (escape b));
      List.iter (fun nd -> if in_block b nd then emit_node nd) all;
      Buffer.add_string buf "  }\n")
    blocks;
  List.iter (fun nd -> if nd.Graph.block = None then emit_node nd) all;
  List.iter
    (fun nd ->
      List.iter
        (fun p -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" p nd.Graph.id))
        nd.Graph.preds)
    all;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?graph_name ~path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?graph_name g))
