let is_transparent = function
  | Op.Concat -> true
  | Op.Input _ | Op.Conv _ | Op.Pool _ | Op.Eltwise_add | Op.Upsample _ | Op.Dense _ -> false

let is_value g id = not (is_transparent (Graph.node g id).Graph.op)

let rec resolve g id =
  if is_value g id then [ id ]
  else List.concat_map (resolve g) (Graph.node g id).Graph.preds

let source_values g id = List.concat_map (resolve g) (Graph.node g id).Graph.preds

let consumers g id =
  (* Breadth over successors, passing through transparent nodes. *)
  let rec expand acc = function
    | [] -> acc
    | s :: rest ->
      if is_value g s then expand (s :: acc) rest
      else expand acc (Graph.succs g s @ rest)
  in
  expand [] (Graph.succs g id) |> List.sort_uniq compare

let last_use g id =
  match consumers g id with
  | [] -> id
  | uses -> List.fold_left max id uses
