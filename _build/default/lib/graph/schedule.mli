(** Topological schedules and memory-aware reordering.

    The whole allocation stack identifies node ids with schedule
    positions, so a schedule change is expressed by *renumbering* the
    graph ({!apply}) rather than by threading a permutation everywhere.
    Liveness-based buffer sharing is schedule-sensitive: the order fixed
    by the builder is not always the one minimizing overlapping
    lifespans.  {!memory_aware} list-schedules the graph greedily,
    preferring ready nodes that free the most live bytes — a classic
    register-pressure heuristic applied to feature values. *)

val is_valid : Graph.t -> int array -> bool

val default : Graph.t -> int array
(** The identity schedule. *)

val memory_aware : Tensor.Dtype.t -> Graph.t -> int array
(** Dependency-respecting order chosen to reduce peak live bytes. *)

val breadth_first : Graph.t -> int array
(** Level order (by longest distance from the inputs) — the order many
    exporters emit.  Valid, but it interleaves parallel branches and
    keeps more values live than a depth-first walk; the pessimal
    reference for {!memory_aware}. *)

val peak_live_bytes : Tensor.Dtype.t -> Graph.t -> int array -> int
(** Maximum sum of live feature-value bytes over the schedule (a value is
    live from its producer's slot to its last consumer's slot).  Raises
    [Invalid_argument] on an invalid schedule. *)

val live_area : Tensor.Dtype.t -> Graph.t -> int array -> int
(** Sum over feature values of [bytes * lifespan-in-slots] — the
    byte-slots of buffer occupancy.  Unlike the peak, which is usually
    pinned by a linear stem, the area moves with branch interleaving and
    tracks how much sharing the coloring can recover.  Raises
    [Invalid_argument] on an invalid schedule. *)

val apply : Graph.t -> int array -> Graph.t
(** Renumber the graph so ids follow the schedule.  Raises
    [Invalid_argument] on an invalid schedule. *)
