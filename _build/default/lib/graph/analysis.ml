type volumes = { if_bytes : int; wt_bytes : int; of_bytes : int }

let value_bytes dtype g id = Tensor.Shape.size_bytes dtype (Graph.output_shape g id)

let weight_bytes dtype g id =
  match Graph.weight_shape g id with
  | None -> 0
  | Some shape -> Tensor.Shape.size_bytes dtype shape

let volumes dtype g id =
  let if_bytes =
    List.fold_left
      (fun acc shape -> acc + Tensor.Shape.size_bytes dtype shape)
      0 (Graph.input_shapes g id)
  in
  { if_bytes; wt_bytes = weight_bytes dtype g id; of_bytes = value_bytes dtype g id }

let total_bytes v = v.if_bytes + v.wt_bytes + v.of_bytes

let ops g id = (2 * Graph.macs g id) + Graph.aux_ops g id

let total_ops g =
  let sum = ref 0 in
  for id = 0 to Graph.node_count g - 1 do
    sum := !sum + ops g id
  done;
  !sum

let op_intensity dtype g id =
  let bytes = total_bytes (volumes dtype g id) in
  if bytes = 0 then infinity else float_of_int (ops g id) /. float_of_int bytes

let largest_value_bytes dtype g =
  let best = ref 0 in
  for id = 0 to Graph.node_count g - 1 do
    best := max !best (value_bytes dtype g id)
  done;
  !best

let total_feature_bytes dtype g =
  let sum = ref 0 in
  for id = 0 to Graph.node_count g - 1 do
    sum := !sum + value_bytes dtype g id
  done;
  !sum
