(** DNN operators and their shape/cost semantics.

    The operator set covers what the paper's three benchmark models need:
    convolutions (with stride, padding, grouping), pooling, element-wise
    addition (ResNet shortcuts), channel concatenation (inception blocks)
    and dense layers.  Activation functions are treated as fused into the
    producing operator, as in the accelerator designs the paper builds on:
    they change neither tensor shapes nor off-chip traffic. *)

type padding =
  | Valid            (** No padding. *)
  | Same             (** Output spatial size = ceil(input / stride). *)
  | Explicit of int  (** Symmetric padding of the given amount. *)

type conv = {
  out_channels : int;
  kernel : int * int;   (** (height, width) *)
  stride : int * int;   (** (vertical, horizontal) *)
  padding : padding;
  groups : int;         (** 1 for ordinary convolutions. *)
}

type pool_kind = Max | Avg

type pool = {
  pool_kind : pool_kind;
  pool_kernel : int * int;
  pool_stride : int * int;
  pool_padding : padding;
  global : bool;  (** Global pooling ignores kernel/stride/padding. *)
}

type t =
  | Input of { channels : int; height : int; width : int }
      (** Graph entry; produces the image tensor. *)
  | Conv of conv
  | Pool of pool
  | Eltwise_add       (** Element-wise sum of all inputs (same shapes). *)
  | Concat            (** Channel-wise concatenation. *)
  | Upsample of { factor : int }
      (** Nearest-neighbour spatial upsampling (decoder networks). *)
  | Dense of { out_features : int }

val conv_defaults :
  ?stride:int * int -> ?padding:padding -> ?groups:int ->
  out_channels:int -> kernel:int * int -> unit -> t
(** [Conv] with stride (1,1), [Same] padding and one group by default. *)

val output_shape : t -> Tensor.Shape.t list -> (Tensor.Shape.t, string) result
(** Shape of the operator's output given the shapes of its inputs, or a
    human-readable error when the inputs are invalid for the operator. *)

val weight_shape : t -> Tensor.Shape.t list -> Tensor.Shape.t option
(** Shape of the operator's weight tensor ([Conv] and [Dense]), given its
    input shapes; [None] for weight-less operators or invalid inputs. *)

val macs : t -> Tensor.Shape.t list -> int
(** Multiply-accumulate count of one execution ([Conv]/[Dense]); 0 for
    operators that run on auxiliary units. *)

val aux_ops : t -> Tensor.Shape.t list -> int
(** Non-MAC arithmetic (pool comparisons/adds, element-wise additions);
    used by the roofline's operation count alongside [2 * macs]. *)

val is_conv_like : t -> bool
(** True for [Conv] and [Dense] — the operators the systolic array runs. *)

val name : t -> string
(** Short operator mnemonic, e.g. ["conv3x3/2"]. *)

val pp : Format.formatter -> t -> unit
