module Dtype = Dtype
module Shape = Shape

type kind = Feature_map | Weight

type t = { id : int; name : string; kind : kind; shape : Shape.t }

let make ~id ~name ~kind ~shape =
  if id < 0 then invalid_arg "Tensor.make: negative id";
  if String.length name = 0 then invalid_arg "Tensor.make: empty name";
  { id; name; kind; shape }

let size_bytes dtype t = Shape.size_bytes dtype t.shape

let is_weight t = t.kind = Weight

let is_feature t = t.kind = Feature_map

let equal a b = a.id = b.id && a.kind = b.kind

let pp_kind ppf = function
  | Feature_map -> Format.pp_print_string ppf "feature"
  | Weight -> Format.pp_print_string ppf "weight"

let pp ppf t =
  Format.fprintf ppf "%s#%d(%a %a)" t.name t.id pp_kind t.kind Shape.pp t.shape
