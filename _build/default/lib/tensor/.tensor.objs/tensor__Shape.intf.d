lib/tensor/shape.mli: Dtype Format
