lib/tensor/tensor.ml: Dtype Format Shape String
