lib/tensor/shape.ml: Dtype Format Printf
