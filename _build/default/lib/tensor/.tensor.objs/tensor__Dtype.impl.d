lib/tensor/dtype.ml: Format Stdlib String
