(** Numeric precisions supported by the accelerator model.

    The paper evaluates 8- and 16-bit fixed point and 32-bit floating
    point.  A precision determines the byte width of every tensor element
    and the DSP cost of one multiply-accumulate on Xilinx UltraScale+
    devices (one DSP48E2 per fixed-point MAC, five per fp32 MAC, cf.
    paper section 4.1). *)

type t =
  | I8   (** 8-bit fixed point *)
  | I16  (** 16-bit fixed point *)
  | F32  (** 32-bit IEEE-754 floating point *)

val all : t list
(** Every precision, in the order the paper's tables list them. *)

val bytes : t -> int
(** Storage size of one element, in bytes. *)

val bits : t -> int
(** Storage size of one element, in bits. *)

val dsp_cost_per_mac : t -> float
(** DSP slices consumed by one multiply-accumulate unit.  8-bit MACs pack
    two per DSP48E2 (0.5); 16-bit needs one; fp32 averages 3.5 with
    logic-assisted multipliers (the fabric share shows up as CLB usage
    instead). *)

val to_string : t -> string
(** ["i8"], ["i16"] or ["f32"]. *)

val of_string : string -> t option
(** Inverse of {!to_string}; also accepts ["8"], ["16"], ["32"],
    ["int8"], ["fp32"], ["float32"] spellings (case-insensitive). *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val compare : t -> t -> int
