(** Tensor shapes.

    The accelerator model works on single-image inference (batch = 1), the
    setting of the paper's latency-oriented evaluation.  Three shape
    families cover everything the graph IR produces: feature maps (CHW),
    convolution filters (OIHW) and flat vectors (dense layers, biases). *)

type feature = private {
  channels : int;
  height : int;
  width : int;
}
(** A feature map: [channels]×[height]×[width], all positive. *)

type filter = private {
  out_channels : int;
  in_channels : int;
  kernel_h : int;
  kernel_w : int;
}
(** A convolution weight tensor.  [in_channels] is per-group. *)

type t =
  | Feature of feature
  | Filter of filter
  | Vector of int  (** Flat length, positive. *)

val feature : channels:int -> height:int -> width:int -> t
(** Build a feature shape.  Raises [Invalid_argument] on non-positive
    dimensions. *)

val filter :
  out_channels:int -> in_channels:int -> kernel_h:int -> kernel_w:int -> t
(** Build a filter shape.  Raises [Invalid_argument] on non-positive
    dimensions. *)

val vector : int -> t
(** Build a vector shape.  Raises [Invalid_argument] on non-positive
    length. *)

val elements : t -> int
(** Number of scalar elements. *)

val size_bytes : Dtype.t -> t -> int
(** Storage footprint at the given precision. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** E.g. ["64x56x56"], ["256x64x3x3"], ["[1000]"]. *)

val to_string : t -> string

val as_feature : t -> feature option
(** [Some f] when the shape is a feature map. *)

val as_filter : t -> filter option
(** [Some f] when the shape is a filter. *)
