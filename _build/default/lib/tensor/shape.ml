type feature = { channels : int; height : int; width : int }

type filter = {
  out_channels : int;
  in_channels : int;
  kernel_h : int;
  kernel_w : int;
}

type t = Feature of feature | Filter of filter | Vector of int

let check_positive name v =
  if v <= 0 then invalid_arg (Printf.sprintf "Shape: %s must be positive, got %d" name v)

let feature ~channels ~height ~width =
  check_positive "channels" channels;
  check_positive "height" height;
  check_positive "width" width;
  Feature { channels; height; width }

let filter ~out_channels ~in_channels ~kernel_h ~kernel_w =
  check_positive "out_channels" out_channels;
  check_positive "in_channels" in_channels;
  check_positive "kernel_h" kernel_h;
  check_positive "kernel_w" kernel_w;
  Filter { out_channels; in_channels; kernel_h; kernel_w }

let vector len =
  check_positive "length" len;
  Vector len

let elements = function
  | Feature { channels; height; width } -> channels * height * width
  | Filter { out_channels; in_channels; kernel_h; kernel_w } ->
    out_channels * in_channels * kernel_h * kernel_w
  | Vector len -> len

let size_bytes dtype t = elements t * Dtype.bytes dtype

let equal a b =
  match a, b with
  | Feature x, Feature y -> x = y
  | Filter x, Filter y -> x = y
  | Vector x, Vector y -> x = y
  | (Feature _ | Filter _ | Vector _), _ -> false

let pp ppf = function
  | Feature { channels; height; width } ->
    Format.fprintf ppf "%dx%dx%d" channels height width
  | Filter { out_channels; in_channels; kernel_h; kernel_w } ->
    Format.fprintf ppf "%dx%dx%dx%d" out_channels in_channels kernel_h kernel_w
  | Vector len -> Format.fprintf ppf "[%d]" len

let to_string t = Format.asprintf "%a" pp t

let as_feature = function
  | Feature f -> Some f
  | Filter _ | Vector _ -> None

let as_filter = function
  | Filter f -> Some f
  | Feature _ | Vector _ -> None
