type t = I8 | I16 | F32

let all = [ I8; I16; F32 ]

let bytes = function I8 -> 1 | I16 -> 2 | F32 -> 4

let bits t = 8 * bytes t

let dsp_cost_per_mac = function I8 -> 0.5 | I16 -> 1. | F32 -> 3.5

let to_string = function I8 -> "i8" | I16 -> "i16" | F32 -> "f32"

let of_string s =
  match String.lowercase_ascii s with
  | "i8" | "int8" | "8" | "8-bit" -> Some I8
  | "i16" | "int16" | "16" | "16-bit" -> Some I16
  | "f32" | "fp32" | "float32" | "32" | "32-bit" -> Some F32
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b =
  match a, b with
  | I8, I8 | I16, I16 | F32, F32 -> true
  | (I8 | I16 | F32), _ -> false

let compare a b = Stdlib.compare a b
