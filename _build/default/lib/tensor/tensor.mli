(** Tensor substrate: precisions, shapes, descriptors.

    This module is the library entry point.  {!Dtype} and {!Shape} are
    re-exported here; the descriptor type below names a shaped, typed
    piece of data (a feature map or a weight tensor).  Element precision
    is a whole-design property in this accelerator model, so it is
    supplied where sizes are needed rather than stored per tensor. *)

module Dtype = Dtype
module Shape = Shape

type kind =
  | Feature_map  (** Activation data produced by a node. *)
  | Weight       (** Parameters of a node, constant across inferences. *)

type t = private {
  id : int;        (** Unique within one graph; assigned by the graph. *)
  name : string;   (** Human-readable, e.g. ["conv3_1:out"]. *)
  kind : kind;
  shape : Shape.t;
}
(** A tensor descriptor. *)

val make : id:int -> name:string -> kind:kind -> shape:Shape.t -> t
(** Build a descriptor.  Raises [Invalid_argument] on a negative id or an
    empty name. *)

val size_bytes : Dtype.t -> t -> int
(** Storage footprint at the given precision. *)

val is_weight : t -> bool

val is_feature : t -> bool

val equal : t -> t -> bool
(** Identity: same [id] and [kind]. *)

val pp : Format.formatter -> t -> unit

val pp_kind : Format.formatter -> kind -> unit
