lib/fpga/device.ml: Format List Resource String
