lib/fpga/resource.ml: Format
