type t = { dsp : int; bram36 : int; uram : int; luts : int }

let zero = { dsp = 0; bram36 = 0; uram = 0; luts = 0 }

let make ?(dsp = 0) ?(bram36 = 0) ?(uram = 0) ?(luts = 0) () =
  if dsp < 0 || bram36 < 0 || uram < 0 || luts < 0 then
    invalid_arg "Resource.make: negative component";
  { dsp; bram36; uram; luts }

let add a b =
  { dsp = a.dsp + b.dsp;
    bram36 = a.bram36 + b.bram36;
    uram = a.uram + b.uram;
    luts = a.luts + b.luts }

let sub a b =
  { dsp = a.dsp - b.dsp;
    bram36 = a.bram36 - b.bram36;
    uram = a.uram - b.uram;
    luts = a.luts - b.luts }

let scale k a =
  { dsp = k * a.dsp; bram36 = k * a.bram36; uram = k * a.uram; luts = k * a.luts }

let fits a ~within =
  a.dsp <= within.dsp && a.bram36 <= within.bram36 && a.uram <= within.uram
  && a.luts <= within.luts

let ratio used total = if total = 0 then 0. else float_of_int used /. float_of_int total

let utilization a ~total =
  [ ("dsp", ratio a.dsp total.dsp);
    ("bram", ratio a.bram36 total.bram36);
    ("uram", ratio a.uram total.uram);
    ("luts", ratio a.luts total.luts) ]

(* One BRAM36 holds 36 Kib of which 4 Kib are parity; designs use 4 KiB of
   data payload.  One URAM block holds 288 Kib = 36 KiB with no separate
   parity, but 32 KiB is the usable payload at byte-write granularity. *)
let bram36_bytes = 4 * 1024

let uram_bytes = 32 * 1024

let sram_bytes a = (a.bram36 * bram36_bytes) + (a.uram * uram_bytes)

let pp ppf a =
  Format.fprintf ppf "{dsp=%d; bram36=%d; uram=%d; luts=%d}" a.dsp a.bram36 a.uram a.luts
