(** FPGA resource vectors.

    Counts are in physical primitives: DSP slices, BRAM36 blocks (36 Kib),
    URAM blocks (288 Kib) and CLB LUTs.  Vectors support the arithmetic
    the design-space exploration needs (addition, fit tests, utilization
    ratios against a device's totals). *)

type t = {
  dsp : int;
  bram36 : int;
  uram : int;
  luts : int;
}

val zero : t

val make : ?dsp:int -> ?bram36:int -> ?uram:int -> ?luts:int -> unit -> t
(** Missing components default to 0.  Raises [Invalid_argument] on
    negative counts. *)

val add : t -> t -> t

val sub : t -> t -> t
(** Component-wise subtraction; may produce negative components (use
    {!fits} to test feasibility). *)

val scale : int -> t -> t

val fits : t -> within:t -> bool
(** Every component of the first vector is <= the corresponding component
    of [within]. *)

val utilization : t -> total:t -> (string * float) list
(** Per-component utilization ratios in [0, +inf), as
    [("dsp", r); ("bram", r); ("uram", r); ("luts", r)].  Components whose
    total is 0 report 0. *)

val bram36_bytes : int
(** Usable data bytes of one BRAM36 block (4 KiB of 36 Kib are parity). *)

val uram_bytes : int
(** Usable data bytes of one URAM block (32 KiB). *)

val sram_bytes : t -> int
(** BRAM + URAM capacity of the vector, in bytes. *)

val pp : Format.formatter -> t -> unit
