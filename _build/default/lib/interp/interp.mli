(** Functional reference interpreter.

    Executes a computation graph numerically (float32 semantics on small
    tensors).  Two uses: it pins down the operator semantics the shape
    inference promises, and {!run_tiled} re-executes every convolution in
    the tile-loop order of the accelerator's dataflow — outer loops over
    output-channel groups, spatial tiles and input-channel groups with
    partial-sum accumulation — so the tiling model's central assumption
    (tile-by-tile execution computes the same function) is checkable
    rather than believed.

    Layout: feature maps are dense [channels x height x width] arrays,
    index [(c * height + y) * width + x]; filters are [OIHW]. *)

type value = {
  shape : Tensor.Shape.t;
  data : float array;   (** Length = [Shape.elements shape]. *)
}

val value_of_shape : Tensor.Shape.t -> f:(int -> float) -> value
(** Build a value by indexing [f] over the flat element range. *)

val synthetic_weights : Dnn_graph.Graph.t -> seed:int -> int -> value option
(** Deterministic pseudo-random weights for a node ([None] when it has
    none); different seeds give different parameter sets. *)

val synthetic_input : Dnn_graph.Graph.t -> seed:int -> value
(** Deterministic input image for the graph's [Input] node. *)

val run :
  ?weights:(int -> value option) -> Dnn_graph.Graph.t -> input:value ->
  value array
(** Execute the graph; result [i] is node [i]'s output value.  [weights]
    defaults to {!synthetic_weights} with seed 0.  Raises
    [Invalid_argument] on shape mismatches (which indicate a bug: shapes
    were already inferred). *)

val run_tiled :
  ?weights:(int -> value option) -> tile:Accel.Tiling.t ->
  Dnn_graph.Graph.t -> input:value -> value array
(** Like {!run}, but every convolution executes in the accelerator's
    tiled loop order with partial-sum accumulation per input-channel
    group. *)

val max_abs_diff : value -> value -> float
(** Largest element-wise difference; raises [Invalid_argument] on shape
    mismatch. *)
