module G = Dnn_graph.Graph
module Op = Dnn_graph.Op
module Shape = Tensor.Shape

type value = { shape : Shape.t; data : float array }

let value_of_shape shape ~f =
  { shape; data = Array.init (Shape.elements shape) f }

(* Deterministic pseudo-noise in [-0.1, 0.1]: a small integer hash is
   enough for test data. *)
let noise seed salt i =
  let h = ref (seed lxor (salt * 0x9e3779b1) lxor (i * 0x85ebca6b)) in
  h := !h lxor (!h lsr 13);
  h := !h * 0xc2b2ae35 land 0x3fffffff;
  h := !h lxor (!h lsr 16);
  (float_of_int (!h mod 2001) /. 1000. -. 1.) *. 0.1

let synthetic_weights g ~seed id =
  match G.weight_shape g id with
  | None -> None
  | Some shape -> Some (value_of_shape shape ~f:(noise seed id))

let synthetic_input g ~seed =
  value_of_shape (G.output_shape g 0) ~f:(noise seed 7919)

let feature_dims shape =
  match Shape.as_feature shape with
  | Some f -> (f.Shape.channels, f.Shape.height, f.Shape.width)
  | None -> invalid_arg "Interp: expected a feature value"

let at value ~w ~c ~y ~x ~h = value.data.(((c * h) + y) * w + x)

(* Padding at the start of one spatial axis, mirroring Op's output-size
   rules: Same realizes out = ceil(in/s) with the smaller half of the
   padding leading, Explicit is symmetric, Valid is none. *)
let pad_begin padding ~extent ~k ~s =
  match padding with
  | Op.Valid -> 0
  | Op.Explicit p -> p
  | Op.Same ->
    let out = (extent + s - 1) / s in
    let needed = max 0 (((out - 1) * s) + k - extent) in
    needed / 2

(* Direct convolution over an output sub-range: output channels
   [oc0, oc1), spatial rows [y0, y1), columns [x0, x1), input channels
   restricted to [ic0, ic1) within the group (for tiled partial sums). *)
let conv_range ~input ~weights ~out ~conv ~out_shape ~oc0 ~oc1 ~y0 ~y1 ~x0 ~x1
    ~ic0 ~ic1 ~accumulate =
  let ic_total, ih, iw = feature_dims input.shape in
  let oc_total, _, _ = feature_dims out_shape in
  let kh, kw = conv.Op.kernel in
  let sh, sw = conv.Op.stride in
  let groups = conv.Op.groups in
  let ic_per_group = ic_total / groups in
  let oc_per_group = oc_total / groups in
  let pad_y = pad_begin conv.Op.padding ~extent:ih ~k:kh ~s:sh in
  let pad_x = pad_begin conv.Op.padding ~extent:iw ~k:kw ~s:sw in
  for oc = oc0 to oc1 - 1 do
    let group = oc / oc_per_group in
    for y = y0 to y1 - 1 do
      for x = x0 to x1 - 1 do
        let acc = ref 0. in
        for ic = ic0 to ic1 - 1 do
          let in_c = (group * ic_per_group) + ic in
          for ky = 0 to kh - 1 do
            let in_y = (y * sh) + ky - pad_y in
            if in_y >= 0 && in_y < ih then
              for kx = 0 to kw - 1 do
                let in_x = (x * sw) + kx - pad_x in
                if in_x >= 0 && in_x < iw then
                  let wv =
                    weights.data.((((oc * ic_per_group) + ic) * kh + ky) * kw + kx)
                  in
                  acc := !acc +. (wv *. at input ~w:iw ~c:in_c ~y:in_y ~x:in_x ~h:ih)
              done
          done
        done;
        let _, out_h, out_w = feature_dims out_shape in
        let pos = ((oc * out_h) + y) * out_w + x in
        if accumulate then out.(pos) <- out.(pos) +. !acc else out.(pos) <- !acc
      done
    done
  done

let conv_value ~input ~weights ~conv ~out_shape =
  let oc, oh, ow = feature_dims out_shape in
  let ic_total, _, _ = feature_dims input.shape in
  let out = Array.make (Shape.elements out_shape) 0. in
  conv_range ~input ~weights ~out ~conv ~out_shape ~oc0:0 ~oc1:oc ~y0:0 ~y1:oh
    ~x0:0 ~x1:ow ~ic0:0 ~ic1:(ic_total / conv.Op.groups) ~accumulate:false;
  { shape = out_shape; data = out }

let pool_value ~input ~pool ~out_shape =
  let c_total, ih, iw = feature_dims input.shape in
  let _, oh, ow = feature_dims out_shape in
  let out = Array.make (Shape.elements out_shape) 0. in
  if pool.Op.global then begin
    for c = 0 to c_total - 1 do
      let acc = ref 0. and best = ref neg_infinity in
      for y = 0 to ih - 1 do
        for x = 0 to iw - 1 do
          let v = at input ~w:iw ~c ~y ~x ~h:ih in
          acc := !acc +. v;
          if v > !best then best := v
        done
      done;
      out.(c) <-
        (match pool.Op.pool_kind with
        | Op.Avg -> !acc /. float_of_int (ih * iw)
        | Op.Max -> !best)
    done;
    { shape = out_shape; data = out }
  end
  else begin
    let kh, kw = pool.Op.pool_kernel in
    let sh, sw = pool.Op.pool_stride in
    let pad_y = pad_begin pool.Op.pool_padding ~extent:ih ~k:kh ~s:sh in
    let pad_x = pad_begin pool.Op.pool_padding ~extent:iw ~k:kw ~s:sw in
    for c = 0 to c_total - 1 do
      for y = 0 to oh - 1 do
        for x = 0 to ow - 1 do
          let acc = ref 0. and best = ref neg_infinity and count = ref 0 in
          for ky = 0 to kh - 1 do
            let in_y = (y * sh) + ky - pad_y in
            if in_y >= 0 && in_y < ih then
              for kx = 0 to kw - 1 do
                let in_x = (x * sw) + kx - pad_x in
                if in_x >= 0 && in_x < iw then begin
                  let v = at input ~w:iw ~c ~y:in_y ~x:in_x ~h:ih in
                  acc := !acc +. v;
                  incr count;
                  if v > !best then best := v
                end
              done
          done;
          out.(((c * oh) + y) * ow + x) <-
            (match pool.Op.pool_kind with
            | Op.Avg -> if !count = 0 then 0. else !acc /. float_of_int !count
            | Op.Max -> !best)
        done
      done
    done;
    { shape = out_shape; data = out }
  end

let upsample_value ~input ~factor ~out_shape =
  let c_total, ih, iw = feature_dims input.shape in
  let _, oh, ow = feature_dims out_shape in
  let out = Array.make (Shape.elements out_shape) 0. in
  for c = 0 to c_total - 1 do
    for y = 0 to oh - 1 do
      for x = 0 to ow - 1 do
        out.(((c * oh) + y) * ow + x) <-
          at input ~w:iw ~c ~y:(y / factor) ~x:(x / factor) ~h:ih
      done
    done
  done;
  { shape = out_shape; data = out }

let dense_value ~input ~weights ~out_shape =
  let n_in = Shape.elements input.shape in
  let n_out = Shape.elements out_shape in
  let out = Array.make n_out 0. in
  for o = 0 to n_out - 1 do
    let acc = ref 0. in
    for i = 0 to n_in - 1 do
      acc := !acc +. (weights.data.((o * n_in) + i) *. input.data.(i))
    done;
    out.(o) <- !acc
  done;
  { shape = out_shape; data = out }

let concat_value ~inputs ~out_shape =
  let _, oh, ow = feature_dims out_shape in
  let out = Array.make (Shape.elements out_shape) 0. in
  let offset = ref 0 in
  List.iter
    (fun input ->
      let c_total, _, _ = feature_dims input.shape in
      Array.blit input.data 0 out (!offset * oh * ow) (c_total * oh * ow);
      offset := !offset + c_total)
    inputs;
  { shape = out_shape; data = out }

let add_value ~inputs ~out_shape =
  let n = Shape.elements out_shape in
  let out = Array.make n 0. in
  List.iter (fun input -> Array.iteri (fun i v -> out.(i) <- out.(i) +. v) input.data) inputs;
  { shape = out_shape; data = out }

let weight_of ~weights id =
  match weights id with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Interp: node %d has no weights" id)

let run_with ~conv_exec ?weights g ~input =
  let weights =
    match weights with Some w -> w | None -> synthetic_weights g ~seed:0
  in
  let n = G.node_count g in
  let results = Array.make n { shape = Shape.vector 1; data = [| 0. |] } in
  for id = 0 to n - 1 do
    let nd = G.node g id in
    let out_shape = G.output_shape g id in
    let inputs = List.map (fun p -> results.(p)) nd.G.preds in
    results.(id) <-
      (match nd.G.op, inputs with
      | Op.Input _, [] ->
        if not (Shape.equal input.shape out_shape) then
          invalid_arg "Interp.run: input shape mismatch";
        input
      | Op.Conv conv, [ one ] ->
        conv_exec ~input:one ~weights:(weight_of ~weights id) ~conv ~out_shape
      | Op.Pool pool, [ one ] -> pool_value ~input:one ~pool ~out_shape
      | Op.Upsample { factor }, [ one ] -> upsample_value ~input:one ~factor ~out_shape
      | Op.Dense _, [ one ] ->
        dense_value ~input:one ~weights:(weight_of ~weights id) ~out_shape
      | Op.Eltwise_add, (_ :: _ :: _ as many) -> add_value ~inputs:many ~out_shape
      | Op.Concat, (_ :: _ as many) -> concat_value ~inputs:many ~out_shape
      | (Op.Input _ | Op.Conv _ | Op.Pool _ | Op.Upsample _ | Op.Dense _
        | Op.Eltwise_add | Op.Concat), _ ->
        invalid_arg "Interp.run: arity mismatch (graph was validated?)")
  done;
  results

let run ?weights g ~input = run_with ~conv_exec:conv_value ?weights g ~input

(* Tiled convolution: the accelerator's outer loops — output-channel
   groups x spatial tiles x input-channel groups — with partial sums
   accumulated in the output tile across input-channel groups. *)
let conv_tiled tile ~input ~weights ~conv ~out_shape =
  let oc, oh, ow = feature_dims out_shape in
  let ic_total, _, _ = feature_dims input.shape in
  let ic_per_group = ic_total / conv.Op.groups in
  let out = Array.make (Shape.elements out_shape) 0. in
  let tm = tile.Accel.Tiling.tm and tn = tile.Accel.Tiling.tn in
  let th = tile.Accel.Tiling.th and tw = tile.Accel.Tiling.tw in
  let rec chunks lo hi step acc =
    if lo >= hi then List.rev acc
    else chunks (lo + step) hi step ((lo, min hi (lo + step)) :: acc)
  in
  List.iter
    (fun (oc0, oc1) ->
      List.iter
        (fun (y0, y1) ->
          List.iter
            (fun (x0, x1) ->
              List.iter
                (fun (ic0, ic1) ->
                  conv_range ~input ~weights ~out ~conv ~out_shape ~oc0 ~oc1 ~y0
                    ~y1 ~x0 ~x1 ~ic0 ~ic1 ~accumulate:true)
                (chunks 0 ic_per_group tn []))
            (chunks 0 ow tw []))
        (chunks 0 oh th []))
    (chunks 0 oc tm []);
  { shape = out_shape; data = out }

let run_tiled ?weights ~tile g ~input =
  run_with ~conv_exec:(conv_tiled tile) ?weights g ~input

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Interp.max_abs_diff: shape mismatch";
  let worst = ref 0. in
  Array.iteri
    (fun i v -> worst := max !worst (abs_float (v -. b.data.(i))))
    a.data;
  !worst
