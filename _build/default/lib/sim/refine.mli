(** Simulation-guided allocation refinement (an extension beyond the
    paper).

    The analytical prefetch pass assumes every weight load whose PDG
    source is early enough is free; the event simulator shows that
    concurrent prefetches serialize on the weight DDR channel and can
    stall late layers (GoogLeNet's inception_5b in Fig. 8 regresses under
    prefetching for exactly this reason).  The refinement loop closes
    that gap: simulate, unpin the pinned weight whose node accumulated
    the largest wait, and keep the change if the simulated total
    improved; repeat until no unpinning helps. *)

type outcome = {
  on_chip : Lcmm.Metric.Item_set.t;  (** Refined allocation. *)
  run : Engine.run;                  (** Simulation of the refined set. *)
  unpinned : Lcmm.Metric.item list;  (** Weights evicted, in order. *)
  initial_total : float;
  refined_total : float;
}

val run :
  ?max_iterations:int -> ?prefetch:Lcmm.Prefetch.t -> Lcmm.Metric.t ->
  on_chip:Lcmm.Metric.Item_set.t -> outcome
(** Refine the allocation under the simulator.  Never returns a worse
    simulated total than the input allocation's.  [max_iterations]
    defaults to 16. *)
