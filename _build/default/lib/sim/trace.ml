module Json = Dnn_serial.Json

let binding_name = function
  | Engine.Compute -> "compute"
  | Engine.Input_stream -> "input-stream"
  | Engine.Weight_stream -> "weight-stream"
  | Engine.Output_stream -> "output-stream"

let us seconds = Json.Float (seconds *. 1e6)

let duration_event ~name ~category ~start ~duration ~tid =
  Json.Obj
    [ ("name", Json.String name); ("cat", Json.String category);
      ("ph", Json.String "X"); ("ts", us start); ("dur", us duration);
      ("pid", Json.Int 1); ("tid", Json.Int tid) ]

let to_json g run =
  let events = ref [] in
  Array.iter
    (fun t ->
      let nd = Dnn_graph.Graph.node g t.Engine.node_id in
      let duration = t.Engine.finish -. t.Engine.start in
      if duration > 0. then
        events :=
          duration_event ~name:nd.Dnn_graph.Graph.node_name
            ~category:(binding_name t.Engine.binding) ~start:t.Engine.start
            ~duration ~tid:1
          :: !events;
      if t.Engine.wait > 0. then
        events :=
          duration_event
            ~name:(nd.Dnn_graph.Graph.node_name ^ ":stall")
            ~category:"prefetch-stall"
            ~start:(t.Engine.start -. t.Engine.wait)
            ~duration:t.Engine.wait ~tid:2
          :: !events)
    run.Engine.timings;
  Json.List (List.rev !events)

let write_file ~path g run =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string ~indent:1 (to_json g run)))
