module Metric = Lcmm.Metric

type outcome = {
  on_chip : Metric.Item_set.t;
  run : Engine.run;
  unpinned : Metric.item list;
  initial_total : float;
  refined_total : float;
}

(* The pinned weight whose node waited longest in the run. *)
(* Does the allocation pin any of this node's weights (whole or sliced)? *)
let pins_weight on_chip id =
  Metric.Item_set.exists
    (fun item ->
      match item with
      | Metric.Weight_of n -> n = id
      | Metric.Weight_slice { node; _ } -> node = id
      | Metric.Feature_value _ -> false)
    on_chip

let worst_waiting_weight run on_chip =
  Array.fold_left
    (fun best t ->
      let id = t.Engine.node_id in
      if t.Engine.wait > 0. && pins_weight on_chip id then
        match best with
        | Some (w, _) when w >= t.Engine.wait -> best
        | Some _ | None -> Some (t.Engine.wait, id)
      else best)
    None run.Engine.timings

let run ?(max_iterations = 16) ?prefetch metric ~on_chip =
  let simulate set = Engine.simulate ?prefetch metric ~on_chip:set in
  let initial = simulate on_chip in
  let rec loop set best_run unpinned iterations =
    if iterations >= max_iterations then (set, best_run, unpinned)
    else
      match worst_waiting_weight best_run set with
      | None -> (set, best_run, unpinned)
      | Some (_, node) ->
        let evicted =
          Metric.Item_set.filter
            (fun item ->
              match item with
              | Metric.Weight_of n -> n = node
              | Metric.Weight_slice { node = n; _ } -> n = node
              | Metric.Feature_value _ -> false)
            set
        in
        let candidate = Metric.Item_set.diff set evicted in
        let next = simulate candidate in
        if next.Engine.total < best_run.Engine.total -. 1e-15 then
          loop candidate next
            (Metric.Item_set.elements evicted @ unpinned)
            (iterations + 1)
        else (set, best_run, unpinned)
  in
  let set, best_run, unpinned = loop on_chip initial [] 0 in
  { on_chip = set;
    run = best_run;
    unpinned = List.rev unpinned;
    initial_total = initial.Engine.total;
    refined_total = best_run.Engine.total }
