module G = Dnn_graph.Graph

type block_row = {
  block : string;
  seconds : float;
  macs : int;
  tops : float;
}

let per_block g run =
  let row block =
    let ids = G.nodes_of_block g block in
    let seconds =
      List.fold_left
        (fun acc id ->
          let t = run.Engine.timings.(id) in
          acc +. (t.Engine.finish -. t.Engine.start) +. t.Engine.wait)
        0. ids
    in
    let macs = List.fold_left (fun acc id -> acc + G.macs g id) 0 ids in
    let tops =
      if seconds <= 0. then 0. else 2. *. float_of_int macs /. seconds /. 1e12
    in
    { block; seconds; macs; tops }
  in
  List.map row (G.blocks g)

let total_tops g run =
  if run.Engine.total <= 0. then 0.
  else 2. *. float_of_int (G.total_macs g) /. run.Engine.total /. 1e12

let pp_rows ppf rows =
  Format.fprintf ppf "%-16s %10s %10s %8s@." "block" "time(us)" "macs(M)" "Tops";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s %10.1f %10.2f %8.3f@." r.block (r.seconds *. 1e6)
        (float_of_int r.macs /. 1e6) r.tops)
    rows

let speedup_table g ~baseline ~improved =
  let base = per_block g baseline in
  let impr = per_block g improved in
  List.map2
    (fun b i ->
      (b.block, b.tops, i.tops, (if b.tops > 0. then i.tops /. b.tops else 0.)))
    base impr
