(** Aggregation of simulator runs for the paper's per-block figures.

    Fig. 8 plots per-inception-block throughput for GoogLeNet; the report
    folds node timings into the graph's block tags and computes each
    block's effective Tops from its MAC count and simulated residence
    time. *)

type block_row = {
  block : string;
  seconds : float;      (** Simulated wall time spent in the block. *)
  macs : int;
  tops : float;         (** 2 * macs / seconds / 1e12. *)
}

val per_block : Dnn_graph.Graph.t -> Engine.run -> block_row list
(** Rows for every tagged block, in first-appearance order; untagged
    nodes are skipped. *)

val total_tops : Dnn_graph.Graph.t -> Engine.run -> float

val pp_rows : Format.formatter -> block_row list -> unit
(** Aligned text table. *)

val speedup_table :
  Dnn_graph.Graph.t -> baseline:Engine.run -> improved:Engine.run ->
  (string * float * float * float) list
(** Per-block [(block, baseline tops, improved tops, speedup)]. *)
