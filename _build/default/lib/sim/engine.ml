module Metric = Lcmm.Metric
module Latency = Accel.Latency

type binding = Compute | Input_stream | Weight_stream | Output_stream

type node_timing = {
  node_id : int;
  start : float;
  finish : float;
  wait : float;
  binding : binding;
}

type run = {
  timings : node_timing array;
  total : float;
  prefetch_wait : float;
  wt_channel_busy : float;
}

let simulate ?(weights_resident = false) ?prefetch metric ~on_chip =
  let profiles = metric.Metric.profiles in
  let n = Array.length profiles in
  (* Fraction of node [id]'s weight tensor resident on chip (slices pin
     independently; an unsliced tensor is 0 or 1). *)
  let pinned_fraction id =
    let k = metric.Metric.slices.(id) in
    if k = 1 then
      if Metric.Item_set.mem (Metric.Weight_of id) on_chip then 1. else 0.
    else begin
      let count = ref 0 in
      for index = 0 to k - 1 do
        if Metric.Item_set.mem (Metric.Weight_slice { node = id; index; of_k = k }) on_chip
        then incr count
      done;
      float_of_int !count /. float_of_int k
    end
  in
  let pinned_weight id = pinned_fraction id > 0. in
  (* Prefetch jobs released when their source node starts: target ->
     ready time, filled in as the schedule advances. *)
  let released = Array.make n [] in
  (match prefetch with
  | None -> ()
  | Some _ when weights_resident -> ()
  | Some pdg ->
    List.iter
      (fun e ->
        if pinned_weight e.Lcmm.Prefetch.target then
          released.(e.Lcmm.Prefetch.source) <-
            e :: released.(e.Lcmm.Prefetch.source))
      (Lcmm.Prefetch.edges pdg));
  let weight_ready = Array.make n 0. in
  (* Pinned weights with no PDG edge must load before their node; model
     as released at time 0. *)
  let has_edge = Array.make n false in
  Array.iter (List.iter (fun e -> has_edge.(e.Lcmm.Prefetch.target) <- true)) released;
  let timings = Array.make n { node_id = 0; start = 0.; finish = 0.; wait = 0.; binding = Compute } in
  let wt_free = ref 0. in
  let wt_busy = ref 0. in
  let clock = ref 0. in
  let prefetch_wait = ref 0. in
  for id = 0 to n - 1 do
    let p = profiles.(id) in
    (* Release prefetch jobs whose source is this node; they queue on the
       weight channel in target order. *)
    List.iter
      (fun e ->
        (* Only the pinned share of a sliced tensor is prefetched. *)
        let load =
          e.Lcmm.Prefetch.load_seconds *. pinned_fraction e.Lcmm.Prefetch.target
        in
        let job_start = max !wt_free !clock in
        let job_end = job_start +. load in
        wt_free := job_end;
        wt_busy := !wt_busy +. load;
        weight_ready.(e.Lcmm.Prefetch.target) <- job_end)
      (List.rev released.(id));
    (* A pinned weight without a prefetch edge loads on demand. *)
    if
      pinned_weight id && (not weights_resident) && (not has_edge.(id))
      && p.Latency.wt_load_once > 0.
    then begin
      let load = p.Latency.wt_load_once *. pinned_fraction id in
      let job_start = max !wt_free !clock in
      let job_end = job_start +. load in
      wt_free := job_end;
      wt_busy := !wt_busy +. load;
      weight_ready.(id) <- max weight_ready.(id) job_end
    end;
    let ready = if pinned_weight id then weight_ready.(id) else 0. in
    let start = max !clock ready in
    let wait = start -. !clock in
    prefetch_wait := !prefetch_wait +. wait;
    let if_time =
      List.fold_left
        (fun acc (v, t) ->
          if Metric.Item_set.mem (Metric.Feature_value v) on_chip then acc
          else acc +. t)
        0. p.Latency.if_terms
    in
    let of_time =
      if Metric.Item_set.mem (Metric.Feature_value id) on_chip then 0.
      else p.Latency.of_term
    in
    (* The streamed share of the weights occupies the (possibly
       prefetch-delayed) weight channel for its streaming time. *)
    let wt_component =
      let streamed = p.Latency.wt_term *. (1. -. pinned_fraction id) in
      if streamed <= 0. then 0.
      else begin
        let s = max start !wt_free in
        let finish_wt = s +. streamed in
        wt_free := finish_wt;
        wt_busy := !wt_busy +. streamed;
        finish_wt -. start
      end
    in
    let components =
      [ (Compute, p.Latency.latc); (Input_stream, if_time);
        (Weight_stream, wt_component); (Output_stream, of_time) ]
    in
    let binding, duration =
      List.fold_left
        (fun (bb, bd) (b, d) -> if d > bd then (b, d) else (bb, bd))
        (Compute, p.Latency.latc) components
    in
    let finish = start +. duration in
    timings.(id) <- { node_id = id; start; finish; wait; binding };
    clock := finish
  done;
  { timings;
    total = !clock;
    prefetch_wait = !prefetch_wait;
    wt_channel_busy = !wt_busy }

let simulate_umm metric = simulate metric ~on_chip:Metric.Item_set.empty

type batch = {
  first_image : float;
  steady_image : float;
  batch_total : float;
  images_per_second : float;
}

let simulate_batch ?prefetch ~images metric ~on_chip =
  if images < 1 then invalid_arg "Engine.simulate_batch: images < 1";
  let first = (simulate ?prefetch metric ~on_chip).total in
  let steady = (simulate ~weights_resident:true ?prefetch metric ~on_chip).total in
  let batch_total = first +. (float_of_int (images - 1) *. steady) in
  { first_image = first;
    steady_image = steady;
    batch_total;
    images_per_second = float_of_int images /. batch_total }

let bound_fraction run binding =
  if run.total <= 0. then 0.
  else
    Array.fold_left
      (fun acc t ->
        if t.binding = binding then acc +. (t.finish -. t.start) else acc)
      0. run.timings
    /. run.total
