(** Chrome-tracing export of simulation runs.

    Writes the `chrome://tracing` / Perfetto JSON array format: one
    duration event per node on the "compute" track (colored by the Eq. 1
    component that bound it) and one per stall.  Load the file in any
    trace viewer to see where an allocation leaves the array idle. *)

val to_json : Dnn_graph.Graph.t -> Engine.run -> Dnn_serial.Json.t
(** The trace document. *)

val write_file : path:string -> Dnn_graph.Graph.t -> Engine.run -> unit
