lib/sim/engine.mli: Lcmm
