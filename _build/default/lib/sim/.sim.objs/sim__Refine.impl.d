lib/sim/refine.ml: Array Engine Lcmm List
