lib/sim/report.ml: Array Dnn_graph Engine Format List
