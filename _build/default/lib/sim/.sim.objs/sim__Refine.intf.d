lib/sim/refine.mli: Engine Lcmm
