lib/sim/trace.mli: Dnn_graph Dnn_serial Engine
