lib/sim/report.mli: Dnn_graph Engine Format
