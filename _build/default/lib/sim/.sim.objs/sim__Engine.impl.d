lib/sim/engine.ml: Accel Array Lcmm List
