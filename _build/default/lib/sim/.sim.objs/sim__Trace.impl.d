lib/sim/trace.ml: Array Dnn_graph Dnn_serial Engine Fun List
