(* The DNNK allocator: capacity discipline, pivot compensation, and
   optimality against exact enumeration on small problems. *)

module Metric = Lcmm.Metric
module Dnnk = Lcmm.Dnnk
module Vbuffer = Lcmm.Vbuffer
module Policies = Lcmm.Policies

let dtype = Tensor.Dtype.I16

(* Virtual buffers for a graph: one singleton buffer per eligible item
   (sharing is exercised separately in the coloring tests). *)
let singleton_vbufs m =
  Metric.eligible_items m ~memory_bound_only:false
  |> List.mapi (fun i item ->
         Vbuffer.singleton ~vbuf_id:i item
           ~size_bytes:(Metric.item_size_bytes dtype m item))

let test_respects_capacity () =
  let _, m = Helpers.metric_of (Helpers.inception_snippet ()) in
  let vbufs = singleton_vbufs m in
  List.iter
    (fun capacity_bytes ->
      let r = Dnnk.allocate m ~capacity_bytes vbufs in
      Alcotest.(check bool) "within capacity" true
        (r.Dnnk.used_blocks <= r.Dnnk.capacity_blocks);
      Alcotest.(check int) "partition"
        (List.length vbufs)
        (List.length r.Dnnk.chosen + List.length r.Dnnk.spilled))
    [ 0; 64 * 1024; 512 * 1024; 16 * 1024 * 1024 ]

let test_zero_capacity_chooses_nothing () =
  let _, m = Helpers.metric_of (Helpers.inception_snippet ()) in
  let r = Dnnk.allocate m ~capacity_bytes:0 (singleton_vbufs m) in
  Alcotest.(check int) "nothing chosen" 0 (List.length r.Dnnk.chosen);
  Alcotest.(check (float 1e-12)) "latency = UMM"
    (Accel.Latency.umm_total m.Metric.profiles)
    r.Dnnk.predicted_latency

let test_ample_capacity_takes_all_useful () =
  let _, m = Helpers.metric_of (Helpers.inception_snippet ()) in
  let vbufs = singleton_vbufs m in
  let r = Dnnk.allocate m ~capacity_bytes:(256 * 1024 * 1024) vbufs in
  (* With unlimited space, predicted latency equals the all-pinned bound. *)
  let everything =
    Metric.Item_set.of_list (List.concat_map (fun vb -> vb.Vbuffer.members) vbufs)
  in
  Alcotest.(check (float 1e-12)) "reaches all-pinned latency"
    (Metric.total_latency m ~on_chip:everything)
    r.Dnnk.predicted_latency

let test_negative_capacity_rejected () =
  let _, m = Helpers.metric_of (Helpers.chain ()) in
  Alcotest.check_raises "negative" (Invalid_argument "Dnnk.allocate: negative capacity")
    (fun () -> ignore (Dnnk.allocate m ~capacity_bytes:(-1) []))

let test_blocks_of_bytes () =
  Alcotest.(check int) "zero" 0 (Dnnk.blocks_of_bytes 0);
  Alcotest.(check int) "one byte" 1 (Dnnk.blocks_of_bytes 1);
  Alcotest.(check int) "exact block" 1 (Dnnk.blocks_of_bytes Dnnk.block_bytes);
  Alcotest.(check int) "block + 1" 2 (Dnnk.blocks_of_bytes (Dnnk.block_bytes + 1))

let test_pivot_compensation_counts_once () =
  (* The paper's running example: a node with several memory terms.  The
     gain of pinning both input and weights must equal the exact joint
     gain, not the sum of the optimistic solo gains. *)
  let _, m = Helpers.metric_of (Helpers.inception_snippet ()) in
  let items = [ Metric.Feature_value 2; Metric.Weight_of 3 ] in
  let sized =
    List.mapi
      (fun i it ->
        Vbuffer.singleton ~vbuf_id:i it
          ~size_bytes:(Metric.item_size_bytes dtype m it))
      items
  in
  let r = Dnnk.allocate m ~capacity_bytes:(64 * 1024 * 1024) sized in
  let exact =
    Metric.total_latency m ~on_chip:(Metric.Item_set.of_list items)
  in
  Alcotest.(check (float 1e-12)) "DP latency is exact for its choice" exact
    r.Dnnk.predicted_latency

let both_variants f =
  List.iter f [ Dnnk.Table_approx; Dnnk.Exact_iterative ]

let test_variants_match_exact_enumeration () =
  (* On problems small enough to enumerate, both DNNK variants should be
     close to optimal; Exact_iterative within 2%, Table_approx within 10%. *)
  let graphs = [ Helpers.inception_snippet (); Helpers.diamond (); Helpers.chain () ] in
  List.iter
    (fun g ->
      let _, m = Helpers.metric_of g in
      let vbufs = singleton_vbufs m in
      let capacity_bytes = 2 * 1024 * 1024 in
      let best =
        Policies.run m ~dtype ~capacity_bytes vbufs Policies.Exact_small
      in
      both_variants (fun compensation ->
          let r = Dnnk.allocate ~compensation m ~capacity_bytes vbufs in
          let tolerance =
            match compensation with
            | Dnnk.Exact_iterative -> 1.02
            | Dnnk.Table_approx -> 1.10
          in
          Alcotest.(check bool)
            (Printf.sprintf "near-optimal (%f vs %f)" r.Dnnk.predicted_latency
               best.Policies.latency)
            true
            (r.Dnnk.predicted_latency <= (best.Policies.latency *. tolerance) +. 1e-12)))
    graphs

let prop_never_worse_than_umm =
  Helpers.qtest ~count:30 "DNNK never exceeds UMM latency"
    (QCheck2.Gen.pair Helpers.random_graph_gen (QCheck2.Gen.int_range 0 64))
    (fun (g, cap_blocks) ->
      let _, m = Helpers.metric_of g in
      let vbufs = singleton_vbufs m in
      let r =
        Dnnk.allocate m ~capacity_bytes:(cap_blocks * Dnnk.block_bytes) vbufs
      in
      r.Dnnk.predicted_latency
      <= Accel.Latency.umm_total m.Metric.profiles +. 1e-9)

let prop_capacity_monotone =
  Helpers.qtest ~count:25 "more capacity never hurts"
    Helpers.random_graph_gen (fun g ->
      let _, m = Helpers.metric_of g in
      let vbufs = singleton_vbufs m in
      let lat cap = (Dnnk.allocate m ~capacity_bytes:cap vbufs).Dnnk.predicted_latency in
      let small = lat (256 * 1024) in
      let big = lat (8 * 1024 * 1024) in
      big <= small +. 1e-9)

let prop_matches_exact_on_random =
  Helpers.qtest ~count:15 "exact-iterative within 5% of enumeration"
    Helpers.random_graph_gen (fun g ->
      let _, m = Helpers.metric_of g in
      let vbufs = singleton_vbufs m in
      if List.length vbufs > 18 then true
      else begin
        let capacity_bytes = 1024 * 1024 in
        let best = Policies.run m ~dtype ~capacity_bytes vbufs Policies.Exact_small in
        let r =
          Dnnk.allocate ~compensation:Dnnk.Exact_iterative m ~capacity_bytes vbufs
        in
        r.Dnnk.predicted_latency <= (best.Policies.latency *. 1.05) +. 1e-12
      end)

let suite =
  [ Alcotest.test_case "respects capacity" `Quick test_respects_capacity;
    Alcotest.test_case "zero capacity" `Quick test_zero_capacity_chooses_nothing;
    Alcotest.test_case "ample capacity" `Quick test_ample_capacity_takes_all_useful;
    Alcotest.test_case "negative capacity" `Quick test_negative_capacity_rejected;
    Alcotest.test_case "blocks of bytes" `Quick test_blocks_of_bytes;
    Alcotest.test_case "pivot compensation" `Quick test_pivot_compensation_counts_once;
    Alcotest.test_case "variants vs enumeration" `Quick test_variants_match_exact_enumeration;
    prop_never_worse_than_umm;
    prop_capacity_monotone;
    prop_matches_exact_on_random ]
