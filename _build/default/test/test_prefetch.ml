(* The prefetching dependence graph (paper section 3.2). *)

module Metric = Lcmm.Metric
module Prefetch = Lcmm.Prefetch
module Latency = Accel.Latency

let fixture () =
  let _, m = Helpers.metric_of (Helpers.inception_snippet ()) in
  let node_latency id = Latency.umm_node_latency m.Metric.profiles.(id) in
  (m, node_latency)

let test_backtrace_hides_load () =
  let m, node_latency = fixture () in
  let pdg = Prefetch.build m ~targets:[ 5; 7 ] ~node_latency in
  List.iter
    (fun e ->
      (* Either the elapsed time from the source to the target covers the
         load, or the source is node 0 and the stall is the shortfall. *)
      let elapsed = ref 0. in
      for id = e.Prefetch.source to e.Prefetch.target - 1 do
        elapsed := !elapsed +. node_latency id
      done;
      if e.Prefetch.stall_seconds = 0. then
        Alcotest.(check bool) "elapsed covers load" true
          (!elapsed >= e.Prefetch.load_seconds -. 1e-12)
      else begin
        Alcotest.(check int) "stalling edges start at 0" 0 e.Prefetch.source;
        Alcotest.(check (float 1e-9)) "stall is the shortfall"
          (e.Prefetch.load_seconds -. !elapsed)
          e.Prefetch.stall_seconds
      end)
    (Prefetch.edges pdg)

let test_source_is_latest () =
  let m, node_latency = fixture () in
  let pdg = Prefetch.build m ~targets:[ 7 ] ~node_latency in
  match Prefetch.edge_of pdg 7 with
  | None -> Alcotest.fail "edge missing"
  | Some e ->
    if e.Prefetch.source > 0 && e.Prefetch.stall_seconds = 0. then begin
      (* Starting one node later would not leave enough time. *)
      let elapsed = ref 0. in
      for id = e.Prefetch.source + 1 to 6 do
        elapsed := !elapsed +. node_latency id
      done;
      Alcotest.(check bool) "source is as late as possible" true
        (!elapsed < e.Prefetch.load_seconds)
    end

let test_early_node_stalls () =
  let m, node_latency = fixture () in
  (* Node 1 is the first conv: nothing can hide its weight load. *)
  let pdg = Prefetch.build m ~targets:[ 1 ] ~node_latency in
  Alcotest.(check bool) "stall positive" true (Prefetch.stall_seconds pdg 1 > 0.);
  Alcotest.(check (option int)) "source 0" (Some 0) (Prefetch.source_of pdg 1);
  Alcotest.(check (float 1e-12)) "total stall" (Prefetch.stall_seconds pdg 1)
    (Prefetch.total_stall pdg)

let test_unknown_target () =
  let m, node_latency = fixture () in
  let pdg = Prefetch.build m ~targets:[ 7 ] ~node_latency in
  Alcotest.(check (option int)) "not a target" None (Prefetch.source_of pdg 3);
  Alcotest.(check (float 0.)) "no stall" 0. (Prefetch.stall_seconds pdg 3)

let test_rejects_weightless () =
  let m, node_latency = fixture () in
  Alcotest.check_raises "node 0 has no weights"
    (Invalid_argument "Prefetch.build: node 0 has no weight tensor") (fun () ->
      ignore (Prefetch.build m ~targets:[ 0 ] ~node_latency))

let prop_edges_well_formed =
  Helpers.qtest ~count:40 "PDG edges well formed on random graphs"
    Helpers.random_graph_gen (fun g ->
      let _, m = Helpers.metric_of g in
      let targets =
        Metric.eligible_items m ~memory_bound_only:false
        |> List.filter_map (function
             | Metric.Weight_of n | Metric.Weight_slice { node = n; _ } -> Some n
             | Metric.Feature_value _ -> None)
      in
      let node_latency id = Latency.umm_node_latency m.Metric.profiles.(id) in
      let pdg = Prefetch.build m ~targets ~node_latency in
      List.for_all
        (fun e ->
          e.Prefetch.source >= 0
          && e.Prefetch.source <= e.Prefetch.target
          && e.Prefetch.stall_seconds >= 0.
          && e.Prefetch.load_seconds > 0.)
        (Prefetch.edges pdg))

let suite =
  [ Alcotest.test_case "backtrace hides load" `Quick test_backtrace_hides_load;
    Alcotest.test_case "source is latest" `Quick test_source_is_latest;
    Alcotest.test_case "early node stalls" `Quick test_early_node_stalls;
    Alcotest.test_case "unknown target" `Quick test_unknown_target;
    Alcotest.test_case "rejects weightless" `Quick test_rejects_weightless;
    prop_edges_well_formed ]
