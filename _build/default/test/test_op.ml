(* Operator shape inference and cost accounting. *)

module Op = Dnn_graph.Op
module Shape = Tensor.Shape

let shape_t = Alcotest.testable Shape.pp Shape.equal

let feature c h w = Shape.feature ~channels:c ~height:h ~width:w

let infer op inputs =
  match Op.output_shape op inputs with
  | Ok s -> s
  | Error msg -> Alcotest.failf "unexpected inference error: %s" msg

let expect_error op inputs =
  match Op.output_shape op inputs with
  | Ok s -> Alcotest.failf "expected error, got %s" (Shape.to_string s)
  | Error _ -> ()

let test_conv_same () =
  let op = Op.conv_defaults ~out_channels:64 ~kernel:(3, 3) () in
  Alcotest.check shape_t "same padding keeps extent" (feature 64 56 56)
    (infer op [ feature 32 56 56 ])

let test_conv_same_strided () =
  let op = Op.conv_defaults ~stride:(2, 2) ~out_channels:64 ~kernel:(3, 3) () in
  Alcotest.check shape_t "ceil division" (feature 64 28 28)
    (infer op [ feature 32 56 56 ]);
  Alcotest.check shape_t "odd extent" (feature 64 38 38)
    (infer op [ feature 32 75 75 ])

let test_conv_valid () =
  let op =
    Op.conv_defaults ~padding:Op.Valid ~out_channels:32 ~kernel:(3, 3) ()
  in
  Alcotest.check shape_t "valid shrinks" (feature 32 147 147)
    (infer op [ feature 3 149 149 ]);
  let strided =
    Op.conv_defaults ~padding:Op.Valid ~stride:(2, 2) ~out_channels:32
      ~kernel:(3, 3) ()
  in
  Alcotest.check shape_t "inception stem conv" (feature 32 149 149)
    (infer strided [ feature 3 299 299 ])

let test_conv_explicit () =
  let op =
    Op.conv_defaults ~padding:(Op.Explicit 3) ~stride:(2, 2) ~out_channels:64
      ~kernel:(7, 7) ()
  in
  Alcotest.check shape_t "resnet conv1" (feature 64 112 112)
    (infer op [ feature 3 224 224 ])

let test_conv_asymmetric_kernel () =
  let op = Op.conv_defaults ~out_channels:64 ~kernel:(1, 7) () in
  Alcotest.check shape_t "1x7 keeps extent under same" (feature 64 17 17)
    (infer op [ feature 128 17 17 ])

let test_conv_groups () =
  let op = Op.conv_defaults ~groups:2 ~out_channels:256 ~kernel:(5, 5) () in
  Alcotest.check shape_t "grouped conv" (feature 256 27 27)
    (infer op [ feature 96 27 27 ]);
  expect_error (Op.conv_defaults ~groups:3 ~out_channels:256 ~kernel:(3, 3) ())
    [ feature 32 8 8 ]

let test_conv_errors () =
  let op = Op.conv_defaults ~out_channels:8 ~kernel:(3, 3) () in
  expect_error op [];
  expect_error op [ Shape.vector 10 ];
  expect_error op [ feature 1 4 4; feature 1 4 4 ];
  expect_error
    (Op.conv_defaults ~padding:Op.Valid ~out_channels:8 ~kernel:(9, 9) ())
    [ feature 4 5 5 ]

let test_pool () =
  let pool =
    Op.Pool
      { pool_kind = Op.Max; pool_kernel = (3, 3); pool_stride = (2, 2);
        pool_padding = Op.Same; global = false }
  in
  Alcotest.check shape_t "3x3/2 same" (feature 64 56 56) (infer pool [ feature 64 112 112 ]);
  let global =
    Op.Pool
      { pool_kind = Op.Avg; pool_kernel = (1, 1); pool_stride = (1, 1);
        pool_padding = Op.Valid; global = true }
  in
  Alcotest.check shape_t "global" (feature 1024 1 1) (infer global [ feature 1024 7 7 ])

let test_eltwise () =
  Alcotest.check shape_t "same shapes" (feature 64 8 8)
    (infer Op.Eltwise_add [ feature 64 8 8; feature 64 8 8 ]);
  expect_error Op.Eltwise_add [ feature 64 8 8 ];
  expect_error Op.Eltwise_add [ feature 64 8 8; feature 32 8 8 ]

let test_concat () =
  Alcotest.check shape_t "channel sum" (feature 96 8 8)
    (infer Op.Concat [ feature 64 8 8; feature 32 8 8 ]);
  expect_error Op.Concat [ feature 64 8 8; feature 32 4 4 ];
  expect_error Op.Concat []

let test_upsample () =
  Alcotest.check shape_t "x2" (feature 16 32 32)
    (infer (Op.Upsample { factor = 2 }) [ feature 16 16 16 ]);
  expect_error (Op.Upsample { factor = 0 }) [ feature 16 16 16 ]

let test_dense () =
  Alcotest.check shape_t "flattening dense" (Shape.vector 4096)
    (infer (Op.Dense { out_features = 4096 }) [ feature 256 6 6 ]);
  Alcotest.check shape_t "vector dense" (Shape.vector 1000)
    (infer (Op.Dense { out_features = 1000 }) [ Shape.vector 4096 ])

let test_weight_shapes () =
  let conv = Op.conv_defaults ~out_channels:256 ~kernel:(3, 3) () in
  Alcotest.check (Alcotest.option shape_t) "conv weights"
    (Some (Shape.filter ~out_channels:256 ~in_channels:64 ~kernel_h:3 ~kernel_w:3))
    (Op.weight_shape conv [ feature 64 56 56 ]);
  let grouped = Op.conv_defaults ~groups:2 ~out_channels:64 ~kernel:(3, 3) () in
  Alcotest.check (Alcotest.option shape_t) "grouped weights halve in_channels"
    (Some (Shape.filter ~out_channels:64 ~in_channels:16 ~kernel_h:3 ~kernel_w:3))
    (Op.weight_shape grouped [ feature 32 8 8 ]);
  Alcotest.check (Alcotest.option shape_t) "pool has none" None
    (Op.weight_shape
       (Op.Pool
          { pool_kind = Op.Max; pool_kernel = (2, 2); pool_stride = (2, 2);
            pool_padding = Op.Valid; global = false })
       [ feature 8 8 8 ])

let test_macs () =
  let conv = Op.conv_defaults ~out_channels:64 ~kernel:(3, 3) () in
  Alcotest.(check int) "conv macs" (56 * 56 * 64 * 32 * 9)
    (Op.macs conv [ feature 32 56 56 ]);
  let grouped = Op.conv_defaults ~groups:2 ~out_channels:64 ~kernel:(3, 3) () in
  Alcotest.(check int) "grouped macs halve" (8 * 8 * 64 * 16 * 9)
    (Op.macs grouped [ feature 32 8 8 ]);
  Alcotest.(check int) "dense macs" (4096 * 1000)
    (Op.macs (Op.Dense { out_features = 1000 }) [ Shape.vector 4096 ]);
  Alcotest.(check int) "pool has no macs" 0
    (Op.macs
       (Op.Pool
          { pool_kind = Op.Max; pool_kernel = (2, 2); pool_stride = (2, 2);
            pool_padding = Op.Valid; global = false })
       [ feature 8 8 8 ])

let test_aux_ops () =
  Alcotest.(check int) "eltwise ops" (64 * 8 * 8)
    (Op.aux_ops Op.Eltwise_add [ feature 64 8 8; feature 64 8 8 ]);
  Alcotest.(check bool) "pool ops positive" true
    (Op.aux_ops
       (Op.Pool
          { pool_kind = Op.Max; pool_kernel = (3, 3); pool_stride = (2, 2);
            pool_padding = Op.Same; global = false })
       [ feature 8 16 16 ]
    > 0);
  Alcotest.(check int) "conv has no aux ops" 0
    (Op.aux_ops (Op.conv_defaults ~out_channels:8 ~kernel:(1, 1) ()) [ feature 8 4 4 ])

let prop_same_padding_ceil =
  Helpers.qtest "same padding output = ceil(extent/stride)"
    QCheck2.Gen.(
      quad (int_range 1 128) (int_range 1 3) (int_range 1 7) (int_range 1 64))
    (fun (extent, stride, k, channels) ->
      let op =
        Op.conv_defaults ~stride:(stride, stride) ~out_channels:8 ~kernel:(k, k) ()
      in
      match
        Op.output_shape op [ Shape.feature ~channels ~height:extent ~width:extent ]
      with
      | Ok s -> (
        match Shape.as_feature s with
        | Some f -> f.Shape.height = (extent + stride - 1) / stride
        | None -> false)
      | Error _ -> false)

let prop_macs_scale_with_channels =
  Helpers.qtest "macs linear in output channels"
    QCheck2.Gen.(pair (int_range 1 32) (int_range 1 16))
    (fun (oc, ic) ->
      let op k = Op.conv_defaults ~out_channels:k ~kernel:(3, 3) () in
      let input = [ Shape.feature ~channels:ic ~height:8 ~width:8 ] in
      Op.macs (op (2 * oc)) input = 2 * Op.macs (op oc) input)

let suite =
  [ Alcotest.test_case "conv same" `Quick test_conv_same;
    Alcotest.test_case "conv same strided" `Quick test_conv_same_strided;
    Alcotest.test_case "conv valid" `Quick test_conv_valid;
    Alcotest.test_case "conv explicit" `Quick test_conv_explicit;
    Alcotest.test_case "conv asymmetric" `Quick test_conv_asymmetric_kernel;
    Alcotest.test_case "conv groups" `Quick test_conv_groups;
    Alcotest.test_case "conv errors" `Quick test_conv_errors;
    Alcotest.test_case "pool" `Quick test_pool;
    Alcotest.test_case "eltwise" `Quick test_eltwise;
    Alcotest.test_case "concat" `Quick test_concat;
    Alcotest.test_case "upsample" `Quick test_upsample;
    Alcotest.test_case "dense" `Quick test_dense;
    Alcotest.test_case "weight shapes" `Quick test_weight_shapes;
    Alcotest.test_case "macs" `Quick test_macs;
    Alcotest.test_case "aux ops" `Quick test_aux_ops;
    prop_same_padding_ceil;
    prop_macs_scale_with_channels ]
