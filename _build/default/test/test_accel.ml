(* The accelerator performance model: PE array, tiling, latency (Eq. 1),
   roofline and DSE. *)

module Pe = Accel.Pe_array
module Tiling = Accel.Tiling
module Config = Accel.Config
module Latency = Accel.Latency
module Dtype = Tensor.Dtype

let test_pe_basics () =
  let a = Pe.make ~tm_unroll:32 ~tn_unroll:16 ~tsp_unroll:8 in
  Alcotest.(check int) "macs" 4096 (Pe.macs_per_cycle a);
  Alcotest.(check int) "dsp i16" 4096 (Pe.dsp_usage Dtype.I16 a);
  Alcotest.(check int) "dsp i8 packs" 2048 (Pe.dsp_usage Dtype.I8 a);
  Alcotest.(check bool) "dsp f32 biggest" true
    (Pe.dsp_usage Dtype.F32 a > Pe.dsp_usage Dtype.I16 a);
  Alcotest.check_raises "bad unroll"
    (Invalid_argument "Pe_array.make: non-positive unroll factor") (fun () ->
      ignore (Pe.make ~tm_unroll:0 ~tn_unroll:1 ~tsp_unroll:1))

let test_pe_cycles () =
  let a = Pe.make ~tm_unroll:8 ~tn_unroll:8 ~tsp_unroll:4 in
  (* Perfectly divisible dims: cycles = macs / array. *)
  Alcotest.(check int) "exact" (16 * 16 * 8 * 9 / 256)
    (Pe.conv_cycles a ~m:16 ~c:16 ~hw:8 ~k2:9);
  (* Padding rounds every dim up. *)
  Alcotest.(check int) "padded" (16 * 16 * 8 / 256)
    (Pe.conv_cycles a ~m:9 ~c:9 ~hw:5 ~k2:1);
  Alcotest.(check (float 1e-9)) "efficiency exact" 1.0 (Pe.efficiency a ~m:16 ~c:16 ~hw:8);
  Alcotest.(check bool) "efficiency < 1 when padded" true
    (Pe.efficiency a ~m:9 ~c:9 ~hw:5 < 1.

)

let test_pe_default_for () =
  let a = Pe.default_for Fpga.Device.vu9p Dtype.I16 ~dsp_fraction:0.83 in
  Alcotest.(check bool) "fits budget" true (Pe.dsp_usage Dtype.I16 a <= 5677);
  Alcotest.(check bool) "uses most of it" true (Pe.dsp_usage Dtype.I16 a > 4500);
  Alcotest.(check bool) "spatial unroll sane" true (a.Pe.tsp_unroll <= 32);
  (* i8 packing doubles the array for the same budget. *)
  let a8 = Pe.default_for Fpga.Device.vu9p Dtype.I8 ~dsp_fraction:0.83 in
  Alcotest.(check bool) "i8 array bigger" true
    (Pe.macs_per_cycle a8 > Pe.macs_per_cycle a);
  Alcotest.check_raises "fraction range"
    (Invalid_argument "Pe_array.default_for: dsp_fraction out of (0, 1]") (fun () ->
      ignore (Pe.default_for Fpga.Device.vu9p Dtype.I16 ~dsp_fraction:1.5))

let test_tiling_trips () =
  let t = Tiling.make ~tm:32 ~tn:32 ~th:14 ~tw:14 in
  (* Layer fits in one tile. *)
  let one = Tiling.trips t ~out_channels:32 ~out_h:14 ~out_w:14 ~kernel:(3, 3) in
  Alcotest.(check int) "if once" 1 one.Tiling.if_trips;
  Alcotest.(check int) "wt once" 1 one.Tiling.wt_trips;
  Alcotest.(check (float 1e-9)) "no halo" 1.0 one.Tiling.halo;
  (* Bigger layer: 4 channel groups, 16 spatial tiles. *)
  let big = Tiling.trips t ~out_channels:128 ~out_h:56 ~out_w:56 ~kernel:(3, 3) in
  Alcotest.(check int) "if trips" 4 big.Tiling.if_trips;
  Alcotest.(check int) "wt trips" 16 big.Tiling.wt_trips;
  Alcotest.(check bool) "halo overread" true (big.Tiling.halo > 1.0)

let test_tiling_transactions () =
  let t = Tiling.make ~tm:32 ~tn:32 ~th:14 ~tw:14 in
  let txn = Tiling.transactions t ~out_channels:64 ~in_channels:64 ~out_h:28 ~out_w:28 in
  (* nm=2, nc=2, nsp=4 *)
  Alcotest.(check int) "loads" 16 txn.Tiling.if_txn;
  Alcotest.(check int) "weight loads" 16 txn.Tiling.wt_txn;
  Alcotest.(check int) "stores" 8 txn.Tiling.of_txn

let test_tiling_buffers () =
  let small = Tiling.make ~tm:16 ~tn:16 ~th:7 ~tw:7 in
  let large = Tiling.make ~tm:64 ~tn:64 ~th:28 ~tw:28 in
  Alcotest.(check bool) "monotone in size" true
    (Tiling.buffer_bytes Dtype.I16 small < Tiling.buffer_bytes Dtype.I16 large);
  Alcotest.(check bool) "monotone in dtype" true
    (Tiling.buffer_bytes Dtype.I8 large < Tiling.buffer_bytes Dtype.F32 large);
  Alcotest.(check bool) "bram blocks cover bytes" true
    (Tiling.bram_blocks Dtype.I16 large * Fpga.Resource.bram36_bytes
    >= Tiling.buffer_bytes Dtype.I16 large)

let test_config () =
  let c = Config.make ~style:Config.Umm Dtype.I16 in
  Alcotest.(check (float 1e-9)) "umm freq" 190. c.Config.freq_mhz;
  let l = Config.make ~style:Config.Lcmm Dtype.I16 in
  Alcotest.(check (float 1e-9)) "lcmm freq lower" 180. l.Config.freq_mhz;
  Alcotest.(check bool) "bandwidth below theoretical" true
    (Config.interface_bandwidth c < Fpga.Device.interface_bandwidth Fpga.Device.vu9p);
  Alcotest.(check bool) "sram budget below device" true
    (Config.sram_budget_bytes c < Fpga.Device.sram_bytes Fpga.Device.vu9p);
  Alcotest.(check bool) "peak positive" true (Config.peak_ops c > 0.)

let profile_fixture () =
  let g = Helpers.chain () in
  let cfg = Config.make ~style:Config.Umm Dtype.I16 in
  (g, cfg, Latency.profile_graph cfg g)

let test_latency_profiles () =
  let _, _, profiles = profile_fixture () in
  Alcotest.(check int) "one profile per node" 4 (Array.length profiles);
  let input = profiles.(0) in
  Alcotest.(check (float 0.)) "input free" 0. (Latency.umm_node_latency input);
  let conv = profiles.(1) in
  Alcotest.(check bool) "conv compute positive" true (conv.Latency.latc > 0.);
  Alcotest.(check int) "one input stream" 1 (List.length conv.Latency.if_terms);
  Alcotest.(check bool) "weight stream positive" true (conv.Latency.wt_term > 0.);
  Alcotest.(check bool) "load once <= streamed" true
    (conv.Latency.wt_load_once <= conv.Latency.wt_term +. 1e-12)

let test_eq1_semantics () =
  let _, _, profiles = profile_fixture () in
  let p = profiles.(1) in
  let all_off = Latency.umm_node_latency p in
  let all_on =
    Latency.node_latency p ~if_on_chip:(fun _ -> true) ~wt_on_chip:true
      ~of_on_chip:true
  in
  Alcotest.(check (float 1e-12)) "fully pinned = compute" p.Latency.latc all_on;
  Alcotest.(check bool) "pinning never hurts" true (all_on <= all_off);
  (* Pinning one source is between the two. *)
  let wt_on =
    Latency.node_latency p ~if_on_chip:(fun _ -> false) ~wt_on_chip:true
      ~of_on_chip:false
  in
  Alcotest.(check bool) "partial between" true (all_on <= wt_on && wt_on <= all_off)

let test_memory_bound_count () =
  let g = Models.Zoo.build "inception_v4" in
  let cfg = Config.make ~style:Config.Umm Dtype.I16 in
  let profiles = Latency.profile_graph cfg g in
  let mb, total = Latency.memory_bound_count profiles in
  Alcotest.(check bool) "some memory bound" true (mb > 0);
  Alcotest.(check bool) "not all" true (mb < total);
  (* A substantial fraction, as the paper reports. *)
  Alcotest.(check bool) "fraction > 20%" true
    (float_of_int mb /. float_of_int total > 0.2)

let test_roofline () =
  let g = Helpers.chain () in
  let cfg = Config.make ~style:Config.Umm Dtype.I16 in
  let points = Accel.Roofline.points cfg g in
  Alcotest.(check int) "conv layers have points" 3 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "attainable <= peak" true
        (p.Accel.Roofline.attainable_tops <= (Config.peak_ops cfg /. 1e12) +. 1e-9);
      Alcotest.(check bool) "intensity positive" true (p.Accel.Roofline.intensity > 0.))
    points;
  let ridge = Accel.Roofline.ridge_point cfg in
  Alcotest.(check bool) "ridge positive" true (ridge > 0.);
  (* At the ridge, both roofs agree. *)
  Alcotest.(check (float 1e-6)) "roofs meet"
    (Config.peak_ops cfg /. 1e12)
    (Accel.Roofline.attainable_tops cfg ridge)

let test_dse () =
  let g = Helpers.chain () in
  let r = Accel.Dse.run ~style:Config.Umm Dtype.I16 g in
  Alcotest.(check bool) "fits device" true
    (Fpga.Resource.fits r.Accel.Dse.resources
       ~within:Fpga.Device.vu9p.Fpga.Device.total);
  (* DSE should never lose to an arbitrary fixed candidate. *)
  let fixed = Tiling.make ~tm:16 ~tn:16 ~th:7 ~tw:7 in
  let cfg = Config.make ~tile:fixed ~style:Config.Umm Dtype.I16 in
  let fixed_lat = Latency.umm_total (Latency.profile_graph cfg g) in
  Alcotest.(check bool) "dse at least as good" true
    (r.Accel.Dse.umm_latency <= fixed_lat +. 1e-12)

let test_fused_eltwise () =
  let g = Helpers.diamond () in
  let plain = Config.make ~style:Config.Umm Dtype.I16 in
  let fused = Config.make ~fused_eltwise:true ~style:Config.Umm Dtype.I16 in
  (* Node 3 (body2) feeds only the add at node 4: fused, its write-back
     disappears and the add no longer reads it. *)
  let p_plain = Latency.profile_graph plain g in
  let p_fused = Latency.profile_graph fused g in
  Alcotest.(check bool) "producer of-term removed" true
    (p_fused.(3).Latency.of_term = 0. && p_plain.(3).Latency.of_term > 0.);
  Alcotest.(check int) "add loses one input stream"
    (List.length p_plain.(4).Latency.if_terms - 1)
    (List.length p_fused.(4).Latency.if_terms);
  (* The shortcut input (node 1, consumed by the add too) still streams:
     it has another consumer ordering (not the immediately preceding
     node). *)
  Alcotest.(check bool) "shortcut still streams" true
    (List.mem_assoc 1 p_fused.(4).Latency.if_terms);
  Alcotest.(check bool) "fusion only helps" true
    (Latency.umm_total p_fused <= Latency.umm_total p_plain +. 1e-15)

let prop_umm_upper_bound =
  Helpers.qtest ~count:30 "umm latency bounds any allocation"
    Helpers.random_graph_gen (fun g ->
      let cfg = Config.make ~style:Config.Umm Dtype.I16 in
      let profiles = Latency.profile_graph cfg g in
      let umm = Latency.umm_total profiles in
      let all_on =
        Array.fold_left
          (fun acc p ->
            acc
            +. Latency.node_latency p ~if_on_chip:(fun _ -> true) ~wt_on_chip:true
                 ~of_on_chip:true)
          0. profiles
      in
      all_on <= umm +. 1e-12)

let suite =
  [ Alcotest.test_case "pe basics" `Quick test_pe_basics;
    Alcotest.test_case "pe cycles" `Quick test_pe_cycles;
    Alcotest.test_case "pe default_for" `Quick test_pe_default_for;
    Alcotest.test_case "tiling trips" `Quick test_tiling_trips;
    Alcotest.test_case "tiling transactions" `Quick test_tiling_transactions;
    Alcotest.test_case "tiling buffers" `Quick test_tiling_buffers;
    Alcotest.test_case "config" `Quick test_config;
    Alcotest.test_case "latency profiles" `Quick test_latency_profiles;
    Alcotest.test_case "eq1 semantics" `Quick test_eq1_semantics;
    Alcotest.test_case "memory bound count" `Quick test_memory_bound_count;
    Alcotest.test_case "roofline" `Quick test_roofline;
    Alcotest.test_case "dse" `Quick test_dse;
    Alcotest.test_case "fused eltwise" `Quick test_fused_eltwise;
    prop_umm_upper_bound ]
