(* Metric tables: the exact evaluator and marginal gains. *)

module Metric = Lcmm.Metric
module Latency = Accel.Latency

let fixture () = Helpers.metric_of (Helpers.inception_snippet ())

let test_affected_nodes () =
  let _, m = fixture () in
  (* C2's output value affects C2 (writer) and C3 (reader). *)
  Alcotest.(check (list int)) "feature" [ 2; 3 ]
    (List.sort compare (Metric.affected_nodes m (Metric.Feature_value 2)));
  (* C1's value is read by C6 through the concat. *)
  Alcotest.(check (list int)) "through concat" [ 1; 7 ]
    (List.sort compare (Metric.affected_nodes m (Metric.Feature_value 1)));
  Alcotest.(check (list int)) "weight" [ 3 ]
    (Metric.affected_nodes m (Metric.Weight_of 3));
  Alcotest.(check (list int)) "unknown item" []
    (Metric.affected_nodes m (Metric.Weight_of 0))

let test_total_latency_matches_umm () =
  let _, m = fixture () in
  Alcotest.(check (float 1e-12)) "empty allocation = UMM"
    (Latency.umm_total m.Metric.profiles)
    (Metric.total_latency m ~on_chip:Metric.Item_set.empty)

let test_marginal_gain_positive () =
  let _, m = fixture () in
  let items = Metric.eligible_items m ~memory_bound_only:false in
  Alcotest.(check bool) "has items" true (items <> []);
  List.iter
    (fun item ->
      let gain = Metric.marginal_gain m ~on_chip:Metric.Item_set.empty item in
      Alcotest.(check bool) "gain >= 0" true (gain >= 0.))
    items

let test_gain_equals_latency_delta () =
  let _, m = fixture () in
  let item = Metric.Feature_value 2 in
  let before = Metric.total_latency m ~on_chip:Metric.Item_set.empty in
  let after =
    Metric.total_latency m ~on_chip:(Metric.Item_set.singleton item)
  in
  Alcotest.(check (float 1e-12)) "marginal = delta" (before -. after)
    (Metric.marginal_gain m ~on_chip:Metric.Item_set.empty item)

let test_gain_many_joint () =
  let _, m = fixture () in
  let items = [ Metric.Feature_value 2; Metric.Weight_of 3 ] in
  let joint = Metric.marginal_gain_many m ~on_chip:Metric.Item_set.empty items in
  let direct =
    Metric.total_latency m ~on_chip:Metric.Item_set.empty
    -. Metric.total_latency m ~on_chip:(Metric.Item_set.of_list items)
  in
  Alcotest.(check (float 1e-12)) "joint gain = delta" direct joint

let test_static_reduction_is_eq2 () =
  let _, m = fixture () in
  (* For a node whose largest term is the weight stream, Eq. 2 says the
     reduction is (wt - next largest term). *)
  let p = m.Metric.profiles.(3) in
  let if_sum = List.fold_left (fun a (_, t) -> a +. t) 0. p.Latency.if_terms in
  let others = List.sort compare [ p.Latency.latc; if_sum; p.Latency.of_term ] in
  let next = List.nth others 2 in
  if p.Latency.wt_term > next then
    Alcotest.(check (float 1e-12)) "eq2"
      (p.Latency.wt_term -. next)
      (Metric.static_reduction m (Metric.Weight_of 3))

let test_eligibility () =
  let _, m = fixture () in
  let all = Metric.eligible_items m ~memory_bound_only:false in
  (* The input's value is never eligible (cannot avoid the first DMA). *)
  Alcotest.(check bool) "input excluded" false
    (List.mem (Metric.Feature_value 0) all);
  (* The sink's value has no consumers. *)
  Alcotest.(check bool) "sink excluded" false
    (List.mem (Metric.Feature_value 7) all);
  (* Weight items for every conv. *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "w%d eligible" n)
        true
        (List.mem (Metric.Weight_of n) all))
    [ 1; 2; 3; 4; 5; 7 ];
  (* memory_bound_only is a subset. *)
  let bounded = Metric.eligible_items m ~memory_bound_only:true in
  List.iter
    (fun item ->
      Alcotest.(check bool) "subset" true (List.mem item all))
    bounded

let test_item_sizes () =
  let _, m = fixture () in
  (* Value 1 is 64x8x8 at i16. *)
  Alcotest.(check int) "feature size" (64 * 8 * 8 * 2)
    (Metric.item_size_bytes Tensor.Dtype.I16 m (Metric.Feature_value 1));
  (* Weight of C3: 128x96x3x3. *)
  Alcotest.(check int) "weight size" (128 * 96 * 9 * 2)
    (Metric.item_size_bytes Tensor.Dtype.I16 m (Metric.Weight_of 3));
  Alcotest.(check int) "no weights" 0
    (Metric.item_size_bytes Tensor.Dtype.I16 m (Metric.Weight_of 0))

let prop_latency_monotone =
  (* Adding items never increases total latency. *)
  Helpers.qtest ~count:40 "latency monotone in allocation"
    QCheck2.Gen.(pair Helpers.random_graph_gen (list_size (int_range 0 10) (int_range 0 1000)))
    (fun (g, picks) ->
      let _, m = Helpers.metric_of g in
      let items = Array.of_list (Metric.eligible_items m ~memory_bound_only:false) in
      if Array.length items = 0 then true
      else
        let subset =
          List.map (fun k -> items.(k mod Array.length items)) picks
          |> Metric.Item_set.of_list
        in
        let rest = Metric.Item_set.of_list (Array.to_list items) in
        let l0 = Metric.total_latency m ~on_chip:Metric.Item_set.empty in
        let l1 = Metric.total_latency m ~on_chip:subset in
        let l2 = Metric.total_latency m ~on_chip:rest in
        l2 <= l1 +. 1e-12 && l1 <= l0 +. 1e-12)

let prop_joint_gain_dominates_solo =
  (* The max-structure of Eq. 1 makes gains super-additive (the paper's
     pivot effect): pinning everything gains at least as much as any
     single item alone. *)
  Helpers.qtest ~count:40 "joint gain >= each solo gain"
    Helpers.random_graph_gen (fun g ->
      let _, m = Helpers.metric_of g in
      let items = Metric.eligible_items m ~memory_bound_only:false in
      let joint = Metric.marginal_gain_many m ~on_chip:Metric.Item_set.empty items in
      List.for_all
        (fun it ->
          Metric.marginal_gain m ~on_chip:Metric.Item_set.empty it <= joint +. 1e-9)
        items)

let suite =
  [ Alcotest.test_case "affected nodes" `Quick test_affected_nodes;
    Alcotest.test_case "total latency = UMM when empty" `Quick test_total_latency_matches_umm;
    Alcotest.test_case "marginal gain positive" `Quick test_marginal_gain_positive;
    Alcotest.test_case "gain equals latency delta" `Quick test_gain_equals_latency_delta;
    Alcotest.test_case "joint gain" `Quick test_gain_many_joint;
    Alcotest.test_case "static reduction is Eq.2" `Quick test_static_reduction_is_eq2;
    Alcotest.test_case "eligibility" `Quick test_eligibility;
    Alcotest.test_case "item sizes" `Quick test_item_sizes;
    prop_latency_monotone;
    prop_joint_gain_dominates_solo ]
