test/test_traffic.ml: Accel Alcotest Array Helpers Lcmm Tensor
