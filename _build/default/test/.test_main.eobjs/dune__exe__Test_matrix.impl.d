test/test_matrix.ml: Accel Alcotest Fpga Lcmm List Models Printf Sim Tensor
