test/test_serial.ml: Alcotest Dnn_graph Dnn_serial Filename Fun Hashtbl Helpers List Models QCheck2 Result Sys
