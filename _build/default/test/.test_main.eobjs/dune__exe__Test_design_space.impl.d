test/test_design_space.ml: Accel Alcotest Array Dnn_graph Helpers Lcmm List Printf Tensor
