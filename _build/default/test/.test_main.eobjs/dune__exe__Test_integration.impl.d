test/test_integration.ml: Accel Alcotest Dnn_graph Dnn_serial Lcmm List Models Sim Tensor
