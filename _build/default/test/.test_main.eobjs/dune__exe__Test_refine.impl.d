test/test_refine.ml: Accel Alcotest Helpers Lcmm List Models Sim Tensor
