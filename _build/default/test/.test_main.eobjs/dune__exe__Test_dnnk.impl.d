test/test_dnnk.ml: Accel Alcotest Helpers Lcmm List Printf QCheck2 Tensor
