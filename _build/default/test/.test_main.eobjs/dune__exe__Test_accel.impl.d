test/test_accel.ml: Accel Alcotest Array Fpga Helpers List Models Tensor
