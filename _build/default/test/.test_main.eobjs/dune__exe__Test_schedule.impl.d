test/test_schedule.ml: Accel Alcotest Array Dnn_graph Helpers List Models Printf Tensor
