test/test_splitting.ml: Alcotest Array Helpers Lcmm List Tensor
