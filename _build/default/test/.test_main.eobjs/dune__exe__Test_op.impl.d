test/test_op.ml: Alcotest Dnn_graph Helpers QCheck2 Tensor
