test/test_interp.ml: Accel Alcotest Array Dnn_graph Helpers Interp List Printf QCheck2 Tensor
