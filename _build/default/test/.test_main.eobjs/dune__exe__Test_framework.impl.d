test/test_framework.ml: Accel Alcotest Dnn_graph Helpers Lcmm List Models Tensor
