test/test_reproduction.ml: Accel Alcotest Dnn_graph Lazy Lcmm List Models Printf Tensor
