test/helpers.ml: Accel Dnn_graph Lcmm List Printf QCheck2 QCheck_alcotest Tensor
