test/test_exact.ml: Accel Alcotest Helpers Lcmm List Models Printf Tensor
