test/test_sim.ml: Accel Alcotest Array Dnn_serial Helpers Lcmm List Models Sim Tensor
