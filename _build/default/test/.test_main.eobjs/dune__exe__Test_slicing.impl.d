test/test_slicing.ml: Accel Alcotest Array Helpers Lcmm List Printf Sim Tensor
