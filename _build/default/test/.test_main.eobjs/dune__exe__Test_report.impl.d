test/test_report.ml: Alcotest Filename Fun Lcmm List Models String Sys Tensor
