test/test_tensor.ml: Alcotest Helpers List QCheck2 Tensor
