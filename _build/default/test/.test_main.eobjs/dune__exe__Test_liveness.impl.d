test/test_liveness.ml: Alcotest Array Hashtbl Helpers Lcmm List QCheck2
