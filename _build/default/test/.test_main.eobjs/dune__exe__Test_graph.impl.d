test/test_graph.ml: Alcotest Dnn_graph Helpers List Printf String Tensor
