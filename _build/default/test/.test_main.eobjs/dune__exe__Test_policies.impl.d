test/test_policies.ml: Accel Alcotest Helpers Lcmm List QCheck2 Tensor
