test/test_metric.ml: Accel Alcotest Array Helpers Lcmm List Printf QCheck2 Tensor
