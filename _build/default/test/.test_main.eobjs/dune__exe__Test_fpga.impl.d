test/test_fpga.ml: Alcotest Fpga Helpers List QCheck2
