test/test_prefetch.ml: Accel Alcotest Array Helpers Lcmm List
