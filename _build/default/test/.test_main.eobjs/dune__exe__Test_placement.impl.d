test/test_placement.ml: Accel Alcotest Fpga Helpers Lcmm List Models QCheck2 Tensor
