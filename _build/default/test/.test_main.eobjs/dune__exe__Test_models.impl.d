test/test_models.ml: Accel Alcotest Dnn_graph Fpga List Models Tensor
