(* Topological schedules and memory-aware reordering. *)

module Schedule = Dnn_graph.Schedule
module G = Dnn_graph.Graph

let dtype = Tensor.Dtype.I16

let test_default_valid () =
  let g = Helpers.diamond () in
  let order = Schedule.default g in
  Alcotest.(check bool) "valid" true (Schedule.is_valid g order);
  Alcotest.(check int) "identity" 0 order.(0)

let test_invalid_schedules () =
  let g = Helpers.diamond () in
  let n = G.node_count g in
  Alcotest.(check bool) "wrong length" false (Schedule.is_valid g [| 0 |]);
  Alcotest.(check bool) "duplicate" false
    (Schedule.is_valid g (Array.make n 0));
  let reversed = Array.init n (fun i -> n - 1 - i) in
  Alcotest.(check bool) "reversed breaks deps" false (Schedule.is_valid g reversed)

let test_memory_aware_valid () =
  List.iter
    (fun g ->
      let order = Schedule.memory_aware dtype g in
      Alcotest.(check bool) "valid" true (Schedule.is_valid g order))
    [ Helpers.chain (); Helpers.diamond (); Helpers.inception_snippet ();
      Models.Zoo.build "googlenet"; Models.Zoo.build "densenet121" ]

let test_peak_live_bytes () =
  (* On a pure chain, exactly producer+consumer are live at each conv:
     peak = largest adjacent pair. *)
  let g = Helpers.chain () in
  let peak = Schedule.peak_live_bytes dtype g (Schedule.default g) in
  let vb id = Dnn_graph.Analysis.value_bytes dtype g id in
  let expected = max (vb 0 + vb 1) (max (vb 1 + vb 2) (vb 2 + vb 3)) in
  Alcotest.(check int) "chain peak" expected peak

let test_memory_aware_helps_or_ties () =
  List.iter
    (fun (name, g) ->
      let base = Schedule.peak_live_bytes dtype g (Schedule.default g) in
      let tuned = Schedule.peak_live_bytes dtype g (Schedule.memory_aware dtype g) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d <= %d" name tuned base)
        true (tuned <= base))
    [ ("snippet", Helpers.inception_snippet ());
      ("googlenet", Models.Zoo.build "googlenet");
      ("densenet", Models.Zoo.build "densenet121") ]

let test_apply_renumbers () =
  let g = Helpers.inception_snippet () in
  let order = Schedule.memory_aware dtype g in
  let g' = Schedule.apply g order in
  Alcotest.(check int) "same node count" (G.node_count g) (G.node_count g');
  Alcotest.(check int) "same macs" (G.total_macs g) (G.total_macs g');
  (* Node at slot k of the new graph is the old order.(k). *)
  Array.iteri
    (fun slot old_id ->
      Alcotest.(check string) "name preserved"
        (G.node g old_id).G.node_name
        (G.node g' slot).G.node_name)
    order;
  Alcotest.check_raises "invalid apply"
    (Invalid_argument "Schedule.apply: invalid schedule") (fun () ->
      ignore (Schedule.apply g [| 0 |]))

let test_apply_preserves_lcmm_semantics () =
  (* UMM latency is schedule-invariant (it is a sum over nodes). *)
  let g = Helpers.inception_snippet () in
  let g' = Schedule.apply g (Schedule.memory_aware dtype g) in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
  let umm gg = Accel.Latency.umm_total (Accel.Latency.profile_graph cfg gg) in
  Alcotest.(check (float 1e-12)) "umm invariant" (umm g) (umm g')

let test_breadth_first () =
  List.iter
    (fun g ->
      let order = Schedule.breadth_first g in
      Alcotest.(check bool) "valid" true (Schedule.is_valid g order))
    [ Helpers.diamond (); Models.Zoo.build "googlenet" ]

let test_live_area () =
  let g = Helpers.chain () in
  (* On a chain every value is live exactly [def, next] => area is the sum
     of 2 slots per value except the sink (1 slot). *)
  let vb id = Dnn_graph.Analysis.value_bytes dtype g id in
  let expected = (2 * (vb 0 + vb 1 + vb 2)) + vb 3 in
  Alcotest.(check int) "chain area" expected
    (Schedule.live_area dtype g (Schedule.default g));
  (* Reordering googlenet with the memory-aware heuristic should not
     increase the area relative to level order. *)
  let gn = Models.Zoo.build "googlenet" in
  Alcotest.(check bool) "mem-aware area <= bfs area" true
    (Schedule.live_area dtype gn (Schedule.memory_aware dtype gn)
    <= Schedule.live_area dtype gn (Schedule.breadth_first gn))

let prop_memory_aware_valid =
  Helpers.qtest ~count:40 "memory-aware schedules of random graphs are valid"
    Helpers.random_graph_gen (fun g ->
      Schedule.is_valid g (Schedule.memory_aware dtype g))

let prop_apply_roundtrip =
  Helpers.qtest ~count:30 "apply preserves structure on random graphs"
    Helpers.random_graph_gen (fun g ->
      let order = Schedule.memory_aware dtype g in
      let g' = Schedule.apply g order in
      G.total_macs g = G.total_macs g'
      && Dnn_graph.Analysis.total_feature_bytes dtype g
         = Dnn_graph.Analysis.total_feature_bytes dtype g')

let prop_peak_positive =
  Helpers.qtest ~count:30 "peak live bytes positive and schedule-bounded"
    Helpers.random_graph_gen (fun g ->
      let peak = Schedule.peak_live_bytes dtype g (Schedule.default g) in
      let total = Dnn_graph.Analysis.total_feature_bytes dtype g in
      peak > 0 && peak <= total)

let suite =
  [ Alcotest.test_case "default valid" `Quick test_default_valid;
    Alcotest.test_case "invalid schedules" `Quick test_invalid_schedules;
    Alcotest.test_case "memory-aware valid" `Quick test_memory_aware_valid;
    Alcotest.test_case "peak live bytes" `Quick test_peak_live_bytes;
    Alcotest.test_case "memory-aware helps or ties" `Quick test_memory_aware_helps_or_ties;
    Alcotest.test_case "apply renumbers" `Quick test_apply_renumbers;
    Alcotest.test_case "apply preserves semantics" `Quick test_apply_preserves_lcmm_semantics;
    Alcotest.test_case "breadth first" `Quick test_breadth_first;
    Alcotest.test_case "live area" `Quick test_live_area;
    prop_memory_aware_valid;
    prop_apply_roundtrip;
    prop_peak_positive ]
