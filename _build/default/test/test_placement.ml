(* Physical block placement of chosen buffers. *)

module Placement = Lcmm.Placement
module Vbuffer = Lcmm.Vbuffer
module Metric = Lcmm.Metric

let vb id bytes =
  Vbuffer.singleton ~vbuf_id:id (Metric.Feature_value id) ~size_bytes:bytes

let test_basic_placement () =
  match
    Placement.place ~device:Fpga.Device.vu9p ~tile_bytes:(512 * 1024)
      [ vb 0 (64 * 1024); vb 1 (100 * 1024); vb 2 1 ]
  with
  | Error msg -> Alcotest.fail msg
  | Ok map ->
    Alcotest.(check int) "three assignments" 3 (List.length map.Placement.assignments);
    (* 64K = 2 URAM blocks, 100K = 4, 1B = 1: 7 total, largest first. *)
    Alcotest.(check int) "uram used" 7 map.Placement.uram_blocks_used;
    (* Tile buffers: 512K / 4K = 128 BRAM blocks. *)
    Alcotest.(check int) "bram used by tiles" 128 map.Placement.bram_blocks_used;
    (* No two regions overlap. *)
    let regions = List.map (fun a -> a.Placement.region) map.Placement.assignments in
    let rec pairs = function
      | [] -> ()
      | r :: rest ->
        List.iter
          (fun r' ->
            Alcotest.(check bool) "disjoint" false (Placement.overlaps r r'))
          rest;
        pairs rest
    in
    pairs regions

let test_uram_overflow_to_bram () =
  (* A device with 2 URAM blocks: the second large buffer lands in BRAM. *)
  let device =
    { Fpga.Device.vu9p with
      Fpga.Device.total = Fpga.Resource.make ~dsp:100 ~bram36:100 ~uram:2 ~luts:1000 () }
  in
  match
    Placement.place ~device ~tile_bytes:0
      [ vb 0 (2 * 32 * 1024); vb 1 (32 * 1024) ]
  with
  | Error msg -> Alcotest.fail msg
  | Ok map ->
    let banks =
      List.map (fun a -> a.Placement.region.Placement.bank) map.Placement.assignments
    in
    Alcotest.(check bool) "one in each bank" true
      (List.mem Placement.Uram banks && List.mem Placement.Bram banks);
    Alcotest.(check int) "bram blocks for 32K" (32 * 1024 / 4096)
      map.Placement.bram_blocks_used

let test_placement_failure () =
  let device =
    { Fpga.Device.vu9p with
      Fpga.Device.total = Fpga.Resource.make ~dsp:100 ~bram36:4 ~uram:1 ~luts:1000 () }
  in
  (match Placement.place ~device ~tile_bytes:0 [ vb 0 (10 * 1024 * 1024) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected overflow");
  match Placement.place ~device ~tile_bytes:(1024 * 1024) [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected tile overflow"

let test_place_real_plan () =
  let g = Models.Zoo.build "googlenet" in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm Tensor.Dtype.I16 in
  let plan = Lcmm.Framework.plan cfg g in
  let tile_bytes = Accel.Tiling.buffer_bytes Tensor.Dtype.I16 cfg.Accel.Config.tile in
  match
    Placement.place ~device:Fpga.Device.vu9p ~tile_bytes
      plan.Lcmm.Framework.allocation.Lcmm.Dnnk.chosen
  with
  | Error msg -> Alcotest.fail msg
  | Ok map ->
    Alcotest.(check int) "every chosen buffer placed"
      (List.length plan.Lcmm.Framework.allocation.Lcmm.Dnnk.chosen)
      (List.length map.Placement.assignments);
    Alcotest.(check bool) "within device" true
      (map.Placement.uram_blocks_used
       <= Fpga.Device.vu9p.Fpga.Device.total.Fpga.Resource.uram
      && map.Placement.bram_blocks_used
         <= Fpga.Device.vu9p.Fpga.Device.total.Fpga.Resource.bram36)

let prop_no_overlap =
  Helpers.qtest ~count:50 "placements never overlap"
    QCheck2.Gen.(list_size (int_range 1 20) (int_range 1 (512 * 1024)))
    (fun sizes ->
      let vbufs = List.mapi vb sizes in
      match Placement.place ~device:Fpga.Device.vu9p ~tile_bytes:65536 vbufs with
      | Error _ -> true  (* refusing is sound *)
      | Ok map ->
        let regions = List.map (fun a -> a.Placement.region) map.Placement.assignments in
        let rec check = function
          | [] -> true
          | r :: rest -> List.for_all (fun r' -> not (Placement.overlaps r r')) rest && check rest
        in
        check regions)

let suite =
  [ Alcotest.test_case "basic placement" `Quick test_basic_placement;
    Alcotest.test_case "uram overflow to bram" `Quick test_uram_overflow_to_bram;
    Alcotest.test_case "placement failure" `Quick test_placement_failure;
    Alcotest.test_case "place real plan" `Quick test_place_real_plan;
    prop_no_overlap ]
