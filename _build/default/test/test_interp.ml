(* The functional reference interpreter, and the tiled-execution
   equivalence that underpins the performance model's dataflow. *)

module B = Dnn_graph.Builder
module Op = Dnn_graph.Op
module Shape = Tensor.Shape

let single_conv ?(channels = 2) ?(hw = 5) ?(out_channels = 3) ?(kernel = (3, 3))
    ?(stride = (1, 1)) ?(padding = Op.Same) ?(groups = 1) () =
  let b = B.create () in
  let x = B.input b ~name:"in" ~channels ~height:hw ~width:hw () in
  let _ = B.conv b ~name:"c" ~kernel ~stride ~padding ~groups ~out_channels x in
  B.finish b

let run_last ?weights g input =
  let results = Interp.run ?weights g ~input in
  results.(Array.length results - 1)

let test_identity_conv () =
  (* A 1x1 convolution with identity weights reproduces its input. *)
  let g = single_conv ~channels:3 ~out_channels:3 ~kernel:(1, 1) () in
  let input = Interp.synthetic_input g ~seed:1 in
  let weights id =
    match Dnn_graph.Graph.weight_shape g id with
    | None -> None
    | Some shape ->
      Some
        (Interp.value_of_shape shape ~f:(fun i ->
             (* OIHW with I = 3, kh = kw = 1: identity = diagonal. *)
             if i / 3 = i mod 3 then 1. else 0.))
  in
  let out = run_last ~weights g input in
  Alcotest.(check (float 1e-9)) "identity" 0. (Interp.max_abs_diff input out)

let test_known_convolution () =
  (* 1 channel, 3x3 valid, all-ones kernel: each output is the 3x3 window
     sum. *)
  let g =
    single_conv ~channels:1 ~hw:4 ~out_channels:1 ~kernel:(3, 3)
      ~padding:Op.Valid ()
  in
  let input =
    Interp.value_of_shape (Shape.feature ~channels:1 ~height:4 ~width:4)
      ~f:float_of_int
  in
  let weights _ =
    Some
      (Interp.value_of_shape
         (Shape.filter ~out_channels:1 ~in_channels:1 ~kernel_h:3 ~kernel_w:3)
         ~f:(fun _ -> 1.))
  in
  let out = run_last ~weights g input in
  (* Windows of the 4x4 ramp 0..15: top-left window sums 0+1+2+4+5+6+8+9+10. *)
  Alcotest.(check (float 1e-9)) "top-left" 45. out.Interp.data.(0);
  Alcotest.(check (float 1e-9)) "top-right" 54. out.Interp.data.(1);
  Alcotest.(check (float 1e-9)) "bottom-right" 90. out.Interp.data.(3)

let test_eltwise_and_upsample () =
  let b = B.create () in
  let x = B.input b ~channels:1 ~height:2 ~width:2 () in
  let up = B.upsample b ~factor:2 x in
  let g = B.finish b in
  let input =
    Interp.value_of_shape (Shape.feature ~channels:1 ~height:2 ~width:2)
      ~f:float_of_int
  in
  let out = (Interp.run g ~input).(Dnn_graph.Builder.id up) in
  (* Nearest-neighbour: [0 0 1 1; 0 0 1 1; 2 2 3 3; 2 2 3 3]. *)
  Alcotest.(check (float 1e-9)) "corner" 0. out.Interp.data.(0);
  Alcotest.(check (float 1e-9)) "spread" 1. out.Interp.data.(2);
  Alcotest.(check (float 1e-9)) "row copy" 2. out.Interp.data.(8)

let test_pooling () =
  let b = B.create () in
  let x = B.input b ~channels:1 ~height:4 ~width:4 () in
  let mx = B.pool b ~kind:Op.Max ~kernel:(2, 2) ~stride:(2, 2) x in
  let av = B.pool b ~kind:Op.Avg ~kernel:(2, 2) ~stride:(2, 2) x in
  let _g = B.global_pool b ~kind:Op.Avg x in
  let g = B.finish b in
  let input =
    Interp.value_of_shape (Shape.feature ~channels:1 ~height:4 ~width:4)
      ~f:float_of_int
  in
  let results = Interp.run g ~input in
  let max_out = results.(Dnn_graph.Builder.id mx) in
  let avg_out = results.(Dnn_graph.Builder.id av) in
  let global = results.(Array.length results - 1) in
  Alcotest.(check (float 1e-9)) "max of window" 5. max_out.Interp.data.(0);
  Alcotest.(check (float 1e-9)) "avg of window" 2.5 avg_out.Interp.data.(0);
  Alcotest.(check (float 1e-9)) "global avg" 7.5 global.Interp.data.(0)

let test_concat_layout () =
  let b = B.create () in
  let x = B.input b ~channels:1 ~height:2 ~width:2 () in
  let a = B.conv b ~name:"a" ~kernel:(1, 1) ~out_channels:1 x in
  let c = B.conv b ~name:"c2" ~kernel:(1, 1) ~out_channels:1 x in
  let cat = B.concat b [ a; c ] in
  let g = B.finish b in
  let input =
    Interp.value_of_shape (Shape.feature ~channels:1 ~height:2 ~width:2)
      ~f:(fun i -> float_of_int (i + 1))
  in
  (* a scales by 2, c by 3: concat = [2x | 3x]. *)
  let weights id =
    let nd = Dnn_graph.Graph.node g id in
    match Dnn_graph.Graph.weight_shape g id with
    | None -> None
    | Some shape ->
      let k = if nd.Dnn_graph.Graph.node_name = "a" then 2. else 3. in
      Some (Interp.value_of_shape shape ~f:(fun _ -> k))
  in
  let out = (Interp.run ~weights g ~input).(Dnn_graph.Builder.id cat) in
  Alcotest.(check (float 1e-9)) "first channel" 2. out.Interp.data.(0);
  Alcotest.(check (float 1e-9)) "second channel" 3. out.Interp.data.(4)

let test_grouped_conv_independence () =
  (* With 2 groups, zeroing group 2's input leaves group 1's output
     untouched. *)
  let g = single_conv ~channels:4 ~out_channels:4 ~kernel:(3, 3) ~groups:2 () in
  let base = Interp.synthetic_input g ~seed:3 in
  let halved =
    { base with
      Interp.data =
        Array.mapi
          (fun i v -> if i >= Array.length base.Interp.data / 2 then 0. else v)
          base.Interp.data }
  in
  let out_base = run_last g base in
  let out_halved = run_last g halved in
  let _, oh, ow =
    match Shape.as_feature out_base.Interp.shape with
    | Some f -> (f.Shape.channels, f.Shape.height, f.Shape.width)
    | None -> Alcotest.fail "expected feature"
  in
  let first_group_equal = ref true in
  for i = 0 to (2 * oh * ow) - 1 do
    if abs_float (out_base.Interp.data.(i) -. out_halved.Interp.data.(i)) > 1e-9
    then first_group_equal := false
  done;
  Alcotest.(check bool) "group 1 unaffected" true !first_group_equal

let tiled_matches g tile =
  let input = Interp.synthetic_input g ~seed:5 in
  let direct = Interp.run g ~input in
  let tiled = Interp.run_tiled ~tile g ~input in
  Array.for_all2
    (fun a b -> Interp.max_abs_diff a b < 1e-6)
    direct tiled

let test_tiled_equivalence_fixtures () =
  List.iter
    (fun g ->
      List.iter
        (fun (tm, tn, th, tw) ->
          let tile = Accel.Tiling.make ~tm ~tn ~th ~tw in
          Alcotest.(check bool)
            (Printf.sprintf "tile %d/%d/%d/%d" tm tn th tw)
            true (tiled_matches g tile))
        [ (1, 1, 1, 1); (2, 3, 2, 2); (8, 8, 4, 4); (64, 64, 64, 64) ])
    [ Helpers.chain (); Helpers.diamond (); Helpers.inception_snippet () ]

let test_tiled_strided_and_padded () =
  List.iter
    (fun g ->
      let tile = Accel.Tiling.make ~tm:2 ~tn:2 ~th:2 ~tw:3 in
      Alcotest.(check bool) "strided/padded tiled equivalence" true
        (tiled_matches g tile))
    [ single_conv ~stride:(2, 2) ~padding:Op.Same ();
      single_conv ~stride:(2, 2) ~padding:Op.Valid ~hw:7 ();
      single_conv ~padding:(Op.Explicit 2) ~kernel:(5, 5) ();
      single_conv ~groups:2 ~channels:4 ~out_channels:4 () ]

let prop_tiled_equivalence =
  Helpers.qtest ~count:20 "tiled execution = direct execution"
    QCheck2.Gen.(
      pair Helpers.random_graph_gen
        (quad (int_range 1 8) (int_range 1 8) (int_range 1 6) (int_range 1 6)))
    (fun (g, (tm, tn, th, tw)) ->
      tiled_matches g (Accel.Tiling.make ~tm ~tn ~th ~tw))

let prop_deterministic =
  Helpers.qtest ~count:20 "interpretation is deterministic"
    Helpers.random_graph_gen (fun g ->
      let input = Interp.synthetic_input g ~seed:11 in
      let a = Interp.run g ~input and b = Interp.run g ~input in
      Array.for_all2 (fun x y -> Interp.max_abs_diff x y = 0.) a b)

let suite =
  [ Alcotest.test_case "identity conv" `Quick test_identity_conv;
    Alcotest.test_case "known convolution" `Quick test_known_convolution;
    Alcotest.test_case "eltwise and upsample" `Quick test_eltwise_and_upsample;
    Alcotest.test_case "pooling" `Quick test_pooling;
    Alcotest.test_case "concat layout" `Quick test_concat_layout;
    Alcotest.test_case "grouped conv independence" `Quick test_grouped_conv_independence;
    Alcotest.test_case "tiled equivalence fixtures" `Quick test_tiled_equivalence_fixtures;
    Alcotest.test_case "tiled strided/padded" `Quick test_tiled_strided_and_padded;
    prop_tiled_equivalence;
    prop_deterministic ]
