(* Shape-level regression guards on the paper reproduction itself: if a
   model or allocator change silently breaks the headline results (who
   wins, roughly by how much), these fail before EXPERIMENTS.md goes
   stale.  Bands are deliberately loose — they encode the *shape*, not
   the calibration. *)

module F = Lcmm.Framework

let suite_comparisons =
  lazy
    (List.concat_map
       (fun model ->
         List.map
           (fun dtype ->
             (model, dtype, F.compare_designs ~model dtype (Models.Zoo.build model)))
           Tensor.Dtype.all)
       [ "resnet152"; "googlenet"; "inception_v4" ])

let test_lcmm_wins_at_fixed_point () =
  List.iter
    (fun (model, dtype, c) ->
      match dtype with
      | Tensor.Dtype.I8 | Tensor.Dtype.I16 ->
        Alcotest.(check bool)
          (Printf.sprintf "%s %s speedup > 1.1" model (Tensor.Dtype.to_string dtype))
          true (c.F.speedup > 1.1)
      | Tensor.Dtype.F32 ->
        (* fp32 is the documented weak spot: must at least roughly tie. *)
        Alcotest.(check bool)
          (Printf.sprintf "%s f32 speedup > 0.9" model)
          true (c.F.speedup > 0.9))
    (Lazy.force suite_comparisons)

let test_average_speedup_band () =
  let speedups = List.map (fun (_, _, c) -> c.F.speedup) (Lazy.force suite_comparisons) in
  let avg = List.fold_left ( +. ) 0. speedups /. float_of_int (List.length speedups) in
  (* Paper: 1.36.  Guard a generous band around our calibrated 1.33. *)
  Alcotest.(check bool) (Printf.sprintf "average %.2f in [1.15, 1.6]" avg) true
    (avg > 1.15 && avg < 1.6)

let test_resnet_gains_most_at_fixed_point () =
  let speedup model dtype =
    let _, _, c =
      List.find (fun (m, d, _) -> m = model && d = dtype) (Lazy.force suite_comparisons)
    in
    c.F.speedup
  in
  List.iter
    (fun dtype ->
      Alcotest.(check bool) "rn >= gn" true
        (speedup "resnet152" dtype >= speedup "googlenet" dtype -. 0.05);
      Alcotest.(check bool) "rn >= in" true
        (speedup "resnet152" dtype >= speedup "inception_v4" dtype -. 0.05))
    [ Tensor.Dtype.I8; Tensor.Dtype.I16 ]

let test_memory_bound_fraction_band () =
  (* Paper: 58 % of Inception-v4 layers memory bound at 8-bit. *)
  let g = Models.Zoo.build "inception_v4" in
  let cfg = Accel.Config.make ~style:Accel.Config.Umm Tensor.Dtype.I8 in
  let _, _, frac = Accel.Roofline.summary (Accel.Roofline.points cfg g) in
  Alcotest.(check bool) (Printf.sprintf "fraction %.2f in [0.35, 0.75]" frac) true
    (frac > 0.35 && frac < 0.75)

let test_lcmm_uses_more_sram () =
  List.iter
    (fun (model, dtype, c) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s %s sram grows" model (Tensor.Dtype.to_string dtype))
        true
        (c.F.lcmm.F.sram_util > c.F.umm.F.sram_util))
    (Lazy.force suite_comparisons)

let test_design_space_shape () =
  (* Fig. 2(b): the full mask gives the best latency; the frontier spans
     a meaningful performance range. *)
  let g = Models.Zoo.build "inception_v4" in
  let dtype = Tensor.Dtype.I8 in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
  let metric = Lcmm.Metric.build g (Accel.Latency.profile_graph cfg g) in
  let blocks =
    List.map
      (fun b -> (b, Lcmm.Design_space.block_items metric ~block:b))
      Models.Inception_v4.block_names
  in
  let points =
    Lcmm.Design_space.sweep metric ~dtype
      ~total_macs:(Dnn_graph.Graph.total_macs g) ~blocks
  in
  Alcotest.(check int) "16384 points" 16384 (List.length points);
  let best = List.fold_left (fun a p -> max a p.Lcmm.Design_space.tops) 0. points in
  let worst =
    List.fold_left (fun a p -> min a p.Lcmm.Design_space.tops) infinity points
  in
  Alcotest.(check bool) "frontier spans > 30%" true (best /. worst > 1.3)

let suite =
  [ Alcotest.test_case "lcmm wins at fixed point" `Slow test_lcmm_wins_at_fixed_point;
    Alcotest.test_case "average speedup band" `Slow test_average_speedup_band;
    Alcotest.test_case "resnet gains most" `Slow test_resnet_gains_most_at_fixed_point;
    Alcotest.test_case "memory-bound fraction" `Slow test_memory_bound_fraction_band;
    Alcotest.test_case "lcmm uses more sram" `Slow test_lcmm_uses_more_sram;
    Alcotest.test_case "design space shape" `Slow test_design_space_shape ]
