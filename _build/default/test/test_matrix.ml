(* Cross-configuration matrix: framework invariants over (model x
   precision) and device variations, one test case per cell. *)

module F = Lcmm.Framework
module Metric = Lcmm.Metric

let models = [ "googlenet"; "resnet34"; "squeezenet"; "mobilenet_v2" ]

let check_cell model dtype () =
  let g = Models.Zoo.build model in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
  let plan = F.plan cfg g in
  let umm = Accel.Latency.umm_total plan.F.metric.Metric.profiles in
  Alcotest.(check bool) "plan <= UMM" true (plan.F.predicted_latency <= umm +. 1e-12);
  Alcotest.(check bool) "budget" true
    (plan.F.tensor_sram_bytes <= Accel.Config.sram_budget_bytes cfg);
  (* Traffic falls (or stays) under the plan. *)
  let on_chip = plan.F.allocation.Lcmm.Dnnk.on_chip in
  Alcotest.(check bool) "traffic monotone" true
    (Lcmm.Traffic.total_bytes (Lcmm.Traffic.of_allocation plan.F.metric ~on_chip)
    <= Lcmm.Traffic.total_bytes (Lcmm.Traffic.umm plan.F.metric));
  (* The simulator reproduces the analytic UMM total at this precision. *)
  let run = Sim.Engine.simulate_umm plan.F.metric in
  Alcotest.(check (float 1e-12)) "sim = analytic" umm run.Sim.Engine.total

let precision_cells =
  List.concat_map
    (fun model ->
      List.map
        (fun dtype ->
          Alcotest.test_case
            (Printf.sprintf "%s @ %s" model (Tensor.Dtype.to_string dtype))
            `Quick (check_cell model dtype))
        Tensor.Dtype.all)
    models

let test_peak_ordering () =
  (* INT8 packing makes the i8 array the fastest; fp32 the slowest. *)
  let peak dtype =
    Accel.Config.peak_ops (Accel.Config.make ~style:Accel.Config.Umm dtype)
  in
  Alcotest.(check bool) "i8 > i16" true (peak Tensor.Dtype.I8 > peak Tensor.Dtype.I16);
  Alcotest.(check bool) "i16 > f32" true (peak Tensor.Dtype.I16 > peak Tensor.Dtype.F32)

let test_embedded_device () =
  (* The whole pipeline holds on the URAM-less ZU9EG. *)
  let g = Models.Zoo.build "squeezenet" in
  let c =
    F.compare_designs ~device:Fpga.Device.zu9eg ~model:"squeezenet"
      Tensor.Dtype.I8 g
  in
  Alcotest.(check bool) "speedup >= ~1" true (c.F.speedup > 0.9);
  Alcotest.(check bool) "no uram on zu9eg" true (c.F.lcmm.F.uram_util = 0.);
  Alcotest.(check bool) "fits bram" true (c.F.lcmm.F.bram_util <= 1.0)

let test_memory_bound_fraction_orders_by_precision () =
  (* Doubling the byte width cannot reduce how memory-bound a network is
     (same compute rate for i8->i16 would; with packing i8 has twice the
     compute, so compare i16 vs f32 where the direction is unambiguous:
     f32 has less compute throughput AND more bytes, so the *count* can
     move either way; instead check the documented i8 >= i16 relation on
     transfers). *)
  let g = Models.Zoo.build "googlenet" in
  let profile dtype =
    let cfg = Accel.Config.make ~style:Accel.Config.Umm dtype in
    Accel.Latency.umm_total (Accel.Latency.profile_graph cfg g)
  in
  Alcotest.(check bool) "i16 slower than i8" true
    (profile Tensor.Dtype.I16 > profile Tensor.Dtype.I8);
  Alcotest.(check bool) "f32 slower than i16" true
    (profile Tensor.Dtype.F32 > profile Tensor.Dtype.I16)

let test_u250_scales_up () =
  (* The bigger part fits a bigger array and runs the same model faster. *)
  let g = Models.Zoo.build "googlenet" in
  let on dev = F.compare_designs ~device:dev ~model:"googlenet" Tensor.Dtype.I16 g in
  let vu9p = on Fpga.Device.vu9p and u250 = on Fpga.Device.u250 in
  Alcotest.(check bool) "faster on u250" true
    (u250.F.lcmm.F.latency_seconds < vu9p.F.lcmm.F.latency_seconds);
  Alcotest.(check bool) "still wins" true (u250.F.speedup > 1.0)

let suite =
  precision_cells
  @ [ Alcotest.test_case "peak ordering" `Quick test_peak_ordering;
      Alcotest.test_case "embedded device" `Quick test_embedded_device;
      Alcotest.test_case "latency ordering by precision" `Quick
        test_memory_bound_fraction_orders_by_precision;
      Alcotest.test_case "u250 scales up" `Quick test_u250_scales_up ]
