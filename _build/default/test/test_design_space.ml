(* The per-block design space of Fig. 2(b). *)

module DS = Lcmm.Design_space
module Metric = Lcmm.Metric

let dtype = Tensor.Dtype.I16

(* A small model with three tagged blocks so the sweep is 8 points. *)
let tagged_model () =
  let module B = Dnn_graph.Builder in
  let b = B.create () in
  let x = B.input b ~channels:64 ~height:16 ~width:16 () in
  let stage tag ch x =
    B.with_block b tag (fun () ->
        let c = B.conv b ~name:(tag ^ "/a") ~kernel:(3, 3) ~out_channels:ch x in
        B.conv b ~name:(tag ^ "/b") ~kernel:(1, 1) ~out_channels:ch c)
  in
  let s1 = stage "s1" 64 x in
  let s2 = stage "s2" 128 s1 in
  let _s3 = stage "s3" 128 s2 in
  B.finish b

let setup () =
  let g = tagged_model () in
  let _, m = Helpers.metric_of g in
  let blocks =
    List.map (fun b -> (b, DS.block_items m ~block:b)) (Dnn_graph.Graph.blocks g)
  in
  (g, m, blocks)

let test_sweep_size () =
  let g, m, blocks = setup () in
  let points = DS.sweep m ~dtype ~total_macs:(Dnn_graph.Graph.total_macs g) ~blocks in
  Alcotest.(check int) "2^3 points" 8 (List.length points)

let test_empty_mask_is_umm () =
  let g, m, blocks = setup () in
  let points = DS.sweep m ~dtype ~total_macs:(Dnn_graph.Graph.total_macs g) ~blocks in
  match List.find_opt (fun p -> p.DS.mask = 0) points with
  | None -> Alcotest.fail "mask 0 missing"
  | Some p ->
    Alcotest.(check int) "no memory" 0 p.DS.sram_bytes;
    Alcotest.(check (float 1e-12)) "UMM latency"
      (Accel.Latency.umm_total m.Metric.profiles)
      p.DS.latency

let test_full_mask_is_fastest () =
  let g, m, blocks = setup () in
  let points = DS.sweep m ~dtype ~total_macs:(Dnn_graph.Graph.total_macs g) ~blocks in
  let full = List.find (fun p -> p.DS.mask = 7) points in
  List.iter
    (fun p ->
      Alcotest.(check bool) "full mask dominates latency" true
        (full.DS.latency <= p.DS.latency +. 1e-12))
    points

let test_mask_monotone () =
  let g, m, blocks = setup () in
  let points = DS.sweep m ~dtype ~total_macs:(Dnn_graph.Graph.total_macs g) ~blocks in
  let arr = Array.make 8 None in
  List.iter (fun p -> arr.(p.DS.mask) <- Some p) points;
  let get i = match arr.(i) with Some p -> p | None -> Alcotest.fail "missing mask" in
  (* Supersets have lower-or-equal latency and higher-or-equal memory. *)
  for a = 0 to 7 do
    for b = 0 to 7 do
      if a land b = a then begin
        Alcotest.(check bool) "latency anti-monotone" true
          ((get b).DS.latency <= (get a).DS.latency +. 1e-12);
        Alcotest.(check bool) "memory monotone" true
          ((get b).DS.sram_bytes >= (get a).DS.sram_bytes)
      end
    done
  done

let test_pareto () =
  let g, m, blocks = setup () in
  let points = DS.sweep m ~dtype ~total_macs:(Dnn_graph.Graph.total_macs g) ~blocks in
  let frontier = DS.pareto points in
  Alcotest.(check bool) "non-empty" true (frontier <> []);
  (* No frontier point is dominated by any other point. *)
  List.iter
    (fun f ->
      List.iter
        (fun p ->
          Alcotest.(check bool) "undominated" false
            (p.DS.sram_bytes <= f.DS.sram_bytes && p.DS.latency < f.DS.latency -. 1e-12))
        points)
    frontier;
  (* Frontier latencies strictly decrease as memory grows. *)
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a.DS.latency > b.DS.latency && decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "strictly improving" true (decreasing frontier)

let test_block_items_disjoint () =
  let _, _, blocks = setup () in
  let all = List.concat_map snd blocks in
  Alcotest.(check int) "no duplicates across blocks"
    (List.length all)
    (Metric.Item_set.cardinal (Metric.Item_set.of_list all))

let test_too_many_blocks () =
  let _, m, _ = setup () in
  let fake = List.init 21 (fun i -> (Printf.sprintf "b%d" i, [])) in
  Alcotest.check_raises "bound" (Invalid_argument "Design_space.sweep: too many blocks")
    (fun () -> ignore (DS.sweep m ~dtype ~total_macs:1 ~blocks:fake))

let suite =
  [ Alcotest.test_case "sweep size" `Quick test_sweep_size;
    Alcotest.test_case "empty mask = UMM" `Quick test_empty_mask_is_umm;
    Alcotest.test_case "full mask fastest" `Quick test_full_mask_is_fastest;
    Alcotest.test_case "mask monotone" `Quick test_mask_monotone;
    Alcotest.test_case "pareto" `Quick test_pareto;
    Alcotest.test_case "block items disjoint" `Quick test_block_items_disjoint;
    Alcotest.test_case "too many blocks" `Quick test_too_many_blocks ]
