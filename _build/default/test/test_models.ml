(* Model zoo: published architecture statistics and structural checks. *)

module G = Dnn_graph.Graph
module Shape = Tensor.Shape

let conv_count g =
  List.length
    (List.filter (fun n -> Dnn_graph.Op.is_conv_like n.G.op) (G.nodes g))

let gmacs g = float_of_int (G.total_macs g) /. 1e9

let params g = G.weight_bytes Tensor.Dtype.I8 g

let close name ~tolerance expected actual =
  let err = abs_float (actual -. expected) /. expected in
  if err > tolerance then
    Alcotest.failf "%s: expected ~%.3g, got %.3g (err %.1f%%)" name expected actual
      (100. *. err)

let test_alexnet () =
  let g = Models.Alexnet.build () in
  Alcotest.(check int) "conv+fc layers" 8 (conv_count g);
  close "alexnet params" ~tolerance:0.05 61e6 (float_of_int (params g));
  close "alexnet gmacs" ~tolerance:0.05 0.72 (gmacs g)

let test_vgg16 () =
  let g = Models.Vgg.build () in
  Alcotest.(check int) "conv+fc layers" 16 (conv_count g);
  close "vgg16 params" ~tolerance:0.02 138e6 (float_of_int (params g));
  close "vgg16 gmacs" ~tolerance:0.02 15.47 (gmacs g)

let test_googlenet () =
  let g = Models.Googlenet.build () in
  Alcotest.(check int) "conv+fc layers" 58 (conv_count g);
  close "googlenet params" ~tolerance:0.1 7e6 (float_of_int (params g));
  close "googlenet gmacs" ~tolerance:0.05 1.58 (gmacs g);
  Alcotest.(check (list string)) "blocks tagged" Models.Googlenet.block_names (G.blocks g);
  (* Final feature is 1024-d. *)
  match G.find_by_name g "pool5/7x7_s1" with
  | Some nd ->
    Alcotest.(check bool) "1024 channels" true
      (Shape.equal (G.output_shape g nd.G.id)
         (Shape.feature ~channels:1024 ~height:1 ~width:1))
  | None -> Alcotest.fail "pool5 missing"

let test_resnet152 () =
  let g = Models.Resnet.build_152 () in
  (* 1 stem + 3*(3+8+36+3) bottleneck convs + projections + fc *)
  Alcotest.(check int) "conv+fc layers" (1 + (3 * 50) + 4 + 1) (conv_count g);
  close "rn152 params" ~tolerance:0.02 60.2e6 (float_of_int (params g));
  close "rn152 gmacs" ~tolerance:0.02 11.5 (gmacs g)

let test_resnet50 () =
  let g = Models.Resnet.build_50 () in
  close "rn50 params" ~tolerance:0.02 25.5e6 (float_of_int (params g));
  close "rn50 gmacs" ~tolerance:0.05 4.1 (gmacs g)

let test_resnet_plan_validation () =
  Alcotest.check_raises "depth 18 unsupported"
    (Invalid_argument "Resnet.build: unsupported depth 18") (fun () ->
      ignore (Models.Resnet.build ~depth:18));
  Alcotest.(check bool) "101 builds" true (G.node_count (Models.Resnet.build ~depth:101) > 0)

let test_inception_v4 () =
  let g = Models.Inception_v4.build () in
  close "inception-v4 params" ~tolerance:0.03 42.6e6 (float_of_int (params g));
  close "inception-v4 gmacs" ~tolerance:0.05 12.3 (gmacs g);
  Alcotest.(check int) "14 inception blocks" 14
    (List.length Models.Inception_v4.block_names);
  List.iter
    (fun b ->
      Alcotest.(check bool) (b ^ " non-empty") true (G.nodes_of_block g b <> []))
    Models.Inception_v4.block_names;
  (* The stem must deliver 384x35x35 to inception_a1. *)
  match G.find_by_name g "stem/cat3" with
  | Some nd ->
    Alcotest.(check bool) "stem output" true
      (Shape.equal (G.output_shape g nd.G.id)
         (Shape.feature ~channels:384 ~height:35 ~width:35))
  | None -> Alcotest.fail "stem/cat3 missing"

let test_inception_v4_block_shapes () =
  let g = Models.Inception_v4.build () in
  let check_out name c h =
    match G.find_by_name g name with
    | Some nd ->
      Alcotest.(check bool) name true
        (Shape.equal (G.output_shape g nd.G.id) (Shape.feature ~channels:c ~height:h ~width:h))
    | None -> Alcotest.failf "%s missing" name
  in
  check_out "inception_a1/output" 384 35;
  check_out "red_a/output" 1024 17;
  check_out "inception_b7/output" 1024 17;
  check_out "red_b/output" 1536 8;
  check_out "inception_c3/output" 1536 8

let test_mobilenet () =
  let g = Models.Mobilenet.build () in
  close "mobilenet-v2 params" ~tolerance:0.1 3.5e6 (float_of_int (params g));
  close "mobilenet-v2 gmacs" ~tolerance:0.1 0.3 (gmacs g);
  Alcotest.(check int) "17 bottlenecks" 17 (List.length Models.Mobilenet.block_names);
  (* Depthwise layers dominate the count of memory-bound layers. *)
  let cfg = Accel.Config.make ~style:Accel.Config.Umm Tensor.Dtype.I16 in
  let profiles = Accel.Latency.profile_graph cfg g in
  let mb, total = Accel.Latency.memory_bound_count profiles in
  Alcotest.(check bool) "mostly memory bound" true
    (float_of_int mb /. float_of_int total > 0.5)

let test_densenet () =
  let g = Models.Densenet.build () in
  close "densenet-121 params" ~tolerance:0.05 8.0e6 (float_of_int (params g));
  close "densenet-121 gmacs" ~tolerance:0.05 2.87 (gmacs g);
  (* The final dense block concatenates 512 + 16*32 = 1024 channels. *)
  match G.find_by_name g "dense4/output" with
  | Some nd ->
    Alcotest.(check bool) "1024x7x7" true
      (Shape.equal (G.output_shape g nd.G.id)
         (Shape.feature ~channels:1024 ~height:7 ~width:7))
  | None -> Alcotest.fail "dense4/output missing"

let test_densenet_lifespans () =
  (* In a dense block, an early layer's value stays live until the block
     output: its last use through the transparent concats is far away. *)
  let g = Models.Densenet.build () in
  match G.find_by_name g "dense1/l1_3x3" with
  | Some nd ->
    let last = Dnn_graph.Values.last_use g nd.G.id in
    Alcotest.(check bool) "long lifespan" true (last - nd.G.id > 10)
  | None -> Alcotest.fail "dense1/l1_3x3 missing"

let test_squeezenet () =
  let g = Models.Squeezenet.build () in
  close "squeezenet params" ~tolerance:0.05 1.23e6 (float_of_int (params g));
  Alcotest.(check int) "8 fire modules" 8 (List.length Models.Squeezenet.block_names);
  (* Tiny weights: everything fits in a fraction of the VU9P SRAM. *)
  Alcotest.(check bool) "weights fit on chip" true
    (G.weight_bytes Tensor.Dtype.I16 g < Fpga.Device.sram_bytes Fpga.Device.vu9p / 4)

let test_resnext50 () =
  let g = Models.Resnet.build_next_50 () in
  close "resnext50 params" ~tolerance:0.05 25.0e6 (float_of_int (params g));
  close "resnext50 gmacs" ~tolerance:0.05 4.26 (gmacs g)

let test_vgg19 () =
  let g = Models.Vgg.build_19 () in
  Alcotest.(check int) "conv+fc layers" 19 (conv_count g);
  close "vgg19 params" ~tolerance:0.02 143.7e6 (float_of_int (params g));
  close "vgg19 gmacs" ~tolerance:0.02 19.6 (gmacs g)

let test_resnet34 () =
  let g = Models.Resnet.build_34 () in
  close "resnet34 params" ~tolerance:0.05 21.5e6 (float_of_int (params g));
  close "resnet34 gmacs" ~tolerance:0.05 3.66 (gmacs g)

let test_inception_v3 () =
  let g = Models.Inception_v3.build () in
  close "inception-v3 params" ~tolerance:0.12 23e6 (float_of_int (params g));
  close "inception-v3 gmacs" ~tolerance:0.12 5.7 (gmacs g);
  Alcotest.(check int) "9 mixed blocks" 9 (List.length Models.Inception_v3.block_names);
  match G.find_by_name g "mixed_c2/output" with
  | Some nd ->
    Alcotest.(check bool) "2048x8x8" true
      (Shape.equal (G.output_shape g nd.G.id)
         (Shape.feature ~channels:2048 ~height:8 ~width:8))
  | None -> Alcotest.fail "mixed_c2/output missing"

let test_zoo_lookup () =
  Alcotest.(check bool) "alias rn" true (Models.Zoo.find "RN" <> None);
  Alcotest.(check bool) "alias in" true (Models.Zoo.find "IN" <> None);
  Alcotest.(check bool) "unknown" true (Models.Zoo.find "lenet" = None);
  Alcotest.check_raises "build unknown"
    (Invalid_argument
       "Zoo.build: unknown model \"lenet\" (known: resnet152, resnet50, googlenet, inception_v4, alexnet, vgg16, mobilenet_v2, densenet121, squeezenet, resnext50, vgg19, resnet34, inception_v3)")
    (fun () -> ignore (Models.Zoo.build "lenet"));
  Alcotest.(check int) "suite is the paper's three" 3
    (List.length Models.Zoo.benchmark_suite)

let test_all_models_validate () =
  List.iter
    (fun e ->
      let g = e.Models.Zoo.build () in
      (* Rebuilding from the node list must round-trip validation. *)
      match G.create (G.nodes g) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: %s" e.Models.Zoo.model_name msg)
    Models.Zoo.all

let test_single_sink () =
  (* Classification models end in exactly one sink: the logits. *)
  List.iter
    (fun e ->
      let g = e.Models.Zoo.build () in
      let sinks =
        List.filter (fun nd -> G.succs g nd.G.id = []) (G.nodes g)
      in
      Alcotest.(check int) (e.Models.Zoo.model_name ^ " sinks") 1 (List.length sinks))
    Models.Zoo.all

let suite =
  [ Alcotest.test_case "alexnet" `Quick test_alexnet;
    Alcotest.test_case "vgg16" `Quick test_vgg16;
    Alcotest.test_case "googlenet" `Quick test_googlenet;
    Alcotest.test_case "resnet152" `Quick test_resnet152;
    Alcotest.test_case "resnet50" `Quick test_resnet50;
    Alcotest.test_case "resnet plan validation" `Quick test_resnet_plan_validation;
    Alcotest.test_case "inception v4" `Quick test_inception_v4;
    Alcotest.test_case "inception v4 block shapes" `Quick test_inception_v4_block_shapes;
    Alcotest.test_case "mobilenet" `Quick test_mobilenet;
    Alcotest.test_case "densenet" `Quick test_densenet;
    Alcotest.test_case "densenet lifespans" `Quick test_densenet_lifespans;
    Alcotest.test_case "squeezenet" `Quick test_squeezenet;
    Alcotest.test_case "resnext50" `Quick test_resnext50;
    Alcotest.test_case "resnet34" `Quick test_resnet34;
    Alcotest.test_case "inception v3" `Quick test_inception_v3;
    Alcotest.test_case "vgg19" `Quick test_vgg19;
    Alcotest.test_case "zoo lookup" `Quick test_zoo_lookup;
    Alcotest.test_case "all models validate" `Quick test_all_models_validate;
    Alcotest.test_case "single sink" `Quick test_single_sink ]
