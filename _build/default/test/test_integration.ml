(* End-to-end integration: every zoo model through the full pipeline —
   profile, allocate, simulate, refine, serialize — with the system-level
   invariants checked per model. *)

module F = Lcmm.Framework
module Metric = Lcmm.Metric
module Engine = Sim.Engine

let dtype = Tensor.Dtype.I16

let check_model name =
  let g = Models.Zoo.build name in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
  let plan = F.plan cfg g in
  let metric = plan.F.metric in
  let umm_analytic = Accel.Latency.umm_total metric.Metric.profiles in

  (* 1. The plan never loses to its baseline and respects its budget. *)
  Alcotest.(check bool) "plan <= UMM" true
    (plan.F.predicted_latency <= umm_analytic +. 1e-12);
  Alcotest.(check bool) "budget respected" true
    (plan.F.tensor_sram_bytes <= Accel.Config.sram_budget_bytes cfg);
  Alcotest.(check bool) "pol in range" true (plan.F.pol >= 0. && plan.F.pol <= 1.);

  (* 2. Buffers partition the items: nothing pinned twice. *)
  let members =
    List.concat_map (fun vb -> vb.Lcmm.Vbuffer.members) plan.F.vbufs
  in
  Alcotest.(check int) "buffers partition items"
    (List.length members)
    (Metric.Item_set.cardinal (Metric.Item_set.of_list members));

  (* 3. Simulator agrees with the analytic model for UMM, and the LCMM
     run sits between the analytic allocation bound and UMM. *)
  let umm_run = Engine.simulate_umm metric in
  Alcotest.(check (float 1e-12)) "sim UMM = analytic" umm_analytic
    umm_run.Engine.total;
  let lcmm_run =
    Engine.simulate ?prefetch:plan.F.prefetch metric
      ~on_chip:plan.F.allocation.Lcmm.Dnnk.on_chip
  in
  let analytic_alloc =
    Metric.total_latency metric ~on_chip:plan.F.allocation.Lcmm.Dnnk.on_chip
  in
  Alcotest.(check bool) "sim LCMM >= analytic allocation" true
    (lcmm_run.Engine.total >= analytic_alloc -. 1e-12);

  (* 4. Refinement never regresses and the steady state reaches the
     analytic bound. *)
  let refined =
    Sim.Refine.run ?prefetch:plan.F.prefetch metric
      ~on_chip:plan.F.allocation.Lcmm.Dnnk.on_chip
  in
  Alcotest.(check bool) "refinement monotone" true
    (refined.Sim.Refine.refined_total <= lcmm_run.Engine.total +. 1e-15);
  let steady =
    Engine.simulate ~weights_resident:true metric
      ~on_chip:plan.F.allocation.Lcmm.Dnnk.on_chip
  in
  Alcotest.(check (float 1e-12)) "steady state = analytic" analytic_alloc
    steady.Engine.total;

  (* 5. The graph serializes and reloads to the same accounting. *)
  match Dnn_serial.Codec.of_string (Dnn_serial.Codec.to_string ~pretty:false g) with
  | Error msg -> Alcotest.fail msg
  | Ok g' ->
    Alcotest.(check int) "macs preserved" (Dnn_graph.Graph.total_macs g)
      (Dnn_graph.Graph.total_macs g');
    let profiles' =
      Accel.Latency.profile_graph cfg g'
    in
    Alcotest.(check (float 1e-12)) "UMM latency preserved" umm_analytic
      (Accel.Latency.umm_total profiles')

let suite =
  List.map
    (fun e ->
      let name = e.Models.Zoo.model_name in
      Alcotest.test_case name `Slow (fun () -> check_model name))
    Models.Zoo.all
