(* Simulation-guided refinement and steady-state simulation. *)

module Metric = Lcmm.Metric
module Engine = Sim.Engine
module Refine = Sim.Refine

let plan_for model dtype =
  let g = Models.Zoo.build model in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
  Lcmm.Framework.plan cfg g

let test_never_worse () =
  let p = plan_for "googlenet" Tensor.Dtype.I16 in
  let on_chip = p.Lcmm.Framework.allocation.Lcmm.Dnnk.on_chip in
  let o =
    Refine.run ?prefetch:p.Lcmm.Framework.prefetch p.Lcmm.Framework.metric
      ~on_chip
  in
  Alcotest.(check bool) "refined <= initial" true
    (o.Refine.refined_total <= o.Refine.initial_total +. 1e-15);
  Alcotest.(check (float 1e-15)) "run total is refined total"
    o.Refine.refined_total o.Refine.run.Engine.total

let test_unpins_only_weights () =
  let p = plan_for "googlenet" Tensor.Dtype.I16 in
  let on_chip = p.Lcmm.Framework.allocation.Lcmm.Dnnk.on_chip in
  let o =
    Refine.run ?prefetch:p.Lcmm.Framework.prefetch p.Lcmm.Framework.metric
      ~on_chip
  in
  List.iter
    (fun item ->
      match item with
      | Metric.Weight_of _ | Metric.Weight_slice _ ->
        Alcotest.(check bool) "was pinned" true (Metric.Item_set.mem item on_chip);
        Alcotest.(check bool) "no longer pinned" false
          (Metric.Item_set.mem item o.Refine.on_chip)
      | Metric.Feature_value _ -> Alcotest.fail "refinement unpinned a feature")
    o.Refine.unpinned;
  Alcotest.(check int) "set shrank by the unpin count"
    (Metric.Item_set.cardinal on_chip - List.length o.Refine.unpinned)
    (Metric.Item_set.cardinal o.Refine.on_chip)

let test_fixed_point_without_stalls () =
  (* With no pinned weights there is nothing to refine. *)
  let _, m = Helpers.metric_of (Helpers.chain ()) in
  let features_only =
    Metric.eligible_items m ~memory_bound_only:false
    |> List.filter (function
         | Metric.Feature_value _ -> true
         | Metric.Weight_of _ | Metric.Weight_slice _ -> false)
    |> Metric.Item_set.of_list
  in
  let o = Refine.run m ~on_chip:features_only in
  Alcotest.(check int) "nothing unpinned" 0 (List.length o.Refine.unpinned);
  Alcotest.(check (float 1e-15)) "totals equal" o.Refine.initial_total
    o.Refine.refined_total

let test_steady_state_no_waits () =
  let p = plan_for "googlenet" Tensor.Dtype.I16 in
  let m = p.Lcmm.Framework.metric in
  let on_chip = p.Lcmm.Framework.allocation.Lcmm.Dnnk.on_chip in
  let steady =
    Engine.simulate ~weights_resident:true ?prefetch:p.Lcmm.Framework.prefetch m
      ~on_chip
  in
  Alcotest.(check (float 0.)) "no prefetch waits" 0. steady.Engine.prefetch_wait;
  let first = Engine.simulate ?prefetch:p.Lcmm.Framework.prefetch m ~on_chip in
  Alcotest.(check bool) "steady <= first inference" true
    (steady.Engine.total <= first.Engine.total +. 1e-15);
  (* Steady state equals the analytical Eq. 1 total of the allocation. *)
  Alcotest.(check (float 1e-12)) "steady = analytic"
    (Metric.total_latency m ~on_chip)
    steady.Engine.total

let test_capacity_override () =
  let g = Models.Zoo.build "googlenet" in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm Tensor.Dtype.I16 in
  let base = Lcmm.Framework.default_options in
  let tight =
    Lcmm.Framework.plan
      ~options:{ base with Lcmm.Framework.capacity_override = Some (512 * 1024) }
      cfg g
  in
  Alcotest.(check bool) "budget respected" true
    (tight.Lcmm.Framework.tensor_sram_bytes <= 512 * 1024);
  let full = Lcmm.Framework.plan cfg g in
  Alcotest.(check bool) "tight budget is no faster" true
    (full.Lcmm.Framework.predicted_latency
    <= tight.Lcmm.Framework.predicted_latency +. 1e-12)

let test_batch_throughput () =
  let p = plan_for "googlenet" Tensor.Dtype.I16 in
  let m = p.Lcmm.Framework.metric in
  let on_chip = p.Lcmm.Framework.allocation.Lcmm.Dnnk.on_chip in
  let b =
    Engine.simulate_batch ?prefetch:p.Lcmm.Framework.prefetch ~images:16 m ~on_chip
  in
  Alcotest.(check bool) "steady <= first" true
    (b.Engine.steady_image <= b.Engine.first_image +. 1e-15);
  Alcotest.(check (float 1e-9)) "total adds up"
    (b.Engine.first_image +. (15. *. b.Engine.steady_image))
    b.Engine.batch_total;
  Alcotest.(check bool) "throughput consistent" true
    (abs_float ((16. /. b.Engine.batch_total) -. b.Engine.images_per_second) < 1e-9);
  Alcotest.check_raises "zero images"
    (Invalid_argument "Engine.simulate_batch: images < 1") (fun () ->
      ignore (Engine.simulate_batch ~images:0 m ~on_chip))

let prop_refine_monotone =
  Helpers.qtest ~count:15 "refinement never regresses on random graphs"
    Helpers.random_graph_gen (fun g ->
      let _, m = Helpers.metric_of g in
      let all =
        Metric.Item_set.of_list (Metric.eligible_items m ~memory_bound_only:false)
      in
      let o = Refine.run m ~on_chip:all in
      o.Refine.refined_total <= o.Refine.initial_total +. 1e-15)

let suite =
  [ Alcotest.test_case "never worse" `Quick test_never_worse;
    Alcotest.test_case "unpins only weights" `Quick test_unpins_only_weights;
    Alcotest.test_case "fixed point without stalls" `Quick test_fixed_point_without_stalls;
    Alcotest.test_case "steady state" `Quick test_steady_state_no_waits;
    Alcotest.test_case "capacity override" `Quick test_capacity_override;
    Alcotest.test_case "batch throughput" `Quick test_batch_throughput;
    prop_refine_monotone ]
