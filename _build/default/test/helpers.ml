(* Shared fixtures and QCheck generators for the test suite. *)

module B = Dnn_graph.Builder
module Op = Dnn_graph.Op
module G = Dnn_graph.Graph

let default_config ?(style = Accel.Config.Lcmm) ?(dtype = Tensor.Dtype.I16) () =
  Accel.Config.make ~style dtype

(* A linear 3-conv chain. *)
let chain () =
  let b = B.create () in
  let x = B.input b ~name:"in" ~channels:16 ~height:32 ~width:32 () in
  let c1 = B.conv b ~name:"c1" ~kernel:(3, 3) ~out_channels:32 x in
  let c2 = B.conv b ~name:"c2" ~kernel:(3, 3) ~out_channels:32 c1 in
  let _c3 = B.conv b ~name:"c3" ~kernel:(1, 1) ~out_channels:64 c2 in
  B.finish b

(* A residual diamond: input -> (proj | body) -> add -> conv. *)
let diamond () =
  let b = B.create () in
  let x = B.input b ~name:"in" ~channels:32 ~height:16 ~width:16 () in
  let proj = B.conv b ~name:"proj" ~kernel:(1, 1) ~out_channels:64 x in
  let body1 = B.conv b ~name:"body1" ~kernel:(3, 3) ~out_channels:64 x in
  let body2 = B.conv b ~name:"body2" ~kernel:(3, 3) ~out_channels:64 body1 in
  let sum = B.add b ~name:"sum" [ proj; body2 ] in
  let _out = B.conv b ~name:"out" ~kernel:(1, 1) ~out_channels:32 sum in
  B.finish b

(* The paper's Fig. 3 snippet: six convolutions with a concat. *)
let inception_snippet () =
  let b = B.create () in
  let x = B.input b ~name:"in" ~channels:256 ~height:8 ~width:8 () in
  let c1 = B.conv b ~name:"C1" ~kernel:(1, 1) ~out_channels:64 x in
  let c2 = B.conv b ~name:"C2" ~kernel:(1, 1) ~out_channels:96 x in
  let c3 = B.conv b ~name:"C3" ~kernel:(3, 3) ~out_channels:128 c2 in
  let c4 = B.conv b ~name:"C4" ~kernel:(1, 1) ~out_channels:96 x in
  let c5 = B.conv b ~name:"C5" ~kernel:(3, 3) ~out_channels:128 c4 in
  let cat = B.concat b ~name:"cat" [ c1; c3; c5 ] in
  let _c6 = B.conv b ~name:"C6" ~kernel:(1, 1) ~out_channels:256 cat in
  B.finish b

let metric_of ?style ?dtype g =
  let cfg = default_config ?style ?dtype () in
  (cfg, Lcmm.Metric.build g (Accel.Latency.profile_graph cfg g))

(* Random layered DAG generator: channels kept small so sizes stay sane.
   Returns a valid graph with n conv/pool/add nodes after the input. *)
let random_graph_gen =
  let open QCheck2.Gen in
  let* n = int_range 3 14 in
  let* seeds = list_repeat n (pair (int_range 0 2) (int_range 1 4)) in
  return
    (let b = B.create () in
     let x = B.input b ~channels:8 ~height:16 ~width:16 () in
     let values = ref [ x ] in
     List.iteri
       (fun i (kind, chan_mult) ->
         let pick k = List.nth !values (k mod List.length !values) in
         let v =
           match kind with
           | 0 ->
             B.conv b
               ~name:(Printf.sprintf "conv%d" i)
               ~kernel:(3, 3) ~out_channels:(8 * chan_mult) (pick i)
           | 1 ->
             B.conv b
               ~name:(Printf.sprintf "pw%d" i)
               ~kernel:(1, 1) ~out_channels:(8 * chan_mult) (pick (i * 7))
           | _ ->
             (* Eltwise add needs same shapes: add a value to itself via two
                1x1 convs of equal width. *)
             let src = pick (i * 3) in
             let a =
               B.conv b ~name:(Printf.sprintf "a%d" i) ~kernel:(1, 1)
                 ~out_channels:16 src
             in
             let c =
               B.conv b ~name:(Printf.sprintf "b%d" i) ~kernel:(1, 1)
                 ~out_channels:16 src
             in
             B.add b ~name:(Printf.sprintf "add%d" i) [ a; c ]
         in
         values := v :: !values)
       seeds;
     B.finish b)

(* An abstract DNNK problem: intervals and sizes without a real graph. *)
let interval_gen =
  let open QCheck2.Gen in
  let* a = int_range 0 30 in
  let* len = int_range 0 8 in
  return (Lcmm.Liveness.make ~start_pos:a ~end_pos:(a + len))

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
