(* Alternative allocation policies and their orderings. *)

module Metric = Lcmm.Metric
module Policies = Lcmm.Policies
module Dnnk = Lcmm.Dnnk
module Vbuffer = Lcmm.Vbuffer

let dtype = Tensor.Dtype.I16

let setup g =
  let _, m = Helpers.metric_of g in
  let vbufs =
    Metric.eligible_items m ~memory_bound_only:false
    |> List.mapi (fun i item ->
           Vbuffer.singleton ~vbuf_id:i item
             ~size_bytes:(Metric.item_size_bytes dtype m item))
  in
  (m, vbufs)

let run m vbufs cap p = Policies.run m ~dtype ~capacity_bytes:cap vbufs p

let test_umm_policy () =
  let m, vbufs = setup (Helpers.inception_snippet ()) in
  let o = run m vbufs (1024 * 1024) Policies.Umm_policy in
  Alcotest.(check int) "nothing pinned" 0 (Metric.Item_set.cardinal o.Policies.on_chip);
  Alcotest.(check (float 1e-12)) "UMM latency"
    (Accel.Latency.umm_total m.Metric.profiles)
    o.Policies.latency;
  Alcotest.(check bool) "feasible" true o.Policies.feasible

let test_ordering () =
  (* exact <= dnnk variants; every policy <= umm. *)
  let m, vbufs = setup (Helpers.inception_snippet ()) in
  let cap = 1024 * 1024 in
  let umm = run m vbufs cap Policies.Umm_policy in
  let greedy = run m vbufs cap Policies.Greedy in
  let exact = run m vbufs cap Policies.Exact_small in
  let dnnk = run m vbufs cap (Policies.Dnnk_policy Dnnk.Table_approx) in
  let dnnk_exact = run m vbufs cap (Policies.Dnnk_policy Dnnk.Exact_iterative) in
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (o.Policies.policy_name ^ " <= umm")
        true
        (o.Policies.latency <= umm.Policies.latency +. 1e-12);
      Alcotest.(check bool) (o.Policies.policy_name ^ " feasible") true o.Policies.feasible;
      Alcotest.(check bool)
        (o.Policies.policy_name ^ " >= exact")
        true
        (o.Policies.latency >= exact.Policies.latency -. 1e-12))
    [ greedy; dnnk; dnnk_exact ]

let test_all_features_lower_bounds_feature_policies () =
  (* Pinning every feature map is the latency lower bound for any
     feature-only policy, though usually infeasible. *)
  let m, vbufs = setup (Helpers.inception_snippet ()) in
  let cap = 256 * 1024 in
  let all = run m vbufs cap Policies.All_features in
  let feature_vbufs =
    List.filter
      (fun vb ->
        List.for_all
          (function
             | Metric.Feature_value _ -> true
             | Metric.Weight_of _ | Metric.Weight_slice _ -> false)
          vb.Vbuffer.members)
      vbufs
  in
  let constrained =
    Policies.run m ~dtype ~capacity_bytes:cap feature_vbufs
      (Policies.Dnnk_policy Dnnk.Table_approx)
  in
  Alcotest.(check bool) "lower bound" true
    (all.Policies.latency <= constrained.Policies.latency +. 1e-12)

let test_stream_tile_cost_model () =
  let m, vbufs = setup (Helpers.inception_snippet ()) in
  let o = run m vbufs (1024 * 1024) Policies.Stream_tile in
  (* Cost is just a double buffer of the two largest values. *)
  Alcotest.(check bool) "small footprint" true (o.Policies.used_bytes < 512 * 1024);
  Alcotest.(check bool) "beats umm" true
    (o.Policies.latency
    < (run m vbufs (1024 * 1024) Policies.Umm_policy).Policies.latency)

let test_exact_small_guard () =
  let m, _ = setup (Helpers.inception_snippet ()) in
  let many =
    List.init 21 (fun i ->
        Vbuffer.singleton ~vbuf_id:i (Metric.Feature_value 1) ~size_bytes:1024)
  in
  Alcotest.check_raises "enumeration bound"
    (Invalid_argument "Policies: exact enumeration limited to 20 buffers, got 21")
    (fun () -> ignore (run m many 1024 Policies.Exact_small))

let prop_greedy_feasible =
  Helpers.qtest ~count:25 "greedy stays within capacity"
    (QCheck2.Gen.pair Helpers.random_graph_gen (QCheck2.Gen.int_range 0 32))
    (fun (g, cap_blocks) ->
      let m, vbufs = setup g in
      let cap = cap_blocks * Dnnk.block_bytes in
      let o = run m vbufs cap Policies.Greedy in
      o.Policies.feasible && o.Policies.used_bytes <= max cap 0)

let prop_exact_dominates =
  Helpers.qtest ~count:12 "enumeration dominates greedy and dnnk"
    Helpers.random_graph_gen (fun g ->
      let m, vbufs = setup g in
      if List.length vbufs > 16 then true
      else begin
        let cap = 512 * 1024 in
        let exact = run m vbufs cap Policies.Exact_small in
        List.for_all
          (fun p ->
            (run m vbufs cap p).Policies.latency >= exact.Policies.latency -. 1e-12)
          [ Policies.Greedy; Policies.Dnnk_policy Dnnk.Table_approx;
            Policies.Dnnk_policy Dnnk.Exact_iterative ]
      end)

let suite =
  [ Alcotest.test_case "umm policy" `Quick test_umm_policy;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "all-features lower bound" `Quick
      test_all_features_lower_bounds_feature_policies;
    Alcotest.test_case "stream-tile cost" `Quick test_stream_tile_cost_model;
    Alcotest.test_case "exact guard" `Quick test_exact_small_guard;
    prop_greedy_feasible;
    prop_exact_dominates ]
