(* DDR traffic and energy accounting. *)

module Metric = Lcmm.Metric
module Traffic = Lcmm.Traffic

let dtype = Tensor.Dtype.I16

let fixture () = Helpers.metric_of (Helpers.inception_snippet ())

let test_umm_traffic_positive () =
  let _, m = fixture () in
  let t = Traffic.umm m in
  Alcotest.(check bool) "if positive" true (t.Traffic.if_bytes > 0);
  Alcotest.(check bool) "wt positive" true (t.Traffic.wt_bytes > 0);
  Alcotest.(check bool) "of positive" true (t.Traffic.of_bytes > 0);
  Alcotest.(check int) "total is the sum"
    (t.Traffic.if_bytes + t.Traffic.wt_bytes + t.Traffic.of_bytes)
    (Traffic.total_bytes t)

let test_pinning_reduces_traffic () =
  let _, m = fixture () in
  let umm = Traffic.umm m in
  (* Pin C2's output value: C3 stops reading it and C2 stops writing it. *)
  let on_chip = Metric.Item_set.singleton (Metric.Feature_value 2) in
  let t = Traffic.of_allocation m ~on_chip in
  Alcotest.(check bool) "if drops" true (t.Traffic.if_bytes < umm.Traffic.if_bytes);
  Alcotest.(check bool) "of drops" true (t.Traffic.of_bytes < umm.Traffic.of_bytes);
  Alcotest.(check int) "wt unchanged" umm.Traffic.wt_bytes t.Traffic.wt_bytes

let test_weight_pinning_loads_once () =
  let _, m = fixture () in
  let p = m.Metric.profiles.(3) in
  let umm = Traffic.umm m in
  let t =
    Traffic.of_allocation m ~on_chip:(Metric.Item_set.singleton (Metric.Weight_of 3))
  in
  (* Streamed bytes (with reloads) are replaced by one whole-tensor load. *)
  Alcotest.(check int) "delta = streamed - once"
    (umm.Traffic.wt_bytes - p.Accel.Latency.wt_stream_bytes
    + p.Accel.Latency.wt_once_bytes)
    t.Traffic.wt_bytes;
  Alcotest.(check bool) "never grows" true (t.Traffic.wt_bytes <= umm.Traffic.wt_bytes)

let test_sliced_weight_traffic () =
  let g = Helpers.inception_snippet () in
  let cfg = Helpers.default_config () in
  let m =
    Metric.build ~weight_slices:(fun _ -> 2) g (Accel.Latency.profile_graph cfg g)
  in
  let full = Traffic.umm m in
  let half =
    Traffic.of_allocation m
      ~on_chip:
        (Metric.Item_set.singleton
           (Metric.Weight_slice { node = 3; index = 0; of_k = 2 }))
  in
  (* C3's 8x8 map fits one spatial tile, so streaming already moves the
     tensor exactly once: pinning half trades stream bytes for load bytes
     one-for-one.  The accounting must reflect that (no change), and the
     pinned share must never increase traffic. *)
  Alcotest.(check bool) "never increases" true
    (half.Traffic.wt_bytes <= full.Traffic.wt_bytes);
  let p3 = m.Metric.profiles.(3) in
  if p3.Accel.Latency.wt_stream_bytes = p3.Accel.Latency.wt_once_bytes then
    Alcotest.(check int) "reload-free tensors trade one-for-one"
      full.Traffic.wt_bytes half.Traffic.wt_bytes

let test_energy_ordering () =
  let _, m = fixture () in
  let all =
    Metric.Item_set.of_list (Metric.eligible_items m ~memory_bound_only:false)
  in
  let e_umm = Traffic.energy_of_allocation m ~dtype ~on_chip:Metric.Item_set.empty in
  let e_lcmm = Traffic.energy_of_allocation m ~dtype ~on_chip:all in
  Alcotest.(check bool) "pinning saves energy" true
    (Traffic.total_joules e_lcmm < Traffic.total_joules e_umm);
  Alcotest.(check (float 1e-15)) "same compute energy" e_umm.Traffic.compute_joules
    e_lcmm.Traffic.compute_joules;
  Alcotest.(check bool) "ddr dominates sram trade" true
    (e_umm.Traffic.ddr_joules -. e_lcmm.Traffic.ddr_joules
    > e_lcmm.Traffic.sram_joules -. e_umm.Traffic.sram_joules)

let test_energy_model_scaling () =
  let m8 = Traffic.default_energy_model Tensor.Dtype.I8 in
  let m32 = Traffic.default_energy_model Tensor.Dtype.F32 in
  Alcotest.(check bool) "f32 macs cost more" true (m32.Traffic.mac_pj > m8.Traffic.mac_pj);
  Alcotest.(check bool) "ddr >> sram" true
    (m8.Traffic.ddr_pj_per_byte > 50. *. m8.Traffic.sram_pj_per_byte)

let prop_traffic_monotone =
  Helpers.qtest ~count:25 "traffic monotone in allocation"
    Helpers.random_graph_gen (fun g ->
      let _, m = Helpers.metric_of g in
      let all =
        Metric.Item_set.of_list (Metric.eligible_items m ~memory_bound_only:false)
      in
      Traffic.total_bytes (Traffic.of_allocation m ~on_chip:all)
      <= Traffic.total_bytes (Traffic.umm m))

let suite =
  [ Alcotest.test_case "umm traffic" `Quick test_umm_traffic_positive;
    Alcotest.test_case "pinning reduces traffic" `Quick test_pinning_reduces_traffic;
    Alcotest.test_case "weight pinning loads once" `Quick test_weight_pinning_loads_once;
    Alcotest.test_case "sliced weight traffic" `Quick test_sliced_weight_traffic;
    Alcotest.test_case "energy ordering" `Quick test_energy_ordering;
    Alcotest.test_case "energy model scaling" `Quick test_energy_model_scaling;
    prop_traffic_monotone ]
