(* Resource vectors and device descriptors. *)

module R = Fpga.Resource
module D = Fpga.Device

let test_arithmetic () =
  let a = R.make ~dsp:10 ~bram36:5 ~uram:2 ~luts:100 () in
  let b = R.make ~dsp:3 ~bram36:1 () in
  let s = R.add a b in
  Alcotest.(check int) "dsp" 13 s.R.dsp;
  Alcotest.(check int) "bram" 6 s.R.bram36;
  let d = R.sub s b in
  Alcotest.(check bool) "sub inverse" true (d = a);
  let t = R.scale 3 b in
  Alcotest.(check int) "scale" 9 t.R.dsp;
  Alcotest.check_raises "negative" (Invalid_argument "Resource.make: negative component")
    (fun () -> ignore (R.make ~dsp:(-1) ()))

let test_fits () =
  let small = R.make ~dsp:10 ~bram36:10 () in
  let big = R.make ~dsp:100 ~bram36:100 ~uram:10 ~luts:1000 () in
  Alcotest.(check bool) "fits" true (R.fits small ~within:big);
  Alcotest.(check bool) "does not fit" false (R.fits big ~within:small);
  Alcotest.(check bool) "zero fits anything" true (R.fits R.zero ~within:R.zero)

let test_utilization () =
  let total = R.make ~dsp:100 ~bram36:50 ~uram:10 ~luts:1000 () in
  let used = R.make ~dsp:50 ~bram36:25 ~uram:5 ~luts:100 () in
  List.iter
    (fun (name, r) ->
      match name with
      | "dsp" | "bram" | "uram" -> Alcotest.(check (float 1e-9)) name 0.5 r
      | "luts" -> Alcotest.(check (float 1e-9)) name 0.1 r
      | other -> Alcotest.failf "unexpected component %s" other)
    (R.utilization used ~total);
  (* zero totals report zero, not a crash *)
  List.iter
    (fun (_, r) -> Alcotest.(check (float 1e-9)) "zero total" 0. r)
    (R.utilization used ~total:R.zero)

let test_sram_bytes () =
  Alcotest.(check int) "one of each" (R.bram36_bytes + R.uram_bytes)
    (R.sram_bytes (R.make ~bram36:1 ~uram:1 ()));
  (* VU9P lands near the paper's 40 MB device limit. *)
  let mb = float_of_int (D.sram_bytes D.vu9p) /. 1e6 in
  Alcotest.(check bool) "vu9p ~40MB" true (mb > 35. && mb < 45.)

let test_devices () =
  Alcotest.(check bool) "find vu9p" true (D.find "VU9P" <> None);
  Alcotest.(check bool) "find unknown" true (D.find "stratix" = None);
  Alcotest.(check int) "vu9p dsp" 6840 D.vu9p.D.total.R.dsp;
  (* Paper: 19.2 GB/s x 4 banks, one third per interface = 25.6 GB/s. *)
  Alcotest.(check (float 1e6)) "aggregate" 76.8e9 (D.aggregate_bandwidth D.vu9p);
  Alcotest.(check (float 1e6)) "per interface" 25.6e9 (D.interface_bandwidth D.vu9p);
  Alcotest.(check bool) "zu9eg smaller" true
    (D.sram_bytes D.zu9eg < D.sram_bytes D.vu9p);
  Alcotest.(check bool) "u250 bigger" true
    (D.sram_bytes D.u250 > D.sram_bytes D.vu9p
    && D.u250.D.total.R.dsp > D.vu9p.D.total.R.dsp)

let prop_add_commutative =
  let gen =
    QCheck2.Gen.(
      pair
        (quad (int_range 0 100) (int_range 0 100) (int_range 0 100) (int_range 0 100))
        (quad (int_range 0 100) (int_range 0 100) (int_range 0 100) (int_range 0 100)))
  in
  Helpers.qtest "resource add commutes" gen
    (fun ((a1, a2, a3, a4), (b1, b2, b3, b4)) ->
      let a = R.make ~dsp:a1 ~bram36:a2 ~uram:a3 ~luts:a4 () in
      let b = R.make ~dsp:b1 ~bram36:b2 ~uram:b3 ~luts:b4 () in
      R.add a b = R.add b a && R.sub (R.add a b) b = a)

let suite =
  [ Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "fits" `Quick test_fits;
    Alcotest.test_case "utilization" `Quick test_utilization;
    Alcotest.test_case "sram bytes" `Quick test_sram_bytes;
    Alcotest.test_case "devices" `Quick test_devices;
    prop_add_commutative ]
