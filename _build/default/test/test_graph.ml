(* Graph construction, validation, builder and value resolution. *)

module B = Dnn_graph.Builder
module G = Dnn_graph.Graph
module Op = Dnn_graph.Op
module Values = Dnn_graph.Values
module Shape = Tensor.Shape

let node ?(block = None) id name op preds =
  { G.id; node_name = name; op; preds; block }

let input_op = Op.Input { channels = 8; height = 16; width = 16 }

let conv_op = Op.conv_defaults ~out_channels:8 ~kernel:(3, 3) ()

let test_create_valid () =
  match G.create [ node 0 "in" input_op []; node 1 "c" conv_op [ 0 ] ] with
  | Ok g ->
    Alcotest.(check int) "count" 2 (G.node_count g);
    Alcotest.(check (list int)) "succs" [ 1 ] (G.succs g 0);
    Alcotest.(check (list int)) "sink" [] (G.succs g 1)
  | Error msg -> Alcotest.fail msg

let expect_create_error nodes =
  match G.create nodes with
  | Ok _ -> Alcotest.fail "expected validation error"
  | Error _ -> ()

let test_create_errors () =
  expect_create_error [ node 1 "in" input_op [] ];
  expect_create_error [ node 0 "in" input_op []; node 1 "c" conv_op [ 1 ] ];
  expect_create_error [ node 0 "in" input_op []; node 1 "c" conv_op [] ];
  expect_create_error [ node 0 "in" input_op [ 0 ] ];
  expect_create_error
    [ node 0 "in" input_op []; node 1 "bad" (Op.Dense { out_features = 0 }) [ 0 ] ]

let test_shapes_and_weights () =
  let g = Helpers.chain () in
  Alcotest.(check bool) "conv has weights" true (G.weight_shape g 1 <> None);
  Alcotest.(check bool) "input has none" true (G.weight_shape g 0 = None);
  Alcotest.(check bool) "macs positive" true (G.macs g 1 > 0);
  Alcotest.(check int) "total macs is sum"
    (G.macs g 1 + G.macs g 2 + G.macs g 3)
    (G.total_macs g)

let test_out_of_range () =
  let g = Helpers.chain () in
  Alcotest.check_raises "node" (Invalid_argument "Graph.node: id 99 out of range")
    (fun () -> ignore (G.node g 99))

let test_builder_names_and_blocks () =
  let b = B.create () in
  let x = B.input b ~name:"img" ~channels:4 ~height:8 ~width:8 () in
  let _c =
    B.with_block b "stage1" (fun () ->
        B.conv b ~name:"c1" ~kernel:(1, 1) ~out_channels:8 x)
  in
  let _d = B.conv b ~name:"c2" ~kernel:(1, 1) ~out_channels:8 x in
  let g = B.finish b in
  Alcotest.(check (list string)) "blocks" [ "stage1" ] (G.blocks g);
  Alcotest.(check (list int)) "block nodes" [ 1 ] (G.nodes_of_block g "stage1");
  (match G.find_by_name g "c2" with
  | Some nd -> Alcotest.(check int) "found" 2 nd.G.id
  | None -> Alcotest.fail "c2 not found");
  Alcotest.(check bool) "missing" true (G.find_by_name g "zzz" = None)

let test_builder_shape_error_eager () =
  let b = B.create () in
  let x = B.input b ~channels:4 ~height:8 ~width:8 () in
  let y = B.pool b ~kernel:(2, 2) ~stride:(2, 2) x in
  Alcotest.(check bool) "raises at add time" true
    (try
       ignore (B.add b [ x; y ]);
       false
     with Invalid_argument _ -> true)

let test_weight_bytes () =
  let g = Helpers.chain () in
  (* c1: 32x16x3x3, c2: 32x32x3x3, c3: 64x32x1x1 *)
  let expect = (32 * 16 * 9) + (32 * 32 * 9) + (64 * 32) in
  Alcotest.(check int) "weights i8" expect (G.weight_bytes Tensor.Dtype.I8 g);
  Alcotest.(check int) "weights i16" (2 * expect) (G.weight_bytes Tensor.Dtype.I16 g)

let test_values_transparency () =
  let g = Helpers.inception_snippet () in
  (* Node 6 is the concat; node 7 (C6) reads through it. *)
  Alcotest.(check bool) "concat transparent" false (Values.is_value g 6);
  Alcotest.(check (list int)) "resolved sources" [ 1; 3; 5 ] (Values.source_values g 7);
  (* C1 (node 1) feeds only the concat; its real consumer is C6. *)
  Alcotest.(check (list int)) "consumers through concat" [ 7 ] (Values.consumers g 1);
  Alcotest.(check int) "last use" 7 (Values.last_use g 1);
  (* The graph output has no consumers. *)
  Alcotest.(check (list int)) "sink" [] (Values.consumers g 7);
  Alcotest.(check int) "sink last use is self" 7 (Values.last_use g 7)

let test_values_diamond () =
  let g = Helpers.diamond () in
  (* Input value 0 read by both branches. *)
  Alcotest.(check (list int)) "input consumers" [ 1; 2 ] (Values.consumers g 0);
  (* The add (4) reads proj (1) and body2 (3). *)
  Alcotest.(check (list int)) "add sources" [ 1; 3 ] (Values.source_values g 4)

let test_analysis_volumes () =
  let g = Helpers.chain () in
  let v = Dnn_graph.Analysis.volumes Tensor.Dtype.I8 g 1 in
  Alcotest.(check int) "if bytes" (16 * 32 * 32) v.Dnn_graph.Analysis.if_bytes;
  Alcotest.(check int) "wt bytes" (32 * 16 * 9) v.Dnn_graph.Analysis.wt_bytes;
  Alcotest.(check int) "of bytes" (32 * 32 * 32) v.Dnn_graph.Analysis.of_bytes;
  Alcotest.(check bool) "intensity positive" true
    (Dnn_graph.Analysis.op_intensity Tensor.Dtype.I8 g 1 > 0.)

let test_dot_export () =
  let g = Helpers.diamond () in
  let dot = Dnn_graph.Dot.to_dot g in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  (* every edge present *)
  List.iter
    (fun nd ->
      List.iter
        (fun p ->
          let edge = Printf.sprintf "n%d -> n%d;" p nd.G.id in
          let found =
            let rec scan i =
              i + String.length edge <= String.length dot
              && (String.sub dot i (String.length edge) = edge || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool) edge true found)
        nd.G.preds)
    (G.nodes g)

let prop_random_graphs_valid =
  Helpers.qtest ~count:60 "random builder graphs validate" Helpers.random_graph_gen
    (fun g ->
      (* Re-validating the node list must succeed and succs/preds agree. *)
      match G.create (G.nodes g) with
      | Error _ -> false
      | Ok g2 ->
        List.for_all
          (fun nd ->
            List.for_all
              (fun p -> List.mem nd.G.id (G.succs g2 p))
              nd.G.preds)
          (G.nodes g2))

let prop_last_use_ge_def =
  Helpers.qtest ~count:60 "last use is at or after definition"
    Helpers.random_graph_gen (fun g ->
      List.for_all
        (fun nd -> Values.(not (is_value g nd.G.id)) || Values.last_use g nd.G.id >= nd.G.id)
        (G.nodes g))

let suite =
  [ Alcotest.test_case "create valid" `Quick test_create_valid;
    Alcotest.test_case "create errors" `Quick test_create_errors;
    Alcotest.test_case "shapes and weights" `Quick test_shapes_and_weights;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "builder names/blocks" `Quick test_builder_names_and_blocks;
    Alcotest.test_case "builder eager errors" `Quick test_builder_shape_error_eager;
    Alcotest.test_case "weight bytes" `Quick test_weight_bytes;
    Alcotest.test_case "values transparency" `Quick test_values_transparency;
    Alcotest.test_case "values diamond" `Quick test_values_diamond;
    Alcotest.test_case "analysis volumes" `Quick test_analysis_volumes;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    prop_random_graphs_valid;
    prop_last_use_ge_def ]
