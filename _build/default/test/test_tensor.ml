(* Tests for the tensor substrate: Dtype, Shape, descriptors. *)

module Dtype = Tensor.Dtype
module Shape = Tensor.Shape

let check = Alcotest.check

let test_dtype_sizes () =
  check Alcotest.int "i8 bytes" 1 (Dtype.bytes Dtype.I8);
  check Alcotest.int "i16 bytes" 2 (Dtype.bytes Dtype.I16);
  check Alcotest.int "f32 bytes" 4 (Dtype.bytes Dtype.F32);
  check Alcotest.int "i16 bits" 16 (Dtype.bits Dtype.I16)

let test_dtype_dsp_cost () =
  check (Alcotest.float 1e-9) "i8 packs two per dsp" 0.5 (Dtype.dsp_cost_per_mac Dtype.I8);
  check (Alcotest.float 1e-9) "i16 one per dsp" 1.0 (Dtype.dsp_cost_per_mac Dtype.I16);
  Alcotest.(check bool) "f32 costs more than fixed" true
    (Dtype.dsp_cost_per_mac Dtype.F32 > Dtype.dsp_cost_per_mac Dtype.I16)

let test_dtype_strings () =
  List.iter
    (fun d ->
      check
        (Alcotest.option (Alcotest.testable Dtype.pp Dtype.equal))
        "roundtrip" (Some d)
        (Dtype.of_string (Dtype.to_string d)))
    Dtype.all;
  check (Alcotest.option (Alcotest.testable Dtype.pp Dtype.equal)) "alias fp32"
    (Some Dtype.F32) (Dtype.of_string "FP32");
  check (Alcotest.option (Alcotest.testable Dtype.pp Dtype.equal)) "unknown"
    None (Dtype.of_string "i4")

let test_shape_elements () =
  check Alcotest.int "feature" (64 * 56 * 56)
    (Shape.elements (Shape.feature ~channels:64 ~height:56 ~width:56));
  check Alcotest.int "filter" (256 * 64 * 9)
    (Shape.elements
       (Shape.filter ~out_channels:256 ~in_channels:64 ~kernel_h:3 ~kernel_w:3));
  check Alcotest.int "vector" 1000 (Shape.elements (Shape.vector 1000))

let test_shape_bytes () =
  let f = Shape.feature ~channels:3 ~height:2 ~width:2 in
  check Alcotest.int "i8" 12 (Shape.size_bytes Dtype.I8 f);
  check Alcotest.int "i16" 24 (Shape.size_bytes Dtype.I16 f);
  check Alcotest.int "f32" 48 (Shape.size_bytes Dtype.F32 f)

let test_shape_validation () =
  Alcotest.check_raises "zero channel" (Invalid_argument "Shape: channels must be positive, got 0")
    (fun () -> ignore (Shape.feature ~channels:0 ~height:1 ~width:1));
  Alcotest.check_raises "negative vector" (Invalid_argument "Shape: length must be positive, got -3")
    (fun () -> ignore (Shape.vector (-3)))

let test_shape_accessors () =
  let f = Shape.feature ~channels:4 ~height:5 ~width:6 in
  (match Shape.as_feature f with
  | Some x ->
    check Alcotest.int "channels" 4 x.Shape.channels;
    check Alcotest.int "height" 5 x.Shape.height
  | None -> Alcotest.fail "expected feature");
  check Alcotest.bool "filter is not feature" true (Shape.as_feature (Shape.vector 3) = None);
  check Alcotest.string "pp feature" "4x5x6" (Shape.to_string f);
  check Alcotest.string "pp vector" "[7]" (Shape.to_string (Shape.vector 7))

let test_descriptor () =
  let t =
    Tensor.make ~id:3 ~name:"conv1:w" ~kind:Tensor.Weight
      ~shape:(Shape.filter ~out_channels:8 ~in_channels:4 ~kernel_h:3 ~kernel_w:3)
  in
  check Alcotest.bool "is weight" true (Tensor.is_weight t);
  check Alcotest.bool "not feature" false (Tensor.is_feature t);
  check Alcotest.int "bytes i16" (8 * 4 * 9 * 2) (Tensor.size_bytes Dtype.I16 t);
  Alcotest.check_raises "empty name" (Invalid_argument "Tensor.make: empty name")
    (fun () ->
      ignore (Tensor.make ~id:0 ~name:"" ~kind:Tensor.Feature_map ~shape:(Shape.vector 1)))

let prop_shape_positive =
  Helpers.qtest "elements always positive"
    QCheck2.Gen.(triple (int_range 1 64) (int_range 1 64) (int_range 1 64))
    (fun (c, h, w) -> Shape.elements (Shape.feature ~channels:c ~height:h ~width:w) > 0)

let prop_bytes_monotone =
  Helpers.qtest "size grows with precision"
    QCheck2.Gen.(triple (int_range 1 64) (int_range 1 64) (int_range 1 64))
    (fun (c, h, w) ->
      let f = Shape.feature ~channels:c ~height:h ~width:w in
      Shape.size_bytes Dtype.I8 f < Shape.size_bytes Dtype.I16 f
      && Shape.size_bytes Dtype.I16 f < Shape.size_bytes Dtype.F32 f)

let suite =
  [ Alcotest.test_case "dtype sizes" `Quick test_dtype_sizes;
    Alcotest.test_case "dtype dsp cost" `Quick test_dtype_dsp_cost;
    Alcotest.test_case "dtype strings" `Quick test_dtype_strings;
    Alcotest.test_case "shape elements" `Quick test_shape_elements;
    Alcotest.test_case "shape bytes" `Quick test_shape_bytes;
    Alcotest.test_case "shape validation" `Quick test_shape_validation;
    Alcotest.test_case "shape accessors" `Quick test_shape_accessors;
    Alcotest.test_case "descriptor" `Quick test_descriptor;
    prop_shape_positive;
    prop_bytes_monotone ]
