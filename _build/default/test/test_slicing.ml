(* Partial weight pinning (Weight_slice items). *)

module Metric = Lcmm.Metric
module F = Lcmm.Framework

let dtype = Tensor.Dtype.I16

let sliced_metric k g =
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
  let profiles = Accel.Latency.profile_graph cfg g in
  Metric.build ~weight_slices:(fun _ -> k) g profiles

let all_slices_of m node =
  let k = m.Metric.slices.(node) in
  List.init k (fun index -> Metric.Weight_slice { node; index; of_k = k })

let test_slices_replace_whole_items () =
  let g = Helpers.inception_snippet () in
  let m = sliced_metric 4 g in
  let items = Metric.eligible_items m ~memory_bound_only:false in
  Alcotest.(check bool) "no whole-weight items" true
    (List.for_all
       (function Metric.Weight_of _ -> false | Metric.Feature_value _ | Metric.Weight_slice _ -> true)
       items);
  (* Node 3 (C3) has weights: exactly 4 slices appear. *)
  let c3_slices =
    List.filter
      (function
        | Metric.Weight_slice { node = 3; _ } -> true
        | Metric.Weight_slice _ | Metric.Weight_of _ | Metric.Feature_value _ -> false)
      items
  in
  Alcotest.(check int) "four slices for C3" 4 (List.length c3_slices)

let test_slice_sizes_cover_tensor () =
  let g = Helpers.inception_snippet () in
  let m1 = sliced_metric 1 g in
  let m4 = sliced_metric 4 g in
  let whole = Metric.item_size_bytes dtype m1 (Metric.Weight_of 3) in
  let slices =
    List.fold_left
      (fun acc it -> acc + Metric.item_size_bytes dtype m4 it)
      0 (all_slices_of m4 3)
  in
  Alcotest.(check bool) "slices cover the tensor" true (slices >= whole);
  Alcotest.(check bool) "no more than rounding overhead" true (slices < whole + 4)

let test_fractional_latency () =
  let g = Helpers.inception_snippet () in
  let m = sliced_metric 4 g in
  let p = m.Metric.profiles.(3) in
  (* Pinning slices one by one moves the weight term down linearly until
     another term dominates; full pinning matches wt term = 0. *)
  let latency_with n_pinned =
    let on_chip =
      Metric.Item_set.of_list
        (List.filteri (fun i _ -> i < n_pinned) (all_slices_of m 3))
    in
    Metric.node_latency m ~on_chip 3
  in
  let l0 = latency_with 0 and l2 = latency_with 2 and l4 = latency_with 4 in
  Alcotest.(check bool) "monotone" true (l4 <= l2 && l2 <= l0);
  (* With all slices pinned, the weight stream is gone entirely. *)
  let others =
    max p.Accel.Latency.latc
      (max
         (List.fold_left (fun a (_, t) -> a +. t) 0. p.Accel.Latency.if_terms)
         p.Accel.Latency.of_term)
  in
  Alcotest.(check (float 1e-12)) "fully pinned" others l4;
  (* Half the slices stream half the weight bytes. *)
  if p.Accel.Latency.wt_term /. 2. > others then
    Alcotest.(check (float 1e-9)) "half pinned" (p.Accel.Latency.wt_term /. 2.) l2

let test_slicing_helps_under_pressure () =
  (* With a budget smaller than the largest weight tensor, whole-tensor
     granularity cannot pin it at all; slices can pin part of it. *)
  let g = Helpers.inception_snippet () in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
  let budget = 256 * 1024 in
  let plan k =
    F.plan
      ~options:
        { F.default_options with
          F.capacity_override = Some budget;
          weight_slices = k }
      cfg g
  in
  let whole = plan 1 in
  let sliced = plan 8 in
  Alcotest.(check bool)
    (Printf.sprintf "sliced (%f) <= whole (%f)"
       sliced.F.predicted_latency whole.F.predicted_latency)
    true
    (sliced.F.predicted_latency <= whole.F.predicted_latency +. 1e-12)

let test_framework_slices_respect_budget () =
  let g = Helpers.inception_snippet () in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
  let p =
    F.plan
      ~options:
        { F.default_options with
          F.capacity_override = Some (128 * 1024);
          weight_slices = 4 }
      cfg g
  in
  Alcotest.(check bool) "budget respected" true
    (p.F.tensor_sram_bytes <= 128 * 1024)

let test_simulator_fractional_weights () =
  let g = Helpers.inception_snippet () in
  let m = sliced_metric 2 g in
  (* Pin half of C3's weights; steady-state simulation must sit between
     all-off and all-on. *)
  let half = Metric.Item_set.of_list [ Metric.Weight_slice { node = 3; index = 0; of_k = 2 } ] in
  let all = Metric.Item_set.of_list (all_slices_of m 3) in
  let total set =
    (Sim.Engine.simulate ~weights_resident:true m ~on_chip:set).Sim.Engine.total
  in
  let t0 = total Metric.Item_set.empty in
  let t1 = total half in
  let t2 = total all in
  Alcotest.(check bool) "between" true (t2 <= t1 +. 1e-15 && t1 <= t0 +. 1e-15)

(* Slicing trades finer placement against block-rounding waste, so it is
   not universally dominant; what must always hold is the framework's
   never-worse-than-baseline guarantee and the capacity discipline. *)
let prop_sliced_sound =
  Helpers.qtest ~count:15 "sliced plans stay sound under a tight budget"
    Helpers.random_graph_gen (fun g ->
      let cfg = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
      let budget = 128 * 1024 in
      let p =
        F.plan
          ~options:
            { F.default_options with
              F.capacity_override = Some budget;
              weight_slices = 4 }
          cfg g
      in
      p.F.predicted_latency
      <= Accel.Latency.umm_total p.F.metric.Metric.profiles +. 1e-9
      && p.F.tensor_sram_bytes <= budget)

let suite =
  [ Alcotest.test_case "slices replace whole items" `Quick test_slices_replace_whole_items;
    Alcotest.test_case "slice sizes cover tensor" `Quick test_slice_sizes_cover_tensor;
    Alcotest.test_case "fractional latency" `Quick test_fractional_latency;
    Alcotest.test_case "slicing helps under pressure" `Quick test_slicing_helps_under_pressure;
    Alcotest.test_case "slices respect budget" `Quick test_framework_slices_respect_budget;
    Alcotest.test_case "simulator fractional weights" `Quick test_simulator_fractional_weights;
    prop_sliced_sound ]
