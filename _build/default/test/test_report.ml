(* Report rendering and CSV export. *)

module F = Lcmm.Framework
module Report = Lcmm.Report

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let comparison () =
  let g = Models.Zoo.build "googlenet" in
  (g, F.compare_designs ~model:"googlenet" Tensor.Dtype.I16 g)

let test_plan_summary () =
  let g, c = comparison () in
  let text = Report.plan_summary g c.F.lcmm_plan in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains text needle))
    [ "design point"; "virtual bufs"; "POL"; "latency"; "Tops" ]

let test_comparison_row () =
  let _, c = comparison () in
  let row = Report.comparison_row c in
  Alcotest.(check bool) "mentions model" true (contains row "googlenet");
  Alcotest.(check bool) "mentions precision" true (contains row "i16");
  (* Header and row align on column count (split on runs of spaces). *)
  let fields s =
    String.split_on_char ' ' s |> List.filter (fun f -> f <> "")
  in
  Alcotest.(check int) "aligned columns"
    (List.length (fields Report.comparison_header))
    (List.length (fields row))

let test_csv_comparisons () =
  let _, c = comparison () in
  let csv = Report.csv_of_comparisons [ c; c ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + two rows" 3 (List.length lines);
  (match lines with
  | header :: rows ->
    let cols s = List.length (String.split_on_char ',' s) in
    Alcotest.(check int) "header cols" 10 (cols header);
    List.iter (fun r -> Alcotest.(check int) "row cols" 10 (cols r)) rows
  | [] -> Alcotest.fail "empty csv")

let test_csv_design_points () =
  let p =
    { Lcmm.Design_space.mask = 5; sram_bytes = 1024; latency = 0.001; tops = 2.5 }
  in
  let csv = Report.csv_of_design_points [ p ] in
  Alcotest.(check bool) "has header" true (contains csv "mask,sram_bytes");
  Alcotest.(check bool) "has row" true (contains csv "5,1024,1.000000,2.500000")

let test_write_text_file () =
  let path = Filename.temp_file "lcmm" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Report.write_text_file ~path "a,b\n1,2\n";
      let ic = open_in path in
      let content =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) "round-trips" "a,b\n1,2\n" content)

let suite =
  [ Alcotest.test_case "plan summary" `Quick test_plan_summary;
    Alcotest.test_case "comparison row" `Quick test_comparison_row;
    Alcotest.test_case "csv comparisons" `Quick test_csv_comparisons;
    Alcotest.test_case "csv design points" `Quick test_csv_design_points;
    Alcotest.test_case "write text file" `Quick test_write_text_file ]
