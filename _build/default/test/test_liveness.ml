(* Lifespans, interference and buffer coloring. *)

module L = Lcmm.Liveness
module Metric = Lcmm.Metric

let test_intervals () =
  let i = L.make ~start_pos:2 ~end_pos:5 in
  Alcotest.(check bool) "overlap self" true (L.overlaps i i);
  Alcotest.(check bool) "contained" true
    (L.overlaps i (L.make ~start_pos:3 ~end_pos:4));
  Alcotest.(check bool) "touching endpoints overlap" true
    (L.overlaps i (L.make ~start_pos:5 ~end_pos:9));
  Alcotest.(check bool) "disjoint" false
    (L.overlaps i (L.make ~start_pos:6 ~end_pos:9));
  Alcotest.check_raises "inverted" (Invalid_argument "Liveness.make: end before start")
    (fun () -> ignore (L.make ~start_pos:3 ~end_pos:2))

let test_feature_intervals () =
  let g = Helpers.inception_snippet () in
  (* C2's output (value 2) is consumed only by C3 (node 3). *)
  let i2 = L.feature_interval g 2 in
  Alcotest.(check int) "start" 2 i2.L.start_pos;
  Alcotest.(check int) "end" 3 i2.L.end_pos;
  (* C1's output is consumed by C6 (7) through the concat. *)
  let i1 = L.feature_interval g 1 in
  Alcotest.(check int) "through concat" 7 i1.L.end_pos;
  (* Disjoint: f2 dies at 3, f4 born at 4. *)
  Alcotest.(check bool) "f2/f4 disjoint" false
    (L.overlaps i2 (L.feature_interval g 4))

let test_item_intervals () =
  let g = Helpers.inception_snippet () in
  let no_prefetch _ = None in
  let w = L.item_interval g ~prefetch_source:no_prefetch (Metric.Weight_of 3) in
  Alcotest.(check int) "weight without pdg starts at node" 3 w.L.start_pos;
  let w' =
    L.item_interval g ~prefetch_source:(fun _ -> Some 1) (Metric.Weight_of 3)
  in
  Alcotest.(check int) "weight with pdg starts at source" 1 w'.L.start_pos;
  Alcotest.(check int) "weight ends at node" 3 w'.L.end_pos

let prop_overlap_symmetric =
  Helpers.qtest "overlap is symmetric"
    (QCheck2.Gen.pair Helpers.interval_gen Helpers.interval_gen)
    (fun (a, b) -> L.overlaps a b = L.overlaps b a)

let prop_overlap_reflexive =
  Helpers.qtest "overlap is reflexive" Helpers.interval_gen (fun i -> L.overlaps i i)

(* --- interference --- *)

let build_interference intervals =
  let items = Array.mapi (fun i _ -> Metric.Feature_value i) intervals in
  Lcmm.Interference.build ~items ~intervals ()

let test_interference () =
  let g =
    build_interference
      [| L.make ~start_pos:0 ~end_pos:2; L.make ~start_pos:1 ~end_pos:3;
         L.make ~start_pos:4 ~end_pos:5 |]
  in
  Alcotest.(check bool) "0-1 conflict" true (Lcmm.Interference.conflict g 0 1);
  Alcotest.(check bool) "0-2 free" false (Lcmm.Interference.conflict g 0 2);
  Alcotest.(check bool) "no self conflict" false (Lcmm.Interference.conflict g 1 1);
  Alcotest.(check int) "degree" 1 (Lcmm.Interference.degree g 0);
  Lcmm.Interference.add_false_edge g 0 2;
  Alcotest.(check bool) "false edge forces conflict" true
    (Lcmm.Interference.conflict g 0 2);
  Alcotest.(check int) "false edges recorded" 1
    (List.length (Lcmm.Interference.false_edges g));
  Alcotest.check_raises "self false edge"
    (Invalid_argument "Interference.add_false_edge: self edge") (fun () ->
      Lcmm.Interference.add_false_edge g 1 1)

let test_never_share () =
  let items = [| Metric.Feature_value 0; Metric.Weight_of 1 |] in
  let intervals = [| L.make ~start_pos:0 ~end_pos:0; L.make ~start_pos:5 ~end_pos:5 |] in
  let is_weight = function
    | Metric.Weight_of _ | Metric.Weight_slice _ -> true
    | Metric.Feature_value _ -> false
  in
  let never a b = is_weight a <> is_weight b in
  let g = Lcmm.Interference.build ~never_share:never ~items ~intervals () in
  Alcotest.(check bool) "cross-kind conflict despite disjoint lifespans" true
    (Lcmm.Interference.conflict g 0 1)

(* --- coloring --- *)

let color_valid interference sizes buffers =
  (* No two members of one buffer may conflict; every item appears once. *)
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun vb ->
      let idxs =
        List.map
          (fun item ->
            let rec find i =
              if i >= Lcmm.Interference.item_count interference then -1
              else if Lcmm.Interference.item interference i = item then i
              else find (i + 1)
            in
            find 0)
          vb.Lcmm.Vbuffer.members
      in
      List.iter (fun i -> Hashtbl.replace seen i ()) idxs;
      let rec pairs = function
        | [] -> true
        | x :: rest ->
          List.for_all (fun y -> not (Lcmm.Interference.conflict interference x y)) rest
          && pairs rest
      in
      pairs idxs
      && vb.Lcmm.Vbuffer.size_bytes
         = List.fold_left (fun m i -> max m sizes.(i)) 0 idxs)
    buffers
  && Hashtbl.length seen = Array.length sizes

let test_coloring_shares_disjoint () =
  let intervals =
    [| L.make ~start_pos:0 ~end_pos:1; L.make ~start_pos:2 ~end_pos:3;
       L.make ~start_pos:1 ~end_pos:2 |]
  in
  let g = build_interference intervals in
  let sizes = [| 100; 80; 50 |] in
  let buffers = Lcmm.Coloring.color g ~sizes in
  (* Items 0 and 1 are disjoint and share; 2 overlaps both. *)
  Alcotest.(check int) "two buffers" 2 (List.length buffers);
  Alcotest.(check bool) "valid" true (color_valid g sizes buffers);
  Alcotest.(check int) "total = 100 + 50" 150 (Lcmm.Coloring.total_bytes buffers)

let test_coloring_strategies () =
  let intervals =
    Array.init 8 (fun i -> L.make ~start_pos:(i mod 4) ~end_pos:((i mod 4) + 1))
  in
  let g = build_interference intervals in
  let sizes = Array.init 8 (fun i -> 10 + i) in
  List.iter
    (fun strategy ->
      let buffers = Lcmm.Coloring.color ~strategy g ~sizes in
      Alcotest.(check bool) "valid coloring" true (color_valid g sizes buffers))
    [ Lcmm.Coloring.Min_growth; Lcmm.Coloring.First_fit ]

let prop_coloring_valid =
  let gen = QCheck2.Gen.(list_size (int_range 1 20) (pair Helpers.interval_gen (int_range 1 1000))) in
  Helpers.qtest "coloring is always a valid partition" gen (fun entries ->
      let intervals = Array.of_list (List.map fst entries) in
      let sizes = Array.of_list (List.map snd entries) in
      let g = build_interference intervals in
      let buffers = Lcmm.Coloring.color g ~sizes in
      color_valid g sizes buffers)

let prop_coloring_no_worse_than_no_sharing =
  let gen = QCheck2.Gen.(list_size (int_range 1 20) (pair Helpers.interval_gen (int_range 1 1000))) in
  Helpers.qtest "sharing never exceeds per-item total" gen (fun entries ->
      let intervals = Array.of_list (List.map fst entries) in
      let sizes = Array.of_list (List.map snd entries) in
      let g = build_interference intervals in
      let buffers = Lcmm.Coloring.color g ~sizes in
      Lcmm.Coloring.total_bytes buffers <= Array.fold_left ( + ) 0 sizes)

let suite =
  [ Alcotest.test_case "intervals" `Quick test_intervals;
    Alcotest.test_case "feature intervals" `Quick test_feature_intervals;
    Alcotest.test_case "item intervals" `Quick test_item_intervals;
    prop_overlap_symmetric;
    prop_overlap_reflexive;
    Alcotest.test_case "interference" `Quick test_interference;
    Alcotest.test_case "never share" `Quick test_never_share;
    Alcotest.test_case "coloring shares disjoint" `Quick test_coloring_shares_disjoint;
    Alcotest.test_case "coloring strategies" `Quick test_coloring_strategies;
    prop_coloring_valid;
    prop_coloring_no_worse_than_no_sharing ]
