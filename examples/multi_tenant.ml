(* Multi-tenant board runtime: share one FPGA between two copies of
   GoogLeNet and one VGG-16, partitioning the device SRAM across them
   and co-simulating all three with their DDR weight transfers
   contending for the shared bus.

   Run with:  dune exec examples/multi_tenant.exe *)

module Rt = Lcmm_runtime.Runtime

let specs =
  List.concat_map
    (fun (model, count) ->
      let graph = Models.Zoo.build model in
      List.init count (fun k ->
          { Rt.name = Printf.sprintf "%s#%d" model k;
            model;
            graph;
            priority = 0;
            arrival = 0. }))
    [ ("googlenet", 2); ("vgg16", 1) ]

let () =
  (* Defaults: i16 on the VU9P, fair bus arbitration, EDF transfer
     scheduling, equal SRAM partitioning.  Each tenant's plan is
     re-compiled by the LCMM framework against its partition share, so
     a tenant pins fewer weights than it would alone — and then the
     co-simulation shows what the remaining DDR traffic costs when the
     bus is shared. *)
  let report = Rt.run Rt.default_options specs in
  Format.printf "%a@." Lcmm_runtime.Report.pp report;

  (* The same mix under the greedy scheduler (every released transfer
     shares the bus) for comparison. *)
  let greedy =
    Rt.run
      { Rt.default_options with scheduler = Lcmm_runtime.Scheduler.Greedy }
      specs
  in
  Format.printf "greedy scheduler makespan: %.3f ms (edf above: %.3f ms)@."
    greedy.Lcmm_runtime.Report.makespan_ms
    report.Lcmm_runtime.Report.makespan_ms;

  (* Per-tenant slowdown against its own partitioned isolated run. *)
  List.iter
    (fun (t : Lcmm_runtime.Report.tenant_report) ->
      match t.Lcmm_runtime.Report.status with
      | Lcmm_runtime.Report.Admitted ->
        Printf.printf "%s: isolated %.3f ms -> contended %.3f ms (x%.2f)\n"
          t.Lcmm_runtime.Report.name t.Lcmm_runtime.Report.isolated_ms
          t.Lcmm_runtime.Report.latency_ms t.Lcmm_runtime.Report.slowdown
      | _ -> ())
    report.Lcmm_runtime.Report.tenants
