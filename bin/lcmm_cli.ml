(* lcmm: command-line front end for the LCMM reproduction.

   Subcommands: models, summary, roofline, allocate, simulate, compare,
   dot, export, info, schedule, trace, traffic, sensitivity, serve.
   Each mirrors one way a user would interrogate the framework;
   bench/main.exe is the separate harness that regenerates the paper's
   tables and figures wholesale. *)

open Cmdliner

(* Every subcommand takes the logging flags: -v/-vv raise the level to
   info/debug (pass-level logs from Framework.plan, request logs from
   the service), -q silences everything. *)
let log_arg =
  let verbose =
    let doc = "Increase log verbosity (repeatable: -v info, -vv debug)." in
    Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)
  in
  let quiet =
    let doc = "Silence all logging." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let setup verbose quiet =
    let level =
      if quiet then None
      else
        match List.length verbose with
        | 0 -> Some Logs.Warning
        | 1 -> Some Logs.Info
        | _ -> Some Logs.Debug
    in
    Logs.set_level level;
    Logs.set_reporter (Logs.format_reporter ())
  in
  Term.(const setup $ verbose $ quiet)

let model_arg =
  let doc = "Model name (see the models subcommand)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let dtype_arg =
  let parse s =
    match Tensor.Dtype.of_string s with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "unknown precision %S" s))
  in
  let print ppf d = Tensor.Dtype.pp ppf d in
  let dtype_conv = Arg.conv (parse, print) in
  let doc = "Numeric precision: i8, i16 or f32." in
  Arg.(value & opt dtype_conv Tensor.Dtype.I16 & info [ "p"; "precision" ] ~doc)

let device_arg =
  let parse s =
    match Fpga.Device.find s with
    | Some d -> Ok d
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown device %S (known: %s)" s
             (String.concat ", "
                (List.map (fun d -> d.Fpga.Device.device_name) Fpga.Device.all))))
  in
  let print ppf d = Format.pp_print_string ppf d.Fpga.Device.device_name in
  let device_conv = Arg.conv (parse, print) in
  let doc = "Target device: vu9p (default), zu9eg or u250." in
  Arg.(value & opt device_conv Fpga.Device.vu9p & info [ "d"; "device" ] ~doc)

let build_model name =
  match Models.Zoo.find name with
  | Some e -> Ok (e.Models.Zoo.model_name, e.Models.Zoo.build ())
  | None ->
    Error
      (Printf.sprintf "unknown model %S; known: %s" name
         (String.concat ", "
            (List.map (fun e -> e.Models.Zoo.model_name) Models.Zoo.all)))

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("lcmm: " ^ msg);
    exit 1

(* Planner parallelism: --domains N runs the planner fan-outs (liveness,
   DNNK compensation, per-tenant replans) on an N-domain pool.  The
   output is byte-identical to the sequential run, so golden comparisons
   hold at any domain count; 1 (the default) stays fully sequential. *)
let domains_arg =
  let doc =
    "Worker domains for planner parallelism (1 = sequential).  Output is \
     byte-identical at every domain count."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~doc)

let with_pool domains f =
  if domains < 1 then or_die (Error "domains must be >= 1");
  if domains = 1 then f None
  else begin
    let pool = Lcmm.Pool.create ~domains () in
    Fun.protect ~finally:(fun () -> Lcmm.Pool.shutdown pool)
      (fun () -> f (Some pool))
  end

let models_cmd =
  let run () () =
    List.iter
      (fun e ->
        let g = e.Models.Zoo.build () in
        Printf.printf "%-14s %4d nodes %7.2f GMACs %7.1f MB weights (i8)\n"
          e.Models.Zoo.model_name
          (Dnn_graph.Graph.node_count g)
          (float_of_int (Dnn_graph.Graph.total_macs g) /. 1e9)
          (float_of_int (Dnn_graph.Graph.weight_bytes Tensor.Dtype.I8 g) /. 1e6))
      Models.Zoo.all
  in
  Cmd.v (Cmd.info "models" ~doc:"List the model zoo") Term.(const run $ log_arg $ const ())

let summary_cmd =
  let run () name =
    let _, g = or_die (build_model name) in
    Format.printf "%a" Dnn_graph.Graph.pp_summary g
  in
  Cmd.v (Cmd.info "summary" ~doc:"Per-layer graph dump") Term.(const run $ log_arg $ model_arg)

let roofline_cmd =
  let run () name dtype =
    let _, g = or_die (build_model name) in
    let cfg = Accel.Config.make ~style:Accel.Config.Umm dtype in
    let points = Accel.Roofline.points cfg g in
    List.iter (fun p -> Format.printf "%a@." Accel.Roofline.pp_point p) points;
    let mb, total, frac = Accel.Roofline.summary points in
    Format.printf "ridge = %.1f ops/byte; %d / %d layers memory bound (%.0f%%)@."
      (Accel.Roofline.ridge_point cfg) mb total (100. *. frac)
  in
  Cmd.v
    (Cmd.info "roofline" ~doc:"Roofline characterization (paper Fig. 2a)")
    Term.(const run $ log_arg $ model_arg $ dtype_arg)

let allocate_cmd =
  let run () name dtype =
    let model, g = or_die (build_model name) in
    let c = Lcmm.Framework.compare_designs ~model dtype g in
    let p = c.Lcmm.Framework.lcmm_plan in
    Format.printf "design: %a@." Accel.Config.pp p.Lcmm.Framework.config;
    Format.printf "virtual buffers (%d):@."
      (List.length p.Lcmm.Framework.vbufs);
    List.iter
      (fun vb ->
        let on = List.mem vb p.Lcmm.Framework.allocation.Lcmm.Dnnk.chosen in
        Format.printf "  %s %a@." (if on then "[on ]" else "[off]") Lcmm.Vbuffer.pp vb)
      p.Lcmm.Framework.vbufs;
    (match p.Lcmm.Framework.prefetch with
    | None -> ()
    | Some pdg -> Format.printf "prefetch edges:@.%a" Lcmm.Prefetch.pp pdg);
    (let tile_bytes =
       Accel.Tiling.buffer_bytes dtype p.Lcmm.Framework.config.Accel.Config.tile
     in
     match
       Lcmm.Placement.place ~device:Fpga.Device.vu9p ~tile_bytes
         p.Lcmm.Framework.allocation.Lcmm.Dnnk.chosen
     with
     | Ok map -> Format.printf "%a" Lcmm.Placement.pp map
     | Error msg -> Format.printf "placement failed: %s@." msg);
    let helped, bound = Lcmm.Framework.helped_layers p in
    Format.printf
      "UMM %.3f ms -> LCMM %.3f ms (x%.2f); POL %d/%d; tensor SRAM %.2f MB@."
      (c.Lcmm.Framework.umm.Lcmm.Framework.latency_seconds *. 1e3)
      (c.Lcmm.Framework.lcmm.Lcmm.Framework.latency_seconds *. 1e3)
      c.Lcmm.Framework.speedup helped bound
      (float_of_int p.Lcmm.Framework.tensor_sram_bytes /. 1e6)
  in
  Cmd.v
    (Cmd.info "allocate" ~doc:"Run the LCMM framework and print the plan")
    Term.(const run $ log_arg $ model_arg $ dtype_arg)

let plan_cmd =
  let model_opt_arg =
    let doc = "Model name; when omitted, every zoo model is planned." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)
  in
  let profile_arg =
    let doc =
      "Print the per-pass wall-clock breakdown (liveness, interference, \
       coloring, prefetch, DNNK, splitting, segmentation) to stderr.  \
       Timings stay off stdout so the plan text remains byte-reproducible."
    in
    Arg.(value & flag & info [ "profile" ] ~doc)
  in
  let plan_one ?pool ~profile ~fusion ~channels dtype name =
    let model, g = or_die (build_model name) in
    let options = { Lcmm.Framework.default_options with fusion; channels } in
    let c = Lcmm.Framework.compare_designs ~options ?pool ~model dtype g in
    let fz =
      if fusion then Some (Lcmm_fusion.Fusion.apply ?pool c.Lcmm.Framework.lcmm_plan)
      else None
    in
    let p =
      match fz with
      | Some fz -> Lcmm_fusion.Fusion.effective_plan fz
      | None -> c.Lcmm.Framework.lcmm_plan
    in
    Format.printf "== %s ==@." model;
    Format.printf "design: %a@." Accel.Config.pp p.Lcmm.Framework.config;
    Format.printf "virtual buffers (%d):@." (List.length p.Lcmm.Framework.vbufs);
    List.iter
      (fun vb ->
        let on = List.mem vb p.Lcmm.Framework.allocation.Lcmm.Dnnk.chosen in
        Format.printf "  %s %a@." (if on then "[on ]" else "[off]")
          Lcmm.Vbuffer.pp vb)
      p.Lcmm.Framework.vbufs;
    (match p.Lcmm.Framework.prefetch with
    | None -> Format.printf "prefetch edges: none@."
    | Some pdg ->
      Format.printf "prefetch edges: %d@."
        (List.length (Lcmm.Prefetch.edges pdg)));
    Format.printf "UMM %.6f ms -> LCMM %.6f ms (x%.4f); tensor SRAM %d bytes@."
      (c.Lcmm.Framework.umm.Lcmm.Framework.latency_seconds *. 1e3)
      (c.Lcmm.Framework.lcmm.Lcmm.Framework.latency_seconds *. 1e3)
      c.Lcmm.Framework.speedup p.Lcmm.Framework.tensor_sram_bytes;
    (match fz with
    | None -> ()
    | Some fz ->
      let module Fz = Lcmm_fusion.Fusion in
      let module Seg = Lcmm_fusion.Segmentation in
      Format.printf
        "fusion: %d segments (%d nodes fused), %d streamed weights, FIFO %d \
         bytes@."
        (List.length fz.Fz.segments)
        (List.fold_left
           (fun a (s : Seg.segment) -> a + s.Seg.last - s.Seg.first + 1)
           0 fz.Fz.segments)
        (List.length fz.Fz.streamed)
        fz.Fz.fifo_bytes;
      List.iter
        (fun (s : Seg.segment) ->
          Format.printf
            "  segment [%d..%d] slab %d bytes, %.3f us saved, %d DDR bytes@."
            s.Seg.first s.Seg.last s.Seg.slab_bytes
            (s.Seg.benefit_seconds *. 1e6)
            s.Seg.ddr_bytes_saved)
        fz.Fz.segments;
      Format.printf
        "fusion: LCMM+fusion %.6f ms (x%.4f vs UMM); DDR %d -> %d bytes; \
         peak SRAM %d bytes@."
        (fz.Fz.predicted_latency *. 1e3)
        (c.Lcmm.Framework.umm.Lcmm.Framework.latency_seconds
        /. fz.Fz.predicted_latency)
        (Lcmm.Traffic.total_bytes fz.Fz.base_traffic)
        (Lcmm.Traffic.total_bytes fz.Fz.traffic)
        fz.Fz.peak_sram_bytes);
    (match p.Lcmm.Framework.channel_assignment with
    | None -> ()
    | Some a ->
      Format.printf "channels: %d | bytes %s | balance %.3f@."
        a.Lcmm.Channels.channels
        (String.concat " / "
           (Array.to_list
              (Array.map
                 (fun b -> Printf.sprintf "%.2f MB" (b /. 1e6))
                 a.Lcmm.Channels.channel_bytes)))
        (Lcmm.Channels.balance a));
    if profile then begin
      Printf.eprintf "%s pass times:\n" model;
      let assoc =
        Lcmm.Framework.pass_times_assoc p.Lcmm.Framework.pass_times
      in
      List.iter (fun (k, v) -> Printf.eprintf "  %-16s %10.0f us\n" k v) assoc;
      Printf.eprintf "  %-16s %10.0f us\n" "total"
        (List.fold_left (fun acc (_, v) -> acc +. v) 0. assoc)
    end
  in
  let fusion_arg =
    let doc =
      "Run the fused-layer segmentation and weight-streaming post-pass; \
       adds fusion summary lines to the output.  Off by default, and the \
       default output is byte-identical to a build without the pass."
    in
    Arg.(value & flag & info [ "fusion" ] ~doc)
  in
  let channels_arg =
    let doc =
      "Add a DDR channel-assignment pass mapping every stream onto this \
       many channels; a summary line joins the plan output.  1 (the \
       default) skips the pass and keeps the output byte-identical."
    in
    Arg.(value & opt int 1 & info [ "channels" ] ~docv:"N" ~doc)
  in
  let run () name dtype profile fusion channels domains =
    if channels < 1 then or_die (Error "channels must be >= 1");
    with_pool domains (fun pool ->
        match name with
        | Some name -> plan_one ?pool ~profile ~fusion ~channels dtype name
        | None ->
          List.iter
            (fun e ->
              plan_one ?pool ~profile ~fusion ~channels dtype
                e.Models.Zoo.model_name)
            Models.Zoo.all)
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Deterministic plan summary for one model (or the whole zoo), \
          suitable for golden-file comparison; --profile adds a per-pass \
          timing breakdown on stderr, --fusion runs the fused-layer / \
          weight-streaming post-pass, and --domains N plans on N worker \
          domains without changing a byte of the output.")
    Term.(
      const run $ log_arg $ model_opt_arg $ dtype_arg $ profile_arg
      $ fusion_arg $ channels_arg $ domains_arg)

let simulate_cmd =
  let run () name dtype =
    let model, g = or_die (build_model name) in
    let c = Lcmm.Framework.compare_designs ~model dtype g in
    let p = c.Lcmm.Framework.lcmm_plan in
    let m = p.Lcmm.Framework.metric in
    let umm = Sim.Engine.simulate_umm m in
    let lcmm =
      Sim.Engine.simulate ?prefetch:p.Lcmm.Framework.prefetch m
        ~on_chip:p.Lcmm.Framework.allocation.Lcmm.Dnnk.on_chip
    in
    Format.printf "simulated UMM %.3f ms, LCMM %.3f ms (x%.2f), prefetch wait %.3f ms@."
      (umm.Sim.Engine.total *. 1e3) (lcmm.Sim.Engine.total *. 1e3)
      (umm.Sim.Engine.total /. lcmm.Sim.Engine.total)
      (lcmm.Sim.Engine.prefetch_wait *. 1e3);
    let rows = Sim.Report.per_block g lcmm in
    if rows <> [] then Format.printf "%a" Sim.Report.pp_rows rows
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Discrete-event simulation of UMM vs LCMM")
    Term.(const run $ log_arg $ model_arg $ dtype_arg)

let compare_cmd =
  let run () name dtype device =
    let model, g = or_die (build_model name) in
    let c = Lcmm.Framework.compare_designs ~device ~model dtype g in
    let pr (r : Lcmm.Framework.design_report) =
      Format.printf
        "%-5s %8.3f ms %6.3f Tops %3.0f MHz dsp %3.0f%% clb %3.0f%% sram %3.0f%%@."
        r.Lcmm.Framework.style_name
        (r.Lcmm.Framework.latency_seconds *. 1e3)
        r.Lcmm.Framework.tops r.Lcmm.Framework.freq_mhz
        (100. *. r.Lcmm.Framework.dsp_util)
        (100. *. r.Lcmm.Framework.clb_util)
        (100. *. r.Lcmm.Framework.sram_util)
    in
    pr c.Lcmm.Framework.umm;
    pr c.Lcmm.Framework.lcmm;
    Format.printf "speedup x%.2f@." c.Lcmm.Framework.speedup
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"One row of the paper's Table 1")
    Term.(const run $ log_arg $ model_arg $ dtype_arg $ device_arg)

let export_cmd =
  let out_arg =
    Arg.(value & opt string "model.json" & info [ "o"; "output" ] ~doc:"Output path.")
  in
  let run () name path =
    let _, g = or_die (build_model name) in
    Dnn_serial.Codec.write_file ~path g;
    Printf.printf "wrote %s\n" path
  in
  Cmd.v (Cmd.info "export" ~doc:"Serialize a model graph to JSON")
    Term.(const run $ log_arg $ model_arg $ out_arg)

let info_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Graph JSON file.")
  in
  let run () path =
    match Dnn_serial.Codec.read_file ~path with
    | Error msg -> or_die (Error msg)
    | Ok g ->
      Printf.printf "%s: %d nodes, %.2f GMACs, %.1f MB weights (i8)\n" path
        (Dnn_graph.Graph.node_count g)
        (float_of_int (Dnn_graph.Graph.total_macs g) /. 1e9)
        (float_of_int (Dnn_graph.Graph.weight_bytes Tensor.Dtype.I8 g) /. 1e6)
  in
  Cmd.v (Cmd.info "info" ~doc:"Summarize a serialized graph")
    Term.(const run $ log_arg $ file_arg)

let schedule_cmd =
  let run () name dtype =
    let _, g = or_die (build_model name) in
    let base = Dnn_graph.Schedule.peak_live_bytes dtype g (Dnn_graph.Schedule.default g) in
    let order = Dnn_graph.Schedule.memory_aware dtype g in
    let tuned = Dnn_graph.Schedule.peak_live_bytes dtype g order in
    Printf.printf
      "peak live feature bytes: builder order %.2f MB, memory-aware %.2f MB (%.0f%%)\n"
      (float_of_int base /. 1e6)
      (float_of_int tuned /. 1e6)
      (100. *. float_of_int tuned /. float_of_int base)
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Memory-aware schedule comparison")
    Term.(const run $ log_arg $ model_arg $ dtype_arg)

let trace_cmd =
  let out_arg =
    Arg.(value & opt string "trace.json" & info [ "o"; "output" ] ~doc:"Output path.")
  in
  let run () name dtype path =
    let model, g = or_die (build_model name) in
    let c = Lcmm.Framework.compare_designs ~model dtype g in
    let p = c.Lcmm.Framework.lcmm_plan in
    let run_result =
      Sim.Engine.simulate ?prefetch:p.Lcmm.Framework.prefetch
        p.Lcmm.Framework.metric
        ~on_chip:p.Lcmm.Framework.allocation.Lcmm.Dnnk.on_chip
    in
    Sim.Trace.write_file ~path g run_result;
    Printf.printf "wrote %s (open in a Chrome-tracing viewer)\n" path
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Export a Chrome-tracing timeline of the LCMM run")
    Term.(const run $ log_arg $ model_arg $ dtype_arg $ out_arg)

let traffic_cmd =
  let run () name dtype =
    let model, g = or_die (build_model name) in
    let c = Lcmm.Framework.compare_designs ~model dtype g in
    let m = c.Lcmm.Framework.lcmm_plan.Lcmm.Framework.metric in
    let on_chip =
      c.Lcmm.Framework.lcmm_plan.Lcmm.Framework.allocation.Lcmm.Dnnk.on_chip
    in
    let show tag t =
      Printf.printf "%-5s if %8.1f MB  wt %8.1f MB  of %8.1f MB  total %8.1f MB\n"
        tag
        (float_of_int t.Lcmm.Traffic.if_bytes /. 1e6)
        (float_of_int t.Lcmm.Traffic.wt_bytes /. 1e6)
        (float_of_int t.Lcmm.Traffic.of_bytes /. 1e6)
        (float_of_int (Lcmm.Traffic.total_bytes t) /. 1e6)
    in
    show "UMM" (Lcmm.Traffic.umm m);
    show "LCMM" (Lcmm.Traffic.of_allocation m ~on_chip);
    let e = Lcmm.Traffic.energy_of_allocation m ~dtype ~on_chip in
    Printf.printf
      "LCMM energy/inference: %.3f mJ (ddr %.3f, sram %.3f, compute %.3f)\n"
      (Lcmm.Traffic.total_joules e *. 1e3)
      (e.Lcmm.Traffic.ddr_joules *. 1e3)
      (e.Lcmm.Traffic.sram_joules *. 1e3)
      (e.Lcmm.Traffic.compute_joules *. 1e3)
  in
  Cmd.v
    (Cmd.info "traffic" ~doc:"Per-inference DDR traffic and energy")
    Term.(const run $ log_arg $ model_arg $ dtype_arg)

let sensitivity_cmd =
  let run () name dtype =
    let _, g = or_die (build_model name) in
    Format.printf "%a@." (fun ppf () ->
        Lcmm.Sensitivity.pp_points ppf "ddr-eff"
          (Lcmm.Sensitivity.ddr_efficiency_sweep dtype g)) ();
    Format.printf "%a@." (fun ppf () ->
        Lcmm.Sensitivity.pp_points ppf "burst-ovh"
          (Lcmm.Sensitivity.burst_overhead_sweep dtype g)) ()
  in
  Cmd.v
    (Cmd.info "sensitivity" ~doc:"Calibration sensitivity sweeps")
    Term.(const run $ log_arg $ model_arg $ dtype_arg)

let dot_cmd =
  let out_arg =
    Arg.(value & opt string "model.dot" & info [ "o"; "output" ] ~doc:"Output path.")
  in
  let run () name path =
    let _, g = or_die (build_model name) in
    Dnn_graph.Dot.write_file ~path g;
    Printf.printf "wrote %s\n" path
  in
  Cmd.v (Cmd.info "dot" ~doc:"Export the graph as Graphviz")
    Term.(const run $ log_arg $ model_arg $ out_arg)

let runtime_cmd =
  let tenants_arg =
    let doc =
      "Tenant mix as a comma list of MODEL[:COUNT[:PRIORITY]] entries, e.g. \
       alexnet:2,vgg:1.  COUNT replicas of MODEL join the board (default 1) \
       at PRIORITY (lower = more important, default 0)."
    in
    Arg.(
      required
      & opt (some string) None
      & info [ "t"; "tenants" ] ~docv:"MIX" ~doc)
  in
  let policy_conv ~what ~known of_string to_string =
    let parse s =
      match of_string s with
      | Some p -> Ok p
      | None ->
        Error (`Msg (Printf.sprintf "unknown %s %S (known: %s)" what s known))
    in
    Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (to_string p))
  in
  let arbitration_arg =
    let cv =
      policy_conv ~what:"arbitration" ~known:"fair, priority"
        Lcmm_runtime.Arbiter.of_string Lcmm_runtime.Arbiter.to_string
    in
    Arg.(
      value
      & opt cv Lcmm_runtime.Arbiter.Fair_share
      & info [ "arbitration" ] ~doc:"Bus arbitration: fair or priority.")
  in
  let scheduler_arg =
    let cv =
      policy_conv ~what:"scheduler" ~known:"greedy, edf, optimized"
        Lcmm_runtime.Scheduler.of_string Lcmm_runtime.Scheduler.to_string
    in
    Arg.(
      value
      & opt cv Lcmm_runtime.Scheduler.Edf
      & info
          [ "scheduler"; "schedule" ]
          ~doc:"Transfer scheduler: greedy (all released transfers share the \
                bus), edf (earliest prefetch deadline first), or optimized \
                (searched transfer orders over per-channel timelines with \
                plan/schedule co-iteration; never worse than greedy or edf).")
  in
  let channels_arg =
    Arg.(
      value & opt int 1
      & info [ "channels" ]
          ~doc:"DDR channels to schedule over (>= 1).  1 is the aggregate \
                fluid-bus model; 0 means the device's DDR bank count.")
  in
  let schedule_rounds_arg =
    Arg.(
      value & opt int 3
      & info [ "schedule-rounds" ]
          ~doc:"Plan/schedule co-iteration bound for the optimized \
                scheduler.")
  in
  let partition_arg =
    let cv =
      policy_conv ~what:"partition policy" ~known:"equal, demand"
        Lcmm_runtime.Partition.of_string Lcmm_runtime.Partition.to_string
    in
    Arg.(
      value
      & opt cv Lcmm_runtime.Partition.Equal
      & info [ "partition" ] ~doc:"SRAM partition policy: equal or demand.")
  in
  let overcommit_arg =
    Arg.(
      value & opt float 4.0
      & info [ "overcommit" ]
          ~doc:"Admission bandwidth over-subscription factor (> 0).")
  in
  let stagger_arg =
    Arg.(
      value & opt float 0.
      & info [ "stagger-ms" ]
          ~doc:"Arrival stagger: tenant $(i) arrives at $(i) times this many \
                milliseconds.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ]
          ~doc:"Add deterministic pseudo-random arrival jitter from this seed.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Also write the report as JSON.")
  in
  let faults_arg =
    let cv =
      let parse s =
        match Fault.Spec.of_string s with
        | Ok spec -> Ok spec
        | Error msg -> Error (`Msg msg)
      in
      Arg.conv
        (parse, fun ppf s -> Format.pp_print_string ppf (Fault.Spec.to_string s))
    in
    Arg.(
      value
      & opt (some cv) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Seeded fault injection, e.g. \
             $(b,seed=42,droop\\@2:3:0.5,stall:0.05:0.2,fail:0.02,bankloss\\@4:256k). \
             Clauses: $(b,seed=N), $(b,droop\\@T:DUR:FACTOR) (DDR bandwidth \
             droop window, ms), $(b,stall:PROB:MS) (transient transfer \
             stalls), $(b,fail:PROB) (transfer failures, retried with capped \
             exponential backoff), $(b,retries=N), $(b,backoff=BASE:CAP) \
             (ms), $(b,bankloss\\@T:BYTES[:TENANT]) (SRAM bank loss, \
             triggering degraded-mode replanning), $(b,abort\\@T:TENANT).  A \
             spec with no active fault source reproduces the fault-free run \
             bit for bit.")
  in
  let parse_mix s =
    let entry item =
      match String.split_on_char ':' item with
      | [ name ] -> Ok (name, 1, 0)
      | [ name; count ] -> (
        match int_of_string_opt count with
        | Some c when c >= 1 -> Ok (name, c, 0)
        | _ -> Error (Printf.sprintf "bad count in %S" item))
      | [ name; count; prio ] -> (
        match (int_of_string_opt count, int_of_string_opt prio) with
        | Some c, Some p when c >= 1 -> Ok (name, c, p)
        | _ -> Error (Printf.sprintf "bad count or priority in %S" item))
      | _ -> Error (Printf.sprintf "bad tenant entry %S" item)
    in
    let items =
      List.filter (fun x -> x <> "") (String.split_on_char ',' s)
    in
    if items = [] then Error "empty tenant mix"
    else
      List.fold_left
        (fun acc item ->
          Result.bind acc (fun acc ->
              Result.map (fun e -> e :: acc) (entry item)))
        (Ok []) items
      |> Result.map List.rev
  in
  let fusion_arg =
    let doc =
      "Plan every tenant with the fused-layer segmentation and \
       weight-streaming post-pass."
    in
    Arg.(value & flag & info [ "fusion" ] ~doc)
  in
  let run () mix dtype device arbitration scheduler channels schedule_rounds
      partition overcommit stagger_ms seed json_path faults fusion domains =
    if overcommit <= 0. then or_die (Error "overcommit must be positive");
    if stagger_ms < 0. then or_die (Error "stagger-ms must be non-negative");
    if channels < 0 then or_die (Error "channels must be >= 0");
    if schedule_rounds < 1 then
      or_die (Error "schedule-rounds must be >= 1");
    let channels =
      if channels = 0 then Fpga.Device.ddr_channels device else channels
    in
    let entries = or_die (parse_mix mix) in
    let rng = Option.map (fun s -> Random.State.make [| s |]) seed in
    let counter = Hashtbl.create 8 in
    let position = ref 0 in
    let specs =
      List.concat_map
        (fun (name, count, priority) ->
          let model, graph = or_die (build_model name) in
          List.init count (fun _ ->
              let k =
                Option.value ~default:0 (Hashtbl.find_opt counter model)
              in
              Hashtbl.replace counter model (k + 1);
              let jitter =
                match rng with
                | None -> 0.
                | Some st -> Random.State.float st 5e-4
              in
              let arrival =
                (float_of_int !position *. stagger_ms /. 1e3) +. jitter
              in
              incr position;
              { Lcmm_runtime.Runtime.name = Printf.sprintf "%s#%d" model k;
                model;
                graph;
                priority;
                arrival }))
        entries
    in
    let options =
      { Lcmm_runtime.Runtime.default_options with
        dtype; device; arbitration; scheduler; channels; schedule_rounds;
        partition; overcommit; faults;
        fw_options = { Lcmm.Framework.default_options with fusion } }
    in
    let report =
      with_pool domains (fun pool ->
          Lcmm_runtime.Runtime.run ?pool options specs)
    in
    Format.printf "%a" Lcmm_runtime.Report.pp report;
    match json_path with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Dnn_serial.Json.to_string ~indent:2
           (Lcmm_runtime.Report.to_json report));
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "runtime"
       ~doc:
         "Multi-tenant board runtime: partition the device SRAM across \
          several models, re-run LCMM per tenant under its share, and \
          co-simulate them with all weight transfers contending for the \
          shared DDR bus under the chosen arbitration and transfer \
          scheduler.")
    Term.(
      const run $ log_arg $ tenants_arg $ dtype_arg $ device_arg
      $ arbitration_arg $ scheduler_arg $ channels_arg $ schedule_rounds_arg
      $ partition_arg $ overcommit_arg $ stagger_arg $ seed_arg $ json_arg
      $ faults_arg $ fusion_arg $ domains_arg)

let serve_cmd =
  let socket_arg =
    let doc =
      "Listen on a Unix domain socket at $(docv) instead of stdin/stdout."
    in
    Arg.(value & opt (some string) None & info [ "s"; "socket" ] ~docv:"PATH" ~doc)
  in
  let workers_arg =
    let doc = "Worker domains compiling plans in parallel." in
    Arg.(value & opt int 2 & info [ "w"; "workers" ] ~doc)
  in
  let cache_entries_arg =
    let doc = "Maximum plan-cache entries before LRU eviction." in
    Arg.(value & opt int 256 & info [ "cache-entries" ] ~doc)
  in
  let cache_mb_arg =
    let doc = "Maximum plan-cache payload megabytes before LRU eviction." in
    Arg.(value & opt int 64 & info [ "cache-mb" ] ~doc)
  in
  let cache_dir_arg =
    let doc =
      "Persist cached plans to $(docv) as JSON and rewarm from it on restart."
    in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let no_timing_arg =
    let doc =
      "Canonical responses: omit the cache and elapsed_ms fields, making each \
       response a pure function of its request (reproducible transcripts)."
    in
    Arg.(value & flag & info [ "no-timing" ] ~doc)
  in
  let deadline_arg =
    let doc =
      "Default per-request compute budget in milliseconds; a request that \
       runs past it answers with a structured deadline error instead of \
       stalling its connection.  Requests may override with their own \
       deadline_ms field."
    in
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let run () socket workers cache_entries cache_mb cache_dir no_timing
      deadline_ms =
    if workers < 1 then or_die (Error "workers must be >= 1");
    if cache_entries < 1 then or_die (Error "cache-entries must be >= 1");
    if cache_mb < 1 then or_die (Error "cache-mb must be >= 1");
    (match deadline_ms with
    | Some ms when ms <= 0. -> or_die (Error "deadline-ms must be positive")
    | _ -> ());
    let cache =
      Lcmm_service.Plan_cache.create ~max_entries:cache_entries
        ~max_bytes:(cache_mb * 1024 * 1024) ?persist_dir:cache_dir ()
    in
    let pool = Lcmm_service.Pool.create ~domains:workers () in
    let engine = Lcmm_service.Engine.create ~cache ~pool ?deadline_ms () in
    let timing = not no_timing in
    Fun.protect
      ~finally:(fun () -> Lcmm_service.Engine.shutdown engine)
      (fun () ->
        match socket with
        | Some path -> Lcmm_service.Server.serve_unix_socket ~timing engine ~path
        | None -> Lcmm_service.Server.serve_stdio ~timing engine)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the plan-compilation service: newline-delimited JSON requests \
          (compile, simulate, run, batch, stats, models) from stdin or a \
          Unix socket, answered from a content-addressed plan cache backed \
          by a multi-domain worker pool.")
    Term.(
      const run $ log_arg $ socket_arg $ workers_arg $ cache_entries_arg
      $ cache_mb_arg $ cache_dir_arg $ no_timing_arg $ deadline_arg)

let check_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed of the run.")
  in
  let count_arg =
    Arg.(value & opt int 100 & info [ "n"; "count" ] ~doc:"Number of random graphs.")
  in
  let max_nodes_arg =
    Arg.(
      value
      & opt int Check.Runner.default_max_nodes
      & info [ "max-nodes" ] ~doc:"Largest generated graph.")
  in
  let oracle_arg =
    let doc =
      Printf.sprintf "Run only this oracle (repeatable).  Known: %s."
        (String.concat ", " Check.Oracle.names)
    in
    Arg.(value & opt_all string [] & info [ "oracle" ] ~docv:"NAME" ~doc)
  in
  let replay_arg =
    let doc = "Re-run the oracles on a persisted failure case instead of fuzzing." in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let save_dir_arg =
    let doc = "Directory where shrunk failing cases are persisted as JSON." in
    Arg.(value & opt string "." & info [ "save-dir" ] ~docv:"DIR" ~doc)
  in
  let run () seed count max_nodes oracle_names replay save_dir =
    let oracles =
      match oracle_names with
      | [] -> Check.Oracle.all
      | names ->
        List.map
          (fun name ->
            match Check.Oracle.find name with
            | Some o -> o
            | None ->
              or_die
                (Error
                   (Printf.sprintf "unknown oracle %S; known: %s" name
                      (String.concat ", " Check.Oracle.names))))
          names
    in
    let report (outcome : Check.Runner.outcome) =
      List.iter
        (fun (f : Check.Runner.failure) ->
          Printf.printf
            "FAIL case %d (%s): oracle %s\n  %s\n  counterexample: %d nodes (from %d)%s\n"
            f.Check.Runner.case_index f.Check.Runner.family f.Check.Runner.oracle
            f.Check.Runner.message f.Check.Runner.shrunk_nodes
            f.Check.Runner.original_nodes
            (match f.Check.Runner.saved_path with
            | Some p -> Printf.sprintf "\n  saved: %s" p
            | None -> ""))
        outcome.Check.Runner.failures;
      Printf.printf "checked %d case(s), %d oracle run(s): %s\n"
        outcome.Check.Runner.cases outcome.Check.Runner.oracle_runs
        (match outcome.Check.Runner.failures with
        | [] -> "all invariants held"
        | fs -> Printf.sprintf "%d FAILURE(S)" (List.length fs));
      if outcome.Check.Runner.failures <> [] then exit 1
    in
    match replay with
    | Some path -> report (or_die (Check.Runner.replay ~oracles ~path ()))
    | None ->
      if count < 1 then or_die (Error "count must be >= 1");
      if max_nodes < 1 then or_die (Error "max-nodes must be >= 1");
      report
        (Check.Runner.run ~oracles ~save_dir ~max_nodes ~seed ~count ())
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Property-based differential verification: fuzz the LCMM passes with \
          random adversarial graphs, checking every pass against its invariants, \
          the exact solver and the simulator; failures are shrunk and persisted \
          as replayable JSON.")
    Term.(
      const run $ log_arg $ seed_arg $ count_arg $ max_nodes_arg $ oracle_arg
      $ replay_arg $ save_dir_arg)

(* --- sharded tier --- *)

let rm_rf_sockets dir =
  (* Only what the tier itself created: socket files and the (then
     empty) socket directory. *)
  match Sys.readdir dir with
  | entries ->
    Array.iter
      (fun e ->
        let p = Filename.concat dir e in
        if Filename.check_suffix e ".sock" then
          try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
      entries;
    (try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ())
  | exception Sys_error _ -> ()

let tier_socket_dir () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lcmm-tier-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

(* Spawn [shards] copies of this very binary as `lcmm serve --socket ...`
   children and build the router over them.  Returns the tier and a
   cleanup closure (idempotent: kill + reap every child, remove every
   socket file). *)
let spawn_tier ~shards ~workers ~vnodes ~max_inflight ~cache_entries
    ~cache_mb ~cache_dir ~deadline_ms ~router_cache_entries ~router_cache_mb
    ~timing ?retries ?retry_backoff_ms ?hedge_ms ?hedge_quantile
    ?call_timeout_ms ?probe_interval_ms ?chaos ?breaker_threshold
    ?breaker_cooldown_s ~socket_dir () =
  if shards < 1 then or_die (Error "shards must be >= 1");
  if workers < 1 then or_die (Error "workers must be >= 1");
  let spawned = ref [] in
  let cleanup () =
    List.iter Lcmm_tier.Shard.stop !spawned;
    spawned := [];
    rm_rf_sockets socket_dir
  in
  let shard_of i =
    let name = Printf.sprintf "shard-%d" i in
    let socket = Filename.concat socket_dir (name ^ ".sock") in
    let argv =
      [ Sys.executable_name; "serve"; "--socket"; socket; "--workers";
        string_of_int workers; "--cache-entries"; string_of_int cache_entries;
        "--cache-mb"; string_of_int cache_mb ]
      @ (match cache_dir with
        | None -> []
        | Some dir -> [ "--cache-dir"; Filename.concat dir name ])
      @
      match deadline_ms with
      | None -> []
      | Some ms -> [ "--deadline-ms"; string_of_float ms ]
    in
    match
      Lcmm_tier.Shard.spawn ~name ~socket ~max_inflight ?breaker_threshold
        ?breaker_cooldown_s (Array.of_list argv)
    with
    | Ok s ->
      spawned := s :: !spawned;
      s
    | Error msg ->
      cleanup ();
      or_die (Error msg)
  in
  let shard_list = List.init shards shard_of in
  let ring =
    Lcmm_tier.Ring.create ~vnodes (List.map Lcmm_tier.Shard.name shard_list)
  in
  let tier =
    Lcmm_tier.Tier.create ~router_cache_entries ~router_cache_mb ?deadline_ms
      ~timing ?retries ?retry_backoff_ms ?hedge_ms ?hedge_quantile
      ?call_timeout_ms ?probe_interval_ms ?chaos ~ring ~shards:shard_list ()
  in
  (tier, cleanup)

(* The --chaos / --faults spec syntax shared by the tier and the chaos
   bench; a malformed spec is a CLI error (cmdliner exits 124) carrying
   the parser's clause-and-position diagnosis. *)
let fault_spec_conv =
  let parse s =
    match Fault.Spec.of_string s with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    (parse, fun ppf s -> Format.pp_print_string ppf (Fault.Spec.to_string s))

let chaos_arg =
  let doc =
    "Seeded transport-fault injection on the router->shard path, e.g. \
     $(b,seed=42,delay:0.1:40,hang:0.02,trunc:0.02,corrupt:0.02,reset:0.05,slowshard\\@0:3).  \
     A spec with no transport clauses (or no --chaos at all) leaves the \
     tier's output byte-identical to a fault-free run."
  in
  Arg.(value & opt (some fault_spec_conv) None & info [ "chaos" ] ~docv:"SPEC" ~doc)

let retries_arg =
  let doc =
    "Extra compute attempts per candidate shard after a transport failure \
     or an invalid reply (0 disables retries)."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~doc)

let retry_backoff_arg =
  let doc =
    "Base backoff in milliseconds before a retry; doubles per attempt, \
     capped at 8x and at the request's remaining deadline."
  in
  Arg.(value & opt float 25. & info [ "retry-backoff-ms" ] ~doc)

let hedge_ms_arg =
  let doc =
    "Hedge a compute call against the next shard in ring order once the \
     primary has been quiet for $(docv) milliseconds."
  in
  Arg.(value & opt (some float) None & info [ "hedge-ms" ] ~docv:"MS" ~doc)

let hedge_quantile_arg =
  let doc =
    "Adaptive hedging: hedge once the primary exceeds this quantile (in \
     (0,1), e.g. 0.95) of observed compute-call latency."
  in
  Arg.(value & opt (some float) None & info [ "hedge-quantile" ] ~docv:"Q" ~doc)

let call_timeout_arg =
  let doc =
    "Per-call reply timeout in milliseconds on every shard connection; a \
     hung shard surfaces as a transport failure instead of wedging the \
     router."
  in
  Arg.(value & opt (some float) None & info [ "call-timeout-ms" ] ~docv:"MS" ~doc)

let probe_interval_arg =
  let doc =
    "Background health-probe interval in milliseconds: every non-up shard \
     gets a stats roundtrip that can close its breaker without waiting for \
     live traffic."
  in
  Arg.(
    value & opt (some float) None & info [ "probe-interval-ms" ] ~docv:"MS" ~doc)

let breaker_threshold_arg =
  let doc = "Consecutive transport failures that open a shard's breaker." in
  Arg.(value & opt (some int) None & info [ "breaker-threshold" ] ~docv:"N" ~doc)

let breaker_cooldown_arg =
  let doc = "Milliseconds an opened shard breaker stays open." in
  Arg.(
    value
    & opt (some float) None
    & info [ "breaker-cooldown-ms" ] ~docv:"MS" ~doc)

let shards_arg =
  let doc = "Number of backend shard processes." in
  Arg.(value & opt int 2 & info [ "shards" ] ~doc)

let tier_workers_arg =
  let doc = "Worker domains per shard." in
  Arg.(value & opt int 2 & info [ "w"; "workers" ] ~doc)

let vnodes_arg =
  let doc = "Virtual nodes per shard on the hash ring." in
  Arg.(value & opt int 64 & info [ "vnodes" ] ~doc)

let max_inflight_arg =
  let doc =
    "Per-shard in-flight request bound; beyond it requests are shed with a \
     structured overloaded error."
  in
  Arg.(value & opt int 64 & info [ "max-inflight" ] ~doc)

let tier_cmd =
  let socket_arg =
    let doc =
      "Serve the tier's front on a Unix domain socket at $(docv) instead of \
       stdin/stdout."
    in
    Arg.(value & opt (some string) None & info [ "s"; "socket" ] ~docv:"PATH" ~doc)
  in
  let cache_entries_arg =
    let doc = "Maximum plan-cache entries per shard." in
    Arg.(value & opt int 256 & info [ "cache-entries" ] ~doc)
  in
  let cache_mb_arg =
    let doc = "Maximum plan-cache payload megabytes per shard." in
    Arg.(value & opt int 64 & info [ "cache-mb" ] ~doc)
  in
  let cache_dir_arg =
    let doc =
      "Root of the shards' disk caches: shard $(i)i gets $(docv)/shard-$(i)i."
    in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let router_cache_entries_arg =
    let doc = "Maximum router front-cache entries." in
    Arg.(value & opt int 512 & info [ "router-cache-entries" ] ~doc)
  in
  let router_cache_mb_arg =
    let doc = "Maximum router front-cache megabytes." in
    Arg.(value & opt int 64 & info [ "router-cache-mb" ] ~doc)
  in
  let no_timing_arg =
    let doc =
      "Canonical responses: omit the cache and elapsed_ms fields (byte-exact \
       with a single-process serve answering the same requests)."
    in
    Arg.(value & flag & info [ "no-timing" ] ~doc)
  in
  let deadline_arg =
    let doc =
      "Default per-request compute budget in milliseconds, injected into \
       forwarded requests that carry none of their own."
    in
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let socket_dir_arg =
    let doc = "Directory for the shard sockets (default: a fresh temp dir)." in
    Arg.(value & opt (some string) None & info [ "socket-dir" ] ~docv:"DIR" ~doc)
  in
  let run () shards workers vnodes max_inflight socket cache_entries cache_mb
      cache_dir router_cache_entries router_cache_mb no_timing deadline_ms
      socket_dir chaos_spec retries retry_backoff_ms hedge_ms hedge_quantile
      call_timeout_ms probe_interval_ms breaker_threshold breaker_cooldown_ms
      drain_timeout_s =
    if cache_entries < 1 then or_die (Error "cache-entries must be >= 1");
    if cache_mb < 1 then or_die (Error "cache-mb must be >= 1");
    (match deadline_ms with
    | Some ms when ms <= 0. -> or_die (Error "deadline-ms must be positive")
    | _ -> ());
    if retries < 0 then or_die (Error "retries must be >= 0");
    if drain_timeout_s <= 0. then
      or_die (Error "drain-timeout-s must be positive");
    let socket_dir =
      match socket_dir with
      | Some dir ->
        (try Unix.mkdir dir 0o700
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        dir
      | None -> tier_socket_dir ()
    in
    let chaos = Option.bind chaos_spec Lcmm_tier.Chaos.create in
    (match (chaos_spec, chaos) with
    | Some spec, None ->
      Printf.eprintf
        "lcmm tier: --chaos %S has no transport clauses; running fault-free\n%!"
        (Fault.Spec.to_string spec)
    | _ -> ());
    let tier, cleanup =
      spawn_tier ~shards ~workers ~vnodes ~max_inflight ~cache_entries
        ~cache_mb ~cache_dir ~deadline_ms ~router_cache_entries
        ~router_cache_mb ~timing:(not no_timing) ~retries ~retry_backoff_ms
        ?hedge_ms ?hedge_quantile ?call_timeout_ms ?probe_interval_ms ?chaos
        ?breaker_threshold
        ?breaker_cooldown_s:(Option.map (fun ms -> ms /. 1e3)
                               breaker_cooldown_ms)
        ~socket_dir ()
    in
    (* The shard processes and socket files must die with the tier —
       on EOF, on an uncaught error, and on SIGTERM/SIGINT (exit runs
       the at_exit cleanup). *)
    at_exit cleanup;
    (* SIGTERM is the graceful path: stop admitting, let in-flight
       requests finish rendering, push the router cache back to the
       owning shards, then exit 0 (which runs the at_exit cleanup, so
       no shard process or socket file survives).  SIGINT stays the
       abrupt path.  The handler only flips a latch and hands the work
       to a thread — drain waits on in-flight requests, which a signal
       handler must never block on. *)
    let drain_started = Atomic.make false in
    let on_sigterm =
      Sys.Signal_handle
        (fun _ ->
          if not (Atomic.exchange drain_started true) then
            ignore
              (Thread.create
                 (fun () ->
                   let flushed =
                     Lcmm_tier.Tier.drain ~timeout_s:drain_timeout_s tier
                   in
                   Printf.eprintf
                     "lcmm tier: drained, %d cache entries flushed\n%!"
                     flushed;
                   (* Give the server loop a beat to write the response
                      of the request that just left the in-flight gate. *)
                   Thread.delay 0.1;
                   exit 0)
                 ()))
    in
    (try Sys.set_signal Sys.sigterm on_sigterm
     with Invalid_argument _ | Sys_error _ -> ());
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> exit 130))
     with Invalid_argument _ | Sys_error _ -> ());
    (* A client closing our stdout mid-stream (`lcmm tier | head`) must
       surface as a write error, not a process-killing SIGPIPE — dying
       on the signal would skip cleanup and orphan every shard. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    let handler = Lcmm_tier.Tier.handle_line tier in
    Fun.protect ~finally:cleanup (fun () ->
        try
          match socket with
          | Some path ->
            Lcmm_service.Server.serve_unix_socket_with handler ~path
          | None ->
            Lcmm_service.Server.serve_channels_with handler stdin stdout
        with Sys_error _ ->
          (* Broken stdout is the client hanging up: a clean shutdown. *)
          ())
  in
  let drain_timeout_arg =
    let doc =
      "Seconds the SIGTERM drain waits for in-flight requests before \
       flushing the cache and exiting anyway."
    in
    Arg.(value & opt float 10. & info [ "drain-timeout-s" ] ~doc)
  in
  Cmd.v
    (Cmd.info "tier"
       ~doc:
         "Run the sharded plan-compilation tier: a consistent-hash router \
          over N supervised serve processes, with a router-side LRU, \
          shard-local disk caches, peer cache fill between shards, per-shard \
          circuit breakers, overload shedding, retries, hedging, deadline \
          propagation, health probes, graceful SIGTERM drain and seeded \
          chaos injection.")
    Term.(
      const run $ log_arg $ shards_arg $ tier_workers_arg $ vnodes_arg
      $ max_inflight_arg $ socket_arg $ cache_entries_arg $ cache_mb_arg
      $ cache_dir_arg $ router_cache_entries_arg $ router_cache_mb_arg
      $ no_timing_arg $ deadline_arg $ socket_dir_arg $ chaos_arg
      $ retries_arg $ retry_backoff_arg $ hedge_ms_arg $ hedge_quantile_arg
      $ call_timeout_arg $ probe_interval_arg $ breaker_threshold_arg
      $ breaker_cooldown_arg $ drain_timeout_arg)

let bench_serve_cmd =
  let shard_counts_arg =
    let doc = "Comma-separated shard counts to bench (e.g. 1,2,4)." in
    Arg.(value & opt string "1,2,4" & info [ "shard-counts" ] ~doc)
  in
  let rps_arg =
    let doc = "Offered request rate of the measured run." in
    Arg.(value & opt float 200. & info [ "rps" ] ~doc)
  in
  let duration_arg =
    let doc = "Seconds per load step." in
    Arg.(value & opt float 2. & info [ "duration" ] ~doc)
  in
  let slo_arg =
    let doc = "p99 latency SLO in milliseconds (gates slo_pass)." in
    Arg.(value & opt float 250. & info [ "slo-p99-ms" ] ~doc)
  in
  let threads_arg =
    let doc = "Load-generator sender threads." in
    Arg.(value & opt int 8 & info [ "threads" ] ~doc)
  in
  let sat_steps_arg =
    let doc = "Maximum rate doublings in the saturation search." in
    Arg.(value & opt int 4 & info [ "sat-steps" ] ~doc)
  in
  let mix_models_arg =
    let doc = "Zoo models in the request mix (smallest first)." in
    Arg.(value & opt int 4 & info [ "mix-models" ] ~doc)
  in
  let json_arg =
    let doc = "Write the report to $(docv)." in
    Arg.(value & opt string "BENCH_serve.json" & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run () shard_counts workers rps duration slo_p99_ms threads sat_steps
      mix_models json_path =
    let counts =
      String.split_on_char ',' shard_counts
      |> List.filter_map (fun s ->
             let s = String.trim s in
             if s = "" then None else Some s)
      |> List.map (fun s ->
             match int_of_string_opt s with
             | Some n when n >= 1 -> n
             | _ -> or_die (Error (Printf.sprintf "bad shard count %S" s)))
    in
    if counts = [] then or_die (Error "no shard counts given");
    if rps <= 0. then or_die (Error "rps must be positive");
    if duration <= 0. then or_die (Error "duration must be positive");
    let mix = Lcmm_tier.Loadgen.zoo_mix ~models:mix_models () in
    let bench_tier n =
      Printf.eprintf "bench serve: %d shard(s)...\n%!" n;
      let socket_dir = tier_socket_dir () in
      let tier, cleanup =
        spawn_tier ~shards:n ~workers ~vnodes:64 ~max_inflight:64
          ~cache_entries:256 ~cache_mb:64 ~cache_dir:None ~deadline_ms:None
          ~router_cache_entries:512 ~router_cache_mb:64 ~timing:false
          ~socket_dir ()
      in
      Fun.protect ~finally:cleanup (fun () ->
          let handler = Lcmm_tier.Tier.handle_line tier in
          (* Warm every plan once so the measured run exercises the
             serving path, not first-compile cost. *)
          List.iter (fun line -> ignore (handler line)) mix;
          let measured =
            Lcmm_tier.Loadgen.run ~handler ~mix ~rps ~duration_s:duration
              ~threads ()
          in
          let saturation_rps, steps =
            Lcmm_tier.Loadgen.find_saturation ~handler ~mix ~start_rps:rps
              ~duration_s:duration ~slo_p99_ms ~threads ~max_steps:sat_steps
              ()
          in
          Printf.eprintf
            "  %d shard(s): p50 %.2f ms  p99 %.2f ms  p999 %.2f ms  \
             saturation %.0f rps\n%!"
            n measured.Lcmm_tier.Loadgen.p50_ms
            measured.Lcmm_tier.Loadgen.p99_ms
            measured.Lcmm_tier.Loadgen.p999_ms saturation_rps;
          (n, measured, saturation_rps, steps))
    in
    let tiers = List.map bench_tier counts in
    let slo_pass =
      List.for_all
        (fun (_, m, _, _) -> m.Lcmm_tier.Loadgen.p99_ms <= slo_p99_ms)
        tiers
    in
    let module Json = Dnn_serial.Json in
    let doc =
      Json.Obj
        [ ("experiment", Json.String "serve");
          ("slo_p99_ms", Json.Float slo_p99_ms);
          ("mix_requests", Json.Int (List.length mix));
          ( "tiers",
            Json.List
              (List.map
                 (fun (n, m, saturation_rps, steps) ->
                   Json.Obj
                     [ ("shards", Json.Int n);
                       ("measured", Lcmm_tier.Loadgen.result_to_json m);
                       ("saturation_rps", Json.Float saturation_rps);
                       ( "ladder",
                         Json.List
                           (List.map Lcmm_tier.Loadgen.result_to_json steps)
                       ) ])
                 tiers) );
          ("slo_pass", Json.Bool slo_pass) ]
    in
    let oc = open_out json_path in
    output_string oc (Json.to_string ~indent:2 doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s (slo_pass: %b)\n" json_path slo_pass
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Open-loop load benchmark of the sharded tier: drive a zoo-sampled \
          request mix at a configured RPS against each shard count, report \
          p50/p99/p999 latency and the saturation RPS ladder to a JSON file \
          with a p99 SLO verdict.")
    Term.(
      const run $ log_arg $ shard_counts_arg $ tier_workers_arg $ rps_arg
      $ duration_arg $ slo_arg $ threads_arg $ sat_steps_arg $ mix_models_arg
      $ json_arg)

(* bench chaos: the zoo mix through a deliberately faulty tier, over a
   ladder of fault intensities.  The report answers three questions:
   how much availability the resilience layer preserves (retries,
   hedges, failover), whether any fault ever reached a client as a
   silently wrong answer (every success is compared byte-for-byte
   against a fault-free reference), and whether the injection itself is
   reproducible (a digest over the per-rung fault/recovery counters —
   two runs with the same spec and seed must produce the same
   fingerprint). *)
let bench_chaos_cmd =
  let chaos_spec_arg =
    let doc =
      "Transport-fault spec driven through the intensity ladder (the \
       probabilities scale, the magnitudes do not)."
    in
    Arg.(
      value
      & opt fault_spec_conv
          (match
             Fault.Spec.of_string
               "seed=42,delay:0.08:40,hang:0.02,trunc:0.02,corrupt:0.02,reset:0.03"
           with
          | Ok s -> s
          | Error _ -> Fault.Spec.empty)
      & info [ "chaos" ] ~docv:"SPEC" ~doc)
  in
  let intensities_arg =
    let doc =
      "Comma-separated probability multipliers, one bench rung each."
    in
    Arg.(value & opt string "0.25,0.5,1.0" & info [ "intensities" ] ~doc)
  in
  let requests_arg =
    let doc = "Requests per rung (driven single-threaded, unpaced)." in
    Arg.(value & opt int 300 & info [ "requests" ] ~doc)
  in
  let mix_models_arg =
    let doc = "Zoo models in the request mix (smallest first)." in
    Arg.(value & opt int 4 & info [ "mix-models" ] ~doc)
  in
  let availability_floor_arg =
    let doc = "Availability the middle rung must meet (gates chaos_pass)." in
    Arg.(value & opt float 0.99 & info [ "availability-floor" ] ~doc)
  in
  let json_arg =
    let doc = "Write the report to $(docv)." in
    Arg.(
      value & opt string "BENCH_chaos.json" & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run () spec intensities workers shards retries hedge_ms call_timeout_ms
      requests mix_models availability_floor json_path =
    if not (Fault.Spec.has_transport_faults spec) then
      or_die (Error "the --chaos spec has no transport clauses");
    if requests < 1 then or_die (Error "requests must be >= 1");
    let intensities =
      String.split_on_char ',' intensities
      |> List.filter_map (fun s ->
             let s = String.trim s in
             if s = "" then None else Some s)
      |> List.map (fun s ->
             match float_of_string_opt s with
             | Some f when f > 0. -> f
             | _ -> or_die (Error (Printf.sprintf "bad intensity %S" s)))
    in
    if intensities = [] then or_die (Error "no intensities given");
    let module Json = Dnn_serial.Json in
    let module Tier = Lcmm_tier.Tier in
    let module Loadgen = Lcmm_tier.Loadgen in
    let mix = Loadgen.zoo_mix ~models:mix_models () in
    (* The fault-free reference: an in-process engine rendering
       canonical (timing-free) responses — exactly the bytes the tier
       must re-render when it answers the same request correctly.
       [stats] answers are tier-specific and exempt. *)
    let reference_engine = Lcmm_service.Engine.create () in
    let reference_tbl = Hashtbl.create 16 in
    List.iter
      (fun line ->
        match Json.of_string line with
        | Ok doc
          when Json.member_opt "op" doc = Some (Json.String "stats") ->
          ()
        | _ ->
          Hashtbl.replace reference_tbl line
            (Lcmm_service.Engine.handle_line ~timing:false reference_engine
               line))
      mix;
    Lcmm_service.Engine.shutdown reference_engine;
    let socket_dir = tier_socket_dir () in
    (* Determinism over realism for the breaker: a huge threshold keeps
       injected failures from tripping circuits whose open/close timing
       would couple the counters to the wall clock. *)
    let tier, cleanup =
      spawn_tier ~shards ~workers ~vnodes:64 ~max_inflight:64
        ~cache_entries:256 ~cache_mb:64 ~cache_dir:None ~deadline_ms:None
        ~router_cache_entries:1 ~router_cache_mb:1 ~timing:false ~retries
        ~hedge_ms ~call_timeout_ms ~breaker_threshold:1_000_000 ~socket_dir ()
    in
    Fun.protect ~finally:cleanup (fun () ->
        let handler = Tier.handle_line tier in
        (* Warm the shard caches fault-free so rung traffic measures
           the serving path; the router cache is minimal (1 entry) so
           warm requests cannot short-circuit later rungs away from the
           wire the chaos injector sits on. *)
        List.iter (fun line -> ignore (handler line)) mix;
        let counters_before = ref (Tier.counter_list tier) in
        let delta after =
          List.map
            (fun (k, v) ->
              let v0 =
                match List.assoc_opt k !counters_before with
                | Some v0 -> v0
                | None -> 0
              in
              (k, v - v0))
            after
        in
        let bench_rung intensity =
          Printf.eprintf "bench chaos: intensity %.2f...\n%!" intensity;
          let rung_spec = Fault.Spec.scale_transport spec intensity in
          let chaos =
            match Lcmm_tier.Chaos.create rung_spec with
            | Some c -> c
            | None -> or_die (Error "scaled spec lost its transport clauses")
          in
          Tier.set_chaos tier (Some chaos);
          let measured =
            Loadgen.run ~handler ~mix ~rps:(float_of_int requests)
              ~duration_s:1.0 ~threads:1
              ~reference:(fun line -> Hashtbl.find_opt reference_tbl line)
              ()
          in
          Tier.set_chaos tier None;
          let after = Tier.counter_list tier in
          let tier_delta = delta after in
          counters_before := after;
          let availability =
            float_of_int measured.Loadgen.ok
            /. float_of_int (max 1 measured.Loadgen.sent)
          in
          Printf.eprintf
            "  intensity %.2f: availability %.4f  p99 %.2f ms  divergent %d\n%!"
            intensity availability measured.Loadgen.p99_ms
            measured.Loadgen.divergent;
          (intensity, rung_spec, measured, availability,
           Lcmm_tier.Chaos.counter_list chaos, tier_delta)
        in
        let rungs = List.map bench_rung intensities in
        (* The reproducibility fingerprint: every injected-fault and
           recovery counter of every rung, in a canonical rendering.
           Same spec + seed + request stream => same digest. *)
        let fingerprint =
          rungs
          |> List.map (fun (intensity, _, m, _, chaos_counters, tier_delta) ->
                 Printf.sprintf "%.4f|%s|%s|ok=%d;err=%d;div=%d" intensity
                   (String.concat ";"
                      (List.map
                         (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                         chaos_counters))
                   (String.concat ";"
                      (List.map
                         (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                         (List.filter
                            (fun (k, _) ->
                              List.mem k
                                [ "retries"; "hedges"; "hedge_wins";
                                  "invalid_replies" ])
                            tier_delta)))
                   m.Loadgen.ok m.Loadgen.errors m.Loadgen.divergent)
          |> String.concat "\n"
          |> Dnn_serial.Codec.digest_string
        in
        let mid_availability =
          let n = List.length rungs in
          match List.nth_opt rungs (n / 2) with
          | Some (_, _, _, a, _, _) -> a
          | None -> 0.
        in
        let divergent_total =
          List.fold_left
            (fun acc (_, _, m, _, _, _) -> acc + m.Loadgen.divergent)
            0 rungs
        in
        let availability_pass = mid_availability >= availability_floor in
        let integrity_pass = divergent_total = 0 in
        let doc =
          Json.Obj
            [ ("experiment", Json.String "chaos");
              ("spec", Json.String (Fault.Spec.to_string spec));
              ("requests_per_rung", Json.Int requests);
              ("shards", Json.Int shards);
              ("retries", Json.Int retries);
              ("hedge_ms", Json.Float hedge_ms);
              ("call_timeout_ms", Json.Float call_timeout_ms);
              ( "rungs",
                Json.List
                  (List.map
                     (fun ( intensity, rung_spec, m, availability,
                            chaos_counters, tier_delta ) ->
                       Json.Obj
                         [ ("intensity", Json.Float intensity);
                           ( "spec",
                             Json.String (Fault.Spec.to_string rung_spec) );
                           ("availability", Json.Float availability);
                           ("measured", Loadgen.result_to_json m);
                           ( "injected",
                             Json.Obj
                               (List.map
                                  (fun (k, v) -> (k, Json.Int v))
                                  chaos_counters) );
                           ( "tier",
                             Json.Obj
                               (List.map
                                  (fun (k, v) -> (k, Json.Int v))
                                  tier_delta) ) ])
                     rungs) );
              ("mid_availability", Json.Float mid_availability);
              ("availability_floor", Json.Float availability_floor);
              ("divergent_total", Json.Int divergent_total);
              ("counter_fingerprint", Json.String fingerprint);
              ("availability_pass", Json.Bool availability_pass);
              ("integrity_pass", Json.Bool integrity_pass);
              ( "chaos_pass",
                Json.Bool (availability_pass && integrity_pass) ) ]
        in
        let oc = open_out json_path in
        output_string oc (Json.to_string ~indent:2 doc);
        output_char oc '\n';
        close_out oc;
        Printf.printf
          "wrote %s (availability_pass: %b, integrity_pass: %b, fingerprint: \
           %s)\n"
          json_path availability_pass integrity_pass fingerprint)
  in
  let shards_arg =
    let doc = "Backend shard processes." in
    Arg.(value & opt int 2 & info [ "shards" ] ~doc)
  in
  let retries_arg =
    let doc = "Retry budget per candidate shard." in
    Arg.(value & opt int 2 & info [ "retries" ] ~doc)
  in
  let hedge_ms_arg =
    let doc = "Hedge threshold in milliseconds." in
    Arg.(value & opt float 150. & info [ "hedge-ms" ] ~doc)
  in
  let call_timeout_arg =
    let doc = "Per-call reply timeout in milliseconds." in
    Arg.(value & opt float 250. & info [ "call-timeout-ms" ] ~doc)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Chaos soak of the sharded tier: drive the zoo mix through a \
          seeded transport-fault injector over an intensity ladder; report \
          availability, tail latency, injected-fault and recovery counters, \
          verify every successful response byte-identical to a fault-free \
          reference, and fingerprint the counters for reproducibility.")
    Term.(
      const run $ log_arg $ chaos_spec_arg $ intensities_arg
      $ tier_workers_arg $ shards_arg $ retries_arg $ hedge_ms_arg
      $ call_timeout_arg $ requests_arg $ mix_models_arg
      $ availability_floor_arg $ json_arg)

let bench_fusion_cmd =
  let json_arg =
    let doc = "Write the report to $(docv)." in
    Arg.(
      value & opt string "BENCH_fusion.json" & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run () dtype json_path domains =
    let module F = Lcmm.Framework in
    let module Fz = Lcmm_fusion.Fusion in
    let module Seg = Lcmm_fusion.Segmentation in
    let module Json = Dnn_serial.Json in
    let options = { F.default_options with F.fusion = true } in
    let rows, wins, saved =
      with_pool domains (fun pool ->
          List.fold_left
            (fun (rows, wins, saved) e ->
              let name = e.Models.Zoo.model_name in
              let model, g = or_die (build_model name) in
              let c = F.compare_designs ~options ?pool ~model dtype g in
              let base = c.F.lcmm_plan in
              let fz = Fz.apply ?pool base in
              let capacity = Accel.Config.sram_budget_bytes base.F.config in
              let tile =
                Lcmm.Policies.run base.F.metric ~dtype ~capacity_bytes:capacity
                  [] Lcmm.Policies.Stream_tile
              in
              let tile_traffic =
                Lcmm.Traffic.of_allocation base.F.metric
                  ~on_chip:tile.Lcmm.Policies.on_chip
              in
              let umm_traffic = Lcmm.Traffic.umm base.F.metric in
              let lcmm_ddr = Lcmm.Traffic.total_bytes fz.Fz.base_traffic in
              let fusion_ddr = Lcmm.Traffic.total_bytes fz.Fz.traffic in
              Printf.eprintf
                "bench fusion: %-12s LCMM %.3f ms / %d B  ->  +fusion %.3f \
                 ms / %d B (%d seg, %d streamed)\n\
                 %!"
                model
                (base.F.predicted_latency *. 1e3)
                lcmm_ddr
                (fz.Fz.predicted_latency *. 1e3)
                fusion_ddr
                (List.length fz.Fz.segments)
                (List.length fz.Fz.streamed);
              let row =
                Json.Obj
                  [ ("model", Json.String model);
                    ( "umm",
                      Json.Obj
                        [ ( "latency_ms",
                            Json.Float
                              (c.F.umm.F.latency_seconds *. 1e3) );
                          ( "ddr_bytes",
                            Json.Int (Lcmm.Traffic.total_bytes umm_traffic) )
                        ] );
                    ( "lcmm",
                      Json.Obj
                        [ ( "latency_ms",
                            Json.Float (base.F.predicted_latency *. 1e3) );
                          ("ddr_bytes", Json.Int lcmm_ddr);
                          ("sram_bytes", Json.Int base.F.tensor_sram_bytes) ]
                    );
                    ( "lcmm_fusion",
                      Json.Obj
                        [ ( "latency_ms",
                            Json.Float (fz.Fz.predicted_latency *. 1e3) );
                          ("ddr_bytes", Json.Int fusion_ddr);
                          ("ddr_bytes_saved", Json.Int (Fz.ddr_bytes_saved fz));
                          ("segments", Json.Int (List.length fz.Fz.segments));
                          ( "fused_nodes",
                            Json.Int
                              (List.fold_left
                                 (fun a (s : Seg.segment) ->
                                   a + s.Seg.last - s.Seg.first + 1)
                                 0 fz.Fz.segments) );
                          ( "streamed_weights",
                            Json.Int (List.length fz.Fz.streamed) );
                          ("fifo_bytes", Json.Int fz.Fz.fifo_bytes);
                          ("peak_sram_bytes", Json.Int fz.Fz.peak_sram_bytes)
                        ] );
                    ( "stream_tile",
                      Json.Obj
                        [ ( "latency_ms",
                            Json.Float (tile.Lcmm.Policies.latency *. 1e3) );
                          ( "ddr_bytes",
                            Json.Int (Lcmm.Traffic.total_bytes tile_traffic) );
                          ( "feasible",
                            Json.Bool tile.Lcmm.Policies.feasible ) ] ) ]
              in
              ( row :: rows,
                (if fusion_ddr < lcmm_ddr then wins + 1 else wins),
                saved + Fz.ddr_bytes_saved fz ))
            ([], 0, 0) Models.Zoo.all)
    in
    let doc =
      Json.Obj
        [ ("experiment", Json.String "fusion");
          ("dtype", Json.String (Tensor.Dtype.to_string dtype));
          ("models", Json.List (List.rev rows));
          ( "summary",
            Json.Obj
              [ ("fusion_ddr_wins", Json.Int wins);
                ("models_total", Json.Int (List.length Models.Zoo.all));
                ("total_ddr_bytes_saved", Json.Int saved) ] ) ]
    in
    let oc = open_out json_path in
    output_string oc (Json.to_string ~indent:2 doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s (fusion wins DDR on %d/%d models, %d bytes saved)\n"
      json_path wins
      (List.length Models.Zoo.all)
      saved
  in
  Cmd.v
    (Cmd.info "fusion"
       ~doc:
         "Benchmark LCMM against LCMM plus fused-layer segments and weight \
          streaming, and against the TGPA-style stream-tile design, across \
          the model zoo; write per-model latency and DDR traffic to a JSON \
          report.")
    Term.(const run $ log_arg $ dtype_arg $ json_arg $ domains_arg)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench" ~doc:"Load benchmarks against the serving stack.")
    [ bench_serve_cmd; bench_chaos_cmd; bench_fusion_cmd ]

let () =
  let info = Cmd.info "lcmm" ~doc:"Layer-conscious memory management for FPGA DNN accelerators" in
  let group =
    Cmd.group info
      [ models_cmd; summary_cmd; roofline_cmd; allocate_cmd; plan_cmd; simulate_cmd;
        compare_cmd; dot_cmd; export_cmd; info_cmd; schedule_cmd; trace_cmd;
        traffic_cmd; sensitivity_cmd; runtime_cmd; serve_cmd; tier_cmd;
        bench_cmd; check_cmd ]
  in
  (* One-line diagnostics instead of cmdliner's uncaught-exception dump:
     whatever escapes a subcommand (I/O errors, invalid arguments deep in
     the passes) becomes a single stderr line and a non-zero exit. *)
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception Sys_error msg ->
    prerr_endline ("lcmm: " ^ msg);
    exit 2
  | exception Invalid_argument msg | exception Failure msg ->
    prerr_endline ("lcmm: " ^ msg);
    exit 2
  | exception e ->
    prerr_endline ("lcmm: internal error: " ^ Printexc.to_string e);
    exit 125
