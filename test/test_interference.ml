(* Oracle for the packed-bitset interference build: on seeded random
   graphs, the optimized adjacency rows (sweep-line overlap fill plus
   class-mask never-share folding) must agree pair for pair with the
   naive definition — [Liveness.overlaps] on the item intervals, or a
   cross-pool (feature vs weight) pair.  Both the pairwise-predicate and
   the partition-class build paths are checked against the same oracle,
   and against each other. *)

module Metric = Lcmm.Metric
module Liveness = Lcmm.Liveness
module Interference = Lcmm.Interference
module Latency = Accel.Latency

let is_weight_item = function
  | Metric.Weight_of _ | Metric.Weight_slice _ -> true
  | Metric.Feature_value _ -> false

let never_share a b = is_weight_item a <> is_weight_item b

let never_share_class item = if is_weight_item item then 1 else 0

(* Items and intervals exactly as the planner derives them (no PDG, so
   weight lifespans start at their consumer). *)
let items_and_intervals g =
  let config = Accel.Config.make ~style:Accel.Config.Lcmm Tensor.Dtype.I16 in
  let profiles = Latency.profile_graph config g in
  let metric = Metric.build g profiles in
  let items =
    Array.of_list (Metric.eligible_items metric ~memory_bound_only:false)
  in
  let intervals =
    Array.map (Liveness.item_interval g ~prefetch_source:(fun _ -> None)) items
  in
  (items, intervals)

let check_graph ~case items intervals =
  let n = Array.length items in
  let by_pred = Interference.build ~never_share ~items ~intervals () in
  let by_class = Interference.build ~never_share_class ~items ~intervals () in
  for i = 0 to n - 1 do
    let expected_degree = ref 0 in
    for j = 0 to n - 1 do
      let expected =
        i <> j
        && (Liveness.overlaps intervals.(i) intervals.(j)
           || never_share items.(i) items.(j))
      in
      if expected then incr expected_degree;
      if Interference.conflict by_pred i j <> expected then
        Alcotest.failf "case %d: predicate build disagrees at (%d,%d)" case i j;
      if Interference.conflict by_class i j <> expected then
        Alcotest.failf "case %d: class build disagrees at (%d,%d)" case i j
    done;
    if Interference.degree by_pred i <> !expected_degree then
      Alcotest.failf "case %d: predicate degree mismatch at %d" case i;
    if Interference.degree by_class i <> !expected_degree then
      Alcotest.failf "case %d: class degree mismatch at %d" case i
  done;
  (* False edges fold into the rows incrementally: forcing apart the
     first non-conflicting pair must flip conflict/degree on both
     builds without disturbing any other pair. *)
  let free = ref None in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if !free = None && not (Interference.conflict by_pred i j) then
        free := Some (i, j)
    done
  done;
  match !free with
  | None -> ()
  | Some (i, j) ->
    let d_i = Interference.degree by_pred i in
    Interference.add_false_edge by_pred i j;
    if not (Interference.conflict by_pred i j && Interference.conflict by_pred j i)
    then Alcotest.failf "case %d: false edge (%d,%d) not reflected" case i j;
    if Interference.degree by_pred i <> d_i + 1 then
      Alcotest.failf "case %d: false edge (%d,%d) degree not bumped" case i j

let test_oracle () =
  let cases = 200 in
  let checked = ref 0 in
  for case = 0 to cases - 1 do
    let st = Random.State.make [| 0x1f5; case |] in
    let g = Check.Gen.sized_graph st ~nodes:(8 + (case mod 33)) in
    let items, intervals = items_and_intervals g in
    checked := !checked + Array.length items;
    check_graph ~case items intervals
  done;
  (* Guard against the oracle silently degenerating to empty item sets. *)
  Alcotest.(check bool) "checked a meaningful number of items" true (!checked > 1000)

(* The sweep-line fill has a naive-pairwise fallback for inverted
   intervals; real intervals are always well-formed, so force the
   boundary shapes that matter: duplicate intervals, touching endpoints,
   full-overlap nests. *)
let test_adversarial_intervals () =
  let mk s e = Liveness.make ~start_pos:s ~end_pos:e in
  let intervals = [| mk 0 4; mk 0 4; mk 4 4; mk 5 9; mk 2 7; mk 0 9; mk 8 8 |] in
  let items =
    Array.init (Array.length intervals) (fun i -> Metric.Feature_value i)
  in
  let g = Interference.build ~items ~intervals () in
  let n = Array.length intervals in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let expected = i <> j && Liveness.overlaps intervals.(i) intervals.(j) in
      Alcotest.(check bool)
        (Printf.sprintf "pair (%d,%d)" i j)
        expected
        (Interference.conflict g i j)
    done
  done

let suite =
  [ Alcotest.test_case "bitset rows match naive overlap oracle" `Slow test_oracle;
    Alcotest.test_case "boundary interval shapes" `Quick
      test_adversarial_intervals ]
