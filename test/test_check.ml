(* The differential-verification harness itself: generator validity,
   shrinking moves, case persistence and a fast deterministic slice of
   the full runner.  The heavyweight sweep lives in tier 2
   (ci.sh: lcmm check --count 500). *)

module G = Dnn_graph.Graph
module Subgraph = Dnn_graph.Subgraph
module Case = Dnn_serial.Case
module Gen = Check.Gen
module Oracle = Check.Oracle
module Shrink = Check.Shrink
module Runner = Check.Runner

let graph_fingerprint g =
  Dnn_serial.Json.to_string (Dnn_serial.Codec.graph_to_json g)

(* --- generator --- *)

let test_gen_validity_and_determinism () =
  List.iter
    (fun family ->
      List.iter
        (fun seed ->
          List.iter
            (fun max_nodes ->
              let gen () =
                Gen.graph ~family
                  (Random.State.make [| seed; max_nodes |])
                  ~max_nodes
              in
              (* Graph.create_exn inside the generator already enforces
                 acyclicity and predecessor validity; pin the size
                 contract and determinism on top. *)
              let g = gen () in
              Alcotest.(check bool)
                (Printf.sprintf "%s seed %d: 1 <= %d <= %d"
                   (Gen.family_name family) seed (G.node_count g) max_nodes)
                true
                (G.node_count g >= 1 && G.node_count g <= max_nodes);
              Alcotest.(check string)
                (Printf.sprintf "%s seed %d deterministic"
                   (Gen.family_name family) seed)
                (graph_fingerprint g)
                (graph_fingerprint (gen ())))
            [ 1; 4; 24; 64 ])
        [ 0; 1; 17 ])
    Gen.families

let test_gen_rejects_zero_nodes () =
  Alcotest.check_raises "max_nodes 0"
    (Invalid_argument "Gen.graph: max_nodes < 1") (fun () ->
      ignore (Gen.graph (Random.State.make [| 0 |]) ~max_nodes:0))

(* --- shrinking moves --- *)

let big_graph () =
  Gen.graph ~family:Gen.Mixed (Random.State.make [| 5; 3 |]) ~max_nodes:40

let test_subgraph_prefix () =
  let g = big_graph () in
  let n = G.node_count g in
  List.iter
    (fun k ->
      let p = Subgraph.prefix g k in
      Alcotest.(check int) (Printf.sprintf "prefix %d size" k) k (G.node_count p);
      (* The kept nodes are untouched. *)
      List.iter
        (fun node ->
          let orig = G.node g node.G.id in
          Alcotest.(check bool)
            (Printf.sprintf "node %d preserved" node.G.id)
            true
            (node.G.op = orig.G.op && node.G.preds = orig.G.preds))
        (G.nodes p))
    [ 1; 2; n / 2; n ];
  Alcotest.check_raises "prefix 0"
    (Invalid_argument (Printf.sprintf "Subgraph.prefix: 0 outside [1,%d]" n))
    (fun () -> ignore (Subgraph.prefix g 0))

let test_subgraph_drop_sink () =
  let g = big_graph () in
  let sinks = Subgraph.sinks g in
  Alcotest.(check bool) "at least one sink" true (sinks <> []);
  List.iter
    (fun id ->
      match Subgraph.drop_sink g id with
      | None -> Alcotest.failf "sink %d refused" id
      | Some g' ->
        Alcotest.(check int) "one node fewer" (G.node_count g - 1)
          (G.node_count g');
        (* Renumbered ids must stay a valid topological order; building
           the fingerprint forces Codec to walk the whole graph. *)
        ignore (graph_fingerprint g'))
    sinks;
  (* Non-sinks are refused. *)
  let non_sink =
    List.find (fun node -> G.succs g node.G.id <> []) (G.nodes g)
  in
  Alcotest.(check bool) "non-sink refused" true
    (Subgraph.drop_sink g non_sink.G.id = None)

let test_shrink_minimizes () =
  (* A synthetic monotone failure: any graph with >= 5 nodes "fails".
     The shrinker must come back with exactly 5. *)
  let g = big_graph () in
  let shrunk = Shrink.shrink ~fails:(fun g -> G.node_count g >= 5) g in
  Alcotest.(check int) "locally minimal" 5 (G.node_count shrunk)

(* --- case persistence --- *)

let test_case_roundtrip () =
  let case =
    { Case.seed = 42;
      case_index = 7;
      oracle = "dnnk-vs-exact";
      message = "it broke";
      dtype = Tensor.Dtype.I8;
      capacity_fraction = 0.25;
      graph = big_graph () }
  in
  let path = Filename.temp_file "lcmm_case" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Case.write_file ~path case;
      match Case.read_file ~path with
      | Error msg -> Alcotest.failf "read back: %s" msg
      | Ok case' ->
        Alcotest.(check int) "seed" case.Case.seed case'.Case.seed;
        Alcotest.(check int) "index" case.Case.case_index case'.Case.case_index;
        Alcotest.(check string) "oracle" case.Case.oracle case'.Case.oracle;
        Alcotest.(check string) "message" case.Case.message case'.Case.message;
        Alcotest.(check bool) "dtype" true (case.Case.dtype = case'.Case.dtype);
        Alcotest.(check (float 0.)) "fraction" case.Case.capacity_fraction
          case'.Case.capacity_fraction;
        Alcotest.(check string) "graph" (graph_fingerprint case.Case.graph)
          (graph_fingerprint case'.Case.graph))

let test_case_rejects_garbage () =
  (match Case.of_string "{\"format\":\"wrong\"}" with
  | Ok _ -> Alcotest.fail "accepted a wrong format"
  | Error _ -> ());
  match Case.read_file ~path:"/nonexistent/case.json" with
  | Ok _ -> Alcotest.fail "read a nonexistent file"
  | Error _ -> ()

(* --- oracles and the runner --- *)

let test_oracle_names_unique () =
  let names = List.sort_uniq compare Oracle.names in
  Alcotest.(check int) "unique names" (List.length Oracle.all)
    (List.length names);
  List.iter
    (fun name ->
      match Oracle.find name with
      | Some o -> Alcotest.(check string) "find round-trips" name o.Oracle.name
      | None -> Alcotest.failf "oracle %s not found" name)
    Oracle.names

let test_oracles_hold_on_fixtures () =
  (* Every handcrafted fixture must satisfy every invariant, under both
     loose and tight capacity. *)
  List.iter
    (fun g ->
      List.iter
        (fun capacity_fraction ->
          let ctx = Oracle.make_ctx ~capacity_fraction g in
          match Oracle.check_all ctx with
          | [] -> ()
          | (oracle, msg) :: _ ->
            Alcotest.failf "fraction %.2f: %s: %s" capacity_fraction oracle msg)
        [ 0.; 0.5; 1.5 ])
    [ Helpers.chain (); Helpers.diamond (); Helpers.inception_snippet () ]

let test_runner_fast_slice () =
  (* A small deterministic slice of what ci.sh runs at scale. *)
  let outcome = Runner.run ~seed:42 ~count:6 ~max_nodes:24 () in
  Alcotest.(check int) "cases" 6 outcome.Runner.cases;
  Alcotest.(check int) "oracle runs" (6 * List.length Oracle.all)
    outcome.Runner.oracle_runs;
  List.iter
    (fun f ->
      Alcotest.failf "case %d: %s: %s" f.Runner.case_index f.Runner.oracle
        f.Runner.message)
    outcome.Runner.failures

let test_runner_replay () =
  (* Persist a case by hand and replay it; a healthy pipeline reports no
     failures, and the case's own oracle is always part of the replay. *)
  let case =
    { Case.seed = 1;
      case_index = 0;
      oracle = "liveness";
      message = "(saved by hand)";
      dtype = Tensor.Dtype.I16;
      capacity_fraction = 0.5;
      graph = Helpers.diamond () }
  in
  let path = Filename.temp_file "lcmm_replay" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Case.write_file ~path case;
      (match Runner.replay ~path () with
      | Error msg -> Alcotest.failf "replay: %s" msg
      | Ok outcome ->
        Alcotest.(check int) "one case" 1 outcome.Runner.cases;
        Alcotest.(check (list (pair string string))) "no failures" []
          (List.map (fun f -> (f.Runner.oracle, f.Runner.message))
             outcome.Runner.failures));
      (* Narrowing to another oracle still replays the case's own. *)
      match
        Runner.replay
          ~oracles:[ Option.get (Oracle.find "coloring") ]
          ~path ()
      with
      | Error msg -> Alcotest.failf "narrowed replay: %s" msg
      | Ok outcome ->
        Alcotest.(check int) "coloring + liveness" 2 outcome.Runner.oracle_runs);
  match Runner.replay ~path:"/nonexistent/case.json" () with
  | Ok _ -> Alcotest.fail "replayed a nonexistent file"
  | Error _ -> ()

let suite =
  [ Alcotest.test_case "gen validity and determinism" `Quick
      test_gen_validity_and_determinism;
    Alcotest.test_case "gen rejects zero nodes" `Quick test_gen_rejects_zero_nodes;
    Alcotest.test_case "subgraph prefix" `Quick test_subgraph_prefix;
    Alcotest.test_case "subgraph drop sink" `Quick test_subgraph_drop_sink;
    Alcotest.test_case "shrink minimizes" `Quick test_shrink_minimizes;
    Alcotest.test_case "case round-trip" `Quick test_case_roundtrip;
    Alcotest.test_case "case rejects garbage" `Quick test_case_rejects_garbage;
    Alcotest.test_case "oracle names unique" `Quick test_oracle_names_unique;
    Alcotest.test_case "oracles hold on fixtures" `Quick
      test_oracles_hold_on_fixtures;
    Alcotest.test_case "runner fast slice" `Quick test_runner_fast_slice;
    Alcotest.test_case "runner replay" `Quick test_runner_replay ]
