(* End-to-end LCMM framework runs and option toggles. *)

module F = Lcmm.Framework
module Metric = Lcmm.Metric
module Dnnk = Lcmm.Dnnk

let plan_for ?options g =
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm Tensor.Dtype.I16 in
  F.plan ?options cfg g

let test_plan_improves () =
  let g = Helpers.inception_snippet () in
  let p = plan_for g in
  let umm = Accel.Latency.umm_total p.F.metric.Metric.profiles in
  Alcotest.(check bool) "improves" true (p.F.predicted_latency < umm);
  Alcotest.(check bool) "pol in range" true (p.F.pol >= 0. && p.F.pol <= 1.);
  Alcotest.(check bool) "capacity respected" true
    (p.F.tensor_sram_bytes <= Accel.Config.sram_budget_bytes p.F.config)

let test_option_toggles () =
  let g = Helpers.inception_snippet () in
  let base = F.default_options in
  let full = plan_for ~options:base g in
  let feature_only = plan_for ~options:{ base with weight_prefetch = false } g in
  let weight_only = plan_for ~options:{ base with feature_reuse = false } g in
  let nothing =
    plan_for ~options:{ base with feature_reuse = false; weight_prefetch = false } g
  in
  (* Each pass alone is at most as good as both together. *)
  Alcotest.(check bool) "full <= feature-only" true
    (full.F.predicted_latency <= feature_only.F.predicted_latency +. 1e-12);
  Alcotest.(check bool) "full <= weight-only" true
    (full.F.predicted_latency <= weight_only.F.predicted_latency +. 1e-12);
  Alcotest.(check (float 1e-12)) "no passes = UMM"
    (Accel.Latency.umm_total nothing.F.metric.Metric.profiles)
    nothing.F.predicted_latency;
  (* Feature-only plans pin no weights. *)
  Alcotest.(check bool) "no weights pinned" true
    (Metric.Item_set.for_all
       (function
          | Metric.Feature_value _ -> true
          | Metric.Weight_of _ | Metric.Weight_slice _ -> false)
       feature_only.F.allocation.Dnnk.on_chip);
  Alcotest.(check bool) "feature-only has no pdg" true (feature_only.F.prefetch = None)

let test_no_sharing_option () =
  let g = Helpers.inception_snippet () in
  let shared = plan_for g in
  let unshared =
    plan_for ~options:{ F.default_options with buffer_sharing = false } g
  in
  (* Without sharing, each buffer holds exactly one tensor. *)
  List.iter
    (fun vb ->
      Alcotest.(check int) "singleton" 1 (Lcmm.Vbuffer.member_count vb))
    unshared.F.vbufs;
  (* Sharing cannot make the plan slower: it strictly adds packing
     freedom under the same capacity. *)
  Alcotest.(check bool) "sharing helps or ties" true
    (shared.F.predicted_latency <= unshared.F.predicted_latency +. 1e-9)

let test_memory_bound_only_filter () =
  let g = Helpers.inception_snippet () in
  let restricted = plan_for g in
  let unrestricted =
    plan_for ~options:{ F.default_options with memory_bound_only = false } g
  in
  (* Considering more tensors can only help (same allocator). *)
  Alcotest.(check bool) "superset at least as good" true
    (unrestricted.F.predicted_latency <= restricted.F.predicted_latency +. 1e-9)

let test_compare_designs_shape () =
  let g = Models.Zoo.build "googlenet" in
  let c = F.compare_designs ~model:"googlenet" Tensor.Dtype.I16 g in
  Alcotest.(check bool) "speedup > 1" true (c.F.speedup > 1.0);
  Alcotest.(check bool) "lcmm uses more sram" true
    (c.F.lcmm.F.sram_util > c.F.umm.F.sram_util);
  Alcotest.(check bool) "tops consistent" true
    (abs_float
       (c.F.lcmm.F.tops
       -. (2. *. float_of_int (Dnn_graph.Graph.total_macs g)
          /. c.F.lcmm.F.latency_seconds /. 1e12))
    < 1e-9);
  Alcotest.(check bool) "utilizations in [0,1.2]" true
    (List.for_all
       (fun u -> u >= 0. && u <= 1.2)
       [ c.F.umm.F.dsp_util; c.F.umm.F.sram_util; c.F.lcmm.F.dsp_util;
         c.F.lcmm.F.sram_util; c.F.lcmm.F.bram_util; c.F.lcmm.F.uram_util ])

let test_helped_layers_consistent () =
  let g = Helpers.diamond () in
  let p = plan_for g in
  let helped, bound = F.helped_layers p in
  Alcotest.(check bool) "helped <= bound" true (helped <= bound);
  Alcotest.(check (float 1e-9)) "pol matches"
    (if bound = 0 then 1. else float_of_int helped /. float_of_int bound)
    p.F.pol

let prop_plan_never_worse_than_umm =
  Helpers.qtest ~count:20 "plan never worse than UMM on its design"
    Helpers.random_graph_gen (fun g ->
      let p = plan_for g in
      p.F.predicted_latency
      <= Accel.Latency.umm_total p.F.metric.Metric.profiles +. 1e-9)

(* Parallel planning is a pure speedup: a plan computed on a worker
   pool must fingerprint byte-identical to the sequential plan at every
   domain count, across random graphs.  The fingerprint covers every
   decision and every float the planner produced (pass times excluded),
   so a single reordered reduction anywhere in the parallel paths flips
   the digest. *)
let prop_parallel_plan_deterministic =
  let gen = QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 8 48)) in
  Helpers.qtest ~count:50 "plan with ~pool is byte-identical at 1/2/4/8 domains"
    gen (fun (seed, nodes) ->
      let g =
        Check.Gen.sized_graph ~family:Check.Gen.Mixed
          (Random.State.make [| 7; seed; nodes |])
          ~nodes
      in
      let cfg = Helpers.default_config () in
      let digest p = Dnn_serial.Codec.digest_string (F.fingerprint p) in
      let baseline = digest (F.plan cfg g) in
      List.for_all
        (fun domains ->
          let pool = Lcmm.Pool.create ~domains () in
          Fun.protect
            ~finally:(fun () -> Lcmm.Pool.shutdown pool)
            (fun () -> digest (F.plan ~pool cfg g) = baseline))
        [ 1; 2; 4; 8 ])

(* The channel-assignment pass joins the fingerprint when channels > 1,
   so the same determinism bar applies: byte-identical digests at every
   domain count, and a stall-free plan at 1 channel must digest exactly
   as before the pass existed (the assignment is [None]). *)
let prop_channel_assignment_deterministic =
  let gen = QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 8 48)) in
  Helpers.qtest ~count:25 "channel assignment is byte-identical at 1/2/4/8 domains"
    gen (fun (seed, nodes) ->
      let g =
        Check.Gen.sized_graph ~family:Check.Gen.Mixed
          (Random.State.make [| 13; seed; nodes |])
          ~nodes
      in
      let cfg = Helpers.default_config () in
      let options = { F.default_options with F.channels = 4 } in
      let digest p = Dnn_serial.Codec.digest_string (F.fingerprint p) in
      let baseline_plan = F.plan ~options cfg g in
      (match baseline_plan.F.channel_assignment with
      | Some a ->
        assert (a.Lcmm.Channels.channels = 4);
        assert (Lcmm.Channels.balance a >= 0. && Lcmm.Channels.balance a <= 1.)
      | None -> assert false);
      let baseline = digest baseline_plan in
      let unchanged =
        digest (F.plan cfg g)
        = digest (F.plan ~options:{ options with F.channels = 1 } cfg g)
      in
      unchanged
      && List.for_all
           (fun domains ->
             let pool = Lcmm.Pool.create ~domains () in
             Fun.protect
               ~finally:(fun () -> Lcmm.Pool.shutdown pool)
               (fun () -> digest (F.plan ~options ~pool cfg g) = baseline))
           [ 1; 2; 4; 8 ])

let prop_on_chip_items_are_eligible =
  Helpers.qtest ~count:20 "pinned items come from the eligible set"
    Helpers.random_graph_gen (fun g ->
      let p = plan_for g in
      let eligible =
        Metric.Item_set.of_list
          (Metric.eligible_items p.F.metric ~memory_bound_only:true)
      in
      Metric.Item_set.subset p.F.allocation.Dnnk.on_chip eligible)

let suite =
  [ Alcotest.test_case "plan improves" `Quick test_plan_improves;
    Alcotest.test_case "option toggles" `Quick test_option_toggles;
    Alcotest.test_case "no sharing option" `Quick test_no_sharing_option;
    Alcotest.test_case "memory-bound-only filter" `Quick test_memory_bound_only_filter;
    Alcotest.test_case "compare designs" `Quick test_compare_designs_shape;
    Alcotest.test_case "helped layers" `Quick test_helped_layers_consistent;
    prop_plan_never_worse_than_umm;
    prop_parallel_plan_deterministic;
    prop_channel_assignment_deterministic;
    prop_on_chip_items_are_eligible ]
