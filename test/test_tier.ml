(* The sharded plan-compilation tier: hash ring, shard gate/breaker,
   router cache tiers and peer fill, and the open-loop load generator. *)

module Json = Dnn_serial.Json
module Svc = Lcmm_service
module Ring = Lcmm_tier.Ring
module Shard = Lcmm_tier.Shard
module Tier = Lcmm_tier.Tier
module Loadgen = Lcmm_tier.Loadgen

let json_t = Alcotest.testable Json.pp Json.equal

(* 10k synthetic digests, the shape [Cache_key] produces. *)
let synthetic_digests n =
  List.init n (fun i -> Digest.to_hex (Digest.string (string_of_int i)))

(* --- hash ring --- *)

let test_ring_deterministic () =
  let names = [ "shard-0"; "shard-1"; "shard-2"; "shard-3" ] in
  let r1 = Ring.create ~vnodes:64 names in
  let r2 = Ring.create ~vnodes:64 (List.rev names) in
  List.iter
    (fun d ->
      Alcotest.(check string)
        ("same owner for " ^ d)
        (Ring.lookup r1 d) (Ring.lookup r2 d))
    (synthetic_digests 500)

let test_ring_balance () =
  let names = [ "a"; "b"; "c"; "d" ] in
  let ring = Ring.create ~vnodes:128 names in
  let counts = Hashtbl.create 4 in
  List.iter
    (fun d ->
      let owner = Ring.lookup ring d in
      Hashtbl.replace counts owner
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts owner)))
    (synthetic_digests 10_000);
  let ideal = 10_000. /. 4. in
  List.iter
    (fun name ->
      let n = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts name)) in
      Alcotest.(check bool)
        (Printf.sprintf "shard %s within 35%% of ideal (%.0f keys)" name n)
        true
        (n > ideal *. 0.65 && n < ideal *. 1.35))
    names

let test_ring_minimal_movement () =
  let digests = synthetic_digests 10_000 in
  let before = Ring.create ~vnodes:128 [ "a"; "b"; "c"; "d" ] in
  let after = Ring.create ~vnodes:128 [ "a"; "b"; "c"; "d"; "e" ] in
  let moved =
    List.filter (fun d -> Ring.lookup before d <> Ring.lookup after d) digests
  in
  (* Every key that moved must have moved TO the new shard — consistent
     hashing never reshuffles keys between surviving shards. *)
  List.iter
    (fun d ->
      Alcotest.(check string) ("moved key lands on e: " ^ d) "e"
        (Ring.lookup after d))
    moved;
  (* And only about 1/5 of the keyspace moves (the new shard's share);
     allow generous slack over the 2000-key ideal. *)
  let frac = float_of_int (List.length moved) /. 10_000. in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f%% of keys moved" (frac *. 100.))
    true
    (frac > 0.05 && frac < 0.35)

let test_ring_successors () =
  let names = [ "a"; "b"; "c" ] in
  let ring = Ring.create names in
  List.iter
    (fun d ->
      let succ = Ring.successors ring d in
      Alcotest.(check int) "all shards listed" 3 (List.length succ);
      Alcotest.(check string) "owner first" (Ring.lookup ring d) (List.hd succ);
      Alcotest.(check bool) "all distinct" true
        (List.sort_uniq String.compare succ |> List.length = 3))
    (synthetic_digests 100)

let test_ring_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Ring.create: no shards")
    (fun () -> ignore (Ring.create []));
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Ring.create: duplicate shard names") (fun () ->
      ignore (Ring.create [ "a"; "a" ]))

(* --- shard gate and breaker (local backend) --- *)

let ok_line payload =
  Dnn_serial.Wire.to_line (Dnn_serial.Wire.ok ~op:"compile" payload)

let test_shard_inflight_gate () =
  let release = Mutex.create () in
  Mutex.lock release;
  let slow _line =
    (* Parks until the main thread releases it. *)
    Mutex.lock release;
    Mutex.unlock release;
    ok_line (Json.Int 1)
  in
  let shard = Shard.local ~name:"s" ~max_inflight:1 slow in
  let first = Thread.create (fun () -> Shard.call shard "x") () in
  Thread.delay 0.1;
  (match Shard.call shard "y" with
  | Error (Shard.Overloaded msg) ->
    Alcotest.(check bool) "structured overloaded message" true
      (String.length msg >= 10 && String.sub msg 0 10 = "overloaded")
  | Ok _ | Error _ -> Alcotest.fail "expected an overloaded shed");
  Mutex.unlock release;
  (match Thread.join first with () -> ());
  (* The gate freed up: calls pass again. *)
  match Shard.call shard "z" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "expected success after release: %s" (Shard.error_message e)

let test_shard_breaker_opens () =
  let shard = Shard.local ~name:"s" (fun _ -> failwith "boom") in
  (* Three consecutive transport failures trip the circuit... *)
  for _ = 1 to 3 do
    match Shard.call shard "x" with
    | Error (Shard.Transport _) -> ()
    | Ok _ | Error _ -> Alcotest.fail "expected a transport failure"
  done;
  Alcotest.(check bool) "circuit open" false (Shard.healthy shard);
  (* ...and while open, calls shed without touching the handler. *)
  match Shard.call shard "x" with
  | Error (Shard.Unavailable _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected unavailable while open"

(* --- tier routing over in-process shards --- *)

(* Engines are expensive to spin up (domains); each test builds the
   smallest fleet it needs. *)
let with_engines n fn =
  let engines =
    List.init n (fun _ ->
        Svc.Engine.create ~pool:(Svc.Pool.create ~domains:1 ()) ())
  in
  Fun.protect
    ~finally:(fun () -> List.iter Svc.Engine.shutdown engines)
    (fun () -> fn engines)

let local_shard name engine =
  Shard.local ~name (Svc.Engine.handle_line ~timing:true engine)

let field_exn key v =
  match Json.member key v with
  | Ok f -> f
  | Error msg -> Alcotest.failf "field %s: %s" key msg

let response_of line =
  match Json.of_string (String.trim line) with
  | Error msg -> Alcotest.failf "bad response line: %s" msg
  | Ok v -> v

let counter tier key =
  match field_exn key (field_exn "tier" (Tier.stats_payload tier)) with
  | Json.Int n -> n
  | v -> Alcotest.failf "counter %s not an int: %s" key (Json.to_string v)

let compile_line ?(slices = 1) model =
  Printf.sprintf
    {|{"op":"compile","model":"%s","dtype":"i8","options":{"weight_slices":%d}}|}
    model slices

(* A compile request whose digest lands on [want] in [ring]: scan
   weight_slices variants (each changes the digest, not the answer's
   existence). *)
let request_owned_by ring want =
  let rec search slices =
    if slices > 64 then Alcotest.fail "no request found for shard"
    else
      let line = compile_line ~slices "alexnet" in
      match Svc.Protocol.request_of_line line with
      | Error msg -> Alcotest.fail msg
      | Ok env -> (
        match Svc.Engine.route_digest env.Svc.Protocol.request with
        | Ok (Some digest) when Ring.lookup ring digest = want -> line
        | Ok (Some _) -> search (slices + 1)
        | Ok None | Error _ -> Alcotest.fail "expected a digest")
  in
  search 1

let test_tier_cache_tiers () =
  with_engines 2 (fun engines ->
      let shards =
        List.map2 local_shard [ "a"; "b" ] engines
      in
      let ring = Ring.create [ "a"; "b" ] in
      let tier = Tier.create ~ring ~shards () in
      let line = compile_line "alexnet" in
      (* Cold: routed to the owner and computed. *)
      let first = response_of (Tier.handle_line tier line) in
      Alcotest.check json_t "computed" (Json.String "miss")
        (field_exn "cache" first);
      Alcotest.(check int) "one compute" 1 (counter tier "computes");
      (* Warm: answered from the router's front LRU. *)
      let second = response_of (Tier.handle_line tier line) in
      Alcotest.check json_t "front-cache hit" (Json.String "hit")
        (field_exn "cache" second);
      Alcotest.(check int) "router hit counted" 1 (counter tier "router_hits");
      Alcotest.check json_t "same payload" (field_exn "result" first)
        (field_exn "result" second);
      (* A fresh router over the same (warm) shards: the owner's own
         cache answers, no new compute. *)
      let tier2 = Tier.create ~ring ~shards () in
      let third = response_of (Tier.handle_line tier2 line) in
      Alcotest.check json_t "shard-cache hit" (Json.String "hit")
        (field_exn "cache" third);
      Alcotest.(check int) "no compute" 0 (counter tier2 "computes");
      Alcotest.(check int) "shard hit counted" 1 (counter tier2 "shard_hits");
      Alcotest.check json_t "same payload again" (field_exn "result" first)
        (field_exn "result" third))

let test_tier_peer_fill () =
  with_engines 2 (fun engines ->
      let a_engine = List.nth engines 0 in
      let shards = List.map2 local_shard [ "a"; "b" ] engines in
      let two_ring = Ring.create [ "a"; "b" ] in
      (* Warm shard [a] alone with a request the two-shard ring will
         assign to [b] — the resharding scenario. *)
      let line = request_owned_by two_ring "b" in
      let warm =
        Tier.create ~ring:(Ring.create [ "a" ])
          ~shards:[ local_shard "a" a_engine ]
          ()
      in
      let warm_resp = response_of (Tier.handle_line warm line) in
      (* Now the two-shard tier: owner [b] misses, the peer probe finds
         it in [a]'s cache, and [b] gets backfilled. *)
      let tier = Tier.create ~ring:two_ring ~shards () in
      let filled = response_of (Tier.handle_line tier line) in
      Alcotest.check json_t "peer-filled" (Json.String "peer")
        (field_exn "cache" filled);
      Alcotest.(check int) "peer fill counted" 1 (counter tier "peer_fills");
      Alcotest.(check int) "no duplicate compile" 0 (counter tier "computes");
      Alcotest.check json_t "payload identical across shards"
        (field_exn "result" warm_resp) (field_exn "result" filled);
      (* The backfill seeded the owner: a fresh router now hits [b]
         directly. *)
      let tier2 = Tier.create ~ring:two_ring ~shards () in
      let after = response_of (Tier.handle_line tier2 line) in
      Alcotest.check json_t "owner hit after backfill" (Json.String "hit")
        (field_exn "cache" after);
      Alcotest.(check int) "no peer probe needed" 0 (counter tier2 "peer_probes"))

let test_tier_failover () =
  with_engines 1 (fun engines ->
      let good = local_shard "b" (List.hd engines) in
      let bad = Shard.local ~name:"a" (fun _ -> failwith "boom") in
      let ring = Ring.create [ "a"; "b" ] in
      let tier = Tier.create ~ring ~shards:[ bad; good ] () in
      (* A request owned by the broken shard still gets answered. *)
      let line = request_owned_by ring "a" in
      let resp = response_of (Tier.handle_line tier line) in
      Alcotest.check json_t "answered despite dead owner" (Json.Bool true)
        (field_exn "ok" resp))

let test_tier_shedding () =
  with_engines 1 (fun engines ->
      let engine = List.hd engines in
      let release = Mutex.create () in
      Mutex.lock release;
      let gate_open = ref false in
      let slow line =
        if !gate_open then Svc.Engine.handle_line ~timing:true engine line
        else begin
          Mutex.lock release;
          Mutex.unlock release;
          Svc.Engine.handle_line ~timing:true engine line
        end
      in
      let shard = Shard.local ~name:"a" ~max_inflight:1 slow in
      let tier = Tier.create ~ring:(Ring.create [ "a" ]) ~shards:[ shard ] () in
      let line = compile_line "alexnet" in
      let first = Thread.create (fun () -> Tier.handle_line tier line) () in
      Thread.delay 0.1;
      (* The single in-flight slot is taken: the router sheds with a
         structured overloaded error instead of queueing. *)
      let shed = response_of (Tier.handle_line tier line) in
      Alcotest.check json_t "shed is an error" (Json.Bool false)
        (field_exn "ok" shed);
      Alcotest.check json_t "structured kind" (Json.String "overloaded")
        (field_exn "kind" shed);
      Alcotest.(check int) "shed counted" 1 (counter tier "shed");
      gate_open := true;
      Mutex.unlock release;
      match Thread.join first with () -> ())

let test_tier_cache_ops_through_front () =
  with_engines 2 (fun engines ->
      let shards = List.map2 local_shard [ "a"; "b" ] engines in
      let tier =
        Tier.create ~ring:(Ring.create [ "a"; "b" ]) ~shards ()
      in
      let digest = String.make 32 'd' in
      let put =
        Printf.sprintf {|{"op":"cache_put","digest":"%s","payload":{"x":7}}|}
          digest
      in
      let stored = response_of (Tier.handle_line tier put) in
      Alcotest.check json_t "stored" (Json.Bool true)
        (field_exn "stored" (field_exn "result" stored));
      let got =
        response_of
          (Tier.handle_line tier
             (Printf.sprintf {|{"op":"cache_get","digest":"%s"}|} digest))
      in
      Alcotest.check json_t "round-trips" (Json.Obj [ ("x", Json.Int 7) ])
        (field_exn "result" got);
      (* An unknown digest is a plain miss end-to-end. *)
      let missing =
        response_of
          (Tier.handle_line tier
             (Printf.sprintf {|{"op":"cache_get","digest":"%s"}|}
                (String.make 32 'e')))
      in
      Alcotest.check json_t "not cached" (Json.Bool false)
        (field_exn "ok" missing))

(* --- load generator --- *)

let test_loadgen_counts_and_percentiles () =
  let handler _line = ok_line (Json.Int 1) in
  let r =
    Loadgen.run ~handler ~mix:[ "x"; "y" ] ~rps:500. ~duration_s:0.3
      ~threads:4 ()
  in
  Alcotest.(check int) "all requests sent" 150 r.Loadgen.sent;
  Alcotest.(check int) "all ok" r.Loadgen.sent r.Loadgen.ok;
  Alcotest.(check int) "no sheds" 0 r.Loadgen.shed;
  Alcotest.(check bool) "percentiles ordered" true
    (r.Loadgen.p50_ms <= r.Loadgen.p99_ms
    && r.Loadgen.p99_ms <= r.Loadgen.p999_ms
    && r.Loadgen.p999_ms <= r.Loadgen.max_ms);
  Alcotest.(check bool) "keeps up" true (Loadgen.keeps_up ~slo_p99_ms:1000. r)

let test_loadgen_classifies_sheds () =
  let handler _line =
    Dnn_serial.Wire.to_line
      (Dnn_serial.Wire.error ~op:"compile" ~kind:"overloaded"
         "overloaded: full")
  in
  let r =
    Loadgen.run ~handler ~mix:[ "x" ] ~rps:200. ~duration_s:0.2 ~threads:2 ()
  in
  Alcotest.(check int) "everything shed" r.Loadgen.sent r.Loadgen.shed;
  Alcotest.(check bool) "does not keep up" false
    (Loadgen.keeps_up ~slo_p99_ms:1000. r)

let test_loadgen_zoo_mix_deterministic () =
  let m1 = Loadgen.zoo_mix () and m2 = Loadgen.zoo_mix () in
  Alcotest.(check (list string)) "stable mix" m1 m2;
  Alcotest.(check bool) "non-empty" true (List.length m1 > 1)

let suite =
  [ Alcotest.test_case "ring: deterministic across creation order" `Quick
      test_ring_deterministic;
    Alcotest.test_case "ring: balances 10k digests within 35%" `Quick
      test_ring_balance;
    Alcotest.test_case "ring: adding a shard moves ~1/N keys, all to it"
      `Quick test_ring_minimal_movement;
    Alcotest.test_case "ring: successors start at owner, cover all shards"
      `Quick test_ring_successors;
    Alcotest.test_case "ring: rejects empty and duplicate members" `Quick
      test_ring_validation;
    Alcotest.test_case "shard: in-flight gate sheds, then recovers" `Quick
      test_shard_inflight_gate;
    Alcotest.test_case "shard: breaker opens after repeated failures" `Quick
      test_shard_breaker_opens;
    Alcotest.test_case "tier: front LRU and shard cache tiers" `Quick
      test_tier_cache_tiers;
    Alcotest.test_case "tier: peer fill after resharding, with backfill"
      `Quick test_tier_peer_fill;
    Alcotest.test_case "tier: fails over around a dead owner" `Quick
      test_tier_failover;
    Alcotest.test_case "tier: sheds with a structured overloaded error"
      `Quick test_tier_shedding;
    Alcotest.test_case "tier: cache_get/cache_put through the front" `Quick
      test_tier_cache_ops_through_front;
    Alcotest.test_case "loadgen: open-loop counts and percentiles" `Quick
      test_loadgen_counts_and_percentiles;
    Alcotest.test_case "loadgen: classifies structured sheds" `Quick
      test_loadgen_classifies_sheds;
    Alcotest.test_case "loadgen: zoo mix is deterministic" `Quick
      test_loadgen_zoo_mix_deterministic ]
