(* The sharded plan-compilation tier: hash ring, shard gate/breaker,
   router cache tiers and peer fill, and the open-loop load generator. *)

module Json = Dnn_serial.Json
module Svc = Lcmm_service
module Ring = Lcmm_tier.Ring
module Shard = Lcmm_tier.Shard
module Tier = Lcmm_tier.Tier
module Loadgen = Lcmm_tier.Loadgen

let json_t = Alcotest.testable Json.pp Json.equal

(* 10k synthetic digests, the shape [Cache_key] produces. *)
let synthetic_digests n =
  List.init n (fun i -> Digest.to_hex (Digest.string (string_of_int i)))

(* --- hash ring --- *)

let test_ring_deterministic () =
  let names = [ "shard-0"; "shard-1"; "shard-2"; "shard-3" ] in
  let r1 = Ring.create ~vnodes:64 names in
  let r2 = Ring.create ~vnodes:64 (List.rev names) in
  List.iter
    (fun d ->
      Alcotest.(check string)
        ("same owner for " ^ d)
        (Ring.lookup r1 d) (Ring.lookup r2 d))
    (synthetic_digests 500)

let test_ring_balance () =
  let names = [ "a"; "b"; "c"; "d" ] in
  let ring = Ring.create ~vnodes:128 names in
  let counts = Hashtbl.create 4 in
  List.iter
    (fun d ->
      let owner = Ring.lookup ring d in
      Hashtbl.replace counts owner
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts owner)))
    (synthetic_digests 10_000);
  let ideal = 10_000. /. 4. in
  List.iter
    (fun name ->
      let n = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts name)) in
      Alcotest.(check bool)
        (Printf.sprintf "shard %s within 35%% of ideal (%.0f keys)" name n)
        true
        (n > ideal *. 0.65 && n < ideal *. 1.35))
    names

let test_ring_minimal_movement () =
  let digests = synthetic_digests 10_000 in
  let before = Ring.create ~vnodes:128 [ "a"; "b"; "c"; "d" ] in
  let after = Ring.create ~vnodes:128 [ "a"; "b"; "c"; "d"; "e" ] in
  let moved =
    List.filter (fun d -> Ring.lookup before d <> Ring.lookup after d) digests
  in
  (* Every key that moved must have moved TO the new shard — consistent
     hashing never reshuffles keys between surviving shards. *)
  List.iter
    (fun d ->
      Alcotest.(check string) ("moved key lands on e: " ^ d) "e"
        (Ring.lookup after d))
    moved;
  (* And only about 1/5 of the keyspace moves (the new shard's share);
     allow generous slack over the 2000-key ideal. *)
  let frac = float_of_int (List.length moved) /. 10_000. in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f%% of keys moved" (frac *. 100.))
    true
    (frac > 0.05 && frac < 0.35)

let test_ring_successors () =
  let names = [ "a"; "b"; "c" ] in
  let ring = Ring.create names in
  List.iter
    (fun d ->
      let succ = Ring.successors ring d in
      Alcotest.(check int) "all shards listed" 3 (List.length succ);
      Alcotest.(check string) "owner first" (Ring.lookup ring d) (List.hd succ);
      Alcotest.(check bool) "all distinct" true
        (List.sort_uniq String.compare succ |> List.length = 3))
    (synthetic_digests 100)

let test_ring_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Ring.create: no shards")
    (fun () -> ignore (Ring.create []));
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Ring.create: duplicate shard names") (fun () ->
      ignore (Ring.create [ "a"; "a" ]))

(* --- shard gate and breaker (local backend) --- *)

let ok_line payload =
  Dnn_serial.Wire.to_line (Dnn_serial.Wire.ok ~op:"compile" payload)

let test_shard_inflight_gate () =
  let release = Mutex.create () in
  Mutex.lock release;
  let slow _line =
    (* Parks until the main thread releases it. *)
    Mutex.lock release;
    Mutex.unlock release;
    ok_line (Json.Int 1)
  in
  let shard = Shard.local ~name:"s" ~max_inflight:1 slow in
  let first = Thread.create (fun () -> Shard.call shard "x") () in
  Thread.delay 0.1;
  (match Shard.call shard "y" with
  | Error (Shard.Overloaded msg) ->
    Alcotest.(check bool) "structured overloaded message" true
      (String.length msg >= 10 && String.sub msg 0 10 = "overloaded")
  | Ok _ | Error _ -> Alcotest.fail "expected an overloaded shed");
  Mutex.unlock release;
  (match Thread.join first with () -> ());
  (* The gate freed up: calls pass again. *)
  match Shard.call shard "z" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "expected success after release: %s" (Shard.error_message e)

let test_shard_breaker_opens () =
  let shard = Shard.local ~name:"s" (fun _ -> failwith "boom") in
  (* Three consecutive transport failures trip the circuit... *)
  for _ = 1 to 3 do
    match Shard.call shard "x" with
    | Error (Shard.Transport _) -> ()
    | Ok _ | Error _ -> Alcotest.fail "expected a transport failure"
  done;
  Alcotest.(check bool) "circuit open" false (Shard.healthy shard);
  (* ...and while open, calls shed without touching the handler. *)
  match Shard.call shard "x" with
  | Error (Shard.Unavailable _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected unavailable while open"

(* The full passive breaker lifecycle on one shard: closed (up) ->
   open (down) after threshold consecutive failures -> half-open
   (suspect) once the cooldown expires -> re-open when the probation
   call fails -> closed (up) again when one finally succeeds. *)
let test_shard_breaker_half_open_sequence () =
  let failing = ref true in
  let handler _line =
    if !failing then failwith "boom" else ok_line (Json.Int 1)
  in
  let shard =
    Shard.local ~name:"s" ~breaker_threshold:3 ~breaker_cooldown_s:0.15
      handler
  in
  Alcotest.(check string) "starts up" "up" (Shard.state_name (Shard.state shard));
  for _ = 1 to 3 do
    match Shard.call shard "x" with
    | Error (Shard.Transport _) -> ()
    | Ok _ | Error _ -> Alcotest.fail "expected a transport failure"
  done;
  Alcotest.(check string) "open after threshold" "down"
    (Shard.state_name (Shard.state shard));
  (match Shard.call shard "x" with
  | Error (Shard.Unavailable _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected unavailable while open");
  Thread.delay 0.2;
  (* Cooldown expired, recovery unproven: half-open probation. *)
  Alcotest.(check string) "suspect once cooldown expires" "suspect"
    (Shard.state_name (Shard.state shard));
  (* The probation call is admitted — and fails, re-opening the circuit. *)
  (match Shard.call shard "x" with
  | Error (Shard.Transport _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected the probation call to fail");
  Alcotest.(check string) "re-opened" "down"
    (Shard.state_name (Shard.state shard));
  Thread.delay 0.2;
  failing := false;
  (match Shard.call shard "x" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "probation success: %s" (Shard.error_message e));
  Alcotest.(check string) "closed again" "up"
    (Shard.state_name (Shard.state shard));
  Alcotest.(check bool) "healthy again" true (Shard.healthy shard)

(* The active probe closes an open circuit without waiting out the
   cooldown — the recovery path a drained or idle tier depends on. *)
let test_shard_probe_recovers () =
  let failing = ref true in
  let handler _line =
    if !failing then failwith "boom" else ok_line (Json.Int 1)
  in
  let shard =
    Shard.local ~name:"s" ~breaker_threshold:2 ~breaker_cooldown_s:60.
      handler
  in
  for _ = 1 to 2 do
    ignore (Shard.call shard "x")
  done;
  Alcotest.(check string) "down" "down" (Shard.state_name (Shard.state shard));
  Alcotest.(check bool) "probe fails while broken" false (Shard.probe shard);
  Alcotest.(check string) "still down" "down"
    (Shard.state_name (Shard.state shard));
  failing := false;
  Alcotest.(check bool) "probe succeeds" true (Shard.probe shard);
  Alcotest.(check string) "promoted straight to up" "up"
    (Shard.state_name (Shard.state shard));
  match Shard.call shard "x" with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "call after recovery: %s" (Shard.error_message e)

(* --- tier routing over in-process shards --- *)

(* Engines are expensive to spin up (domains); each test builds the
   smallest fleet it needs. *)
let with_engines n fn =
  let engines =
    List.init n (fun _ ->
        Svc.Engine.create ~pool:(Svc.Pool.create ~domains:1 ()) ())
  in
  Fun.protect
    ~finally:(fun () -> List.iter Svc.Engine.shutdown engines)
    (fun () -> fn engines)

let local_shard name engine =
  Shard.local ~name (Svc.Engine.handle_line ~timing:true engine)

let field_exn key v =
  match Json.member key v with
  | Ok f -> f
  | Error msg -> Alcotest.failf "field %s: %s" key msg

let response_of line =
  match Json.of_string (String.trim line) with
  | Error msg -> Alcotest.failf "bad response line: %s" msg
  | Ok v -> v

let counter tier key =
  match field_exn key (field_exn "tier" (Tier.stats_payload tier)) with
  | Json.Int n -> n
  | v -> Alcotest.failf "counter %s not an int: %s" key (Json.to_string v)

let compile_line ?(slices = 1) model =
  Printf.sprintf
    {|{"op":"compile","model":"%s","dtype":"i8","options":{"weight_slices":%d}}|}
    model slices

(* A compile request whose digest lands on [want] in [ring]: scan
   weight_slices variants (each changes the digest, not the answer's
   existence). *)
let request_owned_by ring want =
  let rec search slices =
    if slices > 64 then Alcotest.fail "no request found for shard"
    else
      let line = compile_line ~slices "alexnet" in
      match Svc.Protocol.request_of_line line with
      | Error msg -> Alcotest.fail msg
      | Ok env -> (
        match Svc.Engine.route_digest env.Svc.Protocol.request with
        | Ok (Some digest) when Ring.lookup ring digest = want -> line
        | Ok (Some _) -> search (slices + 1)
        | Ok None | Error _ -> Alcotest.fail "expected a digest")
  in
  search 1

let test_tier_cache_tiers () =
  with_engines 2 (fun engines ->
      let shards =
        List.map2 local_shard [ "a"; "b" ] engines
      in
      let ring = Ring.create [ "a"; "b" ] in
      let tier = Tier.create ~ring ~shards () in
      let line = compile_line "alexnet" in
      (* Cold: routed to the owner and computed. *)
      let first = response_of (Tier.handle_line tier line) in
      Alcotest.check json_t "computed" (Json.String "miss")
        (field_exn "cache" first);
      Alcotest.(check int) "one compute" 1 (counter tier "computes");
      (* Warm: answered from the router's front LRU. *)
      let second = response_of (Tier.handle_line tier line) in
      Alcotest.check json_t "front-cache hit" (Json.String "hit")
        (field_exn "cache" second);
      Alcotest.(check int) "router hit counted" 1 (counter tier "router_hits");
      Alcotest.check json_t "same payload" (field_exn "result" first)
        (field_exn "result" second);
      (* A fresh router over the same (warm) shards: the owner's own
         cache answers, no new compute. *)
      let tier2 = Tier.create ~ring ~shards () in
      let third = response_of (Tier.handle_line tier2 line) in
      Alcotest.check json_t "shard-cache hit" (Json.String "hit")
        (field_exn "cache" third);
      Alcotest.(check int) "no compute" 0 (counter tier2 "computes");
      Alcotest.(check int) "shard hit counted" 1 (counter tier2 "shard_hits");
      Alcotest.check json_t "same payload again" (field_exn "result" first)
        (field_exn "result" third))

let test_tier_peer_fill () =
  with_engines 2 (fun engines ->
      let a_engine = List.nth engines 0 in
      let shards = List.map2 local_shard [ "a"; "b" ] engines in
      let two_ring = Ring.create [ "a"; "b" ] in
      (* Warm shard [a] alone with a request the two-shard ring will
         assign to [b] — the resharding scenario. *)
      let line = request_owned_by two_ring "b" in
      let warm =
        Tier.create ~ring:(Ring.create [ "a" ])
          ~shards:[ local_shard "a" a_engine ]
          ()
      in
      let warm_resp = response_of (Tier.handle_line warm line) in
      (* Now the two-shard tier: owner [b] misses, the peer probe finds
         it in [a]'s cache, and [b] gets backfilled. *)
      let tier = Tier.create ~ring:two_ring ~shards () in
      let filled = response_of (Tier.handle_line tier line) in
      Alcotest.check json_t "peer-filled" (Json.String "peer")
        (field_exn "cache" filled);
      Alcotest.(check int) "peer fill counted" 1 (counter tier "peer_fills");
      Alcotest.(check int) "no duplicate compile" 0 (counter tier "computes");
      Alcotest.check json_t "payload identical across shards"
        (field_exn "result" warm_resp) (field_exn "result" filled);
      (* The backfill seeded the owner: a fresh router now hits [b]
         directly. *)
      let tier2 = Tier.create ~ring:two_ring ~shards () in
      let after = response_of (Tier.handle_line tier2 line) in
      Alcotest.check json_t "owner hit after backfill" (Json.String "hit")
        (field_exn "cache" after);
      Alcotest.(check int) "no peer probe needed" 0 (counter tier2 "peer_probes"))

let test_tier_failover () =
  with_engines 1 (fun engines ->
      let good = local_shard "b" (List.hd engines) in
      let bad = Shard.local ~name:"a" (fun _ -> failwith "boom") in
      let ring = Ring.create [ "a"; "b" ] in
      let tier = Tier.create ~ring ~shards:[ bad; good ] () in
      (* A request owned by the broken shard still gets answered. *)
      let line = request_owned_by ring "a" in
      let resp = response_of (Tier.handle_line tier line) in
      Alcotest.check json_t "answered despite dead owner" (Json.Bool true)
        (field_exn "ok" resp))

let test_tier_shedding () =
  with_engines 1 (fun engines ->
      let engine = List.hd engines in
      let release = Mutex.create () in
      Mutex.lock release;
      let gate_open = ref false in
      let slow line =
        if !gate_open then Svc.Engine.handle_line ~timing:true engine line
        else begin
          Mutex.lock release;
          Mutex.unlock release;
          Svc.Engine.handle_line ~timing:true engine line
        end
      in
      let shard = Shard.local ~name:"a" ~max_inflight:1 slow in
      let tier = Tier.create ~ring:(Ring.create [ "a" ]) ~shards:[ shard ] () in
      let line = compile_line "alexnet" in
      let first = Thread.create (fun () -> Tier.handle_line tier line) () in
      Thread.delay 0.1;
      (* The single in-flight slot is taken: the router sheds with a
         structured overloaded error instead of queueing. *)
      let shed = response_of (Tier.handle_line tier line) in
      Alcotest.check json_t "shed is an error" (Json.Bool false)
        (field_exn "ok" shed);
      Alcotest.check json_t "structured kind" (Json.String "overloaded")
        (field_exn "kind" shed);
      Alcotest.(check int) "shed counted" 1 (counter tier "shed");
      gate_open := true;
      Mutex.unlock release;
      match Thread.join first with () -> ())

let test_tier_cache_ops_through_front () =
  with_engines 2 (fun engines ->
      let shards = List.map2 local_shard [ "a"; "b" ] engines in
      let tier =
        Tier.create ~ring:(Ring.create [ "a"; "b" ]) ~shards ()
      in
      let digest = String.make 32 'd' in
      let put =
        Printf.sprintf {|{"op":"cache_put","digest":"%s","payload":{"x":7}}|}
          digest
      in
      let stored = response_of (Tier.handle_line tier put) in
      Alcotest.check json_t "stored" (Json.Bool true)
        (field_exn "stored" (field_exn "result" stored));
      let got =
        response_of
          (Tier.handle_line tier
             (Printf.sprintf {|{"op":"cache_get","digest":"%s"}|} digest))
      in
      Alcotest.check json_t "round-trips" (Json.Obj [ ("x", Json.Int 7) ])
        (field_exn "result" got);
      (* An unknown digest is a plain miss end-to-end. *)
      let missing =
        response_of
          (Tier.handle_line tier
             (Printf.sprintf {|{"op":"cache_get","digest":"%s"}|}
                (String.make 32 'e')))
      in
      Alcotest.check json_t "not cached" (Json.Bool false)
        (field_exn "ok" missing))

(* --- resilience: retries, deadlines, hedging, integrity, drain --- *)

let contains ~needle hay =
  let nlen = String.length needle and hlen = String.length hay in
  let rec scan i =
    i + nlen <= hlen && (String.sub hay i nlen = needle || scan (i + 1))
  in
  scan 0

(* A transient compute failure is retried on the same shard and masked
   from the client. *)
let test_tier_retries_mask_transient () =
  with_engines 1 (fun engines ->
      let engine = List.hd engines in
      let compile_calls = ref 0 in
      let handler line =
        if contains ~needle:{|"op":"compile"|} line then begin
          incr compile_calls;
          if !compile_calls = 1 then failwith "transient"
          else Svc.Engine.handle_line ~timing:true engine line
        end
        else Svc.Engine.handle_line ~timing:true engine line
      in
      let shard = Shard.local ~name:"a" handler in
      let tier =
        Tier.create ~ring:(Ring.create [ "a" ]) ~shards:[ shard ] ~retries:2
          ~retry_backoff_ms:1. ()
      in
      let resp = response_of (Tier.handle_line tier (compile_line "alexnet")) in
      Alcotest.check json_t "masked from the client" (Json.Bool true)
        (field_exn "ok" resp);
      Alcotest.(check int) "one retry counted" 1 (counter tier "retries");
      Alcotest.(check int) "two compile attempts" 2 !compile_calls)

(* The forwarded envelope carries the route digest as id, asks for a
   sum, and propagates the *remaining* deadline, not the original. *)
let test_tier_forwarded_envelope () =
  with_engines 1 (fun engines ->
      let engine = List.hd engines in
      let recorded = ref [] in
      let handler line =
        recorded := line :: !recorded;
        Svc.Engine.handle_line ~timing:true engine line
      in
      let shard = Shard.local ~name:"a" handler in
      let tier =
        Tier.create ~ring:(Ring.create [ "a" ]) ~shards:[ shard ] ()
      in
      let line =
        {|{"op":"compile","model":"alexnet","dtype":"i8","deadline_ms":5000}|}
      in
      let digest =
        match Svc.Protocol.request_of_line line with
        | Ok env -> (
          match Svc.Engine.route_digest env.Svc.Protocol.request with
          | Ok (Some d) -> d
          | _ -> Alcotest.fail "expected a digest")
        | Error msg -> Alcotest.fail msg
      in
      let resp = response_of (Tier.handle_line tier line) in
      Alcotest.check json_t "answered" (Json.Bool true) (field_exn "ok" resp);
      let forwarded_compile =
        match
          List.find_opt (contains ~needle:{|"op":"compile"|}) !recorded
        with
        | Some l -> response_of l
        | None -> Alcotest.fail "no compile forwarded"
      in
      Alcotest.check json_t "digest rides as id" (Json.String digest)
        (field_exn "id" forwarded_compile);
      Alcotest.check json_t "sum requested" (Json.Bool true)
        (field_exn "checksum" forwarded_compile);
      (match field_exn "deadline_ms" forwarded_compile with
      | Json.Float ms ->
        Alcotest.(check bool)
          (Printf.sprintf "remaining budget (%.3f ms) below the original" ms)
          true
          (ms > 0. && ms < 5000.)
      | v -> Alcotest.failf "deadline_ms: %s" (Json.to_string v));
      (* And the reply the shard produced carried a sum that verified:
         no invalid replies were counted. *)
      Alcotest.(check int) "reply validated" 0 (counter tier "invalid_replies"))

(* A budget that expires inside the router is answered by the router:
   structured deadline error, no compute spent on it. *)
let test_tier_deadline_expires_in_router () =
  with_engines 1 (fun engines ->
      let engine = List.hd engines in
      let compile_calls = ref 0 in
      let handler line =
        if contains ~needle:{|"op":"cache_get"|} line then begin
          Thread.delay 0.06;
          Svc.Engine.handle_line ~timing:true engine line
        end
        else begin
          if contains ~needle:{|"op":"compile"|} line then incr compile_calls;
          Svc.Engine.handle_line ~timing:true engine line
        end
      in
      let shard = Shard.local ~name:"a" handler in
      let tier =
        Tier.create ~ring:(Ring.create [ "a" ]) ~shards:[ shard ] ()
      in
      let resp =
        response_of
          (Tier.handle_line tier
             {|{"op":"compile","model":"alexnet","dtype":"i8","deadline_ms":20}|})
      in
      Alcotest.check json_t "an error" (Json.Bool false) (field_exn "ok" resp);
      Alcotest.check json_t "structured deadline kind"
        (Json.String "deadline") (field_exn "kind" resp);
      Alcotest.(check int) "no compute attempted" 0 !compile_calls;
      Alcotest.(check int) "counted" 1 (counter tier "deadline_errors"))

(* A slow primary is hedged against the next shard in ring order; the
   hedge's validated reply answers the request. *)
let test_tier_hedging () =
  with_engines 2 (fun engines ->
      let e_a = List.nth engines 0 and e_b = List.nth engines 1 in
      let ring = Ring.create [ "a"; "b" ] in
      let line = request_owned_by ring "a" in
      let slow_handler l =
        if contains ~needle:{|"op":"compile"|} l then Thread.delay 0.4;
        Svc.Engine.handle_line ~timing:true e_a l
      in
      let shards =
        [ Shard.local ~name:"a" slow_handler; local_shard "b" e_b ]
      in
      let tier = Tier.create ~ring ~shards ~hedge_ms:50. () in
      let resp = response_of (Tier.handle_line tier line) in
      Alcotest.check json_t "answered" (Json.Bool true) (field_exn "ok" resp);
      Alcotest.(check int) "hedge launched" 1 (counter tier "hedges");
      Alcotest.(check int) "hedge won" 1 (counter tier "hedge_wins");
      (* Let the abandoned primary finish before the engines shut down. *)
      Thread.delay 0.5)

(* A corrupted reply is rejected by validation, penalized, and never
   served as a success. *)
let test_tier_rejects_corrupt_reply () =
  with_engines 1 (fun engines ->
      let engine = List.hd engines in
      let handler line =
        let reply = Svc.Engine.handle_line ~timing:true engine line in
        if contains ~needle:{|"op":"compile"|} line then
          String.trim reply ^ "!"
        else reply
      in
      let shard = Shard.local ~name:"a" handler in
      let tier =
        Tier.create ~ring:(Ring.create [ "a" ]) ~shards:[ shard ] ()
      in
      let resp = response_of (Tier.handle_line tier (compile_line "alexnet")) in
      Alcotest.check json_t "not served as success" (Json.Bool false)
        (field_exn "ok" resp);
      Alcotest.(check bool) "invalid replies counted" true
        (counter tier "invalid_replies" >= 1))

(* Chaos at probability 1.0: every physical call faults, and with no
   retry budget the request surfaces a structured error — never a
   damaged success. *)
let test_tier_chaos_injection () =
  with_engines 1 (fun engines ->
      let shard = local_shard "a" (List.hd engines) in
      let spec =
        match Fault.Spec.of_string "seed=3,trunc:1.0" with
        | Ok s -> s
        | Error msg -> Alcotest.fail msg
      in
      let chaos =
        match Lcmm_tier.Chaos.create spec with
        | Some c -> c
        | None -> Alcotest.fail "expected transport faults"
      in
      let tier =
        Tier.create ~ring:(Ring.create [ "a" ]) ~shards:[ shard ] ~chaos ()
      in
      let resp = response_of (Tier.handle_line tier (compile_line "alexnet")) in
      Alcotest.check json_t "structured failure" (Json.Bool false)
        (field_exn "ok" resp);
      Alcotest.(check bool) "truncations counted" true
        (match List.assoc_opt "injected_truncs"
                 (Lcmm_tier.Chaos.counter_list chaos)
         with
        | Some n -> n >= 1
        | None -> false);
      Alcotest.(check bool) "rejected as invalid" true
        (counter tier "invalid_replies" >= 1))

(* Drain: stop admitting (except stats), finish in-flight, flush the
   front LRU back to the owners. *)
let test_tier_drain () =
  with_engines 1 (fun engines ->
      let shard = local_shard "a" (List.hd engines) in
      let tier =
        Tier.create ~ring:(Ring.create [ "a" ]) ~shards:[ shard ] ()
      in
      let line = compile_line "alexnet" in
      let warm = response_of (Tier.handle_line tier line) in
      Alcotest.check json_t "warm" (Json.Bool true) (field_exn "ok" warm);
      Tier.begin_drain tier;
      Alcotest.(check bool) "draining" true (Tier.draining tier);
      let refused = response_of (Tier.handle_line tier line) in
      Alcotest.check json_t "refused" (Json.Bool false)
        (field_exn "ok" refused);
      Alcotest.check json_t "unavailable kind" (Json.String "unavailable")
        (field_exn "kind" refused);
      Alcotest.check json_t "names the drain"
        (Json.String "unavailable: tier is draining")
        (field_exn "error" refused);
      (* stats stays open so the operator can watch the drain. *)
      let stats = response_of (Tier.handle_line tier {|{"op":"stats"}|}) in
      Alcotest.check json_t "stats still answered" (Json.Bool true)
        (field_exn "ok" stats);
      Alcotest.(check bool) "idle" true (Tier.await_idle ~timeout_s:1. tier);
      Alcotest.(check int) "front LRU flushed to the owner" 1
        (Tier.flush_cache tier);
      Alcotest.(check int) "flush counted" 1 (counter tier "flushed"))

(* --- load generator --- *)

let test_loadgen_divergence () =
  let good = ok_line (Json.Int 1) in
  let bad = ok_line (Json.Int 2) in
  let r_diverging =
    Loadgen.run
      ~handler:(fun _ -> bad)
      ~mix:[ "x" ] ~rps:100. ~duration_s:0.1 ~threads:2
      ~reference:(fun _ -> Some good)
      ()
  in
  Alcotest.(check int) "every success diverges" r_diverging.Loadgen.sent
    r_diverging.Loadgen.divergent;
  let r_matching =
    Loadgen.run
      ~handler:(fun _ -> good)
      ~mix:[ "x" ] ~rps:100. ~duration_s:0.1 ~threads:2
      ~reference:(fun _ -> Some good)
      ()
  in
  Alcotest.(check int) "byte-identical successes pass" 0
    r_matching.Loadgen.divergent;
  let r_unchecked =
    Loadgen.run
      ~handler:(fun _ -> bad)
      ~mix:[ "x" ] ~rps:100. ~duration_s:0.1 ~threads:2
      ~reference:(fun _ -> None)
      ()
  in
  Alcotest.(check int) "unmapped requests not checked" 0
    r_unchecked.Loadgen.divergent

let test_loadgen_counts_and_percentiles () =
  let handler _line = ok_line (Json.Int 1) in
  let r =
    Loadgen.run ~handler ~mix:[ "x"; "y" ] ~rps:500. ~duration_s:0.3
      ~threads:4 ()
  in
  Alcotest.(check int) "all requests sent" 150 r.Loadgen.sent;
  Alcotest.(check int) "all ok" r.Loadgen.sent r.Loadgen.ok;
  Alcotest.(check int) "no sheds" 0 r.Loadgen.shed;
  Alcotest.(check bool) "percentiles ordered" true
    (r.Loadgen.p50_ms <= r.Loadgen.p99_ms
    && r.Loadgen.p99_ms <= r.Loadgen.p999_ms
    && r.Loadgen.p999_ms <= r.Loadgen.max_ms);
  Alcotest.(check bool) "keeps up" true (Loadgen.keeps_up ~slo_p99_ms:1000. r)

let test_loadgen_classifies_sheds () =
  let handler _line =
    Dnn_serial.Wire.to_line
      (Dnn_serial.Wire.error ~op:"compile" ~kind:"overloaded"
         "overloaded: full")
  in
  let r =
    Loadgen.run ~handler ~mix:[ "x" ] ~rps:200. ~duration_s:0.2 ~threads:2 ()
  in
  Alcotest.(check int) "everything shed" r.Loadgen.sent r.Loadgen.shed;
  Alcotest.(check bool) "does not keep up" false
    (Loadgen.keeps_up ~slo_p99_ms:1000. r)

let test_loadgen_zoo_mix_deterministic () =
  let m1 = Loadgen.zoo_mix () and m2 = Loadgen.zoo_mix () in
  Alcotest.(check (list string)) "stable mix" m1 m2;
  Alcotest.(check bool) "non-empty" true (List.length m1 > 1)

let suite =
  [ Alcotest.test_case "ring: deterministic across creation order" `Quick
      test_ring_deterministic;
    Alcotest.test_case "ring: balances 10k digests within 35%" `Quick
      test_ring_balance;
    Alcotest.test_case "ring: adding a shard moves ~1/N keys, all to it"
      `Quick test_ring_minimal_movement;
    Alcotest.test_case "ring: successors start at owner, cover all shards"
      `Quick test_ring_successors;
    Alcotest.test_case "ring: rejects empty and duplicate members" `Quick
      test_ring_validation;
    Alcotest.test_case "shard: in-flight gate sheds, then recovers" `Quick
      test_shard_inflight_gate;
    Alcotest.test_case "shard: breaker opens after repeated failures" `Quick
      test_shard_breaker_opens;
    Alcotest.test_case
      "shard: breaker walks closed->open->half-open->closed" `Quick
      test_shard_breaker_half_open_sequence;
    Alcotest.test_case "shard: active probe closes the circuit" `Quick
      test_shard_probe_recovers;
    Alcotest.test_case "tier: front LRU and shard cache tiers" `Quick
      test_tier_cache_tiers;
    Alcotest.test_case "tier: peer fill after resharding, with backfill"
      `Quick test_tier_peer_fill;
    Alcotest.test_case "tier: fails over around a dead owner" `Quick
      test_tier_failover;
    Alcotest.test_case "tier: sheds with a structured overloaded error"
      `Quick test_tier_shedding;
    Alcotest.test_case "tier: cache_get/cache_put through the front" `Quick
      test_tier_cache_ops_through_front;
    Alcotest.test_case "tier: retries mask a transient failure" `Quick
      test_tier_retries_mask_transient;
    Alcotest.test_case "tier: forwards digest id, sum, remaining deadline"
      `Quick test_tier_forwarded_envelope;
    Alcotest.test_case "tier: expired deadline answered by the router"
      `Quick test_tier_deadline_expires_in_router;
    Alcotest.test_case "tier: hedges a slow primary" `Quick test_tier_hedging;
    Alcotest.test_case "tier: rejects a corrupted reply" `Quick
      test_tier_rejects_corrupt_reply;
    Alcotest.test_case "tier: chaos injection surfaces structured errors"
      `Quick test_tier_chaos_injection;
    Alcotest.test_case "tier: drain refuses, finishes, flushes" `Quick
      test_tier_drain;
    Alcotest.test_case "loadgen: open-loop counts and percentiles" `Quick
      test_loadgen_counts_and_percentiles;
    Alcotest.test_case "loadgen: classifies structured sheds" `Quick
      test_loadgen_classifies_sheds;
    Alcotest.test_case "loadgen: zoo mix is deterministic" `Quick
      test_loadgen_zoo_mix_deterministic;
    Alcotest.test_case "loadgen: counts divergence from a reference" `Quick
      test_loadgen_divergence ]
