(* Branch-and-bound exact allocator. *)

module Metric = Lcmm.Metric
module Exact = Lcmm.Exact
module Policies = Lcmm.Policies
module Vbuffer = Lcmm.Vbuffer

let dtype = Tensor.Dtype.I16

let singleton_vbufs m =
  Metric.eligible_items m ~memory_bound_only:false
  |> List.mapi (fun i item ->
         Vbuffer.singleton ~vbuf_id:i item
           ~size_bytes:(Metric.item_size_bytes dtype m item))

let test_matches_enumeration () =
  List.iter
    (fun g ->
      let _, m = Helpers.metric_of g in
      let vbufs = singleton_vbufs m in
      List.iter
        (fun capacity_bytes ->
          let bb = Exact.solve m ~capacity_bytes vbufs in
          let enum =
            Policies.run m ~dtype ~capacity_bytes vbufs Policies.Exact_small
          in
          Alcotest.(check bool) "proven optimal" true bb.Exact.proven_optimal;
          Alcotest.(check (float 1e-12)) "same optimum" enum.Policies.latency
            bb.Exact.latency)
        [ 0; 256 * 1024; 1024 * 1024; 64 * 1024 * 1024 ])
    [ Helpers.chain (); Helpers.diamond (); Helpers.inception_snippet () ]

let test_dominates_heuristics_at_scale () =
  (* GoogLeNet has far more items than enumeration can handle; B&B still
     closes and must not lose to DNNK or greedy. *)
  let g = Models.Zoo.build "googlenet" in
  let _, m = Helpers.metric_of g in
  let vbufs = singleton_vbufs m in
  let capacity_bytes = 4 * 1024 * 1024 in
  let bb = Exact.solve ~node_budget:300_000 m ~capacity_bytes vbufs in
  (* Seeded with DNNK, the search can only improve on it, budget or not. *)
  let dnnk = Policies.run m ~dtype ~capacity_bytes vbufs (Policies.Dnnk_policy Lcmm.Dnnk.Table_approx) in
  Alcotest.(check bool)
    (Printf.sprintf "bb (%g) <= dnnk (%g)" bb.Exact.latency dnnk.Policies.latency)
    true
    (bb.Exact.latency <= dnnk.Policies.latency +. 1e-12);
  if bb.Exact.proven_optimal then
    List.iter
      (fun p ->
        let o = Policies.run m ~dtype ~capacity_bytes vbufs p in
        Alcotest.(check bool)
          (Printf.sprintf "bb (%g) <= %s (%g)" bb.Exact.latency
             o.Policies.policy_name o.Policies.latency)
          true
          (bb.Exact.latency <= o.Policies.latency +. 1e-12))
      [ Policies.Greedy; Policies.Dnnk_policy Lcmm.Dnnk.Exact_iterative ]

let test_budget_degrades_gracefully () =
  let g = Models.Zoo.build "googlenet" in
  let _, m = Helpers.metric_of g in
  let vbufs = singleton_vbufs m in
  let r = Exact.solve ~node_budget:50 m ~capacity_bytes:(4 * 1024 * 1024) vbufs in
  Alcotest.(check bool) "budget reported" false r.Exact.proven_optimal;
  Alcotest.(check bool) "still sound" true
    (r.Exact.latency <= Accel.Latency.umm_total m.Metric.profiles +. 1e-12);
  Alcotest.(check bool) "explored within budget" true (r.Exact.nodes_explored <= 50)

let test_zero_capacity () =
  (* Nothing fits: the only feasible allocation is empty, it is trivially
     optimal, and the latency is the UMM total. *)
  let g = Helpers.diamond () in
  let _, m = Helpers.metric_of g in
  let vbufs = singleton_vbufs m in
  let r = Exact.solve m ~capacity_bytes:0 vbufs in
  Alcotest.(check int) "nothing chosen" 0 (List.length r.Exact.chosen);
  Alcotest.(check bool) "empty on-chip set" true
    (Metric.Item_set.is_empty r.Exact.on_chip);
  Alcotest.(check bool) "proven optimal" true r.Exact.proven_optimal;
  Alcotest.(check (float 1e-12)) "latency is the UMM total"
    (Accel.Latency.umm_total m.Metric.profiles)
    r.Exact.latency

let test_capacity_exceeds_all_buffers () =
  (* Room for everything: pinning the full set dominates any subset, so
     the solver must choose every buffer and prove it. *)
  let g = Helpers.inception_snippet () in
  let _, m = Helpers.metric_of g in
  let vbufs = singleton_vbufs m in
  let r = Exact.solve m ~capacity_bytes:(1024 * 1024 * 1024) vbufs in
  Alcotest.(check int) "every buffer chosen" (List.length vbufs)
    (List.length r.Exact.chosen);
  Alcotest.(check bool) "proven optimal" true r.Exact.proven_optimal;
  let all =
    Metric.Item_set.of_list
      (List.concat_map (fun vb -> vb.Vbuffer.members) vbufs)
  in
  Alcotest.(check (float 1e-12)) "latency of the full set"
    (Metric.total_latency m ~on_chip:all)
    r.Exact.latency

let test_exhausted_budget_keeps_dnnk_seed () =
  (* With the search cut to a single node the incumbent never improves,
     so the result must be exactly the DNNK seed: same latency, not
     proven. *)
  let g = Models.Zoo.build "googlenet" in
  let _, m = Helpers.metric_of g in
  let vbufs = singleton_vbufs m in
  let capacity_bytes = 4 * 1024 * 1024 in
  let r = Exact.solve ~node_budget:1 m ~capacity_bytes vbufs in
  let dnnk = Lcmm.Dnnk.allocate m ~capacity_bytes vbufs in
  Alcotest.(check bool) "not proven" false r.Exact.proven_optimal;
  Alcotest.(check bool) "no worse than the seed" true
    (r.Exact.latency <= dnnk.Lcmm.Dnnk.predicted_latency +. 1e-12)

let test_rejects_negative_capacity () =
  let _, m = Helpers.metric_of (Helpers.chain ()) in
  Alcotest.check_raises "negative" (Invalid_argument "Exact.solve: negative capacity")
    (fun () -> ignore (Exact.solve m ~capacity_bytes:(-1) []))

let prop_never_worse_than_dnnk =
  Helpers.qtest ~count:12 "B&B never loses to DNNK on random graphs"
    Helpers.random_graph_gen (fun g ->
      let _, m = Helpers.metric_of g in
      let vbufs = singleton_vbufs m in
      let capacity_bytes = 512 * 1024 in
      let bb = Exact.solve m ~capacity_bytes vbufs in
      let dnnk = Lcmm.Dnnk.allocate m ~capacity_bytes vbufs in
      bb.Exact.latency <= dnnk.Lcmm.Dnnk.predicted_latency +. 1e-12)

let suite =
  [ Alcotest.test_case "matches enumeration" `Quick test_matches_enumeration;
    Alcotest.test_case "dominates heuristics at scale" `Slow test_dominates_heuristics_at_scale;
    Alcotest.test_case "budget degrades gracefully" `Quick test_budget_degrades_gracefully;
    Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
    Alcotest.test_case "capacity exceeds all buffers" `Quick test_capacity_exceeds_all_buffers;
    Alcotest.test_case "exhausted budget keeps the seed" `Quick test_exhausted_budget_keeps_dnnk_seed;
    Alcotest.test_case "rejects negative capacity" `Quick test_rejects_negative_capacity;
    prop_never_worse_than_dnnk ]
