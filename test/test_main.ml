(* Aggregated test runner for the whole repository. *)

let () =
  Alcotest.run "lcmm"
    [ ("tensor", Test_tensor.suite);
      ("op", Test_op.suite);
      ("graph", Test_graph.suite);
      ("models", Test_models.suite);
      ("fpga", Test_fpga.suite);
      ("accel", Test_accel.suite);
      ("liveness", Test_liveness.suite);
      ("interference", Test_interference.suite);
      ("metric", Test_metric.suite);
      ("prefetch", Test_prefetch.suite);
      ("dnnk", Test_dnnk.suite);
      ("splitting", Test_splitting.suite);
      ("policies", Test_policies.suite);
      ("framework", Test_framework.suite);
      ("design-space", Test_design_space.suite);
      ("sim", Test_sim.suite);
      ("refine", Test_refine.suite);
      ("serial", Test_serial.suite);
      ("schedule", Test_schedule.suite);
      ("slicing", Test_slicing.suite);
      ("integration", Test_integration.suite);
      ("exact", Test_exact.suite);
      ("report", Test_report.suite);
      ("interp", Test_interp.suite);
      ("placement", Test_placement.suite);
      ("traffic", Test_traffic.suite);
      ("matrix", Test_matrix.suite);
      ("reproduction", Test_reproduction.suite);
      ("service", Test_service.suite);
      ("tier", Test_tier.suite);
      ("runtime", Test_runtime.suite);
      ("fault", Test_fault.suite);
      ("fusion", Test_fusion.suite);
      ("check", Test_check.suite) ]
