(* The multi-tenant board runtime: SRAM partitioning, admission control,
   the transfer scheduler/arbiter, and the bandwidth-contended
   co-simulation engine.

   The load-bearing invariant is single-tenant exactness: with one
   tenant on the board the contended engine must reproduce
   Sim.Engine.simulate bit for bit — same starts, finishes, waits and
   bindings on every node of every zoo model.  The multi-tenant
   invariants are then inequalities: contention never makes anyone
   faster than isolation, DDR bytes are conserved under every policy,
   admission never over-commits the SRAM budget. *)

module Rt = Lcmm_runtime
module F = Lcmm.Framework

let dtype = Tensor.Dtype.I16

(* Compile a model exactly the way the runtime does when the partition
   grants the whole budget: DSE for the LCMM style, unconstrained plan,
   isolated reference simulation. *)
let compile model =
  let g = Models.Zoo.build model in
  let dse =
    Accel.Dse.run ~device:Fpga.Device.vu9p ~style:Accel.Config.Lcmm dtype g
  in
  let plan = F.plan dse.Accel.Dse.config g in
  let iso =
    Sim.Engine.simulate ?prefetch:plan.F.prefetch plan.F.metric
      ~on_chip:plan.F.allocation.Lcmm.Dnnk.on_chip
  in
  (g, plan, iso)

let spec ?(priority = 0) ?(arrival = 0.) model k g =
  { Rt.Runtime.name = Printf.sprintf "%s#%d" model k;
    model;
    graph = g;
    priority;
    arrival }

let replicas model n =
  let g = Models.Zoo.build model in
  List.init n (fun k -> spec model k g)

let run_mix ?(scheduler = Rt.Scheduler.Edf)
    ?(arbitration = Rt.Arbiter.Fair_share) ?(channels = 1) specs =
  Rt.Runtime.run
    { Rt.Runtime.default_options with scheduler; arbitration; channels }
    specs

let admitted report =
  List.filter
    (fun (t : Rt.Report.tenant_report) -> t.Rt.Report.status = Rt.Report.Admitted)
    report.Rt.Report.tenants

(* --- single-tenant exactness --- *)

(* Engine level: one tenant's co-simulation must equal the reference
   discrete-event run on every node — starts, finishes, waits,
   bindings, and the run-level aggregates.  Exact float equality; any
   arithmetic drift in the shared-bus path would show up here. *)
let check_engine_exact model =
  let _, plan, iso = compile model in
  let slack target =
    match plan.F.prefetch with
    | None -> 0.
    | Some pdg -> (
      match Lcmm.Prefetch.source_of pdg target with
      | Some s ->
        iso.Sim.Engine.timings.(target).Sim.Engine.start
        -. iso.Sim.Engine.timings.(s).Sim.Engine.start
      | None -> 0.)
  in
  List.iter
    (fun (arbitration, scheduler) ->
      let result =
        Rt.Engine.run ~arbitration ~scheduler
          [| { Rt.Engine.label = model;
               metric = plan.F.metric;
               on_chip = plan.F.allocation.Lcmm.Dnnk.on_chip;
               prefetch = plan.F.prefetch;
               arrival = 0.;
               priority = 0;
               slack;
               replan = None } |]
      in
      let t = result.Rt.Engine.tenants.(0) in
      Alcotest.(check int)
        (model ^ " node count")
        (Array.length iso.Sim.Engine.timings)
        (Array.length t.Rt.Engine.timings);
      Array.iteri
        (fun i (ref_t : Sim.Engine.node_timing) ->
          let got = t.Rt.Engine.timings.(i) in
          let tag what = Printf.sprintf "%s node %d %s" model i what in
          Alcotest.(check bool) (tag "start") true
            (got.Sim.Engine.start = ref_t.Sim.Engine.start);
          Alcotest.(check bool) (tag "finish") true
            (got.Sim.Engine.finish = ref_t.Sim.Engine.finish);
          Alcotest.(check bool) (tag "wait") true
            (got.Sim.Engine.wait = ref_t.Sim.Engine.wait);
          Alcotest.(check bool) (tag "binding") true
            (got.Sim.Engine.binding = ref_t.Sim.Engine.binding))
        iso.Sim.Engine.timings;
      Alcotest.(check bool) (model ^ " total") true
        (t.Rt.Engine.finish = iso.Sim.Engine.total);
      Alcotest.(check bool) (model ^ " prefetch wait") true
        (t.Rt.Engine.prefetch_wait = iso.Sim.Engine.prefetch_wait);
      Alcotest.(check bool) (model ^ " channel busy") true
        (t.Rt.Engine.wt_channel_busy = iso.Sim.Engine.wt_channel_busy))
    [ (Rt.Arbiter.Fair_share, Rt.Scheduler.Greedy);
      (Rt.Arbiter.Fair_share, Rt.Scheduler.Edf);
      (Rt.Arbiter.Priority, Rt.Scheduler.Greedy);
      (Rt.Arbiter.Priority, Rt.Scheduler.Edf) ]

let test_engine_exact_small () =
  List.iter check_engine_exact [ "alexnet"; "googlenet" ]

(* Driver level, across the whole zoo: a lone tenant gets the full
   budget, reuses the unconstrained plan, and reports exactly the
   latency `lcmm sim` would. *)
let test_single_tenant_zoo_exact () =
  List.iter
    (fun (e : Models.Zoo.entry) ->
      let model = e.Models.Zoo.model_name in
      let _, _, iso = compile model in
      let report = run_mix (replicas model 1) in
      match admitted report with
      | [ t ] ->
        Alcotest.(check bool) (model ^ " latency exact") true
          (t.Rt.Report.latency_ms = iso.Sim.Engine.total *. 1e3);
        Alcotest.(check bool) (model ^ " isolated = latency") true
          (t.Rt.Report.isolated_ms = t.Rt.Report.latency_ms);
        Alcotest.(check bool) (model ^ " slowdown 1") true
          (t.Rt.Report.slowdown = 1.);
        Alcotest.(check bool) (model ^ " makespan") true
          (report.Rt.Report.makespan_ms = t.Rt.Report.latency_ms)
      | _ -> Alcotest.failf "%s: expected one admitted tenant" model)
    Models.Zoo.all

(* --- multi-tenant inequalities --- *)

(* Contention can only hurt: every tenant is at least as slow as its
   partitioned isolated run, and the makespan covers the slowest
   isolated run — the zero-contention lower bound. *)
let test_makespan_lower_bounds () =
  List.iter
    (fun scheduler ->
      let report = run_mix ~scheduler (replicas "googlenet" 2) in
      let ts = admitted report in
      Alcotest.(check int) "both admitted" 2 (List.length ts);
      List.iter
        (fun (t : Rt.Report.tenant_report) ->
          Alcotest.(check bool)
            (t.Rt.Report.name ^ " latency >= isolated")
            true
            (t.Rt.Report.latency_ms >= t.Rt.Report.isolated_ms))
        ts;
      let max_iso =
        List.fold_left
          (fun acc (t : Rt.Report.tenant_report) ->
            Float.max acc t.Rt.Report.isolated_ms)
          0. ts
      in
      Alcotest.(check bool) "makespan >= max isolated" true
        (report.Rt.Report.makespan_ms >= max_iso))
    [ Rt.Scheduler.Greedy; Rt.Scheduler.Edf ]

(* Arbitration and scheduling reorder transfers; they must not create
   or destroy DDR traffic.  Byte counts are integer-valued, so the
   per-tenant sums are exact under any completion order. *)
let test_ddr_bytes_conserved () =
  let specs = replicas "googlenet" 2 in
  let baseline = ref [] in
  List.iter
    (fun (arbitration, scheduler) ->
      let report = run_mix ~arbitration ~scheduler specs in
      let bytes =
        List.map
          (fun (t : Rt.Report.tenant_report) ->
            (t.Rt.Report.name, t.Rt.Report.ddr_mb))
          (admitted report)
      in
      match !baseline with
      | [] -> baseline := bytes
      | b ->
        List.iter2
          (fun (name, mb) (name', mb') ->
            Alcotest.(check string) "tenant order stable" name name';
            Alcotest.(check (float 1e-9)) (name ^ " ddr conserved") mb mb')
          b bytes)
    [ (Rt.Arbiter.Fair_share, Rt.Scheduler.Greedy);
      (Rt.Arbiter.Fair_share, Rt.Scheduler.Edf);
      (Rt.Arbiter.Priority, Rt.Scheduler.Greedy);
      (Rt.Arbiter.Priority, Rt.Scheduler.Edf) ]

(* On mixes whose tenants have comparable slack scales (the benchmark
   suite), urgency-ordering the bus beats letting everything share it. *)
let test_edf_never_worse_on_suite () =
  List.iter
    (fun mix ->
      let specs =
        List.concat_map (fun (model, count) -> replicas model count) mix
      in
      let greedy = run_mix ~scheduler:Rt.Scheduler.Greedy specs in
      let edf = run_mix ~scheduler:Rt.Scheduler.Edf specs in
      Alcotest.(check bool)
        (Printf.sprintf "edf <= greedy on %s"
           (String.concat "+" (List.map fst mix)))
        true
        (edf.Rt.Report.makespan_ms <= greedy.Rt.Report.makespan_ms))
    [ [ ("googlenet", 2) ]; [ ("resnet50", 2) ]; [ ("alexnet", 2) ] ]

(* --- partition / admission / policy units --- *)

let test_partition_split () =
  List.iter
    (fun policy ->
      let budget = 1_000_000 in
      let demands = [| 900_000; 300_000; 0; 123_456 |] in
      let grants = Rt.Partition.split policy ~budget_bytes:budget ~demands in
      Alcotest.(check int) "one grant per demand" (Array.length demands)
        (Array.length grants);
      Alcotest.(check bool) "grants within budget" true
        (Array.fold_left ( + ) 0 grants <= budget);
      Array.iter
        (fun g -> Alcotest.(check bool) "non-negative" true (g >= 0))
        grants)
    Rt.Partition.all;
  (* Equal splits equally; demand-weighted covers every demand when the
     total fits. *)
  let eq =
    Rt.Partition.split Rt.Partition.Equal ~budget_bytes:900 ~demands:[| 1; 2; 3 |]
  in
  Alcotest.(check bool) "equal shares" true (eq = [| 300; 300; 300 |]);
  let dw =
    Rt.Partition.split Rt.Partition.Demand_weighted ~budget_bytes:1000
      ~demands:[| 100; 300 |]
  in
  Alcotest.(check bool) "demands covered" true (dw.(0) >= 100 && dw.(1) >= 300)

(* Admission over a pseudo-random demand sweep: admitted grants never
   exceed the budget, every admitted tenant keeps its minimum useful
   share, and a lone infeasible tenant is rejected, not queued. *)
let test_admission_never_overcommits () =
  let state = ref 123456789 in
  let rand bound =
    (* Deterministic LCG: the sweep must not depend on global state. *)
    state := (1103515245 * !state + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  for _ = 1 to 200 do
    let n = 1 + rand 6 in
    let budget = rand 4_000_000 in
    let min_grant = 32_768 in
    let demands =
      Array.init n (fun _ ->
          { Rt.Admission.sram_bytes = rand 2_000_000;
            bandwidth = float_of_int (rand 1_000) *. 1e6 })
    in
    List.iter
      (fun partition ->
        let decisions =
          Rt.Admission.decide ~min_grant_bytes:min_grant ~partition
            ~budget_bytes:budget ~board_bandwidth:50e9 ~overcommit:4.0 demands
        in
        let granted = ref 0 in
        Array.iteri
          (fun i d ->
            match d with
            | Rt.Admission.Admitted { grant_bytes } ->
              granted := !granted + grant_bytes;
              let required = min demands.(i).Rt.Admission.sram_bytes min_grant in
              Alcotest.(check bool) "grant covers minimum" true
                (grant_bytes >= required)
            | Rt.Admission.Queued _ -> ()
            | Rt.Admission.Rejected _ ->
              let required = min demands.(i).Rt.Admission.sram_bytes min_grant in
              Alcotest.(check bool) "rejected only when infeasible alone" true
                (required > budget))
          decisions;
        Alcotest.(check bool) "grants within budget" true (!granted <= budget))
      Rt.Partition.all
  done

let test_scheduler_eligibility () =
  let pending =
    [ { Rt.Scheduler.key = 0; deadline = 3.; priority = 0; rank = 0. };
      { Rt.Scheduler.key = 1; deadline = 1.; priority = 5; rank = 0. };
      { Rt.Scheduler.key = 2; deadline = 1.; priority = 2; rank = 0. } ]
  in
  Alcotest.(check (list int)) "greedy admits all" [ 0; 1; 2 ]
    (List.sort compare (Rt.Scheduler.eligible Rt.Scheduler.Greedy pending));
  (* EDF: earliest deadline, priority breaking the tie. *)
  Alcotest.(check (list int)) "edf picks most urgent" [ 2 ]
    (Rt.Scheduler.eligible Rt.Scheduler.Edf pending);
  Alcotest.(check (list int)) "edf of nothing" []
    (Rt.Scheduler.eligible Rt.Scheduler.Edf []);
  (* Optimized: lowest rank wins regardless of deadline; all-zero ranks
     degenerate to EDF. *)
  Alcotest.(check (list int)) "optimized without ranks = edf" [ 2 ]
    (Rt.Scheduler.eligible Rt.Scheduler.Optimized pending);
  let ranked =
    List.map
      (fun p ->
        { p with Rt.Scheduler.rank = (if p.Rt.Scheduler.key = 0 then 1. else 2.) })
      pending
  in
  Alcotest.(check (list int)) "optimized follows ranks" [ 0 ]
    (Rt.Scheduler.eligible Rt.Scheduler.Optimized ranked)

let test_arbiter_rates () =
  let jobs = [ (10, 1); (11, 0); (12, 1) ] in
  let fair = Rt.Arbiter.rates Rt.Arbiter.Fair_share jobs in
  List.iter
    (fun (_, r) -> Alcotest.(check (float 1e-12)) "fair share" (1. /. 3.) r)
    fair;
  let prio = Rt.Arbiter.rates Rt.Arbiter.Priority jobs in
  List.iter
    (fun (key, r) ->
      Alcotest.(check (float 0.)) "priority winner-takes-all"
        (if key = 11 then 1. else 0.)
        r)
    prio;
  Alcotest.(check (list (pair int (float 0.)))) "empty" []
    (Rt.Arbiter.rates Rt.Arbiter.Fair_share [])

(* --- per-channel timelines and the schedule optimizer --- *)

let integral segs =
  List.fold_left
    (fun acc (s : Rt.Engine.segment) ->
      acc
      +. ((s.Rt.Engine.seg_end -. s.Rt.Engine.seg_start)
         *. s.Rt.Engine.utilization))
    0. segs

(* One channel is the aggregate model, structurally: the single channel
   timeline IS the aggregate timeline, and the report omits every
   channel field. *)
let test_single_channel_is_aggregate () =
  let report = run_mix (replicas "googlenet" 2) in
  Alcotest.(check int) "one channel" 1 report.Rt.Report.channels;
  Alcotest.(check int) "one channel timeline" 1
    (Array.length report.Rt.Report.channel_timelines);
  Alcotest.(check bool) "channel 0 timeline = aggregate" true
    (report.Rt.Report.channel_timelines.(0) = report.Rt.Report.timeline);
  let json = Dnn_serial.Json.to_string (Rt.Report.to_json report) in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no channel fields in 1-channel json" false
    (contains json "channel_timelines")

(* Striping conserves work: the per-channel utilization integrals sum
   to the aggregate timeline's integral (same transfers, same rates,
   just bucketed per channel). *)
let test_channel_busy_conservation () =
  List.iter
    (fun scheduler ->
      let report = run_mix ~scheduler ~channels:2 (replicas "googlenet" 2) in
      Alcotest.(check int) "two channels" 2 report.Rt.Report.channels;
      let agg = integral report.Rt.Report.timeline in
      let per =
        Array.fold_left
          (fun acc segs -> acc +. integral segs)
          0. report.Rt.Report.channel_timelines
      in
      Alcotest.(check (float 1e-9)) "channel integrals sum to aggregate" agg
        per)
    [ Rt.Scheduler.Greedy; Rt.Scheduler.Edf ]

(* The optimizer's portfolio guarantee: on contended mixes, under both
   arbiters and channel widths, optimized never loses to greedy or edf,
   and its telemetry is well-formed (bounded rounds, history matching,
   convergence on these mixes). *)
let test_optimized_never_worse () =
  List.iter
    (fun (mix, arbitration, channels) ->
      let specs =
        List.concat_map
          (fun (model, count, priority) ->
            List.init count (fun k ->
                spec ~priority model k (Models.Zoo.build model)))
          mix
      in
      let label =
        String.concat "+" (List.map (fun (m, _, _) -> m) mix)
      in
      let greedy =
        run_mix ~scheduler:Rt.Scheduler.Greedy ~arbitration ~channels specs
      in
      let edf =
        run_mix ~scheduler:Rt.Scheduler.Edf ~arbitration ~channels specs
      in
      let opt =
        run_mix ~scheduler:Rt.Scheduler.Optimized ~arbitration ~channels specs
      in
      let baseline =
        Float.min greedy.Rt.Report.makespan_ms edf.Rt.Report.makespan_ms
      in
      Alcotest.(check bool)
        (Printf.sprintf "optimized <= min(greedy, edf) on %s" label)
        true
        (opt.Rt.Report.makespan_ms <= baseline +. 1e-9);
      match opt.Rt.Report.schedule with
      | None -> Alcotest.failf "%s: optimized run has no schedule info" label
      | Some s ->
        Alcotest.(check bool) (label ^ " rounds within bound") true
          (s.Rt.Report.sched_rounds >= 1
          && s.Rt.Report.sched_rounds
             <= Rt.Runtime.default_options.Rt.Runtime.schedule_rounds);
        Alcotest.(check int) (label ^ " history per round")
          s.Rt.Report.sched_rounds
          (List.length s.Rt.Report.sched_history_ms);
        Alcotest.(check bool) (label ^ " converged") true
          s.Rt.Report.sched_converged;
        Alcotest.(check bool) (label ^ " baselines in candidate list") true
          (List.mem_assoc "greedy" s.Rt.Report.sched_candidates
          && List.mem_assoc "edf" s.Rt.Report.sched_candidates))
    [ ([ ("googlenet", 2, 0) ], Rt.Arbiter.Fair_share, 1);
      ([ ("alexnet", 2, 0) ], Rt.Arbiter.Fair_share, 2);
      ([ ("googlenet", 2, 0); ("alexnet", 1, 1) ], Rt.Arbiter.Priority, 1);
      ([ ("squeezenet", 2, 0); ("alexnet", 1, 1) ], Rt.Arbiter.Priority, 2) ]

(* Under priority arbitration the optimizer minimizes high-priority
   slowdown within the portfolio guarantee, so it can never report a
   worse high-priority slowdown than EDF. *)
let hp_slowdown report =
  let ts = admitted report in
  let hp =
    List.fold_left
      (fun acc (t : Rt.Report.tenant_report) -> min acc t.Rt.Report.priority)
      max_int ts
  in
  List.fold_left
    (fun acc (t : Rt.Report.tenant_report) ->
      if t.Rt.Report.priority = hp then Float.max acc t.Rt.Report.slowdown
      else acc)
    1. ts

let test_optimized_hp_slowdown () =
  let specs =
    List.concat_map
      (fun (model, count, priority) ->
        List.init count (fun k ->
            spec ~priority model k (Models.Zoo.build model)))
      [ ("googlenet", 2, 0); ("alexnet", 2, 1) ]
  in
  let edf =
    run_mix ~scheduler:Rt.Scheduler.Edf ~arbitration:Rt.Arbiter.Priority specs
  in
  let opt =
    run_mix ~scheduler:Rt.Scheduler.Optimized ~arbitration:Rt.Arbiter.Priority
      specs
  in
  Alcotest.(check bool) "hp slowdown <= edf's" true
    (hp_slowdown opt <= hp_slowdown edf +. 1e-9);
  Alcotest.(check bool) "makespan still <= edf's" true
    (opt.Rt.Report.makespan_ms <= edf.Rt.Report.makespan_ms +. 1e-9)

(* The whole search is deterministic: same mix, same channel count,
   same chosen candidate and byte-identical report JSON. *)
let test_optimizer_deterministic () =
  let once () =
    let report =
      run_mix ~scheduler:Rt.Scheduler.Optimized ~channels:2
        (replicas "googlenet" 2)
    in
    (Dnn_serial.Json.to_string (Rt.Report.to_json report),
     match report.Rt.Report.schedule with
     | Some s -> s.Rt.Report.sched_chosen
     | None -> "")
  in
  let j1, c1 = once () in
  let j2, c2 = once () in
  Alcotest.(check string) "chosen candidate stable" c1 c2;
  Alcotest.(check string) "report json byte-identical" j1 j2

(* --- report plumbing --- *)

let test_report_json_shape () =
  let report = run_mix (replicas "alexnet" 2) in
  let json = Rt.Report.to_json report in
  let field name =
    match Dnn_serial.Json.member name json with
    | Ok v -> v
    | Error msg -> Alcotest.failf "missing %s: %s" name msg
  in
  (match field "tenants" with
  | Dnn_serial.Json.List l -> Alcotest.(check int) "two tenants" 2 (List.length l)
  | _ -> Alcotest.fail "tenants not a list");
  (match field "bandwidth_timeline" with
  | Dnn_serial.Json.List (_ :: _) -> ()
  | _ -> Alcotest.fail "expected a non-empty timeline");
  ignore (field "makespan_ms");
  ignore (field "bus_busy_fraction");
  (* The timeline's busy time must equal the reported fraction. *)
  let sum =
    List.fold_left
      (fun acc (s : Rt.Engine.segment) ->
        acc
        +. ((s.Rt.Engine.seg_end -. s.Rt.Engine.seg_start)
           *. Float.min 1. s.Rt.Engine.utilization))
      0. report.Rt.Report.timeline
  in
  Alcotest.(check (float 1e-9)) "bus fraction consistent"
    (sum /. (report.Rt.Report.makespan_ms /. 1e3))
    report.Rt.Report.bus_busy_fraction

let suite =
  [ Alcotest.test_case "engine exact (single tenant)" `Quick
      test_engine_exact_small;
    Alcotest.test_case "single tenant = lcmm sim across the zoo" `Slow
      test_single_tenant_zoo_exact;
    Alcotest.test_case "makespan lower bounds" `Quick
      test_makespan_lower_bounds;
    Alcotest.test_case "ddr bytes conserved" `Quick test_ddr_bytes_conserved;
    Alcotest.test_case "edf <= greedy on the suite" `Quick
      test_edf_never_worse_on_suite;
    Alcotest.test_case "partition split" `Quick test_partition_split;
    Alcotest.test_case "admission never over-commits" `Quick
      test_admission_never_overcommits;
    Alcotest.test_case "scheduler eligibility" `Quick
      test_scheduler_eligibility;
    Alcotest.test_case "arbiter rates" `Quick test_arbiter_rates;
    Alcotest.test_case "one channel = aggregate timeline" `Quick
      test_single_channel_is_aggregate;
    Alcotest.test_case "channel busy integrals conserved" `Quick
      test_channel_busy_conservation;
    Alcotest.test_case "optimized <= min(greedy, edf)" `Slow
      test_optimized_never_worse;
    Alcotest.test_case "optimized hp slowdown <= edf" `Slow
      test_optimized_hp_slowdown;
    Alcotest.test_case "optimizer deterministic" `Slow
      test_optimizer_deterministic;
    Alcotest.test_case "report json shape" `Quick test_report_json_shape ]
