(* JSON and graph (de)serialization. *)

module Json = Dnn_serial.Json
module Codec = Dnn_serial.Codec
module Wire = Dnn_serial.Wire
module G = Dnn_graph.Graph

let json_t = Alcotest.testable Json.pp Json.equal

let parse_exn s =
  match Json.of_string s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_json_values () =
  Alcotest.check json_t "int" (Json.Int 42) (parse_exn "42");
  Alcotest.check json_t "negative" (Json.Int (-7)) (parse_exn "-7");
  Alcotest.check json_t "float" (Json.Float 2.5) (parse_exn "2.5");
  Alcotest.check json_t "bool" (Json.Bool true) (parse_exn "true");
  Alcotest.check json_t "null" Json.Null (parse_exn "null");
  Alcotest.check json_t "string" (Json.String "hi") (parse_exn "\"hi\"");
  Alcotest.check json_t "escapes" (Json.String "a\"b\n") (parse_exn "\"a\\\"b\\n\"");
  Alcotest.check json_t "empty array" (Json.List []) (parse_exn "[]");
  Alcotest.check json_t "array" (Json.List [ Json.Int 1; Json.Int 2 ]) (parse_exn "[1, 2]");
  Alcotest.check json_t "object"
    (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Null ]) ])
    (parse_exn "{\"a\": 1, \"b\": [null]}")

let test_json_errors () =
  let bad s =
    match Json.of_string s with
    | Ok v -> Alcotest.failf "expected error for %S, got %s" s (Json.to_string v)
    | Error _ -> ()
  in
  bad "";
  bad "[1, 2";
  bad "{\"a\": }";
  bad "trailing 1 2";
  bad "\"unterminated";
  bad "{1: 2}";
  bad "nul"

let test_json_roundtrip_compact_and_pretty () =
  let v =
    Json.Obj
      [ ("name", Json.String "x\"y");
        ("xs", Json.List [ Json.Int 1; Json.Bool false; Json.Null ]);
        ("nested", Json.Obj [ ("f", Json.Float 1.5) ]) ]
  in
  Alcotest.check json_t "compact" v (parse_exn (Json.to_string v));
  Alcotest.check json_t "pretty" v (parse_exn (Json.to_string ~indent:2 v))

let test_json_accessors () =
  let v = parse_exn "{\"a\": 3, \"b\": \"s\", \"c\": [1]}" in
  Alcotest.(check (result int string)) "member int" (Ok 3)
    (Result.bind (Json.member "a" v) Json.to_int);
  Alcotest.(check bool) "missing member" true
    (Result.is_error (Json.member "zz" v));
  Alcotest.(check bool) "member_opt" true (Json.member_opt "b" v <> None);
  Alcotest.(check bool) "to_int of string fails" true
    (Result.is_error (Result.bind (Json.member "b" v) Json.to_int))

let test_json_numeric_and_bool_accessors () =
  Alcotest.(check (result (float 0.) string)) "to_float of float" (Ok 2.5)
    (Json.to_float (Json.Float 2.5));
  Alcotest.(check (result (float 0.) string)) "to_float widens ints" (Ok 3.)
    (Json.to_float (Json.Int 3));
  Alcotest.(check bool) "to_float of string fails" true
    (Result.is_error (Json.to_float (Json.String "2.5")));
  Alcotest.(check (result bool string)) "to_bool" (Ok true)
    (Json.to_bool (Json.Bool true));
  Alcotest.(check bool) "to_bool of int fails" true
    (Result.is_error (Json.to_bool (Json.Int 1)))

let rec gen_json depth =
  let open QCheck2.Gen in
  if depth = 0 then
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
        (* Finite floats only: the printer uses %.17g (or %.1f for
           integer-valued ones), both of which parse back exactly. *)
        map (fun f -> Json.Float f) (float_range (-1e12) 1e12);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 12)) ]
  else
    oneof
      [ gen_json 0;
        map (fun l -> Json.List l) (list_size (int_range 0 4) (gen_json (depth - 1)));
        map
          (fun kvs ->
            (* Duplicate keys make round-trips ambiguous: dedup. *)
            let seen = Hashtbl.create 8 in
            Json.Obj
              (List.filter
                 (fun (k, _) ->
                   if Hashtbl.mem seen k then false
                   else begin
                     Hashtbl.add seen k ();
                     true
                   end)
                 kvs))
          (list_size (int_range 0 4)
             (pair (string_size ~gen:printable (int_range 1 8)) (gen_json (depth - 1)))) ]

let prop_json_roundtrip =
  Helpers.qtest ~count:200 "print/parse round-trip" (gen_json 3) (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> Json.equal v v'
      | Error _ -> false)

(* --- graph codec --- *)

let graphs_equal a b =
  G.node_count a = G.node_count b
  && List.for_all2
       (fun x y ->
         x.G.id = y.G.id && x.G.node_name = y.G.node_name && x.G.op = y.G.op
         && x.G.preds = y.G.preds && x.G.block = y.G.block)
       (G.nodes a) (G.nodes b)

let test_graph_roundtrip_fixtures () =
  List.iter
    (fun g ->
      match Codec.of_string (Codec.to_string g) with
      | Ok g' -> Alcotest.(check bool) "round-trip" true (graphs_equal g g')
      | Error msg -> Alcotest.fail msg)
    [ Helpers.chain (); Helpers.diamond (); Helpers.inception_snippet () ]

let test_graph_roundtrip_zoo () =
  List.iter
    (fun e ->
      let g = e.Models.Zoo.build () in
      match Codec.of_string (Codec.to_string ~pretty:false g) with
      | Ok g' ->
        Alcotest.(check bool) (e.Models.Zoo.model_name ^ " round-trip") true
          (graphs_equal g g')
      | Error msg -> Alcotest.failf "%s: %s" e.Models.Zoo.model_name msg)
    Models.Zoo.all

let test_codec_rejects_garbage () =
  let bad s =
    match Codec.of_string s with
    | Ok _ -> Alcotest.failf "expected rejection for %S" s
    | Error _ -> ()
  in
  bad "{}";
  bad "{\"format\": \"other\", \"version\": 1, \"nodes\": []}";
  bad "{\"format\": \"lcmm-graph\", \"version\": 99, \"nodes\": []}";
  (* Structurally broken graph: predecessor after user. *)
  bad
    {|{"format": "lcmm-graph", "version": 1, "nodes": [
       {"id": 0, "name": "in", "op": {"kind": "input", "channels": 1, "height": 4, "width": 4}, "preds": [0]}]}|}

let test_codec_file_io () =
  let g = Helpers.diamond () in
  let path = Filename.temp_file "lcmm" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.write_file ~path g;
      match Codec.read_file ~path with
      | Ok g' -> Alcotest.(check bool) "file round-trip" true (graphs_equal g g')
      | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "missing file is an error" true
    (Result.is_error (Codec.read_file ~path:"/nonexistent/x.json"))

(* --- wire envelopes --- *)

let test_wire_envelopes () =
  Alcotest.(check string) "ok envelope, fixed field order"
    {|{"id":7,"op":"compile","ok":true,"cache":"hit","result":{"x":1}}|}
    (Json.to_string
       (Wire.ok ~id:(Json.Int 7) ~op:"compile" ~cache:"hit"
          (Json.Obj [ ("x", Json.Int 1) ])));
  Alcotest.(check string) "minimal ok" {|{"op":"stats","ok":true,"result":null}|}
    (Json.to_string (Wire.ok ~op:"stats" Json.Null));
  Alcotest.(check string) "error envelope"
    {|{"op":"compile","ok":false,"error":"no such model"}|}
    (Json.to_string (Wire.error ~op:"compile" "no such model"));
  let line = Wire.to_line (Wire.ok ~op:"models" (Json.List [])) in
  Alcotest.(check bool) "to_line is one newline-terminated record" true
    (String.length line > 0
    && line.[String.length line - 1] = '\n'
    && not (String.contains (String.sub line 0 (String.length line - 1)) '\n'))

let test_wire_read_request () =
  let path = Filename.temp_file "lcmm_wire" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"op\":\"stats\"}\n\n   \n{\"op\":\"models\"}\n";
      close_out oc;
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          Alcotest.(check (result (option string) string)) "first line"
            (Ok (Some {|{"op":"stats"}|})) (Wire.read_request ic);
          Alcotest.(check (result (option string) string)) "blank lines skipped"
            (Ok (Some {|{"op":"models"}|})) (Wire.read_request ic);
          Alcotest.(check (result (option string) string)) "eof"
            (Ok None) (Wire.read_request ic)))

(* A peer dying mid-write leaves a line without its newline.  That must
   surface as a structured framing error — never as an EOF (which would
   silently drop the partial record) and never as a line handed to the
   JSON parser. *)
let with_content content fn =
  let path = Filename.temp_file "lcmm_wire" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> fn ic))

let test_wire_read_request_truncated () =
  with_content "{\"op\":\"stats\"}\n{\"op\":\"mod" (fun ic ->
      Alcotest.(check (result (option string) string))
        "complete line still delivered"
        (Ok (Some {|{"op":"stats"}|}))
        (Wire.read_request ic);
      match Wire.read_request ic with
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "names the truncation: %s" msg)
          true
          (String.length msg > 0
          && String.starts_with ~prefix:"connection closed mid-line" msg)
      | Ok v ->
        Alcotest.failf "expected a framing error, got %s"
          (match v with None -> "EOF" | Some l -> l))

let test_wire_read_reply_eof () =
  with_content "" (fun ic ->
      match Wire.read_reply ic with
      | Error msg ->
        Alcotest.(check string) "clean EOF before any reply"
          "connection closed before reply" msg
      | Ok l -> Alcotest.failf "expected an error, got %s" l);
  with_content "{\"ok\":tru" (fun ic ->
      match Wire.read_reply ic with
      | Error msg ->
        Alcotest.(check bool) "mid-line EOF named" true
          (String.starts_with ~prefix:"connection closed mid-line" msg)
      | Ok l -> Alcotest.failf "expected an error, got %s" l);
  with_content "{\"ok\":true}\n" (fun ic ->
      Alcotest.(check (result string string)) "whole line delivered"
        (Ok {|{"ok":true}|}) (Wire.read_reply ic))

(* --- content digests --- *)

let test_codec_digest () =
  let d1 = Codec.digest (Helpers.chain ()) in
  Alcotest.(check string) "digest is deterministic" d1
    (Codec.digest (Helpers.chain ()));
  Alcotest.(check int) "hex md5 width" 32 (String.length d1);
  Alcotest.(check bool) "distinct graphs, distinct digests" true
    (d1 <> Codec.digest (Helpers.diamond ()))

let prop_random_graph_roundtrip =
  Helpers.qtest ~count:40 "random graphs round-trip" Helpers.random_graph_gen
    (fun g ->
      match Codec.of_string (Codec.to_string g) with
      | Ok g' -> graphs_equal g g'
      | Error _ -> false)

let suite =
  [ Alcotest.test_case "json values" `Quick test_json_values;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "json compact/pretty" `Quick test_json_roundtrip_compact_and_pretty;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "json numeric/bool accessors" `Quick
      test_json_numeric_and_bool_accessors;
    prop_json_roundtrip;
    Alcotest.test_case "wire envelopes" `Quick test_wire_envelopes;
    Alcotest.test_case "wire read_request" `Quick test_wire_read_request;
    Alcotest.test_case "wire read_request truncated mid-line" `Quick
      test_wire_read_request_truncated;
    Alcotest.test_case "wire read_reply EOF and truncation" `Quick
      test_wire_read_reply_eof;
    Alcotest.test_case "codec digest" `Quick test_codec_digest;
    Alcotest.test_case "graph round-trip fixtures" `Quick test_graph_roundtrip_fixtures;
    Alcotest.test_case "graph round-trip zoo" `Quick test_graph_roundtrip_zoo;
    Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects_garbage;
    Alcotest.test_case "codec file io" `Quick test_codec_file_io;
    prop_random_graph_roundtrip ]
