(* Buffer splitting: repairing misspilled shared buffers. *)

module Metric = Lcmm.Metric
module Dnnk = Lcmm.Dnnk
module Splitting = Lcmm.Splitting

let dtype = Tensor.Dtype.I16

let setup g =
  let _, m = Helpers.metric_of g in
  let items =
    Array.of_list (Metric.eligible_items m ~memory_bound_only:false)
  in
  let sizes = Array.map (Metric.item_size_bytes dtype m) items in
  let intervals =
    Array.map
      (Lcmm.Liveness.item_interval m.Metric.graph ~prefetch_source:(fun _ -> None))
      items
  in
  let interference = Lcmm.Interference.build ~items ~intervals () in
  (m, interference, sizes)

let test_never_worse () =
  let m, interference, sizes = setup (Helpers.inception_snippet ()) in
  List.iter
    (fun capacity_bytes ->
      let vbufs = Lcmm.Coloring.color interference ~sizes in
      let initial = Dnnk.allocate m ~capacity_bytes vbufs in
      let outcome =
        Splitting.run m interference ~sizes ~capacity_bytes initial
      in
      Alcotest.(check bool) "no regression" true
        (outcome.Splitting.result.Dnnk.predicted_latency
        <= initial.Dnnk.predicted_latency +. 1e-12))
    [ 128 * 1024; 512 * 1024; 2 * 1024 * 1024 ]

let test_stops_without_candidates () =
  let m, interference, sizes = setup (Helpers.chain ()) in
  let vbufs = Lcmm.Coloring.color interference ~sizes in
  (* Huge capacity: nothing spills, so no splitting iterations happen. *)
  let initial = Dnnk.allocate m ~capacity_bytes:(512 * 1024 * 1024) vbufs in
  let outcome =
    Splitting.run m interference ~sizes ~capacity_bytes:(512 * 1024 * 1024) initial
  in
  Alcotest.(check int) "no iterations" 0 outcome.Splitting.iterations

let test_iteration_bound () =
  let m, interference, sizes = setup (Helpers.inception_snippet ()) in
  let vbufs = Lcmm.Coloring.color interference ~sizes in
  let capacity_bytes = 64 * 1024 in
  let initial = Dnnk.allocate m ~capacity_bytes vbufs in
  let outcome =
    Splitting.run ~max_iterations:2 m interference ~sizes ~capacity_bytes initial
  in
  Alcotest.(check bool) "bounded" true (outcome.Splitting.iterations <= 2)

let test_misspilling_repair () =
  (* Craft the paper's misspilling situation directly: a huge tensor and
     a tiny high-value tensor share one buffer (disjoint lifespans), and
     the capacity only fits the tiny one.  Without splitting the shared
     buffer spills entirely; with splitting the tiny tensor comes back. *)
  let g = Helpers.inception_snippet () in
  let m, interference, sizes = setup g in
  let vbufs = Lcmm.Coloring.color interference ~sizes in
  (* Find a capacity under which some multi-member buffer spilled. *)
  let rec try_caps = function
    | [] -> ()
    | cap :: rest ->
      let initial = Dnnk.allocate m ~capacity_bytes:cap vbufs in
      let has_multi_spill =
        List.exists
          (fun vb -> List.length vb.Lcmm.Vbuffer.members >= 2)
          initial.Dnnk.spilled
      in
      if has_multi_spill then begin
        let outcome = Splitting.run m interference ~sizes ~capacity_bytes:cap initial in
        Alcotest.(check bool) "split attempted or no gain available" true
          (outcome.Splitting.false_edges >= 0);
        Alcotest.(check bool) "no regression" true
          (outcome.Splitting.result.Dnnk.predicted_latency
          <= initial.Dnnk.predicted_latency +. 1e-12)
      end
      else try_caps rest
  in
  try_caps [ 32 * 1024; 64 * 1024; 128 * 1024; 256 * 1024 ]

(* Convergence regression: over the whole model zoo, the splitting loop
   must terminate by convergence (not by hitting the iteration bound),
   its re-run count must stay within the bound, and the recorded
   objective trajectory must be strictly decreasing — the acceptance
   test demands a > 1e-12 improvement, so a plateau or a regression in
   the history is a bug, not noise. *)
let test_convergence_on_zoo () =
  List.iter
    (fun entry ->
      let name = entry.Models.Zoo.model_name in
      let g = entry.Models.Zoo.build () in
      let m, interference, sizes = setup g in
      let vbufs = Lcmm.Coloring.color interference ~sizes in
      (* Half the pinnable total: tight enough that spilling (and hence
         splitting work) actually happens on every model. *)
      let total =
        List.fold_left
          (fun acc vb ->
            acc
            + Dnnk.blocks_of_bytes vb.Lcmm.Vbuffer.size_bytes
              * Dnnk.block_bytes)
          0 vbufs
      in
      let capacity_bytes = total / 2 in
      let initial = Dnnk.allocate m ~capacity_bytes vbufs in
      let outcome =
        Splitting.run m interference ~sizes ~capacity_bytes initial
      in
      Alcotest.(check bool)
        (name ^ ": converged before the iteration bound")
        true outcome.Splitting.converged;
      Alcotest.(check bool)
        (name ^ ": iterations within bound")
        true
        (outcome.Splitting.iterations >= 0 && outcome.Splitting.iterations <= 16);
      (match outcome.Splitting.history with
      | [] -> Alcotest.fail (name ^ ": empty objective history")
      | first :: _ ->
        Alcotest.(check (float 1e-12))
          (name ^ ": history starts at the initial objective")
          initial.Dnnk.predicted_latency first);
      let rec strictly_decreasing = function
        | a :: (b :: _ as rest) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: history step %.17g -> %.17g improves" name a b)
            true
            (b < a -. 1e-12);
          strictly_decreasing rest
        | _ -> ()
      in
      strictly_decreasing outcome.Splitting.history;
      Alcotest.(check (float 0.))
        (name ^ ": history ends at the final objective")
        outcome.Splitting.result.Dnnk.predicted_latency
        (List.nth outcome.Splitting.history
           (List.length outcome.Splitting.history - 1)))
    Models.Zoo.all

(* Bounded termination even when improvements keep arriving: with a
   one-iteration budget the loop must stop immediately and say it was
   cut off (unless it genuinely converged in one round). *)
let test_iteration_budget_respected () =
  let m, interference, sizes = setup (Helpers.inception_snippet ()) in
  let vbufs = Lcmm.Coloring.color interference ~sizes in
  let capacity_bytes = 64 * 1024 in
  let initial = Dnnk.allocate m ~capacity_bytes vbufs in
  let outcome =
    Splitting.run ~max_iterations:1 m interference ~sizes ~capacity_bytes
      initial
  in
  Alcotest.(check bool) "at most one iteration" true
    (outcome.Splitting.iterations <= 1);
  Alcotest.(check bool) "history bounded by iterations" true
    (List.length outcome.Splitting.history
    <= outcome.Splitting.iterations + 1)

let prop_splitting_monotone =
  Helpers.qtest ~count:20 "splitting never regresses on random graphs"
    Helpers.random_graph_gen (fun g ->
      let m, interference, sizes = setup g in
      let vbufs = Lcmm.Coloring.color interference ~sizes in
      let capacity_bytes = 256 * 1024 in
      let initial = Dnnk.allocate m ~capacity_bytes vbufs in
      let outcome = Splitting.run m interference ~sizes ~capacity_bytes initial in
      outcome.Splitting.result.Dnnk.predicted_latency
      <= initial.Dnnk.predicted_latency +. 1e-12)

let suite =
  [ Alcotest.test_case "never worse" `Quick test_never_worse;
    Alcotest.test_case "stops without candidates" `Quick test_stops_without_candidates;
    Alcotest.test_case "iteration bound" `Quick test_iteration_bound;
    Alcotest.test_case "misspilling repair" `Quick test_misspilling_repair;
    Alcotest.test_case "convergence on zoo" `Quick test_convergence_on_zoo;
    Alcotest.test_case "iteration budget respected" `Quick
      test_iteration_budget_respected;
    prop_splitting_monotone ]
