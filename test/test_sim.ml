(* The discrete-event simulator against the analytical model. *)

module Metric = Lcmm.Metric
module Engine = Sim.Engine
module Latency = Accel.Latency

let fixture () = Helpers.metric_of (Helpers.inception_snippet ())

let test_umm_matches_analytic () =
  let _, m = fixture () in
  let run = Engine.simulate_umm m in
  Alcotest.(check (float 1e-12)) "UMM simulation = analytic sum"
    (Latency.umm_total m.Metric.profiles)
    run.Engine.total;
  Alcotest.(check (float 0.)) "no prefetch wait" 0. run.Engine.prefetch_wait

let test_nodes_sequential () =
  let _, m = fixture () in
  let run = Engine.simulate_umm m in
  let previous_finish = ref 0. in
  Array.iter
    (fun t ->
      Alcotest.(check bool) "starts after predecessor" true
        (t.Engine.start >= !previous_finish -. 1e-15);
      Alcotest.(check bool) "finish after start" true (t.Engine.finish >= t.Engine.start);
      previous_finish := t.Engine.finish)
    run.Engine.timings

let lcmm_run () =
  let g = Helpers.inception_snippet () in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm Tensor.Dtype.I16 in
  let p = Lcmm.Framework.plan cfg g in
  let m = p.Lcmm.Framework.metric in
  let on_chip = p.Lcmm.Framework.allocation.Lcmm.Dnnk.on_chip in
  (g, m, p, Engine.simulate ?prefetch:p.Lcmm.Framework.prefetch m ~on_chip)

let test_lcmm_at_least_analytic () =
  (* The simulator adds channel contention on top of the analytic Eq. 1
     sum, so its total is never lower than the allocation's exact
     latency (excluding the analytically estimated stalls). *)
  let _, m, p, run = lcmm_run () in
  let analytic =
    Metric.total_latency m ~on_chip:p.Lcmm.Framework.allocation.Lcmm.Dnnk.on_chip
  in
  Alcotest.(check bool) "simulated >= analytic" true
    (run.Engine.total >= analytic -. 1e-12);
  Alcotest.(check bool) "wait non-negative" true (run.Engine.prefetch_wait >= 0.)

let test_lcmm_beats_umm () =
  let _, m, _, run = lcmm_run () in
  let umm = Engine.simulate_umm m in
  Alcotest.(check bool) "improves" true (run.Engine.total < umm.Engine.total)

let test_weight_channel_accounting () =
  let _, m, p, run = lcmm_run () in
  (* The weight channel must carry at least the one-time loads of every
     pinned weight. *)
  let pinned_loads =
    Metric.Item_set.fold
      (fun item acc ->
        match item with
        | Metric.Weight_of n -> acc +. m.Metric.profiles.(n).Latency.wt_load_once
        | Metric.Weight_slice { node; of_k; _ } ->
          acc +. (m.Metric.profiles.(node).Latency.wt_load_once /. float_of_int of_k)
        | Metric.Feature_value _ -> acc)
      p.Lcmm.Framework.allocation.Lcmm.Dnnk.on_chip 0.
  in
  Alcotest.(check bool) "channel busy >= pinned loads" true
    (run.Engine.wt_channel_busy >= pinned_loads -. 1e-12)

let test_bound_fractions_sum () =
  let _, m = fixture () in
  let run = Engine.simulate_umm m in
  let s =
    List.fold_left
      (fun acc b -> acc +. Engine.bound_fraction run b)
      0.
      [ Engine.Compute; Engine.Input_stream; Engine.Weight_stream;
        Engine.Output_stream ]
  in
  (* Waits are not part of node residence, so fractions sum to <= 1 and
     nearly 1 without prefetch. *)
  Alcotest.(check bool) "fractions ~1" true (s > 0.99 && s <= 1.0 +. 1e-9)

let test_report_per_block () =
  let g = Models.Zoo.build "googlenet" in
  let _, m = Helpers.metric_of g in
  let run = Engine.simulate_umm m in
  let rows = Sim.Report.per_block g run in
  Alcotest.(check int) "nine blocks" 9 (List.length rows);
  let block_time = List.fold_left (fun a r -> a +. r.Sim.Report.seconds) 0. rows in
  Alcotest.(check bool) "blocks within total" true (block_time <= run.Engine.total +. 1e-9);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Sim.Report.block ^ " tops positive") true
        (r.Sim.Report.tops > 0.))
    rows;
  Alcotest.(check bool) "total tops positive" true (Sim.Report.total_tops g run > 0.)

let test_speedup_table () =
  let g = Models.Zoo.build "googlenet" in
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm Tensor.Dtype.I16 in
  let p = Lcmm.Framework.plan cfg g in
  let m = p.Lcmm.Framework.metric in
  let baseline = Engine.simulate_umm m in
  let improved =
    Engine.simulate ?prefetch:p.Lcmm.Framework.prefetch m
      ~on_chip:p.Lcmm.Framework.allocation.Lcmm.Dnnk.on_chip
  in
  let table = Sim.Report.speedup_table g ~baseline ~improved in
  Alcotest.(check int) "rows" 9 (List.length table);
  (* Most blocks speed up; none collapses to zero. *)
  let improved_count =
    List.length (List.filter (fun (_, _, _, s) -> s > 1.0) table)
  in
  Alcotest.(check bool) "majority improve" true (improved_count >= 5)

let test_trace_export () =
  let g = Helpers.inception_snippet () in
  let _, m = Helpers.metric_of g in
  let run = Engine.simulate_umm m in
  let json = Sim.Trace.to_json g run in
  (* The trace is valid JSON and has one duration event per running node. *)
  (match Dnn_serial.Json.of_string (Dnn_serial.Json.to_string json) with
  | Ok v -> Alcotest.(check bool) "round-trips" true (Dnn_serial.Json.equal v json)
  | Error msg -> Alcotest.fail msg);
  match json with
  | Dnn_serial.Json.List events ->
    let running =
      Array.to_list run.Engine.timings
      |> List.filter (fun t -> t.Engine.finish > t.Engine.start)
    in
    Alcotest.(check int) "one event per running node" (List.length running)
      (List.length events)
  | _ -> Alcotest.fail "expected a JSON array"

let prop_sim_umm_equals_analytic =
  Helpers.qtest ~count:25 "simulated UMM equals analytic on random graphs"
    Helpers.random_graph_gen (fun g ->
      let _, m = Helpers.metric_of g in
      let run = Engine.simulate_umm m in
      abs_float (run.Engine.total -. Latency.umm_total m.Metric.profiles) < 1e-12)

let prop_sim_monotone_in_allocation =
  Helpers.qtest ~count:20 "pinning everything never slows the simulation"
    Helpers.random_graph_gen (fun g ->
      let _, m = Helpers.metric_of g in
      let all =
        Metric.Item_set.of_list (Metric.eligible_items m ~memory_bound_only:false)
      in
      let umm = Engine.simulate_umm m in
      (* No PDG: pinned weights load on demand, which can stall; compare
         against the version including its waits. *)
      let pinned = Engine.simulate m ~on_chip:all in
      pinned.Engine.total -. pinned.Engine.prefetch_wait <= umm.Engine.total +. 1e-9)

let prop_sim_superset_pinning_monotone =
  Helpers.qtest ~count:20 "pinning more features never slows the simulation"
    Helpers.random_graph_gen (fun g ->
      let _, m = Helpers.metric_of g in
      let features =
        Metric.eligible_items m ~memory_bound_only:false
        |> List.filter (function
             | Metric.Feature_value _ -> true
             | Metric.Weight_of _ | Metric.Weight_slice _ -> false)
      in
      (* Walk a chain of nested feature sets; every step up must be no
         slower than the one before (features never stall a channel). *)
      let rec monotone prev set = function
        | [] -> true
        | it :: rest ->
          let set = Metric.Item_set.add it set in
          let t = (Engine.simulate m ~on_chip:set).Engine.total in
          t <= prev +. 1e-9 && monotone t set rest
      in
      monotone
        (Engine.simulate_umm m).Engine.total
        Metric.Item_set.empty features)

let test_weights_resident_never_slower () =
  (* Steady-state batching keeps the weights on chip; on every zoo model
     that must never lose to the cold run. *)
  List.iter
    (fun e ->
      let g = e.Models.Zoo.build () in
      let cfg = Accel.Config.make ~style:Accel.Config.Lcmm Tensor.Dtype.I16 in
      let p = Lcmm.Framework.plan cfg g in
      let m = p.Lcmm.Framework.metric in
      let on_chip = p.Lcmm.Framework.allocation.Lcmm.Dnnk.on_chip in
      let prefetch = p.Lcmm.Framework.prefetch in
      let cold = Engine.simulate ?prefetch m ~on_chip in
      let resident = Engine.simulate ~weights_resident:true ?prefetch m ~on_chip in
      Alcotest.(check bool)
        (Printf.sprintf "%s: resident %.9e <= cold %.9e" e.Models.Zoo.model_name
           resident.Engine.total cold.Engine.total)
        true
        (resident.Engine.total <= cold.Engine.total +. 1e-12))
    Models.Zoo.all

let suite =
  [ Alcotest.test_case "umm matches analytic" `Quick test_umm_matches_analytic;
    Alcotest.test_case "nodes sequential" `Quick test_nodes_sequential;
    Alcotest.test_case "lcmm >= analytic" `Quick test_lcmm_at_least_analytic;
    Alcotest.test_case "lcmm beats umm" `Quick test_lcmm_beats_umm;
    Alcotest.test_case "weight channel accounting" `Quick test_weight_channel_accounting;
    Alcotest.test_case "bound fractions" `Quick test_bound_fractions_sum;
    Alcotest.test_case "per-block report" `Quick test_report_per_block;
    Alcotest.test_case "speedup table" `Quick test_speedup_table;
    Alcotest.test_case "trace export" `Quick test_trace_export;
    Alcotest.test_case "weights resident never slower" `Quick
      test_weights_resident_never_slower;
    prop_sim_umm_equals_analytic;
    prop_sim_monotone_in_allocation;
    prop_sim_superset_pinning_monotone ]
