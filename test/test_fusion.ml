(* Fused-layer segmentation and weight streaming: boundary behaviour on
   hand-built chains, legality over the generated graph families, and
   parallel determinism of the whole post-pass. *)

module B = Dnn_graph.Builder
module G = Dnn_graph.Graph
module Values = Dnn_graph.Values
module Metric = Lcmm.Metric
module F = Lcmm.Framework
module Seg = Lcmm_fusion.Segmentation
module Fusion = Lcmm_fusion.Fusion

let dtype = Tensor.Dtype.I16

let search ?(max_segment = 8) ?(on_chip = Metric.Item_set.empty) ~headroom g =
  let cfg, metric = Helpers.metric_of ~dtype g in
  Seg.search ~max_segment ~headroom_bytes:headroom
    ~tile_th:cfg.Accel.Config.tile.Accel.Tiling.th ~dtype metric ~on_chip

(* A chain of pointwise convolutions: no halo, so fusing is free and a
   bigger segment always beats any split of it. *)
let pointwise_chain n =
  let b = B.create () in
  let x = B.input b ~channels:16 ~height:32 ~width:32 () in
  let v = ref x in
  for i = 1 to n do
    v := B.conv b ~name:(Printf.sprintf "c%d" i) ~kernel:(1, 1)
           ~out_channels:16 !v
  done;
  B.finish b

(* --- boundary cases --- *)

let test_whole_graph_segment () =
  (* Huge headroom, pointwise chain: one segment spans every conv (the
     input node is a barrier; the final value is the graph output). *)
  let g = pointwise_chain 5 in
  let r = search ~headroom:max_int g in
  match r.Seg.segments with
  | [ s ] ->
    Alcotest.(check int) "starts after the input" 1 s.Seg.first;
    Alcotest.(check int) "ends at the last conv" 5 s.Seg.last;
    Alcotest.(check (list int)) "keeps every intermediate on chip"
      [ 1; 2; 3; 4 ] s.Seg.internal
  | segs ->
    Alcotest.failf "expected one whole-chain segment, got %d"
      (List.length segs)

let test_no_single_node_segments () =
  List.iter
    (fun g ->
      let r = search ~headroom:max_int g in
      List.iter
        (fun (s : Seg.segment) ->
          Alcotest.(check bool) "segment spans at least two nodes" true
            (s.Seg.last > s.Seg.first))
        r.Seg.segments)
    [ Helpers.chain (); Helpers.diamond (); pointwise_chain 4 ]

let test_no_headroom_no_segments () =
  let g = pointwise_chain 5 in
  let r = search ~headroom:0 g in
  Alcotest.(check int) "no headroom, no segments" 0
    (List.length r.Seg.segments);
  let r = search ~max_segment:1 ~headroom:max_int g in
  Alcotest.(check int) "max_segment 1 fuses nothing" 0
    (List.length r.Seg.segments)

let test_shortcut_forces_cut () =
  (* in -> a -> b -> c with a's value also feeding c: with segments
     capped at two nodes, a's value escapes any [a..b] segment, so no
     segment may start at a. *)
  let b = B.create () in
  let x = B.input b ~channels:16 ~height:32 ~width:32 () in
  let a = B.conv b ~name:"a" ~kernel:(1, 1) ~out_channels:16 x in
  let bb = B.conv b ~name:"b" ~kernel:(1, 1) ~out_channels:16 a in
  let _c = B.add b ~name:"c" [ a; bb ] in
  let g = B.finish b in
  let r = search ~max_segment:2 ~headroom:max_int g in
  List.iter
    (fun (s : Seg.segment) ->
      Alcotest.(check bool) "no segment starts at the shortcut source" true
        (s.Seg.first <> 1))
    r.Seg.segments

let segment_legal g headroom (s : Seg.segment) =
  s.Seg.last > s.Seg.first
  && s.Seg.slab_bytes <= headroom
  && s.Seg.benefit_seconds > 0.
  && List.for_all
       (fun v ->
         Values.is_value g v
         && v >= s.Seg.first && v < s.Seg.last
         &&
         match Values.consumers g v with
         | [] -> false
         | cs -> List.for_all (fun c -> c <= s.Seg.last) cs)
       s.Seg.internal

let test_generated_families_legal () =
  List.iter
    (fun family ->
      List.iter
        (fun seed ->
          let g =
            Check.Gen.graph ~family (Random.State.make [| seed |]) ~max_nodes:32
          in
          let headroom = 1 lsl 20 in
          let r = search ~headroom g in
          let rec disjoint prev = function
            | [] -> true
            | (s : Seg.segment) :: rest ->
              s.Seg.first > prev && disjoint s.Seg.last rest
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d: segments disjoint and legal"
               (Check.Gen.family_name family) seed)
            true
            (disjoint (-1) r.Seg.segments
            && List.for_all (segment_legal g headroom) r.Seg.segments);
          let total =
            List.fold_left
              (fun a (s : Seg.segment) -> a +. s.Seg.benefit_seconds)
              0. r.Seg.segments
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d: DP total matches its segments"
               (Check.Gen.family_name family) seed)
            true
            (Float.abs (total -. r.Seg.total_benefit) <= 1e-12))
        [ 0; 3; 11 ])
    [ Check.Gen.Chain; Check.Gen.Skip; Check.Gen.Degenerate ]

(* --- the full post-pass --- *)

let plan_for ?(fusion = true) g =
  let cfg = Helpers.default_config ~dtype () in
  F.plan ~options:{ F.default_options with F.fusion } cfg g

let test_apply_inert_when_off () =
  let g = Helpers.chain () in
  let p = plan_for ~fusion:false g in
  let fz = Fusion.apply p in
  Alcotest.(check bool) "inactive" false (Fusion.active fz);
  Alcotest.(check bool) "effective plan is the base plan itself" true
    (Fusion.effective_plan fz == p);
  Alcotest.(check bool) "metric untouched" true
    (fz.Fusion.metric == p.F.metric)

let test_apply_never_slower () =
  List.iter
    (fun g ->
      let p = plan_for g in
      let fz = Fusion.apply p in
      Alcotest.(check bool) "fused latency <= base" true
        (fz.Fusion.predicted_latency <= p.F.predicted_latency +. 1e-12);
      Alcotest.(check bool) "DDR never grows" true
        (Fusion.ddr_bytes_saved fz >= 0))
    [ Helpers.chain (); Helpers.diamond (); Helpers.inception_snippet () ]

let prop_parallel_fusion_deterministic =
  let gen = QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 8 40)) in
  Helpers.qtest ~count:25 "fusion with ~pool is byte-identical at 1/2/4/8"
    gen (fun (seed, nodes) ->
      let g =
        Check.Gen.sized_graph ~family:Check.Gen.Mixed
          (Random.State.make [| 14; seed; nodes |])
          ~nodes
      in
      let digest fz = Dnn_serial.Codec.digest_string (Fusion.fingerprint fz) in
      let p = plan_for g in
      let baseline = digest (Fusion.apply p) in
      List.for_all
        (fun domains ->
          let pool = Lcmm.Pool.create ~domains () in
          Fun.protect
            ~finally:(fun () -> Lcmm.Pool.shutdown pool)
            (fun () -> digest (Fusion.apply ~pool p) = baseline))
        [ 1; 2; 4; 8 ])

let suite =
  [ Alcotest.test_case "whole graph fuses under huge SRAM" `Quick
      test_whole_graph_segment;
    Alcotest.test_case "no single-node segments" `Quick
      test_no_single_node_segments;
    Alcotest.test_case "no headroom or length, no segments" `Quick
      test_no_headroom_no_segments;
    Alcotest.test_case "shortcut edge forces a cut" `Quick
      test_shortcut_forces_cut;
    Alcotest.test_case "generated families stay legal" `Quick
      test_generated_families_legal;
    Alcotest.test_case "fusion off is inert" `Quick test_apply_inert_when_off;
    Alcotest.test_case "fusion never slows a plan" `Quick
      test_apply_never_slower;
    prop_parallel_fusion_deterministic ]
