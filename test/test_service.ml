(* The plan-compilation service: LRU cache, cache keys, the domain
   worker pool, the request protocol and the end-to-end engine. *)

module Json = Dnn_serial.Json
module Svc = Lcmm_service
module F = Lcmm.Framework
module P = Svc.Protocol

let json_t = Alcotest.testable Json.pp Json.equal

(* --- Plan_cache (exercises the Lru underneath) --- *)

let test_cache_lru_eviction () =
  let cache = Svc.Plan_cache.create ~max_entries:2 ~max_bytes:1_000_000 () in
  Svc.Plan_cache.put cache "aa" (Json.Int 1);
  Svc.Plan_cache.put cache "bb" (Json.Int 2);
  (* Touch "aa" so "bb" is the LRU entry when "cc" arrives. *)
  Alcotest.(check bool) "aa present" true (Svc.Plan_cache.find cache "aa" <> None);
  Svc.Plan_cache.put cache "cc" (Json.Int 3);
  Alcotest.(check bool) "bb evicted" true (Svc.Plan_cache.find cache "bb" = None);
  Alcotest.(check bool) "aa survives" true (Svc.Plan_cache.find cache "aa" <> None);
  Alcotest.(check bool) "cc present" true (Svc.Plan_cache.find cache "cc" <> None);
  let s = Svc.Plan_cache.stats cache in
  Alcotest.(check int) "entries" 2 s.Svc.Plan_cache.entries;
  Alcotest.(check int) "evictions" 1 s.Svc.Plan_cache.evictions

let test_cache_byte_bound () =
  (* Payloads of ~13 bytes each; a 30-byte bound holds about two. *)
  let cache = Svc.Plan_cache.create ~max_entries:100 ~max_bytes:30 () in
  List.iter
    (fun key -> Svc.Plan_cache.put cache key (Json.String "0123456789"))
    [ "k1"; "k2"; "k3"; "k4" ];
  let s = Svc.Plan_cache.stats cache in
  Alcotest.(check bool) "byte bound enforced" true
    (s.Svc.Plan_cache.bytes <= 30 && s.Svc.Plan_cache.entries <= 2);
  Alcotest.(check bool) "evictions counted" true (s.Svc.Plan_cache.evictions >= 2)

let test_cache_persistence () =
  let dir = Filename.temp_file "lcmm_cache" "" in
  Sys.remove dir;
  let payload = Json.Obj [ ("x", Json.Int 42) ] in
  let c1 = Svc.Plan_cache.create ~persist_dir:dir () in
  Svc.Plan_cache.put c1 "deadbeef" payload;
  Alcotest.(check bool) "file written" true
    (Sys.file_exists (Filename.concat dir "deadbeef.json"));
  (* A fresh cache over the same directory rewarms from disk. *)
  let c2 = Svc.Plan_cache.create ~persist_dir:dir () in
  (match Svc.Plan_cache.find c2 "deadbeef" with
  | Some v -> Alcotest.check json_t "rewarmed payload" payload v
  | None -> Alcotest.fail "expected a disk hit");
  let s = Svc.Plan_cache.stats c2 in
  Alcotest.(check int) "disk load counted" 1 s.Svc.Plan_cache.disk_loads;
  Alcotest.(check int) "counts as hit" 1 s.Svc.Plan_cache.hits;
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Unix.rmdir dir

(* --- Cache_key --- *)

let test_cache_key_stability () =
  let g1 = Helpers.chain () in
  let g2 = Helpers.chain () in
  let o = F.default_options in
  let key g opts dtype device =
    Svc.Cache_key.request_digest ~dtype ~device ~options:opts g
  in
  let base = key g1 o Tensor.Dtype.I16 Fpga.Device.vu9p in
  Alcotest.(check string) "same inputs, same digest" base
    (key g2 o Tensor.Dtype.I16 Fpga.Device.vu9p);
  let distinct name other = Alcotest.(check bool) name true (other <> base) in
  distinct "graph perturbation" (key (Helpers.diamond ()) o Tensor.Dtype.I16 Fpga.Device.vu9p);
  distinct "dtype perturbation" (key g1 o Tensor.Dtype.I8 Fpga.Device.vu9p);
  distinct "device perturbation" (key g1 o Tensor.Dtype.I16 Fpga.Device.u250);
  (* Every options field must reach the digest. *)
  let perturbed =
    [ ("feature_reuse", { o with F.feature_reuse = false });
      ("weight_prefetch", { o with F.weight_prefetch = false });
      ("buffer_splitting", { o with F.buffer_splitting = false });
      ("buffer_sharing", { o with F.buffer_sharing = false });
      ("memory_bound_only", { o with F.memory_bound_only = false });
      ("compensation", { o with F.compensation = Lcmm.Dnnk.Exact_iterative });
      ("coloring", { o with F.coloring = Lcmm.Coloring.First_fit });
      ("capacity_override", { o with F.capacity_override = Some 1024 });
      ("weight_slices", { o with F.weight_slices = 4 });
      ("channels", { o with F.channels = 4 }) ]
  in
  List.iter
    (fun (name, opts) ->
      distinct (name ^ " perturbation")
        (key g1 opts Tensor.Dtype.I16 Fpga.Device.vu9p))
    perturbed;
  (* The config-keyed variant distinguishes design points too. *)
  let cfg = Accel.Config.make ~style:Accel.Config.Lcmm Tensor.Dtype.I16 in
  let cfg' = Accel.Config.make ~ddr_efficiency:0.5 ~style:Accel.Config.Lcmm Tensor.Dtype.I16 in
  Alcotest.(check bool) "config digest stable" true
    (Svc.Cache_key.digest ~config:cfg ~options:o g1
    = Svc.Cache_key.digest ~config:cfg ~options:o g2);
  Alcotest.(check bool) "config perturbation" true
    (Svc.Cache_key.digest ~config:cfg ~options:o g1
    <> Svc.Cache_key.digest ~config:cfg' ~options:o g1)

(* --- Pool --- *)

let test_pool_map () =
  let pool = Svc.Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Svc.Pool.shutdown pool)
    (fun () ->
      let xs = List.init 50 Fun.id in
      let squares = Svc.Pool.map_list pool (fun x -> x * x) xs in
      Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * x) xs) squares;
      Alcotest.(check int) "size" 3 (Svc.Pool.size pool))

let test_pool_exceptions () =
  let pool = Svc.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Svc.Pool.shutdown pool)
    (fun () ->
      (match Svc.Pool.await (Svc.Pool.submit pool (fun () -> failwith "boom")) with
      | Error (Failure msg) -> Alcotest.(check string) "exception carried" "boom" msg
      | Error _ -> Alcotest.fail "wrong exception"
      | Ok () -> Alcotest.fail "expected failure");
      (* The worker survives a failed job. *)
      Alcotest.(check int) "worker alive" 7 (Svc.Pool.run pool (fun () -> 7)))

let test_pool_shutdown_rejects () =
  let pool = Svc.Pool.create ~domains:1 () in
  Svc.Pool.shutdown pool;
  Svc.Pool.shutdown pool;  (* idempotent *)
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Svc.Pool.submit pool (fun () -> ())))

(* --- Protocol --- *)

let parse_exn line =
  match P.request_of_line line with
  | Ok env -> env
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_protocol_parse () =
  let env = parse_exn {|{"op":"compile","id":7,"model":"alexnet","dtype":"i8"}|} in
  Alcotest.(check bool) "id echoed" true (env.P.id = Some (Json.Int 7));
  (match env.P.request with
  | P.Compile spec ->
    Alcotest.(check string) "target" "alexnet" (P.target_name spec.P.target);
    Alcotest.(check bool) "dtype" true (spec.P.dtype = Tensor.Dtype.I8);
    Alcotest.(check string) "device default" "vu9p"
      spec.P.device.Fpga.Device.device_name
  | _ -> Alcotest.fail "expected compile");
  let env =
    parse_exn
      {|{"op":"simulate","model":"vgg16","images":8,"options":{"weight_slices":2,"coloring":"first_fit"}}|}
  in
  (match env.P.request with
  | P.Simulate (spec, Some 8) ->
    Alcotest.(check int) "weight_slices" 2 spec.P.options.F.weight_slices;
    Alcotest.(check bool) "coloring" true
      (spec.P.options.F.coloring = Lcmm.Coloring.First_fit)
  | _ -> Alcotest.fail "expected simulate with images");
  (* Inline graphs ride along as codec documents. *)
  let g = Helpers.chain () in
  let line =
    Json.to_string
      (Json.Obj
         [ ("op", Json.String "compile");
           ("graph", Dnn_serial.Codec.graph_to_json g) ])
  in
  (match (parse_exn line).P.request with
  | P.Compile { P.target = P.Inline g'; _ } ->
    Alcotest.(check int) "inline graph nodes" (Dnn_graph.Graph.node_count g)
      (Dnn_graph.Graph.node_count g')
  | _ -> Alcotest.fail "expected inline compile")

let test_protocol_rejects () =
  let bad line =
    match P.request_of_line line with
    | Ok _ -> Alcotest.failf "expected rejection for %s" line
    | Error _ -> ()
  in
  bad "not json";
  bad {|{"model":"alexnet"}|};
  bad {|{"op":"frobnicate"}|};
  bad {|{"op":"compile"}|};
  bad {|{"op":"compile","model":"alexnet","dtype":"i4"}|};
  bad {|{"op":"compile","model":"alexnet","device":"stratix"}|};
  bad {|{"op":"compile","model":"a","graph":{}}|};
  bad {|{"op":"simulate","model":"alexnet","images":0}|};
  bad {|{"op":"compile","model":"alexnet","options":{"weight_slices":0}}|};
  bad {|{"op":"batch","requests":[{"op":"batch","requests":[]}]}|}

let test_options_roundtrip () =
  let o =
    { F.default_options with
      F.coloring = Lcmm.Coloring.First_fit;
      compensation = Lcmm.Dnnk.Exact_iterative;
      capacity_override = Some 123_456;
      weight_slices = 3;
      channels = 4;
      buffer_sharing = false }
  in
  let line =
    Json.to_string
      (Json.Obj
         [ ("op", Json.String "compile"); ("model", Json.String "alexnet");
           ("options", P.options_to_json o) ])
  in
  match (parse_exn line).P.request with
  | P.Compile spec -> Alcotest.(check bool) "options round-trip" true (spec.P.options = o)
  | _ -> Alcotest.fail "expected compile"

(* --- Engine integration --- *)

let with_engine ?cache ~domains fn =
  let pool = Svc.Pool.create ~domains () in
  let engine = Svc.Engine.create ?cache ~pool () in
  Fun.protect ~finally:(fun () -> Svc.Engine.shutdown engine) (fun () -> fn engine)

let handle_line ?(timing = true) engine line =
  Svc.Engine.handle_line ~timing engine line

let field_exn key v =
  match Json.member key v with
  | Ok f -> f
  | Error msg -> Alcotest.failf "field %s: %s" key msg

let result_of_line line =
  match Json.of_string (String.trim line) with
  | Error msg -> Alcotest.failf "bad response line: %s" msg
  | Ok v -> v

let test_engine_compile_cache_hit () =
  with_engine ~domains:2 (fun engine ->
      let request = {|{"op":"compile","id":1,"model":"alexnet","dtype":"i16"}|} in
      let t0 = Unix.gettimeofday () in
      let first = result_of_line (handle_line engine request) in
      let cold_s = Unix.gettimeofday () -. t0 in
      let t1 = Unix.gettimeofday () in
      let second = result_of_line (handle_line engine request) in
      let warm_s = Unix.gettimeofday () -. t1 in
      Alcotest.check json_t "miss then hit" (Json.String "miss")
        (field_exn "cache" first);
      Alcotest.check json_t "hit on repeat" (Json.String "hit")
        (field_exn "cache" second);
      Alcotest.check json_t "same result payload" (field_exn "result" first)
        (field_exn "result" second);
      (* The hit answers from the table: orders of magnitude faster than
         the cold compile.  Assert a lax 5x to stay robust under load. *)
      Alcotest.(check bool)
        (Printf.sprintf "hit faster than cold (%.2f ms vs %.2f ms)"
           (warm_s *. 1e3) (cold_s *. 1e3))
        true
        (warm_s < cold_s /. 5.);
      (* The stats counters saw exactly one miss and one hit. *)
      let stats = result_of_line (handle_line engine {|{"op":"stats"}|}) in
      let cache_stats = field_exn "cache" (field_exn "result" stats) in
      Alcotest.check json_t "one hit" (Json.Int 1) (field_exn "hits" cache_stats);
      Alcotest.check json_t "one miss" (Json.Int 1)
        (field_exn "misses" cache_stats);
      let pool_stats = field_exn "pool" (field_exn "result" stats) in
      Alcotest.check json_t "two domains" (Json.Int 2)
        (field_exn "domains" pool_stats))

let test_engine_simulate_and_errors () =
  with_engine ~domains:1 (fun engine ->
      let ok =
        result_of_line
          (handle_line engine {|{"op":"simulate","model":"alexnet","images":4}|})
      in
      Alcotest.check json_t "simulate ok" (Json.Bool true) (field_exn "ok" ok);
      let result = field_exn "result" ok in
      (match Json.to_float (field_exn "lcmm_ms" result) with
      | Ok ms -> Alcotest.(check bool) "positive latency" true (ms > 0.)
      | Error msg -> Alcotest.fail msg);
      let batch = field_exn "batch" result in
      Alcotest.check json_t "batch images" (Json.Int 4) (field_exn "images" batch);
      (* Unknown models are an error response, not a dead worker. *)
      let err =
        result_of_line (handle_line engine {|{"op":"compile","model":"nope"}|})
      in
      Alcotest.check json_t "error flagged" (Json.Bool false) (field_exn "ok" err);
      (* The service keeps answering after an error. *)
      let again =
        result_of_line (handle_line engine {|{"op":"compile","model":"alexnet"}|})
      in
      Alcotest.check json_t "alive after error" (Json.Bool true)
        (field_exn "ok" again);
      let parse_err = result_of_line (handle_line engine "{naked garbage") in
      Alcotest.check json_t "parse error op" (Json.String "parse")
        (field_exn "op" parse_err))

(* End-to-end integrity: a request carrying ["checksum": true] gets a
   ["sum"] digest of the compact result payload; one without does not
   (so the default client-visible rendering is unchanged).  The sum is
   what the tier router validates replies against. *)
let test_engine_checksum () =
  with_engine ~domains:1 (fun engine ->
      let plain =
        result_of_line
          (handle_line ~timing:false engine
             {|{"op":"compile","model":"alexnet","dtype":"i8"}|})
      in
      Alcotest.(check bool) "no sum unless asked" true
        (Json.member_opt "sum" plain = None);
      let summed =
        result_of_line
          (handle_line ~timing:false engine
             {|{"op":"compile","model":"alexnet","dtype":"i8","checksum":true}|})
      in
      (match Json.member_opt "sum" summed with
      | Some (Json.String sum) ->
        Alcotest.(check string) "sum is the digest of the compact payload"
          (Dnn_serial.Codec.digest_string
             (Json.to_string (field_exn "result" summed)))
          sum
      | _ -> Alcotest.fail "expected a sum field");
      Alcotest.check json_t "payload unchanged by the checksum request"
        (field_exn "result" plain) (field_exn "result" summed);
      (* Errors carry no sum — there is no payload to digest. *)
      let err =
        result_of_line
          (handle_line engine {|{"op":"compile","model":"nope","checksum":true}|})
      in
      Alcotest.(check bool) "no sum on errors" true
        (Json.member_opt "sum" err = None))

(* The acceptance property: a ≥2-domain pool answers a parallel batch
   byte-identically to a 1-domain (sequential) pool in canonical
   (timing-free) form.  The LCMM passes are pure, so this must hold. *)
let determinism_batch =
  {|{"op":"batch","id":99,"requests":[
      {"op":"compile","id":0,"model":"alexnet","dtype":"i16"},
      {"op":"compile","id":1,"model":"alexnet","dtype":"i8"},
      {"op":"compile","id":2,"model":"squeezenet","dtype":"i16"},
      {"op":"simulate","id":3,"model":"alexnet","dtype":"i16","images":4},
      {"op":"compile","id":4,"model":"alexnet","dtype":"i16","options":{"weight_slices":2}},
      {"op":"models","id":5}]}|}
  |> String.split_on_char '\n' |> List.map String.trim |> String.concat ""

let test_engine_parallel_determinism () =
  let run domains =
    with_engine ~domains (fun engine ->
        handle_line ~timing:false engine determinism_batch)
  in
  let sequential = run 1 in
  let parallel = run 3 in
  Alcotest.(check string) "parallel == sequential, byte for byte" sequential
    parallel;
  (* And re-running the parallel engine is stable with itself. *)
  Alcotest.(check string) "parallel is reproducible" parallel (run 3)

let test_engine_batch_parallel_speed () =
  (* Not a strict benchmark — just pin down that a batch on a multi-domain
     pool actually uses the workers: occupancy observed via stats while
     jobs are in flight is hard to do deterministically, so instead check
     the batch result order matches request order. *)
  with_engine ~domains:2 (fun engine ->
      let resp = result_of_line (handle_line engine determinism_batch) in
      let subs =
        match Json.to_list (field_exn "result" resp) with
        | Ok l -> l
        | Error msg -> Alcotest.fail msg
      in
      Alcotest.(check int) "six sub-responses" 6 (List.length subs);
      List.iteri
        (fun i sub ->
          Alcotest.check json_t
            (Printf.sprintf "sub %d in request order" i)
            (Json.Int i) (field_exn "id" sub))
        subs)

(* --- run op and per-request deadlines --- *)

let test_protocol_run_parse () =
  let env =
    parse_exn
      {|{"op":"run","tenants":[{"model":"googlenet","count":2},{"model":"vgg16","priority":1,"arrival_ms":500}],"scheduler":"greedy"}|}
  in
  (match env.P.request with
  | P.Run spec ->
    (match spec.P.tenants with
    | [ a; b ] ->
      Alcotest.(check string) "tenant 0 model" "googlenet"
        (P.target_name a.P.tenant_target);
      Alcotest.(check int) "tenant 0 count" 2 a.P.count;
      Alcotest.(check int) "priority default" 0 a.P.tenant_priority;
      Alcotest.(check int) "count default" 1 b.P.count;
      Alcotest.(check int) "tenant 1 priority" 1 b.P.tenant_priority;
      Alcotest.(check (float 1e-12)) "arrival_ms -> seconds" 0.5 b.P.arrival_s
    | _ -> Alcotest.fail "expected two tenants");
    Alcotest.(check bool) "scheduler parsed" true
      (spec.P.scheduler = Lcmm_runtime.Scheduler.Greedy);
    Alcotest.(check bool) "arbitration default" true
      (spec.P.arbitration = Lcmm_runtime.Arbiter.Fair_share);
    Alcotest.(check bool) "partition default" true
      (spec.P.sram_partition = Lcmm_runtime.Partition.Equal);
    Alcotest.(check (float 1e-12)) "overcommit default" 4.0 spec.P.overcommit
  | _ -> Alcotest.fail "expected run");
  (* The deadline rides in the envelope, on any op. *)
  let env =
    parse_exn {|{"op":"compile","model":"alexnet","deadline_ms":250.5}|}
  in
  Alcotest.(check bool) "deadline parsed" true
    (env.P.deadline_ms = Some 250.5);
  let env = parse_exn {|{"op":"stats"}|} in
  Alcotest.(check bool) "deadline absent by default" true
    (env.P.deadline_ms = None)

let test_protocol_run_rejects () =
  let bad line =
    match P.request_of_line line with
    | Ok _ -> Alcotest.failf "expected rejection for %s" line
    | Error _ -> ()
  in
  bad {|{"op":"run"}|};
  bad {|{"op":"run","tenants":[]}|};
  bad {|{"op":"run","tenants":[{"model":"alexnet","count":0}]}|};
  bad {|{"op":"run","tenants":[{"model":"alexnet"}],"scheduler":"fifo"}|};
  bad {|{"op":"run","tenants":[{"model":"alexnet"}],"arbitration":"lottery"}|};
  bad {|{"op":"run","tenants":[{"model":"alexnet"}],"overcommit":0}|};
  bad {|{"op":"run","tenants":[{"model":"alexnet"}],"partition":"striped"}|};
  bad {|{"op":"run","tenants":[{"model":"alexnet","arrival_ms":-1}]}|};
  bad {|{"op":"compile","model":"alexnet","deadline_ms":0}|};
  bad {|{"op":"compile","model":"alexnet","deadline_ms":-5}|};
  bad {|{"op":"compile","model":"alexnet","deadline_ms":"soon"}|}

let test_engine_run_op () =
  with_engine ~domains:2 (fun engine ->
      let request =
        {|{"op":"run","id":1,"tenants":[{"model":"googlenet","count":2}]}|}
      in
      let first = result_of_line (handle_line engine request) in
      Alcotest.check json_t "run ok" (Json.Bool true) (field_exn "ok" first);
      let result = field_exn "result" first in
      (match Json.to_float (field_exn "makespan_ms" result) with
      | Ok ms -> Alcotest.(check bool) "positive makespan" true (ms > 0.)
      | Error msg -> Alcotest.fail msg);
      (match Json.to_list (field_exn "tenants" result) with
      | Ok ts -> Alcotest.(check int) "two tenant reports" 2 (List.length ts)
      | Error msg -> Alcotest.fail msg);
      Alcotest.(check bool) "digest present" true
        (Json.member_opt "digest" result <> None);
      (* Runs are cached like compiles: same request answers from the
         table with an identical payload. *)
      let second = result_of_line (handle_line engine request) in
      Alcotest.check json_t "run cache hit" (Json.String "hit")
        (field_exn "cache" second);
      Alcotest.check json_t "identical payload" result
        (field_exn "result" second);
      (* A policy change is a different digest, not a stale hit. *)
      let greedy =
        result_of_line
          (handle_line engine
             {|{"op":"run","tenants":[{"model":"googlenet","count":2}],"scheduler":"greedy"}|})
      in
      Alcotest.check json_t "policy change misses" (Json.String "miss")
        (field_exn "cache" greedy))

let test_engine_deadline () =
  with_engine ~domains:1 (fun engine ->
      (* A 1 ms budget on a cold VGG-16 compile cannot be met: the
         response is a structured deadline error, not a stall. *)
      let timed_out =
        result_of_line
          (handle_line engine
             {|{"op":"compile","id":9,"model":"vgg16","deadline_ms":1}|})
      in
      Alcotest.check json_t "deadline error flagged" (Json.Bool false)
        (field_exn "ok" timed_out);
      Alcotest.check json_t "id still echoed" (Json.Int 9)
        (field_exn "id" timed_out);
      (match Json.to_str (field_exn "error" timed_out) with
      | Ok msg ->
        let mentions_deadline =
          let needle = "deadline" in
          let n = String.length needle in
          let rec scan i =
            i + n <= String.length msg
            && (String.sub msg i n = needle || scan (i + 1))
          in
          scan 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "error names the deadline (%s)" msg)
          true mentions_deadline
      | Error msg -> Alcotest.fail msg);
      (* The abandoned job still finishes on its worker and lands in the
         cache, so an unbudgeted retry succeeds. *)
      let retry =
        result_of_line
          (handle_line engine {|{"op":"compile","model":"vgg16"}|})
      in
      Alcotest.check json_t "retry succeeds" (Json.Bool true)
        (field_exn "ok" retry);
      (* A generous budget on a cache hit is comfortably met. *)
      let warm =
        result_of_line
          (handle_line engine
             {|{"op":"compile","model":"vgg16","deadline_ms":60000}|})
      in
      Alcotest.check json_t "warm hit within budget" (Json.Bool true)
        (field_exn "ok" warm))

let test_pool_await_within () =
  let pool = Svc.Pool.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Svc.Pool.shutdown pool)
    (fun () ->
      let slow = Svc.Pool.submit pool (fun () -> Unix.sleepf 0.2; 11) in
      (match Svc.Pool.await_within ~seconds:0.02 slow with
      | None -> ()
      | Some _ -> Alcotest.fail "expected a timeout");
      (* The job was not cancelled: a blocking await still collects it. *)
      (match Svc.Pool.await slow with
      | Ok n -> Alcotest.(check int) "late result intact" 11 n
      | Error e -> Alcotest.failf "await failed: %s" (Printexc.to_string e));
      (* A settled future answers immediately, budget or not. *)
      match Svc.Pool.await_within ~seconds:0.001 slow with
      | Some (Ok 11) -> ()
      | _ -> Alcotest.fail "settled future should answer")

(* --- protocol fuzzing: no input may crash the decoder or the engine --- *)

let test_protocol_fuzz () =
  let st = Random.State.make [| 0x5eed; 7 |] in
  let valid = {|{"op":"compile","id":1,"model":"alexnet","dtype":"i16"}|} in
  let charset = {|{}[]":,x0 -.eop"compile"simulate"truenullNaN\|} in
  let random_garbage () =
    String.init (Random.State.int st 64) (fun _ ->
        charset.[Random.State.int st (String.length charset)])
  in
  let mutate line =
    match Random.State.int st 6 with
    | 0 ->
      (* Truncation: a connection dropped mid-line. *)
      String.sub line 0 (Random.State.int st (String.length line))
    | 1 ->
      (* One corrupted byte. *)
      let b = Bytes.of_string line in
      Bytes.set b (Random.State.int st (Bytes.length b))
        charset.[Random.State.int st (String.length charset)];
      Bytes.to_string b
    | 2 -> random_garbage ()
    | 3 ->
      (* Structurally valid JSON, protocol-hostile fields. *)
      Printf.sprintf {|{"op":%s,"model":%s,"dtype":%s,"images":%d}|}
        (List.nth [ {|"compile"|}; {|"simulate"|}; "17"; "null"; {|["batch"]|} ]
           (Random.State.int st 5))
        (List.nth [ {|"alexnet"|}; {|"no-such-model"|}; "42"; "{}" ]
           (Random.State.int st 4))
        (List.nth [ {|"i16"|}; {|"bogus"|}; "[]" ] (Random.State.int st 3))
        (Random.State.int st 1000 - 500)
    | 4 ->
      (* Deep nesting. *)
      let depth = 1 + Random.State.int st 2000 in
      String.make depth '[' ^ "1" ^ String.make depth ']'
    | _ ->
      (* A malformed inline graph. *)
      Printf.sprintf
        {|{"op":"compile","dtype":"i16","graph":{"format":"lcmm-graph","version":1,"nodes":[{"id":%d,"name":"x","op":{"kind":"conv","out_channels":%d},"preds":[%d]}]}}|}
        (Random.State.int st 3 - 1)
        (Random.State.int st 64 - 8)
        (Random.State.int st 5 - 2)
  in
  with_engine ~domains:1 (fun engine ->
      let check_line line =
        match handle_line engine line with
        | resp ->
          Alcotest.(check bool) "newline-terminated" true
            (String.length resp > 0 && resp.[String.length resp - 1] = '\n');
          (match Json.of_string (String.trim resp) with
          | Ok _ -> ()
          | Error msg ->
            Alcotest.failf "unparseable response (%s) for input %S" msg line)
        | exception e ->
          Alcotest.failf "handle_line raised %s on %S" (Printexc.to_string e)
            line
      in
      for _ = 1 to 400 do
        check_line (mutate valid)
      done;
      (* An oversized line is refused without being parsed. *)
      let oversized =
        "{\"op\":\"compile\"," ^ String.make Svc.Engine.max_line_bytes ' ' ^ "}"
      in
      let resp = result_of_line (handle_line engine oversized) in
      Alcotest.check json_t "oversized is an error" (Json.Bool false)
        (field_exn "ok" resp);
      (* And the engine still answers real requests afterwards. *)
      let resp = result_of_line (handle_line engine valid) in
      Alcotest.check json_t "engine survives the fuzz" (Json.Bool true)
        (field_exn "ok" resp))

(* --- supervision, circuit breaking and cache quarantine --- *)

let contains needle msg =
  let n = String.length needle in
  let rec scan i =
    i + n <= String.length msg && (String.sub msg i n = needle || scan (i + 1))
  in
  scan 0

let test_pool_crash_restart () =
  let pool = Svc.Pool.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Svc.Pool.shutdown pool)
    (fun () ->
      (* A crash-class exception still answers the caller (no hang)... *)
      (match
         Svc.Pool.await
           (Svc.Pool.submit pool (fun () ->
                raise (Svc.Pool.Worker_crash "simulated OOM")))
       with
      | Error (Svc.Pool.Worker_crash msg) ->
        Alcotest.(check string) "crash reason carried" "simulated OOM" msg
      | Error e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      | Ok () -> Alcotest.fail "expected a crash");
      (* ...then unwinds the worker loop, which the supervisor restarts:
         the next job is answered by the reborn worker. *)
      Alcotest.(check int) "pool still serves" 9 (Svc.Pool.run pool (fun () -> 9));
      Alcotest.(check int) "restart counted" 1 (Svc.Pool.restarts pool);
      (* Stack_overflow is crash-class too, and survivable the same way. *)
      (match Svc.Pool.await (Svc.Pool.submit pool (fun () -> raise Stack_overflow)) with
      | Error Stack_overflow -> ()
      | Error e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      | Ok () -> Alcotest.fail "expected Stack_overflow");
      Alcotest.(check int) "still serving" 4 (Svc.Pool.run pool (fun () -> 4));
      Alcotest.(check int) "second restart" 2 (Svc.Pool.restarts pool))

let test_engine_circuit_breaker () =
  let pool = Svc.Pool.create ~domains:1 () in
  let engine =
    Svc.Engine.create ~pool ~breaker_threshold:2 ~breaker_cooldown_ms:400. ()
  in
  Fun.protect
    ~finally:(fun () -> Svc.Engine.shutdown engine)
    (fun () ->
      (* Distinct option digests force cold compiles; a 1 ms budget on a
         cold VGG-16 compile is a guaranteed deadline miss — a counted
         failure.  (VGG-16, not alexnet: a warm process can plan small
         models inside 1 ms, which would dodge the miss.) *)
      let miss slices =
        Printf.sprintf
          {|{"op":"compile","model":"vgg16","deadline_ms":1,"options":{"weight_slices":%d}}|}
          slices
      in
      let r1 = result_of_line (handle_line engine (miss 2)) in
      Alcotest.check json_t "first miss errors" (Json.Bool false)
        (field_exn "ok" r1);
      Alcotest.check json_t "deadline kind" (Json.String "deadline")
        (field_exn "kind" r1);
      let r2 = result_of_line (handle_line engine (miss 3)) in
      Alcotest.check json_t "second miss errors" (Json.Bool false)
        (field_exn "ok" r2);
      (* Threshold reached: the compile circuit is open and sheds without
         touching the pool. *)
      let shed =
        result_of_line (handle_line engine {|{"op":"compile","model":"alexnet"}|})
      in
      Alcotest.check json_t "shed flagged" (Json.Bool false) (field_exn "ok" shed);
      Alcotest.check json_t "unavailable kind" (Json.String "unavailable")
        (field_exn "kind" shed);
      (match Json.to_str (field_exn "error" shed) with
      | Ok msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error names the open circuit (%s)" msg)
          true
          (contains "circuit open" msg)
      | Error msg -> Alcotest.fail msg);
      (* stats is never shed, and reports the open breaker. *)
      let stats = result_of_line (handle_line engine {|{"op":"stats"}|}) in
      Alcotest.check json_t "stats answers" (Json.Bool true) (field_exn "ok" stats);
      let compile_breaker =
        field_exn "compile" (field_exn "breakers" (field_exn "result" stats))
      in
      Alcotest.check json_t "breaker open" (Json.String "open")
        (field_exn "state" compile_breaker);
      Alcotest.check json_t "one trip" (Json.Int 1)
        (field_exn "trips" compile_breaker);
      (* Each op has its own circuit: models still answers. *)
      let models = result_of_line (handle_line engine {|{"op":"models"}|}) in
      Alcotest.check json_t "other ops unaffected" (Json.Bool true)
        (field_exn "ok" models);
      (* After the cooldown a probe is admitted; success closes the
         circuit and normal service resumes. *)
      Unix.sleepf 0.6;
      let probe =
        result_of_line (handle_line engine {|{"op":"compile","model":"alexnet"}|})
      in
      Alcotest.check json_t "probe succeeds" (Json.Bool true)
        (field_exn "ok" probe);
      let after =
        result_of_line (handle_line engine {|{"op":"compile","model":"alexnet"}|})
      in
      Alcotest.check json_t "service recovered" (Json.Bool true)
        (field_exn "ok" after);
      let stats = result_of_line (handle_line engine {|{"op":"stats"}|}) in
      let compile_breaker =
        field_exn "compile" (field_exn "breakers" (field_exn "result" stats))
      in
      Alcotest.check json_t "breaker closed again" (Json.String "closed")
        (field_exn "state" compile_breaker))

let replace_once needle repl s =
  let n = String.length needle in
  let rec find i =
    if i + n > String.length s then Alcotest.failf "needle %S not found" needle
    else if String.sub s i n = needle then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ repl ^ String.sub s (i + n) (String.length s - i - n)

let test_cache_quarantine () =
  let dir = Filename.temp_file "lcmm_cacheq" "" in
  Sys.remove dir;
  let payload = Json.Obj [ ("x", Json.Int 31337) ] in
  let c1 = Svc.Plan_cache.create ~persist_dir:dir () in
  List.iter (fun k -> Svc.Plan_cache.put c1 k payload)
    [ "aaaa01"; "bbbb02"; "cccc03" ];
  let path name = Filename.concat dir (name ^ ".json") in
  let slurp name = In_channel.with_open_bin (path name) In_channel.input_all in
  let spew name s =
    Out_channel.with_open_bin (path name) (fun oc ->
        Out_channel.output_string oc s)
  in
  (* A connection or machine dying mid-write leaves a truncated file;
     a disk or editor mishap flips payload bytes under an intact sha. *)
  let whole = slurp "aaaa01" in
  spew "aaaa01" (String.sub whole 0 (String.length whole / 2));
  spew "bbbb02" (replace_once "31337" "31338" (slurp "bbbb02"));
  let c2 = Svc.Plan_cache.create ~persist_dir:dir () in
  Alcotest.(check bool) "truncated is a miss" true
    (Svc.Plan_cache.find c2 "aaaa01" = None);
  Alcotest.(check bool) "bit-flipped is a miss" true
    (Svc.Plan_cache.find c2 "bbbb02" = None);
  (match Svc.Plan_cache.find c2 "cccc03" with
  | Some v -> Alcotest.check json_t "intact sibling still loads" payload v
  | None -> Alcotest.fail "intact entry should rewarm");
  let s = Svc.Plan_cache.stats c2 in
  Alcotest.(check int) "both quarantined" 2 s.Svc.Plan_cache.quarantined;
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " moved to .corrupt") true
        (Sys.file_exists (path name ^ ".corrupt"));
      Alcotest.(check bool) (name ^ " original gone") true
        (not (Sys.file_exists (path name))))
    [ "aaaa01"; "bbbb02" ];
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

(* --- metrics percentiles --- *)

let test_percentile_estimator () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "median interpolates" 50.5
    (Svc.Metrics.percentile xs 0.5);
  Alcotest.(check (float 1e-9)) "p0 is min" 1. (Svc.Metrics.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p100 is max" 100.
    (Svc.Metrics.percentile xs 1.);
  Alcotest.(check (float 1e-9)) "p99 near the top" 99.01
    (Svc.Metrics.percentile xs 0.99);
  (* Input order must not matter (the helper sorts a copy). *)
  let shuffled = [| 3.; 1.; 2. |] in
  Alcotest.(check (float 1e-9)) "unsorted input" 2.
    (Svc.Metrics.percentile shuffled 0.5);
  Alcotest.check json_t "input not mutated"
    (Json.List [ Json.Float 3.; Json.Float 1.; Json.Float 2. ])
    (Json.List (Array.to_list (Array.map (fun f -> Json.Float f) shuffled)));
  Alcotest.(check (float 1e-9)) "singleton" 7.
    (Svc.Metrics.percentile [| 7. |] 0.99);
  (* Singleton: every quantile, including the extremes and out-of-range
     requests, reports the only value. *)
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "singleton at q=%g" q)
        7.
        (Svc.Metrics.percentile [| 7. |] q))
    [ 0.; 0.5; 1.; -1.; 2. ];
  (* Exact order statistics at the endpoints: no interpolation
     arithmetic may touch them (bit-equality, not epsilon). *)
  let xs = [| 5.; -3.; 11.; 0.25 |] in
  Alcotest.(check (float 0.)) "p0 is the exact minimum" (-3.)
    (Svc.Metrics.percentile xs 0.0);
  Alcotest.(check (float 0.)) "p100 is the exact maximum" 11.
    (Svc.Metrics.percentile xs 1.0);
  (* Out-of-range and NaN quantiles clamp instead of indexing garbage. *)
  Alcotest.(check (float 0.)) "q < 0 clamps to min" (-3.)
    (Svc.Metrics.percentile xs (-0.5));
  Alcotest.(check (float 0.)) "q > 1 clamps to max" 11.
    (Svc.Metrics.percentile xs 1.5);
  Alcotest.(check (float 0.)) "NaN q treated as 0" (-3.)
    (Svc.Metrics.percentile xs Float.nan);
  (* Empty sample: 0, never NaN — the value lands in JSON stats. *)
  Alcotest.(check (float 0.)) "empty is zero" 0.
    (Svc.Metrics.percentile [||] 0.5);
  Alcotest.(check bool) "empty is NaN-free" false
    (Float.is_nan (Svc.Metrics.percentile [||] 0.999));
  (* An empty reservoir's percentile goes through the same path. *)
  let empty = Svc.Metrics.Reservoir.create ~capacity:4 () in
  Alcotest.(check (float 0.)) "empty reservoir is zero" 0.
    (Svc.Metrics.Reservoir.percentile empty 0.99)

let test_reservoir_sampling () =
  let r = Svc.Metrics.Reservoir.create ~capacity:4 () in
  List.iter (Svc.Metrics.Reservoir.add r) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "seen" 4 (Svc.Metrics.Reservoir.count r);
  Alcotest.(check (float 1e-9)) "exact while under capacity" 2.5
    (Svc.Metrics.Reservoir.percentile r 0.5);
  for i = 5 to 1000 do
    Svc.Metrics.Reservoir.add r (float_of_int i)
  done;
  Alcotest.(check int) "count tracks the stream" 1000
    (Svc.Metrics.Reservoir.count r);
  Alcotest.(check int) "held sample stays bounded" 4
    (Array.length (Svc.Metrics.Reservoir.sample r));
  (* Seeded PRNG: two reservoirs fed the same stream agree exactly. *)
  let a = Svc.Metrics.Reservoir.create ~capacity:8 ~seed:7 () in
  let b = Svc.Metrics.Reservoir.create ~capacity:8 ~seed:7 () in
  for i = 1 to 500 do
    Svc.Metrics.Reservoir.add a (float_of_int i);
    Svc.Metrics.Reservoir.add b (float_of_int i)
  done;
  Alcotest.(check (array (float 1e-9))) "deterministic draws"
    (Svc.Metrics.Reservoir.sample a)
    (Svc.Metrics.Reservoir.sample b)

let test_stats_report_percentiles () =
  with_engine ~domains:1 (fun engine ->
      ignore (handle_line engine {|{"op":"models"}|});
      let stats = result_of_line (handle_line engine {|{"op":"stats"}|}) in
      let models_op =
        field_exn "models"
          (field_exn "by_op" (field_exn "metrics" (field_exn "result" stats)))
      in
      List.iter
        (fun key ->
          match field_exn key models_op with
          | Json.Float v -> Alcotest.(check bool) (key ^ " finite") true (v >= 0.)
          | v -> Alcotest.failf "%s not a float: %s" key (Json.to_string v))
        [ "p50_ms"; "p99_ms"; "p999_ms" ])

(* --- cache_get / cache_put (the tier's peer-fill plane) --- *)

let test_engine_cache_ops () =
  with_engine ~domains:1 (fun engine ->
      let digest = String.make 32 'a' in
      let missing =
        result_of_line
          (handle_line engine
             (Printf.sprintf {|{"op":"cache_get","digest":"%s"}|} digest))
      in
      Alcotest.check json_t "miss is an error" (Json.Bool false)
        (field_exn "ok" missing);
      Alcotest.check json_t "stable miss message"
        (Json.String ("not cached: " ^ digest))
        (field_exn "error" missing);
      let put =
        result_of_line
          (handle_line engine
             (Printf.sprintf
                {|{"op":"cache_put","digest":"%s","payload":{"plan":42}}|}
                digest))
      in
      Alcotest.check json_t "stored" (Json.Bool true)
        (field_exn "stored" (field_exn "result" put));
      let got =
        result_of_line
          (handle_line engine
             (Printf.sprintf {|{"op":"cache_get","digest":"%s"}|} digest))
      in
      Alcotest.check json_t "round-trips" (Json.Obj [ ("plan", Json.Int 42) ])
        (field_exn "result" got);
      Alcotest.check json_t "counts as a cache hit" (Json.String "hit")
        (field_exn "cache" got);
      (* Digests are validated: not hex, not empty, not unbounded. *)
      List.iter
        (fun bad ->
          let resp =
            result_of_line
              (handle_line engine
                 (Printf.sprintf {|{"op":"cache_get","digest":%s}|} bad))
          in
          Alcotest.check json_t ("rejected: " ^ bad) (Json.Bool false)
            (field_exn "ok" resp))
        [ {|"XYZ"|}; {|""|}; {|123|};
          Printf.sprintf {|"%s"|} (String.make 200 'a') ])

(* --- envelope re-encoding (the tier's forwarding path) --- *)

let parse_line_exn line =
  match P.request_of_line line with
  | Ok env -> env
  | Error msg -> Alcotest.failf "parse: %s" msg

let test_envelope_reencode_digest_stable () =
  let lines =
    [ {|{"op":"compile","id":7,"model":"alexnet","dtype":"i8","options":{"weight_slices":3,"coloring":"first_fit"}}|};
      {|{"op":"simulate","model":"squeezenet","images":4,"deadline_ms":5000}|};
      {|{"op":"run","tenants":[{"model":"alexnet","count":2,"priority":1,"arrival_ms":123.456789012345678},{"model":"squeezenet"}],"scheduler":"edf","overcommit":1.25}|};
      {|{"op":"cache_get","digest":"abcdef0123456789"}|} ]
  in
  List.iter
    (fun line ->
      let env = parse_line_exn line in
      let reencoded = Json.to_string (P.envelope_to_json env) in
      let env2 = parse_line_exn reencoded in
      let digest_of (e : P.envelope) =
        match Svc.Engine.route_digest e.P.request with
        | Ok (Some d) -> d
        | Ok None -> Alcotest.failf "no digest for %s" line
        | Error msg -> Alcotest.failf "route_digest: %s" msg
      in
      Alcotest.(check string)
        ("digest survives re-encoding: " ^ line)
        (digest_of env) (digest_of env2);
      Alcotest.check json_t "id survives"
        (match env.P.id with Some v -> v | None -> Json.Null)
        (match env2.P.id with Some v -> v | None -> Json.Null);
      (* And the encoding is a fixed point: encode(parse(encode)) =
         encode. *)
      Alcotest.(check string) "fixed point" reencoded
        (Json.to_string (P.envelope_to_json env2)))
    lines

let test_route_digest_matches_engine () =
  with_engine ~domains:1 (fun engine ->
      let line = {|{"op":"compile","model":"alexnet","dtype":"i8"}|} in
      let resp = result_of_line (handle_line engine line) in
      let served =
        match field_exn "digest" (field_exn "result" resp) with
        | Json.String d -> d
        | v -> Alcotest.failf "digest not a string: %s" (Json.to_string v)
      in
      match Svc.Engine.route_digest (parse_line_exn line).P.request with
      | Ok (Some routed) ->
        Alcotest.(check string) "router and engine agree" served routed
      | Ok None | Error _ -> Alcotest.fail "expected a digest")

(* --- concurrent socket accept --- *)

let test_socket_concurrent_connections () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lcmm_test_%d.sock" (Unix.getpid ()))
  in
  let echo line = "echo:" ^ line ^ "\n" in
  let (_ : Thread.t) =
    Thread.create (fun () -> Svc.Server.serve_unix_socket_with echo ~path) ()
  in
  let rec wait_for_socket tries =
    if tries = 0 then Alcotest.fail "server socket never appeared";
    if not (Sys.file_exists path) then begin
      Unix.sleepf 0.05;
      wait_for_socket (tries - 1)
    end
  in
  wait_for_socket 100;
  let connect () =
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect sock (Unix.ADDR_UNIX path);
    (sock, Unix.in_channel_of_descr sock, Unix.out_channel_of_descr sock)
  in
  (* The first connection stays open and idle; a sequential accept loop
     would keep the second connection waiting forever. *)
  let idle_sock, _, idle_oc = connect () in
  let sock2, ic2, oc2 = connect () in
  output_string oc2 "hello\n";
  flush oc2;
  Alcotest.(check string) "second connection served while first is open"
    "echo:hello" (input_line ic2);
  (* The idle connection still works afterwards too. *)
  output_string idle_oc "later\n";
  flush idle_oc;
  let _, idle_ic, _ = (idle_sock, Unix.in_channel_of_descr idle_sock, ()) in
  Alcotest.(check string) "first connection still alive" "echo:later"
    (input_line idle_ic);
  Unix.close sock2;
  Unix.close idle_sock

let suite =
  [ Alcotest.test_case "cache lru eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache byte bound" `Quick test_cache_byte_bound;
    Alcotest.test_case "cache persistence" `Quick test_cache_persistence;
    Alcotest.test_case "cache key stability" `Quick test_cache_key_stability;
    Alcotest.test_case "pool parallel map" `Quick test_pool_map;
    Alcotest.test_case "pool exceptions" `Quick test_pool_exceptions;
    Alcotest.test_case "pool shutdown" `Quick test_pool_shutdown_rejects;
    Alcotest.test_case "protocol parse" `Quick test_protocol_parse;
    Alcotest.test_case "protocol rejects" `Quick test_protocol_rejects;
    Alcotest.test_case "options round-trip" `Quick test_options_roundtrip;
    Alcotest.test_case "compile cache hit" `Quick test_engine_compile_cache_hit;
    Alcotest.test_case "simulate and errors" `Quick test_engine_simulate_and_errors;
    Alcotest.test_case "checksum round-trip" `Quick test_engine_checksum;
    Alcotest.test_case "parallel determinism" `Quick test_engine_parallel_determinism;
    Alcotest.test_case "batch ordering" `Quick test_engine_batch_parallel_speed;
    Alcotest.test_case "run op parse" `Quick test_protocol_run_parse;
    Alcotest.test_case "run op rejects" `Quick test_protocol_run_rejects;
    Alcotest.test_case "run op end-to-end" `Quick test_engine_run_op;
    Alcotest.test_case "request deadlines" `Quick test_engine_deadline;
    Alcotest.test_case "pool await_within" `Quick test_pool_await_within;
    Alcotest.test_case "pool crash restart" `Quick test_pool_crash_restart;
    Alcotest.test_case "circuit breaker" `Quick test_engine_circuit_breaker;
    Alcotest.test_case "cache quarantine" `Quick test_cache_quarantine;
    Alcotest.test_case "percentile estimator" `Quick test_percentile_estimator;
    Alcotest.test_case "latency reservoir" `Quick test_reservoir_sampling;
    Alcotest.test_case "stats report percentiles" `Quick
      test_stats_report_percentiles;
    Alcotest.test_case "cache_get/cache_put ops" `Quick test_engine_cache_ops;
    Alcotest.test_case "envelope re-encode digest-stable" `Quick
      test_envelope_reencode_digest_stable;
    Alcotest.test_case "route_digest matches engine" `Quick
      test_route_digest_matches_engine;
    Alcotest.test_case "socket serves connections concurrently" `Quick
      test_socket_concurrent_connections;
    Alcotest.test_case "protocol fuzz" `Quick test_protocol_fuzz ]
