(* The fault-injection subsystem: the spec grammar, the counter-based
   deterministic derivation, degraded-mode replanning after SRAM bank
   loss, retry/abort accounting, and — load-bearing — that an inactive
   fault spec reproduces the fault-free runtime bit for bit. *)

module Rt = Lcmm_runtime
module F = Lcmm.Framework
module Spec = Fault.Spec
module Inj = Fault.Injector
module Json = Dnn_serial.Json

let ok_spec s =
  match Spec.of_string s with
  | Ok spec -> spec
  | Error msg -> Alcotest.failf "spec %S failed to parse: %s" s msg

let render report = Json.to_string (Rt.Report.to_json report)

let pretty report = Format.asprintf "%a" Rt.Report.pp report

let replicas model n =
  let g = Models.Zoo.build model in
  List.init n (fun k ->
      { Rt.Runtime.name = Printf.sprintf "%s#%d" model k;
        model;
        graph = g;
        priority = 0;
        arrival = 0. })

let mix l = List.concat_map (fun (m, n) -> replicas m n) l

let run_with ?faults specs =
  Rt.Runtime.run { Rt.Runtime.default_options with faults } specs

(* --- the spec grammar --- *)

let test_roundtrip () =
  List.iter
    (fun s ->
      let spec = ok_spec s in
      let canon = Spec.to_string spec in
      let reparsed = ok_spec canon in
      Alcotest.(check string) (Printf.sprintf "%S round-trips" s) canon
        (Spec.to_string reparsed);
      Alcotest.(check bool)
        (Printf.sprintf "%S reparses equal" s)
        true (spec = reparsed))
    [ "";
      "seed=42";
      "stall:0.1:0.25";
      "fail:0.02";
      "bankloss@1:4m";
      "seed=7,droop@2:3:0.5,stall:0.05:0.2,fail:0.01,retries=5,\
       backoff=0.1:4,bankloss@4:256k:1,abort@9:2" ]

let test_byte_suffixes () =
  let spec = ok_spec "bankloss@1:256k,bankloss@2:4m,bankloss@3:123" in
  Alcotest.(check (list int))
    "k/m suffixes"
    [ 256 * 1024; 4 * 1024 * 1024; 123 ]
    (List.map (fun b -> b.Spec.loss_bytes) spec.Spec.bank_losses)

let test_parse_errors () =
  List.iter
    (fun s ->
      match Spec.of_string s with
      | Ok _ -> Alcotest.failf "spec %S should not parse" s
      | Error _ -> ())
    [ "nonsense"; "stall:1.5:1"; "fail:-0.1"; "droop@1:0:0.5";
      "droop@1:2:0"; "droop@1:2:1.5"; "bankloss@1:xyz"; "retries=-1";
      "abort@1"; "seed="; "backoff=2:1"; "stall:0.1:-3" ]

let test_is_empty () =
  List.iter
    (fun (s, expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "is_empty %S" s)
        expect
        (Spec.is_empty (ok_spec s)))
    [ ("", true); ("seed=42", true); ("retries=5,backoff=0.1:4", true);
      ("stall:0.1:0.2", false); ("fail:0.01", false);
      ("droop@1:2:0.5", false); ("bankloss@1:4k", false);
      ("abort@1:0", false) ]

(* --- deterministic derivation --- *)

let test_injector_determinism () =
  let spec = ok_spec "seed=42,stall:0.5:0.2,fail:0.3" in
  let a = Inj.create spec in
  let b = Inj.create spec in
  let keys = List.init 200 Fun.id in
  (* Query [b] in reverse order: outcomes are a pure function of the
     key, never of the query order. *)
  let sa = List.map (fun k -> Inj.stall_seconds a ~key:k) keys in
  let sb =
    List.rev (List.map (fun k -> Inj.stall_seconds b ~key:k) (List.rev keys))
  in
  Alcotest.(check bool) "stalls replay" true (sa = sb);
  let fa = List.map (fun k -> Inj.planned_failures a ~key:k) keys in
  let fb =
    List.rev
      (List.rev_map (fun k -> Inj.planned_failures b ~key:k) keys)
  in
  Alcotest.(check (list int)) "failures replay" fa fb;
  let ba = List.map (fun k -> Inj.backoff_seconds a ~key:k ~attempt:1) keys in
  let bb = List.map (fun k -> Inj.backoff_seconds b ~key:k ~attempt:1) keys in
  Alcotest.(check bool) "backoffs replay" true (ba = bb);
  (* A different seed must actually change outcomes somewhere. *)
  let other = Inj.create { spec with Spec.seed = 43 } in
  let so = List.map (fun k -> Inj.stall_seconds other ~key:k) keys in
  Alcotest.(check bool) "seed matters" true (sa <> so)

let test_injector_bounds () =
  let spec = ok_spec "seed=1,stall:1:0.2,fail:1,retries=2,backoff=0.1:0.4" in
  let inj = Inj.create spec in
  Alcotest.(check int) "retry budget" 2 (Inj.max_retries inj);
  List.iter
    (fun key ->
      (* stall:1 always fires; jitter keeps it at 0.5-1.5x the mean. *)
      let s = Inj.stall_seconds inj ~key in
      Alcotest.(check bool)
        (Printf.sprintf "stall %d in band" key)
        true
        (s >= 0.5 *. 2e-4 && s <= 1.5 *. 2e-4);
      (* fail:1 always exhausts the budget: retries + the final attempt. *)
      Alcotest.(check int)
        (Printf.sprintf "failures %d capped" key)
        3 (Inj.planned_failures inj ~key);
      (* Capped exponential backoff, jittered to 1-2x nominal. *)
      List.iter
        (fun attempt ->
          let nominal = Float.min 4e-4 (1e-4 *. (2. ** float_of_int attempt)) in
          let b = Inj.backoff_seconds inj ~key ~attempt in
          Alcotest.(check bool)
            (Printf.sprintf "backoff %d/%d in band" key attempt)
            true
            (b >= nominal && b <= 2. *. nominal))
        [ 0; 1; 2; 5 ])
    [ 0; 1; 2; 17; 1234 ]

let test_droop_windows () =
  let inj = Inj.create (ok_spec "droop@1:2:0.5,droop@2:2:0.8") in
  let at now = Inj.droop_factor inj ~now in
  Alcotest.(check (float 0.)) "before" 1. (at 0.0005);
  Alcotest.(check (float 0.)) "first window" 0.5 (at 0.0015);
  Alcotest.(check (float 0.)) "overlap takes the min" 0.5 (at 0.0025);
  Alcotest.(check (float 0.)) "second window" 0.8 (at 0.0035);
  Alcotest.(check (float 0.)) "after" 1. (at 0.0045);
  Alcotest.(check (float 0.)) "next boundary" 0.001
    (Inj.next_droop_boundary inj ~now:0.);
  Alcotest.(check bool) "boundaries exhausted" true
    (Inj.next_droop_boundary inj ~now:1. = infinity)

(* --- eviction by reverse benefit-density --- *)

let alexnet_allocation =
  lazy
    (let g = Models.Zoo.build "alexnet" in
     let dse =
       Accel.Dse.run ~device:Fpga.Device.vu9p ~style:Accel.Config.Lcmm
         Tensor.Dtype.I16 g
     in
     let plan = F.plan dse.Accel.Dse.config g in
     (plan.F.metric, plan.F.allocation))

let vbuf_ids vbufs =
  List.sort_uniq compare (List.map (fun vb -> vb.Lcmm.Vbuffer.vbuf_id) vbufs)

let test_evict_to_capacity () =
  let metric, base = Lazy.force alexnet_allocation in
  Alcotest.(check bool) "fixture pins something" true (base.Lcmm.Dnnk.chosen <> []);
  let base_bytes = base.Lcmm.Dnnk.capacity_blocks * Lcmm.Dnnk.block_bytes in
  let half = base_bytes / 2 in
  let post, evicted = Lcmm.Dnnk.evict_to_capacity metric ~capacity_bytes:half base in
  Alcotest.(check bool) "fits the surviving capacity" true
    (post.Lcmm.Dnnk.used_blocks <= post.Lcmm.Dnnk.capacity_blocks);
  Alcotest.(check (list int))
    "survivors + evicted partition the chosen set"
    (vbuf_ids base.Lcmm.Dnnk.chosen)
    (List.sort_uniq compare (vbuf_ids post.Lcmm.Dnnk.chosen @ vbuf_ids evicted));
  Alcotest.(check bool) "eviction only slows the plan" true
    (post.Lcmm.Dnnk.predicted_latency
     >= base.Lcmm.Dnnk.predicted_latency -. 1e-12);
  (* Losing everything evicts everything. *)
  let all_gone, evicted_all =
    Lcmm.Dnnk.evict_to_capacity metric ~capacity_bytes:0 base
  in
  Alcotest.(check (list int)) "capacity 0 evicts all" (vbuf_ids base.Lcmm.Dnnk.chosen)
    (vbuf_ids evicted_all);
  Alcotest.(check int) "capacity 0 pins nothing" 0 all_gone.Lcmm.Dnnk.used_blocks;
  (* A capacity the allocation already fits is the identity. *)
  let same, none =
    Lcmm.Dnnk.evict_to_capacity metric ~capacity_bytes:base_bytes base
  in
  Alcotest.(check (list int)) "no-op keeps the chosen set"
    (vbuf_ids base.Lcmm.Dnnk.chosen) (vbuf_ids same.Lcmm.Dnnk.chosen);
  Alcotest.(check int) "no-op evicts nothing" 0 (List.length none)

(* --- the runtime under faults --- *)

(* The all-quiet spec must be normalised away: report JSON and pretty
   rendering bit-identical to the fault-free engine, across the zoo. *)
let test_empty_spec_bit_exact () =
  List.iter
    (fun model ->
      let specs = replicas model 1 in
      let plain = run_with specs in
      let quiet = run_with ~faults:(ok_spec "seed=42") specs in
      Alcotest.(check string) (model ^ " json identical") (render plain)
        (render quiet);
      Alcotest.(check string) (model ^ " pp identical") (pretty plain)
        (pretty quiet))
    [ "alexnet"; "squeezenet"; "googlenet" ]

let faulty_spec = "seed=42,stall:0.1:0.3,fail:0.05,droop@2:5:0.5,bankloss@3:4m"

let test_seeded_replay () =
  let specs = mix [ ("alexnet", 2); ("squeezenet", 1) ] in
  let a = run_with ~faults:(ok_spec faulty_spec) specs in
  let b = run_with ~faults:(ok_spec faulty_spec) specs in
  Alcotest.(check string) "same seed, same report" (render a) (render b)

let test_bank_loss_degrades () =
  let specs = mix [ ("alexnet", 2); ("squeezenet", 1) ] in
  let report = run_with ~faults:(ok_spec "seed=9,bankloss@3:4m") specs in
  (* Every tenant still completes: a bank loss degrades, never kills. *)
  List.iter
    (fun (t : Rt.Report.tenant_report) ->
      Alcotest.(check bool)
        (t.Rt.Report.name ^ " admitted")
        true
        (t.Rt.Report.status = Rt.Report.Admitted);
      Alcotest.(check bool)
        (t.Rt.Report.name ^ " finished")
        true (t.Rt.Report.finish_ms > 0.))
    report.Rt.Report.tenants;
  let degraded =
    List.filter
      (fun (t : Rt.Report.tenant_report) ->
        t.Rt.Report.faults.Rt.Engine.degraded > 0)
      report.Rt.Report.tenants
  in
  Alcotest.(check int) "exactly one tenant degraded" 1 (List.length degraded);
  List.iter
    (fun (t : Rt.Report.tenant_report) ->
      let f = t.Rt.Report.faults in
      match f.Rt.Engine.pinned_after, f.Rt.Engine.surviving_bytes with
      | Some pinned, Some surviving ->
        Alcotest.(check bool)
          (t.Rt.Report.name ^ " post-eviction pinning fits what survives")
          true (pinned <= surviving);
        Alcotest.(check int)
          (t.Rt.Report.name ^ " report uses the degraded pinning")
          pinned t.Rt.Report.sram_used_bytes
      | _ -> Alcotest.fail "degraded tenant lacks pinning accounting")
    degraded

let test_retry_exhaustion_aborts () =
  let specs = replicas "alexnet" 1 in
  let report = run_with ~faults:(ok_spec "seed=5,fail:1,retries=2") specs in
  match report.Rt.Report.tenants with
  | [ t ] -> (
    match t.Rt.Report.status with
    | Rt.Report.Aborted reason ->
      Alcotest.(check bool) "reason mentions retries" true
        (String.length reason > 0);
      Alcotest.(check bool) "retries were burned" true
        (t.Rt.Report.faults.Rt.Engine.retries > 0)
    | _ -> Alcotest.fail "always-failing transfers must abort the tenant")
  | _ -> Alcotest.fail "expected one tenant"

let test_abort_event () =
  let specs = replicas "alexnet" 1 in
  let report = run_with ~faults:(ok_spec "abort@1:0") specs in
  match report.Rt.Report.tenants with
  | [ t ] ->
    Alcotest.(check bool) "injected abort lands" true
      (match t.Rt.Report.status with Rt.Report.Aborted _ -> true | _ -> false)
  | _ -> Alcotest.fail "expected one tenant"

let test_droop_slows () =
  let specs = replicas "alexnet" 1 in
  let plain = run_with specs in
  let drooped = run_with ~faults:(ok_spec "droop@0:1000:0.5") specs in
  Alcotest.(check bool) "halved bandwidth slows the run" true
    (drooped.Rt.Report.makespan_ms > plain.Rt.Report.makespan_ms)

(* --- transport faults --- *)

let test_transport_roundtrip () =
  List.iter
    (fun s ->
      let spec = ok_spec s in
      let canon = Spec.to_string spec in
      Alcotest.(check bool)
        (Printf.sprintf "%S has transport faults" s)
        true
        (Spec.has_transport_faults spec);
      Alcotest.(check bool)
        (Printf.sprintf "%S stays board-fault free" s)
        false (Spec.has_board_faults spec);
      Alcotest.(check string)
        (Printf.sprintf "%S round-trips" s)
        canon
        (Spec.to_string (ok_spec canon)))
    [ "delay:0.1:40";
      "hang:0.02";
      "trunc:0.05";
      "corrupt:0.01";
      "reset:0.03";
      "slowshard@2:3.5";
      "seed=9,delay:0.08:40,hang:0.02,trunc:0.02,corrupt:0.02,reset:0.03,\
       slowshard@0:2" ]

let test_spec_positional_errors () =
  let expect_error s fragments =
    match Spec.of_string s with
    | Ok _ -> Alcotest.failf "spec %S unexpectedly parsed" s
    | Error msg ->
      List.iter
        (fun frag ->
          let contains =
            let flen = String.length frag and mlen = String.length msg in
            let rec scan i =
              i + flen <= mlen
              && (String.sub msg i flen = frag || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "error for %S mentions %S: %s" s frag msg)
            true contains)
        fragments
  in
  (* The error names the clause by (1-based) index, text and character
     offset into the original spec string. *)
  expect_error "seed=1,bogus:0.5" [ "clause 2"; "bogus:0.5"; "at char 7" ];
  expect_error "delay:0.1" [ "clause 1"; "delay" ];
  expect_error "seed=1,hang:2.0" [ "clause 2"; "hang" ];
  expect_error "slowshard@0:0.5" [ "clause 1"; "slowshard" ];
  (* Empty clauses (stray or trailing commas) are tolerated, not errors,
     and do not advance the clause numbering. *)
  Alcotest.(check string) "empty clauses skipped"
    (Spec.to_string (ok_spec "seed=1,reset:0.1"))
    (Spec.to_string (ok_spec "seed=1,,reset:0.1,"))

let test_scale_transport () =
  let spec = ok_spec "delay:0.4:40,reset:0.6" in
  let doubled = Spec.scale_transport spec 2. in
  Alcotest.(check (float 1e-9)) "delay prob scaled" 0.8
    doubled.Spec.t_delay_prob;
  Alcotest.(check (float 1e-9)) "reset prob clamped to 1" 1.0
    doubled.Spec.t_reset_prob;
  Alcotest.(check (float 1e-9)) "magnitude untouched" 0.04
    doubled.Spec.t_delay_seconds;
  let halved = Spec.scale_transport spec 0.5 in
  Alcotest.(check (float 1e-9)) "halved" 0.2 halved.Spec.t_delay_prob

let test_transport_action_determinism () =
  let inj = Inj.create (ok_spec "seed=5,delay:0.2:10,reset:0.1,trunc:0.1") in
  for key = 0 to 50 do
    for attempt = 0 to 3 do
      Alcotest.(check bool)
        (Printf.sprintf "key %d attempt %d replays" key attempt)
        true
        (Inj.transport_action inj ~key ~attempt
        = Inj.transport_action inj ~key ~attempt)
    done
  done;
  (* A quiet spec never injects. *)
  let quiet = Inj.create (ok_spec "seed=5") in
  for key = 0 to 50 do
    Alcotest.(check bool) "quiet spec passes" true
      (Inj.transport_action quiet ~key ~attempt:0 = Inj.Pass)
  done;
  (* Certain faults always fire, with reset outranking delay. *)
  let certain = Inj.create (ok_spec "seed=5,delay:1.0:10,reset:1.0") in
  for key = 0 to 20 do
    Alcotest.(check bool) "reset wins precedence" true
      (Inj.transport_action certain ~key ~attempt:0 = Inj.Reset)
  done

let test_mangle_line () =
  let inj = Inj.create (ok_spec "seed=11,trunc:1.0") in
  let line = {|{"id":"abc","ok":true,"result":{"x":1,"y":[1,2,3]}}|} in
  let truncated = Inj.mangle_line inj ~key:3 ~attempt:0 ~action:Inj.Trunc line in
  Alcotest.(check bool) "truncation shortens" true
    (String.length truncated < String.length line);
  Alcotest.(check string) "truncation keeps a prefix"
    (String.sub line 0 (String.length truncated))
    truncated;
  let corrupted =
    Inj.mangle_line inj ~key:3 ~attempt:0 ~action:Inj.Corrupt line
  in
  Alcotest.(check int) "corruption keeps the length" (String.length line)
    (String.length corrupted);
  let diffs = ref 0 in
  String.iteri (fun i c -> if c <> corrupted.[i] then incr diffs) line;
  Alcotest.(check int) "corruption flips exactly one byte" 1 !diffs;
  (* Both are deterministic for a (key, attempt). *)
  Alcotest.(check string) "trunc replays" truncated
    (Inj.mangle_line inj ~key:3 ~attempt:0 ~action:Inj.Trunc line);
  Alcotest.(check string) "corrupt replays" corrupted
    (Inj.mangle_line inj ~key:3 ~attempt:0 ~action:Inj.Corrupt line)

let test_slow_factor () =
  let inj = Inj.create (ok_spec "slowshard@1:3,slowshard@2:1.5") in
  Alcotest.(check (float 1e-9)) "unlisted shard unscaled" 1.0
    (Inj.slow_factor inj ~shard:0);
  Alcotest.(check (float 1e-9)) "listed shard scaled" 3.0
    (Inj.slow_factor inj ~shard:1);
  Alcotest.(check (float 1e-9)) "second listing" 1.5
    (Inj.slow_factor inj ~shard:2)

let suite =
  [ Alcotest.test_case "spec round-trip" `Quick test_roundtrip;
    Alcotest.test_case "spec byte suffixes" `Quick test_byte_suffixes;
    Alcotest.test_case "spec parse errors" `Quick test_parse_errors;
    Alcotest.test_case "spec emptiness" `Quick test_is_empty;
    Alcotest.test_case "injector determinism" `Quick test_injector_determinism;
    Alcotest.test_case "injector bounds" `Quick test_injector_bounds;
    Alcotest.test_case "droop windows" `Quick test_droop_windows;
    Alcotest.test_case "evict to capacity" `Quick test_evict_to_capacity;
    Alcotest.test_case "empty spec is bit-exact" `Quick
      test_empty_spec_bit_exact;
    Alcotest.test_case "seeded replay" `Quick test_seeded_replay;
    Alcotest.test_case "bank loss degrades in place" `Quick
      test_bank_loss_degrades;
    Alcotest.test_case "retry exhaustion aborts" `Quick
      test_retry_exhaustion_aborts;
    Alcotest.test_case "abort event" `Quick test_abort_event;
    Alcotest.test_case "droop slows the board" `Quick test_droop_slows;
    Alcotest.test_case "transport spec round-trip" `Quick
      test_transport_roundtrip;
    Alcotest.test_case "spec errors carry clause and position" `Quick
      test_spec_positional_errors;
    Alcotest.test_case "scale_transport scales and clamps" `Quick
      test_scale_transport;
    Alcotest.test_case "transport actions deterministic" `Quick
      test_transport_action_determinism;
    Alcotest.test_case "mangle truncates and corrupts deterministically"
      `Quick test_mangle_line;
    Alcotest.test_case "slow factors per shard" `Quick test_slow_factor ]
