module B = Dnn_graph.Builder
module Op = Dnn_graph.Op
module Shape = Tensor.Shape

type family = Chain | Fan | Skip | Degenerate | Mixed

let families = [ Chain; Fan; Skip; Degenerate; Mixed ]

let family_name = function
  | Chain -> "chain"
  | Fan -> "fan"
  | Skip -> "skip"
  | Degenerate -> "degenerate"
  | Mixed -> "mixed"

let pick st arr = arr.(Random.State.int st (Array.length arr))

let feature_dims b v =
  match Shape.as_feature (B.shape b v) with
  | Some f -> (f.Shape.channels, f.Shape.height, f.Shape.width)
  | None -> invalid_arg "Gen: non-feature value"

(* Budgeted building: every layer call below costs one node.  [spend]
   refuses once the budget is gone, so families can opportunistically add
   tails without tracking counts themselves. *)
type ctx = { b : B.t; st : Random.State.t; mutable left : int }

let spend ctx f = if ctx.left <= 0 then None else (ctx.left <- ctx.left - 1; Some (f ()))

let spend_exn ctx f =
  match spend ctx f with
  | Some v -> v
  | None -> invalid_arg "Gen: node budget exhausted"

let channels_choices = [| 4; 8; 16; 24; 32 |]

let conv_layer ctx v =
  let c_in, h, w = feature_dims ctx.b v in
  let kernel = if Random.State.bool ctx.st then (1, 1) else (3, 3) in
  let stride =
    if h >= 4 && w >= 4 && Random.State.int ctx.st 5 = 0 then (2, 2) else (1, 1)
  in
  (* Depthwise now and then: grouped convolutions stress the weight-shape
     accounting (per-group input channels). *)
  if Random.State.int ctx.st 6 = 0 then
    B.conv ctx.b ~kernel:(3, 3) ~groups:c_in ~out_channels:c_in v
  else B.conv ctx.b ~kernel ~stride ~out_channels:(pick ctx.st channels_choices) v

let pool_layer ctx v =
  (* Same padding, unit stride: shape-preserving, weight-free. *)
  B.pool ctx.b ~kernel:(3, 3) ~stride:(1, 1) ~padding:Op.Same v

let input ctx =
  let channels = pick ctx.st [| 4; 8; 16 |] in
  let hw = pick ctx.st [| 8; 16; 32 |] in
  spend_exn ctx (fun () -> B.input ctx.b ~channels ~height:hw ~width:hw ())

(* Optional classifier tail: global pool + dense. *)
let tail ctx v =
  if ctx.left >= 2 && Random.State.bool ctx.st then begin
    match spend ctx (fun () -> B.global_pool ctx.b v) with
    | None -> ()
    | Some p ->
      ignore
        (spend ctx (fun () ->
             B.dense ctx.b ~out_features:(16 * (1 + Random.State.int ctx.st 8)) p))
  end

(* Deep linear chain: long prefetch backtraces, every lifespan short. *)
let chain ctx =
  let x = ref (input ctx) in
  let continue = ref true in
  while !continue do
    let step () =
      if Random.State.int ctx.st 4 = 0 then pool_layer ctx !x else conv_layer ctx !x
    in
    match spend ctx step with Some v -> x := v | None -> continue := false
  done;
  tail ctx !x

(* Wide fan-out/fan-in: one source feeding many parallel branches that
   remerge, so mid-graph lifespans all overlap. *)
let fan ctx =
  let x = input ctx in
  let stem = spend_exn ctx (fun () -> B.conv ctx.b ~kernel:(1, 1) ~out_channels:16 x) in
  let max_branches = max 2 (min 10 ((ctx.left - 1) / 2)) in
  let branches = 2 + Random.State.int ctx.st (max_branches - 1) in
  let merge_add = Random.State.bool ctx.st in
  (* Explicit loop rather than [List.init]: the branch draws must happen
     in branch order for the seed to fully determine the graph. *)
  let rec build_branches i acc =
    if i >= branches then List.rev acc
    else
      let ch = if merge_add then 16 else pick ctx.st channels_choices in
      match spend ctx (fun () -> B.conv ctx.b ~kernel:(1, 1) ~out_channels:ch stem) with
      | None -> List.rev acc
      | Some v ->
        let out =
          if Random.State.bool ctx.st then
            match spend ctx (fun () -> B.conv ctx.b ~kernel:(3, 3) ~out_channels:ch v) with
            | None -> v
            | Some v' -> v'
          else v
        in
        build_branches (i + 1) (out :: acc)
  in
  let outs = build_branches 0 [] in
  match outs with
  | [] | [ _ ] -> ()
  | _ :: _ :: _ -> (
    let merged =
      spend ctx (fun () ->
          if merge_add then B.add ctx.b outs else B.concat ctx.b outs)
    in
    match merged with
    | None -> ()
    | Some m ->
      let v = ref m in
      (match spend ctx (fun () -> B.conv ctx.b ~kernel:(1, 1) ~out_channels:16 !v) with
      | Some v' -> v := v'
      | None -> ());
      tail ctx !v)

(* DenseNet-style skips: each stage concatenates every earlier stage, so
   early values stay live to the end of the schedule. *)
let skip ctx =
  let x = input ctx in
  let stem = spend_exn ctx (fun () -> B.conv ctx.b ~kernel:(3, 3) ~out_channels:8 x) in
  let values = ref [ stem ] in
  let continue = ref true in
  while !continue && ctx.left >= 2 do
    match !values with
    | [ only ] -> (
      match spend ctx (fun () -> B.conv ctx.b ~kernel:(3, 3) ~out_channels:8 only) with
      | Some v -> values := v :: !values
      | None -> continue := false)
    | several -> (
      match spend ctx (fun () -> B.concat ctx.b (List.rev several)) with
      | None -> continue := false
      | Some cat -> (
        match spend ctx (fun () -> B.conv ctx.b ~kernel:(1, 1) ~out_channels:8 cat) with
        | Some v -> values := v :: !values
        | None -> continue := false))
  done

(* Degenerate corners: bare inputs, weight-free networks, one-layer nets. *)
let degenerate ctx =
  match Random.State.int ctx.st (if ctx.left >= 2 then 5 else 1) with
  | 0 -> ignore (input ctx) (* the 1-node graph *)
  | 1 ->
    (* Zero weights: pools and a self-add only. *)
    let x = input ctx in
    let v = ref x in
    (match spend ctx (fun () -> pool_layer ctx !v) with
    | Some p -> v := p
    | None -> ());
    ignore (spend ctx (fun () -> B.add ctx.b [ !v; !v ]))
  | 2 -> ignore (spend ctx (fun () -> B.global_pool ctx.b (input ctx)))
  | 3 ->
    (* A single enormous-ish weight relative to the features. *)
    let x = input ctx in
    ignore (spend ctx (fun () -> B.conv ctx.b ~kernel:(3, 3) ~out_channels:64 x))
  | _ -> (
    let x = input ctx in
    match spend ctx (fun () -> B.global_pool ctx.b x) with
    | None -> ()
    | Some p -> ignore (spend ctx (fun () -> B.dense ctx.b ~out_features:64 p)))

(* Random DAG: any earlier value can feed the next layer; adds and
   concats pick shape-compatible groups. *)
let mixed ctx =
  let x = input ctx in
  (* Semantically this is the newest-first value list the draws index
     into; it is stored as a growable array (oldest first) so lookups
     and the shape-compatibility scans below stay O(1)/early-exit at
     benchmark scale.  The draw sequence, and hence every generated
     graph, is identical to the list-based formulation. *)
  let arr = ref (Array.make 16 x) in
  let len = ref 1 in
  let push v =
    if !len = Array.length !arr then begin
      let bigger = Array.make (2 * !len) v in
      Array.blit !arr 0 bigger 0 !len;
      arr := bigger
    end;
    !arr.(!len) <- v;
    incr len
  in
  let nth_value k =
    let i = k mod !len in
    !arr.(!len - 1 - i)
  in
  (* First [limit] values in newest-first order satisfying [pred] — the
     prefix of the equivalent [List.filter] that the matches below ever
     look at, so stopping early changes nothing. *)
  let first_matches limit pred =
    let out = ref [] in
    let found = ref 0 in
    let i = ref (!len - 1) in
    while !found < limit && !i >= 0 do
      let v = !arr.(!i) in
      if pred v then begin
        out := v :: !out;
        incr found
      end;
      decr i
    done;
    List.rev !out
  in
  let continue = ref true in
  while !continue do
    let step () =
      let src = nth_value (Random.State.int ctx.st 1_000) in
      match Random.State.int ctx.st 8 with
      | 0 | 1 | 2 -> conv_layer ctx src
      | 3 -> pool_layer ctx src
      | 4 -> (
        (* Element-wise add of two same-shaped values (possibly the same
           value twice — a node reading one value through two inputs). *)
        let shape = B.shape ctx.b src in
        let mates =
          first_matches 2 (fun v -> Shape.equal (B.shape ctx.b v) shape)
        in
        match mates with
        | a :: b :: _ when not (Random.State.int ctx.st 4 = 0) -> B.add ctx.b [ a; b ]
        | _ -> B.add ctx.b [ src; src ])
      | 5 -> (
        let _, h, w = feature_dims ctx.b src in
        let mates =
          first_matches 3 (fun v ->
              let _, h', w' = feature_dims ctx.b v in
              h' = h && w' = w)
        in
        match mates with
        | a :: b :: c :: _ when Random.State.bool ctx.st -> B.concat ctx.b [ a; b; c ]
        | a :: b :: _ -> B.concat ctx.b [ a; b ]
        | _ -> conv_layer ctx src)
      | 6 ->
        let _, h, w = feature_dims ctx.b src in
        if h * 2 <= 64 && w * 2 <= 64 then B.upsample ctx.b ~factor:2 src
        else conv_layer ctx src
      | _ ->
        let c_in, _, _ = feature_dims ctx.b src in
        B.conv ctx.b ~kernel:(3, 3) ~groups:c_in ~out_channels:c_in src
    in
    (* Every value here is a feature map: dense tails are excluded from
       the middle of the DAG, so [feature_dims] in [step] cannot fail. *)
    match spend ctx step with
    | Some v -> push v
    | None -> continue := false
  done

let graph ?family st ~max_nodes =
  if max_nodes < 1 then invalid_arg "Gen.graph: max_nodes < 1";
  let family =
    match family with
    | Some f -> f
    | None -> pick st [| Chain; Fan; Skip; Degenerate; Mixed |]
  in
  let ctx = { b = B.create (); st; left = max_nodes } in
  (if max_nodes < 4 then degenerate ctx
   else
     match family with
     | Chain -> chain ctx
     | Fan -> fan ctx
     | Skip -> skip ctx
     | Degenerate -> degenerate ctx
     | Mixed -> mixed ctx);
  B.finish ctx.b

let sized_graph ?family st ~nodes = graph ?family st ~max_nodes:nodes
