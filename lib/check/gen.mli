(** Seeded random computation-graph generator.

    Produces the adversarial graph shapes the LCMM passes are most
    likely to get wrong: deep linear chains (prefetch backtraces over
    many slots), wide fan-out/fan-in (many overlapping lifespans, heavy
    interference), DenseNet-style long skip edges (values live across
    most of the schedule), degenerate graphs (a bare input, zero-weight
    pool/add-only networks, single-layer nets) and a mixed random-DAG
    family.  All draws come from the caller's [Random.State.t], so a
    seed fully determines the graph. *)

type family = Chain | Fan | Skip | Degenerate | Mixed

val families : family list
(** All families, in the order {!graph} cycles through them. *)

val family_name : family -> string

val graph : ?family:family -> Random.State.t -> max_nodes:int -> Dnn_graph.Graph.t
(** Generate one valid graph of at most [max_nodes] nodes (at least 1 —
    the input).  Without [family], one is drawn from the state.  Raises
    [Invalid_argument] when [max_nodes < 1]. *)

val sized_graph : ?family:family -> Random.State.t -> nodes:int -> Dnn_graph.Graph.t
(** {!graph} with the node budget as a first-class size parameter.  The
    fuzz runner clamps [max_nodes] to small shrink-friendly graphs; this
    entry point is for benchmark-scale generation (hundreds to thousands
    of nodes), where a seed plus [nodes] fully determines the graph. *)
