(** The invariant library: per-pass properties every LCMM plan must obey.

    Each oracle checks one machine-verifiable consequence of the paper's
    claims (Eq. 1, Alg. 1, the PDG construction) or of a documented
    implementation guarantee (the exact solver's optimality, the
    splitting pass's monotonicity, the simulator's relation to the
    analytical model).  All oracles run from one shared {!ctx} built on
    a fixed design point, so a violation is attributable to a pass, not
    to disagreeing configurations. *)

type ctx

val make_ctx :
  ?dtype:Tensor.Dtype.t ->
  ?capacity_fraction:float ->
  ?exact_node_budget:int ->
  Dnn_graph.Graph.t ->
  ctx
(** Build the shared context: profiles, metric tables, eligible items,
    PDG, intervals, interference and coloring — the same pipeline
    {!Lcmm.Framework.plan} runs, but with every item eligible so the
    oracles see maximal coverage.  [capacity_fraction] (default 0.5)
    scales the allocators' capacity relative to the total virtual-buffer
    footprint, creating the capacity pressure under which allocation
    bugs actually surface; [dtype] defaults to [I16]. *)

val graph : ctx -> Dnn_graph.Graph.t

val dtype : ctx -> Tensor.Dtype.t

val capacity_fraction : ctx -> float

val umm_total : ctx -> float
(** The analytical no-reuse baseline the oracles compare against. *)

val capacity_bytes : ctx -> int
(** The derived absolute allocator capacity. *)

val dnnk_result : ctx -> Lcmm.Dnnk.compensation -> Lcmm.Dnnk.result
(** The shared (memoized) allocator run of the given variant. *)

val exact_result : ctx -> Lcmm.Exact.result
(** The shared (memoized) branch-and-bound run. *)

val optimality_gaps : ctx -> (string * float) list
(** Relative DNNK-over-optimum gap of each allocator variant
    ([("table", g); ("iterative", g)] with [g = dnnk/exact - 1]), when
    the exact solver proved optimality on this context; [[]] when the
    search was truncated.  The measurement behind [dnnk_slack]. *)

type t = {
  name : string;  (** Stable identifier, accepted by [lcmm check --oracle]. *)
  doc : string;   (** One-line statement of the invariant. *)
  check : ctx -> (unit, string) result;
}

val all : t list
(** Every oracle, in pass order (liveness, interference, coloring,
    prefetch, DNNK, DNNK-vs-exact, splitting, simulator, plan). *)

val names : string list

val find : string -> t option
(** Case-insensitive lookup by name. *)

val check_all : ?oracles:t list -> ctx -> (string * string) list
(** Run the given oracles (default {!all}) and collect the failures as
    [(oracle name, message)] pairs; empty means every invariant held. *)
