module G = Dnn_graph.Graph
module Case = Dnn_serial.Case

let log_src = Logs.Src.create "lcmm.check" ~doc:"Differential verification harness"

module Log = (val Logs.src_log log_src : Logs.LOG)

type failure = {
  case_index : int;
  family : string;
  oracle : string;
  message : string;
  original_nodes : int;
  shrunk_nodes : int;
  case : Case.t;
  saved_path : string option;
}

type outcome = {
  cases : int;
  oracle_runs : int;
  failures : failure list;
}

let default_max_nodes = 64

let dtype_choices = [| Tensor.Dtype.I16; Tensor.Dtype.I16; Tensor.Dtype.I8; Tensor.Dtype.F32 |]

(* Capacity pressure relative to the total buffer footprint: the corners
   (nothing fits, everything fits) plus contested middles. *)
let fraction_choices = [| 0.; 0.25; 0.5; 0.75; 1.5 |]

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Runner: %s exists and is not a directory" dir)

let oracle_fails (o : Oracle.t) ~dtype ~capacity_fraction g =
  match o.Oracle.check (Oracle.make_ctx ~dtype ~capacity_fraction g) with
  | Ok () -> false
  | Error _ -> true
  | exception _ -> true

let oracle_message (o : Oracle.t) ~dtype ~capacity_fraction g =
  match o.Oracle.check (Oracle.make_ctx ~dtype ~capacity_fraction g) with
  | Ok () -> "(not reproducible on the shrunk graph)"
  | Error msg -> msg
  | exception e -> "raised " ^ Printexc.to_string e

let run ?(oracles = Oracle.all) ?save_dir ?(max_nodes = default_max_nodes)
    ?(progress = fun _ -> ()) ~seed ~count () =
  if count < 0 then invalid_arg "Runner.run: negative count";
  if max_nodes < 1 then invalid_arg "Runner.run: max_nodes < 1";
  Option.iter ensure_dir save_dir;
  let failures = ref [] in
  for index = 0 to count - 1 do
    progress index;
    let st = Random.State.make [| seed; index; 0x1c44 |] in
    let family = List.nth Gen.families (Random.State.int st (List.length Gen.families)) in
    let nodes = 1 + Random.State.int st max_nodes in
    let g = Gen.graph ~family st ~max_nodes:nodes in
    let dtype = dtype_choices.(Random.State.int st (Array.length dtype_choices)) in
    let capacity_fraction =
      fraction_choices.(Random.State.int st (Array.length fraction_choices))
    in
    let ctx = Oracle.make_ctx ~dtype ~capacity_fraction g in
    let failed = Oracle.check_all ~oracles ctx in
    List.iter
      (fun (oracle_name, message) ->
        Log.info (fun m ->
            m "case %d (%s, %d nodes): oracle %s failed: %s" index
              (Gen.family_name family) (G.node_count g) oracle_name message);
        let o = Option.get (Oracle.find oracle_name) in
        let shrunk =
          Shrink.shrink ~fails:(oracle_fails o ~dtype ~capacity_fraction) g
        in
        let message =
          if G.node_count shrunk = G.node_count g then message
          else oracle_message o ~dtype ~capacity_fraction shrunk
        in
        let case =
          { Case.seed;
            case_index = index;
            oracle = oracle_name;
            message;
            dtype;
            capacity_fraction;
            graph = shrunk }
        in
        let saved_path =
          Option.map
            (fun dir ->
              let path =
                Filename.concat dir
                  (Printf.sprintf "case-%d-%d-%s.json" seed index oracle_name)
              in
              Case.write_file ~path case;
              path)
            save_dir
        in
        failures :=
          { case_index = index;
            family = Gen.family_name family;
            oracle = oracle_name;
            message;
            original_nodes = G.node_count g;
            shrunk_nodes = G.node_count shrunk;
            case;
            saved_path }
          :: !failures)
      failed
  done;
  { cases = count;
    oracle_runs = count * List.length oracles;
    failures = List.rev !failures }

let replay ?(oracles = Oracle.all) ~path () =
  match Case.read_file ~path with
  | Error msg -> Error msg
  | Ok case ->
    let oracles =
      if List.exists (fun o -> o.Oracle.name = case.Case.oracle) oracles then oracles
      else
        match Oracle.find case.Case.oracle with
        | Some o -> o :: oracles
        | None -> oracles
    in
    let ctx =
      Oracle.make_ctx ~dtype:case.Case.dtype
        ~capacity_fraction:case.Case.capacity_fraction case.Case.graph
    in
    let failed = Oracle.check_all ~oracles ctx in
    let failures =
      List.map
        (fun (oracle, message) ->
          { case_index = case.Case.case_index;
            family = "replay";
            oracle;
            message;
            original_nodes = G.node_count case.Case.graph;
            shrunk_nodes = G.node_count case.Case.graph;
            case = { case with Case.oracle; message };
            saved_path = None })
        failed
    in
    Ok { cases = 1; oracle_runs = List.length oracles; failures }
