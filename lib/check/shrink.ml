module G = Dnn_graph.Graph
module Subgraph = Dnn_graph.Subgraph

let shrink ?(max_steps = 200) ~fails g =
  let steps = ref 0 in
  let try_candidate g' =
    if !steps >= max_steps then false
    else begin
      incr steps;
      fails g'
    end
  in
  (* Smallest failing prefix, by binary search: if the failure survives
     truncation at k it usually survives anywhere above k. *)
  let prefix_search g =
    let n = G.node_count g in
    let rec bisect lo hi best =
      (* Invariant: prefix [best] fails; lo..hi is the unexplored range. *)
      if lo > hi || !steps >= max_steps then best
      else
        let mid = (lo + hi) / 2 in
        let candidate = Subgraph.prefix g mid in
        if try_candidate candidate then bisect lo (mid - 1) mid
        else bisect (mid + 1) hi best
    in
    let k = bisect 1 (n - 1) n in
    if k < n then Subgraph.prefix g k else g
  in
  (* Then deletion of individual sinks (and rediscovered prefixes), to a
     fixpoint. *)
  let rec sink_pass g =
    let rec try_sinks = function
      | [] -> None
      | id :: rest -> (
        match Subgraph.drop_sink g id with
        | None -> try_sinks rest
        | Some g' -> if try_candidate g' then Some g' else try_sinks rest)
    in
    if !steps >= max_steps then g
    else
      match try_sinks (Subgraph.sinks g) with
      | Some g' -> sink_pass (prefix_search g')
      | None -> g
  in
  sink_pass (prefix_search g)
