(** Greedy counterexample minimization.

    Given a graph on which a property fails, repeatedly try the two
    validity-preserving reductions of {!Dnn_graph.Subgraph} — prefix
    truncation (binary-searched) and sink deletion — keeping any smaller
    graph on which the property still fails.  The result is locally
    minimal: no prefix cut or single sink removal preserves the
    failure. *)

val shrink :
  ?max_steps:int -> fails:(Dnn_graph.Graph.t -> bool) -> Dnn_graph.Graph.t ->
  Dnn_graph.Graph.t
(** [shrink ~fails g] assumes [fails g = true] and returns a graph (at
    worst [g] itself) on which [fails] still holds.  [fails] is expected
    to swallow its own exceptions; [max_steps] (default 200) bounds the
    number of candidate evaluations. *)
