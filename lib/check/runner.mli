(** The differential-verification harness.

    Drives {!Gen} through {!Oracle}: generate [count] random graphs from
    a seed, run every requested oracle on each, shrink any failure with
    {!Shrink} and persist it as a replayable {!Dnn_serial.Case}
    document.  Fully deterministic: case [i] of seed [s] derives its
    RNG from [(s, i)] alone, so a failure report pinpoints a
    reproducible input. *)

type failure = {
  case_index : int;
  family : string;          (** Generator family of the original graph. *)
  oracle : string;
  message : string;         (** Failure message on the shrunk graph. *)
  original_nodes : int;
  shrunk_nodes : int;
  case : Dnn_serial.Case.t; (** The persisted, replayable document. *)
  saved_path : string option; (** Where it was written, when it was. *)
}

type outcome = {
  cases : int;              (** Graphs generated and checked. *)
  oracle_runs : int;        (** Individual oracle evaluations. *)
  failures : failure list;  (** Empty when every invariant held. *)
}

val default_max_nodes : int

val run :
  ?oracles:Oracle.t list ->
  ?save_dir:string ->
  ?max_nodes:int ->
  ?progress:(int -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  outcome
(** Run the harness.  [max_nodes] (default {!default_max_nodes}) caps
    each graph; the per-case precision and capacity pressure are drawn
    from the case RNG.  With [save_dir], each (shrunk) failure is
    written there as [case-<seed>-<index>-<oracle>.json]; the directory
    is created when missing.  [progress] is called with the case index
    before each case. *)

val replay :
  ?oracles:Oracle.t list -> path:string -> unit -> (outcome, string) result
(** Re-run the oracles on a persisted failure case.  The case's own
    oracle is always included even when [oracles] narrows the set.
    Failures are reported without re-persisting. *)
