module G = Dnn_graph.Graph
module Values = Dnn_graph.Values
module Latency = Accel.Latency
module Metric = Lcmm.Metric
module Liveness = Lcmm.Liveness
module Interference = Lcmm.Interference
module Coloring = Lcmm.Coloring
module Prefetch = Lcmm.Prefetch
module Vbuffer = Lcmm.Vbuffer
module Dnnk = Lcmm.Dnnk
module Exact = Lcmm.Exact
module Splitting = Lcmm.Splitting
module Framework = Lcmm.Framework

(* Relative tolerance on latency comparisons: totals are O(1e-3) s and
   every quantity derives from the same float pipeline, so 1e-9 of the
   UMM total separates real violations from rounding. *)
let rel_eps = 1e-9

(* DNNK-vs-exact quality bounds, calibrated over 600 random cases
   (seeds 1,2,3,42,1234 x 120, graphs up to 64 nodes).  The heuristic's
   worst natural latency ratio over the proven optimum was 1.52, but a
   sabotaged compensation also stays near 1.5 — the ratio only works as
   a coarse backstop.  What separates a broken knapsack is the captured
   gain, (umm - dnnk) / (umm - optimum): naturally it never fell below
   0.21, while a mis-ranked DP (a negated compensation term) drops to
   0.0 on dozens of cases. *)
let dnnk_slack = 0.75
let dnnk_min_capture = 0.10

type ctx = {
  graph : G.t;
  dtype : Tensor.Dtype.t;
  capacity_fraction : float;
  config : Accel.Config.t;
  metric : Metric.t;
  profiles : Latency.profile array;
  items : Metric.item array;
  sizes : int array;
  intervals : Liveness.interval array;
  pdg : Prefetch.t option;
  vbufs : Vbuffer.t list;
  capacity_bytes : int;
  exact_node_budget : int;
  umm_total : float;
  (* The allocator runs are shared across oracles but only forced by the
     ones that need them. *)
  dnnk_table : Dnnk.result Lazy.t;
  dnnk_iterative : Dnnk.result Lazy.t;
  exact : Exact.result Lazy.t;
}

let is_weight_item = function
  | Metric.Weight_of _ | Metric.Weight_slice _ -> true
  | Metric.Feature_value _ -> false

let never_share a b = is_weight_item a <> is_weight_item b

let fresh_interference ctx =
  Interference.build ~never_share ~items:ctx.items ~intervals:ctx.intervals ()

let make_ctx ?(dtype = Tensor.Dtype.I16) ?(capacity_fraction = 0.5)
    ?(exact_node_budget = 30_000) g =
  let config = Accel.Config.make ~style:Accel.Config.Lcmm dtype in
  let profiles = Latency.profile_graph config g in
  let metric = Metric.build g profiles in
  let items =
    Array.of_list (Metric.eligible_items metric ~memory_bound_only:false)
  in
  let sizes = Array.map (Metric.item_size_bytes dtype metric) items in
  let weight_targets =
    Array.to_list items
    |> List.filter_map (function
         | Metric.Weight_of n | Metric.Weight_slice { node = n; _ } -> Some n
         | Metric.Feature_value _ -> None)
    |> List.sort_uniq compare
  in
  let pdg =
    if weight_targets = [] then None
    else
      Some
        (Prefetch.build metric ~targets:weight_targets
           ~node_latency:(fun id -> Latency.umm_node_latency profiles.(id)))
  in
  let prefetch_source n =
    match pdg with None -> None | Some p -> Prefetch.source_of p n
  in
  let intervals = Array.map (Liveness.item_interval g ~prefetch_source) items in
  let interference =
    Interference.build ~never_share ~items ~intervals ()
  in
  let vbufs = Coloring.color ~strategy:Coloring.Min_growth interference ~sizes in
  let total_bytes =
    List.fold_left
      (fun acc vb -> acc + (Dnnk.blocks_of_bytes vb.Vbuffer.size_bytes * Dnnk.block_bytes))
      0 vbufs
  in
  let capacity_bytes =
    max 0 (int_of_float (capacity_fraction *. float_of_int total_bytes))
  in
  let dnnk_table =
    lazy (Dnnk.allocate ~compensation:Dnnk.Table_approx metric ~capacity_bytes vbufs)
  in
  let dnnk_iterative =
    lazy (Dnnk.allocate ~compensation:Dnnk.Exact_iterative metric ~capacity_bytes vbufs)
  in
  let exact =
    lazy (Exact.solve ~node_budget:exact_node_budget metric ~capacity_bytes vbufs)
  in
  { graph = g;
    dtype;
    capacity_fraction;
    config;
    metric;
    profiles;
    items;
    sizes;
    intervals;
    pdg;
    vbufs;
    capacity_bytes;
    exact_node_budget;
    umm_total = Latency.umm_total profiles;
    dnnk_table;
    dnnk_iterative;
    exact }

let graph ctx = ctx.graph
let dtype ctx = ctx.dtype
let capacity_fraction ctx = ctx.capacity_fraction
let umm_total ctx = ctx.umm_total
let capacity_bytes ctx = ctx.capacity_bytes

let dnnk_result ctx = function
  | Dnnk.Table_approx -> Lazy.force ctx.dnnk_table
  | Dnnk.Exact_iterative -> Lazy.force ctx.dnnk_iterative

let exact_result ctx = Lazy.force ctx.exact

let eps ctx = rel_eps *. Float.max 1e-6 ctx.umm_total

let fail fmt = Format.kasprintf (fun msg -> Error msg) fmt

let ( let* ) = Result.bind

let iter_result f l =
  List.fold_left (fun acc x -> Result.bind acc (fun () -> f x)) (Ok ()) l

(* --- liveness: spans cover every use and nothing more --- *)

let check_liveness ctx =
  let g = ctx.graph in
  let n = G.node_count g in
  let* () =
    iter_result
      (fun node ->
        (* Transparent nodes (concat) are views, not materialized reads:
           a value feeding only a sink concat really does die at its
           producer.  Any downstream real consumer of the concat sees
           the value in its own source set, so covering value nodes
           covers every materialized use. *)
        if not (Values.is_value g node.G.id) then Ok ()
        else
          iter_result
            (fun v ->
              let iv = Liveness.feature_interval g v in
              if iv.Liveness.start_pos <> v then
                fail "value %d: lifespan starts at %d, not its producer" v
                  iv.Liveness.start_pos
              else if iv.Liveness.end_pos < node.G.id then
                fail "value %d dies at %d but node %d still reads it" v
                  iv.Liveness.end_pos node.G.id
              else Ok ())
            (Values.source_values g node.G.id))
      (G.nodes g)
  in
  (* The span must also end at a real use: an over-long lifespan silently
     blocks sharing. *)
  let* () =
    iter_result
      (fun v ->
        if not (Values.is_value g v) then Ok ()
        else
          let iv = Liveness.feature_interval g v in
          let last =
            List.fold_left max v (Values.consumers g v)
          in
          if iv.Liveness.end_pos <> last then
            fail "value %d: lifespan ends at %d, last real use is %d" v
              iv.Liveness.end_pos last
          else Ok ())
      (List.init n Fun.id)
  in
  (* Weight intervals span [prefetch source, consuming node]. *)
  iter_result
    (fun i ->
      match ctx.items.(i) with
      | Metric.Feature_value _ -> Ok ()
      | Metric.Weight_of node | Metric.Weight_slice { node; _ } ->
        let iv = ctx.intervals.(i) in
        let source =
          match ctx.pdg with
          | None -> node
          | Some p -> (
            match Prefetch.source_of p node with Some s -> min s node | None -> node)
        in
        if iv.Liveness.start_pos <> source || iv.Liveness.end_pos <> node then
          fail "weight of node %d: interval [%d,%d], expected [%d,%d]" node
            iv.Liveness.start_pos iv.Liveness.end_pos source node
        else Ok ())
    (List.init (Array.length ctx.items) Fun.id)

(* --- interference: symmetric, irreflexive, justified by overlap --- *)

let check_interference ctx =
  let inter = fresh_interference ctx in
  let n = Interference.item_count inter in
  let result = ref (Ok ()) in
  for i = 0 to n - 1 do
    if !result = Ok () && Interference.conflict inter i i then
      result := fail "item %d conflicts with itself" i;
    for j = i + 1 to n - 1 do
      if !result = Ok () then begin
        let ij = Interference.conflict inter i j in
        let ji = Interference.conflict inter j i in
        if ij <> ji then result := fail "conflict(%d,%d)=%b but conflict(%d,%d)=%b" i j ij j i ji
        else
          let expected =
            Liveness.overlaps ctx.intervals.(i) ctx.intervals.(j)
            || never_share ctx.items.(i) ctx.items.(j)
          in
          if ij <> expected then
            result :=
              fail "conflict(%d,%d)=%b but lifespans %a/%a (never_share %b)" i j ij
                Liveness.pp ctx.intervals.(i) Liveness.pp ctx.intervals.(j)
                (never_share ctx.items.(i) ctx.items.(j))
      end
    done
  done;
  !result

(* --- coloring: buffers never merge conflicting items --- *)

let check_coloring ctx =
  let index_of = Hashtbl.create 64 in
  Array.iteri (fun i item -> Hashtbl.replace index_of item i) ctx.items;
  iter_result
    (fun strategy ->
      let inter = fresh_interference ctx in
      let vbufs = Coloring.color ~strategy inter ~sizes:ctx.sizes in
      let seen = Hashtbl.create 64 in
      let* () =
        iter_result
          (fun vb ->
            let members =
              List.map
                (fun item ->
                  match Hashtbl.find_opt index_of item with
                  | Some i -> i
                  | None -> -1)
                vb.Vbuffer.members
            in
            let* () =
              if List.mem (-1) members then
                fail "buffer %d contains an item outside the item set"
                  vb.Vbuffer.vbuf_id
              else Ok ()
            in
            List.iter (fun i -> Hashtbl.replace seen i ()) members;
            let* () =
              let max_size =
                List.fold_left (fun acc i -> max acc ctx.sizes.(i)) 0 members
              in
              if vb.Vbuffer.size_bytes <> max_size then
                fail "buffer %d: size %d, largest member %d" vb.Vbuffer.vbuf_id
                  vb.Vbuffer.size_bytes max_size
              else Ok ()
            in
            iter_result
              (fun i ->
                iter_result
                  (fun j ->
                    if i <> j && Interference.conflict inter i j then
                      fail
                        "buffer %d merges interfering items %a and %a \
                         (lifespans %a, %a)"
                        vb.Vbuffer.vbuf_id Metric.pp_item ctx.items.(i)
                        Metric.pp_item ctx.items.(j) Liveness.pp
                        ctx.intervals.(i) Liveness.pp ctx.intervals.(j)
                    else Ok ())
                  members)
              members)
          vbufs
      in
      if Hashtbl.length seen <> Array.length ctx.items then
        fail "coloring dropped %d of %d items"
          (Array.length ctx.items - Hashtbl.length seen)
          (Array.length ctx.items)
      else Ok ())
    [ Coloring.Min_growth; Coloring.First_fit ]

(* --- prefetch: every PDG edge actually hides its load --- *)

let check_prefetch ctx =
  match ctx.pdg with
  | None -> Ok ()
  | Some pdg ->
    let latency id = Latency.umm_node_latency ctx.profiles.(id) in
    let elapsed from_ until = (* sum over [from_, until) *)
      let s = ref 0. in
      for id = from_ to until - 1 do
        s := !s +. latency id
      done;
      !s
    in
    iter_result
      (fun e ->
        let { Prefetch.source; target; load_seconds; stall_seconds } = e in
        let* () =
          if source < 0 || source > target then
            fail "w%d: prefetch source %d outside [0,%d]" target source target
          else Ok ()
        in
        let* () =
          let expected = ctx.profiles.(target).Latency.wt_load_once in
          if Float.abs (load_seconds -. expected) > eps ctx then
            fail "w%d: edge load %.6e but profile says %.6e" target load_seconds
              expected
          else Ok ()
        in
        if stall_seconds > 0. then
          (* Even starting at node 0 is too late; the residual must be
             exactly what the elapsed time misses. *)
          if source <> 0 then
            fail "w%d: stall %.3e with source %d <> 0" target stall_seconds source
          else
            let gap = load_seconds -. elapsed 0 target in
            if Float.abs (stall_seconds -. gap) > eps ctx then
              fail "w%d: stall %.6e but load-elapsed gap is %.6e" target
                stall_seconds gap
            else Ok ()
        else
          let hide = elapsed source target in
          if hide +. eps ctx < load_seconds then
            fail "w%d: prefetch from %d hides %.6e s of a %.6e s load" target
              source hide load_seconds
          else if source > 0 && elapsed (source + 1) target >= load_seconds +. eps ctx
          then
            fail "w%d: source %d is conservative; starting at %d still hides the load"
              target source (source + 1)
          else Ok ())
      (Prefetch.edges pdg)

(* --- DNNK: capacity discipline and self-consistent accounting --- *)

let check_dnnk_result ctx name (r : Dnnk.result) =
  let capacity_blocks = ctx.capacity_bytes / Dnnk.block_bytes in
  let* () =
    if r.Dnnk.capacity_blocks <> capacity_blocks then
      fail "%s: reports capacity %d blocks, expected %d" name r.Dnnk.capacity_blocks
        capacity_blocks
    else Ok ()
  in
  let* () =
    if r.Dnnk.used_blocks > r.Dnnk.capacity_blocks then
      fail "%s: uses %d of %d blocks" name r.Dnnk.used_blocks r.Dnnk.capacity_blocks
    else Ok ()
  in
  let* () =
    let sum =
      List.fold_left
        (fun acc vb -> acc + Dnnk.blocks_of_bytes vb.Vbuffer.size_bytes)
        0 r.Dnnk.chosen
    in
    if sum <> r.Dnnk.used_blocks then
      fail "%s: used_blocks %d but chosen buffers total %d" name r.Dnnk.used_blocks sum
    else Ok ()
  in
  let* () =
    let ids l = List.map (fun vb -> vb.Vbuffer.vbuf_id) l |> List.sort compare in
    let all = ids ctx.vbufs in
    let got = ids (r.Dnnk.chosen @ r.Dnnk.spilled) in
    if all <> got then fail "%s: chosen+spilled is not a partition of the buffers" name
    else Ok ()
  in
  let* () =
    let members =
      List.concat_map (fun vb -> vb.Vbuffer.members) r.Dnnk.chosen
      |> Metric.Item_set.of_list
    in
    if not (Metric.Item_set.equal members r.Dnnk.on_chip) then
      fail "%s: on_chip set disagrees with chosen buffers' members" name
    else Ok ()
  in
  let* () =
    let exact = Metric.total_latency ctx.metric ~on_chip:r.Dnnk.on_chip in
    if Float.abs (exact -. r.Dnnk.predicted_latency) > eps ctx then
      fail "%s: predicted %.9e but Eq. 1 evaluates to %.9e" name
        r.Dnnk.predicted_latency exact
    else Ok ()
  in
  if r.Dnnk.predicted_latency > ctx.umm_total +. eps ctx then
    fail "%s: predicted %.9e beats nothing — UMM is %.9e" name
      r.Dnnk.predicted_latency ctx.umm_total
  else Ok ()

let check_dnnk ctx =
  let* () = check_dnnk_result ctx "table" (Lazy.force ctx.dnnk_table) in
  let* () = check_dnnk_result ctx "iterative" (Lazy.force ctx.dnnk_iterative) in
  (* When everything fits, pinning everything dominates any subset. *)
  let total_blocks =
    List.fold_left
      (fun acc vb -> acc + Dnnk.blocks_of_bytes vb.Vbuffer.size_bytes)
      0 ctx.vbufs
  in
  let capacity_blocks = ctx.capacity_bytes / Dnnk.block_bytes in
  if total_blocks <= capacity_blocks then
    iter_result
      (fun (name, r) ->
        if (Lazy.force r).Dnnk.spilled <> [] then
          fail "%s: spills buffers although everything fits (%d <= %d blocks)"
            name total_blocks capacity_blocks
        else Ok ())
      [ ("table", ctx.dnnk_table); ("iterative", ctx.dnnk_iterative) ]
  else Ok ()

(* --- DNNK vs the exact solver --- *)

let check_dnnk_vs_exact ctx =
  let exact = Lazy.force ctx.exact in
  let table = Lazy.force ctx.dnnk_table in
  let iterative = Lazy.force ctx.dnnk_iterative in
  let* () =
    let recomputed = Metric.total_latency ctx.metric ~on_chip:exact.Exact.on_chip in
    if Float.abs (recomputed -. exact.Exact.latency) > eps ctx then
      fail "exact: latency %.9e but Eq. 1 evaluates to %.9e" exact.Exact.latency
        recomputed
    else Ok ()
  in
  let* () =
    let blocks =
      List.fold_left
        (fun acc vb -> acc + Dnnk.blocks_of_bytes vb.Vbuffer.size_bytes)
        0 exact.Exact.chosen
    in
    if blocks > ctx.capacity_bytes / Dnnk.block_bytes then
      fail "exact: allocation uses %d blocks of %d" blocks
        (ctx.capacity_bytes / Dnnk.block_bytes)
    else Ok ()
  in
  (* The incumbent is seeded with DNNK, so even a truncated search never
     loses to the table heuristic. *)
  let* () =
    if exact.Exact.latency > table.Dnnk.predicted_latency +. eps ctx then
      fail "exact %.9e is worse than its own DNNK seed %.9e" exact.Exact.latency
        table.Dnnk.predicted_latency
    else Ok ()
  in
  if not exact.Exact.proven_optimal then Ok ()
  else
    iter_result
      (fun (name, r) ->
        let opt = exact.Exact.latency in
        let d = r.Dnnk.predicted_latency in
        let* () =
          if d +. eps ctx < opt then
            fail "%s DNNK %.9e beats the proven optimum %.9e" name d opt
          else Ok ()
        in
        let* () =
          if d > (opt *. (1. +. dnnk_slack)) +. eps ctx then
            fail
              "%s DNNK %.9e exceeds the proven optimum %.9e by more than \
               %.0f%% (capacity %d blocks)"
              name d opt (100. *. dnnk_slack)
              (ctx.capacity_bytes / Dnnk.block_bytes)
          else Ok ()
        in
        let available = ctx.umm_total -. opt in
        (* The capture floor only binds when a greedy start could capture
           anything at all: when every single buffer has zero marginal
           gain on its own (the benefit exists only jointly, through
           Eq. 1's max structure), the heuristic is legitimately blind
           and only the exact search finds the move. *)
        let capacity_blocks = ctx.capacity_bytes / Dnnk.block_bytes in
        let best_single =
          List.fold_left
            (fun acc vb ->
              if Dnnk.blocks_of_bytes vb.Vbuffer.size_bytes > capacity_blocks
              then acc
              else
                Float.max acc
                  (Metric.marginal_gain_many ctx.metric
                     ~on_chip:Metric.Item_set.empty vb.Vbuffer.members))
            0. ctx.vbufs
        in
        if
          available > eps ctx
          && best_single > eps ctx
          && ctx.umm_total -. d < (dnnk_min_capture *. available) -. eps ctx
        then
          fail
            "%s DNNK %.9e captures only %.1f%% of the provable gain (umm \
             %.9e, optimum %.9e; the floor is %.0f%%)"
            name d
            (100. *. (ctx.umm_total -. d) /. available)
            ctx.umm_total opt (100. *. dnnk_min_capture)
        else Ok ())
      [ ("table", table); ("iterative", iterative) ]

(* --- incremental DNNK: a warm workspace never changes the answer --- *)

(* The DP workspace memoizes per-buffer compensation rows across calls,
   invalidating a cached row only when its earlier-owner dependencies
   changed.  That reuse must be invisible: after any single-buffer
   perturbation of the input (splitting one buffer in two, or dropping
   one), allocating with a workspace warmed on the *original* buffer
   list must reproduce the cold run on the perturbed list decision for
   decision and bit for bit in the objective. *)
let check_dnnk_incremental ctx =
  let metric = ctx.metric and capacity_bytes = ctx.capacity_bytes in
  let size_of = Hashtbl.create 64 in
  Array.iteri (fun i item -> Hashtbl.replace size_of item ctx.sizes.(i)) ctx.items;
  let sized vb =
    List.map (fun it -> (it, Hashtbl.find size_of it)) vb.Vbuffer.members
  in
  let next_id =
    1 + List.fold_left (fun acc vb -> max acc vb.Vbuffer.vbuf_id) 0 ctx.vbufs
  in
  (* Single-buffer perturbations: split the first few multi-member
     buffers (largest member peeled into its own buffer, the remainder
     keeps the id), and drop the first few buffers outright. *)
  let splits =
    List.filter (fun vb -> Vbuffer.member_count vb > 1) ctx.vbufs
    |> List.filteri (fun i _ -> i < 3)
    |> List.map (fun vb ->
           let label = Printf.sprintf "split vbuf %d" vb.Vbuffer.vbuf_id in
           let perturbed =
             List.concat_map
               (fun v ->
                 if v.Vbuffer.vbuf_id <> vb.Vbuffer.vbuf_id then [ v ]
                 else
                   match sized v with
                   | head :: (_ :: _ as rest) ->
                     [ Vbuffer.make ~vbuf_id:next_id ~sized_members:[ head ];
                       Vbuffer.make ~vbuf_id:v.Vbuffer.vbuf_id
                         ~sized_members:rest ]
                   | _ -> [ v ])
               ctx.vbufs
           in
           (label, perturbed))
  in
  let drops =
    List.filteri (fun i _ -> i < 3) ctx.vbufs
    |> List.map (fun vb ->
           ( Printf.sprintf "drop vbuf %d" vb.Vbuffer.vbuf_id,
             List.filter
               (fun v -> v.Vbuffer.vbuf_id <> vb.Vbuffer.vbuf_id)
               ctx.vbufs ))
  in
  let warm = Dnnk.workspace () in
  (* Warm the workspace on the unperturbed input once; every perturbed
     run below then reuses whatever rows survive invalidation. *)
  let _ = Dnnk.allocate ~workspace:warm metric ~capacity_bytes ctx.vbufs in
  let ids l = List.map (fun vb -> vb.Vbuffer.vbuf_id) l |> List.sort compare in
  iter_result
    (fun (label, vbufs) ->
      if vbufs = [] then Ok ()
      else
        let cold = Dnnk.allocate metric ~capacity_bytes vbufs in
        let hot = Dnnk.allocate ~workspace:warm metric ~capacity_bytes vbufs in
        let* () =
          if ids hot.Dnnk.chosen <> ids cold.Dnnk.chosen then
            fail "%s: warm workspace chose different buffers" label
          else Ok ()
        in
        let* () =
          if ids hot.Dnnk.spilled <> ids cold.Dnnk.spilled then
            fail "%s: warm workspace spilled different buffers" label
          else Ok ()
        in
        let* () =
          if hot.Dnnk.used_blocks <> cold.Dnnk.used_blocks then
            fail "%s: warm used %d blocks, cold used %d" label
              hot.Dnnk.used_blocks cold.Dnnk.used_blocks
          else Ok ()
        in
        (* Bit-exact, not epsilon-close: memoized rows must reproduce the
           cold fold's float arithmetic term for term. *)
        if hot.Dnnk.predicted_latency <> cold.Dnnk.predicted_latency then
          fail "%s: warm objective %.17g, cold %.17g" label
            hot.Dnnk.predicted_latency cold.Dnnk.predicted_latency
        else Ok ())
    (splits @ drops)

(* --- splitting: repairs only, never regressions --- *)

let check_splitting ctx =
  let inter = fresh_interference ctx in
  let vbufs = Coloring.color ~strategy:Coloring.Min_growth inter ~sizes:ctx.sizes in
  let initial = Dnnk.allocate ctx.metric ~capacity_bytes:ctx.capacity_bytes vbufs in
  let outcome =
    Splitting.run ctx.metric inter ~sizes:ctx.sizes
      ~capacity_bytes:ctx.capacity_bytes initial
  in
  let final = outcome.Splitting.result in
  let* () =
    if final.Dnnk.predicted_latency > initial.Dnnk.predicted_latency +. eps ctx then
      fail "splitting regressed latency: %.9e -> %.9e (%d iterations)"
        initial.Dnnk.predicted_latency final.Dnnk.predicted_latency
        outcome.Splitting.iterations
    else Ok ()
  in
  let* () =
    if final.Dnnk.used_blocks > final.Dnnk.capacity_blocks then
      fail "splitting result uses %d of %d blocks" final.Dnnk.used_blocks
        final.Dnnk.capacity_blocks
    else Ok ()
  in
  let recomputed = Metric.total_latency ctx.metric ~on_chip:final.Dnnk.on_chip in
  if Float.abs (recomputed -. final.Dnnk.predicted_latency) > eps ctx then
    fail "splitting result predicts %.9e, Eq. 1 evaluates to %.9e"
      final.Dnnk.predicted_latency recomputed
  else Ok ()

(* --- simulator vs the analytical model --- *)

let check_simulator ctx =
  let metric = ctx.metric in
  (* UMM: with nothing pinned the weight channel never backs up, so the
     discrete-event replay must land exactly on the analytical total. *)
  let umm_run = Sim.Engine.simulate_umm metric in
  let* () =
    if Float.abs (umm_run.Sim.Engine.total -. ctx.umm_total) > eps ctx then
      fail "UMM simulation %.9e disagrees with analytical %.9e"
        umm_run.Sim.Engine.total ctx.umm_total
    else Ok ()
  in
  let alloc = Lazy.force ctx.dnnk_table in
  let on_chip = alloc.Dnnk.on_chip in
  let analytic = Metric.total_latency metric ~on_chip in
  let run = Sim.Engine.simulate ?prefetch:ctx.pdg metric ~on_chip in
  (* The serialized weight channel can only add time to Eq. 1's
     per-interface optimism, never remove it... *)
  let* () =
    if run.Sim.Engine.total +. eps ctx < analytic then
      fail "simulated %.9e beats the analytical lower bound %.9e"
        run.Sim.Engine.total analytic
    else Ok ()
  in
  (* ...and the excess is bounded by the observable contention: stall
     time waiting on arrivals plus the channel's total busy time. *)
  let* () =
    let bound =
      analytic +. run.Sim.Engine.prefetch_wait +. run.Sim.Engine.wt_channel_busy
      +. eps ctx
    in
    if run.Sim.Engine.total > bound then
      fail "simulated %.9e exceeds analytical %.9e + wait %.9e + channel busy %.9e"
        run.Sim.Engine.total analytic run.Sim.Engine.prefetch_wait
        run.Sim.Engine.wt_channel_busy
    else Ok ()
  in
  (* Resident weights (steady-state batching) can only help. *)
  let* () =
    let resident =
      Sim.Engine.simulate ~weights_resident:true ?prefetch:ctx.pdg metric ~on_chip
    in
    if resident.Sim.Engine.total > run.Sim.Engine.total +. eps ctx then
      fail "weights_resident run %.9e is slower than the cold run %.9e"
        resident.Sim.Engine.total run.Sim.Engine.total
    else Ok ()
  in
  (* Pinning more features is monotone: with no weights involved the
     replay equals Eq. 1, which is a per-node max over fewer terms. *)
  let features =
    Array.to_list ctx.items
    |> List.filter (fun it -> not (is_weight_item it))
  in
  let rec prefixes acc set = function
    | [] -> List.rev acc
    | it :: rest ->
      let set = Metric.Item_set.add it set in
      prefixes (set :: acc) set rest
  in
  let sets = prefixes [] Metric.Item_set.empty features in
  let totals =
    List.map (fun set -> (Sim.Engine.simulate metric ~on_chip:set).Sim.Engine.total) sets
  in
  let rec monotone prev = function
    | [] -> Ok ()
    | t :: rest ->
      if t > prev +. eps ctx then
        fail "pinning one more feature value raised the simulated total %.9e -> %.9e"
          prev t
      else monotone t rest
  in
  let* () = monotone umm_run.Sim.Engine.total totals in
  (* Batch accounting is pure arithmetic over the two runs. *)
  let b = Sim.Engine.simulate_batch ?prefetch:ctx.pdg ~images:4 metric ~on_chip in
  let expected = b.Sim.Engine.first_image +. (3. *. b.Sim.Engine.steady_image) in
  if Float.abs (b.Sim.Engine.batch_total -. expected) > eps ctx then
    fail "batch total %.9e, expected first + 3*steady = %.9e"
      b.Sim.Engine.batch_total expected
  else Ok ()

(* --- the full framework plan: end-to-end safety --- *)

let check_plan ctx =
  let options =
    { Framework.default_options with
      Framework.capacity_override = Some ctx.capacity_bytes }
  in
  let plan = Framework.plan ~options ctx.config ctx.graph in
  let* () =
    if plan.Framework.predicted_latency > ctx.umm_total +. eps ctx then
      fail "plan predicts %.9e, worse than its UMM baseline %.9e"
        plan.Framework.predicted_latency ctx.umm_total
    else Ok ()
  in
  let* () =
    let alloc = plan.Framework.allocation in
    if plan.Framework.tensor_sram_bytes <> alloc.Dnnk.used_blocks * Dnnk.block_bytes
    then
      fail "plan grants %d tensor SRAM bytes but the allocation uses %d blocks"
        plan.Framework.tensor_sram_bytes alloc.Dnnk.used_blocks
    else Ok ()
  in
  let* () =
    let alloc = plan.Framework.allocation in
    if alloc.Dnnk.used_blocks > alloc.Dnnk.capacity_blocks then
      fail "plan exceeds capacity: %d of %d blocks" alloc.Dnnk.used_blocks
        alloc.Dnnk.capacity_blocks
    else Ok ()
  in
  let* () =
    if plan.Framework.pol < 0. || plan.Framework.pol > 1. then
      fail "POL %.3f outside [0,1]" plan.Framework.pol
    else Ok ()
  in
  (* The plan's own simulation must respect the analytical safety net:
     total within the bounded gap of the prediction. *)
  let metric = plan.Framework.metric in
  let on_chip = plan.Framework.allocation.Dnnk.on_chip in
  let run = Sim.Engine.simulate ?prefetch:plan.Framework.prefetch metric ~on_chip in
  let analytic = Metric.total_latency metric ~on_chip in
  if run.Sim.Engine.total +. eps ctx < analytic then
    fail "plan simulation %.9e beats its analytical bound %.9e" run.Sim.Engine.total
      analytic
  else Ok ()

(* --- degraded mode: eviction under SRAM bank loss --- *)

(* The runtime's bank-loss path shrinks a finished allocation with
   [Dnnk.evict_to_capacity] and re-solves at the surviving capacity.
   Whatever the fault timing, the algebra must hold: the shrunken
   allocation fits, evicts only buffers it actually held (chosen =
   survivors + evicted, disjoint), stays Eq. 1-consistent, and only
   gets slower as more capacity is lost. *)
let check_degraded ctx =
  let base = Lazy.force ctx.dnnk_table in
  let ids vbufs =
    List.sort_uniq compare (List.map (fun vb -> vb.Vbuffer.vbuf_id) vbufs)
  in
  let base_ids = ids base.Dnnk.chosen in
  let base_bytes = base.Dnnk.capacity_blocks * Dnnk.block_bytes in
  let rec sweep prev_latency = function
    | [] -> Ok ()
    | frac :: rest ->
      let surviving = int_of_float (frac *. float_of_int base_bytes) in
      let post, evicted =
        Dnnk.evict_to_capacity ctx.metric ~capacity_bytes:surviving base
      in
      let* () =
        if post.Dnnk.used_blocks > post.Dnnk.capacity_blocks then
          fail "degraded at %.0f%%: uses %d of %d blocks" (100. *. frac)
            post.Dnnk.used_blocks post.Dnnk.capacity_blocks
        else Ok ()
      in
      let survivor_ids = ids post.Dnnk.chosen in
      let evicted_ids = ids evicted in
      let* () =
        let reunion = List.sort_uniq compare (survivor_ids @ evicted_ids) in
        if
          reunion <> base_ids
          || List.exists (fun id -> List.mem id evicted_ids) survivor_ids
        then
          fail "degraded at %.0f%%: survivors + evicted do not partition the \
                chosen set"
            (100. *. frac)
        else Ok ()
      in
      let* () =
        let recomputed =
          Metric.total_latency ctx.metric ~on_chip:post.Dnnk.on_chip
        in
        if Float.abs (recomputed -. post.Dnnk.predicted_latency) > eps ctx then
          fail "degraded at %.0f%%: predicts %.9e, Eq. 1 evaluates to %.9e"
            (100. *. frac) post.Dnnk.predicted_latency recomputed
        else Ok ()
      in
      let* () =
        if post.Dnnk.predicted_latency +. eps ctx < prev_latency then
          fail "losing capacity sped the plan up: %.9e -> %.9e at %.0f%%"
            prev_latency post.Dnnk.predicted_latency (100. *. frac)
        else Ok ()
      in
      sweep post.Dnnk.predicted_latency rest
  in
  (* Decreasing surviving capacity; latency must be non-decreasing. *)
  let* () = sweep base.Dnnk.predicted_latency [ 0.75; 0.5; 0.25; 0. ] in
  (* The re-solve half of degraded mode: a fresh partitioned plan at the
     surviving capacity also respects it. *)
  let surviving = base_bytes / 2 in
  let p =
    Framework.plan_partitioned ~options:Framework.default_options
      ~capacity_bytes:surviving ctx.config ctx.graph
  in
  let alloc = p.Framework.allocation in
  if alloc.Dnnk.used_blocks > alloc.Dnnk.capacity_blocks then
    fail "replanned at %d bytes uses %d of %d blocks" surviving
      alloc.Dnnk.used_blocks alloc.Dnnk.capacity_blocks
  else Ok ()

(* --- fusion: segment legality, stream conservation, off-inertness --- *)

module Fusion = Lcmm_fusion.Fusion
module Segmentation = Lcmm_fusion.Segmentation

(* Both fusion oracles replay the pass over the same end-to-end plan the
   [plan] oracle builds, at the ctx capacity. *)
let fused_pass ctx =
  let options =
    { Framework.default_options with
      Framework.capacity_override = Some ctx.capacity_bytes;
      fusion = true }
  in
  let base = Framework.plan ~options ctx.config ctx.graph in
  (base, Fusion.apply base)

let check_segment_legal ctx =
  let base, fz = fused_pass ctx in
  let headroom =
    ctx.capacity_bytes - base.Framework.tensor_sram_bytes - fz.Fusion.fifo_bytes
  in
  let* () =
    (* Disjoint, increasing, non-trivial segments. *)
    let rec disjoint prev = function
      | [] -> Ok ()
      | (s : Segmentation.segment) :: rest ->
        if s.Segmentation.first > s.Segmentation.last then
          fail "segment [%d..%d] is empty" s.Segmentation.first
            s.Segmentation.last
        else if s.Segmentation.first <= prev then
          fail "segment [%d..%d] overlaps or disorders its predecessor"
            s.Segmentation.first s.Segmentation.last
        else disjoint s.Segmentation.last rest
    in
    disjoint (-1) fz.Fusion.segments
  in
  let* () =
    iter_result
      (fun (s : Segmentation.segment) ->
        let* () =
          if s.Segmentation.internal = [] then
            fail "segment [%d..%d] fuses nothing" s.Segmentation.first
              s.Segmentation.last
          else Ok ()
        in
        let* () =
          if s.Segmentation.slab_bytes > headroom then
            fail "segment [%d..%d] slabs %d bytes exceed the %d-byte headroom"
              s.Segmentation.first s.Segmentation.last s.Segmentation.slab_bytes
              headroom
          else Ok ()
        in
        (* Liveness containment, from the graph itself: an internal value
           is produced inside the segment (before its last node) and
           every consumer stays inside — no shortcut, escape or graph
           output may cross the segment boundary. *)
        iter_result
          (fun v ->
            let* () =
              if
                not
                  (Values.is_value ctx.graph v
                  && v >= s.Segmentation.first
                  && v < s.Segmentation.last)
              then
                fail "segment [%d..%d] claims non-member value %d as internal"
                  s.Segmentation.first s.Segmentation.last v
              else Ok ()
            in
            match Values.consumers ctx.graph v with
            | [] ->
              fail "segment [%d..%d] fused graph output %d"
                s.Segmentation.first s.Segmentation.last v
            | consumers ->
              iter_result
                (fun c ->
                  if c > s.Segmentation.last then
                    fail
                      "value %d escapes segment [%d..%d] to consumer %d"
                      v s.Segmentation.first s.Segmentation.last c
                  else Ok ())
                consumers)
          s.Segmentation.internal)
      fz.Fusion.segments
  in
  let* () =
    if fz.Fusion.peak_sram_bytes > ctx.capacity_bytes then
      fail "fused peak SRAM %d exceeds the %d-byte capacity"
        fz.Fusion.peak_sram_bytes ctx.capacity_bytes
    else Ok ()
  in
  let* () =
    if fz.Fusion.predicted_latency > base.Framework.predicted_latency +. eps ctx
    then
      fail "fusion slowed the plan: %.9e -> %.9e"
        base.Framework.predicted_latency fz.Fusion.predicted_latency
    else Ok ()
  in
  (* Fusion off must be inert and byte-identical: same fingerprint as the
     fusion-enabled base (the flag changes nothing until the post-pass),
     and the pass returns the base plan itself, not a copy. *)
  let options_off =
    { Framework.default_options with
      Framework.capacity_override = Some ctx.capacity_bytes }
  in
  let off = Framework.plan ~options:options_off ctx.config ctx.graph in
  let* () =
    if Framework.fingerprint off <> Framework.fingerprint base then
      fail "the fusion flag perturbed the base plan"
    else Ok ()
  in
  let fz_off = Fusion.apply off in
  if Fusion.active fz_off || not (Fusion.effective_plan fz_off == off) then
    fail "fusion-off pass is not inert"
  else Ok ()

let check_stream_conserve ctx =
  let base, fz = fused_pass ctx in
  let profiles = base.Framework.metric.Metric.profiles in
  let eff = fz.Fusion.metric.Metric.profiles in
  let* () =
    iter_result
      (fun n ->
        let p = profiles.(n) in
        let q = eff.(n) in
        (* One pass through the FIFO: streamed DDR bytes equal the weight
           tensor's size, recomputed from the graph shape. *)
        let expected =
          match G.weight_shape ctx.graph n with
          | Some shape -> Tensor.Shape.size_bytes ctx.dtype shape
          | None -> -1
        in
        let* () =
          if expected < 0 then fail "streamed node %d has no weights" n
          else Ok ()
        in
        let* () =
          if q.Latency.wt_stream_bytes <> expected then
            fail "streamed node %d moves %d DDR bytes, weights are %d bytes"
              n q.Latency.wt_stream_bytes expected
          else Ok ()
        in
        let* () =
          if q.Latency.wt_stream_bytes <> p.Latency.wt_once_bytes then
            fail "streamed node %d: %d stream bytes, one load is %d"
              n q.Latency.wt_stream_bytes p.Latency.wt_once_bytes
          else Ok ()
        in
        (* Streaming must pay the one-shot load time, never the tiled
           re-read it replaces. *)
        if q.Latency.wt_term > p.Latency.wt_term +. eps ctx then
          fail "streaming slowed node %d's weight channel: %.9e -> %.9e" n
            p.Latency.wt_term q.Latency.wt_term
        else Ok ())
      fz.Fusion.streamed
  in
  (* The pass's traffic claim is reproducible from its own metric and
     residency — DDR bytes are conserved end to end. *)
  let recomputed =
    Lcmm.Traffic.of_allocation fz.Fusion.metric ~on_chip:fz.Fusion.on_chip
  in
  if recomputed <> fz.Fusion.traffic then
    fail "fused traffic (%d,%d,%d) bytes, recomputation gives (%d,%d,%d)"
      fz.Fusion.traffic.Lcmm.Traffic.if_bytes
      fz.Fusion.traffic.Lcmm.Traffic.wt_bytes
      fz.Fusion.traffic.Lcmm.Traffic.of_bytes recomputed.Lcmm.Traffic.if_bytes
      recomputed.Lcmm.Traffic.wt_bytes recomputed.Lcmm.Traffic.of_bytes
  else Ok ()

(* --- the DRAM schedule: conservation and the portfolio guarantee --- *)

(* Two replicas of the generated case contend for two DDR channels under
   priority arbitration — the smallest run where scheduling decisions
   matter.  Whatever order a scheduler picks, it must conserve bytes
   (the same transfers move the same bytes over the same channels),
   never start a transfer before its PDG release, and the optimizer's
   portfolio selection must never lose to either baseline. *)
let check_schedule_conserve ctx =
  let module REngine = Lcmm_runtime.Engine in
  let module RScheduler = Lcmm_runtime.Scheduler in
  let module RArbiter = Lcmm_runtime.Arbiter in
  let module ROptimizer = Lcmm_runtime.Optimizer in
  let alloc = Lazy.force ctx.dnnk_table in
  let on_chip = alloc.Dnnk.on_chip in
  let metric = ctx.metric in
  let iso = Sim.Engine.simulate ?prefetch:ctx.pdg metric ~on_chip in
  let slack =
    match ctx.pdg with
    | None -> fun _ -> 0.
    | Some pdg -> (
        fun target ->
          match Prefetch.source_of pdg target with
          | Some s ->
            iso.Sim.Engine.timings.(target).Sim.Engine.start
            -. iso.Sim.Engine.timings.(s).Sim.Engine.start
          | None -> 0.)
  in
  let input label priority =
    { REngine.label; metric; on_chip; prefetch = ctx.pdg; arrival = 0.;
      priority; slack; replan = None }
  in
  let inputs = [| input "a" 0; input "b" 1 |] in
  let channels = 2 in
  let a = Lcmm.Channels.assign ~channels metric ~on_chip in
  let assign ~owner:_ ~target kind =
    let cls =
      match kind with
      | REngine.Prefetch_load | REngine.Demand_load -> Lcmm.Channels.Wt_load
      | REngine.Weight_stream_x -> Lcmm.Channels.Wt_stream
    in
    Lcmm.Channels.channel_for a cls target
  in
  let arbitration = RArbiter.Priority in
  let greedy =
    REngine.run ~arbitration ~scheduler:RScheduler.Greedy ~channels ~assign
      inputs
  in
  let edf =
    REngine.run ~arbitration ~scheduler:RScheduler.Edf ~channels ~assign
      inputs
  in
  let opt =
    ROptimizer.search ~arbitration ~channels ~assign ~isos:[| iso; iso |]
      inputs
  in
  let channel_bytes (r : REngine.result) =
    let sums = Array.make channels 0. in
    List.iter
      (fun (x : REngine.xfer_log) ->
        sums.(x.REngine.log_channel) <- sums.(x.REngine.log_channel)
                                        +. x.REngine.log_bytes)
      r.REngine.transfers;
    sums
  in
  let ref_bytes = channel_bytes greedy in
  let* () =
    iter_result
      (fun (name, r) ->
        let b = channel_bytes r in
        let rec chk c =
          if c >= channels then Ok ()
          else if Float.abs (b.(c) -. ref_bytes.(c)) > 1e-6 then
            fail
              "%s moved %.17g bytes on channel %d where greedy moved %.17g \
               — schedule changed the traffic, not just its order"
              name b.(c) c ref_bytes.(c)
          else chk (c + 1)
        in
        chk 0)
      [ ("edf", edf); ("optimized", opt.ROptimizer.result) ]
  in
  let* () =
    iter_result
      (fun (name, (r : REngine.result)) ->
        iter_result
          (fun (x : REngine.xfer_log) ->
            let* () =
              if
                x.REngine.log_started >= 0.
                && x.REngine.log_started +. eps ctx < x.REngine.log_released
              then
                fail "%s started a transfer at %.9e before its release %.9e"
                  name x.REngine.log_started x.REngine.log_released
              else Ok ()
            in
            if
              x.REngine.log_finished >= 0.
              && x.REngine.log_finished +. eps ctx < x.REngine.log_started
            then
              fail "%s finished a transfer at %.9e before it started at %.9e"
                name x.REngine.log_finished x.REngine.log_started
            else Ok ())
          r.REngine.transfers)
      [ ("greedy", greedy); ("edf", edf); ("optimized", opt.ROptimizer.result) ]
  in
  let baseline = Float.min greedy.REngine.makespan edf.REngine.makespan in
  if opt.ROptimizer.result.REngine.makespan > baseline +. eps ctx then
    fail
      "optimized makespan %.9e loses to min(greedy %.9e, edf %.9e) — the \
       portfolio guarantee is broken"
      opt.ROptimizer.result.REngine.makespan greedy.REngine.makespan
      edf.REngine.makespan
  else Ok ()

let optimality_gaps ctx =
  let exact = Lazy.force ctx.exact in
  if (not exact.Exact.proven_optimal) || exact.Exact.latency <= 0. then []
  else
    List.map
      (fun (name, r) ->
        (name, ((Lazy.force r).Dnnk.predicted_latency /. exact.Exact.latency) -. 1.))
      [ ("table", ctx.dnnk_table); ("iterative", ctx.dnnk_iterative) ]

type t = {
  name : string;
  doc : string;
  check : ctx -> (unit, string) result;
}

let all =
  [ { name = "liveness";
      doc = "lifespans start at the producer and cover every use";
      check = check_liveness };
    { name = "interference";
      doc = "conflicts are symmetric, irreflexive and justified by overlap";
      check = check_interference };
    { name = "coloring";
      doc = "no buffer merges interfering items; sizes are max-of-members";
      check = check_coloring };
    { name = "prefetch";
      doc = "every PDG edge hides its load, or reports the exact residual stall";
      check = check_prefetch };
    { name = "dnnk";
      doc = "DNNK respects capacity and its accounting is Eq. 1-consistent";
      check = check_dnnk };
    { name = "dnnk-vs-exact";
      doc = "DNNK never beats, and stays near, the branch-and-bound optimum";
      check = check_dnnk_vs_exact };
    { name = "dnnk-incremental";
      doc = "a warm DP workspace reproduces the cold run bit for bit";
      check = check_dnnk_incremental };
    { name = "splitting";
      doc = "buffer splitting never increases the predicted latency";
      check = check_splitting };
    { name = "simulator";
      doc = "the discrete-event replay brackets the analytical model";
      check = check_simulator };
    { name = "plan";
      doc = "the end-to-end plan never loses to UMM and accounts its SRAM";
      check = check_plan };
    { name = "degraded";
      doc = "bank-loss eviction fits, partitions cleanly and is monotone";
      check = check_degraded };
    { name = "segment-legal";
      doc = "fused segments fit the SRAM grant, leak no value, and off is inert";
      check = check_segment_legal };
    { name = "stream-conserve";
      doc = "a streamed weight moves exactly its bytes once per inference";
      check = check_stream_conserve };
    { name = "schedule-conserve";
      doc =
        "DRAM schedules conserve per-channel bytes, respect releases, and \
         the optimizer never loses to greedy or edf";
      check = check_schedule_conserve } ]

let names = List.map (fun o -> o.name) all

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun o -> o.name = lower) all

let check_all ?(oracles = all) ctx =
  List.filter_map
    (fun o ->
      match o.check ctx with
      | Ok () -> None
      | Error msg -> Some (o.name, msg)
      | exception e -> Some (o.name, "raised " ^ Printexc.to_string e))
    oracles
