type t = {
  device_name : string;
  total : Resource.t;
  ddr_banks : int;
  ddr_bank_gbs : float;
  max_freq_mhz : float;
}

let vu9p =
  { device_name = "vu9p";
    total = Resource.make ~dsp:6840 ~bram36:2160 ~uram:960 ~luts:1_182_240 ();
    ddr_banks = 4;
    ddr_bank_gbs = 19.2;
    max_freq_mhz = 200. }

let zu9eg =
  { device_name = "zu9eg";
    total = Resource.make ~dsp:2520 ~bram36:912 ~uram:0 ~luts:274_080 ();
    ddr_banks = 1;
    ddr_bank_gbs = 19.2;
    max_freq_mhz = 250. }

let u250 =
  { device_name = "u250";
    total = Resource.make ~dsp:12288 ~bram36:2688 ~uram:1280 ~luts:1_728_000 ();
    ddr_banks = 4;
    ddr_bank_gbs = 19.2;
    max_freq_mhz = 300. }

let all = [ vu9p; zu9eg; u250 ]

let find name =
  let needle = String.lowercase_ascii name in
  List.find_opt (fun d -> d.device_name = needle) all

let aggregate_bandwidth d = float_of_int d.ddr_banks *. d.ddr_bank_gbs *. 1e9

let interface_bandwidth d = aggregate_bandwidth d /. 3.

let ddr_channels d = max 1 d.ddr_banks

let sram_bytes d = Resource.sram_bytes d.total

let pp ppf d =
  Format.fprintf ppf "%s %a %dxDDR@%.1fGB/s" d.device_name Resource.pp d.total
    d.ddr_banks d.ddr_bank_gbs
