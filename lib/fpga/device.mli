(** FPGA device descriptors.

    The paper evaluates on the Xilinx VU9P (VCU1525/AWS-F1 class part):
    6840 DSP48E2, 2160 BRAM36, 960 URAM, four DDR4 banks at a theoretical
    19.2 GB/s each.  The accelerator streams input features, weights and
    output features concurrently, so each of the three interfaces is
    provisioned one third of the aggregate bandwidth — the paper's
    25.6 GB/s (= 19.2 x 4 / 3) per interface. *)

type t = {
  device_name : string;
  total : Resource.t;             (** Full device resource inventory. *)
  ddr_banks : int;
  ddr_bank_gbs : float;           (** Theoretical GB/s of one bank. *)
  max_freq_mhz : float;           (** Upper bound any design can close. *)
}

val vu9p : t
(** Xilinx Virtex UltraScale+ VU9P. *)

val zu9eg : t
(** Xilinx Zynq UltraScale+ ZU9EG (ZCU102) — a small embedded part, used
    by tests to exercise tight-capacity behavior. *)

val u250 : t
(** Xilinx Alveo U250 — the datacenter successor of the VU9P class, with
    more DSP/URAM and the same four-bank DDR4 shell. *)

val all : t list

val find : string -> t option
(** Case-insensitive lookup by name. *)

val aggregate_bandwidth : t -> float
(** Total DDR bandwidth in bytes/s. *)

val interface_bandwidth : t -> float
(** Bytes/s available to each of the three data interfaces (if/wt/of):
    one third of {!aggregate_bandwidth}. *)

val ddr_channels : t -> int
(** Number of independently schedulable DDR channels (the device's DDR
    bank count, at least 1).  The runtime's per-channel bandwidth model
    stripes {!aggregate_bandwidth} equally across them; planning with 1
    channel recovers the aggregate fluid-bus model exactly. *)

val sram_bytes : t -> int
(** Total on-chip memory capacity in bytes (BRAM + URAM). *)

val pp : Format.formatter -> t -> unit
