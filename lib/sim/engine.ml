module Metric = Lcmm.Metric
module Latency = Accel.Latency

type binding = Node_model.binding =
  | Compute
  | Input_stream
  | Weight_stream
  | Output_stream

type node_timing = {
  node_id : int;
  start : float;
  finish : float;
  wait : float;
  binding : binding;
}

type run = {
  timings : node_timing array;
  total : float;
  prefetch_wait : float;
  wt_channel_busy : float;
}

let simulate ?(weights_resident = false) ?prefetch metric ~on_chip =
  let profiles = metric.Metric.profiles in
  let n = Array.length profiles in
  let pinned_fraction id = Node_model.pinned_fraction metric ~on_chip id in
  let pinned_weight id = Node_model.pinned_weight metric ~on_chip id in
  (* Prefetch jobs released when their source node starts: target ->
     ready time, filled in as the schedule advances. *)
  let released =
    Node_model.released_edges ~weights_resident ?prefetch metric ~on_chip n
  in
  let weight_ready = Array.make n 0. in
  (* Pinned weights with no PDG edge must load before their node; model
     as released at time 0. *)
  let has_edge = Node_model.has_edge released n in
  let timings = Array.make n { node_id = 0; start = 0.; finish = 0.; wait = 0.; binding = Compute } in
  let wt_free = ref 0. in
  let wt_busy = ref 0. in
  let clock = ref 0. in
  let prefetch_wait = ref 0. in
  for id = 0 to n - 1 do
    let p = profiles.(id) in
    (* Release prefetch jobs whose source is this node; they queue on the
       weight channel in target order. *)
    List.iter
      (fun e ->
        (* Only the pinned share of a sliced tensor is prefetched. *)
        let load =
          e.Lcmm.Prefetch.load_seconds *. pinned_fraction e.Lcmm.Prefetch.target
        in
        let job_start = max !wt_free !clock in
        let job_end = job_start +. load in
        wt_free := job_end;
        wt_busy := !wt_busy +. load;
        weight_ready.(e.Lcmm.Prefetch.target) <- job_end)
      released.(id);
    (* A pinned weight without a prefetch edge loads on demand. *)
    (match Node_model.demand_load ~weights_resident metric ~on_chip ~has_edge p with
    | None -> ()
    | Some load ->
      let job_start = max !wt_free !clock in
      let job_end = job_start +. load in
      wt_free := job_end;
      wt_busy := !wt_busy +. load;
      weight_ready.(id) <- max weight_ready.(id) job_end);
    let ready = if pinned_weight id then weight_ready.(id) else 0. in
    let start = max !clock ready in
    let wait = start -. !clock in
    prefetch_wait := !prefetch_wait +. wait;
    let if_time = Node_model.if_time ~on_chip p in
    let of_time = Node_model.of_time ~on_chip p in
    (* The streamed share of the weights occupies the (possibly
       prefetch-delayed) weight channel for its streaming time. *)
    let wt_component =
      let streamed = p.Latency.wt_term *. (1. -. pinned_fraction id) in
      if streamed <= 0. then 0.
      else begin
        let s = max start !wt_free in
        let finish_wt = s +. streamed in
        wt_free := finish_wt;
        wt_busy := !wt_busy +. streamed;
        finish_wt -. start
      end
    in
    let binding, duration =
      Node_model.duration_and_binding ~latc:p.Latency.latc ~if_time
        ~wt_component ~of_time
    in
    let finish = start +. duration in
    timings.(id) <- { node_id = id; start; finish; wait; binding };
    clock := finish
  done;
  { timings;
    total = !clock;
    prefetch_wait = !prefetch_wait;
    wt_channel_busy = !wt_busy }

let simulate_umm metric = simulate metric ~on_chip:Metric.Item_set.empty

type batch = {
  first_image : float;
  steady_image : float;
  batch_total : float;
  images_per_second : float;
}

let simulate_batch ?prefetch ~images metric ~on_chip =
  if images < 1 then invalid_arg "Engine.simulate_batch: images < 1";
  let first = (simulate ?prefetch metric ~on_chip).total in
  let steady = (simulate ~weights_resident:true ?prefetch metric ~on_chip).total in
  let batch_total = first +. (float_of_int (images - 1) *. steady) in
  { first_image = first;
    steady_image = steady;
    batch_total;
    images_per_second = float_of_int images /. batch_total }

let bound_fraction run binding =
  if run.total <= 0. then 0.
  else
    Array.fold_left
      (fun acc t ->
        if t.binding = binding then acc +. (t.finish -. t.start) else acc)
      0. run.timings
    /. run.total
