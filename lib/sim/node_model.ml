module Metric = Lcmm.Metric
module Latency = Accel.Latency

type binding = Compute | Input_stream | Weight_stream | Output_stream

let pinned_fraction metric ~on_chip id =
  let k = metric.Metric.slices.(id) in
  if k = 1 then
    if Metric.Item_set.mem (Metric.Weight_of id) on_chip then 1. else 0.
  else begin
    let count = ref 0 in
    for index = 0 to k - 1 do
      if Metric.Item_set.mem (Metric.Weight_slice { node = id; index; of_k = k }) on_chip
      then incr count
    done;
    float_of_int !count /. float_of_int k
  end

let pinned_weight metric ~on_chip id = pinned_fraction metric ~on_chip id > 0.

let released_edges ?(weights_resident = false) ?prefetch metric ~on_chip n =
  let released = Array.make n [] in
  (match prefetch with
  | None -> ()
  | Some _ when weights_resident -> ()
  | Some pdg ->
    List.iter
      (fun e ->
        if pinned_weight metric ~on_chip e.Lcmm.Prefetch.target then
          released.(e.Lcmm.Prefetch.source) <-
            e :: released.(e.Lcmm.Prefetch.source))
      (Lcmm.Prefetch.edges pdg));
  (* Restore release order (edges were prepended). *)
  Array.map List.rev released

let has_edge released n =
  let flags = Array.make n false in
  Array.iter
    (List.iter (fun e -> flags.(e.Lcmm.Prefetch.target) <- true))
    released;
  flags

let demand_load ?(weights_resident = false) metric ~on_chip ~has_edge
    (p : Latency.profile) =
  let id = p.Latency.node_id in
  if
    pinned_weight metric ~on_chip id && (not weights_resident)
    && (not has_edge.(id))
    && p.Latency.wt_load_once > 0.
  then Some (p.Latency.wt_load_once *. pinned_fraction metric ~on_chip id)
  else None

let if_time ~on_chip (p : Latency.profile) =
  List.fold_left
    (fun acc (v, t) ->
      if Metric.Item_set.mem (Metric.Feature_value v) on_chip then acc
      else acc +. t)
    0. p.Latency.if_terms

let of_time ~on_chip (p : Latency.profile) =
  if Metric.Item_set.mem (Metric.Feature_value p.Latency.node_id) on_chip then 0.
  else p.Latency.of_term

let duration_and_binding ~latc ~if_time ~wt_component ~of_time =
  let components =
    [ (Compute, latc); (Input_stream, if_time);
      (Weight_stream, wt_component); (Output_stream, of_time) ]
  in
  List.fold_left
    (fun (bb, bd) (b, d) -> if d > bd then (b, d) else (bb, bd))
    (Compute, latc) components

let if_stream_bytes ~on_chip (p : Latency.profile) =
  List.fold_left
    (fun acc (v, b) ->
      if Metric.Item_set.mem (Metric.Feature_value v) on_chip then acc
      else acc + b)
    0 p.Latency.if_stream_bytes

let of_stream_bytes ~on_chip (p : Latency.profile) =
  if Metric.Item_set.mem (Metric.Feature_value p.Latency.node_id) on_chip then 0
  else p.Latency.of_stream_bytes
