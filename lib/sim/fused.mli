(** Execution semantics of fused segments and streamed weights.

    The fusion planner ({!Lcmm_fusion.Fusion}) decides *which* layers
    fuse into segments and *which* spilled weights stream through the
    on-chip FIFO; this module owns what those decisions mean to the
    latency/traffic/simulation models.  Both decisions are expressed as
    a rewritten metric over rewritten per-node profiles, so every
    existing evaluator — {!Lcmm.Metric.total_latency},
    {!Lcmm.Traffic.of_allocation}, {!Engine.simulate} and the
    multi-tenant runtime engine — works unchanged on the result:

    - a **streamed** weight stays off-chip but its steady-state DDR
      occupancy drops to one full load per inference: the profile's
      [wt_term] becomes [wt_load_once] and [wt_stream_bytes] becomes
      [wt_once_bytes] (no tile reloads — the FIFO holds the working set
      while the spatial tiles consume it);
    - a **fused** node's compute time grows by the segment's halo
      recompute factor ([latc_scale]), and its segment-internal feature
      transfers disappear by pinning those values in the allocation the
      evaluators are asked about (a pinned feature already contributes
      zero streaming time and zero DDR bytes) — segment-internal
      transfers are SRAM traffic, which the models price at zero. *)

val effective_metric :
  ?latc_scale:(int -> float) ->
  ?streamed:(int -> bool) ->
  Lcmm.Metric.t ->
  Lcmm.Metric.t
(** [effective_metric ?latc_scale ?streamed metric] rebuilds the metric
    over rewritten profiles: node [n]'s compute seconds are multiplied
    by [latc_scale n] (default 1.0), and when [streamed n] (default
    false) its weight-streaming term and bytes are replaced by the
    load-once values.  The graph and the weight-slicing layout are
    preserved, so items, affected-node tables and memo-key bit layouts
    match the source metric position for position. *)
