(** Binary min-heap of (time, tag) wake-up candidates for the
    discrete-event engines.

    Entries are pushed whenever a tag's state changes and are *not*
    removed when they go stale; the consumer validates the minimum
    against current state and drops invalid heads (lazy invalidation).
    This keeps both operations O(log n) with no decrease-key. *)

type t

val create : unit -> t

val length : t -> int

val clear : t -> unit

val push : t -> time:float -> int -> unit

val peek : t -> (float * int) option
(** Earliest entry, or [None] when empty. *)

val drop_min : t -> unit
(** Remove the earliest entry; raises [Invalid_argument] when empty. *)
