(* Binary min-heap of (time, tag) pairs over parallel arrays.  The
   discrete-event engines push candidate wake-up times as state changes
   and pop the earliest; stale entries are the caller's to detect (lazy
   invalidation), so pushes never need a decrease-key. *)

type t = {
  mutable times : float array;
  mutable tags : int array;
  mutable size : int;
}

let create () = { times = Array.make 64 0.; tags = Array.make 64 0; size = 0 }

let length t = t.size

let clear t = t.size <- 0

let grow t =
  let cap = 2 * Array.length t.times in
  let times = Array.make cap 0. in
  let tags = Array.make cap 0 in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.tags 0 tags 0 t.size;
  t.times <- times;
  t.tags <- tags

let swap t i j =
  let ti = t.times.(i) and gi = t.tags.(i) in
  t.times.(i) <- t.times.(j);
  t.tags.(i) <- t.tags.(j);
  t.times.(j) <- ti;
  t.tags.(j) <- gi

let push t ~time tag =
  if t.size = Array.length t.times then grow t;
  t.times.(t.size) <- time;
  t.tags.(t.size) <- tag;
  let i = ref t.size in
  t.size <- t.size + 1;
  while !i > 0 && t.times.((!i - 1) / 2) > t.times.(!i) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let peek t = if t.size = 0 then None else Some (t.times.(0), t.tags.(0))

let drop_min t =
  if t.size = 0 then invalid_arg "Event_queue.drop_min: empty";
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.times.(0) <- t.times.(t.size);
    t.tags.(0) <- t.tags.(t.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && t.times.(l) < t.times.(!smallest) then smallest := l;
      if r < t.size && t.times.(r) < t.times.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap t !i !smallest;
        i := !smallest
      end
    done
  end
