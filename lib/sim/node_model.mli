(** Shared per-node execution arithmetic.

    {!Engine.simulate} (one plan, exclusive DDR bandwidth) and the
    board-level runtime co-simulator ([lib/runtime], many tenants
    contending for bandwidth) must agree *exactly* when a single tenant
    runs alone — not to a tolerance, but bit for bit, because the
    runtime's single-tenant report is defined as "what [lcmm sim] would
    have said".  The only way to guarantee that across refactors is for
    both engines to call the same functions with the same operation
    order, which is what this module is: the per-node latency-component
    and prefetch-release logic of Eq. 1, factored out of the isolated
    engine. *)

type binding = Compute | Input_stream | Weight_stream | Output_stream

val pinned_fraction :
  Lcmm.Metric.t -> on_chip:Lcmm.Metric.Item_set.t -> int -> float
(** Fraction of node [id]'s weight tensor resident on chip (slices pin
    independently; an unsliced tensor is 0 or 1). *)

val pinned_weight :
  Lcmm.Metric.t -> on_chip:Lcmm.Metric.Item_set.t -> int -> bool

val released_edges :
  ?weights_resident:bool -> ?prefetch:Lcmm.Prefetch.t ->
  Lcmm.Metric.t -> on_chip:Lcmm.Metric.Item_set.t -> int ->
  Lcmm.Prefetch.edge list array
(** Per source node, the prefetch edges (targets pinned on chip) whose
    jobs are released when that node starts, in release order.  Empty
    everywhere with [weights_resident] or without a PDG. *)

val has_edge : Lcmm.Prefetch.edge list array -> int -> bool array
(** [has_edge released n]: whether each node is the target of some
    released prefetch edge. *)

val demand_load :
  ?weights_resident:bool -> Lcmm.Metric.t ->
  on_chip:Lcmm.Metric.Item_set.t -> has_edge:bool array ->
  Accel.Latency.profile -> float option
(** Seconds of the on-demand load a pinned weight without a prefetch
    edge pays before its node starts; [None] when no such load is due. *)

val if_time : on_chip:Lcmm.Metric.Item_set.t -> Accel.Latency.profile -> float
(** Input-streaming seconds of the node's off-chip feature inputs. *)

val of_time : on_chip:Lcmm.Metric.Item_set.t -> Accel.Latency.profile -> float
(** Output write-back seconds (0 when the output value is pinned). *)

val duration_and_binding :
  latc:float -> if_time:float -> wt_component:float -> of_time:float ->
  binding * float
(** Eq. 1 for one node: the max component and which one bound it (ties
    keep the earlier component, [Compute] first). *)

val if_stream_bytes : on_chip:Lcmm.Metric.Item_set.t -> Accel.Latency.profile -> int
(** DDR bytes the node's off-chip inputs stream (incl. tile reloads). *)

val of_stream_bytes : on_chip:Lcmm.Metric.Item_set.t -> Accel.Latency.profile -> int
(** DDR bytes the node's off-chip output writes back. *)
