(** Discrete-event execution simulator.

    Validates the analytical allocation model by actually scheduling the
    network: nodes run sequentially on the compute array; each node's
    streaming runs concurrently with its compute through double buffering
    (so a node occupies [max] of its component times, as Eq. 1 assumes);
    and — what the analytical model only approximates — the *weight DDR
    interface is a real serialized channel* shared by streamed weight
    tiles and background prefetches, so an over-optimistic PDG shows up
    here as stall time instead of disappearing into an assumption.

    A pinned weight's prefetch job is released when its PDG source node
    starts (or at time 0 without a PDG) and the consuming node cannot
    start before its weights arrive. *)

type binding = Node_model.binding =
  | Compute
  | Input_stream
  | Weight_stream
  | Output_stream
      (** Which Eq. 1 component a node's duration was bound by. *)

type node_timing = {
  node_id : int;
  start : float;
  finish : float;
  wait : float;    (** Time spent stalled before start (prefetch). *)
  binding : binding;
}

type run = {
  timings : node_timing array;
  total : float;            (** Finish time of the last node. *)
  prefetch_wait : float;    (** Total stall attributable to prefetch. *)
  wt_channel_busy : float;  (** Busy seconds of the weight interface. *)
}

val simulate :
  ?weights_resident:bool -> ?prefetch:Lcmm.Prefetch.t -> Lcmm.Metric.t ->
  on_chip:Lcmm.Metric.Item_set.t -> run
(** Simulate one inference under the given allocation.  With
    [weights_resident] (default false), pinned weights are assumed
    already on chip — the steady state of batched inference, where
    weight buffers persist across images and the prefetch traffic
    amortizes away. *)

val simulate_umm : Lcmm.Metric.t -> run
(** Everything streamed — the UMM reference run. *)

type batch = {
  first_image : float;     (** Latency of image 1 (cold weight buffers). *)
  steady_image : float;    (** Latency of each later image. *)
  batch_total : float;     (** [first + (n-1) * steady]. *)
  images_per_second : float;
}

val simulate_batch :
  ?prefetch:Lcmm.Prefetch.t -> images:int -> Lcmm.Metric.t ->
  on_chip:Lcmm.Metric.Item_set.t -> batch
(** Steady-state batch throughput: the first image pays the weight
    prefetching, later images find every pinned weight resident.  Raises
    [Invalid_argument] when [images < 1]. *)

val bound_fraction : run -> binding -> float
(** Fraction of total time spent on nodes bound by the given component. *)
