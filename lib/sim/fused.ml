module Metric = Lcmm.Metric
module Latency = Accel.Latency

let effective_metric ?(latc_scale = fun _ -> 1.0) ?(streamed = fun _ -> false)
    (metric : Metric.t) =
  let profiles =
    Array.map
      (fun (p : Latency.profile) ->
        let scale = latc_scale p.Latency.node_id in
        let p =
          if scale = 1.0 then p
          else { p with Latency.latc = p.Latency.latc *. scale }
        in
        if streamed p.Latency.node_id then
          { p with
            Latency.wt_term = p.Latency.wt_load_once;
            wt_stream_bytes = p.Latency.wt_once_bytes }
        else p)
      metric.Metric.profiles
  in
  (* Same graph, same slicing layout: the rebuilt metric has the same
     item universe and table shapes, only the latency/byte entries
     behind fused or streamed nodes differ. *)
  Metric.build
    ~weight_slices:(fun id -> metric.Metric.slices.(id))
    metric.Metric.graph profiles
