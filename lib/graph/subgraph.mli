(** Induced subgraphs, for counterexample shrinking.

    A failing property over a random graph is only useful once it is
    small.  Because node ids are a topological order, two cheap
    restrictions always yield valid graphs: keeping a prefix of the id
    range (every predecessor of a kept node is kept), and deleting a
    *sink* (a node no other node reads).  The shrinker in [lib/check]
    composes these two moves greedily. *)

val prefix : Graph.t -> int -> Graph.t
(** [prefix g k] is the graph induced by nodes [0 .. k-1].  Raises
    [Invalid_argument] when [k < 1] or [k > node_count g]. *)

val drop_sink : Graph.t -> int -> Graph.t option
(** [drop_sink g id] removes node [id] and renumbers the ids above it,
    provided [id] is a sink (no successors) and not the last remaining
    node.  [None] when the node cannot be dropped. *)

val sinks : Graph.t -> int list
(** Ids of nodes with no successors, in decreasing order (the order the
    shrinker tries them in). *)
