let prefix g k =
  let n = Graph.node_count g in
  if k < 1 || k > n then
    invalid_arg (Printf.sprintf "Subgraph.prefix: %d outside [1,%d]" k n);
  if k = n then g
  else
    Graph.nodes g
    |> List.filter (fun node -> node.Graph.id < k)
    |> Graph.create_exn

let sinks g =
  Graph.nodes g
  |> List.filter_map (fun node ->
         if Graph.succs g node.Graph.id = [] then Some node.Graph.id else None)
  |> List.rev

let drop_sink g id =
  let n = Graph.node_count g in
  if id < 0 || id >= n || n <= 1 || Graph.succs g id <> [] then None
  else
    let renumber i = if i > id then i - 1 else i in
    let nodes =
      Graph.nodes g
      |> List.filter (fun node -> node.Graph.id <> id)
      |> List.map (fun node ->
             { node with
               Graph.id = renumber node.Graph.id;
               preds = List.map renumber node.Graph.preds })
    in
    match Graph.create nodes with Ok g' -> Some g' | Error _ -> None
