type v = int

type t = {
  mutable rev_nodes : Graph.node list;
  mutable shapes : Tensor.Shape.t array;  (* indexed by value id; doubling *)
  mutable next_id : int;
  mutable block : string option;
}

let create () = { rev_nodes = []; shapes = [||]; next_id = 0; block = None }

let id (v : v) = v

let shape b (v : v) =
  if v < 0 || v >= b.next_id then invalid_arg "Builder.shape: unknown value";
  b.shapes.(v)

(* Shape queries must stay O(1): generators and shape-compatibility
   scans call [shape] per candidate value, so a list here turns graph
   construction quadratic at benchmark scale. *)
let push_shape b s =
  let cap = Array.length b.shapes in
  if b.next_id >= cap then begin
    let bigger = Array.make (max 16 (2 * cap)) s in
    Array.blit b.shapes 0 bigger 0 cap;
    b.shapes <- bigger
  end;
  b.shapes.(b.next_id) <- s

let add_node b ~name ~op ~preds : v =
  let inputs = List.map (fun p -> shape b p) preds in
  match Op.output_shape op inputs with
  | Error msg ->
    invalid_arg (Printf.sprintf "Builder: layer %s (%s): %s" name (Op.name op) msg)
  | Ok out ->
    let node =
      { Graph.id = b.next_id; node_name = name; op; preds; block = b.block }
    in
    b.rev_nodes <- node :: b.rev_nodes;
    push_shape b out;
    b.next_id <- b.next_id + 1;
    node.Graph.id

let default_name b base = function
  | Some name -> name
  | None -> Printf.sprintf "%s_%d" base b.next_id

let input b ?name ~channels ~height ~width () =
  let name = default_name b "input" name in
  add_node b ~name ~op:(Op.Input { channels; height; width }) ~preds:[]

let conv b ?name ?(stride = (1, 1)) ?(padding = Op.Same) ?(groups = 1)
    ~out_channels ~kernel src =
  let name = default_name b "conv" name in
  let op = Op.Conv { out_channels; kernel; stride; padding; groups } in
  add_node b ~name ~op ~preds:[ src ]

let pool b ?name ?(kind = Op.Max) ?stride ?(padding = Op.Valid) ~kernel src =
  let name = default_name b "pool" name in
  let pool_stride = match stride with Some s -> s | None -> kernel in
  let op =
    Op.Pool
      { pool_kind = kind; pool_kernel = kernel; pool_stride;
        pool_padding = padding; global = false }
  in
  add_node b ~name ~op ~preds:[ src ]

let global_pool b ?name ?(kind = Op.Avg) src =
  let name = default_name b "gpool" name in
  let op =
    Op.Pool
      { pool_kind = kind; pool_kernel = (1, 1); pool_stride = (1, 1);
        pool_padding = Op.Valid; global = true }
  in
  add_node b ~name ~op ~preds:[ src ]

let add b ?name srcs =
  let name = default_name b "add" name in
  add_node b ~name ~op:Op.Eltwise_add ~preds:srcs

let concat b ?name srcs =
  let name = default_name b "concat" name in
  add_node b ~name ~op:Op.Concat ~preds:srcs

let upsample b ?name ~factor src =
  let name = default_name b "upsample" name in
  add_node b ~name ~op:(Op.Upsample { factor }) ~preds:[ src ]

let dense b ?name ~out_features src =
  let name = default_name b "dense" name in
  add_node b ~name ~op:(Op.Dense { out_features }) ~preds:[ src ]

let with_block b tag f =
  let saved = b.block in
  b.block <- Some tag;
  let finally () = b.block <- saved in
  match f () with
  | result ->
    finally ();
    result
  | exception e ->
    finally ();
    raise e

let finish b = Graph.create_exn (List.rev b.rev_nodes)
