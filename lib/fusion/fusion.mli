(** Fused-layer segments and weight streaming as planner dimensions.

    A post-pass over a {!Lcmm.Framework.plan} that adds the two DDR
    levers the base planner lacks (DESIGN §14):

    - **weight streaming** (AutoWS-style): a spilled whole weight whose
      tiled streaming re-reads the tensor ([wt_term > wt_load_once])
      instead flows once per inference through a bounded on-chip FIFO.
      The FIFO footprint is charged to the plan once, globally; the
      steady-state DDR rate — one full load — is what the latency
      model, traffic accounting and simulator then see.
    - **fused-layer segments** (LoopTree-style): {!Segmentation.search}
      proposes legal fuse groups whose intermediate features live as
      SRAM stripes and never touch DDR, priced exactly against the
      halo-recompute overhead.

    The pass is gated on [Framework.options.fusion]: with the flag off
    {!apply} returns an inert wrapper whose metric is *physically* the
    base plan's and {!effective_plan} returns the base plan itself, so
    fusion-off planning is byte-identical to a build without this
    library.  Decisions are deterministic at any [?pool] size. *)

type options = {
  max_segment : int;  (** Longest fuse group considered (default 8). *)
  fifo_blocks : int;
      (** Streaming FIFO footprint in {!Lcmm.Dnnk.block_bytes} blocks,
          charged once when any weight streams (default 4 = 128 KiB). *)
  streaming : bool;   (** Consider the stream residency (default on). *)
  fusing : bool;      (** Run the segmentation search (default on). *)
}

val default_options : options

type t = {
  base : Lcmm.Framework.plan;
  options : options;
  segments : Segmentation.segment list;
  streamed : int list;  (** Node ids whose spilled weight streams. *)
  fifo_bytes : int;     (** 0 when nothing streams. *)
  metric : Lcmm.Metric.t;
      (** Effective metric ({!Sim.Fused.effective_metric}); physically
          the base metric when the pass decided nothing. *)
  on_chip : Lcmm.Metric.Item_set.t;
      (** Base allocation plus every segment-internal value. *)
  predicted_latency : float;  (** Fused Eq. 1 total + prefetch stalls. *)
  traffic : Lcmm.Traffic.t;       (** DDR bytes under fusion. *)
  base_traffic : Lcmm.Traffic.t;  (** DDR bytes of the base plan. *)
  peak_sram_bytes : int;
      (** Base tensor grant + FIFO + widest segment's slabs. *)
  segmentation_us : float;
}

val apply : ?options:options -> ?pool:Lcmm.Pool.t -> Lcmm.Framework.plan -> t
(** Run the pass.  Inert unless [base.options.fusion]; never returns a
    plan slower than the base (a safety net drops every decision if the
    exact re-evaluation ever disagreed with the search's pricing).
    Records its wall clock as [segmentation_us] in
    {!Lcmm.Framework.pass_times_total}. *)

val active : t -> bool
(** True when the pass decided anything (a segment or a stream). *)

val effective_plan : t -> Lcmm.Framework.plan
(** The plan every existing evaluator can consume: effective metric,
    extended allocation, fused latency, peak SRAM, and pass times
    including [segmentation_us].  Physically the base plan when
    {!active} is false — fusion-off output stays byte-identical. *)

val fingerprint : t -> string
(** {!Lcmm.Framework.fingerprint} of the base plan extended with every
    fusion decision (segments with members/scales/slabs, streamed ids,
    FIFO bytes, fused latency and traffic at full float precision) —
    the parallel-determinism property digests this. *)

val ddr_bytes_saved : t -> int
(** Base minus fused total DDR bytes per inference; >= 0. *)
