module G = Dnn_graph.Graph
module Values = Dnn_graph.Values
module Op = Dnn_graph.Op
module Shape = Tensor.Shape
module Metric = Lcmm.Metric
module Latency = Accel.Latency
module Pool = Lcmm.Pool

type segment = {
  first : int;
  last : int;
  internal : int list;
  scales : (int * float) list;
  slab_bytes : int;
  benefit_seconds : float;
  ddr_bytes_saved : int;
}

type result = {
  segments : segment list;
  total_benefit : float;
  evaluated : int;
}

let empty = { segments = []; total_benefit = 0.; evaluated = 0 }

(* Order-preserving parallel map over start positions, mirroring
   Framework's internal [par_map]: contiguous chunks fill disjoint,
   position-addressed slots, so the candidate lists — and everything
   downstream — are byte-identical at any domain count. *)
let par_init pool n f =
  match pool with
  | None -> Array.init n f
  | Some pool ->
    if n = 0 then [||]
    else begin
      let pieces = min n (4 * Pool.size pool) in
      let per = (n + pieces - 1) / pieces in
      let ranges =
        List.init pieces (fun p ->
            let lo = p * per in
            (lo, min per (n - lo)))
        |> List.filter (fun (_, len) -> len > 0)
      in
      let parts =
        Pool.map_list pool
          (fun (lo, len) -> Array.init len (fun i -> f (lo + i)))
          ranges
      in
      Array.concat parts
    end

(* Double-buffered row-stripe footprint of one internal value: the
   consumer works tile_th output rows at a time, so 2 x tile_th rows of
   the value suffice between producer and consumer — capped at the full
   tensor (a value smaller than the stripe simply stays whole, which is
   what makes a whole-graph segment under huge SRAM subsume the
   Stream_tile design style). *)
let slab_bytes dtype shape ~tile_th =
  let full = Shape.size_bytes dtype shape in
  match Shape.as_feature shape with
  | None -> full
  | Some f ->
    let rows = min tile_th f.Shape.height in
    let stripe =
      2 * Shape.size_bytes dtype
            (Shape.feature ~channels:f.Shape.channels ~height:rows
               ~width:f.Shape.width)
    in
    min full stripe

let kernel_h_minus_1 op =
  match op with
  | Op.Conv c -> fst c.Op.kernel - 1
  | Op.Pool p -> if p.Op.global then 0 else fst p.Op.pool_kernel - 1
  | Op.Input _ | Op.Eltwise_add | Op.Concat | Op.Upsample _ | Op.Dense _ -> 0

let is_barrier op =
  match op with
  | Op.Input _ | Op.Dense _ -> true
  | Op.Conv _ | Op.Pool _ | Op.Eltwise_add | Op.Concat | Op.Upsample _ -> false

let search ?pool ~max_segment ~headroom_bytes ~tile_th ~dtype metric ~on_chip =
  let g = metric.Metric.graph in
  let profiles = metric.Metric.profiles in
  let n = G.node_count g in
  if n = 0 || max_segment < 2 || headroom_bytes <= 0 then empty
  else begin
    let barrier = Array.init n (fun i -> is_barrier (G.node g i).G.op) in
    let is_val = Array.init n (fun i -> Values.is_value g i) in
    let pinned =
      Array.init n (fun i -> Metric.Item_set.mem (Metric.Feature_value i) on_chip)
    in
    (* Last consumer of each value, or max_int when it has none (a graph
       output: it must reach DDR, so it can never be segment-internal
       and any segment strictly containing it is illegal). *)
    let need = Array.make n max_int in
    for v = 0 to n - 1 do
      if is_val.(v) then
        match Values.consumers g v with
        | [] -> ()
        | cs -> need.(v) <- List.fold_left max 0 cs
    done;
    let slab =
      Array.init n (fun v ->
          if is_val.(v) then slab_bytes dtype (G.output_shape g v) ~tile_th
          else 0)
    in
    (* Prefix sums of (kernel_h - 1): the halo factor of member m inside
       [_, hi] is (sum over (m..hi] of kh-1) / tile_th. *)
    let khp = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      khp.(i + 1) <- khp.(i) + kernel_h_minus_1 (G.node g i).G.op
    done;
    let scale_of m hi =
      1. +. (float_of_int (khp.(hi + 1) - khp.(m + 1)) /. float_of_int tile_th)
    in
    let base_lat = Array.init n (fun i -> Metric.node_latency metric ~on_chip i) in
    (* DDR bytes value v moves under the base allocation: its producer's
       write-back plus every consumer's streamed read. *)
    let value_ddr_bytes v =
      if pinned.(v) then 0
      else begin
        let p = profiles.(v) in
        let wb =
          match p.Latency.of_value with
          | Some v' when v' = v -> p.Latency.of_stream_bytes
          | _ -> 0
        in
        List.fold_left
          (fun acc c ->
            List.fold_left
              (fun acc (src, bytes) -> if src = v then acc + bytes else acc)
              acc
              profiles.(c).Latency.if_stream_bytes)
          wb (Values.consumers g v)
      end
    in
    (* All legal, strictly beneficial candidate segments starting at
       [lo], priced exactly.  Legality and the slab sum extend
       incrementally with [hi]; the escape rule does not (a consumer
       beyond today's [hi] may fall inside tomorrow's), so [req] tracks
       the furthest consumer any interior value needs covered. *)
    let candidates_at lo =
      if barrier.(lo) then []
      else begin
        let acc = ref [] in
        let req = ref 0 in
        let slabs = ref 0 in
        let internal_rev = ref [] in
        let hi = ref (lo + 1) in
        let stop = ref false in
        while (not !stop) && !hi <= min (n - 1) (lo + max_segment - 1) do
          let h = !hi in
          if barrier.(h) then stop := true
          else begin
            (* Node h-1's value just became interior. *)
            let v = h - 1 in
            if is_val.(v) then begin
              req := max !req need.(v);
              if not pinned.(v) then begin
                slabs := !slabs + slab.(v);
                internal_rev := v :: !internal_rev
              end
            end;
            if !req = max_int || !slabs > headroom_bytes then stop := true
            else begin
              if !req <= h && !internal_rev <> [] then begin
                let internal = List.rev !internal_rev in
                let fused_on_chip =
                  List.fold_left
                    (fun acc v -> Metric.Item_set.add (Metric.Feature_value v) acc)
                    on_chip internal
                in
                let scales = ref [] in
                let benefit = ref 0. in
                for m = h downto lo do
                  let s = scale_of m h in
                  scales := (m, s) :: !scales;
                  let lat =
                    Float.max
                      (Metric.node_latency metric ~on_chip:fused_on_chip m)
                      (profiles.(m).Latency.latc *. s)
                  in
                  benefit := !benefit +. (base_lat.(m) -. lat)
                done;
                if !benefit > 0. then
                  acc :=
                    { first = lo;
                      last = h;
                      internal;
                      scales = !scales;
                      slab_bytes = !slabs;
                      benefit_seconds = !benefit;
                      ddr_bytes_saved =
                        List.fold_left (fun a v -> a + value_ddr_bytes v) 0 internal }
                    :: !acc
              end;
              incr hi
            end
          end
        done;
        List.rev !acc
      end
    in
    let per_start = par_init pool n candidates_at in
    let evaluated = Array.fold_left (fun a l -> a + List.length l) 0 per_start in
    (* Candidates ending at each position, in increasing-[first] order,
       for the cut DP below. *)
    let by_last = Array.make n [] in
    for lo = n - 1 downto 0 do
      List.iter (fun c -> by_last.(c.last) <- c :: by_last.(c.last)) per_start.(lo)
    done;
    (* dp.(i) = best benefit covering nodes [0, i); strict improvement
       only, so ties deterministically keep the unfused (or
       earlier-found) choice at any domain count. *)
    let dp = Array.make (n + 1) 0. in
    let choice = Array.make (n + 1) None in
    for i = 0 to n - 1 do
      dp.(i + 1) <- dp.(i);
      List.iter
        (fun c ->
          let v = dp.(c.first) +. c.benefit_seconds in
          if v > dp.(i + 1) then begin
            dp.(i + 1) <- v;
            choice.(i + 1) <- Some c
          end)
        by_last.(i)
    done;
    let segments = ref [] in
    let i = ref n in
    while !i > 0 do
      match choice.(!i) with
      | None -> decr i
      | Some c ->
        segments := c :: !segments;
        i := c.first
    done;
    { segments = !segments; total_benefit = dp.(n); evaluated }
  end
