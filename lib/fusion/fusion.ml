module F = Lcmm.Framework
module Metric = Lcmm.Metric
module Dnnk = Lcmm.Dnnk
module Traffic = Lcmm.Traffic
module Latency = Accel.Latency
module Config = Accel.Config

let log_src = Logs.Src.create "lcmm.fusion" ~doc:"Fused segments and streaming"

module Log = (val Logs.src_log log_src : Logs.LOG)

type options = {
  max_segment : int;
  fifo_blocks : int;
  streaming : bool;
  fusing : bool;
}

let default_options =
  { max_segment = 8; fifo_blocks = 4; streaming = true; fusing = true }

type t = {
  base : F.plan;
  options : options;
  segments : Segmentation.segment list;
  streamed : int list;
  fifo_bytes : int;
  metric : Metric.t;
  on_chip : Metric.Item_set.t;
  predicted_latency : float;
  traffic : Traffic.t;
  base_traffic : Traffic.t;
  peak_sram_bytes : int;
  segmentation_us : float;
}

let active t = t.segments <> [] || t.streamed <> []

let ddr_bytes_saved t =
  Traffic.total_bytes t.base_traffic - Traffic.total_bytes t.traffic

let inert ?(segmentation_us = 0.) options (base : F.plan) base_traffic =
  { base;
    options;
    segments = [];
    streamed = [];
    fifo_bytes = 0;
    metric = base.F.metric;
    on_chip = base.F.allocation.Dnnk.on_chip;
    predicted_latency = base.F.predicted_latency;
    traffic = base_traffic;
    base_traffic;
    peak_sram_bytes = base.F.tensor_sram_bytes;
    segmentation_us }

let apply ?(options = default_options) ?pool (base : F.plan) =
  let on_chip = base.F.allocation.Dnnk.on_chip in
  let base_traffic = Traffic.of_allocation base.F.metric ~on_chip in
  if not base.F.options.F.fusion then inert options base base_traffic
  else begin
    let t0 = Unix.gettimeofday () in
    let metric = base.F.metric in
    let profiles = metric.Metric.profiles in
    let n = Array.length profiles in
    let capacity_bytes =
      let budget = Config.sram_budget_bytes base.F.config in
      match base.F.options.F.capacity_override with
      | None -> budget
      | Some cap -> min cap budget
    in
    let used = base.F.tensor_sram_bytes in
    (* --- stream residency ------------------------------------------------
       A spilled whole weight with tile reloads ([wt_term > wt_load_once])
       streams: its channel occupancy and DDR bytes drop to one load per
       inference.  Streaming one weight never slows any node and never
       displaces a pinned tensor — the only charge is the shared FIFO,
       paid once — so every candidate streams, provided the FIFO fits
       beside the plan's resident tensors. *)
    let is_streamed = Array.make n false in
    let streamed, fifo_bytes =
      if not options.streaming then ([], 0)
      else begin
        let cands = ref [] in
        for i = n - 1 downto 0 do
          let p = profiles.(i) in
          if
            metric.Metric.slices.(i) = 1
            && p.Latency.wt_term > 0.
            && p.Latency.wt_load_once < p.Latency.wt_term
            && not (Metric.Item_set.mem (Metric.Weight_of i) on_chip)
          then cands := i :: !cands
        done;
        let fifo = options.fifo_blocks * Dnnk.block_bytes in
        if !cands = [] || used + fifo > capacity_bytes then ([], 0)
        else begin
          List.iter (fun i -> is_streamed.(i) <- true) !cands;
          (!cands, fifo)
        end
      end
    in
    (* --- segmentation ---------------------------------------------------
       Searched against the streamed metric (stream decisions change the
       weight terms the segment pricing maximizes over) and the SRAM
       headroom left after the resident tensors and the FIFO. *)
    let streamed_metric =
      if streamed = [] then metric
      else Sim.Fused.effective_metric ~streamed:(fun i -> is_streamed.(i)) metric
    in
    let seg =
      if not options.fusing then Segmentation.empty
      else
        Segmentation.search ?pool ~max_segment:options.max_segment
          ~headroom_bytes:(capacity_bytes - used - fifo_bytes)
          ~tile_th:base.F.config.Config.tile.Accel.Tiling.th
          ~dtype:base.F.config.Config.dtype streamed_metric ~on_chip
    in
    let segments = seg.Segmentation.segments in
    (* --- exact re-evaluation -------------------------------------------- *)
    let scale = Array.make n 1.0 in
    List.iter
      (fun (s : Segmentation.segment) ->
        List.iter (fun (m, f) -> scale.(m) <- f) s.Segmentation.scales)
      segments;
    let eff_metric =
      if segments = [] && streamed = [] then metric
      else
        Sim.Fused.effective_metric
          ~latc_scale:(fun i -> scale.(i))
          ~streamed:(fun i -> is_streamed.(i))
          metric
    in
    let eff_on_chip =
      List.fold_left
        (fun acc (s : Segmentation.segment) ->
          List.fold_left
            (fun acc v -> Metric.Item_set.add (Metric.Feature_value v) acc)
            acc s.Segmentation.internal)
        on_chip segments
    in
    let stalls =
      base.F.predicted_latency -. base.F.allocation.Dnnk.predicted_latency
    in
    let fused_latency =
      Metric.total_latency eff_metric ~on_chip:eff_on_chip +. stalls
    in
    let segmentation_us = (Unix.gettimeofday () -. t0) *. 1e6 in
    F.record_pass_times { F.zero_pass_times with F.segmentation_us };
    (* Safety net: the segment pricing and the effective-metric
       evaluation are the same arithmetic, so this cannot fire unless
       the two ever drift — in which case no decision beats a wrong
       one. *)
    if fused_latency > base.F.predicted_latency +. 1e-15 then
      inert ~segmentation_us options base base_traffic
    else begin
      let traffic = Traffic.of_allocation eff_metric ~on_chip:eff_on_chip in
      let widest =
        List.fold_left
          (fun a (s : Segmentation.segment) -> max a s.Segmentation.slab_bytes)
          0 segments
      in
      Log.info (fun m ->
          m
            "fusion: %d segments (%d candidates), %d streamed weights, \
             %.3f -> %.3f ms, %.2f MB DDR saved"
            (List.length segments) seg.Segmentation.evaluated
            (List.length streamed)
            (base.F.predicted_latency *. 1e3)
            (fused_latency *. 1e3)
            (float_of_int
               (Traffic.total_bytes base_traffic - Traffic.total_bytes traffic)
            /. 1e6));
      { base;
        options;
        segments;
        streamed;
        fifo_bytes;
        metric = eff_metric;
        on_chip = eff_on_chip;
        predicted_latency = fused_latency;
        traffic;
        base_traffic;
        peak_sram_bytes = used + fifo_bytes + widest;
        segmentation_us }
    end
  end

let effective_plan t =
  if not (active t) then t.base
  else
    { t.base with
      F.metric = t.metric;
      allocation =
        { t.base.F.allocation with
          Dnnk.on_chip = t.on_chip;
          predicted_latency =
            Metric.total_latency t.metric ~on_chip:t.on_chip };
      predicted_latency = t.predicted_latency;
      tensor_sram_bytes = t.peak_sram_bytes;
      pass_times =
        { t.base.F.pass_times with F.segmentation_us = t.segmentation_us } }

let fingerprint t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (F.fingerprint t.base);
  let f x = Buffer.add_string b (Printf.sprintf "%.17g;" x) in
  let i x = Buffer.add_string b (string_of_int x ^ ";") in
  Buffer.add_string b "fusion:segments:";
  List.iter
    (fun (s : Segmentation.segment) ->
      i s.Segmentation.first;
      i s.Segmentation.last;
      i s.Segmentation.slab_bytes;
      i s.Segmentation.ddr_bytes_saved;
      f s.Segmentation.benefit_seconds;
      List.iter (fun v -> i v) s.Segmentation.internal;
      Buffer.add_char b '/';
      List.iter
        (fun (m, sc) ->
          i m;
          f sc)
        s.Segmentation.scales;
      Buffer.add_char b '|')
    t.segments;
  Buffer.add_string b "streamed:";
  List.iter i t.streamed;
  Buffer.add_string b "fifo:";
  i t.fifo_bytes;
  Buffer.add_string b "latency:";
  f t.predicted_latency;
  Buffer.add_string b "traffic:";
  i t.traffic.Traffic.if_bytes;
  i t.traffic.Traffic.wt_bytes;
  i t.traffic.Traffic.of_bytes;
  i t.peak_sram_bytes;
  Buffer.contents b
