(** Fused-layer segmentation search (LoopTree-style fuse groups).

    A *segment* is a contiguous run of nodes [first..last] (node ids are
    execution order) whose intermediate feature values never touch DDR:
    they live as double-buffered row stripes ("slabs") in the SRAM
    headroom left beside the plan's pinned tensors.  A segment is legal
    iff

    - no [Input] or [Dense] node lies inside it (execution barriers:
      the systolic array reconfigures around them);
    - every feature value produced strictly inside it is consumed, and
      only by nodes inside it — a liveness/shortcut edge crossing the
      segment boundary forces a cut;
    - the slabs of its internal values fit the SRAM headroom
      ([headroom_bytes]), alongside the resident tensors the headroom
      already excludes.

    Fusing is not free: inside a segment the spatial tiles of every
    layer must cover the receptive field its downstream members need,
    so each node recomputes a halo of [sum (kernel_h - 1) / tile_th]
    extra rows per downstream member — charged as a multiplicative
    compute-time factor.  The searcher prices each candidate segment
    exactly (Eq. 1 per member under the extended allocation, halo
    factor on compute) and picks the optimal disjoint segment cover by
    dynamic programming over cut positions. *)

type segment = {
  first : int;  (** First member node id. *)
  last : int;   (** Last member node id, inclusive. *)
  internal : int list;
      (** Value ids kept on chip inside the segment (increasing);
          excludes values the base plan already pins. *)
  scales : (int * float) list;
      (** Per-member compute-time factor [(node id, >= 1.0)], from the
          halo recompute of downstream members. *)
  slab_bytes : int;   (** SRAM the internal stripes occupy. *)
  benefit_seconds : float;  (** Exact Eq. 1 seconds saved, > 0. *)
  ddr_bytes_saved : int;
      (** DDR bytes the internal values no longer move. *)
}

type result = {
  segments : segment list;  (** Disjoint, increasing by [first]. *)
  total_benefit : float;
  evaluated : int;          (** Legal candidate segments costed. *)
}

val empty : result

val search :
  ?pool:Lcmm.Pool.t ->
  max_segment:int ->
  headroom_bytes:int ->
  tile_th:int ->
  dtype:Tensor.Dtype.t ->
  Lcmm.Metric.t ->
  on_chip:Lcmm.Metric.Item_set.t ->
  result
(** Evaluate every legal candidate segment of 2..[max_segment] nodes
    against the metric and allocation, then DP over cut positions for
    the best disjoint cover.  [pool] parallelizes candidate costing over
    start positions (position-addressed chunks — the result is
    byte-identical at any domain count; the DP itself is sequential).
    Only segments with strictly positive benefit are ever selected, so
    a graph with nothing to fuse yields {!empty}. *)
