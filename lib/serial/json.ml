type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- rendering --- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_string ?(indent = 0) value =
  let buf = Buffer.create 1024 in
  let newline depth =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * depth) ' ')
    end
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          newline (depth + 1);
          emit (depth + 1) item)
        items;
      newline depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, item) ->
          if i > 0 then Buffer.add_char buf ',';
          newline (depth + 1);
          Buffer.add_char buf '"';
          escape_into buf key;
          Buffer.add_string buf "\":";
          if indent > 0 then Buffer.add_char buf ' ';
          emit (depth + 1) item)
        fields;
      newline depth;
      Buffer.add_char buf '}'
  in
  emit 0 value;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string ~indent:2 v)

let equal = ( = )

(* --- parsing: recursive descent over a string with an index --- *)

exception Parse_error of int * string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail (Printf.sprintf "expected %c, found %c" c d)
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub input !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match input.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match input.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape"
               else begin
                 let hex = String.sub input (!pos + 1) 4 in
                 (match int_of_string_opt ("0x" ^ hex) with
                 | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
                 | Some _ -> Buffer.add_char buf '?'
                 | None -> fail "invalid \\u escape");
                 pos := !pos + 4
               end
             | c -> fail (Printf.sprintf "invalid escape \\%c" c));
          advance ();
          loop ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "invalid number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          (key, value)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON error at offset %d: %s" at msg)

(* --- accessors --- *)

let member key = function
  | Obj fields -> (
    match List.assoc_opt key fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" key))
  | Null | Bool _ | Int _ | Float _ | String _ | List _ ->
    Error (Printf.sprintf "expected an object with field %S" key)

let member_opt key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_int = function
  | Int i -> Ok i
  | Null | Bool _ | Float _ | String _ | List _ | Obj _ -> Error "expected an integer"

let to_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | Null | Bool _ | String _ | List _ | Obj _ -> Error "expected a number"

let to_bool = function
  | Bool b -> Ok b
  | Null | Int _ | Float _ | String _ | List _ | Obj _ -> Error "expected a boolean"

let to_str = function
  | String s -> Ok s
  | Null | Bool _ | Int _ | Float _ | List _ | Obj _ -> Error "expected a string"

let to_list = function
  | List l -> Ok l
  | Null | Bool _ | Int _ | Float _ | String _ | Obj _ -> Error "expected an array"
