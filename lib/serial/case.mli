(** Replayable differential-verification failure cases.

    When the [lib/check] harness finds a graph violating an oracle, it
    persists the (shrunk) counterexample as a versioned JSON document so
    the exact failure can be re-run later with [lcmm check --replay].
    The document carries everything the oracle context needs to be
    reconstructed deterministically: the graph itself (via {!Codec}),
    the precision, the capacity the allocators ran under, and the seed
    bookkeeping of the run that found it. *)

type t = {
  seed : int;            (** Seed of the run that found the case. *)
  case_index : int;      (** Index of the case within that run. *)
  oracle : string;       (** Name of the violated oracle. *)
  message : string;      (** The oracle's failure description. *)
  dtype : Tensor.Dtype.t;
  capacity_fraction : float;
      (** Tensor-SRAM capacity as a fraction of the total virtual-buffer
          footprint the case was checked under. *)
  graph : Dnn_graph.Graph.t;  (** The shrunk counterexample. *)
}

val format_version : int

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result

val to_string : ?pretty:bool -> t -> string

val of_string : string -> (t, string) result

val write_file : path:string -> t -> unit

val read_file : path:string -> (t, string) result
(** [Error] covers unreadable files as well as malformed content. *)
