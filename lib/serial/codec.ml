module G = Dnn_graph.Graph
module Op = Dnn_graph.Op

let format_version = 1

(* --- encoding --- *)

let padding_to_json = function
  | Op.Valid -> Json.String "valid"
  | Op.Same -> Json.String "same"
  | Op.Explicit p -> Json.Int p

let pair_to_json (a, b) = Json.List [ Json.Int a; Json.Int b ]

let op_to_json = function
  | Op.Input { channels; height; width } ->
    Json.Obj
      [ ("kind", Json.String "input"); ("channels", Json.Int channels);
        ("height", Json.Int height); ("width", Json.Int width) ]
  | Op.Conv { out_channels; kernel; stride; padding; groups } ->
    Json.Obj
      [ ("kind", Json.String "conv"); ("out_channels", Json.Int out_channels);
        ("kernel", pair_to_json kernel); ("stride", pair_to_json stride);
        ("padding", padding_to_json padding); ("groups", Json.Int groups) ]
  | Op.Pool { pool_kind; pool_kernel; pool_stride; pool_padding; global } ->
    Json.Obj
      [ ("kind", Json.String "pool");
        ("pool_kind", Json.String (match pool_kind with Op.Max -> "max" | Op.Avg -> "avg"));
        ("kernel", pair_to_json pool_kernel); ("stride", pair_to_json pool_stride);
        ("padding", padding_to_json pool_padding); ("global", Json.Bool global) ]
  | Op.Eltwise_add -> Json.Obj [ ("kind", Json.String "add") ]
  | Op.Concat -> Json.Obj [ ("kind", Json.String "concat") ]
  | Op.Upsample { factor } ->
    Json.Obj [ ("kind", Json.String "upsample"); ("factor", Json.Int factor) ]
  | Op.Dense { out_features } ->
    Json.Obj [ ("kind", Json.String "dense"); ("out_features", Json.Int out_features) ]

let node_to_json nd =
  let base =
    [ ("id", Json.Int nd.G.id); ("name", Json.String nd.G.node_name);
      ("op", op_to_json nd.G.op);
      ("preds", Json.List (List.map (fun p -> Json.Int p) nd.G.preds)) ]
  in
  let tagged =
    match nd.G.block with
    | None -> base
    | Some b -> base @ [ ("block", Json.String b) ]
  in
  Json.Obj tagged

let graph_to_json g =
  Json.Obj
    [ ("format", Json.String "lcmm-graph"); ("version", Json.Int format_version);
      ("nodes", Json.List (List.map node_to_json (G.nodes g))) ]

(* --- decoding --- *)

let ( let* ) = Result.bind

let padding_of_json = function
  | Json.String "valid" -> Ok Op.Valid
  | Json.String "same" -> Ok Op.Same
  | Json.Int p -> Ok (Op.Explicit p)
  | Json.String other -> Error (Printf.sprintf "unknown padding %S" other)
  | Json.Null | Json.Bool _ | Json.Float _ | Json.List _ | Json.Obj _ ->
    Error "invalid padding"

let pair_of_json v =
  let* items = Json.to_list v in
  match items with
  | [ a; b ] ->
    let* a = Json.to_int a in
    let* b = Json.to_int b in
    Ok (a, b)
  | _ -> Error "expected a two-element array"

let int_field key v =
  let* field = Json.member key v in
  Json.to_int field

let op_of_json v =
  let* kind_v = Json.member "kind" v in
  let* kind = Json.to_str kind_v in
  match kind with
  | "input" ->
    let* channels = int_field "channels" v in
    let* height = int_field "height" v in
    let* width = int_field "width" v in
    Ok (Op.Input { channels; height; width })
  | "conv" ->
    let* out_channels = int_field "out_channels" v in
    let* kernel_v = Json.member "kernel" v in
    let* kernel = pair_of_json kernel_v in
    let* stride_v = Json.member "stride" v in
    let* stride = pair_of_json stride_v in
    let* padding_v = Json.member "padding" v in
    let* padding = padding_of_json padding_v in
    let* groups = int_field "groups" v in
    Ok (Op.Conv { out_channels; kernel; stride; padding; groups })
  | "pool" ->
    let* kind_v = Json.member "pool_kind" v in
    let* kind_s = Json.to_str kind_v in
    let* pool_kind =
      match kind_s with
      | "max" -> Ok Op.Max
      | "avg" -> Ok Op.Avg
      | other -> Error (Printf.sprintf "unknown pool kind %S" other)
    in
    let* kernel_v = Json.member "kernel" v in
    let* pool_kernel = pair_of_json kernel_v in
    let* stride_v = Json.member "stride" v in
    let* pool_stride = pair_of_json stride_v in
    let* padding_v = Json.member "padding" v in
    let* pool_padding = padding_of_json padding_v in
    let* global =
      match Json.member_opt "global" v with
      | Some (Json.Bool b) -> Ok b
      | Some _ -> Error "invalid global flag"
      | None -> Ok false
    in
    Ok (Op.Pool { pool_kind; pool_kernel; pool_stride; pool_padding; global })
  | "add" -> Ok Op.Eltwise_add
  | "concat" -> Ok Op.Concat
  | "upsample" ->
    let* factor = int_field "factor" v in
    Ok (Op.Upsample { factor })
  | "dense" ->
    let* out_features = int_field "out_features" v in
    Ok (Op.Dense { out_features })
  | other -> Error (Printf.sprintf "unknown operator kind %S" other)

let node_of_json v =
  let* id = int_field "id" v in
  let* name_v = Json.member "name" v in
  let* node_name = Json.to_str name_v in
  let* op_v = Json.member "op" v in
  let* op = op_of_json op_v in
  let* preds_v = Json.member "preds" v in
  let* pred_items = Json.to_list preds_v in
  let* preds =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* p = Json.to_int item in
        Ok (p :: acc))
      (Ok []) pred_items
  in
  let* block =
    match Json.member_opt "block" v with
    | None -> Ok None
    | Some (Json.String b) -> Ok (Some b)
    | Some _ -> Error "invalid block tag"
  in
  Ok { G.id; node_name; op; preds = List.rev preds; block }

let graph_of_json v =
  let* fmt_v = Json.member "format" v in
  let* fmt = Json.to_str fmt_v in
  if fmt <> "lcmm-graph" then Error (Printf.sprintf "unknown format %S" fmt)
  else
    let* version = int_field "version" v in
    if version > format_version then
      Error (Printf.sprintf "unsupported version %d (max %d)" version format_version)
    else
      let* nodes_v = Json.member "nodes" v in
      let* node_items = Json.to_list nodes_v in
      let* nodes =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* nd = node_of_json item in
            Ok (nd :: acc))
          (Ok []) node_items
      in
      G.create (List.rev nodes)

let to_string ?(pretty = true) g =
  Json.to_string ~indent:(if pretty then 2 else 0) (graph_to_json g)

let digest_string s = Digest.to_hex (Digest.string s)

let digest g = digest_string (to_string ~pretty:false g)

let of_string s =
  let* v = Json.of_string s in
  graph_of_json v

let write_file ~path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let read_file ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_string content
