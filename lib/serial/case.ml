type t = {
  seed : int;
  case_index : int;
  oracle : string;
  message : string;
  dtype : Tensor.Dtype.t;
  capacity_fraction : float;
  graph : Dnn_graph.Graph.t;
}

let format_version = 1

let to_json c =
  Json.Obj
    [ ("format", Json.String "lcmm-check-case");
      ("version", Json.Int format_version);
      ("seed", Json.Int c.seed);
      ("case_index", Json.Int c.case_index);
      ("oracle", Json.String c.oracle);
      ("message", Json.String c.message);
      ("dtype", Json.String (Tensor.Dtype.to_string c.dtype));
      ("capacity_fraction", Json.Float c.capacity_fraction);
      ("graph", Codec.graph_to_json c.graph) ]

let ( let* ) = Result.bind

let of_json v =
  let* fmt_v = Json.member "format" v in
  let* fmt = Json.to_str fmt_v in
  if fmt <> "lcmm-check-case" then Error (Printf.sprintf "unknown format %S" fmt)
  else
    let* version_v = Json.member "version" v in
    let* version = Json.to_int version_v in
    if version > format_version then
      Error (Printf.sprintf "unsupported version %d (max %d)" version format_version)
    else
      let int_field name =
        let* f = Json.member name v in
        Json.to_int f
      in
      let str_field name =
        let* f = Json.member name v in
        Json.to_str f
      in
      let* seed = int_field "seed" in
      let* case_index = int_field "case_index" in
      let* oracle = str_field "oracle" in
      let* message = str_field "message" in
      let* dtype_s = str_field "dtype" in
      let* dtype =
        match Tensor.Dtype.of_string dtype_s with
        | Some d -> Ok d
        | None -> Error (Printf.sprintf "unknown dtype %S" dtype_s)
      in
      let* frac_v = Json.member "capacity_fraction" v in
      let* capacity_fraction = Json.to_float frac_v in
      let* graph_v = Json.member "graph" v in
      let* graph = Codec.graph_of_json graph_v in
      Ok { seed; case_index; oracle; message; dtype; capacity_fraction; graph }

let to_string ?(pretty = true) c =
  Json.to_string ~indent:(if pretty then 2 else 0) (to_json c)

let of_string s =
  let* v = Json.of_string s in
  of_json v

let write_file ~path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string c))

let read_file ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_string content
