let ok ?id ~op ?cache ?elapsed_ms result =
  let fields =
    (match id with None -> [] | Some v -> [ ("id", v) ])
    @ [ ("op", Json.String op); ("ok", Json.Bool true) ]
    @ (match cache with None -> [] | Some c -> [ ("cache", Json.String c) ])
    @ (match elapsed_ms with
      | None -> []
      | Some ms -> [ ("elapsed_ms", Json.Float ms) ])
    @ [ ("result", result) ]
  in
  Json.Obj fields

let error ?id ~op ?kind msg =
  let fields =
    (match id with None -> [] | Some v -> [ ("id", v) ])
    @ [ ("op", Json.String op); ("ok", Json.Bool false) ]
    @ (match kind with None -> [] | Some k -> [ ("kind", Json.String k) ])
    @ [ ("error", Json.String msg) ]
  in
  Json.Obj fields

let to_line v = Json.to_string v ^ "\n"

let is_blank s =
  String.for_all (function ' ' | '\t' | '\r' -> true | _ -> false) s

let rec read_request ic =
  match input_line ic with
  | exception End_of_file -> Ok None
  | exception Sys_error msg -> Error msg
  | line -> if is_blank line then read_request ic else Ok (Some line)
