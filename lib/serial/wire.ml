let ok ?id ~op ?cache ?elapsed_ms ?sum result =
  let fields =
    (match id with None -> [] | Some v -> [ ("id", v) ])
    @ [ ("op", Json.String op); ("ok", Json.Bool true) ]
    @ (match cache with None -> [] | Some c -> [ ("cache", Json.String c) ])
    @ (match elapsed_ms with
      | None -> []
      | Some ms -> [ ("elapsed_ms", Json.Float ms) ])
    @ (match sum with None -> [] | Some s -> [ ("sum", Json.String s) ])
    @ [ ("result", result) ]
  in
  Json.Obj fields

let error ?id ~op ?kind msg =
  let fields =
    (match id with None -> [] | Some v -> [ ("id", v) ])
    @ [ ("op", Json.String op); ("ok", Json.Bool false) ]
    @ (match kind with None -> [] | Some k -> [ ("kind", Json.String k) ])
    @ [ ("error", Json.String msg) ]
  in
  Json.Obj fields

let to_line v = Json.to_string v ^ "\n"

let is_blank s =
  String.for_all (function ' ' | '\t' | '\r' -> true | _ -> false) s

(* NDJSON framing reads records byte-by-byte up to the '\n' terminator
   so end-of-input *inside* a record is distinguishable from
   end-of-input between records.  [input_line] cannot make that
   distinction: it silently returns the partial final line, and a peer
   killed mid-write would hand half a JSON document to the parser. *)
let read_raw_line ic =
  let buf = Buffer.create 256 in
  let rec loop () =
    match input_char ic with
    | '\n' -> `Line (Buffer.contents buf)
    | c ->
      Buffer.add_char buf c;
      loop ()
    | exception End_of_file ->
      if Buffer.length buf = 0 then `Eof else `Partial (Buffer.length buf)
    | exception Sys_error msg -> `Err msg
  in
  loop ()

let partial_error n =
  Printf.sprintf
    "connection closed mid-line after %d bytes (truncated NDJSON record)" n

let rec read_request ic =
  match read_raw_line ic with
  | `Eof -> Ok None
  | `Partial n -> Error (partial_error n)
  | `Err msg -> Error msg
  | `Line line -> if is_blank line then read_request ic else Ok (Some line)

let read_reply ic =
  match read_raw_line ic with
  | `Line line -> Ok line
  | `Eof -> Error "connection closed before reply"
  | `Partial n -> Error (partial_error n)
  | `Err msg -> Error msg
