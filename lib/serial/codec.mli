(** Graph (de)serialization.

    The on-disk format is a versioned JSON document listing nodes in
    topological order with their operator parameters, predecessors and
    block tags; decoding re-runs the full graph validation (shape
    inference included), so a loaded graph carries the same guarantees as
    a built one. *)

val format_version : int

val graph_to_json : Dnn_graph.Graph.t -> Json.t

val graph_of_json : Json.t -> (Dnn_graph.Graph.t, string) result

val to_string : ?pretty:bool -> Dnn_graph.Graph.t -> string
(** Serialize ([pretty] defaults to true). *)

val digest_string : string -> string
(** Hex digest (MD5) of an arbitrary canonical byte string — the same
    content-address scheme as {!digest}, for callers that fingerprint
    non-graph artifacts (e.g. plan fingerprints in the
    parallel-determinism tests). *)

val digest : Dnn_graph.Graph.t -> string
(** Hex digest (MD5) of the canonical compact serialization — a stable
    content address: two graphs digest equal iff their serialized forms
    are identical, independent of how they were built or pretty-printed.
    The plan-compilation service keys its cache on this. *)

val of_string : string -> (Dnn_graph.Graph.t, string) result
(** Parse and validate. *)

val write_file : path:string -> Dnn_graph.Graph.t -> unit

val read_file : path:string -> (Dnn_graph.Graph.t, string) result
(** [Error] covers unreadable files as well as malformed content. *)
