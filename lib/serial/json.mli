(** A minimal JSON implementation (the sealed environment has no JSON
    package).  Covers the subset the graph codec needs: objects, arrays,
    strings, integers, floats, booleans and null; strings support the
    standard escapes; numbers parse as [Int] when they are exact
    integers. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render; [indent > 0] pretty-prints with that step (default 0 =
    compact). *)

val of_string : string -> (t, string) result
(** Parse a complete document; the error carries a byte offset. *)

(* Accessors used by decoders: all return [Error] with a path-qualified
   message rather than raising. *)

val member : string -> t -> (t, string) result
(** Field of an object; missing fields and non-objects are errors. *)

val member_opt : string -> t -> t option
(** [Some] field value when present on an object. *)

val to_int : t -> (int, string) result

val to_float : t -> (float, string) result
(** Accepts both [Float] and [Int] (integer-valued JSON numbers parse as
    [Int]; decoders of numeric fields usually want either). *)

val to_bool : t -> (bool, string) result

val to_str : t -> (string, string) result

val to_list : t -> (t list, string) result

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
