(** Wire envelopes for line-delimited JSON services.

    Every response of the plan-compilation service is one compact JSON
    object on one line.  The field order is fixed so that identical
    payloads render byte-identically — the service's determinism tests
    and reproducible transcripts depend on that. *)

val ok :
  ?id:Json.t -> op:string -> ?cache:string -> ?elapsed_ms:float ->
  ?sum:string -> Json.t -> Json.t
(** [ok ~op result] is [{"id"?, "op", "ok": true, "cache"?,
    "elapsed_ms"?, "sum"?, "result"}].  [id] echoes the request's id
    verbatim; [cache] is ["hit"] or ["miss"] when the operation went
    through a cache; [sum] is a digest of the compact [result]
    rendering, emitted only when the request asked for end-to-end
    integrity (["checksum": true]) — absent otherwise, keeping default
    responses byte-identical to older builds. *)

val error : ?id:Json.t -> op:string -> ?kind:string -> string -> Json.t
(** [{"id"?, "op", "ok": false, "kind"?, "error": msg}].  [kind] is a
    machine-readable error class (["internal"], ["deadline"],
    ["unavailable"], ...) so clients can branch without parsing the
    message; omitted for plain client errors, keeping those responses
    byte-identical to older builds. *)

val to_line : Json.t -> string
(** Compact rendering plus a trailing newline — one NDJSON record. *)

val read_request : in_channel -> (string option, string) result
(** Next non-blank line, [Ok None] at end of input.  Lines are the
    protocol's framing; parsing their content is the caller's job.
    End-of-input *inside* a record — the peer died mid-write — is a
    framing [Error] naming the truncated byte count, never a partial
    line handed to the parser. *)

val read_reply : in_channel -> (string, string) result
(** One response line for a client-side roundtrip.  Clean EOF (the
    server closed before answering) and mid-line EOF are both framing
    [Error]s; a reply is never a partial record. *)
