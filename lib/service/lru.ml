type 'a entry = {
  value : 'a;
  bytes : int;
  mutable stamp : int;  (* recency: larger = more recently used *)
}

type 'a t = {
  table : (string, 'a entry) Hashtbl.t;
  max_entries : int;
  max_bytes : int;
  mutable clock : int;
  mutable bytes_held : int;
}

let create ~max_entries ~max_bytes =
  if max_entries <= 0 then invalid_arg "Lru.create: max_entries must be positive";
  if max_bytes <= 0 then invalid_arg "Lru.create: max_bytes must be positive";
  { table = Hashtbl.create 64; max_entries; max_bytes; clock = 0; bytes_held = 0 }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some e ->
    e.stamp <- tick t;
    Some e.value

let mem t key = Hashtbl.mem t.table key

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some e ->
    t.bytes_held <- t.bytes_held - e.bytes;
    Hashtbl.remove t.table key

let oldest t =
  Hashtbl.fold
    (fun key e acc ->
      match acc with
      | Some (_, best) when best.stamp <= e.stamp -> acc
      | Some _ | None -> Some (key, e))
    t.table None

let add t ~key ~bytes value =
  remove t key;
  Hashtbl.replace t.table key { value; bytes; stamp = tick t };
  t.bytes_held <- t.bytes_held + bytes;
  let evicted = ref [] in
  let over () =
    (Hashtbl.length t.table > t.max_entries
    || t.bytes_held > t.max_bytes)
    && Hashtbl.length t.table > 1
  in
  while over () do
    match oldest t with
    | None -> assert false
    | Some (old_key, e) ->
      remove t old_key;
      evicted := (old_key, e.value) :: !evicted
  done;
  List.rev !evicted

let length t = Hashtbl.length t.table

let total_bytes t = t.bytes_held

let clear t =
  Hashtbl.reset t.table;
  t.bytes_held <- 0

(* Snapshot for drain: every resident entry, most recently used first,
   so a bounded flush writes back the hottest entries first.  Recency
   stamps are not touched — a snapshot is not a use. *)
let bindings t =
  Hashtbl.fold (fun key e acc -> (key, e.value, e.stamp) :: acc) t.table []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
  |> List.map (fun (key, value, _) -> (key, value))
