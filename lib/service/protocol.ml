module Json = Dnn_serial.Json
module F = Lcmm.Framework

type target =
  | Named of string
  | Inline of Dnn_graph.Graph.t

type compile_spec = {
  target : target;
  dtype : Tensor.Dtype.t;
  device : Fpga.Device.t;
  options : F.options;
}

type run_tenant = {
  tenant_target : target;
  count : int;
  tenant_priority : int;
  arrival_s : float;
}

type run_spec = {
  tenants : run_tenant list;
  run_dtype : Tensor.Dtype.t;
  run_device : Fpga.Device.t;
  arbitration : Lcmm_runtime.Arbiter.t;
  scheduler : Lcmm_runtime.Scheduler.t;
  sram_partition : Lcmm_runtime.Partition.policy;
  overcommit : float;
  run_channels : int;
      (* DDR channels the runtime engine schedules over; 1 = the
         aggregate fluid-bus model (and the pre-channel digest). *)
  run_options : F.options;
  faults : Fault.Spec.t option;
}

type request =
  | Compile of compile_spec
  | Simulate of compile_spec * int option
  | Run of run_spec
  | Batch of envelope list
  | Stats
  | Models
  | Cache_get of string
  | Cache_put of string * Json.t

and envelope = {
  id : Json.t option;
  deadline_ms : float option;
  checksum : bool;
      (* request end-to-end integrity: the engine adds a "sum" digest of
         the result payload to the response.  Set by the tier router on
         forwarded requests so corrupted shard replies are detectable;
         defaults to false, leaving direct clients byte-identical. *)
  request : request;
}

let target_name = function
  | Named name -> name
  | Inline _ -> "<inline>"

let op_name = function
  | Compile _ -> "compile"
  | Simulate _ -> "simulate"
  | Run _ -> "run"
  | Batch _ -> "batch"
  | Stats -> "stats"
  | Models -> "models"
  | Cache_get _ -> "cache_get"
  | Cache_put _ -> "cache_put"

let ( let* ) = Result.bind

(* --- decoding --- *)

let bool_field v key fallback =
  match Json.member_opt key v with
  | None -> Ok fallback
  | Some field -> (
    match Json.to_bool field with
    | Ok b -> Ok b
    | Error _ -> Error (Printf.sprintf "field %S: expected a boolean" key))

let options_of_json v =
  let base = F.default_options in
  let* feature_reuse = bool_field v "feature_reuse" base.F.feature_reuse in
  let* weight_prefetch = bool_field v "weight_prefetch" base.F.weight_prefetch in
  let* buffer_splitting = bool_field v "buffer_splitting" base.F.buffer_splitting in
  let* buffer_sharing = bool_field v "buffer_sharing" base.F.buffer_sharing in
  let* memory_bound_only = bool_field v "memory_bound_only" base.F.memory_bound_only in
  let* compensation =
    match Json.member_opt "compensation" v with
    | None -> Ok base.F.compensation
    | Some (Json.String ("table" | "table_approx")) -> Ok Lcmm.Dnnk.Table_approx
    | Some (Json.String ("exact" | "exact_iterative")) -> Ok Lcmm.Dnnk.Exact_iterative
    | Some _ -> Error "field \"compensation\": expected \"table\" or \"exact\""
  in
  let* coloring =
    match Json.member_opt "coloring" v with
    | None -> Ok base.F.coloring
    | Some (Json.String "min_growth") -> Ok Lcmm.Coloring.Min_growth
    | Some (Json.String "first_fit") -> Ok Lcmm.Coloring.First_fit
    | Some _ -> Error "field \"coloring\": expected \"min_growth\" or \"first_fit\""
  in
  let* capacity_override =
    match Json.member_opt "capacity_override" v with
    | None -> Ok base.F.capacity_override
    | Some Json.Null -> Ok None
    | Some field -> (
      match Json.to_int field with
      | Ok b when b > 0 -> Ok (Some b)
      | Ok _ -> Error "field \"capacity_override\": expected a positive byte count"
      | Error _ -> Error "field \"capacity_override\": expected an integer or null")
  in
  let* weight_slices =
    match Json.member_opt "weight_slices" v with
    | None -> Ok base.F.weight_slices
    | Some field -> (
      match Json.to_int field with
      | Ok k when k >= 1 -> Ok k
      | Ok _ -> Error "field \"weight_slices\": expected a count >= 1"
      | Error _ -> Error "field \"weight_slices\": expected an integer")
  in
  let* fusion = bool_field v "fusion" base.F.fusion in
  let* channels =
    match Json.member_opt "channels" v with
    | None -> Ok base.F.channels
    | Some field -> (
      match Json.to_int field with
      | Ok c when c >= 1 -> Ok c
      | Ok _ -> Error "field \"channels\": expected a count >= 1"
      | Error _ -> Error "field \"channels\": expected an integer")
  in
  Ok
    { F.feature_reuse;
      weight_prefetch;
      buffer_splitting;
      buffer_sharing;
      memory_bound_only;
      compensation;
      coloring;
      capacity_override;
      weight_slices;
      fusion;
      channels }

let target_of_json v =
  match Json.member_opt "model" v, Json.member_opt "graph" v with
  | Some _, Some _ -> Error "give either \"model\" or \"graph\", not both"
  | None, None -> Error "missing target: give \"model\" or \"graph\""
  | Some name_v, None ->
    let* name = Json.to_str name_v in
    Ok (Named name)
  | None, Some graph_v ->
    let* g = Dnn_serial.Codec.graph_of_json graph_v in
    Ok (Inline g)

let dtype_of_json v =
  match Json.member_opt "dtype" v with
  | None -> Ok Tensor.Dtype.I16
  | Some field ->
    let* s = Json.to_str field in
    (match Tensor.Dtype.of_string s with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "unknown dtype %S" s))

let device_of_json v =
  match Json.member_opt "device" v with
  | None -> Ok Fpga.Device.vu9p
  | Some field ->
    let* s = Json.to_str field in
    (match Fpga.Device.find s with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "unknown device %S" s))

let fw_options_of_json v =
  match Json.member_opt "options" v with
  | None -> Ok F.default_options
  | Some (Json.Obj _ as o) -> options_of_json o
  | Some _ -> Error "field \"options\": expected an object"

let compile_spec_of_json v =
  let* target = target_of_json v in
  let* dtype = dtype_of_json v in
  let* device = device_of_json v in
  let* options = fw_options_of_json v in
  Ok { target; dtype; device; options }

(* A policy knob: an optional string field decoded through a module's
   [of_string]. *)
let policy_field v key of_string fallback ~known =
  match Json.member_opt key v with
  | None -> Ok fallback
  | Some field -> (
    match Json.to_str field with
    | Error _ -> Error (Printf.sprintf "field %S: expected a string" key)
    | Ok s -> (
      match of_string s with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "field %S: unknown value %S (known: %s)" key s known)))

let run_tenant_of_json v =
  let* tenant_target = target_of_json v in
  let* count =
    match Json.member_opt "count" v with
    | None -> Ok 1
    | Some field -> (
      match Json.to_int field with
      | Ok n when n >= 1 -> Ok n
      | Ok _ -> Error "field \"count\": expected a count >= 1"
      | Error _ -> Error "field \"count\": expected an integer")
  in
  let* tenant_priority =
    match Json.member_opt "priority" v with
    | None -> Ok 0
    | Some field -> (
      match Json.to_int field with
      | Ok p -> Ok p
      | Error _ -> Error "field \"priority\": expected an integer")
  in
  (* [arrival_s] (seconds, verbatim) wins over [arrival_ms] when both
     are present: re-encoded requests carry the seconds field so the
     value — and thus the run digest — survives an encode/decode
     round-trip exactly, without a ms->s division. *)
  let* arrival_s =
    match Json.member_opt "arrival_s" v with
    | Some field -> (
      match Json.to_float field with
      | Ok s when s >= 0. -> Ok s
      | Ok _ -> Error "field \"arrival_s\": expected a non-negative number"
      | Error _ -> Error "field \"arrival_s\": expected a number")
    | None -> (
      match Json.member_opt "arrival_ms" v with
      | None -> Ok 0.
      | Some field -> (
        match Json.to_float field with
        | Ok ms when ms >= 0. -> Ok (ms /. 1e3)
        | Ok _ -> Error "field \"arrival_ms\": expected a non-negative number"
        | Error _ -> Error "field \"arrival_ms\": expected a number"))
  in
  Ok { tenant_target; count; tenant_priority; arrival_s }

let run_spec_of_json v =
  let* tenants_v = Json.member "tenants" v in
  let* items = Json.to_list tenants_v in
  let* () = if items = [] then Error "field \"tenants\": expected a non-empty list" else Ok () in
  let* tenants =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* tenant = run_tenant_of_json item in
        Ok (tenant :: acc))
      (Ok []) items
  in
  let tenants = List.rev tenants in
  let* run_dtype = dtype_of_json v in
  let* run_device = device_of_json v in
  let* run_options = fw_options_of_json v in
  let* arbitration =
    policy_field v "arbitration" Lcmm_runtime.Arbiter.of_string
      Lcmm_runtime.Arbiter.Fair_share ~known:"fair priority"
  in
  let* scheduler =
    policy_field v "scheduler" Lcmm_runtime.Scheduler.of_string
      Lcmm_runtime.Scheduler.Edf ~known:"greedy edf optimized"
  in
  let* sram_partition =
    policy_field v "partition" Lcmm_runtime.Partition.of_string
      Lcmm_runtime.Partition.Equal ~known:"equal demand"
  in
  let* overcommit =
    match Json.member_opt "overcommit" v with
    | None -> Ok 4.0
    | Some field -> (
      match Json.to_float field with
      | Ok x when x > 0. -> Ok x
      | Ok _ -> Error "field \"overcommit\": expected a positive number"
      | Error _ -> Error "field \"overcommit\": expected a number")
  in
  (* A spec with no active fault source is normalised to [None] here so
     the run digests — and thus the cache — of "no faults" and
     "faults that do nothing" coincide. *)
  let* faults =
    match Json.member_opt "faults" v with
    | None -> Ok None
    | Some field -> (
      match Json.to_str field with
      | Error _ -> Error "field \"faults\": expected a fault-spec string"
      | Ok s -> (
        match Fault.Spec.of_string s with
        | Ok spec ->
          (* Transport clauses are tier-level: a run op keeps only board
             faults, so transport-only specs normalise to the no-fault
             path (and the no-fault digest). *)
          Ok (if Fault.Spec.has_board_faults spec then Some spec else None)
        | Error msg -> Error (Printf.sprintf "field \"faults\": %s" msg)))
  in
  let* run_channels =
    match Json.member_opt "channels" v with
    | None -> Ok 1
    | Some field -> (
      match Json.to_int field with
      | Ok c when c >= 1 -> Ok c
      | Ok _ -> Error "field \"channels\": expected a count >= 1"
      | Error _ -> Error "field \"channels\": expected an integer")
  in
  Ok
    { tenants; run_dtype; run_device; arbitration; scheduler; sram_partition;
      overcommit; run_channels; run_options; faults }

(* Digests name plan-cache entries (and, persisted, files): only the hex
   strings we mint are accepted, so nothing else ever reaches a lookup
   path. *)
let digest_of_json v =
  let* field = Json.member "digest" v in
  match Json.to_str field with
  | Error _ -> Error "field \"digest\": expected a string"
  | Ok s ->
    if s <> "" && String.length s <= 128
       && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s
    then Ok s
    else Error "field \"digest\": expected a lowercase hex digest"

let rec request_of_json v =
  let* op_v = Json.member "op" v in
  let* op = Json.to_str op_v in
  let id = Json.member_opt "id" v in
  let* deadline_ms =
    match Json.member_opt "deadline_ms" v with
    | None -> Ok None
    | Some field -> (
      match Json.to_float field with
      | Ok ms when ms > 0. -> Ok (Some ms)
      | Ok _ -> Error "field \"deadline_ms\": expected a positive number"
      | Error _ -> Error "field \"deadline_ms\": expected a number")
  in
  let* checksum =
    match Json.member_opt "checksum" v with
    | None -> Ok false
    | Some (Json.Bool b) -> Ok b
    | Some _ -> Error "field \"checksum\": expected a boolean"
  in
  let* request =
    match op with
    | "compile" ->
      let* spec = compile_spec_of_json v in
      Ok (Compile spec)
    | "simulate" ->
      let* spec = compile_spec_of_json v in
      let* images =
        match Json.member_opt "images" v with
        | None -> Ok None
        | Some field -> (
          match Json.to_int field with
          | Ok n when n >= 1 -> Ok (Some n)
          | Ok _ -> Error "field \"images\": expected a count >= 1"
          | Error _ -> Error "field \"images\": expected an integer")
      in
      Ok (Simulate (spec, images))
    | "run" ->
      let* spec = run_spec_of_json v in
      Ok (Run spec)
    | "batch" ->
      let* requests_v = Json.member "requests" v in
      let* items = Json.to_list requests_v in
      let* subs =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* sub = request_of_json item in
            match sub.request with
            | Batch _ -> Error "nested batch requests are not supported"
            | Compile _ | Simulate _ | Run _ | Stats | Models | Cache_get _
            | Cache_put _ ->
              Ok (sub :: acc))
          (Ok []) items
      in
      Ok (Batch (List.rev subs))
    | "stats" -> Ok Stats
    | "models" -> Ok Models
    | "cache_get" ->
      let* digest = digest_of_json v in
      Ok (Cache_get digest)
    | "cache_put" ->
      let* digest = digest_of_json v in
      let* payload = Json.member "payload" v in
      Ok (Cache_put (digest, payload))
    | other ->
      Error
        (Printf.sprintf
           "unknown op %S (known: compile simulate run batch stats models \
            cache_get cache_put)"
           other)
  in
  Ok { id; deadline_ms; checksum; request }

let request_of_line line =
  let* v = Json.of_string line in
  request_of_json v

(* --- encoding (forwarding, transcripts, debugging) --- *)

let options_to_json (o : F.options) =
  Json.Obj
    ([ ("feature_reuse", Json.Bool o.F.feature_reuse);
      ("weight_prefetch", Json.Bool o.F.weight_prefetch);
      ("buffer_splitting", Json.Bool o.F.buffer_splitting);
      ("buffer_sharing", Json.Bool o.F.buffer_sharing);
      ("memory_bound_only", Json.Bool o.F.memory_bound_only);
      ( "compensation",
        Json.String
          (match o.F.compensation with
          | Lcmm.Dnnk.Table_approx -> "table"
          | Lcmm.Dnnk.Exact_iterative -> "exact") );
      ( "coloring",
        Json.String
          (match o.F.coloring with
          | Lcmm.Coloring.Min_growth -> "min_growth"
          | Lcmm.Coloring.First_fit -> "first_fit") );
      ( "capacity_override",
        match o.F.capacity_override with
        | None -> Json.Null
        | Some b -> Json.Int b );
      ("weight_slices", Json.Int o.F.weight_slices);
      ("fusion", Json.Bool o.F.fusion) ]
    (* Emitted only off-default so pre-channel encodings round-trip
       byte-identically. *)
    @ (if o.F.channels = 1 then [] else [ ("channels", Json.Int o.F.channels) ]))

(* The inverse of [request_of_json], used by the tier router to forward
   a parsed envelope to a backend shard.  The encoding must round-trip
   *exactly* — [request_of_line (to_string (envelope_to_json env))]
   yields an envelope with the same cache digest — or a shard would file
   the plan under a different key than the router probes for.  That is
   why tenant arrivals are emitted as the verbatim-seconds [arrival_s]
   field rather than re-derived milliseconds. *)

let target_fields = function
  | Named name -> [ ("model", Json.String name) ]
  | Inline g -> [ ("graph", Dnn_serial.Codec.graph_to_json g) ]

let compile_spec_fields (spec : compile_spec) =
  target_fields spec.target
  @ [ ("dtype", Json.String (Tensor.Dtype.to_string spec.dtype));
      ("device", Json.String spec.device.Fpga.Device.device_name);
      ("options", options_to_json spec.options) ]

let run_tenant_to_json (tn : run_tenant) =
  Json.Obj
    (target_fields tn.tenant_target
    @ [ ("count", Json.Int tn.count);
        ("priority", Json.Int tn.tenant_priority);
        ("arrival_s", Json.Float tn.arrival_s) ])

let run_spec_fields (spec : run_spec) =
  [ ("tenants", Json.List (List.map run_tenant_to_json spec.tenants));
    ("dtype", Json.String (Tensor.Dtype.to_string spec.run_dtype));
    ("device", Json.String spec.run_device.Fpga.Device.device_name);
    ("options", options_to_json spec.run_options);
    ("arbitration", Json.String (Lcmm_runtime.Arbiter.to_string spec.arbitration));
    ("scheduler", Json.String (Lcmm_runtime.Scheduler.to_string spec.scheduler));
    ("partition", Json.String (Lcmm_runtime.Partition.to_string spec.sram_partition));
    ("overcommit", Json.Float spec.overcommit) ]
  @ (if spec.run_channels = 1 then []
     else [ ("channels", Json.Int spec.run_channels) ])
  @
  match spec.faults with
  | None -> []
  | Some f -> [ ("faults", Json.String (Fault.Spec.to_string f)) ]

let rec envelope_to_json (env : envelope) =
  let body =
    match env.request with
    | Compile spec -> compile_spec_fields spec
    | Simulate (spec, images) ->
      compile_spec_fields spec
      @ (match images with None -> [] | Some n -> [ ("images", Json.Int n) ])
    | Run spec -> run_spec_fields spec
    | Batch subs ->
      [ ("requests", Json.List (List.map envelope_to_json subs)) ]
    | Stats | Models -> []
    | Cache_get digest -> [ ("digest", Json.String digest) ]
    | Cache_put (digest, payload) ->
      [ ("digest", Json.String digest); ("payload", payload) ]
  in
  Json.Obj
    (( ("op", Json.String (op_name env.request))
     :: (match env.id with None -> [] | Some id -> [ ("id", id) ]) )
    @ (match env.deadline_ms with
      | None -> []
      | Some ms -> [ ("deadline_ms", Json.Float ms) ])
    @ (if env.checksum then [ ("checksum", Json.Bool true) ] else [])
    @ body)
