module Json = Dnn_serial.Json

type op_stats = {
  mutable count : int;
  mutable errors : int;
  mutable total_s : float;
  mutable max_s : float;
}

type t = {
  mutex : Mutex.t;
  by_op : (string, op_stats) Hashtbl.t;
  mutable requests : int;
  mutable error_count : int;
}

let create () =
  { mutex = Mutex.create ();
    by_op = Hashtbl.create 8;
    requests = 0;
    error_count = 0 }

let with_lock t fn =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) fn

let record t ~op ~ok ~seconds =
  with_lock t (fun () ->
      let s =
        match Hashtbl.find_opt t.by_op op with
        | Some s -> s
        | None ->
          let s = { count = 0; errors = 0; total_s = 0.; max_s = 0. } in
          Hashtbl.add t.by_op op s;
          s
      in
      s.count <- s.count + 1;
      s.total_s <- s.total_s +. seconds;
      if seconds > s.max_s then s.max_s <- seconds;
      t.requests <- t.requests + 1;
      if not ok then begin
        s.errors <- s.errors + 1;
        t.error_count <- t.error_count + 1
      end)

let requests_total t = with_lock t (fun () -> t.requests)

let errors_total t = with_lock t (fun () -> t.error_count)

let snapshot t =
  with_lock t (fun () ->
      let ops =
        Hashtbl.fold (fun op s acc -> (op, s) :: acc) t.by_op []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (op, s) ->
               ( op,
                 Json.Obj
                   [ ("count", Json.Int s.count);
                     ("errors", Json.Int s.errors);
                     ("total_ms", Json.Float (s.total_s *. 1e3));
                     ("max_ms", Json.Float (s.max_s *. 1e3)) ] ))
      in
      Json.Obj
        [ ("requests", Json.Int t.requests);
          ("errors", Json.Int t.error_count); ("by_op", Json.Obj ops) ])
