module Json = Dnn_serial.Json

(* --- percentile estimation over a sample --- *)

(* Linear interpolation between order statistics (the "type 7" estimator
   most tools default to): rank q*(n-1) into the sorted sample, fractional
   ranks interpolated between neighbours.  Total on every input: an empty
   sample reports 0 (not NaN — the stats op serializes these into JSON,
   where NaN is unrepresentable), a singleton reports its only value at
   every quantile, and q is clamped into [0,1] with NaN treated as 0. *)
let percentile_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else if n = 1 then sorted.(0)
  else begin
    let q = if Float.is_nan q then 0. else Float.max 0. (Float.min 1. q) in
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    if frac = 0. then sorted.(lo)
    else sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let percentile sample q =
  let sorted = Array.copy sample in
  Array.sort Float.compare sorted;
  percentile_sorted sorted q

(* --- bounded reservoir (Vitter's algorithm R) --- *)

module Reservoir = struct
  type t = {
    slots : float array;
    mutable seen : int;
    rng : Random.State.t;
  }

  let create ?(capacity = 1024) ?(seed = 0x5eed) () =
    if capacity < 1 then invalid_arg "Reservoir.create: capacity must be >= 1";
    { slots = Array.make capacity 0.;
      seen = 0;
      rng = Random.State.make [| seed |] }

  let add t x =
    let cap = Array.length t.slots in
    if t.seen < cap then t.slots.(t.seen) <- x
    else begin
      (* Keep each of the [seen+1] values with equal probability. *)
      let j = Random.State.int t.rng (t.seen + 1) in
      if j < cap then t.slots.(j) <- x
    end;
    t.seen <- t.seen + 1

  let count t = t.seen

  let sample t = Array.sub t.slots 0 (min t.seen (Array.length t.slots))

  let percentile t q = percentile (sample t) q
end

(* --- per-op request aggregates --- *)

type op_stats = {
  mutable count : int;
  mutable errors : int;
  mutable total_s : float;
  mutable max_s : float;
  latencies : Reservoir.t;
}

type t = {
  mutex : Mutex.t;
  by_op : (string, op_stats) Hashtbl.t;
  mutable requests : int;
  mutable error_count : int;
}

let create () =
  { mutex = Mutex.create ();
    by_op = Hashtbl.create 8;
    requests = 0;
    error_count = 0 }

let with_lock t fn =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) fn

let record t ~op ~ok ~seconds =
  with_lock t (fun () ->
      let s =
        match Hashtbl.find_opt t.by_op op with
        | Some s -> s
        | None ->
          let s =
            { count = 0; errors = 0; total_s = 0.; max_s = 0.;
              latencies = Reservoir.create () }
          in
          Hashtbl.add t.by_op op s;
          s
      in
      s.count <- s.count + 1;
      s.total_s <- s.total_s +. seconds;
      if seconds > s.max_s then s.max_s <- seconds;
      Reservoir.add s.latencies seconds;
      t.requests <- t.requests + 1;
      if not ok then begin
        s.errors <- s.errors + 1;
        t.error_count <- t.error_count + 1
      end)

let requests_total t = with_lock t (fun () -> t.requests)

let errors_total t = with_lock t (fun () -> t.error_count)

let snapshot t =
  with_lock t (fun () ->
      let ops =
        Hashtbl.fold (fun op s acc -> (op, s) :: acc) t.by_op []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (op, s) ->
               (* One sorted copy serves all three percentiles. *)
               let sorted = Reservoir.sample s.latencies in
               Array.sort Float.compare sorted;
               let p q = percentile_sorted sorted q *. 1e3 in
               ( op,
                 Json.Obj
                   [ ("count", Json.Int s.count);
                     ("errors", Json.Int s.errors);
                     ("total_ms", Json.Float (s.total_s *. 1e3));
                     ("max_ms", Json.Float (s.max_s *. 1e3));
                     ("p50_ms", Json.Float (p 0.50));
                     ("p99_ms", Json.Float (p 0.99));
                     ("p999_ms", Json.Float (p 0.999)) ] ))
      in
      Json.Obj
        [ ("requests", Json.Int t.requests);
          ("errors", Json.Int t.error_count); ("by_op", Json.Obj ops) ])
