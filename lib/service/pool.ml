(* The worker pool moved into the core library so planner passes can
   fan out on it ([Lcmm.Pool]); this alias keeps the service's
   historical [Lcmm_service.Pool] path working. *)
include Lcmm.Pool
