let src = Logs.Src.create "lcmm.service.server" ~doc:"Plan service transport"

module Log = (val Logs.src_log src : Logs.LOG)

(* All serve loops are handler-based underneath: the engine variants
   close over [Engine.handle_line], and the tier router reuses the same
   transport with its own line handler. *)

let serve_lines handler ic oc =
  let rec loop () =
    match Dnn_serial.Wire.read_request ic with
    | Ok None -> ()
    | Error msg ->
      (* Framing failure (peer died mid-write, channel error): answer
         with a structured parse-class error — the peer may have only
         half-closed its write side — then stop serving the
         connection.  Never hand a partial record to the JSON parser. *)
      Log.warn (fun m -> m "input error: %s" msg);
      (try
         output_string oc
           (Dnn_serial.Wire.to_line (Dnn_serial.Wire.error ~op:"parse" msg));
         flush oc
       with Sys_error _ | Unix.Unix_error _ -> ())
    | Ok (Some line) ->
      output_string oc (handler line);
      flush oc;
      loop ()
  in
  loop ()

let serve_channels_with handler ic oc = serve_lines handler ic oc

let serve_channels ?timing engine ic oc =
  serve_lines (Engine.handle_line ?timing engine) ic oc

let serve_stdio ?timing engine = serve_channels ?timing engine stdin stdout

(* [accept] is where a signal lands while the server sleeps; EINTR there
   must restart the wait, not kill the listener. *)
let rec accept_retry sock =
  match Unix.accept ~cloexec:true sock with
  | conn -> conn
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_retry sock

let serve_unix_socket_with handler ~path =
  (* A client vanishing mid-response must surface as a write error on
     that connection, not as a process-killing SIGPIPE.  (No-op on
     platforms without the signal.) *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  if Sys.file_exists path then Unix.unlink path;
  (* Every socket is close-on-exec: the tier router forks shard
     processes from connection threads, and an inherited connection FD
     would hold the peer open long after this process closes it. *)
  let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  at_exit (fun () -> try Unix.unlink path with Unix.Unix_error _ -> ());
  Log.app (fun m -> m "listening on %s" path);
  let rec accept_loop () =
    let conn, _ = accept_retry sock in
    Log.info (fun m -> m "connection accepted");
    (* One thread per connection, so a long-lived router connection and
       a peer-fill probe from a sibling shard overlap instead of
       queueing behind each other.  The engine underneath is
       thread-safe (cache, pool and metrics are all mutexed). *)
    let (_ : Thread.t) =
      Thread.create
        (fun conn ->
          let ic = Unix.in_channel_of_descr conn in
          let oc = Unix.out_channel_of_descr conn in
          (* One connection dying — mid-read or mid-write
             (EPIPE/ECONNRESET surface as Sys_error or Unix_error from
             the channel layer) — never takes its thread down noisily,
             and never the accept loop at all. *)
          (try serve_lines handler ic oc with
          | Sys_error msg -> Log.warn (fun m -> m "connection error: %s" msg)
          | Unix.Unix_error (err, fn, _) ->
            Log.warn (fun m ->
                m "connection error: %s in %s" (Unix.error_message err) fn));
          (try Unix.close conn with Unix.Unix_error _ -> ());
          Log.info (fun m -> m "connection closed"))
        conn
    in
    accept_loop ()
  in
  accept_loop ()

let serve_unix_socket ?timing engine ~path =
  serve_unix_socket_with (Engine.handle_line ?timing engine) ~path
