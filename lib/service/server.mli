(** Serve loops: NDJSON requests from stdio or a Unix domain socket.

    Both loops are single-connection sequential readers — within one
    connection, parallelism comes from [batch] requests fanning out over
    the engine's pool.  Responses are written and flushed one line per
    request, in request order. *)

val serve_channels :
  ?timing:bool -> Engine.t -> in_channel -> out_channel -> unit
(** Read request lines until end of input, answering each on [oc].
    Blank lines are skipped; unreadable input ends the loop. *)

val serve_stdio : ?timing:bool -> Engine.t -> unit

val serve_unix_socket : ?timing:bool -> Engine.t -> path:string -> unit
(** Bind (replacing a stale socket file), listen and accept forever,
    serving one connection at a time; the socket file is removed on
    normal process exit.  Raises [Unix.Unix_error] when the bind
    fails. *)
