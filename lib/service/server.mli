(** Serve loops: NDJSON requests from stdio or a Unix domain socket.

    Within one connection requests are answered sequentially, one line
    per request, in request order (in-connection parallelism comes from
    [batch] requests fanning out over the engine's pool).  The socket
    listener accepts concurrently — each connection is served on its own
    thread — so a shard can overlap requests from the router with
    peer-fill probes from sibling shards.

    The [_with] variants take a raw [line -> response-line] handler
    instead of an engine; the tier router serves its front socket
    through them.  Handlers must be thread-safe and must return a
    newline-terminated response line ({!Engine.handle_line} is both). *)

val serve_channels :
  ?timing:bool -> Engine.t -> in_channel -> out_channel -> unit
(** Read request lines until end of input, answering each on [oc].
    Blank lines are skipped; unreadable input ends the loop. *)

val serve_channels_with : (string -> string) -> in_channel -> out_channel -> unit

val serve_stdio : ?timing:bool -> Engine.t -> unit

val serve_unix_socket : ?timing:bool -> Engine.t -> path:string -> unit
(** Bind (replacing a stale socket file), listen and accept forever,
    one handler thread per connection; the socket file is removed on
    normal process exit.  Raises [Unix.Unix_error] when the bind
    fails. *)

val serve_unix_socket_with : (string -> string) -> path:string -> unit
