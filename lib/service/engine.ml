module Json = Dnn_serial.Json
module F = Lcmm.Framework
module P = Protocol

let src = Logs.Src.create "lcmm.service" ~doc:"Plan-compilation service"

module Log = (val Logs.src_log src : Logs.LOG)

(* Per-op circuit breaker.  Consecutive service-side failures (internal
   errors, deadline misses — never client mistakes) trip the op open;
   while open, requests are shed immediately with a structured
   "unavailable" error instead of queueing onto a pool that keeps
   failing.  After the cooldown one probe is let through (half-open);
   its outcome closes or re-opens the circuit. *)
type breaker_state = Closed | Open of float (* shed until *) | Half_open

type breaker = {
  mutable bstate : breaker_state;
  mutable failures : int;  (* consecutive counted failures *)
  mutable trips : int;
  mutable shed : int;
}

type t = {
  plan_cache : Plan_cache.t;
  worker_pool : Pool.t;
  meters : Metrics.t;
  default_deadline_ms : float option;
  breakers : (string, breaker) Hashtbl.t;
  breaker_mutex : Mutex.t;
  breaker_threshold : int;
  breaker_cooldown_s : float;
}

let create ?cache ?pool ?metrics ?deadline_ms ?(breaker_threshold = 5)
    ?(breaker_cooldown_ms = 1000.) () =
  (match deadline_ms with
  | Some ms when ms <= 0. ->
    invalid_arg "Engine.create: deadline_ms must be positive"
  | _ -> ());
  if breaker_threshold < 1 then
    invalid_arg "Engine.create: breaker_threshold must be >= 1";
  if breaker_cooldown_ms <= 0. then
    invalid_arg "Engine.create: breaker_cooldown_ms must be positive";
  { plan_cache = (match cache with Some c -> c | None -> Plan_cache.create ());
    worker_pool = (match pool with Some p -> p | None -> Pool.create ());
    meters = (match metrics with Some m -> m | None -> Metrics.create ());
    default_deadline_ms = deadline_ms;
    breakers = Hashtbl.create 8;
    breaker_mutex = Mutex.create ();
    breaker_threshold;
    breaker_cooldown_s = breaker_cooldown_ms /. 1e3 }

let with_breakers t fn =
  Mutex.lock t.breaker_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.breaker_mutex) fn

let breaker_of t op =
  match Hashtbl.find_opt t.breakers op with
  | Some b -> b
  | None ->
    let b = { bstate = Closed; failures = 0; trips = 0; shed = 0 } in
    Hashtbl.add t.breakers op b;
    b

(* [Some msg] when the request must be shed without running. *)
let breaker_admit t op =
  let now = Unix.gettimeofday () in
  with_breakers t (fun () ->
      let b = breaker_of t op in
      match b.bstate with
      | Closed -> None
      | Open until when now >= until ->
        b.bstate <- Half_open;  (* this request is the probe *)
        None
      | Open until ->
        b.shed <- b.shed + 1;
        Some
          (Printf.sprintf
             "unavailable: %s circuit open after %d consecutive failures; \
              retry in %.0f ms"
             op b.failures
             (Float.max 1. ((until -. now) *. 1e3)))
      | Half_open ->
        b.shed <- b.shed + 1;
        Some
          (Printf.sprintf
             "unavailable: %s circuit half-open, probe in flight" op))

(* Only service-side failures count against the breaker; a client
   mistake (unknown model, bad spec) proves the service is answering. *)
let breaker_counts msg =
  String.starts_with ~prefix:"internal: " msg
  || String.starts_with ~prefix:"deadline exceeded" msg

let breaker_record t op outcome =
  let counted_failure =
    match outcome with Ok _ -> false | Error msg -> breaker_counts msg
  in
  let now = Unix.gettimeofday () in
  with_breakers t (fun () ->
      let b = breaker_of t op in
      if counted_failure then begin
        b.failures <- b.failures + 1;
        match b.bstate with
        | Half_open ->
          b.bstate <- Open (now +. t.breaker_cooldown_s);
          b.trips <- b.trips + 1
        | Closed when b.failures >= t.breaker_threshold ->
          b.bstate <- Open (now +. t.breaker_cooldown_s);
          b.trips <- b.trips + 1
        | Closed | Open _ -> ()
      end
      else begin
        (* Success — or a client error, which still proves liveness —
           closes the circuit and clears the streak. *)
        b.bstate <- Closed;
        b.failures <- 0
      end)

let breakers_json t =
  with_breakers t (fun () ->
      let entries =
        Hashtbl.fold (fun op b acc -> (op, b) :: acc) t.breakers []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      Json.Obj
        (List.map
           (fun (op, b) ->
             ( op,
               Json.Obj
                 [ ( "state",
                     Json.String
                       (match b.bstate with
                       | Closed -> "closed"
                       | Open _ -> "open"
                       | Half_open -> "half_open") );
                   ("failures", Json.Int b.failures);
                   ("trips", Json.Int b.trips);
                   ("shed", Json.Int b.shed) ] ))
           entries))

type cache_status = Hit | Miss | Uncached

type response = {
  id : Json.t option;
  op : string;
  cache : cache_status;
  elapsed_s : float;
  outcome : (Json.t, string) result;
  subs : response list;
  checksum : bool;
      (* The request asked for end-to-end integrity: rendering adds a
         "sum" digest of the compact result payload. *)
}

(* --- result payload encoders --- *)

let report_json (r : F.design_report) =
  Json.Obj
    [ ("style", Json.String r.F.style_name);
      ("latency_ms", Json.Float (r.F.latency_seconds *. 1e3));
      ("tops", Json.Float r.F.tops);
      ("freq_mhz", Json.Float r.F.freq_mhz);
      ("dsp_util", Json.Float r.F.dsp_util);
      ("clb_util", Json.Float r.F.clb_util);
      ("sram_util", Json.Float r.F.sram_util);
      ("bram_util", Json.Float r.F.bram_util);
      ("uram_util", Json.Float r.F.uram_util) ]

let spec_fields (spec : P.compile_spec) ~digest =
  [ ("model", Json.String (P.target_name spec.P.target));
    ("dtype", Json.String (Tensor.Dtype.to_string spec.P.dtype));
    ("device", Json.String spec.P.device.Fpga.Device.device_name);
    ("digest", Json.String digest) ]

let resolve_target = function
  | P.Inline g -> Ok g
  | P.Named name -> (
    match Models.Zoo.find name with
    | Some entry -> Ok (entry.Models.Zoo.build ())
    | None ->
      Error
        (Printf.sprintf "unknown model %S (known: %s)" name
           (String.concat ", "
              (List.map (fun e -> e.Models.Zoo.model_name) Models.Zoo.all))))

let resolve_graph (spec : P.compile_spec) = resolve_target spec.P.target

(* Fused-layer/weight-streaming pass-through: with [options.fusion] the
   reported LCMM plan is the fusion pass's effective plan and the
   payload carries the decisions; with it off the comparison passes
   through untouched, so cached fusion-off responses stay byte-stable. *)
let fused_comparison (c : F.comparison) g =
  if not c.F.lcmm_plan.F.options.F.fusion then (c, None)
  else begin
    let fz = Lcmm_fusion.Fusion.apply c.F.lcmm_plan in
    let plan = Lcmm_fusion.Fusion.effective_plan fz in
    let lcmm = F.report_of_plan ~style_name:"LCMM+fusion" g plan in
    ( { c with
        F.lcmm_plan = plan;
        lcmm;
        speedup = c.F.umm.F.latency_seconds /. lcmm.F.latency_seconds },
      Some fz )
  end

let fusion_fields = function
  | None -> []
  | Some fz ->
    let module Fz = Lcmm_fusion.Fusion in
    let module Seg = Lcmm_fusion.Segmentation in
    [ ( "fusion",
        Json.Obj
          [ ("segments", Json.Int (List.length fz.Fz.segments));
            ( "fused_nodes",
              Json.Int
                (List.fold_left
                   (fun a (s : Seg.segment) ->
                     a + s.Seg.last - s.Seg.first + 1)
                   0 fz.Fz.segments) );
            ("streamed_weights", Json.Int (List.length fz.Fz.streamed));
            ("fifo_bytes", Json.Int fz.Fz.fifo_bytes);
            ("ddr_bytes_saved", Json.Int (Fz.ddr_bytes_saved fz));
            ("peak_sram_bytes", Json.Int fz.Fz.peak_sram_bytes);
            ("latency_ms", Json.Float (fz.Fz.predicted_latency *. 1e3)) ] ) ]

let compile_payload (spec : P.compile_spec) ~digest g =
  let c =
    F.compare_designs ~options:spec.P.options ~device:spec.P.device
      ~model:(P.target_name spec.P.target) spec.P.dtype g
  in
  let c, fz = fused_comparison c g in
  let plan = c.F.lcmm_plan in
  let helped, bound = F.helped_layers plan in
  Json.Obj
    (spec_fields spec ~digest
    @ [ ("umm", report_json c.F.umm); ("lcmm", report_json c.F.lcmm);
        ("speedup", Json.Float c.F.speedup);
        ("pol", Json.Float plan.F.pol);
        ("helped_layers", Json.Int helped);
        ("memory_bound_layers", Json.Int bound);
        ("tensor_sram_bytes", Json.Int plan.F.tensor_sram_bytes);
        ("splitting_iterations", Json.Int plan.F.splitting_iterations);
        ("buffers_chosen", Json.Int (List.length plan.F.allocation.Lcmm.Dnnk.chosen));
        ("buffers_spilled", Json.Int (List.length plan.F.allocation.Lcmm.Dnnk.spilled));
        ("options", P.options_to_json spec.P.options) ]
    @ fusion_fields fz)

let simulate_payload (spec : P.compile_spec) ~digest ~images g =
  let c =
    F.compare_designs ~options:spec.P.options ~device:spec.P.device
      ~model:(P.target_name spec.P.target) spec.P.dtype g
  in
  let c, fz = fused_comparison c g in
  let plan = c.F.lcmm_plan in
  let metric = plan.F.metric in
  let on_chip = plan.F.allocation.Lcmm.Dnnk.on_chip in
  let umm = Sim.Engine.simulate_umm metric in
  let lcmm = Sim.Engine.simulate ?prefetch:plan.F.prefetch metric ~on_chip in
  let batch_fields =
    match images with
    | None -> []
    | Some n ->
      let b =
        Sim.Engine.simulate_batch ?prefetch:plan.F.prefetch ~images:n metric
          ~on_chip
      in
      [ ( "batch",
          Json.Obj
            [ ("images", Json.Int n);
              ("first_image_ms", Json.Float (b.Sim.Engine.first_image *. 1e3));
              ("steady_image_ms", Json.Float (b.Sim.Engine.steady_image *. 1e3));
              ("total_ms", Json.Float (b.Sim.Engine.batch_total *. 1e3));
              ("images_per_second", Json.Float b.Sim.Engine.images_per_second) ]
        ) ]
  in
  Json.Obj
    (spec_fields spec ~digest
    @ [ ("umm_ms", Json.Float (umm.Sim.Engine.total *. 1e3));
        ("lcmm_ms", Json.Float (lcmm.Sim.Engine.total *. 1e3));
        ("speedup", Json.Float (umm.Sim.Engine.total /. lcmm.Sim.Engine.total));
        ("prefetch_wait_ms", Json.Float (lcmm.Sim.Engine.prefetch_wait *. 1e3));
        ("wt_channel_busy_ms", Json.Float (lcmm.Sim.Engine.wt_channel_busy *. 1e3)) ]
    @ batch_fields @ fusion_fields fz)

(* Multi-tenant run: expand counts into per-instance runtime specs.  An
   inline graph gets a content-derived model key so two different
   shipped graphs never share the runtime's per-model compilation
   cache. *)
let resolve_tenants (spec : P.run_spec) =
  let counter = Hashtbl.create 8 in
  let rec go acc tags = function
    | [] -> Ok (List.rev acc, List.rev tags)
    | (tn : P.run_tenant) :: rest -> (
      match resolve_target tn.P.tenant_target with
      | Error msg -> Error msg
      | Ok g ->
        let model =
          match tn.P.tenant_target with
          | P.Named name -> name
          | P.Inline g ->
            "inline:"
            ^ String.sub
                (Digest.to_hex
                   (Digest.string (Dnn_serial.Codec.to_string ~pretty:false g)))
                0 8
        in
        let instances =
          List.init tn.P.count (fun _ ->
              let k =
                Option.value ~default:0 (Hashtbl.find_opt counter model)
              in
              Hashtbl.replace counter model (k + 1);
              { Lcmm_runtime.Runtime.name = Printf.sprintf "%s#%d" model k;
                model;
                graph = g;
                priority = tn.P.tenant_priority;
                arrival = tn.P.arrival_s })
        in
        let tag =
          Printf.sprintf "count:%d|prio:%d|arr:%.17g" tn.P.count
            tn.P.tenant_priority tn.P.arrival_s
        in
        go (List.rev_append instances acc) ((g, tag) :: tags) rest)
  in
  go [] [] spec.P.tenants

let run_payload (spec : P.run_spec) ~digest specs =
  let options =
    { Lcmm_runtime.Runtime.dtype = spec.P.run_dtype;
      device = spec.P.run_device;
      arbitration = spec.P.arbitration;
      scheduler = spec.P.scheduler;
      channels = spec.P.run_channels;
      schedule_rounds = Lcmm_runtime.Runtime.default_options.schedule_rounds;
      partition = spec.P.sram_partition;
      overcommit = spec.P.overcommit;
      min_grant_bytes = Lcmm_runtime.Admission.default_min_grant;
      fw_options = spec.P.run_options;
      faults = spec.P.faults }
  in
  let report = Lcmm_runtime.Runtime.run options specs in
  match Lcmm_runtime.Report.to_json report with
  | Json.Obj fields -> Json.Obj (("digest", Json.String digest) :: fields)
  | other -> other

let models_payload () =
  Json.List
    (List.map
       (fun e ->
         let g = e.Models.Zoo.build () in
         Json.Obj
           [ ("name", Json.String e.Models.Zoo.model_name);
             ("nodes", Json.Int (Dnn_graph.Graph.node_count g));
             ( "gmacs",
               Json.Float (float_of_int (Dnn_graph.Graph.total_macs g) /. 1e9) );
             ( "weight_mb_i8",
               Json.Float
                 (float_of_int (Dnn_graph.Graph.weight_bytes Tensor.Dtype.I8 g)
                 /. 1e6) ) ])
       Models.Zoo.all)

let stats_payload t =
  let busy = Pool.busy t.worker_pool in
  Json.Obj
    [ ("cache", Plan_cache.stats_json t.plan_cache);
      ( "pool",
        Json.Obj
          [ ("domains", Json.Int (Pool.size t.worker_pool));
            ("busy", Json.Int busy);
            ("queued", Json.Int (Pool.queued t.worker_pool));
            ("restarts", Json.Int (Pool.restarts t.worker_pool)) ] );
      ("breakers", breakers_json t);
      ("metrics", Metrics.snapshot t.meters);
      (* Cumulative planner pass times (process-wide, microseconds)
         across every plan compiled so far, cache misses included. *)
      ( "pass_times_us",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Float v))
             (Lcmm.Framework.pass_times_assoc
                (Lcmm.Framework.pass_times_total ()))) ) ]

(* --- request execution --- *)

(* Compile and simulate cache under a digest that covers every input the
   passes read; the op name and simulate's batch size are folded in as
   [extra] so the two namespaces never collide. *)
let cacheable_digest (spec : P.compile_spec) ~extra g =
  Cache_key.request_digest ~extra ~dtype:spec.P.dtype ~device:spec.P.device
    ~options:spec.P.options g

let compile_digest spec g = cacheable_digest spec ~extra:[ "compile" ] g

let simulate_digest spec ~images g =
  let extra =
    [ "simulate";
      (match images with None -> "single" | Some n -> string_of_int n) ]
  in
  cacheable_digest spec ~extra g

let run_request_digest (spec : P.run_spec) tagged_graphs =
  let extra =
    [ "run";
      Lcmm_runtime.Arbiter.to_string spec.P.arbitration;
      Lcmm_runtime.Scheduler.to_string spec.P.scheduler;
      Lcmm_runtime.Partition.to_string spec.P.sram_partition;
      Printf.sprintf "%.17g" spec.P.overcommit ]
    (* Channel count folds in only past one channel, keeping every
       pre-channel digest — and so every cached payload — valid. *)
    @ (if spec.P.run_channels = 1 then []
       else [ "channels:" ^ string_of_int spec.P.run_channels ])
    @
    (* The fault spec changes the payload, so it must change the
       digest; its absence keeps the fault-free digest as-is. *)
    (match spec.P.faults with
    | None -> []
    | Some f -> [ "faults:" ^ Fault.Spec.to_string f ])
  in
  Cache_key.run_digest ~extra ~dtype:spec.P.run_dtype
    ~device:spec.P.run_device ~options:spec.P.run_options tagged_graphs

(* The digest a request would cache under, computed without running it.
   The tier router keys its hash ring and front cache on this — it must
   agree exactly with what [handle_leaf] files the payload under, which
   is why both go through the helpers above.  [Ok None] marks requests
   with no stable identity (batch, stats, models): those bypass the
   cache tiers and route by other means. *)
let route_digest (request : P.request) =
  try
    match request with
    | P.Compile spec -> (
      match resolve_graph spec with
      | Error msg -> Error msg
      | Ok g -> Ok (Some (compile_digest spec g)))
    | P.Simulate (spec, images) -> (
      match resolve_graph spec with
      | Error msg -> Error msg
      | Ok g -> Ok (Some (simulate_digest spec ~images g)))
    | P.Run spec -> (
      match resolve_tenants spec with
      | Error msg -> Error msg
      | Ok (_, tagged_graphs) -> Ok (Some (run_request_digest spec tagged_graphs)))
    | P.Cache_get digest | P.Cache_put (digest, _) -> Ok (Some digest)
    | P.Batch _ | P.Stats | P.Models -> Ok None
  with e -> Error ("internal: " ^ Printexc.to_string e)

let through_cache t ~digest compute =
  match Plan_cache.find t.plan_cache digest with
  | Some payload -> (Hit, Ok payload)
  | None -> (
    match compute () with
    | payload ->
      Plan_cache.put t.plan_cache digest payload;
      (Miss, Ok payload)
    | exception Invalid_argument msg -> (Miss, Error msg)
    | exception Failure msg -> (Miss, Error msg)
    (* Any other escape is a bug in the passes, but one request must
       never take the connection down: degrade to an error response. *)
    | exception e -> (Miss, Error ("internal: " ^ Printexc.to_string e)))

(* Fully execute one non-batch request on the current thread. *)
let handle_leaf t (env : P.envelope) =
  let t0 = Unix.gettimeofday () in
  let op = P.op_name env.P.request in
  let cache_status, outcome =
    (* Nothing a single request does may take the connection down: any
       exception the arms below leak (model builders, digesting, the
       encoders) degrades to an error response on this request alone. *)
    try
      match env.P.request with
      | P.Batch _ -> (Uncached, Error "nested batch requests are not supported")
      | P.Stats -> (Uncached, Ok (stats_payload t))
      | P.Models -> (Uncached, Ok (models_payload ()))
      (* Direct cache access for the tier's peer-fill path: a probe
         answers from this process's cache only (no compute), a put
         seeds it with a payload compiled elsewhere. *)
      | P.Cache_get digest -> (
        match Plan_cache.find t.plan_cache digest with
        | Some payload -> (Hit, Ok payload)
        | None -> (Uncached, Error (Printf.sprintf "not cached: %s" digest)))
      | P.Cache_put (digest, payload) ->
        Plan_cache.put t.plan_cache digest payload;
        (Uncached, Ok (Json.Obj [ ("stored", Json.Bool true) ]))
      | P.Compile spec -> (
        match resolve_graph spec with
        | Error msg -> (Uncached, Error msg)
        | Ok g ->
          let digest = compile_digest spec g in
          through_cache t ~digest (fun () -> compile_payload spec ~digest g))
      | P.Simulate (spec, images) -> (
        match resolve_graph spec with
        | Error msg -> (Uncached, Error msg)
        | Ok g ->
          let digest = simulate_digest spec ~images g in
          through_cache t ~digest (fun () ->
              simulate_payload spec ~digest ~images g))
      | P.Run spec -> (
        match resolve_tenants spec with
        | Error msg -> (Uncached, Error msg)
        | Ok (specs, tagged_graphs) ->
          let digest = run_request_digest spec tagged_graphs in
          through_cache t ~digest (fun () -> run_payload spec ~digest specs))
    with e -> (Uncached, Error ("internal: " ^ Printexc.to_string e))
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  Metrics.record t.meters ~op ~ok:(Result.is_ok outcome) ~seconds:elapsed_s;
  Log.info (fun m ->
      m "%s%s -> %s in %.2f ms" op
        (match env.P.request with
        | P.Compile spec | P.Simulate (spec, _) ->
          " " ^ P.target_name spec.P.target
        | P.Run spec ->
          Printf.sprintf " %d tenant spec(s)" (List.length spec.P.tenants)
        | P.Cache_get digest | P.Cache_put (digest, _) -> " " ^ digest
        | P.Batch _ | P.Stats | P.Models -> "")
        (match cache_status, outcome with
        | Hit, _ -> "hit"
        | Miss, Ok _ -> "miss"
        | Miss, Error _ | Uncached, Error _ -> "error"
        | Uncached, Ok _ -> "ok")
        (elapsed_s *. 1e3));
  { id = env.P.id; op; cache = cache_status; elapsed_s; outcome; subs = [];
    checksum = env.P.checksum }

let deadline_error ms =
  Printf.sprintf "deadline exceeded: still computing after the %.0f ms budget"
    ms

let timeout_response t (env : P.envelope) ~elapsed_s ~ms =
  let op = P.op_name env.P.request in
  Metrics.record t.meters ~op ~ok:false ~seconds:elapsed_s;
  Log.info (fun m -> m "%s -> deadline exceeded after %.2f ms" op (elapsed_s *. 1e3));
  { id = env.P.id;
    op;
    cache = Uncached;
    elapsed_s;
    outcome = Error (deadline_error ms);
    subs = [];
    checksum = env.P.checksum }

let shed_response t (env : P.envelope) msg =
  let op = P.op_name env.P.request in
  Metrics.record t.meters ~op ~ok:false ~seconds:0.;
  Log.info (fun m -> m "%s -> shed: %s" op msg);
  { id = env.P.id; op; cache = Uncached; elapsed_s = 0.; outcome = Error msg;
    subs = []; checksum = env.P.checksum }

(* Which requests the circuit breaker guards: the expensive pool-bound
   compute ops.  [stats]/[models] must keep answering even when the
   compute path is tripped — that's how an operator sees the trip. *)
let breaker_guarded (env : P.envelope) =
  match env.P.request with
  | P.Compile _ | P.Simulate _ | P.Run _ -> true
  | P.Batch _ | P.Stats | P.Models | P.Cache_get _ | P.Cache_put _ -> false

let handle t (env : P.envelope) =
  let deadline_ms =
    match env.P.deadline_ms with
    | Some ms -> Some ms
    | None -> t.default_deadline_ms
  in
  match env.P.request with
  | P.Batch subs ->
    (* Fan out on the caller thread: workers run leaves only, so a full
       pool can never deadlock on its own sub-jobs.  Sub-request
       deadlines are measured from the batch's start (the batch budget
       bounds the whole fan-out); a sub may carry its own override. *)
    let t0 = Unix.gettimeofday () in
    (* A sub-request shed by its op's breaker never reaches the pool;
       everything else fans out as before. *)
    let futures =
      List.map
        (fun (sub : P.envelope) ->
          match
            if breaker_guarded sub then
              breaker_admit t (P.op_name sub.P.request)
            else None
          with
          | Some msg -> Error (shed_response t sub msg)
          | None ->
            Ok (Pool.submit t.worker_pool (fun () -> handle_leaf t sub)))
        subs
    in
    let responses =
      List.map2
        (fun (sub : P.envelope) fut ->
          let record r =
            if breaker_guarded sub then
              breaker_record t (P.op_name sub.P.request) r.outcome;
            r
          in
          match fut with
          | Error shed -> shed
          | Ok fut -> (
            let sub_ms =
              match sub.P.deadline_ms with
              | Some ms -> Some ms
              | None -> deadline_ms
            in
            match sub_ms with
            | None -> (
              match Pool.await fut with
              | Ok r -> record r
              | Error e -> raise e)
            | Some ms -> (
              let remaining = (ms /. 1e3) -. (Unix.gettimeofday () -. t0) in
              match Pool.await_within ~seconds:remaining fut with
              | Some (Ok r) -> record r
              | Some (Error e) -> raise e
              | None ->
                record
                  (timeout_response t sub
                     ~elapsed_s:(Unix.gettimeofday () -. t0)
                     ~ms))))
        subs futures
    in
    let elapsed_s = Unix.gettimeofday () -. t0 in
    Metrics.record t.meters ~op:"batch" ~ok:true ~seconds:elapsed_s;
    Log.info (fun m ->
        m "batch of %d -> done in %.2f ms" (List.length subs) (elapsed_s *. 1e3));
    { id = env.P.id;
      op = "batch";
      cache = Uncached;
      elapsed_s;
      outcome = Ok Json.Null;  (* rendered from [subs] *)
      subs = responses;
      checksum = env.P.checksum }
  | P.Compile _ | P.Simulate _ | P.Run _ -> (
    let op = P.op_name env.P.request in
    match breaker_admit t op with
    | Some msg -> shed_response t env msg
    | None -> (
      let record r =
        breaker_record t op r.outcome;
        r
      in
      match deadline_ms with
      | None -> record (Pool.run t.worker_pool (fun () -> handle_leaf t env))
      | Some ms -> (
        let t0 = Unix.gettimeofday () in
        let fut = Pool.submit t.worker_pool (fun () -> handle_leaf t env) in
        match Pool.await_within ~seconds:(ms /. 1e3) fut with
        | Some (Ok r) -> record r
        | Some (Error e) -> raise e
        | None ->
          record
            (timeout_response t env
               ~elapsed_s:(Unix.gettimeofday () -. t0)
               ~ms))))
  (* Cache probes and seeds are cheap table lookups; like stats they run
     on the caller thread and bypass breakers and deadlines, so peer
     fill keeps working while a shard's compute path is tripped. *)
  | P.Stats | P.Models | P.Cache_get _ | P.Cache_put _ -> handle_leaf t env

(* The machine-readable error class, derived from the message's stable
   prefix: client errors (unknown model, bad field) carry no kind and
   render exactly as they always have. *)
let error_kind msg =
  if String.starts_with ~prefix:"internal: " msg then Some "internal"
  else if String.starts_with ~prefix:"deadline exceeded" msg then
    Some "deadline"
  else if String.starts_with ~prefix:"unavailable: " msg then
    Some "unavailable"
  else if String.starts_with ~prefix:"overloaded" msg then Some "overloaded"
  else None

let rec response_to_json ?(timing = true) r =
  let cache_field =
    if not timing then None
    else
      match r.cache with
      | Hit -> Some "hit"
      | Miss -> Some "miss"
      | Uncached -> None
  in
  let elapsed_ms = if timing then Some (r.elapsed_s *. 1e3) else None in
  let result =
    match r.subs with
    | _ :: _ -> Ok (Json.List (List.map (response_to_json ~timing) r.subs))
    | [] -> r.outcome
  in
  match result with
  | Ok payload ->
    (* The sum digests the exact compact payload rendering the peer
       will extract, so any byte damage in transit is detectable by
       re-digesting what arrived. *)
    let sum =
      if r.checksum then
        Some (Dnn_serial.Codec.digest_string (Json.to_string payload))
      else None
    in
    Dnn_serial.Wire.ok ?id:r.id ~op:r.op ?cache:cache_field ?elapsed_ms ?sum
      payload
  | Error msg ->
    Dnn_serial.Wire.error ?id:r.id ~op:r.op ?kind:(error_kind msg) msg

(* Requests are one JSON document per line; even a large inline graph
   stays well under a megabyte.  Anything bigger is a runaway or hostile
   client, and parsing it would bloat the heap before failing anyway. *)
let max_line_bytes = 8 * 1024 * 1024

let handle_line ?timing t line =
  if String.length line > max_line_bytes then begin
    Metrics.record t.meters ~op:"parse" ~ok:false ~seconds:0.;
    Log.info (fun m -> m "oversized request: %d bytes" (String.length line));
    Dnn_serial.Wire.to_line
      (Dnn_serial.Wire.error ~op:"parse"
         (Printf.sprintf "request exceeds %d bytes" max_line_bytes))
  end
  else
    match P.request_of_line line with
  | Error msg ->
    Metrics.record t.meters ~op:"parse" ~ok:false ~seconds:0.;
    Log.info (fun m -> m "parse error: %s" msg);
    Dnn_serial.Wire.to_line (Dnn_serial.Wire.error ~op:"parse" msg)
  | Ok env -> (
    match handle t env with
    | resp -> Dnn_serial.Wire.to_line (response_to_json ?timing resp)
    | exception e ->
      (* The pool or the dispatcher itself failed; the "never raises"
         contract still holds. *)
      Log.err (fun m -> m "request dispatch raised: %s" (Printexc.to_string e));
      Dnn_serial.Wire.to_line
        (Dnn_serial.Wire.error ?id:env.P.id ~op:(P.op_name env.P.request)
           ~kind:"internal"
           ("internal: " ^ Printexc.to_string e)))

let cache t = t.plan_cache

let pool t = t.worker_pool

let metrics t = t.meters

let shutdown t = Pool.shutdown t.worker_pool
