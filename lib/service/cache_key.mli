(** Content-addressed cache keys for compiled allocation plans.

    A key is the hex MD5 of a canonical byte string covering everything
    the four LCMM passes read: the serialized graph ({!Dnn_serial.Codec}
    compact form), the accelerator design point (or, for requests that
    run the DSE themselves, the DSE inputs: dtype + device), and the
    {!Lcmm.Framework.options}.  Two requests collide iff the passes
    would compute the identical plan — the passes are pure functions of
    exactly these inputs. *)

val config_fingerprint : Accel.Config.t -> string
(** Canonical rendering of every field of a design point.  Floats are
    printed with ["%.17g"], so distinct values never alias. *)

val options_fingerprint : Lcmm.Framework.options -> string
(** Canonical rendering of every framework option. *)

val digest :
  ?extra:string list -> config:Accel.Config.t ->
  options:Lcmm.Framework.options -> Dnn_graph.Graph.t -> string
(** Key for a plan of a fixed design point.  [extra] folds in
    request-specific parameters (operation name, batch size, ...). *)

val request_digest :
  ?extra:string list -> dtype:Tensor.Dtype.t -> device:Fpga.Device.t ->
  options:Lcmm.Framework.options -> Dnn_graph.Graph.t -> string
(** Key for a DSE-then-plan request ([compile]/[simulate]): the design
    point is not known up front, but the DSE is a deterministic function
    of (graph, dtype, device), so keying on those is equivalent. *)

val run_digest :
  ?extra:string list -> dtype:Tensor.Dtype.t -> device:Fpga.Device.t ->
  options:Lcmm.Framework.options -> (Dnn_graph.Graph.t * string) list ->
  string
(** Key for a multi-tenant [run] request: every tenant graph plus a
    per-tenant tag (count, priority, arrival) in submission order;
    [extra] folds in the board-level knobs (arbitration, scheduler,
    partition policy, overcommit).  The runtime is a deterministic
    function of exactly these inputs. *)
