(** The content-addressed plan cache.

    Maps a {!Cache_key} digest to the JSON payload of a finished
    compilation (a plan summary, a simulation report, ...).  Entries are
    bounded by count and by total serialized bytes with LRU eviction;
    with a [persist_dir] every stored payload is also written to
    [<dir>/<digest>.json], and a miss in memory falls back to the
    directory — so a restarted service rewarms from disk.

    Persisted entries are written atomically (unique temp file, then
    rename) and wrapped in a checksummed envelope; a file that fails to
    parse or verify on load — truncated by a crash, bit-flipped,
    hand-edited — is quarantined to [<entry>.corrupt] and treated as a
    miss, never served.

    All operations are thread-safe: the cache is shared by every worker
    domain of the pool. *)

type t

type stats = {
  entries : int;
  bytes : int;          (** Serialized size of the in-memory payloads. *)
  hits : int;
  misses : int;
  evictions : int;
  disk_loads : int;     (** Misses answered from the persist directory. *)
  quarantined : int;    (** Corrupt persisted entries moved aside. *)
}

val create :
  ?max_entries:int -> ?max_bytes:int -> ?persist_dir:string -> unit -> t
(** Defaults: 256 entries, 64 MB.  The persist directory is created when
    missing; unreadable or corrupt persisted entries are treated as
    misses. *)

val find : t -> string -> Dnn_serial.Json.t option
(** Lookup by digest; counts a hit or a miss. *)

val put : t -> string -> Dnn_serial.Json.t -> unit

val stats : t -> stats

val stats_json : t -> Dnn_serial.Json.t

val clear : t -> unit
(** Drops the in-memory entries and resets counters; persisted files are
    kept. *)
