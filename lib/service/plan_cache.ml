module Json = Dnn_serial.Json

type t = {
  lru : (Json.t * string) Lru.t;  (* payload and its compact rendering *)
  mutex : Mutex.t;
  persist_dir : string option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable disk_loads : int;
  mutable quarantined : int;
}

type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  evictions : int;
  disk_loads : int;
  quarantined : int;
}

let src = Logs.Src.create "lcmm.service.cache" ~doc:"Plan cache"

module Log = (val Logs.src_log src : Logs.LOG)

let with_lock t fn =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) fn

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(max_entries = 256) ?(max_bytes = 64 * 1024 * 1024) ?persist_dir () =
  Option.iter mkdir_p persist_dir;
  { lru = Lru.create ~max_entries ~max_bytes;
    mutex = Mutex.create ();
    persist_dir;
    hits = 0;
    misses = 0;
    evictions = 0;
    disk_loads = 0;
    quarantined = 0 }

(* Digests are hex strings produced by us, but harden the path anyway:
   anything beyond [0-9a-f] never names a persisted entry. *)
let persist_path t digest =
  match t.persist_dir with
  | None -> None
  | Some dir ->
    if digest <> "" && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) digest
    then Some (Filename.concat dir (digest ^ ".json"))
    else None

(* On-disk entries are an envelope wrapping the payload together with a
   checksum of its compact rendering, so a truncated, bit-flipped or
   hand-edited file is detected on load rather than silently served. *)
let content_sha rendered = Digest.to_hex (Digest.string rendered)

let envelope_of rendered payload =
  Json.Obj [ ("sha", Json.String (content_sha rendered)); ("payload", payload) ]

(* A file that fails to parse or to verify is moved aside to
   [<entry>.corrupt] — out of the lookup path, but kept for inspection
   instead of deleted. *)
let quarantine (t : t) path ~why =
  t.quarantined <- t.quarantined + 1;
  Log.warn (fun m -> m "quarantining persisted entry %s: %s" path why);
  try Sys.rename path (path ^ ".corrupt")
  with Sys_error msg ->
    Log.warn (fun m -> m "failed to quarantine %s: %s" path msg)

let decode_envelope content =
  match Json.of_string content with
  | Error msg -> Error ("unparseable: " ^ msg)
  | Ok v -> (
    match Json.member_opt "sha" v, Json.member_opt "payload" v with
    | Some (Json.String sha), Some payload ->
      let rendered = Json.to_string payload in
      if String.equal sha (content_sha rendered) then Ok (payload, rendered)
      else Error "checksum mismatch"
    | _ -> Error "missing envelope fields")

let load_persisted t digest =
  match persist_path t digest with
  | None -> None
  | Some path when not (Sys.file_exists path) -> None
  | Some path -> (
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg ->
      Log.warn (fun m -> m "unreadable persisted entry %s: %s" path msg);
      None
    | content -> (
      match decode_envelope content with
      | Ok (payload, rendered) -> Some (payload, rendered)
      | Error why ->
        quarantine t path ~why;
        None))

(* Unique temp names: two domains (or two processes) persisting the same
   digest concurrently must never interleave writes into one temp file.
   The final rename is atomic either way. *)
let tmp_counter = Atomic.make 0

let store_persisted t digest rendered payload =
  match persist_path t digest with
  | None -> ()
  | Some path -> (
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Atomic.fetch_and_add tmp_counter 1)
    in
    match
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Json.to_string (envelope_of rendered payload)));
      Sys.rename tmp path
    with
    | () -> ()
    | exception Sys_error msg ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Log.warn (fun m -> m "failed to persist %s: %s" path msg))

let insert t digest payload rendered =
  let evicted =
    Lru.add t.lru ~key:digest ~bytes:(String.length rendered) (payload, rendered)
  in
  t.evictions <- t.evictions + List.length evicted

let find t digest =
  with_lock t (fun () ->
      match Lru.find t.lru digest with
      | Some (payload, _) ->
        t.hits <- t.hits + 1;
        Some payload
      | None -> (
        match load_persisted t digest with
        | Some (payload, rendered) ->
          t.hits <- t.hits + 1;
          t.disk_loads <- t.disk_loads + 1;
          insert t digest payload rendered;
          Some payload
        | None ->
          t.misses <- t.misses + 1;
          None))

let put t digest payload =
  let rendered = Json.to_string payload in
  with_lock t (fun () ->
      insert t digest payload rendered;
      store_persisted t digest rendered payload)

let stats t =
  with_lock t (fun () ->
      { entries = Lru.length t.lru;
        bytes = Lru.total_bytes t.lru;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        disk_loads = t.disk_loads;
        quarantined = t.quarantined })

let stats_json t =
  let s = stats t in
  Json.Obj
    [ ("entries", Json.Int s.entries); ("bytes", Json.Int s.bytes);
      ("hits", Json.Int s.hits); ("misses", Json.Int s.misses);
      ("evictions", Json.Int s.evictions);
      ("disk_loads", Json.Int s.disk_loads);
      ("quarantined", Json.Int s.quarantined) ]

let clear t =
  with_lock t (fun () ->
      Lru.clear t.lru;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      t.disk_loads <- 0;
      t.quarantined <- 0)
