(** A small string-keyed LRU map with entry- and byte-count bounds.

    Not thread-safe on its own; {!Plan_cache} wraps it in a mutex.
    Eviction scans for the least-recently-used entry, which is linear in
    the live entry count — fine at the few-hundred-entry sizes the plan
    cache is bounded to. *)

type 'a t

val create : max_entries:int -> max_bytes:int -> 'a t
(** Raises [Invalid_argument] when either bound is non-positive. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit refreshes the entry's recency. *)

val add : 'a t -> key:string -> bytes:int -> 'a -> (string * 'a) list
(** Insert (or replace) and return the entries evicted to restore the
    bounds, oldest first.  An entry larger than [max_bytes] by itself is
    stored alone after evicting everything else. *)

val remove : 'a t -> string -> unit

val mem : 'a t -> string -> bool
(** Without refreshing recency. *)

val length : 'a t -> int

val total_bytes : 'a t -> int

val clear : 'a t -> unit

val bindings : 'a t -> (string * 'a) list
(** Every resident entry, most recently used first.  Recency is not
    perturbed: a snapshot is not a use.  The tier's graceful drain
    flushes the router cache back to shard owners from this list. *)
