(** The plan-compilation engine: request handling over the cache, the
    worker pool and the metrics registry.

    [compile] answers with the full UMM-vs-LCMM design comparison
    ({!Lcmm.Framework.compare_designs}); [simulate] additionally runs
    the discrete-event simulator on the plan.  Both are cached under
    their {!Cache_key} digest; [stats] and [models] are cheap and
    uncached.  [batch] fans its sub-requests out across the pool and
    answers in request order. *)

type t

val create :
  ?cache:Plan_cache.t -> ?pool:Pool.t -> ?metrics:Metrics.t ->
  ?deadline_ms:float -> ?breaker_threshold:int ->
  ?breaker_cooldown_ms:float -> unit -> t
(** Missing components are created with their defaults (256-entry
    in-memory cache, [Pool.create ()] sized pool).  [deadline_ms] is the
    default per-request compute budget applied when a request carries no
    ["deadline_ms"] of its own; omitted = wait forever.  Raises
    [Invalid_argument] when non-positive.

    Each compute op ([compile], [simulate], [run]) sits behind its own
    circuit breaker: [breaker_threshold] (default 5) consecutive
    service-side failures — internal errors or deadline misses, never
    client mistakes — trip the op open, and until
    [breaker_cooldown_ms] (default 1000) has passed every request for
    it is shed immediately with a structured ["unavailable"] error.
    After the cooldown one probe request is admitted; its outcome
    closes or re-opens the circuit.  [stats] and [models] are never
    shed.  Raises [Invalid_argument] for a threshold below 1 or a
    non-positive cooldown. *)

type cache_status = Hit | Miss | Uncached

type response = {
  id : Dnn_serial.Json.t option;
  op : string;
  cache : cache_status;
  elapsed_s : float;
  outcome : (Dnn_serial.Json.t, string) result;
  subs : response list;  (** Sub-responses of a [batch], else empty. *)
  checksum : bool;
      (** The request asked for end-to-end integrity
          (["checksum": true]): rendering adds a ["sum"] digest of the
          compact result payload. *)
}

val handle : t -> Protocol.envelope -> response
(** [Batch] sub-requests run concurrently on the pool; everything else
    computes on a single pool worker.  Never raises: failures come back
    as [Error] outcomes.  A request (or engine-level) deadline that
    expires turns the outcome into a structured deadline error — the
    abandoned job finishes on its worker and still populates the cache,
    so a retry typically hits. *)

val response_to_json : ?timing:bool -> response -> Dnn_serial.Json.t
(** With [timing] (default [true]) responses carry ["cache"] and
    ["elapsed_ms"] fields.  [~timing:false] omits both, making the
    rendering a pure function of the request — the canonical form the
    determinism tests and reproducible transcripts compare. *)

val route_digest : Protocol.request -> (string option, string) result
(** The digest the request would cache under, computed without running
    it — exactly the key {!handle} files the payload under, so a router
    may use it for consistent hashing and front-cache lookups.
    [Ok None] for requests with no stable identity ([batch], [stats],
    [models]); [Error] when the request itself is unresolvable (unknown
    model, bad graph). *)

val error_kind : string -> string option
(** The machine-readable error class derived from a message's stable
    prefix (["internal"], ["deadline"], ["unavailable"],
    ["overloaded"]), or [None] for plain client errors. *)

val max_line_bytes : int
(** Largest accepted request line (8 MiB); longer lines are rejected
    without being parsed. *)

val handle_line : ?timing:bool -> t -> string -> string
(** Parse one NDJSON request line, handle it, render the response line
    (newline included).  Never raises: malformed or oversized lines
    produce an error response with op ["parse"], and any exception a
    pass leaks while computing produces an [Error] outcome on that
    request alone. *)

val stats_payload : t -> Dnn_serial.Json.t
(** The [stats] response body: cache counters, pool occupancy, request
    metrics. *)

val cache : t -> Plan_cache.t

val pool : t -> Pool.t

val metrics : t -> Metrics.t

val shutdown : t -> unit
(** Shut the pool down (joins its domains). *)
