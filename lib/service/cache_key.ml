module Config = Accel.Config
module F = Lcmm.Framework

let f = Printf.sprintf "%.17g"

let config_fingerprint (c : Config.t) =
  String.concat "|"
    [ c.Config.device.Fpga.Device.device_name;
      Tensor.Dtype.to_string c.Config.dtype;
      Printf.sprintf "pe:%dx%dx%d" c.Config.pe.Accel.Pe_array.tm_unroll
        c.Config.pe.Accel.Pe_array.tn_unroll c.Config.pe.Accel.Pe_array.tsp_unroll;
      Printf.sprintf "tile:%dx%dx%dx%d" c.Config.tile.Accel.Tiling.tm
        c.Config.tile.Accel.Tiling.tn c.Config.tile.Accel.Tiling.th
        c.Config.tile.Accel.Tiling.tw;
      "freq:" ^ f c.Config.freq_mhz;
      "ddr-eff:" ^ f c.Config.ddr_efficiency;
      "burst:" ^ f c.Config.burst_overhead;
      "aux:" ^ string_of_int c.Config.aux_ops_per_cycle;
      "fused:" ^ string_of_bool c.Config.fused_eltwise ]

let options_fingerprint (o : F.options) =
  String.concat "|"
    ([ "fr:" ^ string_of_bool o.F.feature_reuse;
      "wp:" ^ string_of_bool o.F.weight_prefetch;
      "bs:" ^ string_of_bool o.F.buffer_splitting;
      "sh:" ^ string_of_bool o.F.buffer_sharing;
      "mb:" ^ string_of_bool o.F.memory_bound_only;
      ("comp:"
      ^ match o.F.compensation with
        | Lcmm.Dnnk.Table_approx -> "table"
        | Lcmm.Dnnk.Exact_iterative -> "exact");
      ("col:"
      ^ match o.F.coloring with
        | Lcmm.Coloring.Min_growth -> "min_growth"
        | Lcmm.Coloring.First_fit -> "first_fit");
      ("cap:"
      ^ match o.F.capacity_override with
        | None -> "none"
        | Some b -> string_of_int b);
      "slices:" ^ string_of_int o.F.weight_slices;
      "fusion:" ^ string_of_bool o.F.fusion ]
     (* Folded only off-default so every pre-channel cache key — and
        persisted disk cache entry — keeps its digest. *)
     @ (if o.F.channels = 1 then [] else [ "ch:" ^ string_of_int o.F.channels ]))

let hash parts =
  Digest.to_hex (Digest.string (String.concat "\x00" parts))

let digest ?(extra = []) ~config ~options g =
  hash
    (Dnn_serial.Codec.to_string ~pretty:false g
    :: config_fingerprint config :: options_fingerprint options :: extra)

let request_digest ?(extra = []) ~dtype ~device ~options g =
  hash
    (Dnn_serial.Codec.to_string ~pretty:false g
    :: Tensor.Dtype.to_string dtype
    :: device.Fpga.Device.device_name
    :: options_fingerprint options :: extra)

let run_digest ?(extra = []) ~dtype ~device ~options tenants =
  hash
    (Tensor.Dtype.to_string dtype
     :: device.Fpga.Device.device_name
     :: options_fingerprint options
     :: extra
    @ List.concat_map
        (fun (g, tag) -> [ tag; Dnn_serial.Codec.to_string ~pretty:false g ])
        tenants)
