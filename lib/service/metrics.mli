(** Service-level metrics: per-operation request counts, error counts
    and wall-clock latency aggregates, including tail percentiles over a
    bounded latency reservoir.

    Thread-safe; the [stats] protocol request snapshots these together
    with the cache counters and the pool occupancy. *)

val percentile : float array -> float -> float
(** [percentile sample q] is the [q]-quantile ([0. <= q <= 1.]) of
    [sample] by linear interpolation between order statistics (the
    "type 7" estimator): [percentile xs 0.5] is the median,
    [percentile xs 0.99] the p99.  The input is copied, not mutated.
    [q] is clamped to [0, 1]; an empty sample yields [nan]. *)

module Reservoir : sig
  (** A bounded uniform sample of an unbounded stream (Vitter's
      algorithm R): every value seen so far has equal probability of
      being in the reservoir, so percentiles over the reservoir estimate
      percentiles of the whole stream in O(capacity) memory.  Draws come
      from a seeded PRNG — two reservoirs fed the same stream with the
      same seed hold identical samples.  Not thread-safe on its own;
      {!Metrics.record} serializes access under the registry mutex. *)

  type t

  val create : ?capacity:int -> ?seed:int -> unit -> t
  (** Default capacity 1024.  Raises [Invalid_argument] when
      [capacity < 1]. *)

  val add : t -> float -> unit

  val count : t -> int
  (** Values seen (not values held). *)

  val sample : t -> float array
  (** The values currently held, in insertion/replacement order. *)

  val percentile : t -> float -> float
  (** {!Metrics.percentile} over {!sample}. *)
end

type t

val create : unit -> t

val record : t -> op:string -> ok:bool -> seconds:float -> unit

val requests_total : t -> int

val errors_total : t -> int

val snapshot : t -> Dnn_serial.Json.t
(** [{"requests": N, "errors": N, "by_op": {op: {"count", "errors",
    "total_ms", "max_ms", "p50_ms", "p99_ms", "p999_ms"}}}].
    Percentiles are estimated over the op's latency reservoir.
    Operations are listed alphabetically so the rendering is
    deterministic. *)
