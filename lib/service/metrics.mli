(** Service-level metrics: per-operation request counts, error counts
    and wall-clock latency aggregates.

    Thread-safe; the [stats] protocol request snapshots these together
    with the cache counters and the pool occupancy. *)

type t

val create : unit -> t

val record : t -> op:string -> ok:bool -> seconds:float -> unit

val requests_total : t -> int

val errors_total : t -> int

val snapshot : t -> Dnn_serial.Json.t
(** [{"requests": N, "errors": N, "by_op": {op: {"count", "errors",
    "total_ms", "max_ms"}}}].  Operations are listed alphabetically so
    the rendering is deterministic. *)
