(** The plan service's line-delimited JSON request protocol.

    One request per line, one response per line (see {!Dnn_serial.Wire}
    for the response envelope).  Grammar, informally:

    {v
    request   := { "op": op, "id"?: json, "deadline_ms"?: number > 0,
                   ...op-fields }
    op        := "compile" | "simulate" | "run" | "batch" | "stats"
               | "models" | "cache_get" | "cache_put"
    compile   := target, "dtype"?: "i8"|"i16"|"f32",
                 "device"?: name, "options"?: options
    simulate  := compile-fields, "images"?: int >= 1
    run       := "tenants": [ tenant+ ], "dtype"?, "device"?, "options"?,
                 "arbitration"?: "fair"|"priority",
                 "scheduler"?: "greedy"|"edf",
                 "partition"?: "equal"|"demand",
                 "overcommit"?: number > 0,
                 "faults"?: fault-spec string ({!Fault.Spec.of_string})
    tenant    := target, "count"?: int >= 1, "priority"?: int,
                 "arrival_s"?: number >= 0  |  "arrival_ms"?: number >= 0
    batch     := "requests": [ request* ]     (no nested batches)
    cache_get := "digest": lowercase-hex     (plan-cache probe)
    cache_put := "digest": lowercase-hex, "payload": json
    target    := "model": zoo-name  |  "graph": codec-document
    options   := { "feature_reuse"?, "weight_prefetch"?,
                   "buffer_splitting"?, "buffer_sharing"?,
                   "memory_bound_only"?: bool,
                   "compensation"?: "table"|"exact",
                   "coloring"?: "min_growth"|"first_fit",
                   "capacity_override"?: int|null,
                   "weight_slices"?: int }
    v}

    Defaults: dtype [i16], device [vu9p], the paper's
    {!Lcmm.Framework.default_options}. *)

type target =
  | Named of string                 (** A model-zoo name. *)
  | Inline of Dnn_graph.Graph.t    (** A graph shipped in the request. *)

type compile_spec = {
  target : target;
  dtype : Tensor.Dtype.t;
  device : Fpga.Device.t;
  options : Lcmm.Framework.options;
}

type run_tenant = {
  tenant_target : target;
  count : int;            (** Replicas of this model (default 1). *)
  tenant_priority : int;  (** Lower = more important (default 0). *)
  arrival_s : float;      (** Arrival offset in seconds (default 0). *)
}

type run_spec = {
  tenants : run_tenant list;  (** Non-empty. *)
  run_dtype : Tensor.Dtype.t;
  run_device : Fpga.Device.t;
  arbitration : Lcmm_runtime.Arbiter.t;
  scheduler : Lcmm_runtime.Scheduler.t;
  sram_partition : Lcmm_runtime.Partition.policy;
  overcommit : float;
  run_channels : int;
      (** DDR channels the runtime engine schedules over (default 1 —
          the aggregate fluid-bus model; only off-default values are
          encoded or digested, keeping pre-channel digests intact). *)
  run_options : Lcmm.Framework.options;
  faults : Fault.Spec.t option;
      (** Seeded fault injection for the board run; [None] (or an
          all-quiet spec, which is normalised away) runs the bit-exact
          fault-free engine. *)
}

type request =
  | Compile of compile_spec
  | Simulate of compile_spec * int option  (** Optional batch size. *)
  | Run of run_spec                        (** Multi-tenant board run. *)
  | Batch of envelope list
  | Stats
  | Models
  | Cache_get of string
      (** Probe the shard-local plan cache by digest; answers with the
          cached payload or a ["not cached: <digest>"] error.  Used by
          the tier router's peer-fill path. *)
  | Cache_put of string * Dnn_serial.Json.t
      (** Seed the shard-local plan cache with a payload computed
          elsewhere (the other half of peer fill). *)

and envelope = {
  id : Dnn_serial.Json.t option;  (** Echoed verbatim in the response. *)
  deadline_ms : float option;
      (** Per-request compute budget; exceeding it turns the response
          into a structured deadline error instead of an open-ended
          stall. *)
  checksum : bool;
      (** Request end-to-end integrity: the engine adds a ["sum"] digest
          of the compact result payload to the response.  Set by the
          tier router on forwarded requests so corrupted shard replies
          are detectable; defaults to [false], leaving direct-client
          responses byte-identical. *)
  request : request;
}

val target_name : target -> string
(** The zoo name, or ["<inline>"] for shipped graphs. *)

val op_name : request -> string

val request_of_json : Dnn_serial.Json.t -> (envelope, string) result

val request_of_line : string -> (envelope, string) result

val options_to_json : Lcmm.Framework.options -> Dnn_serial.Json.t
(** Inverse of the [options] grammar above, for transcripts and
    debugging; [request_of_json] accepts its output. *)

val envelope_to_json : envelope -> Dnn_serial.Json.t
(** Inverse of {!request_of_json}, used by the tier router to forward a
    parsed envelope to a backend shard.  The round-trip is exact: the
    re-parsed envelope computes the same cache digests as the original
    (tenant arrivals travel as the verbatim [arrival_s] field). *)
