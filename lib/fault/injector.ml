(* Deterministic fault derivation.  Every stochastic decision is a pure
   hash of (seed, transfer key, purpose) — a counter-based RNG rather
   than a stateful stream — so an outcome never depends on the order in
   which the event loop happens to ask for it, and identical (spec,
   workload) pairs replay bit-identically. *)

type event =
  | Bank_loss of { at : float; tenant : int; bytes : int }
  | Abort of { at : float; tenant : int }

let event_time = function Bank_loss { at; _ } | Abort { at; _ } -> at

type t = {
  spec : Spec.t;
  events : event list; (* timeline, sorted by time (stable on spec order) *)
}

let create spec =
  let events =
    List.map
      (fun (b : Spec.bank_loss) ->
        Bank_loss { at = b.loss_at; tenant = b.loss_tenant; bytes = b.loss_bytes })
      spec.Spec.bank_losses
    @ List.map
        (fun (a : Spec.abort_event) ->
          Abort { at = a.abort_at; tenant = a.abort_tenant })
        spec.Spec.aborts
    |> List.stable_sort (fun a b -> compare (event_time a) (event_time b))
  in
  { spec; events }

let spec t = t.spec
let events t = t.events
let max_retries t = t.spec.Spec.max_retries

(* splitmix64 finalizer. *)
let mix64 x =
  let x = Int64.logxor x (Int64.shift_right_logical x 33) in
  let x = Int64.mul x 0xff51afd7ed558ccdL in
  let x = Int64.logxor x (Int64.shift_right_logical x 33) in
  let x = Int64.mul x 0xc4ceb9fe1a85ec53L in
  Int64.logxor x (Int64.shift_right_logical x 33)

let hash t ~key ~salt =
  mix64
    (Int64.add
       (Int64.mul (Int64.of_int t.spec.Spec.seed) 0x9E3779B97F4A7C15L)
       (Int64.add
          (Int64.mul (Int64.of_int key) 0xBF58476D1CE4E5B9L)
          (Int64.of_int salt)))

(* Uniform in [0, 1): top 53 bits of the hash. *)
let unit_float h =
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

let draw t ~key ~salt = unit_float (hash t ~key ~salt)

(* Stall injected when transfer [key] reaches the head of its channel;
   0 when the draw misses.  Jittered to 0.5–1.5x the configured mean. *)
let stall_seconds t ~key =
  let s = t.spec in
  if s.Spec.stall_prob <= 0. || s.Spec.stall_seconds <= 0. then 0.
  else if draw t ~key ~salt:1 < s.Spec.stall_prob then
    s.Spec.stall_seconds *. (0.5 +. draw t ~key ~salt:2)
  else 0.

(* How many consecutive attempts of transfer [key] fail before one
   succeeds (geometric in the per-attempt failure probability), capped
   one past the retry budget: a cap-valued draw means the transfer
   exhausts its retries and aborts the tenant. *)
let planned_failures t ~key =
  let s = t.spec in
  if s.Spec.fail_prob <= 0. then 0
  else begin
    let cap = s.Spec.max_retries + 1 in
    let rec loop i =
      if i >= cap then cap
      else if draw t ~key ~salt:(16 + i) < s.Spec.fail_prob then loop (i + 1)
      else i
    in
    loop 0
  end

(* Capped exponential backoff with seeded jitter (1x–2x the nominal
   delay) before retry number [attempt] (0-based). *)
let backoff_seconds t ~key ~attempt =
  let s = t.spec in
  let nominal = s.Spec.backoff_base *. (2. ** float_of_int attempt) in
  let nominal = Float.min nominal s.Spec.backoff_cap in
  nominal *. (1. +. draw t ~key ~salt:(64 + attempt))

(* Effective bandwidth multiplier at [now]: overlapping droop windows
   take the most severe factor. *)
let droop_factor t ~now =
  List.fold_left
    (fun acc (d : Spec.droop) ->
      if now >= d.Spec.droop_start && now < d.Spec.droop_start +. d.Spec.droop_duration
      then Float.min acc d.Spec.droop_factor
      else acc)
    1. t.spec.Spec.droops

(* Next instant after [now] at which the droop factor can change;
   infinity when none remain.  The event loop treats these boundaries
   as discrete events so rate changes land exactly on them. *)
let next_droop_boundary t ~now =
  List.fold_left
    (fun acc (d : Spec.droop) ->
      let consider acc tm = if tm > now && tm < acc then tm else acc in
      consider (consider acc d.Spec.droop_start)
        (d.Spec.droop_start +. d.Spec.droop_duration))
    infinity t.spec.Spec.droops

(* --- transport faults (serving tier router->shard path) --- *)

type transport_action = Pass | Delay of float | Hang | Trunc | Corrupt | Reset

(* Each router-level attempt of a request key gets an independent
   8-salt window, placed above the board-fault salts (1-2 stalls,
   16+ failures, 64+ backoff) so the two families never alias. *)
let t_salt ~attempt slot = 128 + (8 * attempt) + slot

(* Precedence hard-to-soft: a reset preempts a hang preempts a
   truncation preempts a corruption preempts a delay.  Each family
   draws from its own salt so scaling one probability never flips
   another family's outcome for the same (key, attempt). *)
let transport_action t ~key ~attempt =
  let s = t.spec in
  let hit prob slot =
    prob > 0. && draw t ~key ~salt:(t_salt ~attempt slot) < prob
  in
  if hit s.Spec.t_reset_prob 0 then Reset
  else if hit s.Spec.t_hang_prob 1 then Hang
  else if hit s.Spec.t_trunc_prob 2 then Trunc
  else if hit s.Spec.t_corrupt_prob 3 then Corrupt
  else if s.Spec.t_delay_seconds > 0. && hit s.Spec.t_delay_prob 4 then
    Delay
      (s.Spec.t_delay_seconds *. (0.5 +. draw t ~key ~salt:(t_salt ~attempt 5)))
  else Pass

(* Damage a response line the way the wire would: cut it short or flip
   one byte.  Which prefix survives / which byte flips is itself a
   seeded draw, so damage replays bit-identically. *)
let mangle_line t ~key ~attempt ~action line =
  let n = String.length line in
  if n = 0 then line
  else
    match (action : transport_action) with
    | Trunc ->
      let keep =
        1 + int_of_float (draw t ~key ~salt:(t_salt ~attempt 6)
                          *. float_of_int (max 1 (n - 2)))
      in
      String.sub line 0 (min keep (n - 1))
    | Corrupt ->
      let pos =
        min (n - 1)
          (int_of_float (draw t ~key ~salt:(t_salt ~attempt 7) *. float_of_int n))
      in
      let b = Bytes.of_string line in
      Bytes.set b pos (Char.chr (Char.code line.[pos] lxor 1));
      Bytes.to_string b
    | Pass | Delay _ | Hang | Reset -> line

(* Deterministic per-shard slowdown; overlapping clauses take the worst. *)
let slow_factor t ~shard =
  List.fold_left
    (fun acc (sl : Spec.slow_shard) ->
      if sl.Spec.slow_index = shard then Float.max acc sl.Spec.slow_factor
      else acc)
    1. t.spec.Spec.slow_shards
