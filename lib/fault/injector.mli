(** Deterministic fault derivation from a {!Spec.t}.

    Every stochastic decision is a pure hash of (seed, transfer key,
    purpose) — a counter-based RNG rather than a stateful stream — so an
    outcome never depends on the order the event loop asks for it, and
    identical (spec, workload) pairs replay bit-identically. *)

type event =
  | Bank_loss of { at : float; tenant : int; bytes : int }
  | Abort of { at : float; tenant : int }

type t

val create : Spec.t -> t

val spec : t -> Spec.t

val events : t -> event list
(** Discrete fault timeline (bank losses and aborts), sorted by time,
    stable on spec order. *)

val event_time : event -> float

val max_retries : t -> int

val stall_seconds : t -> key:int -> float
(** Stall injected when transfer [key] reaches the head of its channel;
    0 when the seeded draw misses.  Jittered to 0.5–1.5x the mean. *)

val planned_failures : t -> key:int -> int
(** How many consecutive attempts of transfer [key] fail before one
    succeeds (geometric in the per-attempt failure probability), capped
    one past the retry budget: a cap-valued draw exhausts the retries
    and aborts the owning tenant. *)

val backoff_seconds : t -> key:int -> attempt:int -> float
(** Capped exponential backoff with seeded jitter (1x–2x nominal)
    before retry number [attempt] (0-based). *)

val droop_factor : t -> now:float -> float
(** Effective bandwidth multiplier at [now]; overlapping droop windows
    take the most severe factor. *)

val next_droop_boundary : t -> now:float -> float
(** Next instant after [now] at which {!droop_factor} can change;
    [infinity] when none remain. *)

(** {1 Transport faults (serving tier)} *)

type transport_action = Pass | Delay of float | Hang | Trunc | Corrupt | Reset

val transport_action : t -> key:int -> attempt:int -> transport_action
(** The fault (if any) injected on router-level attempt [attempt] of
    the request identified by [key].  Precedence hard-to-soft: reset,
    hang, trunc, corrupt, delay — each family draws from its own salt,
    so scaling one probability never flips another family's outcome.
    [Delay] carries jittered seconds (0.5-1.5x the configured mean). *)

val mangle_line : t -> key:int -> attempt:int -> action:transport_action
  -> string -> string
(** Apply [Trunc] (cut to a seeded strict prefix) or [Corrupt] (flip
    one seeded byte) to a response line; other actions return the line
    unchanged. *)

val slow_factor : t -> shard:int -> float
(** Deterministic service-time multiplier for shard [shard] (>= 1);
    overlapping slowshard clauses take the worst. *)
