(* A seeded, deterministic board-fault model.  LCMM plans against a
   fixed SRAM capacity and a fixed DDR bandwidth; on a real board both
   degrade — thermal throttling shrinks effective bandwidth, ECC faults
   drop URAM/BRAM banks, links hiccup.  A [Spec.t] describes those
   faults as data so a run can be replayed bit-identically from the same
   seed.

   The textual grammar (the CLI's [--faults SPEC]) is a comma-separated
   clause list; times are milliseconds of simulated time:

     seed=N                    derivation seed for stochastic draws
     droop@T:DUR:FACTOR        DDR bandwidth scaled by FACTOR in [T, T+DUR)
     stall:PROB:MS             transfer-start stall probability / mean stall
     fail:PROB                 per-attempt transient transfer failure
     retries=N                 retry budget before a failing transfer aborts
     backoff=BASE:CAP          exponential retry backoff base / cap (ms)
     bankloss@T:BYTES[:TEN]    SRAM bank loss for tenant TEN (default 0)
     abort@T:TEN               hard tenant abort

   Transport clauses describe faults on the serving tier's router->shard
   connections (the CLI's [lcmm tier --chaos SPEC]); they are inert for
   the board runtime and probabilities are per connection attempt:

     delay:PROB:MS             added response latency (jittered mean MS)
     hang:PROB                 shard accepts the request, never answers
     trunc:PROB                response line cut short mid-byte
     corrupt:PROB              one response byte flipped
     reset:PROB                connection reset before the response
     slowshard@IDX:F           shard IDX serves F x slower (F >= 1)

   Byte counts accept k/K (KiB) and m/M (MiB) suffixes.  The internal
   representation is seconds and bytes. *)

module Json = Dnn_serial.Json

type droop = {
  droop_start : float;    (* seconds *)
  droop_duration : float; (* seconds *)
  droop_factor : float;   (* (0, 1]: surviving fraction of bandwidth *)
}

type bank_loss = {
  loss_at : float;   (* seconds *)
  loss_bytes : int;
  loss_tenant : int; (* index into the co-simulated admitted set *)
}

type abort_event = { abort_at : float; abort_tenant : int }

type slow_shard = {
  slow_index : int;    (* shard index in sorted ring-member order *)
  slow_factor : float; (* >= 1: multiplier on observed service time *)
}

type t = {
  seed : int;
  droops : droop list;
  stall_prob : float;
  stall_seconds : float; (* mean stall at a transfer start *)
  fail_prob : float;     (* per-attempt transient failure probability *)
  max_retries : int;
  backoff_base : float;  (* seconds *)
  backoff_cap : float;   (* seconds *)
  bank_losses : bank_loss list;
  aborts : abort_event list;
  (* transport faults (serving tier router->shard path) *)
  t_delay_prob : float;
  t_delay_seconds : float; (* mean injected response delay *)
  t_hang_prob : float;
  t_trunc_prob : float;
  t_corrupt_prob : float;
  t_reset_prob : float;
  slow_shards : slow_shard list;
}

let default_retries = 3
let default_backoff_base = 5e-5 (* 0.05 ms *)
let default_backoff_cap = 2e-3  (* 2 ms *)

let empty =
  { seed = 0;
    droops = [];
    stall_prob = 0.;
    stall_seconds = 0.;
    fail_prob = 0.;
    max_retries = default_retries;
    backoff_base = default_backoff_base;
    backoff_cap = default_backoff_cap;
    bank_losses = [];
    aborts = [];
    t_delay_prob = 0.;
    t_delay_seconds = 0.;
    t_hang_prob = 0.;
    t_trunc_prob = 0.;
    t_corrupt_prob = 0.;
    t_reset_prob = 0.;
    slow_shards = [] }

(* Board faults drive the runtime co-simulation; a run-op spec without
   any is normalised away so the no-fault path (and its bit-exact
   output) is untouched. *)
let has_board_faults t =
  t.droops <> []
  || (t.stall_prob > 0. && t.stall_seconds > 0.)
  || t.fail_prob > 0.
  || t.bank_losses <> []
  || t.aborts <> []

(* Transport faults drive the tier's chaos layer; a spec without any
   leaves the router->shard path untouched (chaos-off byte identity). *)
let has_transport_faults t =
  (t.t_delay_prob > 0. && t.t_delay_seconds > 0.)
  || t.t_hang_prob > 0.
  || t.t_trunc_prob > 0.
  || t.t_corrupt_prob > 0.
  || t.t_reset_prob > 0.
  || t.slow_shards <> []

let is_empty t = not (has_board_faults t) && not (has_transport_faults t)

(* Intensity-ladder support: scale every transport probability by
   [factor] (clamped to [0,1]); delay magnitude and slowshard factors
   are left alone so a rung changes how often faults fire, not what
   each fault does. *)
let scale_transport t factor =
  let p v = Float.max 0. (Float.min 1. (v *. factor)) in
  { t with
    t_delay_prob = p t.t_delay_prob;
    t_hang_prob = p t.t_hang_prob;
    t_trunc_prob = p t.t_trunc_prob;
    t_corrupt_prob = p t.t_corrupt_prob;
    t_reset_prob = p t.t_reset_prob }

(* --- parsing --- *)

let ( let* ) = Result.bind

let parse_float ~what s =
  match float_of_string_opt (String.trim s) with
  | Some v when Float.is_finite v -> Ok v
  | _ -> Error (Printf.sprintf "%s: not a number (%S)" what s)

let parse_prob ~what s =
  let* v = parse_float ~what s in
  if v < 0. || v > 1. then
    Error (Printf.sprintf "%s: probability %g outside [0,1]" what v)
  else Ok v

let parse_ms ~what s =
  let* v = parse_float ~what s in
  if v < 0. then Error (Printf.sprintf "%s: negative time %g ms" what v)
  else Ok (v /. 1e3)

let parse_int ~what s =
  match int_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: not an integer (%S)" what s)

let parse_bytes ~what s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then Error (Printf.sprintf "%s: empty byte count" what)
  else
    let scale, body =
      match s.[n - 1] with
      | 'k' | 'K' -> (1024, String.sub s 0 (n - 1))
      | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (n - 1))
      | _ -> (1, s)
    in
    let* v = parse_int ~what body in
    if v < 0 then Error (Printf.sprintf "%s: negative byte count" what)
    else Ok (v * scale)

let split_on sep s = String.split_on_char sep s |> List.map String.trim

let parse_clause spec clause =
  match String.index_opt clause '=' with
  | Some i ->
    let key = String.sub clause 0 i in
    let value = String.sub clause (i + 1) (String.length clause - i - 1) in
    (match key with
    | "seed" ->
      let* seed = parse_int ~what:"seed" value in
      Ok { spec with seed }
    | "retries" ->
      let* r = parse_int ~what:"retries" value in
      if r < 0 then Error "retries: must be non-negative"
      else Ok { spec with max_retries = r }
    | "backoff" -> (
      match split_on ':' value with
      | [ base; cap ] ->
        let* backoff_base = parse_ms ~what:"backoff base" base in
        let* backoff_cap = parse_ms ~what:"backoff cap" cap in
        if backoff_cap < backoff_base then
          Error "backoff: cap below base"
        else Ok { spec with backoff_base; backoff_cap }
      | _ -> Error "backoff: expected BASE_MS:CAP_MS")
    | _ -> Error "unknown clause")
  | None -> (
    match String.index_opt clause '@' with
    | Some i -> (
      let key = String.sub clause 0 i in
      let value = String.sub clause (i + 1) (String.length clause - i - 1) in
      match key, split_on ':' value with
      | "droop", [ start; dur; factor ] ->
        let* droop_start = parse_ms ~what:"droop start" start in
        let* droop_duration = parse_ms ~what:"droop duration" dur in
        let* droop_factor = parse_float ~what:"droop factor" factor in
        if droop_duration <= 0. then Error "droop: duration must be positive"
        else if droop_factor <= 0. || droop_factor > 1. then
          Error (Printf.sprintf "droop: factor %g outside (0,1]" droop_factor)
        else
          Ok { spec with droops = spec.droops @ [ { droop_start; droop_duration; droop_factor } ] }
      | "bankloss", (t :: bytes :: rest) ->
        let* loss_at = parse_ms ~what:"bankloss time" t in
        let* loss_bytes = parse_bytes ~what:"bankloss bytes" bytes in
        let* loss_tenant =
          match rest with
          | [] -> Ok 0
          | [ ten ] -> parse_int ~what:"bankloss tenant" ten
          | _ -> Error "bankloss: expected T_MS:BYTES[:TENANT]"
        in
        Ok { spec with
             bank_losses = spec.bank_losses @ [ { loss_at; loss_bytes; loss_tenant } ] }
      | "abort", [ t; ten ] ->
        let* abort_at = parse_ms ~what:"abort time" t in
        let* abort_tenant = parse_int ~what:"abort tenant" ten in
        Ok { spec with aborts = spec.aborts @ [ { abort_at; abort_tenant } ] }
      | "slowshard", [ idx; factor ] ->
        let* slow_index = parse_int ~what:"slowshard index" idx in
        let* slow_factor = parse_float ~what:"slowshard factor" factor in
        if slow_index < 0 then Error "slowshard: index must be non-negative"
        else if slow_factor < 1. then
          Error (Printf.sprintf "slowshard: factor %g below 1" slow_factor)
        else
          Ok { spec with
               slow_shards = spec.slow_shards @ [ { slow_index; slow_factor } ] }
      | "slowshard", _ -> Error "slowshard: expected IDX:FACTOR"
      | _ -> Error "unknown clause")
    | None -> (
      match split_on ':' clause with
      | [ "stall"; prob; ms ] ->
        let* stall_prob = parse_prob ~what:"stall probability" prob in
        let* stall_seconds = parse_ms ~what:"stall duration" ms in
        Ok { spec with stall_prob; stall_seconds }
      | [ "fail"; prob ] ->
        let* fail_prob = parse_prob ~what:"fail probability" prob in
        Ok { spec with fail_prob }
      | [ "delay"; prob; ms ] ->
        let* t_delay_prob = parse_prob ~what:"delay probability" prob in
        let* t_delay_seconds = parse_ms ~what:"delay duration" ms in
        Ok { spec with t_delay_prob; t_delay_seconds }
      | [ "hang"; prob ] ->
        let* t_hang_prob = parse_prob ~what:"hang probability" prob in
        Ok { spec with t_hang_prob }
      | [ "trunc"; prob ] ->
        let* t_trunc_prob = parse_prob ~what:"trunc probability" prob in
        Ok { spec with t_trunc_prob }
      | [ "corrupt"; prob ] ->
        let* t_corrupt_prob = parse_prob ~what:"corrupt probability" prob in
        Ok { spec with t_corrupt_prob }
      | [ "reset"; prob ] ->
        let* t_reset_prob = parse_prob ~what:"reset probability" prob in
        Ok { spec with t_reset_prob }
      | ("delay" | "hang" | "trunc" | "corrupt" | "reset" | "stall" | "fail")
        :: _ ->
        Error "wrong number of arguments"
      | _ -> Error "unknown clause"))

(* Parse errors name the offending clause and its character position in
   the original spec string, so a long comma-separated spec fails with a
   pointer instead of a bare reason. *)
let of_string s =
  let n = String.length s in
  let rec go spec idx start =
    if start >= n + 1 then Ok spec
    else begin
      let stop =
        match String.index_from_opt s (min start n) ',' with
        | Some i -> i
        | None -> n
      in
      let raw = if start >= n then "" else String.sub s start (stop - start) in
      let clause = String.trim raw in
      if clause = "" then go spec idx (stop + 1)
      else
        match parse_clause spec clause with
        | Ok spec -> go spec (idx + 1) (stop + 1)
        | Error msg ->
          let blank = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false in
          let lead = ref 0 in
          while !lead < String.length raw && blank raw.[!lead] do incr lead done;
          Error
            (Printf.sprintf "clause %d (%S) at char %d: %s" idx clause
               (start + !lead) msg)
    end
  in
  go empty 1 0

(* Canonical rendering: round-trips through [of_string]. *)
let to_string t =
  let ms v = Printf.sprintf "%g" (v *. 1e3) in
  let clauses =
    (if t.seed <> 0 then [ Printf.sprintf "seed=%d" t.seed ] else [])
    @ List.map
        (fun d ->
          Printf.sprintf "droop@%s:%s:%g" (ms d.droop_start) (ms d.droop_duration)
            d.droop_factor)
        t.droops
    @ (if t.stall_prob > 0. && t.stall_seconds > 0. then
         [ Printf.sprintf "stall:%g:%s" t.stall_prob (ms t.stall_seconds) ]
       else [])
    @ (if t.fail_prob > 0. then [ Printf.sprintf "fail:%g" t.fail_prob ] else [])
    @ (if t.max_retries <> default_retries then
         [ Printf.sprintf "retries=%d" t.max_retries ]
       else [])
    @ (if t.backoff_base <> default_backoff_base || t.backoff_cap <> default_backoff_cap
       then [ Printf.sprintf "backoff=%s:%s" (ms t.backoff_base) (ms t.backoff_cap) ]
       else [])
    @ List.map
        (fun b ->
          Printf.sprintf "bankloss@%s:%d:%d" (ms b.loss_at) b.loss_bytes b.loss_tenant)
        t.bank_losses
    @ List.map
        (fun a -> Printf.sprintf "abort@%s:%d" (ms a.abort_at) a.abort_tenant)
        t.aborts
    @ (if t.t_delay_prob > 0. && t.t_delay_seconds > 0. then
         [ Printf.sprintf "delay:%g:%s" t.t_delay_prob (ms t.t_delay_seconds) ]
       else [])
    @ (if t.t_hang_prob > 0. then [ Printf.sprintf "hang:%g" t.t_hang_prob ]
       else [])
    @ (if t.t_trunc_prob > 0. then [ Printf.sprintf "trunc:%g" t.t_trunc_prob ]
       else [])
    @ (if t.t_corrupt_prob > 0. then
         [ Printf.sprintf "corrupt:%g" t.t_corrupt_prob ]
       else [])
    @ (if t.t_reset_prob > 0. then [ Printf.sprintf "reset:%g" t.t_reset_prob ]
       else [])
    @ List.map
        (fun sl ->
          Printf.sprintf "slowshard@%d:%g" sl.slow_index sl.slow_factor)
        t.slow_shards
  in
  String.concat "," clauses

let to_json t =
  Json.Obj
    [ ("seed", Json.Int t.seed);
      ("droops",
       Json.List
         (List.map
            (fun d ->
              Json.Obj
                [ ("t0_ms", Json.Float (d.droop_start *. 1e3));
                  ("dur_ms", Json.Float (d.droop_duration *. 1e3));
                  ("factor", Json.Float d.droop_factor) ])
            t.droops));
      ("stall_prob", Json.Float t.stall_prob);
      ("stall_ms", Json.Float (t.stall_seconds *. 1e3));
      ("fail_prob", Json.Float t.fail_prob);
      ("max_retries", Json.Int t.max_retries);
      ("backoff_base_ms", Json.Float (t.backoff_base *. 1e3));
      ("backoff_cap_ms", Json.Float (t.backoff_cap *. 1e3));
      ("bank_losses",
       Json.List
         (List.map
            (fun b ->
              Json.Obj
                [ ("t_ms", Json.Float (b.loss_at *. 1e3));
                  ("bytes", Json.Int b.loss_bytes);
                  ("tenant", Json.Int b.loss_tenant) ])
            t.bank_losses));
      ("aborts",
       Json.List
         (List.map
            (fun a ->
              Json.Obj
                [ ("t_ms", Json.Float (a.abort_at *. 1e3));
                  ("tenant", Json.Int a.abort_tenant) ])
            t.aborts));
      ("delay_prob", Json.Float t.t_delay_prob);
      ("delay_ms", Json.Float (t.t_delay_seconds *. 1e3));
      ("hang_prob", Json.Float t.t_hang_prob);
      ("trunc_prob", Json.Float t.t_trunc_prob);
      ("corrupt_prob", Json.Float t.t_corrupt_prob);
      ("reset_prob", Json.Float t.t_reset_prob);
      ("slow_shards",
       Json.List
         (List.map
            (fun sl ->
              Json.Obj
                [ ("shard", Json.Int sl.slow_index);
                  ("factor", Json.Float sl.slow_factor) ])
            t.slow_shards)) ]
