(** Seeded, deterministic board-fault specification.

    Describes the faults injected into a runtime co-simulation as plain
    data — DDR bandwidth droop windows, transient transfer stalls and
    failures, SRAM bank losses and hard tenant aborts — plus the seed
    every stochastic draw derives from, so a faulty run replays
    bit-identically.

    The textual grammar (the CLI's [--faults SPEC]) is a comma-separated
    clause list; times are milliseconds of simulated time:

    {v
    seed=N                    derivation seed for stochastic draws
    droop@T:DUR:FACTOR        DDR bandwidth scaled by FACTOR in [T, T+DUR)
    stall:PROB:MS             transfer-start stall probability / mean stall
    fail:PROB                 per-attempt transient transfer failure
    retries=N                 retry budget before a failing transfer aborts
    backoff=BASE:CAP          exponential retry backoff base / cap (ms)
    bankloss@T:BYTES[:TEN]    SRAM bank loss for tenant TEN (default 0)
    abort@T:TEN               hard tenant abort
    v}

    Byte counts accept [k]/[K] (KiB) and [m]/[M] (MiB) suffixes. *)

type droop = {
  droop_start : float;    (** Seconds. *)
  droop_duration : float; (** Seconds, positive. *)
  droop_factor : float;   (** (0, 1]: surviving fraction of bandwidth. *)
}

type bank_loss = {
  loss_at : float;   (** Seconds. *)
  loss_bytes : int;
  loss_tenant : int; (** Index into the co-simulated admitted set. *)
}

type abort_event = { abort_at : float; abort_tenant : int }

type t = {
  seed : int;
  droops : droop list;
  stall_prob : float;
  stall_seconds : float; (** Mean stall at a transfer start. *)
  fail_prob : float;     (** Per-attempt transient failure probability. *)
  max_retries : int;
  backoff_base : float;  (** Seconds. *)
  backoff_cap : float;   (** Seconds. *)
  bank_losses : bank_loss list;
  aborts : abort_event list;
}

val empty : t
(** No faults: seed 0, default retry budget (3) and backoff
    (0.05 ms base, 2 ms cap). *)

val is_empty : t -> bool
(** True when no fault source is active — the runtime normalises such a
    spec away so the no-fault path stays bit-identical. *)

val of_string : string -> (t, string) result
(** Parse the clause grammar above.  The empty string is [empty]. *)

val to_string : t -> string
(** Canonical rendering; round-trips through {!of_string}. *)

val to_json : t -> Dnn_serial.Json.t
