(** Seeded, deterministic board-fault specification.

    Describes the faults injected into a runtime co-simulation as plain
    data — DDR bandwidth droop windows, transient transfer stalls and
    failures, SRAM bank losses and hard tenant aborts — plus the seed
    every stochastic draw derives from, so a faulty run replays
    bit-identically.

    The textual grammar (the CLI's [--faults SPEC]) is a comma-separated
    clause list; times are milliseconds of simulated time:

    {v
    seed=N                    derivation seed for stochastic draws
    droop@T:DUR:FACTOR        DDR bandwidth scaled by FACTOR in [T, T+DUR)
    stall:PROB:MS             transfer-start stall probability / mean stall
    fail:PROB                 per-attempt transient transfer failure
    retries=N                 retry budget before a failing transfer aborts
    backoff=BASE:CAP          exponential retry backoff base / cap (ms)
    bankloss@T:BYTES[:TEN]    SRAM bank loss for tenant TEN (default 0)
    abort@T:TEN               hard tenant abort
    v}

    Transport clauses describe faults on the serving tier's
    router->shard connections (the CLI's [lcmm tier --chaos SPEC]); they
    are inert for the board runtime and probabilities are per connection
    attempt:

    {v
    delay:PROB:MS             added response latency (jittered mean MS)
    hang:PROB                 shard accepts the request, never answers
    trunc:PROB                response line cut short mid-byte
    corrupt:PROB              one response byte flipped
    reset:PROB                connection reset before the response
    slowshard@IDX:F           shard IDX serves F x slower (F >= 1)
    v}

    Byte counts accept [k]/[K] (KiB) and [m]/[M] (MiB) suffixes. *)

type droop = {
  droop_start : float;    (** Seconds. *)
  droop_duration : float; (** Seconds, positive. *)
  droop_factor : float;   (** (0, 1]: surviving fraction of bandwidth. *)
}

type bank_loss = {
  loss_at : float;   (** Seconds. *)
  loss_bytes : int;
  loss_tenant : int; (** Index into the co-simulated admitted set. *)
}

type abort_event = { abort_at : float; abort_tenant : int }

type slow_shard = {
  slow_index : int;    (** Shard index in sorted ring-member order. *)
  slow_factor : float; (** >= 1: multiplier on observed service time. *)
}

type t = {
  seed : int;
  droops : droop list;
  stall_prob : float;
  stall_seconds : float; (** Mean stall at a transfer start. *)
  fail_prob : float;     (** Per-attempt transient failure probability. *)
  max_retries : int;
  backoff_base : float;  (** Seconds. *)
  backoff_cap : float;   (** Seconds. *)
  bank_losses : bank_loss list;
  aborts : abort_event list;
  t_delay_prob : float;
  t_delay_seconds : float; (** Mean injected response delay, seconds. *)
  t_hang_prob : float;
  t_trunc_prob : float;
  t_corrupt_prob : float;
  t_reset_prob : float;
  slow_shards : slow_shard list;
}

val empty : t
(** No faults: seed 0, default retry budget (3) and backoff
    (0.05 ms base, 2 ms cap). *)

val is_empty : t -> bool
(** True when no fault source of either family is active — neither
    board faults nor transport faults. *)

val has_board_faults : t -> bool
(** True when a board-fault source (droop, stall, fail, bankloss,
    abort) is active.  A run-op spec without any is normalised away so
    the no-fault simulation path stays bit-identical. *)

val has_transport_faults : t -> bool
(** True when a transport-fault source (delay, hang, trunc, corrupt,
    reset, slowshard) is active.  A tier spec without any leaves the
    router->shard path untouched (chaos-off byte identity). *)

val scale_transport : t -> float -> t
(** Scale every transport probability by the factor (clamped to [0,1]);
    delay magnitude and slowshard factors are unchanged.  The chaos
    bench's intensity ladder. *)

val of_string : string -> (t, string) result
(** Parse the clause grammar above.  The empty string is [empty].
    Errors name the offending clause and its character position, e.g.
    [clause 2 ("hang:2") at char 8: hang probability 2 outside [0,1]]. *)

val to_string : t -> string
(** Canonical rendering; round-trips through {!of_string}. *)

val to_json : t -> Dnn_serial.Json.t
