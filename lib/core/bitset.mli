(** Fixed-width packed bitsets over native ints.

    The planner's hot paths (interference adjacency rows, coloring
    partition masks, DNNK chosen sets) all reduce to word-parallel bit
    tests over these. *)

type t

val create : int -> t
(** [create width] is the empty set over bits [0 .. width-1]. *)

val width : t -> int

val set : t -> int -> unit
val clear : t -> int -> unit

val mem : t -> int -> bool
(** All three raise [Invalid_argument] on out-of-range bits. *)

val reset : t -> unit
(** Clear every bit in place. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] ors [src] into [dst]; widths must match. *)

val inter_empty : t -> t -> bool
(** Whether the two sets are disjoint, one word at a time. *)

val cardinal : t -> int
(** Population count. *)

val iter : (int -> unit) -> t -> unit
(** Visit set bits in ascending order. *)
