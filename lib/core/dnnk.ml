type compensation = Table_approx | Exact_iterative

type result = {
  chosen : Vbuffer.t list;
  spilled : Vbuffer.t list;
  on_chip : Metric.Item_set.t;
  predicted_latency : float;
  capacity_blocks : int;
  used_blocks : int;
}

(* Scratch state shared across allocator calls (the splitting loop
   re-runs the allocator up to 16 times over near-identical buffer
   sets): per-member-list memos of affected nodes and static gains, and
   the DP arrays, which are zeroed rather than reallocated.  A workspace
   is only valid against the metric it first ran with. *)
type workspace = {
  affected_memo : (Metric.item list, int array) Hashtbl.t;
  static_gain_memo : (Metric.item list, float) Hashtbl.t;
  mutable dp_prev : float array;
  mutable dp_curr : float array;
  mutable dp_rows : bool array array;
}

let workspace () =
  { affected_memo = Hashtbl.create 64;
    static_gain_memo = Hashtbl.create 64;
    dp_prev = [||];
    dp_curr = [||];
    dp_rows = [||] }

let block_bytes = Fpga.Resource.uram_bytes

let blocks_of_bytes bytes = (bytes + block_bytes - 1) / block_bytes

let items_of_vbufs vbufs =
  List.concat_map (fun vb -> vb.Vbuffer.members) vbufs

let set_of_vbufs vbufs =
  Metric.Item_set.of_list (items_of_vbufs vbufs)

let finish metric ~capacity_blocks vbufs chosen_ids =
  let chosen_tbl = Hashtbl.create (2 * List.length chosen_ids + 1) in
  List.iter (fun id -> Hashtbl.replace chosen_tbl id ()) chosen_ids;
  let chosen, spilled =
    List.partition (fun vb -> Hashtbl.mem chosen_tbl vb.Vbuffer.vbuf_id) vbufs
  in
  let on_chip = set_of_vbufs chosen in
  { chosen;
    spilled;
    on_chip;
    predicted_latency = Metric.total_latency metric ~on_chip;
    capacity_blocks;
    used_blocks =
      List.fold_left
        (fun acc vb -> acc + blocks_of_bytes vb.Vbuffer.size_bytes)
        0 chosen }

(* Nodes whose latency any member of the buffer influences. *)
let affected_nodes_of_vbuf ws metric vb =
  let members = vb.Vbuffer.members in
  match Hashtbl.find_opt ws.affected_memo members with
  | Some nodes -> nodes
  | None ->
    let nodes =
      List.concat_map (Metric.affected_nodes metric) members
      |> List.sort_uniq compare |> Array.of_list
    in
    Hashtbl.add ws.affected_memo members nodes;
    nodes

let static_gain_of_vbuf ws metric vb =
  let members = vb.Vbuffer.members in
  match Hashtbl.find_opt ws.static_gain_memo members with
  | Some gain -> gain
  | None ->
    let gain =
      Metric.marginal_gain_many metric ~on_chip:Metric.Item_set.empty members
    in
    Hashtbl.add ws.static_gain_memo members gain;
    gain

(* One 0/1-knapsack DP over virtual buffers.  [gain_at] supplies the
   value of buffer [i] when placed at source column [col] (allowing the
   paper's table-based compensation); the memo of placement bits is
   exposed to it through [pbuf_table].  The DP arrays come from the
   workspace and are cleared, not reallocated, on reuse. *)
let knapsack_dp ws ~capacity ~sizes ~gain_at =
  let n = Array.length sizes in
  if Array.length ws.dp_prev <= capacity then begin
    ws.dp_prev <- Array.make (capacity + 1) 0.;
    ws.dp_curr <- Array.make (capacity + 1) 0.
  end
  else begin
    Array.fill ws.dp_prev 0 (capacity + 1) 0.;
    Array.fill ws.dp_curr 0 (capacity + 1) 0.
  end;
  if
    Array.length ws.dp_rows <= n
    || (n >= 0 && Array.length ws.dp_rows.(0) <= capacity)
  then ws.dp_rows <- Array.make_matrix (n + 1) (capacity + 1) false
  else
    for i = 1 to n do
      Array.fill ws.dp_rows.(i) 0 (capacity + 1) false
    done;
  let prev = ws.dp_prev and curr = ws.dp_curr and pbuf_table = ws.dp_rows in
  for i = 1 to n do
    let s = sizes.(i - 1) in
    for j = 0 to capacity do
      let without = prev.(j) in
      if s <= j then begin
        let col = j - s in
        let with_gain = prev.(col) +. gain_at ~index:(i - 1) ~col ~pbuf_table in
        if with_gain > without then begin
          curr.(j) <- with_gain;
          pbuf_table.(i).(j) <- true
        end
        else curr.(j) <- without
      end
      else curr.(j) <- without
    done;
    Array.blit curr 0 prev 0 (capacity + 1)
  done;
  (* Backtrace the memo into the chosen index set. *)
  let rec back i j acc =
    if i = 0 then acc
    else if pbuf_table.(i).(j) then back (i - 1) (j - sizes.(i - 1)) ((i - 1) :: acc)
    else back (i - 1) j acc
  in
  back n capacity []

(* Greedy repair after the DP: while spare capacity remains, pull back any
   spilled buffer whose marginal gain against the chosen set is positive.
   This recovers value the max-structure hides from per-row compensation
   (a term only pays off once its node's larger terms are also pinned). *)
let sweep_up metric ~capacity_blocks result =
  let rec loop result =
    let free = capacity_blocks - result.used_blocks in
    let candidate =
      List.filter_map
        (fun vb ->
          let blocks = blocks_of_bytes vb.Vbuffer.size_bytes in
          if blocks > free then None
          else
            let gain =
              Metric.marginal_gain_many metric ~on_chip:result.on_chip
                vb.Vbuffer.members
            in
            if gain > 1e-15 then Some (gain, vb) else None)
        result.spilled
    in
    match candidate with
    | [] -> result
    | first :: rest ->
      let _, best =
        List.fold_left (fun (bg, bv) (g, v) -> if g > bg then (g, v) else (bg, bv))
          first rest
      in
      let chosen = best :: result.chosen in
      let on_chip =
        List.fold_left
          (fun acc it -> Metric.Item_set.add it acc)
          result.on_chip best.Vbuffer.members
      in
      loop
        { result with
          chosen;
          spilled =
            List.filter (fun vb -> vb.Vbuffer.vbuf_id <> best.Vbuffer.vbuf_id)
              result.spilled;
          on_chip;
          predicted_latency = Metric.total_latency metric ~on_chip;
          used_blocks = result.used_blocks + blocks_of_bytes best.Vbuffer.size_bytes }
  in
  loop result

(* Degraded-mode eviction: the inverse of the knapsack.  When capacity
   shrinks under a live allocation (an SRAM bank drops out), drop chosen
   buffers in increasing benefit-density order — marginal gain against
   the current set per occupied block — until the survivors fit.  The
   runtime's bank-loss handler and the degraded-plan oracle share this
   routine.  Returns the shrunken result plus the evicted buffers in
   eviction order. *)
let evict_to_capacity metric ~capacity_bytes result =
  if capacity_bytes < 0 then
    invalid_arg "Dnnk.evict_to_capacity: negative capacity";
  let capacity_blocks = capacity_bytes / block_bytes in
  let density on_chip vb =
    let without =
      List.fold_left
        (fun acc it -> Metric.Item_set.remove it acc)
        on_chip vb.Vbuffer.members
    in
    let gain = Metric.marginal_gain_many metric ~on_chip:without vb.Vbuffer.members in
    gain /. float_of_int (max 1 (blocks_of_bytes vb.Vbuffer.size_bytes))
  in
  let rec loop result evicted =
    if result.used_blocks <= capacity_blocks then (result, List.rev evicted)
    else
      match result.chosen with
      | [] -> (result, List.rev evicted)
      | first :: rest ->
        let _, worst =
          List.fold_left
            (fun ((bd, _) as best) vb ->
              let d = density result.on_chip vb in
              if d < bd then (d, vb) else best)
            (density result.on_chip first, first)
            rest
        in
        let on_chip =
          List.fold_left
            (fun acc it -> Metric.Item_set.remove it acc)
            result.on_chip worst.Vbuffer.members
        in
        loop
          { result with
            chosen =
              List.filter
                (fun vb -> vb.Vbuffer.vbuf_id <> worst.Vbuffer.vbuf_id)
                result.chosen;
            spilled = worst :: result.spilled;
            on_chip;
            predicted_latency = Metric.total_latency metric ~on_chip;
            used_blocks = result.used_blocks - blocks_of_bytes worst.Vbuffer.size_bytes }
          (worst :: evicted)
  in
  let result, evicted = loop result [] in
  ({ result with capacity_blocks }, evicted)

let allocate ?(compensation = Table_approx) ?(rounds = 4) ?workspace:ws metric
    ~capacity_bytes vbufs =
  if capacity_bytes < 0 then invalid_arg "Dnnk.allocate: negative capacity";
  let ws = match ws with Some ws -> ws | None -> workspace () in
  let capacity = capacity_bytes / block_bytes in
  (* Process buffers in decreasing static-gain order: the row-memo
     compensation then sees a node's dominant terms before its minor
     ones. *)
  let vbufs =
    List.map (fun vb -> (static_gain_of_vbuf ws metric vb, vb)) vbufs
    |> List.stable_sort (fun (a, _) (b, _) -> compare b a)
    |> List.map snd
  in
  let vbuf_arr = Array.of_list vbufs in
  let n = Array.length vbuf_arr in
  let sizes = Array.map (fun vb -> blocks_of_bytes vb.Vbuffer.size_bytes) vbuf_arr in
  let total_blocks = Array.fold_left ( + ) 0 sizes in
  if total_blocks <= capacity then
    (* Everything fits: pinning all of it dominates any subset. *)
    finish metric ~capacity_blocks:capacity vbufs
      (List.map (fun vb -> vb.Vbuffer.vbuf_id) vbufs)
  else
  let affected = Array.map (affected_nodes_of_vbuf ws metric) vbuf_arr in
  (* Which DP row owns each item, for compensation lookups.  Buffers
     from the coloring pass never share an item; should a hand-built
     input violate that, membership tests fall back to list scans so the
     last-writer-wins owner table stays a pure compensation index. *)
  let owner = Hashtbl.create 256 in
  let shared_items = ref false in
  Array.iteri
    (fun i vb ->
      List.iter
        (fun it ->
          (match Hashtbl.find_opt owner it with
          | Some j when j <> i -> shared_items := true
          | Some _ | None -> ());
          Hashtbl.replace owner it i)
        vb.Vbuffer.members)
    vbuf_arr;
  let member_test index =
    if !shared_items then fun item -> List.mem item vbuf_arr.(index).Vbuffer.members
    else fun item ->
      match Hashtbl.find_opt owner item with
      | Some k -> k = index
      | None -> false
  in
  match compensation with
  | Table_approx ->
    (* Per row, split the affected nodes into column-independent ones —
       no queried item is owned by an earlier DP row, so both predicate
       evaluations are constants computed once — and dependent ones,
       which read [pbuf_table] bits of earlier rows at the source
       column.  The probe relies on [Metric.node_latency_pred] querying
       a fixed item set per node regardless of the predicate's answers;
       that fixed set also yields, per row, the exact set of earlier
       rows whose memo bits the gain can read at all, so whole-row gains
       are memoized on those packed bits: equal bit patterns make the
       unmemoized fold read identical state and produce identical
       floats. *)
    let earlier_seen = Array.make n false in
    let on_false _ = false in
    let dependent = Array.make n [||] in
    let const_without = Array.make n [||] in
    let const_with = Array.make n [||] in
    let const_total = Array.make n 0. in
    let earlier = Array.make n [||] in
    let memo = Array.init n (fun _ -> Hashtbl.create 16) in
    for index = 0 to n - 1 do
      let aff = affected.(index) in
      let m = Array.length aff in
      let dep = Array.make m false in
      let cw = Array.make m 0. in
      let cm = Array.make m 0. in
      let members_only = member_test index in
      let rows = ref [] in
      for k = 0 to m - 1 do
        let d = ref false in
        let probe item =
          (match Hashtbl.find_opt owner item with
          | Some o when o < index ->
            d := true;
            if not earlier_seen.(o) then begin
              earlier_seen.(o) <- true;
              rows := o :: !rows
            end
          | Some _ | None -> ());
          false
        in
        ignore (Metric.node_latency_pred metric ~on:probe aff.(k));
        if !d then dep.(k) <- true
        else begin
          cw.(k) <- Metric.node_latency_pred metric ~on:on_false aff.(k);
          cm.(k) <- Metric.node_latency_pred metric ~on:members_only aff.(k)
        end
      done;
      List.iter (fun o -> earlier_seen.(o) <- false) !rows;
      let total = ref 0. in
      for k = 0 to m - 1 do
        if not dep.(k) then total := !total +. cw.(k) -. cm.(k)
      done;
      dependent.(index) <- dep;
      const_without.(index) <- cw;
      const_with.(index) <- cm;
      const_total.(index) <- !total;
      earlier.(index) <- Array.of_list (List.rev !rows)
    done;
    let full_fold ~index ~col ~pbuf_table =
      let aff = affected.(index) in
      let dep = dependent.(index) in
      let cw = const_without.(index) in
      let cm = const_with.(index) in
      let members_only = member_test index in
      let recorded item =
        match Hashtbl.find_opt owner item with
        | Some k when k < index -> pbuf_table.(k + 1).(col)
        | Some _ | None -> false
      in
      let with_members item = recorded item || members_only item in
      let acc = ref 0. in
      for k = 0 to Array.length aff - 1 do
        if dep.(k) then
          acc :=
            !acc
            +. Metric.node_latency_pred metric ~on:recorded aff.(k)
            -. Metric.node_latency_pred metric ~on:with_members aff.(k)
        else acc := !acc +. cw.(k) -. cm.(k)
      done;
      !acc
    in
    let max_memo_bits = Sys.int_size - 2 in
    let gain_at ~index ~col ~pbuf_table =
      let deps = earlier.(index) in
      let width = Array.length deps in
      if width = 0 then const_total.(index)
      else if width <= max_memo_bits then begin
        let key = ref 0 in
        for b = 0 to width - 1 do
          if pbuf_table.(deps.(b) + 1).(col) then key := !key lor (1 lsl b)
        done;
        let tbl = memo.(index) in
        match Hashtbl.find_opt tbl !key with
        | Some g -> g
        | None ->
          let g = full_fold ~index ~col ~pbuf_table in
          Hashtbl.add tbl !key g;
          g
      end
      else full_fold ~index ~col ~pbuf_table
    in
    let chosen = knapsack_dp ws ~capacity ~sizes ~gain_at in
    sweep_up metric ~capacity_blocks:capacity
      (finish metric ~capacity_blocks:capacity vbufs
         (List.map (fun i -> vbuf_arr.(i).Vbuffer.vbuf_id) chosen))
  | Exact_iterative ->
    (* Round 0 seeds with static (empty-allocation) gains; later rounds
       re-measure each buffer against the previous winner minus itself. *)
    let gains = Array.make n 0. in
    let seed baseline =
      Array.iteri
        (fun i vb ->
          let without_self =
            List.fold_left
              (fun acc it -> Metric.Item_set.remove it acc)
              baseline vb.Vbuffer.members
          in
          gains.(i) <- Metric.marginal_gain_many metric ~on_chip:without_self vb.Vbuffer.members)
        vbuf_arr
    in
    let run () =
      let gain_at ~index ~col:_ ~pbuf_table:_ = gains.(index) in
      let chosen = knapsack_dp ws ~capacity ~sizes ~gain_at in
      sweep_up metric ~capacity_blocks:capacity
        (finish metric ~capacity_blocks:capacity vbufs
           (List.map (fun i -> vbuf_arr.(i).Vbuffer.vbuf_id) chosen))
    in
    seed Metric.Item_set.empty;
    let best = ref (run ()) in
    let continue = ref true in
    let round = ref 1 in
    while !continue && !round < rounds do
      seed !best.on_chip;
      let next = run () in
      if next.predicted_latency < !best.predicted_latency -. 1e-12 then best := next
      else continue := false;
      incr round
    done;
    !best
